package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pq"
	"pq/internal/harness"
	"pq/internal/server"
)

func TestParseFlagsValidation(t *testing.T) {
	for _, bad := range [][]string{
		{"-workers", "0"},
		{"-conns", "0"},
		{"-duration", "0s"},
		{"-mix", "1.5"},
		{"-mix", "-0.1"},
		{"-rate", "-5"},
		{"-value-size", "4"},
	} {
		if _, err := parseFlags(bad); err == nil {
			t.Errorf("flags %v accepted", bad)
		}
	}
	o, err := parseFlags([]string{"-rate", "1000", "-mix", "0.7"})
	if err != nil {
		t.Fatal(err)
	}
	if o.rate != 1000 || o.mix != 0.7 || !o.drain {
		t.Fatalf("options = %+v", o)
	}
}

// TestLoadAgainstLoopbackServer runs the whole generator against an
// in-process server: timed phase, drain phase, JSON emission — the
// same path the CI smoke step exercises through the built binaries.
func TestLoadAgainstLoopbackServer(t *testing.T) {
	if testing.Short() {
		t.Skip("timed load run")
	}
	srv := server.New(server.Config{})
	if err := srv.AddQueue(server.QueueSpec{
		Name: "default", Algorithm: pq.FunnelTree, Priorities: 32, Shards: 2, Capacity: 4096,
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	defer func() { srv.Close(); <-done }()
	var addr string
	for i := 0; i < 200 && addr == ""; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}
	if addr == "" {
		t.Fatal("server did not start")
	}

	jsonPath := filepath.Join(t.TempDir(), "load.json")
	err := run([]string{
		"-addr", addr, "-workers", "4", "-conns", "2",
		"-duration", "500ms", "-json", jsonPath,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := harness.ValidateBenchJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Suite != harness.SuiteService {
		t.Fatalf("suite = %q", bf.Suite)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	if raw["suite"] != "service" {
		t.Fatalf("serialized suite = %v", raw["suite"])
	}
}
