// Command pqload is a load generator for pqd: closed-loop (every
// worker keeps one request in flight) or open-loop (a target arrival
// rate, revealing queueing delay) insert/delete-min mixes over the
// client library, with wall-clock latency histograms and machine-
// readable pq-bench/v1 JSON so service runs join the same perf
// trajectory as the simulator and native suites.
//
// Usage:
//
//	pqload -addr 127.0.0.1:7070 -queue default -workers 16 -duration 5s
//	pqload -rate 50000 -mix 0.6 -json load.json
//
// With -drain (the default) pqload drains the queue after the timed
// run and fails unless the server's insert and delete counters agree —
// the "every admitted item came back out" smoke check CI runs.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"pq/internal/harness"
	"pq/internal/stats"
	"pq/pqclient"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pqload:", err)
		os.Exit(1)
	}
}

type options struct {
	addr       string
	cluster    string
	queue      string
	workers    int
	conns      int
	duration   time.Duration
	mix        float64
	rate       float64
	valueSize  int
	jsonPath   string
	appendJSON bool
	drain      bool
	cpuProfile string
	memProfile string
}

func parseFlags(args []string) (options, error) {
	fs := flag.NewFlagSet("pqload", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.addr, "addr", "127.0.0.1:7070", "pqd address")
	fs.StringVar(&o.cluster, "cluster", "", "comma-separated pqd node addresses: run cluster-mode load through the routing client (overrides -addr); the map is fetched from the first reachable node")
	fs.StringVar(&o.queue, "queue", "default", "queue name")
	fs.IntVar(&o.workers, "workers", 8, "concurrent workers")
	fs.IntVar(&o.conns, "conns", 2, "pooled connections per client")
	fs.DurationVar(&o.duration, "duration", 5*time.Second, "timed run length")
	fs.Float64Var(&o.mix, "mix", 0.5, "insert fraction of the op mix (0..1)")
	fs.Float64Var(&o.rate, "rate", 0, "target ops/sec across all workers (0 = closed loop)")
	fs.IntVar(&o.valueSize, "value-size", 8, "value bytes per item (min 8; carries the item id)")
	fs.StringVar(&o.jsonPath, "json", "", "write pq-bench/v1 JSON here (\"-\" = stdout)")
	fs.BoolVar(&o.appendJSON, "append", false, "merge this run into an existing -json file (durable vs in-memory comparisons)")
	fs.BoolVar(&o.drain, "drain", true, "drain the queue after the run and check conservation")
	fs.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile of the load generator here")
	fs.StringVar(&o.memProfile, "memprofile", "", "write a pprof allocation profile here at exit")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.workers < 1 {
		return o, fmt.Errorf("-workers must be >= 1, got %d", o.workers)
	}
	if o.conns < 1 {
		return o, fmt.Errorf("-conns must be >= 1, got %d", o.conns)
	}
	if o.duration <= 0 {
		return o, fmt.Errorf("-duration must be positive, got %v", o.duration)
	}
	if o.mix < 0 || o.mix > 1 {
		return o, fmt.Errorf("-mix must be in [0,1], got %g", o.mix)
	}
	if o.rate < 0 {
		return o, fmt.Errorf("-rate must be >= 0, got %g", o.rate)
	}
	if o.valueSize < 8 {
		return o, fmt.Errorf("-value-size must be >= 8, got %d", o.valueSize)
	}
	return o, nil
}

// qclient is the slice of the client API the load loop needs; both the
// single-node *pqclient.Client and the routing *pqclient.ClusterClient
// satisfy it.
type qclient interface {
	Insert(ctx context.Context, queue string, pri int, value []byte) error
	DeleteMin(ctx context.Context, queue string) (pqclient.Item, bool, error)
	DeleteMinBatch(ctx context.Context, queue string, max int) ([]pqclient.Item, error)
	Stats(ctx context.Context, queue string) (pqclient.QueueStats, error)
	Drain(ctx context.Context, queue string) (uint64, error)
	Close() error
}

// workerResult is one worker's tallies from the timed phase.
type workerResult struct {
	insLats []float64 // ns per acked insert
	delLats []float64 // ns per delete-min round trip
	acked   int
	deletes int
	empties int
	sheds   int
}

func run(args []string, out *os.File) error {
	o, err := parseFlags(args)
	if err != nil {
		return err
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "pqload: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush recent allocations into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "pqload: -memprofile:", err)
			}
		}()
	}

	// Single-node and cluster mode share the worker loop through this
	// interface; *pqclient.Client and *pqclient.ClusterClient both
	// satisfy it.
	var (
		client  qclient
		cluster *pqclient.ClusterClient
	)
	if o.cluster != "" {
		seeds := strings.Split(o.cluster, ",")
		for i := range seeds {
			seeds[i] = strings.TrimSpace(seeds[i])
		}
		cc, err := pqclient.DialCluster(pqclient.ClusterConfig{
			Seeds: seeds, BootstrapQueue: o.queue, Conns: o.conns,
		})
		if err != nil {
			return err
		}
		cluster = cc
		client = cc
	} else {
		c, err := pqclient.Dial(pqclient.Config{Addr: o.addr, Conns: o.conns})
		if err != nil {
			return err
		}
		client = c
	}
	defer client.Close()

	// The server knows the queue's shape; don't make the user repeat it.
	st0, err := client.Stats(context.Background(), o.queue)
	if err != nil {
		return fmt.Errorf("queue %q: %w", o.queue, err)
	}
	pris := st0.Priorities

	// Cluster mode: per-node counter baselines, so the per-node bench
	// runs report only this run's traffic.
	var nodeBase map[string]pqclient.QueueStats
	if cluster != nil {
		if nodeBase, err = cluster.NodeStats(context.Background(), o.queue); err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.duration)
	defer cancel()

	// Open loop: a pacer goroutine feeds tokens at the target rate;
	// closed loop when rate is 0 (tokens == nil).
	var tokens chan struct{}
	if o.rate > 0 {
		tokens = make(chan struct{}, 1024)
		go func() {
			interval := time.Duration(float64(time.Second) / o.rate)
			tick := time.NewTicker(maxDur(interval, 10*time.Microsecond))
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					select {
					case tokens <- struct{}{}:
					default: // generator saturated; drop the token
					}
				}
			}
		}()
	}

	results := make([]workerResult, o.workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < o.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := &results[w]
			rng := rand.New(rand.NewSource(int64(w) + 1))
			value := make([]byte, o.valueSize)
			for seq := 0; ; seq++ {
				if tokens != nil {
					select {
					case <-tokens:
					case <-ctx.Done():
						return
					}
				} else if ctx.Err() != nil {
					return
				}
				if rng.Float64() < o.mix {
					id := uint64(w)<<32 | uint64(seq)
					putID(value, id)
					t0 := time.Now()
					err := client.Insert(ctx, o.queue, int(id*13)%pris, value)
					switch {
					case err == nil:
						r.insLats = append(r.insLats, float64(time.Since(t0).Nanoseconds()))
						r.acked++
					case errors.Is(err, pqclient.ErrOverload):
						r.sheds++
					case ctx.Err() != nil:
						return
					default:
						// A request cut off by the deadline mid-flight.
						if isDeadline(err) {
							return
						}
						fmt.Fprintf(os.Stderr, "pqload: insert: %v\n", err)
						return
					}
				} else {
					t0 := time.Now()
					_, ok, err := client.DeleteMin(ctx, o.queue)
					if err != nil {
						if ctx.Err() != nil || isDeadline(err) {
							return
						}
						fmt.Fprintf(os.Stderr, "pqload: delete-min: %v\n", err)
						return
					}
					r.delLats = append(r.delLats, float64(time.Since(t0).Nanoseconds()))
					if ok {
						r.deletes++
					} else {
						r.empties++
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Merge workers.
	var total workerResult
	for i := range results {
		r := &results[i]
		total.insLats = append(total.insLats, r.insLats...)
		total.delLats = append(total.delLats, r.delLats...)
		total.acked += r.acked
		total.deletes += r.deletes
		total.empties += r.empties
		total.sheds += r.sheds
	}
	// Per-node snapshot at the end of the timed phase (before the drain
	// inflates delete counters).
	var nodeEnd map[string]pqclient.QueueStats
	if cluster != nil {
		if nodeEnd, err = cluster.NodeStats(context.Background(), o.queue); err != nil {
			return err
		}
	}

	ops := total.acked + total.deletes + total.empties
	if ops == 0 {
		target := o.addr
		if o.cluster != "" {
			target = o.cluster
		}
		return fmt.Errorf("no operations completed — is pqd up at %s?", target)
	}

	// Drain phase: stop admission, pop until empty, then check
	// conservation server-side (valid even if other clients ran: every
	// admitted insert must come back out exactly once).
	drained := 0
	if o.drain {
		dctx, dcancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer dcancel()
		if _, err := client.Drain(dctx, o.queue); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		for {
			items, err := client.DeleteMinBatch(dctx, o.queue, 256)
			if err != nil {
				return fmt.Errorf("drain: %w", err)
			}
			if len(items) == 0 {
				break
			}
			drained += len(items)
		}
	}
	stFinal, err := client.Stats(context.Background(), o.queue)
	if err != nil {
		return err
	}

	insSum := stats.Summarize(total.insLats)
	delSum := stats.Summarize(total.delLats)
	thr := float64(ops) / elapsed.Seconds()
	target := o.addr
	if o.cluster != "" {
		target = "cluster[" + o.cluster + "]"
	}
	fmt.Fprintf(out, "pqload: %s %s: %d workers, %v\n", target, o.queue, o.workers, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  ops/sec      %12.0f  (closed-loop=%v mix=%.2f)\n", thr, o.rate == 0, o.mix)
	fmt.Fprintf(out, "  inserts      %12d  shed %d\n", total.acked, total.sheds)
	fmt.Fprintf(out, "  deletes      %12d  empty %d  drained %d\n", total.deletes, total.empties, drained)
	fmt.Fprintf(out, "  insert ns    %s\n", insSum)
	fmt.Fprintf(out, "  delete ns    %s\n", delSum)
	fmt.Fprintf(out, "  server       inserts=%d deletes=%d shed=%d size=%d\n",
		stFinal.Inserts, stFinal.Deletes, stFinal.RetryAfter, stFinal.Size)
	if cluster != nil {
		m := cluster.Map()
		fmt.Fprintf(out, "  cluster      map v%d, %d nodes, stash=%d\n", m.Version, len(m.Nodes), cluster.Stashed())
		for _, n := range m.Nodes {
			b, e := nodeBase[n.Addr], nodeEnd[n.Addr]
			var mis int64
			if e.Cluster != nil {
				mis = e.Cluster.Misroutes
			}
			fmt.Fprintf(out, "  node %-21s inserts=%d deletes=%d empty=%d misroutes=%d\n",
				n.Addr, e.Inserts-b.Inserts, e.Deletes-b.Deletes, e.EmptyDeletes-b.EmptyDeletes, mis)
		}
	}
	if d := stFinal.Durability; d != nil {
		fmt.Fprintf(out, "  durability   fsync=%s appends=%d fsyncs=%d wal_bytes=%d segments=%d snapshots=%d\n",
			d.FsyncPolicy, d.Appends, d.Fsyncs, d.WALBytes, d.Segments, d.Snapshots)
	}
	// Server-side (stats_version 3) latencies exclude the network and
	// client stack; the gap to the client-observed numbers above is
	// wire + scheduling cost.
	if l := stFinal.Latency; l != nil {
		fmt.Fprintf(out, "  server ns    insert p50=%.0f p99=%.0f  delete p50=%.0f p99=%.0f\n",
			l.Insert.P50, l.Insert.P99, l.DeleteMin.P50, l.DeleteMin.P99)
		if d := stFinal.Durability; d != nil && d.FsyncLatency != nil {
			fmt.Fprintf(out, "  server wal   fsync p50=%.0fns p99=%.0fns  group-commit p50=%.1f recs\n",
				d.FsyncLatency.P50, d.FsyncLatency.P99, d.GroupCommit.P50)
		}
	}

	if o.jsonPath != "" {
		// A durable queue gets a distinct algorithm label ("+wal") so its
		// run can share one service-suite file with the in-memory run —
		// that merged file IS the durable-vs-memory comparison. A
		// cluster run gets "pqd/cluster/..." for the aggregate plus one
		// "@<addr>" run per node (server-side counters and service
		// times), so the per-node balance is in the same document.
		algLabel := "pqd/" + stFinal.Algorithm
		if cluster != nil {
			algLabel = "pqd/cluster/" + stFinal.Algorithm
		}
		internals := map[string]float64{
			"client_sheds":       float64(total.sheds),
			"drained":            float64(drained),
			"server_retry_after": float64(stFinal.RetryAfter),
			"server_shards":      float64(stFinal.Shards),
			"server_capacity":    float64(stFinal.Capacity),
		}
		if l := stFinal.Latency; l != nil {
			// The server times single and batch ops separately; report
			// whichever path this run exercised (batch mode uses the
			// batch frames exclusively).
			ins, del := l.Insert, l.DeleteMin
			if ins.Count == 0 {
				ins = l.InsertBatch
			}
			if del.Count == 0 {
				del = l.DeleteMinBatch
			}
			internals["server_insert_p50_ns"] = ins.P50
			internals["server_insert_p99_ns"] = ins.P99
			internals["server_delete_p50_ns"] = del.P50
			internals["server_delete_p99_ns"] = del.P99
		}
		if d := stFinal.Durability; d != nil {
			algLabel += "+wal"
			internals["wal_appends"] = float64(d.Appends)
			internals["wal_fsyncs"] = float64(d.Fsyncs)
			internals["wal_bytes"] = float64(d.WALBytes)
			internals["wal_segments"] = float64(d.Segments)
			internals["wal_snapshots"] = float64(d.Snapshots)
			if d.FsyncLatency != nil {
				internals["wal_fsync_p99_ns"] = d.FsyncLatency.P99
				internals["wal_group_commit_p50"] = d.GroupCommit.P50
			}
		}
		if cluster != nil {
			m := cluster.Map()
			internals["cluster_nodes"] = float64(len(m.Nodes))
			internals["cluster_map_version"] = float64(m.Version)
			var mis int64
			for _, e := range nodeEnd {
				if e.Cluster != nil {
					mis += e.Cluster.Misroutes
				}
			}
			internals["cluster_misroutes"] = float64(mis)
			internals["cluster_stash"] = float64(cluster.Stashed())
		}
		run := harness.BenchRun{
			Algorithm:           algLabel,
			Procs:               o.workers,
			Inserts:             total.acked,
			Deletes:             total.deletes,
			FailedDeletes:       total.empties,
			ThroughputOpsPerSec: thr,
			Insert:              harness.LatencyFromSummary(insSum),
			Delete:              harness.LatencyFromSummary(delSum),
			Internals:           internals,
		}
		bf := &harness.BenchFile{
			Schema:     harness.BenchSchema,
			Suite:      harness.SuiteService,
			Generated:  time.Now().UTC().Format(time.RFC3339),
			Procs:      o.workers,
			Priorities: pris,
			Scale:      1,
		}
		if o.appendJSON && o.jsonPath != "-" {
			if prev, err := os.ReadFile(o.jsonPath); err == nil {
				if err := json.Unmarshal(prev, bf); err != nil {
					return fmt.Errorf("-append: %s is not a bench file: %w", o.jsonPath, err)
				}
				bf.Generated = time.Now().UTC().Format(time.RFC3339)
			} else if !os.IsNotExist(err) {
				return fmt.Errorf("-append: %w", err)
			}
		}
		bf.Runs = append(bf.Runs, run)
		if cluster != nil {
			bf.Runs = append(bf.Runs, clusterNodeRuns(cluster, nodeBase, nodeEnd, elapsed, o.workers)...)
		}
		if err := bf.Validate(); err != nil {
			return fmt.Errorf("generated JSON does not validate: %w", err)
		}
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if o.jsonPath == "-" {
			out.Write(data)
		} else if err := os.WriteFile(o.jsonPath, data, 0o644); err != nil {
			return err
		}
	}

	// Clean-drain assertion: after draining, everything the server
	// admitted must have been deleted exactly once (count-level; the
	// per-item check lives in the server's e2e test).
	if o.drain {
		if stFinal.Size != 0 || stFinal.Inserts != stFinal.Deletes {
			return fmt.Errorf("unclean drain: server inserts=%d deletes=%d size=%d",
				stFinal.Inserts, stFinal.Deletes, stFinal.Size)
		}
	}
	return nil
}

// clusterNodeRuns builds one bench run per cluster node from the
// server-side counter deltas of the timed phase. Op counts are the
// node's admitted/served totals (which include cluster-client put-back
// re-inserts — they are real server work); the latency quantiles are
// the node's service-time distributions, with the record counts pinned
// to the op counters so the document validates like any service run.
func clusterNodeRuns(cluster *pqclient.ClusterClient, base, end map[string]pqclient.QueueStats, elapsed time.Duration, workers int) []harness.BenchRun {
	var runs []harness.BenchRun
	for _, n := range cluster.Map().Nodes {
		b, e := base[n.Addr], end[n.Addr]
		ins := int(e.Inserts - b.Inserts)
		del := int(e.Deletes - b.Deletes)
		emp := int(e.EmptyDeletes - b.EmptyDeletes)
		if ins+del+emp == 0 {
			continue // node saw no traffic; an empty run would not validate
		}
		insLat := harness.BenchLatency{Count: ins}
		delLat := harness.BenchLatency{Count: del + emp}
		if l := e.Latency; l != nil {
			id, dd := l.Insert, l.DeleteMin
			if id.Count == 0 {
				id = l.InsertBatch
			}
			if dd.Count == 0 {
				dd = l.DeleteMinBatch
			}
			insLat.Mean, insLat.P50, insLat.P90, insLat.P99 = id.Mean, id.P50, id.P90, id.P99
			insLat.P95, insLat.Max = id.P99, id.P99
			delLat.Mean, delLat.P50, delLat.P90, delLat.P99 = dd.Mean, dd.P50, dd.P90, dd.P99
			delLat.P95, delLat.Max = dd.P99, dd.P99
		}
		internals := map[string]float64{
			"server_retry_after": float64(e.RetryAfter - b.RetryAfter),
			"server_shards":      float64(e.Shards),
		}
		if e.Cluster != nil {
			internals["cluster_misroutes"] = float64(e.Cluster.Misroutes)
		}
		alg := e.Algorithm
		if e.Durability != nil {
			alg += "+wal"
		}
		runs = append(runs, harness.BenchRun{
			Algorithm:           "pqd/" + alg + "@" + n.Addr,
			Procs:               workers,
			Inserts:             ins,
			Deletes:             del,
			FailedDeletes:       emp,
			ThroughputOpsPerSec: float64(ins+del+emp) / elapsed.Seconds(),
			Insert:              insLat,
			Delete:              delLat,
			Internals:           internals,
		})
	}
	return runs
}

func putID(b []byte, id uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(id >> (56 - 8*i))
	}
}

func isDeadline(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) ||
		strings.Contains(err.Error(), "deadline")
}

func maxDur(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}
