//go:build !windows

package main

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"pq/pqclient"
)

// Kill -9 crash-recovery end to end: a real pqd child process takes
// loadgen traffic, is SIGKILLed mid-flight, restarts on the same data
// directory, and must hand back exactly the items it acknowledged —
// every acked insert exactly once, nothing a client already popped.
//
// kill -9 does not tear write(2)'d page-cache data (only power loss
// does), so -fsync always here checks the append-before-ack ordering
// and replay correctness rather than the physics of fsync.
//
// Deletes are quiesced before the kill: a delete whose response is lost
// in the crash is legitimately indeterminate (the item is durably gone
// but the client never heard), which would be indistinguishable from a
// lost insert. Inserts keep flowing right through the SIGKILL; ones
// that error are tracked as indeterminate and may legitimately appear
// after recovery (the record can be durable even when the ack is lost).

const helperEnv = "PQD_CRASH_HELPER"

// TestHelperProcess re-executes this test binary as the pqd daemon; it
// is inert unless the crash test sets helperEnv.
func TestHelperProcess(t *testing.T) {
	if os.Getenv(helperEnv) != "1" {
		return
	}
	var args []string
	for i, a := range os.Args {
		if a == "--" {
			args = os.Args[i+1:]
			break
		}
	}
	if err := run(args); err != nil {
		fmt.Fprintln(os.Stderr, "pqd helper:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

type pqdProc struct {
	cmd  *exec.Cmd
	addr string
}

// newHelperCmd builds a helper-process pqd invocation with the given
// daemon flags.
func newHelperCmd(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], append([]string{"-test.run=^TestHelperProcess$", "--"}, args...)...)
	cmd.Env = append(os.Environ(), helperEnv+"=1")
	return cmd
}

// startPQD launches the helper-process daemon and waits for its
// listening line.
func startPQD(t *testing.T, dataDir, alg string) *pqdProc {
	t.Helper()
	cmd := newHelperCmd(t,
		"-addr", "127.0.0.1:0",
		"-queues", "jobs:"+alg+":16:2:0",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-q")
	return waitListening(t, cmd)
}

// waitListening starts cmd and blocks until it reports its bound
// address on stdout.
func waitListening(t *testing.T, cmd *exec.Cmd) *pqdProc {
	t.Helper()
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatalf("start pqd: %v", err)
	}

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "pqd: listening on "); ok {
				addrCh <- rest
				break
			}
		}
		io.Copy(io.Discard, stdout) // keep the pipe drained
	}()

	select {
	case addr := <-addrCh:
		return &pqdProc{cmd: cmd, addr: addr}
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("pqd child never reported its listening address")
		return nil
	}
}

func (p *pqdProc) kill9(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("kill -9: %v", err)
	}
	p.cmd.Wait() // reaps; exit status is the kill, not interesting
}

func dialPQD(t *testing.T, addr string) *pqclient.Client {
	t.Helper()
	c, err := pqclient.Dial(pqclient.Config{Addr: addr, RequestTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCrashRecoveryExactlyOnce(t *testing.T) {
	for _, alg := range []string{"FunnelTree", "SingleLock"} {
		t.Run(alg, func(t *testing.T) { crashCycles(t, alg, 2) })
	}
}

func crashCycles(t *testing.T, alg string, cycles int) {
	dataDir := t.TempDir()
	ctx := context.Background()

	for cycle := 0; cycle < cycles; cycle++ {
		p := startPQD(t, dataDir, alg)

		var (
			mu            sync.Mutex
			acked         = map[string]bool{}
			indeterminate = map[string]bool{}
			delivered     = map[string]bool{}
		)

		// Phase A: mixed inserts and deletes. Clients dial on the test
		// goroutine (dialPQD may t.Fatal) and are handed to the workers.
		const workers = 3
		delClient := dialPQD(t, p.addr)
		insClients := make([]*pqclient.Client, workers)
		for w := range insClients {
			insClients[w] = dialPQD(t, p.addr)
		}
		stopDeletes := make(chan struct{})
		var delWG sync.WaitGroup
		delWG.Add(1)
		go func() {
			defer delWG.Done()
			c := delClient
			defer c.Close()
			for {
				select {
				case <-stopDeletes:
					return
				default:
				}
				it, ok, err := c.DeleteMin(ctx, "jobs")
				if err != nil {
					return // crash races are handled by quiescing below
				}
				if ok {
					mu.Lock()
					delivered[string(it.Value)] = true
					mu.Unlock()
				}
			}
		}()

		stopInserts := make(chan struct{})
		var insWG sync.WaitGroup
		for w := 0; w < workers; w++ {
			insWG.Add(1)
			go func(w int) {
				defer insWG.Done()
				c := insClients[w]
				defer c.Close()
				for i := 0; ; i++ {
					select {
					case <-stopInserts:
						return
					default:
					}
					val := fmt.Sprintf("c%d-w%d-%d", cycle, w, i)
					if err := c.Insert(ctx, "jobs", (w+i)%16, []byte(val)); err != nil {
						// The ack was lost in the crash; the record may or
						// may not be durable.
						mu.Lock()
						indeterminate[val] = true
						mu.Unlock()
						return
					}
					mu.Lock()
					acked[val] = true
					mu.Unlock()
				}
			}(w)
		}

		time.Sleep(150 * time.Millisecond)
		// Phase B: quiesce deletes so none is in flight at the kill.
		close(stopDeletes)
		delWG.Wait()
		// Phase C: SIGKILL while inserts are still flowing.
		time.Sleep(50 * time.Millisecond)
		p.kill9(t)
		insWG.Wait()
		close(stopInserts)

		mu.Lock()
		if len(acked) == 0 {
			mu.Unlock()
			t.Fatal("no insert was acked before the crash; traffic phase too short")
		}
		mu.Unlock()

		// Recovery boot on the same data directory.
		p2 := startPQD(t, dataDir, alg)
		c := dialPQD(t, p2.addr)

		recovered := map[string]int{}
		for {
			items, err := c.DeleteMinBatch(ctx, "jobs", 64)
			if err != nil {
				t.Fatalf("drain after recovery: %v", err)
			}
			if len(items) == 0 {
				break
			}
			for _, it := range items {
				recovered[string(it.Value)]++
			}
		}
		c.Close()
		p2.kill9(t) // drain deletes are acked, hence durable: next cycle boots empty

		// Exactly-once: every acked-but-undelivered insert came back once;
		// nothing delivered before the crash came back; nothing outside
		// acked ∪ indeterminate exists.
		for val, n := range recovered {
			if n != 1 {
				t.Errorf("item %q recovered %d times", val, n)
			}
			if delivered[val] {
				t.Errorf("item %q was delivered before the crash and rose from the dead", val)
			}
			if !acked[val] && !indeterminate[val] {
				t.Errorf("item %q recovered but never inserted", val)
			}
		}
		for val := range acked {
			if !delivered[val] && recovered[val] != 1 {
				t.Errorf("acked item %q lost in the crash (recovered %d times)", val, recovered[val])
			}
		}
		if t.Failed() {
			t.Fatalf("cycle %d: exactly-once violated (acked=%d delivered=%d indeterminate=%d recovered=%d)",
				cycle, len(acked), len(delivered), len(indeterminate), len(recovered))
		}
		t.Logf("cycle %d: acked=%d delivered=%d indeterminate=%d recovered=%d",
			cycle, len(acked), len(delivered), len(indeterminate), len(recovered))
	}
}
