// Command pqd is the priority-queue daemon: it serves named native
// queues (any pq.Algorithm, optionally sharded by priority range, with
// bounded-counter admission control) over the wire protocol on TCP.
//
// Usage:
//
//	pqd -addr :7070 -queues default:FunnelTree:64:4:100000
//
// Each -queues entry is name:algorithm:priorities[:shards[:capacity]];
// capacity 0 means unbounded (no admission control). Relaxed algorithms
// (multiqueue) are refused unless -relaxed is set, since their
// delete-min may return an item while better ones remain queued.
// SIGTERM or SIGINT
// drains gracefully: the listener closes, every queue sheds new
// inserts with RETRY_AFTER while delete-mins keep working, and the
// daemon exits when clients disconnect (or the drain timeout forces
// the issue).
//
// With -data-dir set, every queue keeps a write-ahead log under
// <data-dir>/<queue> and survives crashes: acked inserts are on the
// log before the ack (-fsync always), boot replays snapshot + log
// tail, and a graceful shutdown seals the log so the next boot is a
// pure snapshot load. See the README's Durability section.
//
// With -cluster-map (plus -cluster-self), the daemon joins a static
// cluster: it serves only the priority ranges the map assigns to it and
// NACKs misrouted inserts with WRONG_NODE so cluster-aware clients
// (pqclient.ClusterClient, pqload -cluster) can re-route. See the
// README's Cluster mode section.
//
// With -admin-addr set, a second listener serves the ops surface:
// Prometheus /metrics, /healthz and /readyz probes, a JSON /statusz
// snapshot, and /debug/pprof. -slow-op warn-logs slow queue ops and
// -log-format json switches the structured log stream to JSON. See
// the README's Serving observability section.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pq"
	"pq/internal/server"
	"pq/internal/wal"
	"pq/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pqd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pqd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":7070", "listen address")
		queues       = fs.String("queues", "default:FunnelTree:64:4:0", "comma-separated queue specs name:alg:pris[:shards[:capacity]]")
		maxBatch     = fs.Int("maxbatch", 64, "pipelined requests per response flush")
		retryMillis  = fs.Int("retry-millis", 2, "RETRY_AFTER backoff hint (ms)")
		conc         = fs.Int("concurrency", 0, "expected contending connections (sizes funnels; 0 = GOMAXPROCS)")
		drainTimeout = fs.Duration("drain-timeout", 10*time.Second, "graceful drain budget on SIGTERM")
		quiet        = fs.Bool("q", false, "suppress serving diagnostics")

		dataDir       = fs.String("data-dir", "", "write-ahead log directory; empty serves in-memory only")
		fsyncMode     = fs.String("fsync", "always", "WAL fsync policy: always, interval or never")
		fsyncInterval = fs.Duration("fsync-interval", 10*time.Millisecond, "flush period for -fsync interval")
		snapshotEvery = fs.Int("snapshot-every", 100000, "snapshot after this many log records (<0 disables)")

		relaxed = fs.Bool("relaxed", false, "allow relaxed algorithms (MultiQueue) in -queues: delete-min may return an item while strictly better items remain queued")

		clusterMap  = fs.String("cluster-map", "", "cluster map JSON file: this node serves only its owned priority ranges and NACKs misrouted inserts with WRONG_NODE")
		clusterSelf = fs.String("cluster-self", "", "this node's address as written in -cluster-map (required with -cluster-map)")

		adminAddr = fs.String("admin-addr", "", "admin HTTP listen address (/metrics, /healthz, /readyz, /statusz, /debug/pprof); empty disables")
		slowOp    = fs.Duration("slow-op", 0, "warn-log queue ops slower than this (0 disables)")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
		metrics   = fs.Bool("metrics", true, "record server-side metrics (off measures recording overhead)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs, err := parseQueueSpecs(*queues)
	if err != nil {
		return err
	}
	var fsyncPolicy wal.SyncPolicy
	if *dataDir != "" {
		if fsyncPolicy, err = wal.ParseSyncPolicy(*fsyncMode); err != nil {
			return err
		}
	}

	// Structured logs go to stderr; stdout stays reserved for the
	// machine-read "pqd: listening on ..." line and the exit report.
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("bad -log-format %q: want text or json", *logFormat)
	}
	if *quiet {
		handler = slog.DiscardHandler
	}
	logger := slog.New(handler)
	logf := func(format string, a ...any) { logger.Info(fmt.Sprintf(format, a...)) }
	srv := server.New(server.Config{
		MaxBatch:         *maxBatch,
		RetryAfterMillis: *retryMillis,
		Concurrency:      *conc,
		Logger:           logger,
		SlowOp:           *slowOp,
		NoMetrics:        !*metrics,
		AllowRelaxed:     *relaxed,
		DataDir:          *dataDir,
		Fsync:            fsyncPolicy,
		FsyncInterval:    *fsyncInterval,
		SnapshotEvery:    *snapshotEvery,
	})

	// The admin endpoint comes up before queues are added, so /healthz
	// answers (and /readyz reports 503) while WAL replay is running.
	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			return fmt.Errorf("admin listen: %w", err)
		}
		adminSrv = &http.Server{Handler: srv.AdminHandler()}
		go func() {
			if err := adminSrv.Serve(aln); err != nil && err != http.ErrServerClosed {
				logger.Error("admin server failed", "err", err)
			}
		}()
		fmt.Printf("pqd: admin on %s\n", aln.Addr())
	}
	for _, spec := range specs {
		if err := srv.AddQueue(spec); err != nil {
			return err
		}
		logf("pqd: queue %q: %s pris=%d shards=%d capacity=%d",
			spec.Name, spec.Algorithm, spec.Priorities, spec.Shards, spec.Capacity)
		if *dataDir != "" {
			if st, ok := srv.QueueStats(spec.Name); ok && st.Durability != nil {
				logf("pqd: queue %q: durable (fsync=%s, recovered=%d items, replayed=%d records, torn=%v)",
					spec.Name, st.Durability.FsyncPolicy, st.Durability.RecoveredItems,
					st.Durability.ReplayedRecords, st.Durability.TornTail)
			}
		}
	}

	if *clusterMap != "" {
		if *clusterSelf == "" {
			return fmt.Errorf("-cluster-map requires -cluster-self")
		}
		m, err := wire.LoadClusterMap(*clusterMap)
		if err != nil {
			return err
		}
		if err := srv.SetClusterMap(m, *clusterSelf); err != nil {
			return err
		}
		logf("pqd: cluster mode: map v%d, %d nodes, self=%s", m.Version, len(m.Nodes), *clusterSelf)
	} else if *clusterSelf != "" {
		return fmt.Errorf("-cluster-self requires -cluster-map")
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe(*addr) }()

	// Report the bound address once the listener is up (pqload and the
	// smoke script wait for this line).
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			fmt.Printf("pqd: listening on %s\n", a)
			break
		}
		select {
		case err := <-serveErr:
			return err
		case <-time.After(5 * time.Millisecond):
		}
	}

	select {
	case err := <-serveErr:
		if adminSrv != nil {
			adminSrv.Close()
		}
		return err
	case sig := <-sigs:
		logf("pqd: %v: draining (timeout %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if adminSrv != nil {
			adminSrv.Close()
		}
		for _, spec := range specs {
			if st, ok := srv.QueueStats(spec.Name); ok {
				fmt.Printf("pqd: queue %q: inserts=%d deletes=%d shed=%d size=%d\n",
					st.Queue, st.Inserts, st.Deletes, st.RetryAfter, st.Size)
			}
		}
		<-serveErr
		if err == context.DeadlineExceeded {
			logf("pqd: drain timeout: severed remaining connections")
			return nil
		}
		return err
	}
}

// parseQueueSpecs parses the -queues flag.
func parseQueueSpecs(s string) ([]server.QueueSpec, error) {
	var specs []server.QueueSpec
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		parts := strings.Split(entry, ":")
		if len(parts) < 3 || len(parts) > 5 {
			return nil, fmt.Errorf("bad queue spec %q: want name:alg:pris[:shards[:capacity]]", entry)
		}
		alg, err := pq.ParseAlgorithm(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bad queue spec %q: %w", entry, err)
		}
		spec := server.QueueSpec{Name: parts[0], Algorithm: alg}
		if spec.Priorities, err = strconv.Atoi(parts[2]); err != nil || spec.Priorities < 1 {
			return nil, fmt.Errorf("bad queue spec %q: priorities %q", entry, parts[2])
		}
		if len(parts) >= 4 {
			if spec.Shards, err = strconv.Atoi(parts[3]); err != nil || spec.Shards < 0 {
				return nil, fmt.Errorf("bad queue spec %q: shards %q", entry, parts[3])
			}
		}
		if len(parts) == 5 {
			if spec.Capacity, err = strconv.ParseInt(parts[4], 10, 64); err != nil || spec.Capacity < 0 {
				return nil, fmt.Errorf("bad queue spec %q: capacity %q", entry, parts[4])
			}
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no queues configured")
	}
	return specs, nil
}
