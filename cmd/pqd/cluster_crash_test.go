//go:build !windows

package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pq/internal/wire"
	"pq/pqclient"
)

// Cluster crash-recovery end to end: three durable pqd child processes
// share a static cluster map, take cluster-client traffic (routed
// inserts, two-choice delete-min with put-backs), one node is SIGKILLed
// mid-flight and restarted on the same data directory and address, and
// the cluster-wide drain must hand back exactly the acked-undelivered
// items. Deletes (and so put-backs) are quiesced before the kill, same
// as the single-node crash test: a delete or put-back whose ack is lost
// in the crash is legitimately indeterminate.

// grabPort reserves a loopback port by binding and releasing it; the
// returned address can be listened on again (small reuse race, fine for
// tests).
func grabPort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startClusterPQD launches one helper-process daemon pinned to addr as
// cluster node self, durable under dataDir.
func startClusterPQD(t *testing.T, addr, dataDir, mapFile string) *pqdProc {
	t.Helper()
	cmd := newHelperCmd(t,
		"-addr", addr,
		"-queues", "jobs:FunnelTree:48:2:0",
		"-data-dir", dataDir,
		"-fsync", "always",
		"-cluster-map", mapFile,
		"-cluster-self", addr,
		"-q")
	return waitListening(t, cmd)
}

func TestClusterCrashRecoveryExactlyOnce(t *testing.T) {
	ctx := context.Background()
	addrs := []string{grabPort(t), grabPort(t), grabPort(t)}

	m := wire.ClusterMap{Version: 1, Priorities: 48}
	for i, a := range addrs {
		m.Nodes = append(m.Nodes, wire.ClusterNode{
			Addr:   a,
			Ranges: []wire.ClusterRange{{Lo: i * 16, Hi: (i + 1) * 16}},
		})
	}
	mapFile := filepath.Join(t.TempDir(), "cluster.json")
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mapFile, data, 0o644); err != nil {
		t.Fatal(err)
	}

	dataDirs := make([]string, 3)
	procs := make([]*pqdProc, 3)
	for i := range addrs {
		dataDirs[i] = t.TempDir()
		procs[i] = startClusterPQD(t, addrs[i], dataDirs[i], mapFile)
	}
	t.Cleanup(func() {
		for _, p := range procs {
			if p != nil && p.cmd.ProcessState == nil {
				p.kill9(t)
			}
		}
	})

	dialCC := func(seed int64) *pqclient.ClusterClient {
		cc, err := pqclient.DialCluster(pqclient.ClusterConfig{
			Map: &m, RequestTimeout: 10 * time.Second, Rand: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cc
	}

	var (
		mu            sync.Mutex
		acked         = map[string]bool{}
		indeterminate = map[string]bool{}
		delivered     = map[string]bool{}
	)

	// Phase A: cluster-routed inserts across all three bands plus
	// two-choice deleters (put-backs exercise the cross-node re-insert
	// path while every node is up).
	const insWorkers = 3
	const delWorkers = 2
	delClients := make([]*pqclient.ClusterClient, delWorkers)
	for w := range delClients {
		delClients[w] = dialCC(int64(w) + 50)
	}
	stopDeletes := make(chan struct{})
	var delWG sync.WaitGroup
	for w := 0; w < delWorkers; w++ {
		delWG.Add(1)
		go func(w int) {
			defer delWG.Done()
			cc := delClients[w]
			for {
				select {
				case <-stopDeletes:
					return
				default:
				}
				it, ok, err := cc.DeleteMin(ctx, "jobs")
				if err != nil {
					return // crash races are excluded by quiescing below
				}
				if ok {
					mu.Lock()
					delivered[string(it.Value)] = true
					mu.Unlock()
				}
			}
		}(w)
	}

	insClients := make([]*pqclient.ClusterClient, insWorkers)
	for w := range insClients {
		insClients[w] = dialCC(int64(w) + 80)
	}
	stopInserts := make(chan struct{})
	var insWG sync.WaitGroup
	for w := 0; w < insWorkers; w++ {
		insWG.Add(1)
		go func(w int) {
			defer insWG.Done()
			cc := insClients[w]
			defer cc.Close()
			for i := 0; ; i++ {
				select {
				case <-stopInserts:
					return
				default:
				}
				val := fmt.Sprintf("w%d-%d", w, i)
				pri := (w*7 + i) % 48
				if err := cc.Insert(ctx, "jobs", pri, []byte(val)); err != nil {
					// Ack lost in the crash (or routed at the dead node):
					// the record may or may not be durable there.
					mu.Lock()
					indeterminate[val] = true
					mu.Unlock()
					return
				}
				mu.Lock()
				acked[val] = true
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(200 * time.Millisecond)
	// Phase B: quiesce deletes so no delete or put-back is in flight at
	// the kill, then empty the consumer stashes (a stashed item was
	// popped — durably deleted on its node — but not yet handed to the
	// application; it must count as delivered).
	close(stopDeletes)
	delWG.Wait()
	for _, cc := range delClients {
		for cc.Stashed() > 0 {
			it, ok, err := cc.DeleteMin(ctx, "jobs")
			if err != nil || !ok {
				t.Fatalf("stash drain: ok=%v err=%v", ok, err)
			}
			mu.Lock()
			delivered[string(it.Value)] = true
			mu.Unlock()
		}
		cc.Close()
	}

	// Phase C: SIGKILL the middle-band node while inserts still flow.
	time.Sleep(50 * time.Millisecond)
	procs[1].kill9(t)
	insWG.Wait()
	close(stopInserts)

	mu.Lock()
	if len(acked) == 0 {
		mu.Unlock()
		t.Fatal("no insert was acked before the crash; traffic phase too short")
	}
	mu.Unlock()

	// Phase D: restart the killed node on the same data dir and address.
	procs[1] = startClusterPQD(t, addrs[1], dataDirs[1], mapFile)

	// Phase E: cluster-wide drain through a fresh cluster client.
	drainer := dialCC(7)
	defer drainer.Close()
	recovered := map[string]int{}
	for {
		items, err := drainer.DeleteMinBatch(ctx, "jobs", 128)
		if err != nil {
			t.Fatalf("cluster drain after recovery: %v", err)
		}
		if len(items) == 0 {
			break
		}
		for _, it := range items {
			recovered[string(it.Value)]++
		}
	}

	// Exactly-once, cluster-wide: every acked-but-undelivered insert
	// came back exactly once; nothing delivered before the crash rose
	// from the dead; nothing outside acked ∪ indeterminate exists.
	for val, n := range recovered {
		if n != 1 {
			t.Errorf("item %q recovered %d times", val, n)
		}
		if delivered[val] {
			t.Errorf("item %q was delivered before the crash and rose from the dead", val)
		}
		if !acked[val] && !indeterminate[val] {
			t.Errorf("item %q recovered but never inserted", val)
		}
	}
	for val := range acked {
		if !delivered[val] && recovered[val] != 1 {
			t.Errorf("acked item %q lost in the crash (recovered %d times)", val, recovered[val])
		}
	}
	if t.Failed() {
		t.Fatalf("exactly-once violated (acked=%d delivered=%d indeterminate=%d recovered=%d)",
			len(acked), len(delivered), len(indeterminate), len(recovered))
	}
	t.Logf("acked=%d delivered=%d indeterminate=%d recovered=%d",
		len(acked), len(delivered), len(indeterminate), len(recovered))
}
