package main

import "testing"

func TestParseQueueSpecs(t *testing.T) {
	specs, err := parseQueueSpecs("jobs:FunnelTree:64:4:1000, misc:SimpleLinear:8")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("specs = %d", len(specs))
	}
	j := specs[0]
	if j.Name != "jobs" || string(j.Algorithm) != "FunnelTree" || j.Priorities != 64 ||
		j.Shards != 4 || j.Capacity != 1000 {
		t.Fatalf("jobs spec = %+v", j)
	}
	m := specs[1]
	if m.Name != "misc" || m.Priorities != 8 || m.Shards != 0 || m.Capacity != 0 {
		t.Fatalf("misc spec = %+v", m)
	}
}

func TestParseQueueSpecsErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"jobs",
		"jobs:FunnelTree",
		"jobs:NoSuchAlg:8",
		"jobs:FunnelTree:zero",
		"jobs:FunnelTree:0",
		"jobs:FunnelTree:8:-1",
		"jobs:FunnelTree:8:2:-5",
		"jobs:FunnelTree:8:2:5:extra",
	} {
		if _, err := parseQueueSpecs(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-queues", "broken"}); err == nil {
		t.Fatal("bad -queues accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:0"}); err == nil {
		t.Fatal("bad -addr accepted")
	}
}
