package main

import "testing"

func TestRunDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks the host")
	}
	if err := run([]string{"-goroutines", "1,2", "-ops", "2000", "-algs", "SimpleLinear,FunnelTree"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-goroutines", "zero"}); err == nil {
		t.Fatal("bad goroutine count accepted")
	}
	if err := run([]string{"-goroutines", "0"}); err == nil {
		t.Fatal("goroutines=0 accepted")
	}
	if err := run([]string{"-algs", "NoSuchAlgorithm", "-goroutines", "1", "-ops", "10"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}
