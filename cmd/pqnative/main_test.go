package main

import (
	"os"
	"path/filepath"
	"testing"

	"pq/internal/harness"
)

func TestRunDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks the host")
	}
	if err := run([]string{"-goroutines", "1,2", "-ops", "2000", "-algs", "SimpleLinear,FunnelTree"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-goroutines", "zero"}); err == nil {
		t.Fatal("bad goroutine count accepted")
	}
	if err := run([]string{"-goroutines", "0"}); err == nil {
		t.Fatal("goroutines=0 accepted")
	}
	if err := run([]string{"-algs", "NoSuchAlgorithm", "-goroutines", "1", "-ops", "10"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := run([]string{"-pris", "0"}); err == nil {
		t.Fatal("pris=0 accepted")
	}
	if err := run([]string{"-pris", "-3"}); err == nil {
		t.Fatal("negative pris accepted")
	}
	if err := run([]string{"-ops", "0"}); err == nil {
		t.Fatal("ops=0 accepted")
	}
}

// TestRunJSON checks the -json output is a valid pq-bench/v1 native
// suite with one run per algorithm × goroutine count.
func TestRunJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmarks the host")
	}
	path := filepath.Join(t.TempDir(), "native.json")
	if err := run([]string{
		"-goroutines", "1,2", "-ops", "1000",
		"-algs", "SimpleLinear,SimpleTree", "-json", path,
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := harness.ValidateBenchJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Suite != harness.SuiteNative {
		t.Fatalf("suite = %q, want %q", bf.Suite, harness.SuiteNative)
	}
	if len(bf.Runs) != 4 {
		t.Fatalf("runs = %d, want 4 (2 algs × 2 goroutine counts)", len(bf.Runs))
	}
	for _, r := range bf.Runs {
		if r.Procs != 1 && r.Procs != 2 {
			t.Errorf("%s: procs = %d", r.Algorithm, r.Procs)
		}
		if r.ThroughputOpsPerSec <= 0 {
			t.Errorf("%s: no throughput", r.Algorithm)
		}
	}
}
