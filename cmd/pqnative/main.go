// Command pqnative benchmarks the native (goroutine) priority queue
// implementations across goroutine counts: throughput and mean latency of
// the paper's mixed insert/delete-min workload on the real Go runtime.
//
// Usage:
//
//	pqnative                          # all algorithms, default sweep
//	pqnative -algs FunnelTree,SimpleLinear -goroutines 1,4,16 -pris 16
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"pq"
	"pq/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pqnative:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pqnative", flag.ContinueOnError)
	var (
		algsFlag = fs.String("algs", "", "comma-separated algorithms (default: all)")
		gsFlag   = fs.String("goroutines", "1,2,4,8,16,32", "comma-separated goroutine counts")
		pris     = fs.Int("pris", 16, "number of priorities")
		ops      = fs.Int("ops", 100_000, "operations per goroutine")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	algs := pq.Algorithms()
	if *algsFlag != "" {
		algs = algs[:0]
		for _, s := range strings.Split(*algsFlag, ",") {
			algs = append(algs, pq.Algorithm(strings.TrimSpace(s)))
		}
	}
	var gs []int
	for _, s := range strings.Split(*gsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad goroutine count %q", s)
		}
		gs = append(gs, n)
	}

	fmt.Printf("%-14s %12s %14s %10s %10s %10s\n",
		"algorithm", "goroutines", "ops/sec", "p50 ns", "p95 ns", "p99 ns")
	for _, alg := range algs {
		for _, g := range gs {
			m, err := measure(alg, g, *pris, *ops)
			if err != nil {
				return err
			}
			fmt.Printf("%-14s %12d %14.0f %10.0f %10.0f %10.0f\n",
				alg, g, m.opsPerSec, m.lat.P50, m.lat.P95, m.lat.P99)
		}
	}
	return nil
}

type measurement struct {
	opsPerSec float64
	lat       stats.Summary
}

func measure(alg pq.Algorithm, goroutines, pris, ops int) (measurement, error) {
	q, err := pq.New[int](alg, pris, pq.WithConcurrency(goroutines))
	if err != nil {
		return measurement{}, err
	}
	perG := make([][]float64, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			lats := make([]float64, 0, ops)
			for i := 0; i < ops; i++ {
				t0 := time.Now()
				if (i+g)%2 == 0 {
					q.Insert((i*13+g)%pris, i)
				} else {
					q.DeleteMin()
				}
				lats = append(lats, float64(time.Since(t0).Nanoseconds()))
			}
			perG[g] = lats
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []float64
	for _, l := range perG {
		all = append(all, l...)
	}
	total := float64(goroutines * ops)
	return measurement{
		opsPerSec: total / elapsed.Seconds(),
		lat:       stats.Summarize(all),
	}, nil
}
