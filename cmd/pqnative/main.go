// Command pqnative benchmarks the native (goroutine) priority queue
// implementations across goroutine counts: throughput and latency of
// the paper's mixed insert/delete-min workload on the real Go runtime.
//
// Usage:
//
//	pqnative                          # all algorithms, default sweep
//	pqnative -algs FunnelTree,SimpleLinear -goroutines 1,4,16 -pris 16
//	pqnative -json native.json        # machine-readable pq-bench/v1 suite
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"pq"
	"pq/internal/harness"
	"pq/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pqnative:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pqnative", flag.ContinueOnError)
	var (
		algsFlag = fs.String("algs", "", "comma-separated algorithms (default: all)")
		gsFlag   = fs.String("goroutines", "1,2,4,8,16,32", "comma-separated goroutine counts")
		pris     = fs.Int("pris", 16, "number of priorities")
		ops      = fs.Int("ops", 100_000, "operations per goroutine")
		jsonPath = fs.String("json", "", "write a pq-bench/v1 native-suite JSON here (\"-\" = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pris < 1 {
		return fmt.Errorf("-pris must be >= 1, got %d", *pris)
	}
	if *ops < 1 {
		return fmt.Errorf("-ops must be >= 1, got %d", *ops)
	}

	algs := pq.Algorithms()
	if *algsFlag != "" {
		algs = algs[:0]
		for _, s := range strings.Split(*algsFlag, ",") {
			a, err := pq.ParseAlgorithm(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			algs = append(algs, a)
		}
	}
	var gs []int
	for _, s := range strings.Split(*gsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			return fmt.Errorf("bad goroutine count %q", s)
		}
		gs = append(gs, n)
	}

	bf := &harness.BenchFile{
		Schema:     harness.BenchSchema,
		Suite:      harness.SuiteNative,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Procs:      runtime.GOMAXPROCS(0),
		Priorities: *pris,
		Scale:      float64(*ops) / 100_000,
	}
	fmt.Printf("%-14s %12s %14s %10s %10s %10s\n",
		"algorithm", "goroutines", "ops/sec", "p50 ns", "p95 ns", "p99 ns")
	for _, alg := range algs {
		for _, g := range gs {
			m, err := measure(alg, g, *pris, *ops)
			if err != nil {
				return err
			}
			all := stats.Summarize(m.allLats)
			fmt.Printf("%-14s %12d %14.0f %10.0f %10.0f %10.0f\n",
				alg, g, m.opsPerSec, all.P50, all.P95, all.P99)
			run := harness.BenchRun{
				Algorithm:           string(alg),
				Procs:               g,
				Inserts:             m.inserts,
				Deletes:             m.deletes,
				FailedDeletes:       m.failedDeletes,
				ThroughputOpsPerSec: m.opsPerSec,
				Insert:              harness.LatencyFromSummary(stats.Summarize(m.insLats)),
				Delete:              harness.LatencyFromSummary(stats.Summarize(m.delLats)),
				Internals:           m.internals,
			}
			if m.internals != nil {
				fmt.Printf("%-14s %12s rank mean %.2f  p99 %.0f  max %.0f\n",
					"", "", m.internals["multiqueue.rank_mean"],
					m.internals["multiqueue.rank_p99"], m.internals["multiqueue.rank_max"])
			}
			bf.Runs = append(bf.Runs, run)
		}
	}
	if *jsonPath != "" {
		if err := bf.Validate(); err != nil {
			return fmt.Errorf("generated JSON does not validate: %w", err)
		}
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if *jsonPath == "-" {
			os.Stdout.Write(data)
			return nil
		}
		return os.WriteFile(*jsonPath, data, 0o644)
	}
	return nil
}

type measurement struct {
	opsPerSec     float64
	inserts       int
	deletes       int
	failedDeletes int
	insLats       []float64
	delLats       []float64
	allLats       []float64
	// internals carries the rank-error distribution when the algorithm
	// is relaxed; nil for the exact queues.
	internals map[string]float64
}

type goroutineTally struct {
	insLats, delLats []float64
	deletes, failed  int
}

func measure(alg pq.Algorithm, goroutines, pris, ops int) (measurement, error) {
	q, err := pq.New[int](alg, pris, pq.WithConcurrency(goroutines))
	if err != nil {
		return measurement{}, err
	}
	perG := make([]goroutineTally, goroutines)
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := &perG[g]
			for i := 0; i < ops; i++ {
				t0 := time.Now()
				if (i+g)%2 == 0 {
					q.Insert((i*13+g)%pris, i)
					t.insLats = append(t.insLats, float64(time.Since(t0).Nanoseconds()))
				} else {
					_, ok := q.DeleteMin()
					t.delLats = append(t.delLats, float64(time.Since(t0).Nanoseconds()))
					if ok {
						t.deletes++
					} else {
						t.failed++
					}
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	var m measurement
	if rs, ok := pq.RelaxStatsOf(q); ok {
		m.internals = map[string]float64{
			"multiqueue.rank_pops": float64(rs.Pops),
			"multiqueue.rank_mean": rs.Mean(),
			"multiqueue.rank_p50":  rs.Quantile(0.50),
			"multiqueue.rank_p99":  rs.Quantile(0.99),
			"multiqueue.rank_max":  float64(rs.RankMax),
		}
	}
	for i := range perG {
		t := &perG[i]
		m.insLats = append(m.insLats, t.insLats...)
		m.delLats = append(m.delLats, t.delLats...)
		m.deletes += t.deletes
		m.failedDeletes += t.failed
	}
	m.inserts = len(m.insLats)
	m.allLats = append(append([]float64(nil), m.insLats...), m.delLats...)
	m.opsPerSec = float64(goroutines*ops) / elapsed.Seconds()
	return m, nil
}
