package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pq/internal/harness"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingExperiment(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Fatal("missing -experiment accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-experiment", "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunBadScale(t *testing.T) {
	if err := run([]string{"-experiment", "fig6", "-scale", "7"}); err == nil {
		t.Fatal("scale > 1 accepted")
	}
	if err := run([]string{"-experiment", "fig6", "-scale", "0"}); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestRunTinyExperimentWithCSV(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	csv := filepath.Join(t.TempDir(), "out.csv")
	if err := run([]string{"-experiment", "fig6", "-scale", "0.01", "-q", "-csv", csv}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(csv)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "algorithm,procs") {
		t.Fatalf("csv missing header: %q", string(b)[:60])
	}
	if strings.Count(string(b), "\n") < 10 {
		t.Fatalf("csv has too few rows:\n%s", b)
	}
}

func TestRunContentionProfile(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	if err := run([]string{"-contention", "SimpleTree", "-procs", "8", "-pris", "4", "-scale", "0.05"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-contention", "NoSuchAlg", "-procs", "8", "-pris", "4", "-scale", "0.05"}); err == nil {
		t.Fatal("unknown contention algorithm accepted")
	}
}

func TestRunWithPlot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	if err := run([]string{"-experiment", "fig6", "-scale", "0.01", "-q", "-plot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := run([]string{"-json", path, "-procs", "8", "-pris", "4", "-scale", "0.1", "-q"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := harness.ValidateBenchJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if bf.Generated == "" {
		t.Error("Generated stamp missing from CLI output")
	}
}

func TestRunMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	if err := run([]string{"-metrics", "-procs", "8", "-pris", "4", "-scale", "0.1", "-q", "-plot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("runs simulations")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := run([]string{"-trace", path, "-alg", "SimpleTree", "-procs", "8", "-pris", "4", "-scale", "0.1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	if err := run([]string{"-trace", path, "-alg", "NoSuchAlg", "-procs", "8"}); err == nil {
		t.Fatal("unknown trace algorithm accepted")
	}
}
