// Command pqbench regenerates the paper's tables and figures on the
// simulated multiprocessor.
//
// Usage:
//
//	pqbench -experiment fig7              # one experiment, full scale
//	pqbench -experiment all -scale 0.25   # everything, quick
//	pqbench -list                         # show available experiments
//	pqbench -experiment fig8 -csv out.csv # also dump raw points as CSV
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"pq/internal/harness"
	"pq/internal/plot"
	"pq/internal/simpq"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pqbench", flag.ContinueOnError)
	var (
		expID      = fs.String("experiment", "", "experiment id (see -list), or 'all'")
		scale      = fs.Float64("scale", 1.0, "workload scale in (0,1]: fraction of the full per-processor operation count")
		csvPath    = fs.String("csv", "", "write raw points as CSV to this file (single experiment only)")
		list       = fs.Bool("list", false, "list available experiments")
		quiet      = fs.Bool("q", false, "suppress progress output")
		contention = fs.String("contention", "", "profile contention for this algorithm instead of running an experiment")
		chaos      = fs.Bool("chaos", false, "run the chaos/fault-injection matrix over all algorithms instead of an experiment")
		doPlot     = fs.Bool("plot", false, "also draw an ASCII chart of each experiment's series")
		procs      = fs.Int("procs", 256, "processors for -contention")
		pris       = fs.Int("pris", 16, "priorities for -contention")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-15s %-20s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return nil
	}
	if *contention != "" {
		rep, err := harness.ProfileContention(simpq.Algorithm(*contention), *procs, *pris, *scale)
		if err != nil {
			return err
		}
		rep.Render(os.Stdout)
		return nil
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale must be in (0,1], got %g", *scale)
	}
	if *chaos {
		progress := func(msg string) {
			if !*quiet {
				fmt.Fprintf(os.Stderr, "  ... %s\n", msg)
			}
		}
		start := time.Now()
		rep, err := harness.RunChaos(*scale, progress)
		if err != nil {
			return err
		}
		rep.Render(os.Stdout)
		fmt.Printf("(%d cells in %.1fs)\n", len(rep.Cells), time.Since(start).Seconds())
		return nil
	}
	if *expID == "" {
		fs.Usage()
		return fmt.Errorf("missing -experiment (or use -list)")
	}

	var exps []*harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		e, err := harness.ByID(*expID)
		if err != nil {
			return err
		}
		exps = []*harness.Experiment{e}
	}

	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  ... %s\n", msg)
		}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s (%s): %s ==\n", e.ID, e.PaperRef, e.Title)
		pts, err := e.Run(*scale, progress)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		e.Render(os.Stdout, pts)
		if *doPlot {
			renderPlot(os.Stdout, pts)
		}
		fmt.Printf("(%d points in %.1fs)\n\n", len(pts), time.Since(start).Seconds())
		if *csvPath != "" && len(exps) == 1 {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			harness.WriteCSV(f, pts)
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderPlot draws the points as an ASCII line chart, one series per
// algorithm, log-x when the sweep doubles (processor counts, priorities).
func renderPlot(w io.Writer, pts []harness.Point) {
	bySeries := map[string][]plot.Point{}
	var order []string
	logX := true
	for _, p := range pts {
		if _, seen := bySeries[p.Algorithm]; !seen {
			order = append(order, p.Algorithm)
		}
		bySeries[p.Algorithm] = append(bySeries[p.Algorithm], plot.Point{X: p.X, Y: p.Result.MeanAll})
		if p.X <= 0 {
			logX = false
		}
	}
	series := make([]plot.Series, 0, len(order))
	for _, name := range order {
		series = append(series, plot.Series{Name: name, Points: bySeries[name]})
	}
	plot.Render(w, plot.Config{Width: 72, Height: 18, LogX: logX, YLabel: "mean cycles/op"}, series)
}
