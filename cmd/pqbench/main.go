// Command pqbench regenerates the paper's tables and figures on the
// simulated multiprocessor.
//
// Usage:
//
//	pqbench -experiment fig7              # one experiment, full scale
//	pqbench -experiment all -scale 0.25   # everything, quick
//	pqbench -list                         # show available experiments
//	pqbench -experiment fig8 -csv out.csv # also dump raw points as CSV
//	pqbench -metrics                      # internals counters for all queues
//	pqbench -json out.json                # machine-readable bench suite
//	pqbench -json o.json -alg multiqueue  # restrict the suite to named queues
//	pqbench -frontier                     # MultiQueue throughput-vs-rank-error sweep
//	pqbench -trace t.json -alg FunnelTree # Chrome/Perfetto trace of one run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pq/internal/harness"
	"pq/internal/plot"
	"pq/internal/sim"
	"pq/internal/simpq"
	"pq/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pqbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pqbench", flag.ContinueOnError)
	var (
		expID      = fs.String("experiment", "", "experiment id (see -list), or 'all'")
		scale      = fs.Float64("scale", 1.0, "workload scale in (0,1]: fraction of the full per-processor operation count")
		csvPath    = fs.String("csv", "", "write raw points as CSV to this file (single experiment only)")
		list       = fs.Bool("list", false, "list available experiments")
		quiet      = fs.Bool("q", false, "suppress progress output")
		contention = fs.String("contention", "", "profile contention for this algorithm instead of running an experiment")
		chaos      = fs.Bool("chaos", false, "run the chaos/fault-injection matrix over all algorithms instead of an experiment")
		doPlot     = fs.Bool("plot", false, "also draw an ASCII chart of each experiment's series")
		metrics    = fs.Bool("metrics", false, "run the standard workload for every algorithm and print internals metrics")
		jsonPath   = fs.String("json", "", "write the bench suite as machine-readable JSON to this file")
		tracePath  = fs.String("trace", "", "write a Chrome/Perfetto trace of one workload run to this file")
		alg        = fs.String("alg", "", "comma-separated algorithms for -metrics/-json (default: the paper's seven exact queues), or the single algorithm for -trace (default FunnelTree)")
		frontier   = fs.Bool("frontier", false, "measure the relaxed frontier: MultiQueue throughput vs rank error over c and processor count, with FunnelTree as the exact baseline")
		procs      = fs.Int("procs", 256, "processors for -contention, -metrics, -json and -trace")
		pris       = fs.Int("pris", 16, "priorities for -contention, -metrics, -json and -trace")
		batch      = fs.Int("batch", 0, "also measure -metrics/-json runs with this many operations per batched queue access (0 disables)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-15s %-20s %s\n", e.ID, e.PaperRef, e.Title)
		}
		return nil
	}
	if *contention != "" {
		rep, err := harness.ProfileContention(simpq.Algorithm(*contention), *procs, *pris, *scale)
		if err != nil {
			return err
		}
		rep.Render(os.Stdout)
		return nil
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale must be in (0,1], got %g", *scale)
	}
	if *tracePath != "" {
		name := *alg
		if name == "" {
			name = string(simpq.AlgFunnelTree)
		}
		traceAlg, ok := simpq.ParseAlgorithm(name)
		if !ok {
			return fmt.Errorf("-trace: unknown algorithm %q (valid: %s)", name, algNames())
		}
		return runTrace(*tracePath, traceAlg, *procs, *pris, *scale)
	}
	progress := func(msg string) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "  ... %s\n", msg)
		}
	}
	if *frontier {
		rep, err := harness.RunRelaxedFrontier(nil, nil, *pris, *scale, progress)
		if err != nil {
			return err
		}
		rep.Render(os.Stdout)
		return nil
	}
	if *metrics || *jsonPath != "" {
		algs, err := parseAlgs(*alg)
		if err != nil {
			return err
		}
		return runBenchSuite(*jsonPath, algs, *procs, *pris, *scale, *batch, *metrics, *doPlot, progress)
	}
	if *chaos {
		start := time.Now()
		rep, err := harness.RunChaos(*scale, progress)
		if err != nil {
			return err
		}
		rep.Render(os.Stdout)
		fmt.Printf("(%d cells in %.1fs)\n", len(rep.Cells), time.Since(start).Seconds())
		return nil
	}
	if *expID == "" {
		fs.Usage()
		return fmt.Errorf("missing -experiment (or use -list)")
	}

	var exps []*harness.Experiment
	if *expID == "all" {
		exps = harness.All()
	} else {
		e, err := harness.ByID(*expID)
		if err != nil {
			return err
		}
		exps = []*harness.Experiment{e}
	}

	for _, e := range exps {
		start := time.Now()
		fmt.Printf("== %s (%s): %s ==\n", e.ID, e.PaperRef, e.Title)
		pts, err := e.Run(*scale, progress)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		e.Render(os.Stdout, pts)
		if *doPlot {
			renderPlot(os.Stdout, pts)
		}
		fmt.Printf("(%d points in %.1fs)\n\n", len(pts), time.Since(start).Seconds())
		if *csvPath != "" && len(exps) == 1 {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			harness.WriteCSV(f, pts)
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

// algNames lists every buildable algorithm — the paper's seven plus the
// relaxed ones — for error messages.
func algNames() string {
	names := make([]string, 0, len(simpq.All()))
	for _, a := range simpq.All() {
		names = append(names, string(a))
	}
	return strings.Join(names, ", ")
}

// parseAlgs resolves a comma-separated -alg list (case-insensitive).
// An empty string means the default strict suite (nil).
func parseAlgs(s string) ([]simpq.Algorithm, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var algs []simpq.Algorithm
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		alg, ok := simpq.ParseAlgorithm(name)
		if !ok {
			return nil, fmt.Errorf("-alg: unknown algorithm %q (valid: %s)", name, algNames())
		}
		algs = append(algs, alg)
	}
	if len(algs) == 0 {
		return nil, fmt.Errorf("-alg: no algorithms named (valid: %s)", algNames())
	}
	return algs, nil
}

// renderPlot draws the points as an ASCII line chart, one series per
// algorithm, log-x when the sweep doubles (processor counts, priorities).
func renderPlot(w io.Writer, pts []harness.Point) {
	bySeries := map[string][]plot.Point{}
	var order []string
	logX := true
	for _, p := range pts {
		if _, seen := bySeries[p.Algorithm]; !seen {
			order = append(order, p.Algorithm)
		}
		bySeries[p.Algorithm] = append(bySeries[p.Algorithm], plot.Point{X: p.X, Y: p.Result.MeanAll})
		if p.X <= 0 {
			logX = false
		}
	}
	series := make([]plot.Series, 0, len(order))
	for _, name := range order {
		series = append(series, plot.Series{Name: name, Points: bySeries[name]})
	}
	plot.Render(w, plot.Config{Width: 72, Height: 18, LogX: logX, YLabel: "mean cycles/op"}, series)
}

// runBenchSuite runs the standard workload for every algorithm (or the
// -alg subset), writes the machine-readable document when jsonPath is
// set, and prints the human-readable metrics report when showMetrics is
// set.
func runBenchSuite(jsonPath string, algs []simpq.Algorithm, procs, pris int, scale float64, batch int, showMetrics, doPlot bool, progress func(string)) error {
	bf, results, err := harness.RunBenchSuiteAlgs(algs, procs, pris, scale, batch, progress)
	if err != nil {
		return err
	}
	if jsonPath != "" {
		bf.Generated = time.Now().UTC().Format(time.RFC3339)
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d runs, schema %s)\n", jsonPath, len(bf.Runs), bf.Schema)
	}
	if !showMetrics {
		return nil
	}

	fmt.Printf("== internals metrics: standard workload, %d procs, %d priorities, scale %g ==\n\n", procs, pris, scale)
	fmt.Printf("%-14s %12s %10s %10s %10s %10s %10s %12s %12s\n",
		"algorithm", "ops/kcycle", "ins p50", "ins p99", "del p50", "del p99", "failed", "mem ops", "stall cyc")
	runName := func(r harness.BenchRun) string {
		if r.Batch > 1 {
			return fmt.Sprintf("%s(b%d)", r.Algorithm, r.Batch)
		}
		return r.Algorithm
	}
	for _, r := range bf.Runs {
		fmt.Printf("%-14s %12.3f %10.0f %10.0f %10.0f %10.0f %10d %12d %12d\n",
			runName(r), r.ThroughputOpsPerKCycle,
			r.Insert.P50, r.Insert.P99, r.Delete.P50, r.Delete.P99,
			r.FailedDeletes, r.Sim.MemOps, r.Sim.StallCycles)
	}
	fmt.Println()

	names := make([]string, len(bf.Runs))
	internals := make([]map[string]float64, len(bf.Runs))
	for i, r := range bf.Runs {
		names[i] = runName(r)
		internals[i] = r.Internals
	}
	plot.MetricsTable(os.Stdout, names, internals)

	if doPlot {
		fmt.Println()
		for i, r := range results {
			if r.InsertHist != nil {
				plot.LatencyHistogram(os.Stdout, fmt.Sprintf("%s insert latency", names[i]), r.InsertHist)
			}
			if r.DeleteHist != nil {
				plot.LatencyHistogram(os.Stdout, fmt.Sprintf("%s delete-min latency", names[i]), r.DeleteHist)
			}
			fmt.Println()
		}
	}
	return nil
}

// runTrace records one standard-workload run for alg with span tracing
// enabled and writes a Chrome trace-event file loadable in Perfetto.
func runTrace(path string, alg simpq.Algorithm, procs, pris int, scale float64) error {
	cfg := simpq.DefaultWorkload()
	cfg.OpsPerProc = int(float64(cfg.OpsPerProc) * scale)
	if cfg.OpsPerProc < 5 {
		cfg.OpsPerProc = 5
	}
	simCfg := sim.DefaultConfig(procs)
	col := trace.NewCollector(procs)
	simCfg.Spans = col
	r, _, err := simpq.WorkloadOnMachine(alg, pris, cfg, simCfg, 0)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := col.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	digest, err := col.Digest()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %s, %d procs, %d spans (%d dropped), final time %d cycles\n",
		path, alg, procs, col.SpanCount(), col.Dropped(), r.Stats.FinalTime)
	fmt.Printf("trace digest: %s\n", digest)
	fmt.Println("phase totals (cycles):")
	totals := col.PhaseTotals()
	for _, ph := range sim.Phases {
		if totals[ph] > 0 {
			fmt.Printf("  %-12s %12d\n", ph, totals[ph])
		}
	}
	fmt.Println("load in Perfetto: https://ui.perfetto.dev > Open trace file")
	return nil
}
