package pq_test

import (
	"fmt"

	"pq"
)

func Example() {
	// An 8-class priority queue; 0 is the most urgent class.
	q, err := pq.NewFunnelTree[string](8)
	if err != nil {
		panic(err)
	}
	q.Insert(3, "compact the log")
	q.Insert(0, "serve the request")
	q.Insert(5, "rebuild the index")

	for {
		task, ok := q.DeleteMin()
		if !ok {
			break
		}
		fmt.Println(task)
	}
	// Output:
	// serve the request
	// compact the log
	// rebuild the index
}

func ExampleNew() {
	// Pick the algorithm by contention profile: SimpleLinear shines when
	// contention is low and the priority range is small.
	q, err := pq.New[int](pq.SimpleLinear, 4)
	if err != nil {
		panic(err)
	}
	q.Insert(2, 42)
	v, ok := q.DeleteMin()
	fmt.Println(v, ok)
	// Output: 42 true
}

func ExampleNewCounter() {
	// A bounded counter never goes below its bound: a return equal to the
	// bound means the decrement did not happen — a natural try-acquire
	// semaphore.
	permits := pq.NewCounter(2, true, 0)
	for i := 0; i < 3; i++ {
		if permits.FaD() > 0 {
			fmt.Println("acquired")
		} else {
			fmt.Println("exhausted")
		}
	}
	// Output:
	// acquired
	// acquired
	// exhausted
}

func ExampleNewStack() {
	s := pq.NewStack[string]()
	s.Push("a")
	s.Push("b")
	v, _ := s.Pop()
	fmt.Println(v)
	// Output: b
}

func ExampleWithFIFOBins() {
	// Equal-priority items come out in insertion order with FIFO bins.
	q, err := pq.New[int](pq.SimpleLinear, 4, pq.WithFIFOBins())
	if err != nil {
		panic(err)
	}
	for i := 1; i <= 3; i++ {
		q.Insert(1, i)
	}
	for {
		v, ok := q.DeleteMin()
		if !ok {
			break
		}
		fmt.Println(v)
	}
	// Output:
	// 1
	// 2
	// 3
}
