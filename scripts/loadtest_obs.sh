#!/bin/sh
# Metrics overhead check: the same closed-loop pqload workload against
# pqd with metrics recording on (default) and off (-metrics=false),
# then assert the metrics-on run held within MAX_LOSS of the
# metrics-off throughput. The recording path is designed to be
# allocation-free striped atomics; the measured loss is ~1% (see
# EXPERIMENTS.md), but single loopback runs on a shared host are noisy
# (swings of ±10% in either direction, plus a monotonic warm-up ramp
# over the first ~30s of a session), so the gate runs ROUNDS
# order-alternated pairs and compares the best run of each mode — peak
# throughput is the stable statistic, and a real recording regression
# slows every run including the best one. The budget is set above the
# observed noise tail: this gate exists to catch gross regressions (a
# contended lock or a syscall on the record path); the precise
# cheap-recording claim is carried by the deterministic
# allocation-free test and microbenchmarks in internal/obs.
#
# Used by `make loadtest-obs`; EXPERIMENTS.md records measured numbers.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
ADDR=${PQD_ADDR:-127.0.0.1:7945}
OUT_DIR=${OUT_DIR:-artifacts}
DURATION=${DURATION:-2s}
WORKERS=${WORKERS:-8}
MAX_LOSS=${MAX_LOSS:-0.15}
ROUNDS=${ROUNDS:-4}

$GO build -o "$BIN/pqd" ./cmd/pqd
$GO build -o "$BIN/pqload" ./cmd/pqload
mkdir -p "$OUT_DIR"

# One pq-bench/v1 file per round per mode (the schema forbids
# duplicate runs of the same alg/procs/batch within one file).
rm -f "$OUT_DIR"/pqload-obs-on-*.json "$OUT_DIR"/pqload-obs-off-*.json

wait_up() {
  i=0
  until "$BIN/pqload" -addr "$ADDR" -duration 50ms -workers 1 -drain=false >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -ge 50 ]; then
      echo "loadtest_obs: pqd never came up on $ADDR" >&2
      exit 1
    fi
    sleep 0.1
  done
}

stop_pqd() {
  kill -TERM "$PQD_PID" 2>/dev/null || true
  wait "$PQD_PID" 2>/dev/null || true
}

# one_run <metrics on|off flag> <json file>
one_run() {
  metrics_flag=$1; json=$2
  "$BIN/pqd" -addr "$ADDR" -q "-metrics=$metrics_flag" \
    -queues "default:FunnelTree:64:4:0" &
  PQD_PID=$!
  trap 'stop_pqd' EXIT
  wait_up
  "$BIN/pqload" -addr "$ADDR" -queue default \
    -workers "$WORKERS" -conns 4 -duration "$DURATION" -json "$json"
  stop_pqd
  trap - EXIT
}

# Interleave the two modes, alternating which goes first each round:
# host throughput drifts monotonically over a session (frequency
# scaling, cgroup burst credits, page cache warm-up), so a fixed order
# would systematically hand one mode the warmer slot. Alternation plus
# best-of gives both modes equal exposure to the host's fastest phase.
ON_FILES=""
OFF_FILES=""
r=1
while [ "$r" -le "$ROUNDS" ]; do
  on_json=$OUT_DIR/pqload-obs-on-$r.json
  off_json=$OUT_DIR/pqload-obs-off-$r.json
  if [ $((r % 2)) -eq 1 ]; then
    one_run true "$on_json"
    one_run false "$off_json"
  else
    one_run false "$off_json"
    one_run true "$on_json"
  fi
  ON_FILES="$ON_FILES${ON_FILES:+,}$on_json"
  OFF_FILES="$OFF_FILES${OFF_FILES:+,}$off_json"
  # The metrics-on runs must carry server-side percentiles; the off
  # runs must not (that is what they are measuring).
  grep -q '"server_insert_p50_ns"' "$on_json"
  if grep -q '"server_insert_p50_ns"' "$off_json"; then
    echo "loadtest_obs: -metrics=false run still reports server percentiles" >&2
    exit 1
  fi
  r=$((r+1))
done

$GO run scripts/obs_overhead.go "$ON_FILES" "$OFF_FILES" "$MAX_LOSS"

echo "loadtest_obs: OK"
