//go:build ignore

// Command obs_overhead compares the throughput of two pqload bench
// files — metrics-on runs and metrics-off runs of the same workload
// (see scripts/loadtest_obs.sh) — and fails when the best metrics-on
// run lost more than the allowed fraction against the best metrics-off
// run. Best-of-N is the noise-resistant statistic on a shared host:
// interference only ever slows a run down, while a real recording
// regression slows all of them, including the best. This is the
// acceptance gate for the server's observability layer: recording must
// be cheap enough that nobody is tempted to turn it off.
//
// Usage: go run scripts/obs_overhead.go <on.json,...> <off.json,...> <max-loss>
// where each of the first two arguments is a comma-separated list of
// bench files (one per round) and max-loss is a fraction (0.03 allows
// a 3% throughput drop).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pq/internal/harness"
)

// throughput returns the best run across a comma-separated list of
// bench files.
func throughput(paths string) (float64, error) {
	var best float64
	for _, path := range strings.Split(paths, ",") {
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		var bf harness.BenchFile
		if err := json.Unmarshal(data, &bf); err != nil {
			return 0, fmt.Errorf("%s: %w", path, err)
		}
		if len(bf.Runs) == 0 {
			return 0, fmt.Errorf("%s: no runs", path)
		}
		for _, r := range bf.Runs {
			if r.ThroughputOpsPerSec > best {
				best = r.ThroughputOpsPerSec
			}
		}
	}
	return best, nil
}

func main() {
	if len(os.Args) != 4 {
		fmt.Fprintln(os.Stderr, "usage: obs_overhead <on.json> <off.json> <max-loss>")
		os.Exit(2)
	}
	on, err := throughput(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "obs_overhead:", err)
		os.Exit(1)
	}
	off, err := throughput(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "obs_overhead:", err)
		os.Exit(1)
	}
	maxLoss, err := strconv.ParseFloat(os.Args[3], 64)
	if err != nil || maxLoss <= 0 {
		fmt.Fprintln(os.Stderr, "obs_overhead: bad max-loss", os.Args[3])
		os.Exit(2)
	}
	loss := (off - on) / off
	fmt.Printf("obs_overhead: best metrics-on %.0f ops/s, best metrics-off %.0f ops/s, loss %.2f%% (budget %.2f%%)\n",
		on, off, loss*100, maxLoss*100)
	if loss > maxLoss {
		fmt.Fprintf(os.Stderr, "obs_overhead: metrics recording costs %.2f%% throughput, budget is %.2f%%\n",
			loss*100, maxLoss*100)
		os.Exit(1)
	}
}
