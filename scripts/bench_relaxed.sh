#!/bin/sh
# Relaxed-frontier benchmark: sweep the MultiQueue's queues-per-
# processor multiplier c and the processor count on the simulator,
# reporting throughput next to the measured rank-error distribution,
# with FunnelTree (the paper's best exact queue) as the zero-error
# baseline. The full-scale output of this script is the table recorded
# in EXPERIMENTS.md ("Relaxed frontier").
#
# Used by `make bench-relaxed`; SCALE<1 shrinks the workload for quick
# runs.
set -eu

GO=${GO:-go}
SCALE=${SCALE:-1}
OUT_DIR=${OUT_DIR:-artifacts}
OUT=${FRONTIER_OUT:-$OUT_DIR/frontier.txt}

mkdir -p "$OUT_DIR"
$GO run ./cmd/pqbench -frontier -scale "$SCALE" -q | tee "$OUT"
echo "bench_relaxed: wrote $OUT"
