#!/bin/sh
# Durable vs in-memory throughput comparison: the same closed-loop
# pqload workload against (a) an in-memory pqd and (b) a pqd with the
# write-ahead log on -fsync interval, merged into one pq-bench/v1
# service-suite file via `pqload -append` (the durable run is labeled
# "pqd/<alg>+wal"). Asserts the durable run holds within MAX_RATIO of
# the in-memory throughput — group commit is what makes that possible.
#
# A third short run on -fsync always exercises the strictest policy and
# the crash-safety configuration CI's kill -9 smoke relies on; it is
# reported but not ratio-checked (raw fsync latency is hardware truth,
# not a code property).
#
# Used by `make loadtest-durable` and the CI durability step.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
ADDR=${PQD_ADDR:-127.0.0.1:7942}
OUT_DIR=${OUT_DIR:-artifacts}
OUT=${PQLOAD_JSON:-$OUT_DIR/pqload-durable.json}
DURATION=${DURATION:-2s}
WORKERS=${WORKERS:-8}
MAX_RATIO=${MAX_RATIO:-2.0}
DATA_DIR=${DATA_DIR:-$(mktemp -d)}

$GO build -o "$BIN/pqd" ./cmd/pqd
$GO build -o "$BIN/pqload" ./cmd/pqload
mkdir -p "$OUT_DIR"

rm -f "$OUT"

wait_up() {
  i=0
  until "$BIN/pqload" -addr "$ADDR" -duration 50ms -workers 1 -drain=false >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -ge 50 ]; then
      echo "loadtest_durable: pqd never came up on $ADDR" >&2
      exit 1
    fi
    sleep 0.1
  done
}

stop_pqd() {
  kill -TERM "$PQD_PID" 2>/dev/null || true
  wait "$PQD_PID" 2>/dev/null || true
}

# Run 1: in-memory baseline.
"$BIN/pqd" -addr "$ADDR" -q -queues "default:FunnelTree:64:4:0" &
PQD_PID=$!
trap 'stop_pqd' EXIT
wait_up
"$BIN/pqload" -addr "$ADDR" -queue default \
  -workers "$WORKERS" -conns 4 -duration "$DURATION" -json "$OUT"
stop_pqd

# Run 2: same workload, WAL on -fsync interval (group commit's home turf).
"$BIN/pqd" -addr "$ADDR" -q -queues "default:FunnelTree:64:4:0" \
  -data-dir "$DATA_DIR/interval" -fsync interval &
PQD_PID=$!
trap 'stop_pqd' EXIT
wait_up
"$BIN/pqload" -addr "$ADDR" -queue default \
  -workers "$WORKERS" -conns 4 -duration "$DURATION" -json "$OUT" -append
stop_pqd

# Run 3: -fsync always, short, informational.
"$BIN/pqd" -addr "$ADDR" -q -queues "default:FunnelTree:64:4:0" \
  -data-dir "$DATA_DIR/always" -fsync always &
PQD_PID=$!
trap 'stop_pqd' EXIT
wait_up
"$BIN/pqload" -addr "$ADDR" -queue default \
  -workers "$WORKERS" -conns 4 -duration 1s
stop_pqd
trap - EXIT

# The merged document must validate against pq-bench/v1.
BENCH_JSON="$PWD/$OUT" $GO test ./internal/harness -run TestBenchJSONFile -count=1 >/dev/null

# Ratio check: durable (interval) throughput within MAX_RATIO of memory.
$GO run ./scripts/durable_ratio.go "$OUT" "$MAX_RATIO"

echo "loadtest_durable: OK ($OUT)"
