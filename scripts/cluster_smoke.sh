#!/bin/sh
# Cluster smoke: build pqd + pqload, boot a 3-node loopback cluster
# from one shared map file, drive cluster-routed load (inserts split by
# priority band, two-choice delete-min with put-backs), then assert
# (a) the generator drained cleanly — pqload exits nonzero unless the
# cluster-wide insert/delete counters agree after the drain, i.e. zero
# lost and zero duplicated items — (b) the emitted per-node + aggregate
# JSON validates against pq-bench/v1, and (c) every node exits cleanly
# on SIGTERM.
#
# Used by `make cluster-smoke` and the CI "Cluster loopback smoke" step.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
OUT_DIR=${OUT_DIR:-artifacts}
OUT=${PQLOAD_JSON:-$OUT_DIR/pqload-cluster.json}
ADDR1=${PQD_ADDR1:-127.0.0.1:7951}
ADDR2=${PQD_ADDR2:-127.0.0.1:7952}
ADDR3=${PQD_ADDR3:-127.0.0.1:7953}

$GO build -o "$BIN/pqd" ./cmd/pqd
$GO build -o "$BIN/pqload" ./cmd/pqload
mkdir -p "$OUT_DIR"

MAP="$OUT_DIR/cluster-map.json"
cat > "$MAP" <<EOF
{
  "version": 1,
  "priorities": 48,
  "nodes": [
    {"addr": "$ADDR1", "ranges": [{"lo": 0,  "hi": 16}]},
    {"addr": "$ADDR2", "ranges": [{"lo": 16, "hi": 32}]},
    {"addr": "$ADDR3", "ranges": [{"lo": 32, "hi": 48}]}
  ]
}
EOF

PIDS=""
for ADDR in "$ADDR1" "$ADDR2" "$ADDR3"; do
  "$BIN/pqd" -addr "$ADDR" \
    -queues "default:FunnelTree:48:2:0" \
    -cluster-map "$MAP" -cluster-self "$ADDR" &
  PIDS="$PIDS $!"
done
trap 'for P in $PIDS; do kill "$P" 2>/dev/null || true; done' EXIT

# Wait for all three listeners.
i=0
until "$BIN/pqload" -cluster "$ADDR1,$ADDR2,$ADDR3" -queue default \
  -duration 50ms -workers 1 -drain=false >/dev/null 2>&1; do
  i=$((i+1))
  if [ "$i" -ge 50 ]; then
    echo "cluster_smoke: cluster never came up on $ADDR1,$ADDR2,$ADDR3" >&2
    exit 1
  fi
  sleep 0.1
done

# Main run: cluster-routed workers; pqload itself asserts the clean
# drain (cluster-wide inserts == deletes, size 0 — nothing lost or
# duplicated) and validates the JSON it writes.
"$BIN/pqload" -cluster "$ADDR1,$ADDR2,$ADDR3" -queue default \
  -workers 8 -conns 2 -duration 2s -json "$OUT"

# Schema check: the merged per-node + aggregate document must be valid
# pq-bench/v1. `go test` runs with the package directory as cwd, so
# the path must be absolute.
BENCH_JSON="$PWD/$OUT" $GO test ./internal/harness -run TestBenchJSONFile -count=1 >/dev/null

# The document must carry the aggregate run and one run per node.
for NEEDLE in "pqd/cluster/" "@$ADDR1" "@$ADDR2" "@$ADDR3"; do
  if ! grep -q "$NEEDLE" "$OUT"; then
    echo "cluster_smoke: $OUT missing run $NEEDLE" >&2
    exit 1
  fi
done

# Graceful drain: SIGTERM must terminate every node cleanly.
for P in $PIDS; do kill -TERM "$P"; done
for P in $PIDS; do wait "$P"; done
trap - EXIT
echo "cluster_smoke: OK ($OUT)"
