// Command durable_ratio checks a merged pqload bench file (see
// scripts/loadtest_durable.sh): the "+wal" run's throughput must be
// within the given factor of its in-memory counterpart.
//
// Usage: go run ./scripts/durable_ratio.go <bench.json> <max-ratio>
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"

	"pq/internal/harness"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "durable_ratio:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: durable_ratio <bench.json> <max-ratio>")
	}
	maxRatio, err := strconv.ParseFloat(args[1], 64)
	if err != nil || maxRatio <= 0 {
		return fmt.Errorf("bad max-ratio %q", args[1])
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	var bf harness.BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return err
	}
	throughput := map[string]float64{}
	for _, r := range bf.Runs {
		throughput[r.Algorithm] = r.ThroughputOpsPerSec
	}
	checked := 0
	for alg, durable := range throughput {
		base, ok := strings.CutSuffix(alg, "+wal")
		if !ok {
			continue
		}
		memory, ok := throughput[base]
		if !ok {
			return fmt.Errorf("%s: no in-memory counterpart %q in %s", alg, base, args[0])
		}
		ratio := memory / durable
		fmt.Printf("durable_ratio: %s %.0f ops/s vs %s %.0f ops/s: %.2fx slowdown (limit %.2fx)\n",
			base, memory, alg, durable, ratio, maxRatio)
		if ratio > maxRatio {
			return fmt.Errorf("%s is %.2fx slower than %s, limit %.2fx", alg, ratio, base, maxRatio)
		}
		checked++
	}
	if checked == 0 {
		return fmt.Errorf("no +wal run found in %s", args[0])
	}
	return nil
}
