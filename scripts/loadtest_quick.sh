#!/bin/sh
# Loopback service smoke: build pqd + pqload, serve a sharded
# FunnelTree with a tight admission bound on an ephemeral port, hammer
# it for 2s, then assert (a) the generator drained cleanly — pqload
# exits nonzero if the server's insert/delete counters disagree after
# the drain — (b) the emitted JSON validates against pq-bench/v1, and
# (c) the daemon itself exits cleanly on SIGTERM.
#
# Used by `make loadtest-quick` and the CI "Service loopback smoke" step.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
ADDR=${PQD_ADDR:-127.0.0.1:7941}
OUT_DIR=${OUT_DIR:-artifacts}
OUT=${PQLOAD_JSON:-$OUT_DIR/pqload-smoke.json}
OVERLOAD_OUT=$OUT_DIR/pqload-overload.json

$GO build -o "$BIN/pqd" ./cmd/pqd
$GO build -o "$BIN/pqload" ./cmd/pqload
mkdir -p "$OUT_DIR"

"$BIN/pqd" -addr "$ADDR" \
  -queues "default:FunnelTree:64:4:5000,overload:FunnelTree:16:2:64" &
PQD_PID=$!
trap 'kill "$PQD_PID" 2>/dev/null || true' EXIT

# Wait for the listener.
i=0
until "$BIN/pqload" -addr "$ADDR" -duration 50ms -workers 1 -drain=false >/dev/null 2>&1; do
  i=$((i+1))
  if [ "$i" -ge 50 ]; then
    echo "loadtest_quick: pqd never came up on $ADDR" >&2
    exit 1
  fi
  sleep 0.1
done

# Main run: concurrent workers against the sharded queue, clean drain
# asserted by pqload itself, JSON emitted for the schema check.
"$BIN/pqload" -addr "$ADDR" -queue default \
  -workers 8 -conns 4 -duration 2s -json "$OUT"

# Overload run: a capacity-64 queue under insert-heavy load must shed.
"$BIN/pqload" -addr "$ADDR" -queue overload \
  -workers 8 -conns 4 -duration 1s -mix 0.9 -json "$OVERLOAD_OUT"

# Schema check on both documents. `go test` runs with the package
# directory as cwd, so the paths must be absolute.
BENCH_JSON="$PWD/$OUT" $GO test ./internal/harness -run TestBenchJSONFile -count=1 >/dev/null
BENCH_JSON="$PWD/$OVERLOAD_OUT" $GO test ./internal/harness -run TestBenchJSONFile -count=1 >/dev/null

# The overload run must have observably shed (RETRY_AFTER count > 0).
if ! grep -q '"server_retry_after": [1-9]' "$OVERLOAD_OUT"; then
  echo "loadtest_quick: admission control never shed under overload" >&2
  exit 1
fi

# Graceful drain: SIGTERM must terminate pqd cleanly.
kill -TERM "$PQD_PID"
wait "$PQD_PID"
trap - EXIT
echo "loadtest_quick: OK ($OUT)"
