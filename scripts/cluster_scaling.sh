#!/bin/sh
# Cluster scaling curve: boot nodes={1,2,3} clusters of capacity-bounded
# pqd nodes and drive the same insert burst at each, measuring goodput
# (acked inserts per second — shed attempts count zero). Aggregate
# admission capacity grows linearly with nodes, so the burst goodput
# must too; the script fails unless the curve is monotonically
# increasing. Runs on a single core: the scaled resource is per-node
# admission capacity, not CPU, so the curve is hardware-independent.
#
# Emits one pq-bench/v1 document per node count (aggregate + per-node
# runs) under $OUT_DIR and prints the curve as a table for
# EXPERIMENTS.md. Used by `make cluster-scaling`.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
OUT_DIR=${OUT_DIR:-artifacts}
BASE_PORT=${BASE_PORT:-7971}
CAP=${CAP:-4000}       # admission capacity per node
WORKERS=${WORKERS:-16}
DURATION=${DURATION:-2s}
PRIS=48

$GO build -o "$BIN/pqd" ./cmd/pqd
$GO build -o "$BIN/pqload" ./cmd/pqload
mkdir -p "$OUT_DIR"

# write_map N FILE: even split of [0,PRIS) across N nodes.
write_map() {
  N=$1; FILE=$2
  PER=$((PRIS / N))
  printf '{\n  "version": 1,\n  "priorities": %d,\n  "nodes": [\n' "$PRIS" > "$FILE"
  i=0
  while [ "$i" -lt "$N" ]; do
    LO=$((i * PER))
    HI=$(((i + 1) * PER))
    [ "$i" -eq $((N - 1)) ] && HI=$PRIS
    SEP=","
    [ "$i" -eq $((N - 1)) ] && SEP=""
    printf '    {"addr": "127.0.0.1:%d", "ranges": [{"lo": %d, "hi": %d}]}%s\n' \
      $((BASE_PORT + i)) "$LO" "$HI" "$SEP" >> "$FILE"
    i=$((i + 1))
  done
  printf '  ]\n}\n' >> "$FILE"
}

PIDS=""
stop_nodes() {
  for P in $PIDS; do kill -TERM "$P" 2>/dev/null || true; done
  for P in $PIDS; do wait "$P" 2>/dev/null || true; done
  PIDS=""
}
trap 'stop_nodes' EXIT

CURVE=""
PREV=0
for N in 1 2 3; do
  MAP="$OUT_DIR/cluster-map-n$N.json"
  write_map "$N" "$MAP"
  ADDRS=""
  i=0
  while [ "$i" -lt "$N" ]; do
    ADDR=127.0.0.1:$((BASE_PORT + i))
    ADDRS="$ADDRS,$ADDR"
    "$BIN/pqd" -addr "$ADDR" -queues "default:FunnelTree:$PRIS:2:$CAP" \
      -cluster-map "$MAP" -cluster-self "$ADDR" -q &
    PIDS="$PIDS $!"
    i=$((i + 1))
  done
  ADDRS=${ADDRS#,}

  j=0
  until "$BIN/pqload" -cluster "$ADDRS" -queue default \
    -duration 50ms -workers 1 -drain=false >/dev/null 2>&1; do
    j=$((j + 1))
    if [ "$j" -ge 50 ]; then
      echo "cluster_scaling: $N-node cluster never came up" >&2
      exit 1
    fi
    sleep 0.1
  done

  OUT="$OUT_DIR/pqload-cluster-n$N.json"
  "$BIN/pqload" -cluster "$ADDRS" -queue default \
    -workers "$WORKERS" -conns 2 -mix 1.0 -duration "$DURATION" -json "$OUT" >/dev/null
  BENCH_JSON="$PWD/$OUT" $GO test ./internal/harness -run TestBenchJSONFile -count=1 >/dev/null
  stop_nodes

  THR=$(sed -n 's/.*"throughput_ops_per_sec": \([0-9]*\)\..*/\1/p' "$OUT" | head -1)
  if [ -z "$THR" ]; then
    echo "cluster_scaling: no throughput in $OUT" >&2
    exit 1
  fi
  CURVE="$CURVE| $N | $((N * CAP)) | $THR |\n"
  if [ "$THR" -le "$PREV" ]; then
    echo "cluster_scaling: goodput did not increase at $N nodes ($THR <= $PREV ops/s)" >&2
    exit 1
  fi
  PREV=$THR
done
trap - EXIT

echo "cluster_scaling: burst goodput curve (capacity $CAP/node, $WORKERS workers, $DURATION burst):"
echo "| nodes | aggregate capacity | goodput (acked inserts/s) |"
echo "|-------|--------------------|---------------------------|"
printf "$CURVE"
echo "cluster_scaling: OK (monotonically increasing)"
