#!/bin/sh
# Serving hot-path gate: run BenchmarkServeLoopback (the raw-wire
# loopback benchmark of the request→response path) and fail if
#
#   1. any steady-state sub-benchmark allocates (allocs/op > 0) — the
#      zero-allocation contract of the serving path, or
#   2. throughput regressed more than MAX_LOSS vs the checked-in
#      baseline in scripts/bench_serve_baseline.json.
#
# The baseline is deliberately conservative (recorded well below the
# numbers observed on the reference container) because absolute ops/s
# varies across hosts; the allocs/op gate is exact everywhere. Each
# benchmark runs count times and the best run is compared — peak
# throughput is the stable statistic on noisy shared hosts.
#
# REGEN=1 sh scripts/bench_serve.sh regenerates the baseline from the
# current host at 70% of measured throughput.
#
# Used by `make bench-serve` and CI; EXPERIMENTS.md records measured
# numbers.
set -eu

GO=${GO:-go}
OUT_DIR=${OUT_DIR:-artifacts}
BASELINE=${BASELINE:-scripts/bench_serve_baseline.json}
MAX_LOSS=${MAX_LOSS:-0.10}
COUNT=${COUNT:-2}
BENCHTIME=${BENCHTIME:-1s}

mkdir -p "$OUT_DIR"
RAW=$OUT_DIR/bench-serve.txt

$GO test -run '^$' -bench BenchmarkServeLoopback -benchmem \
  -benchtime "$BENCHTIME" -count "$COUNT" ./internal/server | tee "$RAW"

# best_ops <sub-benchmark name> — max ops/s over the runs.
best_ops() {
  awk -v name="$1" '
    index($1, "BenchmarkServeLoopback/" name) == 1 {
      for (i = 2; i < NF; i++) if ($(i+1) == "ops/s" && $i > best) best = $i
    }
    END { if (best == "") exit 1; print best }
  ' "$RAW"
}

# max_allocs <sub-benchmark name> — worst allocs/op over the runs.
max_allocs() {
  awk -v name="$1" '
    BEGIN { worst = -1 }
    index($1, "BenchmarkServeLoopback/" name) == 1 {
      for (i = 2; i < NF; i++) if ($(i+1) == "allocs/op" && $i > worst) worst = $i
    }
    END { if (worst < 0) exit 1; print worst }
  ' "$RAW"
}

BENCHES="insert_delete pipelined16 pipelined16_4k"

if [ "${REGEN:-}" = "1" ]; then
  {
    echo '{'
    echo '  "schema": "bench-serve-baseline/v1",'
    first=1
    for b in $BENCHES; do
      ops=$(best_ops "$b")
      floor=$(awk -v o="$ops" 'BEGIN { printf "%.0f", o * 0.70 }')
      [ "$first" = 1 ] || echo ','
      printf '  "%s_ops_per_sec": %s' "$b" "$floor"
      first=0
    done
    echo ''
    echo '}'
  } > "$BASELINE"
  echo "bench_serve: baseline regenerated in $BASELINE"
  cat "$BASELINE"
  exit 0
fi

fail=0
for b in $BENCHES; do
  allocs=$(max_allocs "$b") || { echo "bench_serve: no allocs/op parsed for $b" >&2; exit 1; }
  ops=$(best_ops "$b") || { echo "bench_serve: no ops/s parsed for $b" >&2; exit 1; }
  if [ "$allocs" != "0" ]; then
    echo "bench_serve: FAIL: $b allocates ($allocs allocs/op, want 0)" >&2
    fail=1
  fi
  base=$(sed -n "s/.*\"${b}_ops_per_sec\": *\([0-9.]*\).*/\1/p" "$BASELINE")
  if [ -z "$base" ]; then
    echo "bench_serve: no baseline for $b in $BASELINE" >&2
    exit 1
  fi
  ok=$(awk -v o="$ops" -v b="$base" -v l="$MAX_LOSS" \
    'BEGIN { print (o >= b * (1 - l)) ? 1 : 0 }')
  if [ "$ok" != "1" ]; then
    echo "bench_serve: FAIL: $b throughput $ops ops/s under baseline $base (max loss $MAX_LOSS)" >&2
    fail=1
  else
    echo "bench_serve: $b: $ops ops/s (baseline $base), $allocs allocs/op"
  fi
done

[ "$fail" = 0 ] || exit 1
echo "bench_serve: OK"
