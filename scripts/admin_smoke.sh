#!/bin/sh
# Admin endpoint smoke: boot pqd with -admin-addr, probe /healthz and
# /readyz, scrape /metrics and assert every required metric family is
# present, check /statusz parses, then shut down cleanly.
#
# Used by `make admin-smoke` and the CI "Admin endpoint smoke" step.
set -eu

GO=${GO:-go}
BIN=${BIN:-bin}
ADDR=${PQD_ADDR:-127.0.0.1:7943}
ADMIN=${PQD_ADMIN:-127.0.0.1:7944}
DATA_DIR=${DATA_DIR:-$(mktemp -d)}

# curl or wget, whichever the host has.
fetch() {
  if command -v curl >/dev/null 2>&1; then
    curl -fsS "$1"
  else
    wget -qO- "$1"
  fi
}

fetch_code() {
  if command -v curl >/dev/null 2>&1; then
    curl -s -o /dev/null -w '%{http_code}' "$1"
  else
    # wget prints "... ERROR 503 ..." on failure; map to the code.
    if wget -qO /dev/null "$1" 2>/dev/null; then echo 200; else echo 503; fi
  fi
}

$GO build -o "$BIN/pqd" ./cmd/pqd

"$BIN/pqd" -addr "$ADDR" -admin-addr "$ADMIN" \
  -data-dir "$DATA_DIR" -fsync interval \
  -queues "default:FunnelTree:64:4:5000" &
PQD_PID=$!
trap 'kill "$PQD_PID" 2>/dev/null || true' EXIT

# Wait for the admin listener.
i=0
until fetch "http://$ADMIN/healthz" >/dev/null 2>&1; do
  i=$((i+1))
  if [ "$i" -ge 50 ]; then
    echo "admin_smoke: admin endpoint never came up on $ADMIN" >&2
    exit 1
  fi
  sleep 0.1
done

# Liveness and readiness must both be green once serving.
fetch "http://$ADMIN/healthz" | grep -q ok
i=0
until [ "$(fetch_code "http://$ADMIN/readyz")" = "200" ]; do
  i=$((i+1))
  if [ "$i" -ge 50 ]; then
    echo "admin_smoke: /readyz never went ready" >&2
    exit 1
  fi
  sleep 0.1
done

# Scrape /metrics and assert the required families.
METRICS=$(fetch "http://$ADMIN/metrics")
for family in \
  pq_uptime_seconds \
  pq_connections_accepted_total \
  pq_frames_read_total \
  pq_pipeline_depth_bucket \
  pq_queue_ops_total \
  pq_queue_op_latency_seconds_bucket \
  pq_queue_shed_total \
  pq_queue_size \
  pq_queue_shard_inserts_total \
  pq_wal_appends_total \
  pq_wal_fsync_duration_seconds_bucket \
  pq_wal_group_commit_records_bucket \
  pq_wal_poisoned
do
  if ! printf '%s\n' "$METRICS" | grep -q "^$family"; then
    echo "admin_smoke: /metrics missing family $family" >&2
    exit 1
  fi
done

# /statusz must be JSON with the queue in it.
fetch "http://$ADMIN/statusz?items=2" | grep -q '"queue": "default"'

# pprof index answers.
fetch "http://$ADMIN/debug/pprof/" >/dev/null

kill -TERM "$PQD_PID"
wait "$PQD_PID"
trap - EXIT
echo "admin_smoke: OK"
