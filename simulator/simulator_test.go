package simulator

import "testing"

func TestRunSmallExperiment(t *testing.T) {
	r, err := Run(FunnelTree, 4, 8, Workload{OpsPerProc: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanAll <= 0 {
		t.Fatalf("MeanAll = %f", r.MeanAll)
	}
	if r.Inserts+r.Deletes != 4*10 {
		t.Fatalf("ops = %d, want 40", r.Inserts+r.Deletes)
	}
	if r.SimulatedCycles <= 0 || r.Events <= 0 {
		t.Fatalf("missing stats: %+v", r)
	}
}

func TestRunDeterministic(t *testing.T) {
	w := Workload{OpsPerProc: 15, Seed: 7}
	a, err := Run(SimpleLinear, 8, 16, w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(SimpleLinear, 8, 16, w)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestAlgorithmsComplete(t *testing.T) {
	if len(Algorithms()) != 7 {
		t.Fatalf("Algorithms() = %d entries, want 7", len(Algorithms()))
	}
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments()) < 6 {
		t.Fatalf("missing experiments: %d", len(Experiments()))
	}
	if _, err := ExperimentByID("fig8"); err != nil {
		t.Fatal(err)
	}
	if _, err := ExperimentByID("bogus"); err == nil {
		t.Fatal("bogus id accepted")
	}
}

func TestRunInvalidConfig(t *testing.T) {
	if _, err := Run(FunnelTree, 0, 8, Workload{}); err == nil {
		t.Fatal("0 processors accepted")
	}
	if _, err := Run("nonsense", 4, 8, Workload{}); err == nil {
		// Build panics on unknown algorithms inside the machine goroutine;
		// reaching here means it returned an error instead, which is fine
		// too — but it must not succeed.
		t.Fatal("unknown algorithm accepted")
	}
}

func TestProfileContentionPublicAPI(t *testing.T) {
	rep, err := ProfileContention(SimpleTree, 8, 4, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Structures) == 0 {
		t.Fatal("empty contention report")
	}
	if rep.Algorithm != SimpleTree || rep.Procs != 8 || rep.Pris != 4 {
		t.Fatalf("report metadata wrong: %+v", rep)
	}
}

func TestRunWithLatencyDistributions(t *testing.T) {
	r, err := Run(SimpleLinear, 4, 8, Workload{OpsPerProc: 15, KeepLatencies: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.All.Count != r.Inserts+r.Deletes {
		t.Fatalf("distribution count %d, want %d", r.All.Count, r.Inserts+r.Deletes)
	}
	if r.All.P99 < r.All.P50 || r.All.P50 <= 0 {
		t.Fatalf("implausible percentiles: %+v", r.All)
	}
}
