package simulator

import (
	"fmt"

	"pq/internal/sim"
	"pq/internal/simpq"
)

// Proc is the handle a simulated program uses to execute on one
// processor: reads, writes, atomics, local work, parked spinning, and a
// deterministic per-processor PRNG. See the methods of sim.Proc.
type Proc = sim.Proc

// MachineConfig sets a custom machine's size and cost model. Zero-valued
// costs select the defaults used for the paper reproduction.
type MachineConfig struct {
	// Procs is the number of processors (1..256).
	Procs int
	// LocalCost, RemoteCost, Occupancy and WakeCost are the cycle costs
	// of the memory model (cache hit, remote round-trip, module
	// serialization per access, invalidation wake-up).
	LocalCost, RemoteCost, Occupancy, WakeCost int64
	// Seed makes the whole machine deterministic (default 1).
	Seed int64
}

// Machine is a programmable simulated multiprocessor: build queues on
// it, then Run a program on every processor. It exposes the same
// instrument the paper reproduction uses, for custom experiments.
type Machine struct {
	m      *sim.Machine
	closed bool
}

// NewMachine builds a machine with procs processors and default costs.
func NewMachine(procs int) (*Machine, error) {
	return NewMachineConfig(MachineConfig{Procs: procs})
}

// NewMachineConfig builds a machine with a custom cost model.
func NewMachineConfig(cfg MachineConfig) (*Machine, error) {
	sc := sim.Config{
		Procs:      cfg.Procs,
		LocalCost:  cfg.LocalCost,
		RemoteCost: cfg.RemoteCost,
		Occupancy:  cfg.Occupancy,
		WakeCost:   cfg.WakeCost,
		Seed:       cfg.Seed,
	}
	m, err := sim.New(sc)
	if err != nil {
		return nil, fmt.Errorf("simulator: %w", err)
	}
	return &Machine{m: m}, nil
}

// SimQueue is a bounded-range priority queue living on a simulated
// machine; values must fit in 61 bits.
type SimQueue = simpq.Queue

// NewQueue builds the named queue on this machine with npri priorities
// and room for maxItems queued elements. Must be called before Run.
func (mc *Machine) NewQueue(alg Algorithm, npri, maxItems int) (SimQueue, error) {
	if mc.closed {
		return nil, fmt.Errorf("simulator: machine already ran")
	}
	known := false
	for _, a := range simpq.Algorithms {
		if a == alg {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("simulator: unknown algorithm %q", alg)
	}
	if npri < 1 || maxItems < 1 {
		return nil, fmt.Errorf("simulator: need npri >= 1 and maxItems >= 1")
	}
	return simpq.Build(alg, mc.m, npri, maxItems), nil
}

// RunStats summarizes a custom run.
type RunStats struct {
	// SimulatedCycles is when the last processor finished; Events counts
	// engine events.
	SimulatedCycles int64
	Events          int64
}

// Run executes program on every processor until all return. A Machine
// runs once; the engine interleaves processors deterministically, so
// programs need no synchronization beyond the Proc API.
func (mc *Machine) Run(program func(p *Proc)) (RunStats, error) {
	mc.closed = true
	st, err := mc.m.Run(program)
	if err != nil {
		return RunStats{}, fmt.Errorf("simulator: %w", err)
	}
	return RunStats{SimulatedCycles: st.FinalTime, Events: st.Events}, nil
}
