package simulator

import "testing"

func TestCustomMachineProgram(t *testing.T) {
	mc, err := NewMachine(4)
	if err != nil {
		t.Fatal(err)
	}
	q, err := mc.NewQueue(FunnelTree, 8, 64)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]int, 4)
	st, err := mc.Run(func(p *Proc) {
		id := p.ID()
		for i := 0; i < 5; i++ {
			q.Insert(p, (i+id)%8, uint64(id*10+i)|1<<20)
		}
		for {
			if _, ok := q.DeleteMin(p); !ok {
				break
			}
			got[id]++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.SimulatedCycles <= 0 || st.Events <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	total := 0
	for _, n := range got {
		total += n
	}
	if total != 20 {
		t.Fatalf("drained %d items, want 20", total)
	}
}

func TestCustomMachineValidation(t *testing.T) {
	if _, err := NewMachine(0); err == nil {
		t.Error("0 processors accepted")
	}
	mc, err := NewMachine(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.NewQueue("bogus", 4, 8); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if _, err := mc.NewQueue(SimpleLinear, 0, 8); err == nil {
		t.Error("npri=0 accepted")
	}
	if _, err := mc.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := mc.NewQueue(SimpleLinear, 4, 8); err == nil {
		t.Error("NewQueue after Run accepted")
	}
}

func TestCustomMachineCostConfig(t *testing.T) {
	mc, err := NewMachineConfig(MachineConfig{Procs: 1, RemoteCost: 100, LocalCost: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	q, err := mc.NewQueue(SimpleLinear, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var elapsed int64
	if _, err := mc.Run(func(p *Proc) {
		t0 := p.Now()
		q.Insert(p, 0, 1)
		elapsed = p.Now() - t0
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatalf("no simulated time elapsed")
	}
}
