// Package simulator exposes the deterministic ccNUMA multiprocessor
// simulation used to reproduce the paper's evaluation: build a machine
// configuration, pick an algorithm and workload, and measure latency in
// simulated cycles, free of host-scheduler noise.
//
// This is the measurement instrument; the root package pq is the
// adoptable native library.
package simulator

import (
	"fmt"

	"pq/internal/harness"
	"pq/internal/simpq"
	"pq/internal/stats"
)

// Algorithm names a queue implementation on the simulator.
type Algorithm = simpq.Algorithm

// The seven algorithms from the paper.
const (
	SingleLock    = simpq.AlgSingleLock
	HuntEtAl      = simpq.AlgHuntEtAl
	SkipList      = simpq.AlgSkipList
	SimpleLinear  = simpq.AlgSimpleLinear
	SimpleTree    = simpq.AlgSimpleTree
	LinearFunnels = simpq.AlgLinearFunnels
	FunnelTree    = simpq.AlgFunnelTree
)

// Algorithms lists every implementation in the paper's order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(simpq.Algorithms))
	copy(out, simpq.Algorithms)
	return out
}

// Workload describes the paper's synthetic benchmark; the zero value
// selects the defaults used for the paper's figures.
type Workload struct {
	// OpsPerProc is the number of queue accesses per processor
	// (default 60).
	OpsPerProc int
	// LocalWork is cycles of private work between accesses (default 50).
	LocalWork int64
	// InsertFraction is the probability an access inserts (default 0.5,
	// the paper's unbiased coin).
	InsertFraction float64
	// Seed makes runs reproducible; zero selects the default seed.
	Seed int64
	// KeepLatencies records every operation's latency so the Result
	// carries full distributions in addition to means.
	KeepLatencies bool
}

// LatencySummary holds order statistics of per-operation latencies, in
// simulated cycles.
type LatencySummary struct {
	Count              int
	Mean               float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Result reports measured latencies in simulated cycles.
type Result struct {
	MeanAll, MeanInsert, MeanDelete float64
	Inserts, Deletes, FailedDeletes int
	SimulatedCycles                 int64
	Events                          int64
	// Distributions are populated when Workload.KeepLatencies is set.
	All, Insert, Delete LatencySummary
}

// Run builds the named queue on a fresh simulated machine with procs
// processors and npri priorities and drives the workload on every
// processor.
func Run(alg Algorithm, procs, npri int, w Workload) (Result, error) {
	known := false
	for _, a := range simpq.Algorithms {
		if a == alg {
			known = true
			break
		}
	}
	if !known {
		return Result{}, fmt.Errorf("simulator: unknown algorithm %q", alg)
	}
	cfg := simpq.DefaultWorkload()
	if w.OpsPerProc > 0 {
		cfg.OpsPerProc = w.OpsPerProc
	}
	if w.LocalWork > 0 {
		cfg.LocalWork = w.LocalWork
	}
	if w.InsertFraction > 0 {
		cfg.InsertFraction = w.InsertFraction
	}
	cfg.Seed = w.Seed
	cfg.KeepLatencies = w.KeepLatencies
	r, err := simpq.RunWorkload(alg, procs, npri, cfg)
	if err != nil {
		return Result{}, fmt.Errorf("simulator: %w", err)
	}
	conv := func(s stats.Summary) LatencySummary {
		return LatencySummary{
			Count: s.Count, Mean: s.Mean, Min: s.Min, Max: s.Max,
			P50: s.P50, P90: s.P90, P95: s.P95, P99: s.P99,
		}
	}
	return Result{
		MeanAll:         r.MeanAll,
		MeanInsert:      r.MeanInsert,
		MeanDelete:      r.MeanDelete,
		Inserts:         r.Inserts,
		Deletes:         r.Deletes,
		FailedDeletes:   r.FailedDeletes,
		SimulatedCycles: r.Stats.FinalTime,
		Events:          r.Stats.Events,
		All:             conv(r.AllSummary),
		Insert:          conv(r.InsertSummary),
		Delete:          conv(r.DeleteSummary),
	}, nil
}

// Experiment identifies one of the paper's figures or tables; see
// Experiments for the available ids.
type Experiment = harness.Experiment

// Experiments returns every paper experiment (figures 5-9 plus
// ablations), runnable at a chosen scale.
func Experiments() []*Experiment { return harness.All() }

// ExperimentByID finds an experiment (e.g. "fig7").
func ExperimentByID(id string) (*Experiment, error) { return harness.ByID(id) }

// StructureContention is one row of a contention profile: where an
// algorithm's wait cycles concentrate.
type StructureContention = harness.StructureContention

// ContentionReport is a per-structure contention breakdown for one run.
type ContentionReport = harness.ContentionReport

// ProfileContention runs the paper's workload with the simulator's
// contention profiler enabled and aggregates wait cycles per labeled
// structure — the paper's hot-spot analysis as an API. scale in (0,1]
// shrinks the workload.
func ProfileContention(alg Algorithm, procs, npri int, scale float64) (*ContentionReport, error) {
	return harness.ProfileContention(alg, procs, npri, scale)
}
