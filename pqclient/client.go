// Package pqclient is the client library for pqd, the priority-queue
// daemon (see internal/server and cmd/pqd).
//
// A Client owns a small pool of TCP connections, pipelines requests on
// each of them, and transparently coalesces concurrent Insert calls to
// the same queue into INSERT_BATCH frames. Admission-control sheds
// (RETRY_AFTER) are retried with jittered backoff up to Config.MaxRetries
// before surfacing as ErrOverload; retries only ever happen on an
// explicit reject from the server, so a retried insert can never be
// applied twice.
package pqclient

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pq/internal/wire"
)

// Config tunes a Client. The zero value of every field selects a sane
// default.
type Config struct {
	// Addr is the pqd host:port. Required.
	Addr string
	// Conns is the connection-pool size. Default 2.
	Conns int
	// MaxCoalesce caps how many concurrent Inserts to one queue merge
	// into a single INSERT_BATCH frame. Default 32; 1 disables
	// coalescing.
	MaxCoalesce int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout applies to requests whose context carries no
	// deadline. Default 5s; negative disables.
	RequestTimeout time.Duration
	// MaxRetries is how many times an Insert shed with RETRY_AFTER is
	// retried before ErrOverload. Default 8; negative disables retry.
	MaxRetries int
	// RetryBase is the backoff used when the server sends no hint.
	// Default 2ms. Each attempt sleeps the hint (or base) plus up to
	// 100% random jitter.
	RetryBase time.Duration
}

func (c *Config) normalize() error {
	if c.Addr == "" {
		return errors.New("pqclient: Config.Addr is required")
	}
	if c.Conns <= 0 {
		c.Conns = 2
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 32
	}
	if c.MaxCoalesce > wire.MaxBatchItems {
		c.MaxCoalesce = wire.MaxBatchItems
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 2 * time.Millisecond
	}
	return nil
}

// Item is one (priority, value) pair.
type Item struct {
	Pri   int
	Value []byte
}

// QueueStats mirrors the server's per-queue counters.
type QueueStats = wire.QueueStats

// ErrOverload reports that an insert was shed by admission control and
// every retry was shed too. Callers should back off and try later.
var ErrOverload = errors.New("pqclient: overloaded")

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("pqclient: closed")

// ServerError is a TError response from the server (unknown queue,
// out-of-range priority, malformed frame...).
type ServerError struct {
	Msg string
}

func (e *ServerError) Error() string { return "pqclient: server: " + e.Msg }

// RetryError is one RETRY_AFTER shed; Insert handles these internally
// and only surfaces ErrOverload, but InsertBatch exposes the partial
// accept so callers see it for the rejected tail.
type RetryError struct {
	After time.Duration
}

func (e *RetryError) Error() string {
	return fmt.Sprintf("pqclient: shed by admission control (retry after %v)", e.After)
}

// WrongNodeError is a WRONG_NODE NACK from a cluster node: the insert's
// priority is owned by another node under the server's cluster map
// (version MapVersion). Owner is that node's address. Nothing was
// admitted. A plain Client surfaces it as-is; the ClusterClient
// refreshes its map and re-routes.
type WrongNodeError struct {
	MapVersion uint64
	Owner      string
}

func (e *WrongNodeError) Error() string {
	return fmt.Sprintf("pqclient: wrong node: priority owned by %q (cluster map version %d)", e.Owner, e.MapVersion)
}

// Client is a pooled, pipelining pqd client. All methods are safe for
// concurrent use.
type Client struct {
	cfg Config

	mu     sync.Mutex
	conns  []*conn
	next   uint64
	closed bool
}

// Dial validates cfg and connects the first pooled connection (so a
// bad address fails fast); the rest are established lazily.
func Dial(cfg Config) (*Client, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, conns: make([]*conn, cfg.Conns)}
	cn, err := dialConn(cfg)
	if err != nil {
		return nil, err
	}
	c.conns[0] = cn
	return c, nil
}

// Close severs every pooled connection; in-flight requests fail.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, cn := range c.conns {
		if cn != nil {
			cn.close(ErrClosed)
		}
	}
	return nil
}

// conn picks a pooled connection round-robin, redialing dead slots.
func (c *Client) conn() (*conn, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	i := int(c.next % uint64(len(c.conns)))
	c.next++
	cn := c.conns[i]
	if cn != nil && !cn.dead() {
		return cn, nil
	}
	cn, err := dialConn(c.cfg)
	if err != nil {
		return nil, err
	}
	c.conns[i] = cn
	return cn, nil
}

// do sends one call and waits for its resolution.
func (c *Client) do(ctx context.Context, cl *call) error {
	if _, has := ctx.Deadline(); !has && c.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.RequestTimeout)
		defer cancel()
	}
	cn, err := c.conn()
	if err != nil {
		return err
	}
	select {
	case cn.sendCh <- cl:
	case <-cn.closed:
		return cn.closeErr()
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-cl.done:
		return cl.err
	case <-ctx.Done():
		// Abandon: the conn resolves the call whenever the response
		// arrives; nobody is listening by then.
		return ctx.Err()
	}
}

func (c *Client) sleepRetry(ctx context.Context, re *RetryError) error {
	d := re.After
	if d <= 0 {
		d = c.cfg.RetryBase
	}
	d += time.Duration(rand.Int63n(int64(d) + 1)) // full jitter on top
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Insert adds value at priority pri, retrying jittered when shed.
// After MaxRetries sheds it returns ErrOverload (wrapped with the last
// retry hint).
func (c *Client) Insert(ctx context.Context, queue string, pri int, value []byte) error {
	if pri < 0 {
		return fmt.Errorf("pqclient: negative priority %d", pri)
	}
	if len(value) > wire.MaxValue {
		return fmt.Errorf("pqclient: value %d bytes exceeds the %d-byte limit", len(value), wire.MaxValue)
	}
	for attempt := 0; ; attempt++ {
		cl := &call{
			kind:  wire.TInsert,
			queue: queue,
			item:  wire.Item{Pri: uint32(pri), Value: value},
			done:  make(chan struct{}),
		}
		err := c.do(ctx, cl)
		var re *RetryError
		if !errors.As(err, &re) {
			return err
		}
		if attempt >= c.cfg.MaxRetries {
			return fmt.Errorf("%w after %d attempts: %v", ErrOverload, attempt+1, re)
		}
		if err := c.sleepRetry(ctx, re); err != nil {
			return err
		}
	}
}

// InsertBatch adds items in one frame and returns how many the server
// admitted (an in-order prefix). A short count comes with a *RetryError
// for the rejected tail; InsertBatch does not retry internally.
func (c *Client) InsertBatch(ctx context.Context, queue string, items []Item) (accepted int, err error) {
	if len(items) == 0 {
		return 0, nil
	}
	m := wire.InsertBatch{Queue: queue, Items: make([]wire.Item, len(items))}
	bytes := 2 + len(queue) + 4 // queue prefix + item count
	for i, it := range items {
		if it.Pri < 0 {
			return 0, fmt.Errorf("pqclient: negative priority %d", it.Pri)
		}
		if len(it.Value) > wire.MaxValue {
			return 0, fmt.Errorf("pqclient: item %d: value %d bytes exceeds the %d-byte limit", i, len(it.Value), wire.MaxValue)
		}
		bytes += 8 + len(it.Value)
		m.Items[i] = wire.Item{Pri: uint32(it.Pri), Value: it.Value}
	}
	if bytes > wire.MaxPayload {
		return 0, fmt.Errorf("pqclient: batch encodes to %d bytes, exceeding the %d-byte frame limit; split the batch", bytes, wire.MaxPayload)
	}
	cl := &call{kind: wire.TInsertBatch, queue: queue, payload: m.Append(nil), done: make(chan struct{})}
	if err := c.do(ctx, cl); err != nil {
		return 0, err
	}
	ok, err := wire.DecodeInsertOK(cl.resp.Payload)
	if err != nil {
		return 0, fmt.Errorf("pqclient: bad INSERT_OK: %w", err)
	}
	if ok.Rejected > 0 {
		return int(ok.Accepted), &RetryError{After: time.Duration(ok.RetryAfterMillis) * time.Millisecond}
	}
	return int(ok.Accepted), nil
}

// DeleteMin removes and returns the most urgent item, or ok=false if
// the queue appeared empty.
func (c *Client) DeleteMin(ctx context.Context, queue string) (it Item, ok bool, err error) {
	cl := &call{kind: wire.TDeleteMin, queue: queue,
		payload: wire.QueueReq{Queue: queue}.Append(nil), done: make(chan struct{})}
	if err := c.do(ctx, cl); err != nil {
		return Item{}, false, err
	}
	if cl.resp.Type == wire.TEmpty {
		return Item{}, false, nil
	}
	w, err := wire.DecodeItem(cl.resp.Payload)
	if err != nil {
		return Item{}, false, fmt.Errorf("pqclient: bad ITEM: %w", err)
	}
	return Item{Pri: int(w.Pri), Value: w.Value}, true, nil
}

// DeleteMinBatch removes up to max items in one round trip; a short
// (possibly empty) result means the queue ran empty.
func (c *Client) DeleteMinBatch(ctx context.Context, queue string, max int) ([]Item, error) {
	if max < 1 {
		return nil, fmt.Errorf("pqclient: DeleteMinBatch max must be >= 1, got %d", max)
	}
	if max > wire.MaxBatchItems {
		max = wire.MaxBatchItems
	}
	cl := &call{kind: wire.TDeleteMinBatch, queue: queue,
		payload: wire.DeleteMinBatch{Queue: queue, Max: uint32(max)}.Append(nil), done: make(chan struct{})}
	if err := c.do(ctx, cl); err != nil {
		return nil, err
	}
	m, err := wire.DecodeItems(cl.resp.Payload)
	if err != nil {
		return nil, fmt.Errorf("pqclient: bad ITEMS: %w", err)
	}
	out := make([]Item, len(m.Items))
	for i, w := range m.Items {
		out[i] = Item{Pri: int(w.Pri), Value: w.Value}
	}
	return out, nil
}

// Stats fetches the server's counters for one queue.
func (c *Client) Stats(ctx context.Context, queue string) (QueueStats, error) {
	cl := &call{kind: wire.TStats, queue: queue,
		payload: wire.QueueReq{Queue: queue}.Append(nil), done: make(chan struct{})}
	if err := c.do(ctx, cl); err != nil {
		return QueueStats{}, err
	}
	var st QueueStats
	if err := json.Unmarshal(cl.resp.Payload, &st); err != nil {
		return QueueStats{}, fmt.Errorf("pqclient: bad STATS_REPLY: %w", err)
	}
	return st, nil
}

// Drain tells the server to stop admitting inserts to the queue and
// returns how many items remained to be deleted when draining began.
func (c *Client) Drain(ctx context.Context, queue string) (remaining uint64, err error) {
	cl := &call{kind: wire.TDrain, queue: queue,
		payload: wire.QueueReq{Queue: queue}.Append(nil), done: make(chan struct{})}
	if err := c.do(ctx, cl); err != nil {
		return 0, err
	}
	m, err := wire.DecodeDrained(cl.resp.Payload)
	if err != nil {
		return 0, fmt.Errorf("pqclient: bad DRAINED: %w", err)
	}
	return m.Remaining, nil
}
