// Cluster-aware client: routes operations across a multi-node pqd
// deployment using the versioned cluster map (see wire.ClusterMap).
//
// Routing contract:
//
//   - INSERT / INSERT_BATCH go to the node owning the item's priority.
//     A WRONG_NODE NACK (stale map) triggers a map refresh from the
//     NACKing node — it demonstrably has a map that disagrees — and a
//     bounded re-route; batches are split per owner before sending.
//   - DELETE_MIN mirrors the two-choice pull of relaxed MultiQueues at
//     cluster scale: sample two distinct nodes, pop both tops
//     concurrently, deliver the better (smaller priority) and put the
//     loser back via its owner's insert path. A put-back the owner
//     refuses (shed, draining, unreachable) is stashed client-side and
//     delivered before any further network pop, so no popped item is
//     ever dropped. Only when every node answers "empty" (a full sweep,
//     not just the two samples) does DeleteMin report empty.
//   - DELETE_MIN_BATCH pulls nodes in ascending order of their lowest
//     owned priority — the drain-friendly path — and merges.
//   - RETRY_AFTER hand-off: a node that sheds a put-back insert has it
//     handed off to the local stash rather than retried against other
//     nodes (no other node owns the range), and delete-min treats a
//     node miss by moving on to the remaining nodes.
//
// Exactly-once: the winner of a two-choice pop is delivered exactly
// once; the loser either re-enters its owner node (acknowledged insert)
// or sits in the stash until a later DeleteMin/DeleteMinBatch delivers
// it. A put-back whose outcome is ambiguous (transport error after the
// frame may have reached the node) is stashed too — favoring no-loss —
// so a lost acknowledgement can at worst duplicate that item; callers
// that need strict exactly-once across a node crash quiesce pops before
// severing nodes, exactly like the single-node crash discipline.
package pqclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pq/internal/wire"
)

// ClusterConfig tunes a ClusterClient. Either Map (a static, already
// validated map) or Seeds plus BootstrapQueue (fetch the map via STATS
// from the first reachable seed) must be set.
type ClusterConfig struct {
	// Map is a static cluster map. When nil, the map is fetched from
	// Seeds at dial time.
	Map *wire.ClusterMap
	// Seeds are node addresses to bootstrap the map from (any node of
	// the cluster serves the full map in STATS v4). Unused when Map is
	// set.
	Seeds []string
	// BootstrapQueue is the queue name used for the STATS bootstrap
	// fetch (STATS is per-queue). Required when Map is nil.
	BootstrapQueue string

	// Per-node connection tuning, applied to every node's Client pool;
	// zero values take the Config defaults.
	Conns          int
	MaxCoalesce    int
	DialTimeout    time.Duration
	RequestTimeout time.Duration
	MaxRetries     int
	RetryBase      time.Duration

	// Rand seeds the two-choice sampling; 0 uses a global source. Tests
	// set it for reproducible node picks.
	Rand int64
}

func (c *ClusterConfig) nodeConfig(addr string) Config {
	return Config{
		Addr:           addr,
		Conns:          c.Conns,
		MaxCoalesce:    c.MaxCoalesce,
		DialTimeout:    c.DialTimeout,
		RequestTimeout: c.RequestTimeout,
		MaxRetries:     c.MaxRetries,
		RetryBase:      c.RetryBase,
	}
}

// ClusterClient routes requests across the nodes of one pqd cluster.
// All methods are safe for concurrent use.
type ClusterClient struct {
	cfg ClusterConfig
	m   atomic.Pointer[wire.ClusterMap]

	mu     sync.Mutex
	nodes  map[string]*Client
	stash  map[string][]Item // per queue: put-back items awaiting delivery
	rng    *rand.Rand
	closed bool
}

// DialCluster builds a cluster client. With cfg.Map set no connection
// is made until the first operation; otherwise the map is fetched from
// the first reachable seed.
func DialCluster(cfg ClusterConfig) (*ClusterClient, error) {
	cc := &ClusterClient{
		cfg:   cfg,
		nodes: make(map[string]*Client),
		stash: make(map[string][]Item),
	}
	if cfg.Rand != 0 {
		cc.rng = rand.New(rand.NewSource(cfg.Rand))
	}
	if cfg.Map != nil {
		// Clone before validating: Validate builds the lookup index in
		// place, and the caller may hand the same map to many clients.
		m := cfg.Map.Clone()
		if err := m.Validate(); err != nil {
			return nil, err
		}
		cc.m.Store(m)
		return cc, nil
	}
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("pqclient: ClusterConfig needs Map or Seeds")
	}
	if cfg.BootstrapQueue == "" {
		return nil, errors.New("pqclient: ClusterConfig.BootstrapQueue is required to fetch the map from Seeds")
	}
	ctx := context.Background()
	var firstErr error
	for _, addr := range cfg.Seeds {
		if err := cc.refreshFrom(ctx, cfg.BootstrapQueue, addr); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		return cc, nil
	}
	return nil, fmt.Errorf("pqclient: no seed served a cluster map: %w", firstErr)
}

// Map returns the active cluster map.
func (cc *ClusterClient) Map() *wire.ClusterMap { return cc.m.Load() }

// MapVersion returns the active map's version.
func (cc *ClusterClient) MapVersion() uint64 { return cc.m.Load().Version }

// Close severs every node's connection pool. Stashed items (see
// Stashed) are lost with the process; drain queues to zero first.
func (cc *ClusterClient) Close() error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	cc.closed = true
	for _, c := range cc.nodes {
		c.Close()
	}
	return nil
}

// Stashed reports how many put-back items are currently parked
// client-side across all queues (0 at quiescence after a full drain).
func (cc *ClusterClient) Stashed() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	n := 0
	for _, s := range cc.stash {
		n += len(s)
	}
	return n
}

// node returns (dialing if needed) the pooled client for addr.
func (cc *ClusterClient) node(addr string) (*Client, error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil, ErrClosed
	}
	if c := cc.nodes[addr]; c != nil {
		cc.mu.Unlock()
		return c, nil
	}
	cc.mu.Unlock()
	// Dial outside the lock; losers of a dial race are closed.
	c, err := Dial(cc.cfg.nodeConfig(addr))
	if err != nil {
		return nil, err
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		c.Close()
		return nil, ErrClosed
	}
	if prev := cc.nodes[addr]; prev != nil {
		c.Close()
		return prev, nil
	}
	cc.nodes[addr] = c
	return c, nil
}

// refreshFrom fetches addr's STATS for queue and adopts its cluster
// map when newer than (or replacing a nil) current map.
func (cc *ClusterClient) refreshFrom(ctx context.Context, queue, addr string) error {
	c, err := cc.node(addr)
	if err != nil {
		return err
	}
	st, err := c.Stats(ctx, queue)
	if err != nil {
		return err
	}
	if st.Cluster == nil {
		return fmt.Errorf("pqclient: node %s serves no cluster map (not in cluster mode?)", addr)
	}
	m, err := st.Cluster.Map()
	if err != nil {
		return fmt.Errorf("pqclient: node %s serves a bad cluster map: %w", addr, err)
	}
	for {
		cur := cc.m.Load()
		if cur != nil && cur.Version >= m.Version {
			return nil // nothing newer
		}
		if cc.m.CompareAndSwap(cur, m) {
			return nil
		}
	}
}

// RefreshMap polls every node (best-effort) and adopts the newest map
// it sees, returning the active version afterwards.
func (cc *ClusterClient) RefreshMap(ctx context.Context, queue string) (uint64, error) {
	m := cc.m.Load()
	var firstErr error
	for _, n := range m.Nodes {
		if err := cc.refreshFrom(ctx, queue, n.Addr); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if v := cc.MapVersion(); v > m.Version {
		return v, nil
	}
	return cc.MapVersion(), firstErr
}

// ownerAddr resolves pri's owner under m.
func ownerAddr(m *wire.ClusterMap, pri int) (string, error) {
	n, ok := m.OwnerOf(pri)
	if !ok {
		return "", fmt.Errorf("pqclient: priority %d outside the cluster map's [0,%d)", pri, m.Priorities)
	}
	return m.Nodes[n].Addr, nil
}

// Insert routes one insert to the priority's owner, refreshing the map
// and re-routing (bounded) when the addressed node NACKs with
// WRONG_NODE.
func (cc *ClusterClient) Insert(ctx context.Context, queue string, pri int, value []byte) error {
	if pri < 0 {
		return fmt.Errorf("pqclient: negative priority %d", pri)
	}
	hint := ""
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		m := cc.m.Load()
		addr := hint
		hint = ""
		if addr == "" {
			var err error
			if addr, err = ownerAddr(m, pri); err != nil {
				return err
			}
		}
		c, err := cc.node(addr)
		if err != nil {
			return err
		}
		err = c.Insert(ctx, queue, pri, value)
		var wn *WrongNodeError
		if !errors.As(err, &wn) {
			return err
		}
		lastErr = err
		// The NACKing node's map disagrees with ours; refetch from it
		// (best-effort — it is reachable, it just answered) and route
		// again. If the refreshed map still points at the same node,
		// fall back to the NACK's owner hint once.
		cc.refreshFrom(ctx, queue, addr)
		if again, err2 := ownerAddr(cc.m.Load(), pri); err2 == nil && again == addr && wn.Owner != "" {
			hint = wn.Owner
		}
	}
	return lastErr
}

// InsertBatch splits the batch by owning node and sends the pieces
// concurrently. accepted is the total across nodes (not a prefix — the
// batch is delivered in per-node pieces); a *RetryError accompanies a
// short count when some node shed, and a WRONG_NODE NACK refreshes the
// map and retries that node's piece once before surfacing.
func (cc *ClusterClient) InsertBatch(ctx context.Context, queue string, items []Item) (accepted int, err error) {
	if len(items) == 0 {
		return 0, nil
	}
	m := cc.m.Load()
	byNode := make(map[string][]Item)
	for _, it := range items {
		addr, err := ownerAddr(m, it.Pri)
		if err != nil {
			return 0, err
		}
		byNode[addr] = append(byNode[addr], it)
	}
	var (
		mu      sync.Mutex
		total   int
		retry   *RetryError
		firstEr error
		wg      sync.WaitGroup
	)
	for addr, part := range byNode {
		wg.Add(1)
		go func(addr string, part []Item) {
			defer wg.Done()
			n, err := cc.insertBatchNode(ctx, queue, addr, part)
			mu.Lock()
			defer mu.Unlock()
			total += n
			var re *RetryError
			if errors.As(err, &re) {
				if retry == nil || re.After > retry.After {
					retry = re
				}
			} else if err != nil && firstEr == nil {
				firstEr = err
			}
		}(addr, part)
	}
	wg.Wait()
	if firstEr != nil {
		return total, firstEr
	}
	if retry != nil {
		return total, retry
	}
	return total, nil
}

// insertBatchNode sends one node's piece, re-routing once on a
// WRONG_NODE NACK after refreshing the map.
func (cc *ClusterClient) insertBatchNode(ctx context.Context, queue, addr string, part []Item) (int, error) {
	c, err := cc.node(addr)
	if err != nil {
		return 0, err
	}
	n, err := c.InsertBatch(ctx, queue, part)
	var wn *WrongNodeError
	if !errors.As(err, &wn) {
		return n, err
	}
	// Stale map: nothing was admitted (misrouted batches are NACKed
	// whole). Re-split the piece under the refreshed map and resend.
	cc.refreshFrom(ctx, queue, addr)
	m := cc.m.Load()
	byNode := make(map[string][]Item)
	for _, it := range part {
		a, err := ownerAddr(m, it.Pri)
		if err != nil {
			return 0, err
		}
		byNode[a] = append(byNode[a], it)
	}
	total := 0
	for a, p := range byNode {
		c, err := cc.node(a)
		if err != nil {
			return total, err
		}
		n, err := c.InsertBatch(ctx, queue, p)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// pickTwo samples two distinct node indices.
func (cc *ClusterClient) pickTwo(n int) (int, int) {
	var i, j int
	cc.mu.Lock()
	if cc.rng != nil {
		i = cc.rng.Intn(n)
		j = cc.rng.Intn(n - 1)
	} else {
		i = rand.Intn(n)
		j = rand.Intn(n - 1)
	}
	cc.mu.Unlock()
	if j >= i {
		j++
	}
	return i, j
}

// stashPop removes and returns the most urgent stashed item for queue.
func (cc *ClusterClient) stashPop(queue string) (Item, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	s := cc.stash[queue]
	if len(s) == 0 {
		return Item{}, false
	}
	best := 0
	for i, it := range s {
		if it.Pri < s[best].Pri {
			best = i
		}
	}
	it := s[best]
	s[best] = s[len(s)-1]
	cc.stash[queue] = s[:len(s)-1]
	return it, true
}

func (cc *ClusterClient) stashPut(queue string, it Item) {
	cc.mu.Lock()
	cc.stash[queue] = append(cc.stash[queue], it)
	cc.mu.Unlock()
}

// putBack hands a two-choice loser back to its owner node; any refusal
// (shed, draining, unreachable, misroute churn) stashes it client-side
// — the RETRY_AFTER hand-off — so the item is never lost and is served
// before further network pops.
func (cc *ClusterClient) putBack(ctx context.Context, queue string, it Item) {
	addr, err := ownerAddr(cc.m.Load(), it.Pri)
	if err == nil {
		var c *Client
		if c, err = cc.node(addr); err == nil {
			err = c.Insert(ctx, queue, it.Pri, it.Value)
		}
	}
	if err != nil {
		cc.stashPut(queue, it)
	}
}

// popResult is one node's answer in a multi-node pop.
type popResult struct {
	it  Item
	ok  bool
	err error
}

func (cc *ClusterClient) popNode(ctx context.Context, queue, addr string) popResult {
	c, err := cc.node(addr)
	if err != nil {
		return popResult{err: err}
	}
	it, ok, err := c.DeleteMin(ctx, queue)
	return popResult{it: it, ok: ok, err: err}
}

// DeleteMin removes and returns the cluster's (approximately) most
// urgent item. Fast path: two-choice pull — sample two distinct nodes,
// pop both concurrently, deliver the better and put the loser back.
// The rank error this relaxation admits is bounded by the same
// winner-of-two argument as MultiQueues (arXiv 2107.01350), with nodes
// in place of internal queues. Slow path: when both samples miss, a
// full sweep in priority order; only all-empty reports ok=false, so an
// item present anywhere is never masked by sampling.
func (cc *ClusterClient) DeleteMin(ctx context.Context, queue string) (it Item, ok bool, err error) {
	if it, ok := cc.stashPop(queue); ok {
		return it, true, nil
	}
	m := cc.m.Load()
	n := len(m.Nodes)
	if n == 1 {
		c, err := cc.node(m.Nodes[0].Addr)
		if err != nil {
			return Item{}, false, err
		}
		return c.DeleteMin(ctx, queue)
	}
	i, j := cc.pickTwo(n)
	var ri, rj popResult
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ri = cc.popNode(ctx, queue, m.Nodes[i].Addr)
	}()
	rj = cc.popNode(ctx, queue, m.Nodes[j].Addr)
	wg.Wait()
	switch {
	case ri.ok && rj.ok:
		win, lose := ri.it, rj.it
		if rj.it.Pri < ri.it.Pri {
			win, lose = rj.it, ri.it
		}
		cc.putBack(ctx, queue, lose)
		return win, true, nil
	case ri.ok:
		return ri.it, true, nil
	case rj.ok:
		return rj.it, true, nil
	}
	// Both samples missed (empty or erred): sweep every node in
	// ascending order of its lowest owned priority, so a genuinely
	// non-empty cluster serves its best available band.
	firstErr := ri.err
	if firstErr == nil {
		firstErr = rj.err
	}
	for _, ni := range nodesByLowestRange(m) {
		r := cc.popNode(ctx, queue, m.Nodes[ni].Addr)
		if r.ok {
			return r.it, true, nil
		}
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	// A concurrent put-back may have stashed during the sweep.
	if it, ok := cc.stashPop(queue); ok {
		return it, true, nil
	}
	if firstErr != nil {
		// Some node was unreachable: emptiness cannot be certified.
		return Item{}, false, firstErr
	}
	return Item{}, false, nil
}

// nodesByLowestRange orders node indices by the lowest priority each
// owns — the sweep order that preserves cluster-level urgency.
func nodesByLowestRange(m *wire.ClusterMap) []int {
	type nodeLo struct{ idx, lo int }
	nl := make([]nodeLo, len(m.Nodes))
	for i, n := range m.Nodes {
		lo := m.Priorities
		for _, r := range n.Ranges {
			if r.Lo < lo {
				lo = r.Lo
			}
		}
		nl[i] = nodeLo{idx: i, lo: lo}
	}
	sort.Slice(nl, func(a, b int) bool { return nl[a].lo < nl[b].lo })
	out := make([]int, len(nl))
	for i, e := range nl {
		out[i] = e.idx
	}
	return out
}

// DeleteMinBatch removes up to max items, serving the stash first and
// then pulling nodes in ascending range order — the drain path. The
// merged result is sorted by priority. A short (or empty) result means
// every node (and the stash) ran dry.
func (cc *ClusterClient) DeleteMinBatch(ctx context.Context, queue string, max int) ([]Item, error) {
	if max < 1 {
		return nil, fmt.Errorf("pqclient: DeleteMinBatch max must be >= 1, got %d", max)
	}
	var out []Item
	for len(out) < max {
		it, ok := cc.stashPop(queue)
		if !ok {
			break
		}
		out = append(out, it)
	}
	m := cc.m.Load()
	var firstErr error
	for _, ni := range nodesByLowestRange(m) {
		want := max - len(out)
		if want <= 0 {
			break
		}
		c, err := cc.node(m.Nodes[ni].Addr)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		items, err := c.DeleteMinBatch(ctx, queue, want)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out = append(out, items...)
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Pri < out[b].Pri })
	if len(out) == 0 && firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// NodeStats fetches every node's view of one queue, keyed by node
// address.
func (cc *ClusterClient) NodeStats(ctx context.Context, queue string) (map[string]QueueStats, error) {
	m := cc.m.Load()
	out := make(map[string]QueueStats, len(m.Nodes))
	for _, n := range m.Nodes {
		c, err := cc.node(n.Addr)
		if err != nil {
			return out, err
		}
		st, err := c.Stats(ctx, queue)
		if err != nil {
			return out, err
		}
		out[n.Addr] = st
	}
	return out, nil
}

// Stats aggregates the per-node counters of one queue: counters sum,
// Size sums, and the identity fields come from the map plus the first
// node. The cluster block carries the active map.
func (cc *ClusterClient) Stats(ctx context.Context, queue string) (QueueStats, error) {
	m := cc.m.Load()
	per, err := cc.NodeStats(ctx, queue)
	if err != nil {
		return QueueStats{}, err
	}
	var agg QueueStats
	first := true
	for _, n := range m.Nodes {
		st := per[n.Addr]
		if first {
			agg = st
			first = false
			continue
		}
		agg.Inserts += st.Inserts
		agg.Deletes += st.Deletes
		agg.EmptyDeletes += st.EmptyDeletes
		agg.RetryAfter += st.RetryAfter
		agg.Size += st.Size
		agg.Draining = agg.Draining || st.Draining
		agg.Shards += st.Shards
	}
	agg.Latency = nil // per-node distributions don't merge; use NodeStats
	agg.Durability = nil
	return agg, nil
}

// Drain tells every node to stop admitting inserts to the queue;
// remaining sums what was still queued cluster-wide (including the
// local stash).
func (cc *ClusterClient) Drain(ctx context.Context, queue string) (remaining uint64, err error) {
	m := cc.m.Load()
	var total uint64
	for _, n := range m.Nodes {
		c, err := cc.node(n.Addr)
		if err != nil {
			return total, err
		}
		rem, err := c.Drain(ctx, queue)
		if err != nil {
			return total, err
		}
		total += rem
	}
	cc.mu.Lock()
	total += uint64(len(cc.stash[queue]))
	cc.mu.Unlock()
	return total, nil
}
