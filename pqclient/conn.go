package pqclient

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"pq/internal/wire"
)

// call is one logical request. Insert calls (kind TInsert) carry their
// item for coalescing; every other kind arrives with its payload
// pre-encoded. The conn closes done exactly once with err (and, for
// non-insert kinds, resp) set.
type call struct {
	kind    wire.Type
	queue   string
	item    wire.Item // TInsert only
	payload []byte    // every other kind
	solo    bool      // never coalesce (set when resent after a batch TError)

	resp wire.Frame
	err  error
	done chan struct{}
}

func (cl *call) finish(resp wire.Frame, err error) {
	cl.resp, cl.err = resp, err
	close(cl.done)
}

// pending is what one request id resolves: a single call, or the
// member calls of a coalesced INSERT_BATCH in wire order.
type pending struct {
	calls []*call
}

// conn is one pooled connection: a writer goroutine that drains sendCh
// (coalescing adjacent same-queue inserts and flushing only when the
// pipeline runs dry) and a reader goroutine that matches response
// frames to pending requests by id.
type conn struct {
	cfg Config
	nc  net.Conn

	sendCh chan *call

	// Encode scratch, touched only by the writeLoop goroutine: frames
	// are built in enc and written in one go, and coalesced batches
	// borrow itemsScratch, so the steady-state send path reuses the
	// same buffers instead of allocating per call.
	enc          []byte
	itemsScratch []wire.Item

	mu      sync.Mutex
	pend    map[uint32]pending
	nextID  uint32
	err     error
	closed  chan struct{}
	closeFn sync.Once
}

func dialConn(cfg Config) (*conn, error) {
	nc, err := net.DialTimeout("tcp", cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := &conn{
		cfg:    cfg,
		nc:     nc,
		sendCh: make(chan *call, 4*cfg.MaxCoalesce),
		pend:   make(map[uint32]pending),
		closed: make(chan struct{}),
	}
	go c.writeLoop()
	go c.readLoop()
	return c, nil
}

func (c *conn) dead() bool {
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}

func (c *conn) closeErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// close tears the connection down and fails everything in flight.
func (c *conn) close(err error) {
	c.closeFn.Do(func() {
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		failed := c.pend
		c.pend = map[uint32]pending{}
		c.mu.Unlock()
		close(c.closed)
		c.nc.Close()
		for _, p := range failed {
			for _, cl := range p.calls {
				cl.finish(wire.Frame{}, err)
			}
		}
		// Fail whatever is parked in the send queue; producers racing
		// with this drain see c.closed in their select.
		for {
			select {
			case cl := <-c.sendCh:
				cl.finish(wire.Frame{}, err)
			default:
				return
			}
		}
	})
}

// register assigns a request id to a group of calls.
func (c *conn) register(calls []*call) (uint32, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return 0, false
	}
	c.nextID++
	id := c.nextID
	c.pend[id] = pending{calls: calls}
	return id, true
}

func (c *conn) take(id uint32) (pending, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pend[id]
	if ok {
		delete(c.pend, id)
	}
	return p, ok
}

// writeLoop drains sendCh. A popped Insert greedily absorbs further
// queued Inserts to the same queue (up to MaxCoalesce) into one
// INSERT_BATCH frame; the buffered writer is flushed only when the
// send queue runs dry, so pipelined callers share syscalls.
func (c *conn) writeLoop() {
	bw := bufio.NewWriterSize(c.nc, 64<<10)
	var holdover *call
	for {
		var cl *call
		if holdover != nil {
			cl, holdover = holdover, nil
		} else {
			select {
			case cl = <-c.sendCh:
			case <-c.closed:
				return
			}
		}
		var werr error
		if cl.kind == wire.TInsert && !cl.solo && c.cfg.MaxCoalesce > 1 {
			group := []*call{cl}
			// Bound the coalesced INSERT_BATCH by encoded payload bytes
			// as well as item count, so the merged frame never exceeds
			// what the server's ReadFrame accepts.
			bytes := 2 + len(cl.queue) + 4 + 8 + len(cl.item.Value)
		collect:
			for len(group) < c.cfg.MaxCoalesce {
				select {
				case nx := <-c.sendCh:
					if nx.kind == wire.TInsert && !nx.solo && nx.queue == cl.queue &&
						bytes+8+len(nx.item.Value) <= wire.MaxPayload {
						group = append(group, nx)
						bytes += 8 + len(nx.item.Value)
					} else {
						holdover = nx
						break collect
					}
				default:
					break collect
				}
			}
			werr = c.writeInserts(bw, group)
		} else if cl.kind == wire.TInsert {
			// Un-coalesced insert (solo resend or MaxCoalesce 1): its
			// payload is still the raw item, so it must be encoded here,
			// not written through the pre-encoded path.
			werr = c.writeInserts(bw, []*call{cl})
		} else {
			werr = c.writeOne(bw, cl)
		}
		if werr == nil && holdover == nil && len(c.sendCh) == 0 {
			werr = bw.Flush()
		}
		if werr != nil {
			c.close(werr)
			return
		}
	}
}

// oversizedErr rejects a request whose encoded payload the server's
// ReadFrame would refuse; failing it client-side keeps the connection
// (and every other pipelined request on it) alive.
func oversizedErr(n int) error {
	return fmt.Errorf("pqclient: request payload %d bytes exceeds the %d-byte frame limit", n, wire.MaxPayload)
}

// writeInserts sends a group of same-queue inserts as one frame,
// encoded into the conn's reusable scratch. The payload size is
// computed up front so an oversized group is refused before a request
// id is burned on it.
func (c *conn) writeInserts(bw *bufio.Writer, group []*call) error {
	var typ wire.Type
	var size int
	if len(group) == 1 {
		typ = wire.TInsert
		size = 2 + len(group[0].queue) + 8 + len(group[0].item.Value)
	} else {
		typ = wire.TInsertBatch
		size = 2 + len(group[0].queue) + 4
		for _, g := range group {
			size += 8 + len(g.item.Value)
		}
	}
	if size > wire.MaxPayload {
		err := oversizedErr(size)
		for _, g := range group {
			g.finish(wire.Frame{}, err)
		}
		return nil
	}
	id, ok := c.register(group)
	if !ok {
		return c.closeErr()
	}
	buf, off := wire.BeginFrame(c.enc[:0], typ, id)
	if typ == wire.TInsert {
		buf = wire.Insert{Queue: group[0].queue, Item: group[0].item}.Append(buf)
	} else {
		items := c.itemsScratch[:0]
		for _, g := range group {
			items = append(items, g.item)
		}
		c.itemsScratch = items[:0]
		buf = wire.InsertBatch{Queue: group[0].queue, Items: items}.Append(buf)
	}
	c.enc = wire.EndFrame(buf, off)
	_, err := bw.Write(c.enc)
	return err
}

func (c *conn) writeOne(bw *bufio.Writer, cl *call) error {
	if len(cl.payload) > wire.MaxPayload {
		cl.finish(wire.Frame{}, oversizedErr(len(cl.payload)))
		return nil
	}
	id, ok := c.register([]*call{cl})
	if !ok {
		return c.closeErr()
	}
	c.enc = wire.AppendFrameHeader(c.enc[:0], cl.kind, id, len(cl.payload))
	c.enc = append(c.enc, cl.payload...)
	_, err := bw.Write(c.enc)
	return err
}

// resendSolo re-enqueues calls marked solo so they are sent as
// individual frames. Runs in its own goroutine: readLoop must never
// block on a full send queue (requests ahead of it could be waiting on
// responses this readLoop would deliver). solo calls are never
// re-coalesced, so a second TError resolves each call individually and
// the retry cannot loop.
func (c *conn) resendSolo(calls []*call) {
	go func() {
		for _, cl := range calls {
			cl.solo = true
			select {
			case c.sendCh <- cl:
			case <-c.closed:
				cl.finish(wire.Frame{}, c.closeErr())
			}
		}
	}()
}

// readLoop matches responses to pending calls. Payloads come from the
// wire buffer pool; a response to an insert-only group is fully decoded
// inside deliver (Insert callers read only cl.err, never resp.Payload),
// so those payloads can be recycled here — the insert hot path reuses
// one pooled buffer per response instead of allocating each.
func (c *conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, 64<<10)
	var fr wire.FrameReader
	for {
		f, err := fr.ReadFrame(br)
		if err != nil {
			c.close(err)
			return
		}
		p, ok := c.take(f.ID)
		if !ok {
			wire.PutBuf(f.Payload)
			continue // response to an abandoned request
		}
		insertOnly := true
		for _, cl := range p.calls {
			if cl.kind != wire.TInsert {
				insertOnly = false
				break
			}
		}
		c.deliver(p, f)
		if insertOnly {
			wire.PutBuf(f.Payload)
		}
	}
}

// deliver resolves a pending entry from its response frame.
func (c *conn) deliver(p pending, f wire.Frame) {
	// A group of >1 calls is a coalesced INSERT_BATCH: the server
	// admitted an in-order prefix.
	if len(p.calls) > 1 || (len(p.calls) == 1 && p.calls[0].kind == wire.TInsert) {
		switch f.Type {
		case wire.TInsertOK:
			ok, err := wire.DecodeInsertOK(f.Payload)
			if err != nil {
				for _, cl := range p.calls {
					cl.finish(wire.Frame{}, &ServerError{Msg: "bad INSERT_OK payload"})
				}
				return
			}
			retry := &RetryError{After: time.Duration(ok.RetryAfterMillis) * time.Millisecond}
			for i, cl := range p.calls {
				if uint32(i) < ok.Accepted {
					cl.finish(f, nil)
				} else {
					cl.finish(f, retry)
				}
			}
		case wire.TRetryAfter:
			ra, _ := wire.DecodeRetryAfter(f.Payload)
			retry := &RetryError{After: time.Duration(ra.Millis) * time.Millisecond}
			for _, cl := range p.calls {
				cl.finish(f, retry)
			}
		case wire.TError:
			if len(p.calls) > 1 {
				// The server rejects a whole INSERT_BATCH when any
				// member is bad (e.g. one caller's out-of-range
				// priority). These calls were coalesced from unrelated
				// Inserts, so don't fate-share the error: resend each
				// member as its own un-coalesced frame and let the
				// server judge them individually.
				c.resendSolo(p.calls)
				return
			}
			em, _ := wire.DecodeErrorMsg(f.Payload)
			for _, cl := range p.calls {
				cl.finish(f, &ServerError{Msg: em.Msg})
			}
		case wire.TWrongNode:
			if len(p.calls) > 1 {
				// A cluster node NACKs a whole INSERT_BATCH when any
				// member's priority belongs to another node. Coalesced
				// members may have different owners, so exactly like the
				// TError arm: resend each solo and let the server judge
				// them individually — the truly misrouted ones come back
				// as individual WrongNodeErrors for their callers.
				c.resendSolo(p.calls)
				return
			}
			wn, _ := wire.DecodeWrongNode(f.Payload)
			for _, cl := range p.calls {
				cl.finish(f, &WrongNodeError{MapVersion: wn.MapVersion, Owner: wn.Owner})
			}
		default:
			for _, cl := range p.calls {
				cl.finish(f, &ServerError{Msg: "unexpected " + f.Type.String() + " response to insert"})
			}
		}
		return
	}

	cl := p.calls[0]
	switch f.Type {
	case wire.TError:
		em, _ := wire.DecodeErrorMsg(f.Payload)
		cl.finish(f, &ServerError{Msg: em.Msg})
	case wire.TWrongNode:
		wn, _ := wire.DecodeWrongNode(f.Payload)
		cl.finish(f, &WrongNodeError{MapVersion: wn.MapVersion, Owner: wn.Owner})
	case wire.TRetryAfter:
		ra, _ := wire.DecodeRetryAfter(f.Payload)
		cl.finish(f, &RetryError{After: time.Duration(ra.Millis) * time.Millisecond})
	default:
		cl.finish(f, nil)
	}
}
