// Package pq provides scalable concurrent bounded-range priority queues
// for Go, reproducing "Scalable Concurrent Priority Queue Algorithms"
// (Shavit & Zemach, PODC 1999).
//
// A bounded-range priority queue supports a fixed set of priorities
// 0..N-1 (smaller is more urgent), the shape found in OS schedulers and
// QoS systems. Seven implementations are provided — the five baselines
// the paper evaluates and its two contributions:
//
//   - SingleLock: a sequential heap under one MCS queue lock.
//   - HuntEtAl: the concurrent heap of Hunt et al. (fine-grained node
//     locks, bit-reversed insertions).
//   - SkipList: a bounded-range Pugh skip list with a delete-bin.
//   - SimpleLinear: an array of lock-based bins, scanned on delete-min.
//   - SimpleTree: a binary tree of counters over bins, descended with
//     bounded fetch-and-decrement.
//   - LinearFunnels: SimpleLinear with combining-funnel stacks as bins.
//   - FunnelTree: SimpleTree with combining-funnel counters at the hot
//     top levels and funnel stacks as bins.
//
// SingleLock, HuntEtAl, SkipList and SimpleLinear are linearizable;
// SimpleTree, LinearFunnels and FunnelTree are quiescently consistent:
// overlapping operations may reorder, but between quiescent points the
// queue behaves exactly like a sequential priority queue. Under low
// contention prefer SimpleLinear (few priorities) or SimpleTree (many);
// under heavy multicore contention the funnel-based queues are the
// scalable choice — that trade-off is the paper's central result.
//
// An eighth, opt-in implementation relaxes the semantics themselves:
// MultiQueue (Williams & Sanders) spreads items over many small heaps
// and lets delete-min return an item with up to O(c·concurrency)
// strictly better items still queued, in exchange for near-contention-
// free scaling. It is excluded from Algorithms() and must be selected
// explicitly; RelaxStatsOf reports its measured rank error.
//
// The internal/sim and internal/simpq packages contain a deterministic
// ccNUMA multiprocessor simulator and simulator-hosted versions of the
// same algorithms, used to regenerate the paper's figures (see
// cmd/pqbench and EXPERIMENTS.md).
package pq

import (
	"fmt"
	"strings"

	"pq/internal/core"
	"pq/internal/funnel"
)

// Queue is a bounded-range concurrent priority queue over values of type
// V. Priorities are integers in [0, NumPriorities()); smaller is more
// urgent. All methods are safe for concurrent use.
type Queue[V any] interface {
	// Insert adds v with the given priority. It panics if pri is out of
	// range, like an out-of-range slice index.
	Insert(pri int, v V)
	// DeleteMin removes and returns an element with the smallest
	// priority, or ok=false if the queue appears empty.
	DeleteMin() (v V, ok bool)
	// NumPriorities reports the fixed priority range.
	NumPriorities() int
}

// Item pairs a priority with a value — the unit of batch operations.
type Item[V any] = core.Item[V]

// BatchQueue extends Queue with native batch operations that amortize
// synchronization over many items: one lock hold, skip-list descent,
// funnel traversal or multi-unit counter RMW covers a whole batch
// instead of one per item. Every queue built by New implements it.
type BatchQueue[V any] = core.BatchQueue[V]

// InsertBatch adds every item to q, using its native batch fast path
// when it has one (every queue built by New does) and falling back to
// one Insert per item for external Queue implementations.
func InsertBatch[V any](q Queue[V], items []Item[V]) {
	if bq, ok := q.(BatchQueue[V]); ok {
		bq.InsertBatch(items)
		return
	}
	for _, it := range items {
		q.Insert(it.Pri, it.Val)
	}
}

// DeleteMinBatch removes up to k items from q, using its native batch
// fast path when it has one. Fewer than k items means the queue ran dry
// (or appeared to, under contention) partway through. In the fallback
// path for external Queue implementations, DeleteMin does not report
// priorities, so returned items carry Pri = -1.
func DeleteMinBatch[V any](q Queue[V], k int) []Item[V] {
	if bq, ok := q.(BatchQueue[V]); ok {
		return bq.DeleteMinBatch(k)
	}
	var out []Item[V]
	for len(out) < k {
		v, ok := q.DeleteMin()
		if !ok {
			break
		}
		out = append(out, Item[V]{Pri: -1, Val: v})
	}
	return out
}

// Drain removes and returns every item in q in priority order — the
// snapshot iterator the durable server uses to enumerate live contents
// (pqd's WAL snapshots and /statusz are built on it). It repeatedly
// pulls native batches until the queue stays empty. For quiescently
// consistent queues the result is exact only between quiescent points:
// items inserted concurrently with the drain may or may not appear.
// Callers that need the queue unchanged afterwards re-insert the items
// with InsertBatch.
func Drain[V any](q Queue[V]) []Item[V] {
	var out []Item[V]
	for {
		got := DeleteMinBatch(q, 1024)
		if len(got) == 0 {
			return out
		}
		out = append(out, got...)
	}
}

// Algorithm selects a queue implementation.
type Algorithm = core.Algorithm

// The seven algorithms from the paper.
const (
	SingleLock    = core.SingleLock
	HuntEtAl      = core.HuntEtAl
	SkipList      = core.SkipList
	SimpleLinear  = core.SimpleLinear
	SimpleTree    = core.SimpleTree
	LinearFunnels = core.LinearFunnels
	FunnelTree    = core.FunnelTree
)

// MultiQueue is the relaxed MultiQueue of Williams & Sanders: c
// sequential heaps per goroutine, inserts go to a random heap,
// delete-min pops the better of two random heap tops. It is NOT an
// exact priority queue — delete-min may return an item while up to
// O(c·concurrency) strictly better items remain (whp) — and so is
// excluded from Algorithms(); select it explicitly when the caller can
// tolerate reordering in exchange for contention-free scaling.
const MultiQueue = core.MultiQueue

// Algorithms lists every exact implementation in the paper's order.
// Relaxed algorithms are deliberately excluded: code that iterates the
// registry (differential tests, benchmark sweeps) may assume strict
// delete-min order. Use AllAlgorithms to include them.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(core.Algorithms))
	copy(out, core.Algorithms)
	return out
}

// RelaxedAlgorithms lists the algorithms with relaxed delete-min order.
func RelaxedAlgorithms() []Algorithm {
	out := make([]Algorithm, len(core.RelaxedAlgorithms))
	copy(out, core.RelaxedAlgorithms)
	return out
}

// AllAlgorithms lists every implementation: the paper's seven exact
// queues followed by the relaxed ones.
func AllAlgorithms() []Algorithm {
	return core.All()
}

// IsRelaxed reports whether alg trades exact delete-min order for
// scalability (see MultiQueue).
func IsRelaxed(alg Algorithm) bool {
	return core.IsRelaxed(alg)
}

// ParseAlgorithm resolves a case-insensitive algorithm name; the error
// lists every valid name.
func ParseAlgorithm(name string) (Algorithm, error) {
	if alg, ok := core.ParseAlgorithm(name); ok {
		return alg, nil
	}
	names := make([]string, 0, len(core.All()))
	for _, a := range core.All() {
		names = append(names, string(a))
	}
	return "", fmt.Errorf("pq: unknown algorithm %q (valid: %s)", name, strings.Join(names, ", "))
}

// FunnelParams tunes the combining funnels used by LinearFunnels and
// FunnelTree; see the fields of funnel.Params.
type FunnelParams = funnel.Params

// Option customizes queue construction.
type Option func(*core.Config)

// WithConcurrency sets the expected number of contending goroutines,
// which sizes the funnel combining layers. The default is
// runtime.GOMAXPROCS(0).
func WithConcurrency(n int) Option {
	return func(c *core.Config) { c.Concurrency = n }
}

// WithFunnelParams overrides funnel tuning entirely.
func WithFunnelParams(p FunnelParams) Option {
	return func(c *core.Config) { c.FunnelParams = &p }
}

// WithFunnelCutoff sets how many tree levels from the root use funnel
// counters in FunnelTree (the paper uses 4; deeper counters see little
// traffic and use plain atomics).
func WithFunnelCutoff(levels int) Option {
	return func(c *core.Config) { c.FunnelCutoff = levels }
}

// WithFIFOBins makes every queue serve items of equal priority
// first-in-first-out — the fairness trade-off of the paper's Section
// 3.2. SimpleLinear and SimpleTree switch to FIFO bins; the funnel-based
// queues use the hybrid the paper suggests there: elimination still
// happens in the funnel, but the central storage is FIFO.
func WithFIFOBins() Option {
	return func(c *core.Config) { c.FIFOBins = true }
}

// WithMultiQueueC sets the MultiQueue's queues-per-goroutine multiplier
// c: the queue uses about c times WithConcurrency sequential heaps.
// Larger c lowers contention and raises rank error (both scale with
// c·concurrency). The default is 2, the value Williams & Sanders
// recommend.
func WithMultiQueueC(c int) Option {
	return func(cfg *core.Config) { cfg.MultiQueueC = c }
}

// WithMultiQueueSticky makes MultiQueue operations reuse their chosen
// heaps for n consecutive operations, trading rank error for locality.
func WithMultiQueueSticky(n int) Option {
	return func(cfg *core.Config) { cfg.MultiQueueSticky = n }
}

// WithMultiQueuePopBatch makes each MultiQueue delete-min pop up to n
// items while it holds a heap lock, buffering the extras for the same
// goroutine's later calls — fewer lock acquisitions, more reordering.
func WithMultiQueuePopBatch(n int) Option {
	return func(cfg *core.Config) { cfg.MultiQueuePopBatch = n }
}

// WithMultiQueueRankTracking enables or disables the MultiQueue's exact
// rank-error accounting (see RelaxStatsOf). It is on by default for
// priority ranges up to a few thousand; tracking costs one prefix scan
// of per-priority counters per delete-min.
func WithMultiQueueRankTracking(on bool) Option {
	return func(cfg *core.Config) { cfg.MultiQueueNoRank = !on }
}

// RelaxStats is the measured rank-error accounting of a relaxed queue:
// how many strictly better items were present each time an item was
// popped. See core.RelaxStats for field documentation.
type RelaxStats = core.RelaxStats

// RelaxStatsOf returns q's rank-error statistics when q is a relaxed
// queue built by New (ok=false otherwise). The strict algorithms never
// pop over a better item, so they carry no such accounting.
func RelaxStatsOf[V any](q Queue[V]) (RelaxStats, bool) {
	if rq, ok := q.(core.RelaxedQueue); ok {
		return rq.RelaxStats(), true
	}
	return RelaxStats{}, false
}

// New builds a queue with the given algorithm and priority range.
func New[V any](alg Algorithm, priorities int, opts ...Option) (Queue[V], error) {
	cfg := core.Config{Priorities: priorities}
	for _, o := range opts {
		o(&cfg)
	}
	return core.New[V](alg, cfg)
}

// NewFunnelTree builds the paper's most scalable queue, FunnelTree. It is
// the recommended default for heavily contended queues with more than a
// handful of priorities.
func NewFunnelTree[V any](priorities int, opts ...Option) (Queue[V], error) {
	return New[V](FunnelTree, priorities, opts...)
}

// NewLinearFunnels builds LinearFunnels, the scalable choice for very
// small priority ranges (the paper suggests 4 or fewer).
func NewLinearFunnels[V any](priorities int, opts ...Option) (Queue[V], error) {
	return New[V](LinearFunnels, priorities, opts...)
}

// Counter is a combining-funnel shared counter (fetch-and-increment and
// bounded fetch-and-decrement with elimination) — the paper's Section 3.3
// primitive, exposed because it is useful on its own (semaphore-like
// admission counters, bounded resource pools).
type Counter = funnel.Counter

// NoBound disables one side of a NewCounterBounds range.
const NoBound = funnel.NoBound

// resolveFunnelParams applies opts and returns the funnel tuning they
// select: an explicit WithFunnelParams wins, otherwise defaults sized
// to WithConcurrency (or GOMAXPROCS). All standalone funnel-object
// constructors resolve options through here so the two paths cannot
// drift.
func resolveFunnelParams(opts []Option) funnel.Params {
	cfg := core.Config{Priorities: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.FunnelParams != nil {
		return *cfg.FunnelParams
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = defaultConcurrency()
	}
	return funnel.DefaultParams(conc)
}

// NewCounter builds a funnel counter with the given initial value. If
// bounded, decrements never take the value below bound and reversing
// operations eliminate.
func NewCounter(initial int64, bounded bool, bound int64, opts ...Option) *Counter {
	return funnel.NewCounter(resolveFunnelParams(opts), initial, bounded, bound)
}

// NewCounterBounds builds a funnel counter whose value stays in
// [lower, upper]: fetch-and-decrement never goes below lower and
// fetch-and-increment (Counter.BFaI) never above upper. Use ±NoBound to
// disable a side. An upper-bounded counter is an admission semaphore —
// the use the pqd server puts it to.
func NewCounterBounds(initial, lower, upper int64, opts ...Option) *Counter {
	return funnel.NewCounterBounds(resolveFunnelParams(opts), initial, lower, upper)
}

// Stack is a combining-funnel stack with elimination, exposed for the
// same reason: it is the paper's scalable bin.
type Stack[V any] = funnel.Stack[V]

// NewStack builds an empty funnel stack.
func NewStack[V any](opts ...Option) *Stack[V] {
	return funnel.NewStack[V](resolveFunnelParams(opts))
}
