// Package pq provides scalable concurrent bounded-range priority queues
// for Go, reproducing "Scalable Concurrent Priority Queue Algorithms"
// (Shavit & Zemach, PODC 1999).
//
// A bounded-range priority queue supports a fixed set of priorities
// 0..N-1 (smaller is more urgent), the shape found in OS schedulers and
// QoS systems. Seven implementations are provided — the five baselines
// the paper evaluates and its two contributions:
//
//   - SingleLock: a sequential heap under one MCS queue lock.
//   - HuntEtAl: the concurrent heap of Hunt et al. (fine-grained node
//     locks, bit-reversed insertions).
//   - SkipList: a bounded-range Pugh skip list with a delete-bin.
//   - SimpleLinear: an array of lock-based bins, scanned on delete-min.
//   - SimpleTree: a binary tree of counters over bins, descended with
//     bounded fetch-and-decrement.
//   - LinearFunnels: SimpleLinear with combining-funnel stacks as bins.
//   - FunnelTree: SimpleTree with combining-funnel counters at the hot
//     top levels and funnel stacks as bins.
//
// SingleLock, HuntEtAl, SkipList and SimpleLinear are linearizable;
// SimpleTree, LinearFunnels and FunnelTree are quiescently consistent:
// overlapping operations may reorder, but between quiescent points the
// queue behaves exactly like a sequential priority queue. Under low
// contention prefer SimpleLinear (few priorities) or SimpleTree (many);
// under heavy multicore contention the funnel-based queues are the
// scalable choice — that trade-off is the paper's central result.
//
// The internal/sim and internal/simpq packages contain a deterministic
// ccNUMA multiprocessor simulator and simulator-hosted versions of the
// same algorithms, used to regenerate the paper's figures (see
// cmd/pqbench and EXPERIMENTS.md).
package pq

import (
	"pq/internal/core"
	"pq/internal/funnel"
)

// Queue is a bounded-range concurrent priority queue over values of type
// V. Priorities are integers in [0, NumPriorities()); smaller is more
// urgent. All methods are safe for concurrent use.
type Queue[V any] interface {
	// Insert adds v with the given priority. It panics if pri is out of
	// range, like an out-of-range slice index.
	Insert(pri int, v V)
	// DeleteMin removes and returns an element with the smallest
	// priority, or ok=false if the queue appears empty.
	DeleteMin() (v V, ok bool)
	// NumPriorities reports the fixed priority range.
	NumPriorities() int
}

// Item pairs a priority with a value — the unit of batch operations.
type Item[V any] = core.Item[V]

// BatchQueue extends Queue with native batch operations that amortize
// synchronization over many items: one lock hold, skip-list descent,
// funnel traversal or multi-unit counter RMW covers a whole batch
// instead of one per item. Every queue built by New implements it.
type BatchQueue[V any] = core.BatchQueue[V]

// InsertBatch adds every item to q, using its native batch fast path
// when it has one (every queue built by New does) and falling back to
// one Insert per item for external Queue implementations.
func InsertBatch[V any](q Queue[V], items []Item[V]) {
	if bq, ok := q.(BatchQueue[V]); ok {
		bq.InsertBatch(items)
		return
	}
	for _, it := range items {
		q.Insert(it.Pri, it.Val)
	}
}

// DeleteMinBatch removes up to k items from q, using its native batch
// fast path when it has one. Fewer than k items means the queue ran dry
// (or appeared to, under contention) partway through. In the fallback
// path for external Queue implementations, DeleteMin does not report
// priorities, so returned items carry Pri = -1.
func DeleteMinBatch[V any](q Queue[V], k int) []Item[V] {
	if bq, ok := q.(BatchQueue[V]); ok {
		return bq.DeleteMinBatch(k)
	}
	var out []Item[V]
	for len(out) < k {
		v, ok := q.DeleteMin()
		if !ok {
			break
		}
		out = append(out, Item[V]{Pri: -1, Val: v})
	}
	return out
}

// Drain removes and returns every item in q in priority order — the
// snapshot iterator the durable server uses to enumerate live contents
// (pqd's WAL snapshots and /statusz are built on it). It repeatedly
// pulls native batches until the queue stays empty. For quiescently
// consistent queues the result is exact only between quiescent points:
// items inserted concurrently with the drain may or may not appear.
// Callers that need the queue unchanged afterwards re-insert the items
// with InsertBatch.
func Drain[V any](q Queue[V]) []Item[V] {
	var out []Item[V]
	for {
		got := DeleteMinBatch(q, 1024)
		if len(got) == 0 {
			return out
		}
		out = append(out, got...)
	}
}

// Algorithm selects a queue implementation.
type Algorithm = core.Algorithm

// The seven algorithms from the paper.
const (
	SingleLock    = core.SingleLock
	HuntEtAl      = core.HuntEtAl
	SkipList      = core.SkipList
	SimpleLinear  = core.SimpleLinear
	SimpleTree    = core.SimpleTree
	LinearFunnels = core.LinearFunnels
	FunnelTree    = core.FunnelTree
)

// Algorithms lists every implementation in the paper's order.
func Algorithms() []Algorithm {
	out := make([]Algorithm, len(core.Algorithms))
	copy(out, core.Algorithms)
	return out
}

// FunnelParams tunes the combining funnels used by LinearFunnels and
// FunnelTree; see the fields of funnel.Params.
type FunnelParams = funnel.Params

// Option customizes queue construction.
type Option func(*core.Config)

// WithConcurrency sets the expected number of contending goroutines,
// which sizes the funnel combining layers. The default is
// runtime.GOMAXPROCS(0).
func WithConcurrency(n int) Option {
	return func(c *core.Config) { c.Concurrency = n }
}

// WithFunnelParams overrides funnel tuning entirely.
func WithFunnelParams(p FunnelParams) Option {
	return func(c *core.Config) { c.FunnelParams = &p }
}

// WithFunnelCutoff sets how many tree levels from the root use funnel
// counters in FunnelTree (the paper uses 4; deeper counters see little
// traffic and use plain atomics).
func WithFunnelCutoff(levels int) Option {
	return func(c *core.Config) { c.FunnelCutoff = levels }
}

// WithFIFOBins makes every queue serve items of equal priority
// first-in-first-out — the fairness trade-off of the paper's Section
// 3.2. SimpleLinear and SimpleTree switch to FIFO bins; the funnel-based
// queues use the hybrid the paper suggests there: elimination still
// happens in the funnel, but the central storage is FIFO.
func WithFIFOBins() Option {
	return func(c *core.Config) { c.FIFOBins = true }
}

// New builds a queue with the given algorithm and priority range.
func New[V any](alg Algorithm, priorities int, opts ...Option) (Queue[V], error) {
	cfg := core.Config{Priorities: priorities}
	for _, o := range opts {
		o(&cfg)
	}
	return core.New[V](alg, cfg)
}

// NewFunnelTree builds the paper's most scalable queue, FunnelTree. It is
// the recommended default for heavily contended queues with more than a
// handful of priorities.
func NewFunnelTree[V any](priorities int, opts ...Option) (Queue[V], error) {
	return New[V](FunnelTree, priorities, opts...)
}

// NewLinearFunnels builds LinearFunnels, the scalable choice for very
// small priority ranges (the paper suggests 4 or fewer).
func NewLinearFunnels[V any](priorities int, opts ...Option) (Queue[V], error) {
	return New[V](LinearFunnels, priorities, opts...)
}

// Counter is a combining-funnel shared counter (fetch-and-increment and
// bounded fetch-and-decrement with elimination) — the paper's Section 3.3
// primitive, exposed because it is useful on its own (semaphore-like
// admission counters, bounded resource pools).
type Counter = funnel.Counter

// NoBound disables one side of a NewCounterBounds range.
const NoBound = funnel.NoBound

// resolveFunnelParams applies opts and returns the funnel tuning they
// select: an explicit WithFunnelParams wins, otherwise defaults sized
// to WithConcurrency (or GOMAXPROCS). All standalone funnel-object
// constructors resolve options through here so the two paths cannot
// drift.
func resolveFunnelParams(opts []Option) funnel.Params {
	cfg := core.Config{Priorities: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.FunnelParams != nil {
		return *cfg.FunnelParams
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = defaultConcurrency()
	}
	return funnel.DefaultParams(conc)
}

// NewCounter builds a funnel counter with the given initial value. If
// bounded, decrements never take the value below bound and reversing
// operations eliminate.
func NewCounter(initial int64, bounded bool, bound int64, opts ...Option) *Counter {
	return funnel.NewCounter(resolveFunnelParams(opts), initial, bounded, bound)
}

// NewCounterBounds builds a funnel counter whose value stays in
// [lower, upper]: fetch-and-decrement never goes below lower and
// fetch-and-increment (Counter.BFaI) never above upper. Use ±NoBound to
// disable a side. An upper-bounded counter is an admission semaphore —
// the use the pqd server puts it to.
func NewCounterBounds(initial, lower, upper int64, opts ...Option) *Counter {
	return funnel.NewCounterBounds(resolveFunnelParams(opts), initial, lower, upper)
}

// Stack is a combining-funnel stack with elimination, exposed for the
// same reason: it is the paper's scalable bin.
type Stack[V any] = funnel.Stack[V]

// NewStack builds an empty funnel stack.
func NewStack[V any](opts ...Option) *Stack[V] {
	return funnel.NewStack[V](resolveFunnelParams(opts))
}
