module pq

go 1.24
