module pq

go 1.23
