// Scheduler: a fixed-priority task scheduler of the kind the paper's
// introduction motivates (operating-system run queues with a bounded
// range of priorities, cf. its Tera MTA and StarT-NG references).
//
// A pool of worker goroutines pulls tasks from one shared FunnelTree
// queue; producers submit tasks at priorities 0 (interactive) through 7
// (batch). The demo shows that (a) the queue sustains many concurrent
// producers and consumers, and (b) high-priority work systematically
// overtakes low-priority work.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"pq"
)

// Task is one schedulable unit of work.
type Task struct {
	Name     string
	Priority int
	Work     func()
}

// Scheduler dispatches tasks to a fixed worker pool in priority order.
type Scheduler struct {
	queue   pq.Queue[Task]
	pending atomic.Int64
	done    atomic.Int64
	stop    chan struct{}
	wg      sync.WaitGroup
	workers int
}

// NewScheduler builds a scheduler over a queue with the given priority
// classes; call Start to launch the worker pool.
func NewScheduler(priorities, workers int) (*Scheduler, error) {
	q, err := pq.NewFunnelTree[Task](priorities, pq.WithConcurrency(workers+4))
	if err != nil {
		return nil, err
	}
	s := &Scheduler{queue: q, stop: make(chan struct{}), workers: workers}
	return s, nil
}

// Start launches the worker pool.
func (s *Scheduler) Start() {
	for i := 0; i < s.workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Submit enqueues a task.
func (s *Scheduler) Submit(t Task) {
	s.pending.Add(1)
	s.queue.Insert(t.Priority, t)
}

// Shutdown waits for all submitted tasks to finish and stops the workers.
func (s *Scheduler) Shutdown() {
	for s.pending.Load() != s.done.Load() {
		time.Sleep(time.Millisecond)
	}
	close(s.stop)
	s.wg.Wait()
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		task, ok := s.queue.DeleteMin()
		if !ok {
			select {
			case <-s.stop:
				return
			default:
				time.Sleep(100 * time.Microsecond)
				continue
			}
		}
		task.Work()
		s.done.Add(1)
	}
}

func main() {
	const (
		priorities = 8
		workers    = 4
		perClass   = 200
	)
	sched, err := NewScheduler(priorities, workers)
	if err != nil {
		log.Fatal(err)
	}

	// completionRank[c] collects the global completion ranks of class c.
	var rank atomic.Int64
	sums := make([]atomic.Int64, priorities)

	// Submit interleaved batches from several producers, lowest priority
	// first so that priority — not submission order — must explain the
	// completion order.
	var producers sync.WaitGroup
	for p := 0; p < 4; p++ {
		p := p
		producers.Add(1)
		go func() {
			defer producers.Done()
			for c := priorities - 1; c >= 0; c-- {
				for i := 0; i < perClass/4; i++ {
					c := c
					sched.Submit(Task{
						Name:     fmt.Sprintf("p%d-c%d-%d", p, c, i),
						Priority: c,
						Work: func() {
							r := rank.Add(1)
							sums[c].Add(r)
						},
					})
				}
			}
		}()
	}
	producers.Wait()
	// Start the workers only after the backlog exists, so completion
	// order reflects priority rather than submission order.
	sched.Start()
	sched.Shutdown()

	fmt.Println("mean completion rank by priority class (lower = finished earlier):")
	for c := 0; c < priorities; c++ {
		mean := float64(sums[c].Load()) / float64(perClass)
		fmt.Printf("  class %d: %8.1f\n", c, mean)
	}
	fmt.Println("interactive classes should show smaller ranks than batch classes")
}
