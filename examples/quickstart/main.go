// Quickstart: build a FunnelTree priority queue, hammer it from several
// goroutines, and drain it in priority order.
package main

import (
	"fmt"
	"log"
	"sync"

	"pq"
)

func main() {
	// A queue with 8 priority classes (0 = most urgent) holding strings.
	q, err := pq.NewFunnelTree[string](8)
	if err != nil {
		log.Fatal(err)
	}

	// Concurrent producers: each inserts jobs at several priorities.
	var wg sync.WaitGroup
	for worker := 0; worker < 4; worker++ {
		worker := worker
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				priority := (worker + i) % q.NumPriorities()
				q.Insert(priority, fmt.Sprintf("job w%d-%d (pri %d)", worker, i, priority))
			}
		}()
	}
	wg.Wait()

	// Drain: items come out most-urgent first.
	fmt.Println("draining in priority order:")
	for {
		job, ok := q.DeleteMin()
		if !ok {
			break
		}
		fmt.Println(" ", job)
	}
}
