// Paperfig: reproduce a slice of the paper's Figure 7 through the public
// simulator package — latency of the four scalable queues on the
// deterministic ccNUMA machine as concurrency grows.
//
// The full-size reproduction of every figure lives in cmd/pqbench; this
// example shows the programmatic API at a size that runs in seconds.
package main

import (
	"fmt"
	"log"

	"pq/simulator"
)

func main() {
	algs := []simulator.Algorithm{
		simulator.SimpleLinear, simulator.SimpleTree,
		simulator.LinearFunnels, simulator.FunnelTree,
	}
	procs := []int{2, 8, 32, 128}
	w := simulator.Workload{OpsPerProc: 30, LocalWork: 50, InsertFraction: 0.5}

	fmt.Println("mean latency (simulated cycles/op), 16 priorities:")
	fmt.Printf("%-14s", "procs")
	for _, p := range procs {
		fmt.Printf("%10d", p)
	}
	fmt.Println()
	for _, alg := range algs {
		fmt.Printf("%-14s", alg)
		for _, p := range procs {
			r, err := simulator.Run(alg, p, 16, w)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%10.0f", r.MeanAll)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected shape (paper Fig. 7): SimpleLinear wins at low P;")
	fmt.Println("FunnelTree takes over at high P while SimpleTree degrades.")
}
