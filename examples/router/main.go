// Router: a QoS packet scheduler with 8 DSCP-like priority classes —
// the "bounded range of priorities" setting the paper targets.
//
// Ingress goroutines enqueue packets tagged with a class; one egress
// drains strictly by class. The demo reports per-class throughput and
// the head-of-line latency advantage of the higher classes, and compares
// two queue algorithms under identical load.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"pq"
)

// Packet is a unit of simulated traffic.
type Packet struct {
	Class    int
	Seq      int
	Enqueued time.Time
}

const (
	classes    = 8
	ingresses  = 6
	perIngress = 5000
)

func run(alg pq.Algorithm) error {
	q, err := pq.New[Packet](alg, classes, pq.WithConcurrency(ingresses+1))
	if err != nil {
		return err
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		delivered = make([]int, classes)
		sumWait   = make([]time.Duration, classes)
	)

	// Egress: drains until every packet has been delivered.
	total := ingresses * perIngress
	wg.Add(1)
	go func() {
		defer wg.Done()
		got := 0
		for got < total {
			pkt, ok := q.DeleteMin()
			if !ok {
				continue
			}
			mu.Lock()
			delivered[pkt.Class]++
			sumWait[pkt.Class] += time.Since(pkt.Enqueued)
			mu.Unlock()
			got++
		}
	}()

	// Ingress load: a skewed mix, mostly bulk traffic.
	start := time.Now()
	for in := 0; in < ingresses; in++ {
		in := in
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perIngress; i++ {
				class := (i * 7) % classes // spread across classes
				if i%3 != 0 {
					class = classes - 1 - (i % 2) // mostly bulk
				}
				q.Insert(class, Packet{Class: class, Seq: in*perIngress + i, Enqueued: time.Now()})
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("%s: %d packets in %v (%.0f pkts/sec)\n",
		alg, total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	for c := 0; c < classes; c++ {
		if delivered[c] == 0 {
			continue
		}
		fmt.Printf("  class %d: %6d delivered, mean wait %8v\n",
			c, delivered[c], (sumWait[c] / time.Duration(delivered[c])).Round(time.Microsecond))
	}
	return nil
}

func main() {
	for _, alg := range []pq.Algorithm{pq.FunnelTree, pq.SimpleLinear} {
		if err := run(alg); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("higher classes (smaller numbers) should show smaller mean waits")
}
