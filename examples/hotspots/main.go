// Hotspots: make the paper's central claim visible. Run the same workload
// over SimpleTree and FunnelTree on the simulated 256-processor machine
// and show where each algorithm's wait cycles concentrate: SimpleTree
// piles up on the root counter's lock, FunnelTree spreads the same
// traffic across funnel layers.
package main

import (
	"fmt"
	"log"
	"os"

	"pq/simulator"
)

func main() {
	for _, alg := range []simulator.Algorithm{simulator.SimpleTree, simulator.FunnelTree} {
		rep, err := simulator.ProfileContention(alg, 256, 16, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", alg)
		rep.Render(os.Stdout)
		fmt.Println()
	}
	fmt.Println("SimpleTree piles its waiting into the queue nodes of the root")
	fmt.Println("counters' MCS locks; FunnelTree turns the same traffic into")
	fmt.Println("an order of magnitude less waiting, spread across funnel records.")
}
