package pq_test

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"pq"
)

func TestNewAllAlgorithms(t *testing.T) {
	for _, alg := range pq.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			q, err := pq.New[string](alg, 8)
			if err != nil {
				t.Fatal(err)
			}
			q.Insert(3, "c")
			q.Insert(1, "a")
			q.Insert(5, "e")
			var got []string
			for {
				v, ok := q.DeleteMin()
				if !ok {
					break
				}
				got = append(got, v)
			}
			want := []string{"a", "c", "e"}
			if len(got) != len(want) {
				t.Fatalf("drained %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("drained %v, want %v", got, want)
				}
			}
		})
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := pq.New[int](pq.FunnelTree, 0); err == nil {
		t.Error("priorities=0 accepted")
	}
	if _, err := pq.New[int]("nope", 8); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestOptions(t *testing.T) {
	q, err := pq.NewFunnelTree[int](16,
		pq.WithConcurrency(4),
		pq.WithFunnelCutoff(2),
		pq.WithFunnelParams(pq.FunnelParams{Widths: []int{2}, Attempts: 2, Spin: []int{8}}),
	)
	if err != nil {
		t.Fatal(err)
	}
	q.Insert(7, 7)
	if v, ok := q.DeleteMin(); !ok || v != 7 {
		t.Fatalf("DeleteMin = (%d,%v)", v, ok)
	}
}

func TestConcurrentUseThroughPublicAPI(t *testing.T) {
	q, err := pq.NewFunnelTree[int](8)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perG = 500
	var wg sync.WaitGroup
	var deleted [goroutines][]int
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					q.Insert((i+g)%8, g*perG+i)
				} else if v, ok := q.DeleteMin(); ok {
					deleted[g] = append(deleted[g], v)
				}
			}
		}()
	}
	wg.Wait()
	seen := map[int]bool{}
	n := 0
	for g := range deleted {
		for _, v := range deleted[g] {
			if seen[v] {
				t.Fatalf("duplicate delivery %d", v)
			}
			seen[v] = true
			n++
		}
	}
	for {
		v, ok := q.DeleteMin()
		if !ok {
			break
		}
		if seen[v] {
			t.Fatalf("duplicate delivery %d in drain", v)
		}
		seen[v] = true
		n++
	}
	if n != goroutines*perG/2 {
		t.Fatalf("recovered %d items, want %d", n, goroutines*perG/2)
	}
}

func TestPublicCounter(t *testing.T) {
	c := pq.NewCounter(5, true, 0)
	if got := c.FaD(); got != 5 {
		t.Fatalf("FaD = %d, want 5", got)
	}
	if got := c.FaI(); got != 4 {
		t.Fatalf("FaI = %d, want 4", got)
	}
	if got := c.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

func TestPublicStack(t *testing.T) {
	s := pq.NewStack[string]()
	s.Push("x")
	s.Push("y")
	if v, ok := s.Pop(); !ok || v != "y" {
		t.Fatalf("Pop = (%q,%v)", v, ok)
	}
	if v, ok := s.Pop(); !ok || v != "x" {
		t.Fatalf("Pop = (%q,%v)", v, ok)
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
}

func TestDrainOrderAllAlgorithmsAfterConcurrency(t *testing.T) {
	// After concurrent inserts complete, a sequential drain must be
	// sorted for the strictly ordered algorithms and a complete multiset
	// for all.
	for _, alg := range pq.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 16
			q, err := pq.New[int](alg, npri)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			const goroutines = 6
			const perG = 200
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						pri := (i*7 + g) % npri
						q.Insert(pri, pri)
					}
				}()
			}
			wg.Wait()
			var pris []int
			for {
				v, ok := q.DeleteMin()
				if !ok {
					break
				}
				pris = append(pris, v)
			}
			if len(pris) != goroutines*perG {
				t.Fatalf("drained %d, want %d", len(pris), goroutines*perG)
			}
			if alg != pq.SkipList && alg != pq.HuntEtAl && !sort.IntsAreSorted(pris) {
				t.Fatalf("%s: drain not sorted", alg)
			}
		})
	}
}

func TestDrainAPI(t *testing.T) {
	// pq.Drain is the snapshot iterator: it must empty the queue,
	// return the full multiset in priority order (ascending for the
	// quiescent/strict queues at quiescence), and compose with
	// InsertBatch to restore the queue unchanged.
	for _, alg := range pq.Algorithms() {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 8
			q, err := pq.New[int](alg, npri)
			if err != nil {
				t.Fatal(err)
			}
			want := map[int]int{}
			for i := 0; i < 500; i++ {
				pri := (i * 5) % npri
				q.Insert(pri, i)
				want[pri]++
			}
			items := pq.Drain(q)
			if len(items) != 500 {
				t.Fatalf("Drain returned %d items, want 500", len(items))
			}
			if _, ok := q.DeleteMin(); ok {
				t.Fatal("queue not empty after Drain")
			}
			got := map[int]int{}
			prev := -1
			for _, it := range items {
				got[it.Pri]++
				if it.Pri < prev {
					t.Fatalf("drain order regressed: %d after %d", it.Pri, prev)
				}
				prev = it.Pri
			}
			for pri, n := range want {
				if got[pri] != n {
					t.Fatalf("priority %d: drained %d, want %d", pri, got[pri], n)
				}
			}
			// Restore and re-drain: the round trip must preserve the
			// multiset (the server's non-destructive snapshot pattern).
			pq.InsertBatch(q, items)
			if again := pq.Drain(q); len(again) != 500 {
				t.Fatalf("re-drain returned %d items, want 500", len(again))
			}
		})
	}
	if got := pq.Drain[int](mustQueue(t)); len(got) != 0 {
		t.Fatalf("Drain of empty queue returned %d items", len(got))
	}
}

func mustQueue(t *testing.T) pq.Queue[int] {
	t.Helper()
	q, err := pq.New[int](pq.FunnelTree, 4)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestRelaxedRegistry(t *testing.T) {
	for _, alg := range pq.Algorithms() {
		if pq.IsRelaxed(alg) {
			t.Errorf("strict registry contains relaxed %q", alg)
		}
	}
	if !pq.IsRelaxed(pq.MultiQueue) {
		t.Error("MultiQueue not marked relaxed")
	}
	all := pq.AllAlgorithms()
	if want := len(pq.Algorithms()) + len(pq.RelaxedAlgorithms()); len(all) != want {
		t.Fatalf("AllAlgorithms has %d entries, want %d", len(all), want)
	}
	if alg, err := pq.ParseAlgorithm("multiqueue"); err != nil || alg != pq.MultiQueue {
		t.Fatalf("ParseAlgorithm(multiqueue) = (%q, %v)", alg, err)
	}
	_, err := pq.ParseAlgorithm("nope")
	if err == nil {
		t.Fatal("ParseAlgorithm accepted an unknown name")
	}
	if !strings.Contains(err.Error(), string(pq.MultiQueue)) || !strings.Contains(err.Error(), string(pq.FunnelTree)) {
		t.Fatalf("parse error does not list valid names: %v", err)
	}
}

func TestMultiQueuePublicAPI(t *testing.T) {
	q, err := pq.New[int](pq.MultiQueue, 16,
		pq.WithConcurrency(4),
		pq.WithMultiQueueC(3),
		pq.WithMultiQueueSticky(2),
		pq.WithMultiQueuePopBatch(2),
		pq.WithMultiQueueRankTracking(true),
	)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, perG = 4, 300
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					q.Insert((i*7+g)%16, g*perG+i)
				} else {
					q.DeleteMin()
				}
			}
		}()
	}
	wg.Wait()
	rs, ok := pq.RelaxStatsOf(q)
	if !ok {
		t.Fatal("RelaxStatsOf reported no stats for MultiQueue")
	}
	if !rs.Tracked || rs.Pops == 0 {
		t.Fatalf("rank accounting absent: %+v", rs)
	}
	if rs.Mean() < 0 || rs.Quantile(0.99) < 0 {
		t.Fatalf("nonsensical rank stats: %+v", rs)
	}
	// Strict queues carry no rank accounting.
	if _, ok := pq.RelaxStatsOf[int](mustQueue(t)); ok {
		t.Error("RelaxStatsOf reported stats for an exact queue")
	}
	// Drain must still conserve items exactly.
	q2, err := pq.New[int](pq.MultiQueue, 8, pq.WithMultiQueueRankTracking(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		q2.Insert(i%8, i)
	}
	if got := pq.Drain(q2); len(got) != 100 {
		t.Fatalf("Drain returned %d items, want 100", len(got))
	}
	if rs, ok := pq.RelaxStatsOf(q2); !ok || rs.Tracked {
		t.Fatalf("RankTracking(false) still tracked: %+v ok=%v", rs, ok)
	}
}
