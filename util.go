package pq

import "runtime"

func defaultConcurrency() int { return runtime.GOMAXPROCS(0) }
