// Package stats provides the small set of summary statistics the
// benchmark harnesses report: mean, percentiles, min/max, and a compact
// fixed-boundary histogram suitable for latency distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	Count              int
	Mean               float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary; it sorts a copy and leaves xs untouched.
// An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		Count: len(s),
		Mean:  sum / float64(len(s)),
		Min:   s[0],
		Max:   s[len(s)-1],
		P50:   Percentile(s, 0.50),
		P90:   Percentile(s, 0.90),
		P95:   Percentile(s, 0.95),
		P99:   Percentile(s, 0.99),
	}
}

// Percentile returns the p-quantile (0 <= p <= 1) of an already sorted
// sample using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	switch {
	case n == 0:
		return 0
	case n == 1:
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p95=%.1f p99=%.1f max=%.1f",
		s.Count, s.Mean, s.Min, s.P50, s.P90, s.P95, s.P99, s.Max)
}

// Histogram is a fixed-boundary histogram.
type Histogram struct {
	bounds []float64 // ascending upper bounds; final bucket is overflow
	counts []int
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds; values above the last bound land in an overflow bucket.
func NewHistogram(bounds ...float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]int, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
}

// Count returns the number of observations in bucket i (the bucket with
// upper bound Buckets()[i]; the last index is the overflow bucket).
func (h *Histogram) Count(i int) int { return h.counts[i] }

// Buckets returns the ascending bucket upper bounds; observations above
// the final bound land in an overflow bucket (index len(Buckets())).
func (h *Histogram) Buckets() []float64 {
	return append([]float64(nil), h.bounds...)
}

// Counts returns the per-bucket observation counts, one per bound plus a
// final overflow bucket.
func (h *Histogram) Counts() []int {
	return append([]int(nil), h.counts...)
}

// Quantile estimates the p-quantile (0 <= p <= 1) from the bucket
// counts, interpolating linearly within the bucket the rank falls in. An
// empty histogram yields 0; ranks in the overflow bucket report the last
// finite bound (the histogram cannot see beyond it).
func (h *Histogram) Quantile(p float64) float64 {
	total := h.Total()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := 0.0
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next || i == len(h.counts)-1 {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.counts {
		t += c
	}
	return t
}

// String renders an ASCII bar chart, one row per bucket.
func (h *Histogram) String() string {
	total := h.Total()
	if total == 0 {
		return "(empty histogram)"
	}
	maxCount := 0
	for _, c := range h.counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for i, c := range h.counts {
		var label string
		if i < len(h.bounds) {
			label = fmt.Sprintf("<=%g", h.bounds[i])
		} else {
			label = fmt.Sprintf("> %g", h.bounds[len(h.bounds)-1])
		}
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(&sb, "%10s %7d %s\n", label, c, bar)
	}
	return sb.String()
}
