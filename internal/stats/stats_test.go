package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileEdges(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {-0.5, 10}, {2, 40}, {0.5, 25},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v", got)
	}
	if got := Percentile([]float64{7}, 0.9); got != 7 {
		t.Errorf("Percentile(single) = %v", got)
	}
}

func TestQuickPercentileMonotone(t *testing.T) {
	// Property: percentiles are monotone in p and bounded by min/max.
	f := func(raw []float64, a, b float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		sorted := append([]float64(nil), xs...)
		// Summarize sorts internally; re-create for direct Percentile use.
		sortFloats(sorted)
		qa, qb := Percentile(sorted, pa), Percentile(sorted, pb)
		return qa <= qb && qa >= s.Min && qb <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 100, 1000)
	for _, v := range []float64{5, 50, 500, 5000, 7, 70} {
		h.Observe(v)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	want := []int{2, 2, 1, 1}
	for i, w := range want {
		if got := h.Count(i); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	out := h.String()
	if !strings.Contains(out, "<=10") || !strings.Contains(out, "> 1000") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(1, 2)
	if got := h.String(); got != "(empty histogram)" {
		t.Fatalf("empty render = %q", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("String = %q", s.String())
	}
}

func TestHistogramAccessors(t *testing.T) {
	h := NewHistogram(10, 100)
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	if got := h.Buckets(); len(got) != 2 || got[0] != 10 || got[1] != 100 {
		t.Fatalf("Buckets = %v", got)
	}
	if got := h.Counts(); len(got) != 3 || got[0] != 1 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("Counts = %v", got)
	}
	// Accessors return copies: mutating them must not corrupt the histogram.
	h.Buckets()[0] = 999
	h.Counts()[0] = 999
	if h.Count(0) != 1 {
		t.Fatal("Counts() aliased internal state")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 40, 80)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	// 100 observations uniform in (0,10]: every quantile interpolates
	// inside the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	if q := h.Quantile(0.5); q < 4 || q > 6 {
		t.Fatalf("p50 = %g, want ~5", q)
	}
	if q := h.Quantile(1); q != 10 {
		t.Fatalf("p100 = %g, want 10 (first bucket's bound)", q)
	}
	// Push half the mass into the 20..40 bucket: p75 lands inside it.
	for i := 0; i < 100; i++ {
		h.Observe(30)
	}
	if q := h.Quantile(0.75); q < 20 || q > 40 {
		t.Fatalf("p75 = %g, want inside (20,40]", q)
	}
	// Overflow observations report the last finite bound.
	h2 := NewHistogram(10)
	h2.Observe(1000)
	if q := h2.Quantile(0.99); q != 10 {
		t.Fatalf("overflow quantile = %g, want 10", q)
	}
}
