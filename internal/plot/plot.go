// Package plot renders multi-series line charts as terminal text — just
// enough to eyeball the paper's figures (crossovers, flat-vs-linear
// growth) without leaving the shell.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of (x, y) points.
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// Config sets the canvas size and axis scaling.
type Config struct {
	// Width and Height are the plot area in characters (default 64x20).
	Width, Height int
	// LogX selects a logarithmic x axis (natural for processor-count
	// sweeps that double each step).
	LogX bool
	// YLabel names the y axis in the header.
	YLabel string
}

// seriesMarks assigns each series a distinct mark character.
var seriesMarks = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws every series onto one chart.
func Render(w io.Writer, cfg Config, series []Series) {
	width, height := cfg.Width, cfg.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := 0.0, math.Inf(-1) // anchor y at zero: latency charts
	for _, s := range series {
		for _, p := range s.Points {
			x := p.X
			if cfg.LogX {
				if x <= 0 {
					continue
				}
				x = math.Log2(x)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymax = math.Max(ymax, p.Y)
		}
	}
	if math.IsInf(xmax, -1) || ymax <= ymin {
		fmt.Fprintln(w, "(nothing to plot)")
		return
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		if cfg.LogX {
			x = math.Log2(x)
		}
		if xmax == xmin {
			return 0
		}
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((y - ymin) / (ymax - ymin) * float64(height-1)))
		return clamp(height-1-r, 0, height-1)
	}

	for si, s := range series {
		mark := seriesMarks[si%len(seriesMarks)]
		pts := append([]Point(nil), s.Points...)
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		// Connect consecutive points with linear interpolation in plot
		// space so trends read as lines.
		for i := 0; i < len(pts); i++ {
			c, r := col(pts[i].X), row(pts[i].Y)
			grid[r][c] = mark
			if i == 0 {
				continue
			}
			c0, r0 := col(pts[i-1].X), row(pts[i-1].Y)
			steps := abs(c-c0) + abs(r-r0)
			for st := 1; st < steps; st++ {
				cc := c0 + (c-c0)*st/steps
				rr := r0 + (r-r0)*st/steps
				if grid[rr][cc] == ' ' {
					grid[rr][cc] = '.'
				}
			}
		}
	}

	if cfg.YLabel != "" {
		fmt.Fprintf(w, "%s (0..%.0f)\n", cfg.YLabel, ymax)
	}
	for _, line := range grid {
		fmt.Fprintf(w, "| %s\n", string(line))
	}
	fmt.Fprintf(w, "+%s\n", strings.Repeat("-", width+1))
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	fmt.Fprintln(w, " ", strings.Join(legend, "   "))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
