package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	var sb strings.Builder
	Render(&sb, Config{Width: 40, Height: 10, YLabel: "cycles"}, []Series{
		{Name: "a", Points: []Point{{1, 10}, {2, 20}, {4, 40}}},
		{Name: "b", Points: []Point{{1, 40}, {2, 20}, {4, 10}}},
	})
	out := sb.String()
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "cycles (0..40)") {
		t.Fatalf("header missing:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Fatalf("canvas too small:\n%s", out)
	}
}

func TestRenderLogX(t *testing.T) {
	var sb strings.Builder
	Render(&sb, Config{Width: 32, Height: 8, LogX: true}, []Series{
		{Name: "s", Points: []Point{{2, 1}, {4, 2}, {256, 3}}},
	})
	if !strings.Contains(sb.String(), "*") {
		t.Fatalf("no marks:\n%s", sb.String())
	}
}

func TestRenderEmpty(t *testing.T) {
	var sb strings.Builder
	Render(&sb, Config{}, nil)
	if !strings.Contains(sb.String(), "nothing to plot") {
		t.Fatalf("empty case: %q", sb.String())
	}
}

func TestRenderDegenerateY(t *testing.T) {
	var sb strings.Builder
	Render(&sb, Config{}, []Series{{Name: "flat", Points: []Point{{1, 0}, {2, 0}}}})
	if !strings.Contains(sb.String(), "nothing to plot") {
		t.Fatalf("flat-at-zero case: %q", sb.String())
	}
}
