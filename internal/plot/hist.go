package plot

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"pq/internal/stats"
)

// LatencyHistogram renders one latency histogram as a horizontal bar
// chart, one row per bucket, with counts and the p50/p95/p99 quantiles
// in the header.
func LatencyHistogram(w io.Writer, title string, h *stats.Histogram) {
	total := h.Total()
	fmt.Fprintf(w, "%s  (n=%d  p50=%.0f  p95=%.0f  p99=%.0f cycles)\n",
		title, total, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	if total == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	bounds := h.Buckets()
	counts := h.Counts()
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const barWidth = 40
	for i, c := range counts {
		var label string
		switch {
		case i == 0:
			label = fmt.Sprintf("      <= %6.0f", bounds[0])
		case i == len(bounds):
			label = fmt.Sprintf("       > %6.0f", bounds[len(bounds)-1])
		default:
			label = fmt.Sprintf("%6.0f..%6.0f", bounds[i-1], bounds[i])
		}
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		if c > 0 && bar == 0 {
			bar = 1 // nonzero buckets must be visible
		}
		fmt.Fprintf(w, "  %s |%-*s %d\n", label, barWidth, strings.Repeat("#", bar), c)
	}
}

// MetricsTable renders per-algorithm internals counters as an aligned
// table: one row per metric name (union over algorithms, sorted), one
// column per algorithm. Missing cells print as "-".
func MetricsTable(w io.Writer, algs []string, metrics []map[string]float64) {
	nameSet := map[string]bool{}
	for _, m := range metrics {
		for k := range m {
			nameSet[k] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for k := range nameSet {
		names = append(names, k)
	}
	sort.Strings(names)

	rows := make([][]string, 0, len(names)+1)
	header := append([]string{"metric"}, algs...)
	rows = append(rows, header)
	for _, name := range names {
		row := []string{name}
		for _, m := range metrics {
			if v, ok := m[name]; ok {
				row = append(row, formatMetric(v))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		parts := make([]string, len(row))
		for i, cell := range row {
			if i == 0 {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], cell)
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
		if ri == 0 {
			sep := make([]string, len(widths))
			for i, wd := range widths {
				sep[i] = strings.Repeat("-", wd)
			}
			fmt.Fprintln(w, strings.Join(sep, "  "))
		}
	}
}

// formatMetric prints counters as integers and ratios compactly.
func formatMetric(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}
