package plot

import (
	"strings"
	"testing"

	"pq/internal/stats"
)

func TestLatencyHistogram(t *testing.T) {
	h := stats.NewHistogram(10, 20, 40)
	for _, v := range []float64{5, 15, 15, 35, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	LatencyHistogram(&sb, "insert", h)
	out := sb.String()
	if !strings.Contains(out, "insert") || !strings.Contains(out, "n=5") {
		t.Fatalf("header missing:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Fatalf("no bars rendered:\n%s", out)
	}
	if !strings.Contains(out, ">     40") {
		t.Fatalf("overflow bucket missing:\n%s", out)
	}
	// 4 buckets (3 bounds + overflow) plus header.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Fatalf("line count = %d, want 5:\n%s", got, out)
	}
}

func TestLatencyHistogramEmpty(t *testing.T) {
	var sb strings.Builder
	LatencyHistogram(&sb, "none", stats.NewHistogram(1, 2))
	if !strings.Contains(sb.String(), "(empty)") {
		t.Fatalf("empty histogram not flagged:\n%s", sb.String())
	}
}

func TestMetricsTable(t *testing.T) {
	var sb strings.Builder
	MetricsTable(&sb, []string{"A", "B"}, []map[string]float64{
		{"combines": 10, "ratio": 0.512345},
		{"combines": 3},
	})
	out := sb.String()
	if !strings.Contains(out, "combines") {
		t.Fatalf("metric row missing:\n%s", out)
	}
	if !strings.Contains(out, "0.512") {
		t.Fatalf("float formatting wrong:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing-cell placeholder absent:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "metric") {
		t.Fatalf("header row wrong: %q", lines[0])
	}
}
