package simpq

import (
	"testing"

	"pq/internal/order"
	"pq/internal/sim"
)

// TestIntervalOrderOnSimulator checks concurrent histories of the
// linearizable queues with exact simulated-cycle timestamps — sharper
// than host-clock histories because intervals are precise.
func TestIntervalOrderOnSimulator(t *testing.T) {
	for _, alg := range []Algorithm{AlgSingleLock, AlgSimpleLinear} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const (
				procs   = 16
				perProc = 25
				npri    = 8
			)
			var q Queue
			histories := make([][]order.Op, procs)
			runOn(t, procs,
				func(m *sim.Machine) { q = Build(alg, m, npri, procs*perProc+1) },
				func(p *sim.Proc) {
					id := p.ID()
					for i := 0; i < perProc; i++ {
						p.LocalWork(int64(p.Rand(60)))
						if p.Rand(2) == 0 {
							pri := p.Rand(npri)
							v := encVal(pri, id, i)
							start := p.Now()
							q.Insert(p, pri, v)
							histories[id] = append(histories[id], order.Op{
								Kind: order.Insert, Pri: pri, Val: v, OK: true,
								Start: start, End: p.Now(),
							})
						} else {
							start := p.Now()
							v, ok := q.DeleteMin(p)
							op := order.Op{Kind: order.DeleteMin, OK: ok, Start: start, End: p.Now()}
							if ok {
								op.Pri, op.Val = decPri(v), v
							}
							histories[id] = append(histories[id], op)
						}
					}
				})
			var all []order.Op
			for _, h := range histories {
				all = append(all, h...)
			}
			if vs := order.Check(all); len(vs) != 0 {
				for i, v := range vs {
					if i >= 5 {
						break
					}
					t.Error(v)
				}
				t.Fatalf("%d interval-order violations", len(vs))
			}
		})
	}
}

// TestIntervalOrderCatchesQuiescentReordering documents that the
// quiescently consistent queues CAN violate the strict interval-order
// conditions under overlap — that is the semantic the paper trades for
// scalability, and the checker is sharp enough to see it. (No assertion
// that violations must occur — merely that the run completes and any
// violations are of the priority/emptiness kind, never uniqueness.)
func TestIntervalOrderCatchesQuiescentReordering(t *testing.T) {
	const (
		procs   = 16
		perProc = 25
		npri    = 8
	)
	var q Queue
	histories := make([][]order.Op, procs)
	runOn(t, procs,
		func(m *sim.Machine) { q = Build(AlgFunnelTree, m, npri, procs*perProc+1) },
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				if p.Rand(2) == 0 {
					pri := p.Rand(npri)
					v := encVal(pri, id, i)
					start := p.Now()
					q.Insert(p, pri, v)
					histories[id] = append(histories[id], order.Op{
						Kind: order.Insert, Pri: pri, Val: v, OK: true,
						Start: start, End: p.Now(),
					})
				} else {
					start := p.Now()
					v, ok := q.DeleteMin(p)
					op := order.Op{Kind: order.DeleteMin, OK: ok, Start: start, End: p.Now()}
					if ok {
						op.Pri, op.Val = decPri(v), v
					}
					histories[id] = append(histories[id], op)
				}
			}
		})
	var all []order.Op
	for _, h := range histories {
		all = append(all, h...)
	}
	for _, v := range order.Check(all) {
		if v.Rule == "uniqueness" || v.Rule == "precedence" || v.Rule == "well-formed" {
			t.Fatalf("quiescent queue broke a safety rule: %v", v)
		}
	}
}
