package simpq

import "pq/internal/sim"

// FunnelStack is the combining-funnel stack used as the bin of the
// LinearFunnels and FunnelTree queues: pushes and pops combine into
// homogeneous trees through the funnel layers, reversing trees of equal
// size eliminate (each pop receives one push's item without touching the
// stack), and a tree that exits the funnel applies its whole batch to the
// central stack at once. Emptiness costs a single read of the size word.
//
// The central storage discipline is LIFO by default (the paper's choice:
// simple and it composes with elimination). Section 3.2 suggests a hybrid
// for fairness-sensitive applications — "supports elimination in the
// funnel, but queues items internally in FIFO order" — selected with
// NewFunnelQueue: the funnel protocol is identical, only the central
// batch application changes (a ring with separate head and tail).
type FunnelStack struct {
	f     *funnel
	lock  *MCSLock
	size  sim.Addr // item count: the one-read emptiness test
	head  sim.Addr // ring head (FIFO mode only; LIFO uses cells[0..size))
	cells sim.Addr
	cap   int
	fifo  bool

	// dropped counts items lost to capacity overflow (test diagnostics;
	// workloads size the stack so this stays zero).
	dropped int

	// Host-side internals counters (no simulated cost).
	stats funnelStackStats
}

// funnelStackStats counts how stack operations retired.
type funnelStackStats struct {
	pushes         int64
	pops           int64
	failedPops     int64 // pops that found the central storage dry
	eliminatedOps  int64 // operations completed entirely by elimination
	centralBatches int64 // lock acquisitions that applied a batch
	centralOps     int64 // operations applied across those batches
}

// Metrics reports the stack's internals: funnel collision counters
// (prefix "funnel"), central-lock wait/hold (prefix "central_lock"), and
// how operations retired.
func (s *FunnelStack) Metrics() Metrics {
	m := Metrics{
		"pushes":          float64(s.stats.pushes),
		"pops":            float64(s.stats.pops),
		"failed_pops":     float64(s.stats.failedPops),
		"eliminated_ops":  float64(s.stats.eliminatedOps),
		"central_batches": float64(s.stats.centralBatches),
		"central_ops":     float64(s.stats.centralOps),
		"dropped":         float64(s.dropped),
	}
	m.add("funnel", s.f.Metrics())
	m.add("central_lock", s.lock.Metrics())
	return m
}

// NewFunnelStack builds a LIFO funnel stack with room for capacity items.
func NewFunnelStack(m *sim.Machine, params FunnelParams, capacity int) *FunnelStack {
	return newFunnelBin(m, params, capacity, false)
}

// NewFunnelQueue builds the hybrid bin of Section 3.2: elimination in the
// funnel, FIFO order in the central storage.
func NewFunnelQueue(m *sim.Machine, params FunnelParams, capacity int) *FunnelStack {
	return newFunnelBin(m, params, capacity, true)
}

func newFunnelBin(m *sim.Machine, params FunnelParams, capacity int, fifo bool) *FunnelStack {
	s := &FunnelStack{
		f:     newFunnel(m, params),
		lock:  NewMCSLock(m),
		size:  m.Alloc(1),
		head:  m.Alloc(1),
		cells: m.Alloc(capacity),
		cap:   capacity,
		fifo:  fifo,
	}
	m.Label(s.size, 1, "funnelstack.size")
	m.Label(s.head, 1, "funnelstack.head")
	m.Label(s.cells, capacity, "funnelstack.cells")
	return s
}

// Empty reports whether the bin currently looks empty (one read, as the
// paper stresses for LinearFunnels' delete-min scan).
func (s *FunnelStack) Empty(p *sim.Proc) bool { return p.Read(s.size) == 0 }

// Push adds an item to the stack.
func (s *FunnelStack) Push(p *sim.Proc, item uint64) {
	s.stats.pushes++
	my := s.f.recs[p.ID()]
	p.Write(my.addr+frItem, item)
	s.run(p, 1)
}

// Pop removes an item, or reports ok=false if the stack ran dry (which
// concurrent elimination cannot cause: an eliminated pop always receives
// an item).
func (s *FunnelStack) Pop(p *sim.Proc) (uint64, bool) {
	s.stats.pops++
	v, ok := s.run(p, -1)
	if !ok {
		s.stats.failedPops++
	}
	return v, ok
}

// run drives one operation (push s=+1, pop s=-1) through the funnel.
func (s *FunnelStack) run(p *sim.Proc, dir int64) (uint64, bool) {
	my := s.f.begin(p, dir)
	mySum := dir
	d := 0
	for {
		var (
			outcome collideOutcome
			q       *funnelRec
		)
		outcome, q, d, mySum = s.f.collide(p, my, mySum, true, d)
		switch outcome {
		case outCaptured:
			// The root (or eliminating peer) writes results for the whole
			// flattened tree; nothing further to distribute.
			_, fail, v := awaitResult(p, my)
			my.adapt(s.f.params.Adaptive)
			return v, !fail

		case outEliminated:
			s.stats.eliminatedOps += 2 * int64(len(my.members))
			return s.eliminate(p, my, q, dir)

		case outIncompatible:
			// Stack trees are always unit-sum (PushN/PopN bypass the
			// funnel), so reversing trees at one layer have equal size and
			// cancel exactly; this outcome cannot arise.
			panic("simpq: incompatible funnel-stack trees")

		case outExit:
			if !p.CAS(my.addr+frLocation, locCode(d), 0) {
				_, fail, v := awaitResult(p, my)
				my.adapt(s.f.params.Adaptive)
				return v, !fail
			}
			return s.applyCentral(p, my, dir)
		}
	}
}

// PushN adds items directly to the central storage under one lock hold —
// the batch fast path. A batch already amortizes its synchronization, so
// it skips the funnel; keeping batch trees out of the layers also keeps
// every funnel tree unit-sum, which elimination's one-for-one member
// pairing relies on.
func (s *FunnelStack) PushN(p *sim.Proc, items []uint64) {
	if len(items) == 0 {
		return
	}
	s.stats.pushes += int64(len(items))
	s.stats.centralBatches++
	s.stats.centralOps += int64(len(items))
	s.lock.Acquire(p)
	n := int(p.Read(s.size))
	stored := len(items)
	if n+stored > s.cap {
		stored = s.cap - n
		s.dropped += len(items) - stored
	}
	t := n
	if s.fifo {
		t = (int(p.Read(s.head)) + n) % s.cap
	}
	for i := 0; i < stored; i++ {
		p.Write(s.cells+sim.Addr((t+i)%s.cap), items[i])
	}
	p.Write(s.size, uint64(n+stored))
	s.lock.Release(p)
}

// PopN removes up to k items under one lock hold, in the same order k
// consecutive Pops would deliver them; a short result means the central
// storage ran dry.
func (s *FunnelStack) PopN(p *sim.Proc, k int) []uint64 {
	if k < 1 {
		return nil
	}
	s.stats.pops += int64(k)
	s.stats.centralBatches++
	s.stats.centralOps += int64(k)
	s.lock.Acquire(p)
	n := int(p.Read(s.size))
	avail := k
	if avail > n {
		avail = n
	}
	items := make([]uint64, avail)
	if s.fifo {
		h := int(p.Read(s.head))
		for i := 0; i < avail; i++ {
			items[i] = p.Read(s.cells + sim.Addr((h+i)%s.cap))
		}
		p.Write(s.head, uint64((h+avail)%s.cap))
	} else {
		for i := 0; i < avail; i++ {
			items[i] = p.Read(s.cells + sim.Addr(n-1-i))
		}
	}
	p.Write(s.size, uint64(n-avail))
	s.lock.Release(p)
	s.stats.failedPops += int64(k - avail)
	return items
}

// eliminate pairs the members of two equal-size reversing trees: the i-th
// pop receives the i-th push's item; no one touches the central stack.
// The captured root q's result is written last: q is members[0] of its
// tree, and delivering its result frees it to start a new operation that
// rewrites the members list this loop still reads.
func (s *FunnelStack) eliminate(p *sim.Proc, my, q *funnelRec, dir int64) (uint64, bool) {
	pushTree, popTree := my, q
	if dir < 0 {
		pushTree, popTree = q, my
	}
	var ownVal, qResult uint64
	for i := range my.members {
		pushRec, popRec := pushTree.members[i], popTree.members[i]
		item := p.Read(pushRec.addr + frItem)
		switch popRec {
		case my:
			ownVal = item
		case q:
			qResult = encodeResult(true, false, item)
		default:
			p.Write(popRec.addr+frResult, encodeResult(true, false, item))
		}
		if pushRec != my && pushRec != q {
			p.Write(pushRec.addr+frResult, encodeResult(true, false, 0))
		} else if pushRec == q {
			qResult = encodeResult(true, false, 0)
		}
	}
	p.Write(q.addr+frResult, qResult)
	my.adapt(s.f.params.Adaptive)
	return ownVal, true
}

// applyCentral applies the whole homogeneous tree to the central storage
// under its lock and hands out results to every member. The storage is a
// ring: LIFO mode pops from the tail, FIFO mode pops from the head.
func (s *FunnelStack) applyCentral(p *sim.Proc, my *funnelRec, dir int64) (uint64, bool) {
	k := len(my.members)
	s.stats.centralBatches++
	s.stats.centralOps += int64(k)
	var ownVal uint64
	ownOK := true

	s.lock.Acquire(p)
	n := int(p.Read(s.size))
	if dir > 0 { // k pushes append at the tail
		stored := k
		if n+stored > s.cap {
			stored = s.cap - n
			s.dropped += k - stored
		}
		// LIFO keeps items in cells[0..size), so the tail is the size
		// itself; FIFO is a ring starting at head.
		t := n
		if s.fifo {
			t = (int(p.Read(s.head)) + n) % s.cap
		}
		for i := 0; i < stored; i++ {
			item := p.Read(my.members[i].addr + frItem)
			p.Write(s.cells+sim.Addr((t+i)%s.cap), item)
		}
		p.Write(s.size, uint64(n+stored))
		s.lock.Release(p)
		for _, mem := range my.members[1:] {
			p.Write(mem.addr+frResult, encodeResult(false, false, 0))
		}
		my.adapt(s.f.params.Adaptive)
		return 0, true
	}

	// k pops take from the tail (LIFO) or the head (FIFO).
	avail := k
	if avail > n {
		avail = n
	}
	items := make([]uint64, avail)
	if s.fifo {
		h := int(p.Read(s.head))
		for i := 0; i < avail; i++ {
			items[i] = p.Read(s.cells + sim.Addr((h+i)%s.cap))
		}
		p.Write(s.head, uint64((h+avail)%s.cap))
	} else {
		for i := 0; i < avail; i++ {
			items[i] = p.Read(s.cells + sim.Addr(n-1-i))
		}
	}
	p.Write(s.size, uint64(n-avail))
	s.lock.Release(p)
	for i, mem := range my.members {
		var res uint64
		if i < avail {
			res = encodeResult(false, false, items[i])
		} else {
			res = encodeResult(false, true, 0)
		}
		if mem == my {
			if i < avail {
				ownVal = items[i]
			} else {
				ownOK = false
			}
			continue
		}
		p.Write(mem.addr+frResult, res)
	}
	my.adapt(s.f.params.Adaptive)
	return ownVal, ownOK
}
