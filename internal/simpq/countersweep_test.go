package simpq

import (
	"testing"

	"pq/internal/sim"
)

// TestCounterParamSweep is a tuning diagnostic over funnel geometries.
func TestCounterParamSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning diagnostic")
	}
	type variant struct {
		name   string
		params FunnelParams
	}
	mk := func(name string, widths []int, attempts int, spin int64) variant {
		sp := make([]int64, len(widths))
		for i := range sp {
			sp[i] = spin
		}
		return variant{name, FunnelParams{Widths: widths, Attempts: attempts, Spin: sp, Adaptive: true}}
	}
	variants := []variant{
		mk("default-32.16.8.4/a3/s80", []int{32, 16, 8, 4}, 3, 80),
		mk("long-16.8.4.2/a3/s200", []int{16, 8, 4, 2}, 3, 200),
		mk("deep5-16.8.4.2.1/a4/s150", []int{16, 8, 4, 2, 1}, 4, 150),
		mk("deep5-32.16.8.4.2/a4/s200", []int{32, 16, 8, 4, 2}, 4, 200),
		mk("deep6-32.16.8.4.2.1/a4/s200", []int{32, 16, 8, 4, 2, 1}, 4, 200),
		mk("deep6-16.16.8.8.4.4/a5/s150", []int{16, 16, 8, 8, 4, 4}, 5, 150),
	}
	for _, v := range variants {
		for _, bounded := range []bool{false, true} {
			m, err := sim.New(sim.DefaultConfig(256))
			if err != nil {
				t.Fatal(err)
			}
			c := NewFunnelCounter(m, v.params, bounded, 0)
			m.SetWord(c.main, 1<<40)
			const ops = 30
			cycles := make([]int64, 256)
			if _, err = m.Run(func(p *sim.Proc) {
				for i := 0; i < ops; i++ {
					p.LocalWork(50)
					t0 := p.Now()
					if p.Rand(2) == 0 {
						c.BFaD(p)
					} else {
						c.FaI(p)
					}
					cycles[p.ID()] += p.Now() - t0
				}
			}); err != nil {
				t.Fatal(err)
			}
			var tot int64
			for _, vv := range cycles {
				tot += vv
			}
			t.Logf("%-28s bounded=%-5v mean=%6d stats=%+v", v.name, bounded, tot/(256*ops), c.Stats)
		}
	}
}
