package simpq

import (
	"sort"

	"pq/internal/sim"
)

// BatchItem is one element of a batch operation: a value and the
// priority it carries (or was delivered at).
type BatchItem struct {
	Pri int
	Val uint64
}

// BatchQueue is implemented by queues with native batch fast paths: one
// synchronization episode (lock hold, funnel traversal, counter
// operation) covers the whole batch instead of one per element.
//
// InsertBatch adds every item; DeleteMinBatch removes up to k items in
// the same order k consecutive DeleteMin calls would deliver them, a
// short result meaning the queue ran (apparently) dry.
type BatchQueue interface {
	Queue
	InsertBatch(p *sim.Proc, items []BatchItem)
	DeleteMinBatch(p *sim.Proc, k int) []BatchItem
}

// InsertBatch inserts items through q's native fast path when it has
// one, or element-wise otherwise, so workloads can run any algorithm at
// any batch size.
func InsertBatch(p *sim.Proc, q Queue, items []BatchItem) {
	if bq, ok := q.(BatchQueue); ok {
		bq.InsertBatch(p, items)
		return
	}
	for _, it := range items {
		q.Insert(p, it.Pri, it.Val)
	}
}

// DeleteMinBatch removes up to k items through q's native fast path
// when it has one, or element-wise otherwise. Fallback items carry
// Pri -1: the single-element interface does not report priorities.
func DeleteMinBatch(p *sim.Proc, q Queue, k int) []BatchItem {
	if bq, ok := q.(BatchQueue); ok {
		return bq.DeleteMinBatch(p, k)
	}
	var out []BatchItem
	for i := 0; i < k; i++ {
		v, ok := q.DeleteMin(p)
		if !ok {
			break
		}
		out = append(out, BatchItem{Pri: -1, Val: v})
	}
	return out
}

// batchRun is a maximal run of equal-priority values within a sorted
// batch — the unit the per-priority structures consume in one call.
type batchRun struct {
	pri  int
	vals []uint64
}

// batchRuns sorts items by priority (stable, so equal-priority values
// keep their slice order) and groups them into runs. Host-side work
// only: a real processor would stage its batch in private memory.
func batchRuns(items []BatchItem) []batchRun {
	if len(items) == 0 {
		return nil
	}
	sorted := make([]BatchItem, len(items))
	copy(sorted, items)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Pri < sorted[j].Pri })
	var runs []batchRun
	for _, it := range sorted {
		if n := len(runs); n > 0 && runs[n-1].pri == it.Pri {
			runs[n-1].vals = append(runs[n-1].vals, it.Val)
			continue
		}
		runs = append(runs, batchRun{pri: it.Pri, vals: []uint64{it.Val}})
	}
	return runs
}
