package simpq

import (
	"testing"

	"pq/internal/sim"
)

// runOn builds a machine, applies setup, runs program on every processor,
// and fails the test on simulator errors.
func runOn(t *testing.T, procs int, setup func(m *sim.Machine), program func(p *sim.Proc)) sim.Stats {
	t.Helper()
	m, err := sim.New(sim.DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	setup(m)
	stats, err := m.Run(program)
	if err != nil {
		t.Fatalf("sim run: %v", err)
	}
	return stats
}

func TestMCSLockMutualExclusion(t *testing.T) {
	const procs = 16
	const iters = 30
	var (
		lock    *MCSLock
		counter sim.Addr
		m       *sim.Machine
	)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			lock = NewMCSLock(mm)
			counter = mm.Alloc(1)
		},
		func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				lock.Acquire(p)
				// Non-atomic read-modify-write: only mutual exclusion
				// makes this correct.
				v := p.Read(counter)
				p.LocalWork(int64(p.Rand(20)))
				p.Write(counter, v+1)
				lock.Release(p)
			}
		})
	if got := m.Word(counter); got != procs*iters {
		t.Fatalf("counter = %d, want %d (mutual exclusion violated)", got, procs*iters)
	}
}

func TestMCSLockUncontendedFastPath(t *testing.T) {
	var (
		lock *MCSLock
		cost int64
	)
	runOn(t, 1,
		func(m *sim.Machine) { lock = NewMCSLock(m) },
		func(p *sim.Proc) {
			t0 := p.Now()
			lock.Acquire(p)
			lock.Release(p)
			cost = p.Now() - t0
		})
	// Uncontended: one swap + node write on acquire, read + CAS on release.
	maxCost := int64(6 * sim.DefaultRemoteCost)
	if cost <= 0 || cost > maxCost {
		t.Fatalf("uncontended acquire/release cost = %d, want (0,%d]", cost, maxCost)
	}
}

func TestTASLockMutualExclusion(t *testing.T) {
	const procs = 12
	const iters = 25
	var (
		lock    TASLock
		counter sim.Addr
		m       *sim.Machine
	)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			lock = NewTASLock(mm)
			counter = mm.Alloc(1)
		},
		func(p *sim.Proc) {
			for i := 0; i < iters; i++ {
				lock.Acquire(p)
				v := p.Read(counter)
				p.LocalWork(int64(p.Rand(10)))
				p.Write(counter, v+1)
				lock.Release(p)
			}
		})
	if got := m.Word(counter); got != procs*iters {
		t.Fatalf("counter = %d, want %d", got, procs*iters)
	}
}

func TestTASLockTryAcquire(t *testing.T) {
	var (
		lock          TASLock
		firstGot      bool
		secondBlocked bool
	)
	runOn(t, 2,
		func(m *sim.Machine) { lock = NewTASLock(m) },
		func(p *sim.Proc) {
			if p.ID() == 0 {
				firstGot = lock.TryAcquire(p)
				p.LocalWork(5000)
				lock.Release(p)
			} else {
				p.LocalWork(500) // let proc 0 take it first
				if !lock.TryAcquire(p) {
					secondBlocked = true
				} else {
					lock.Release(p)
				}
			}
		})
	if !firstGot {
		t.Error("first TryAcquire failed on a free lock")
	}
	if !secondBlocked {
		t.Error("second TryAcquire succeeded on a held lock")
	}
}

func TestMCSLockFIFOHandoff(t *testing.T) {
	// Processors arrive in a staggered order; MCS must grant the lock in
	// arrival order.
	const procs = 8
	var (
		lock  *MCSLock
		order []int
	)
	runOn(t, procs,
		func(m *sim.Machine) { lock = NewMCSLock(m) },
		func(p *sim.Proc) {
			p.LocalWork(int64(p.ID()) * 500) // stagger arrivals widely
			lock.Acquire(p)
			order = append(order, p.ID())
			p.LocalWork(2000) // hold long enough that all later procs queue
			lock.Release(p)
		})
	for i, id := range order {
		if id != i {
			t.Fatalf("handoff order %v, want arrival order", order)
		}
	}
}
