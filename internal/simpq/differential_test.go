package simpq

import (
	"math/rand"
	"testing"

	"pq/internal/refpq"
	"pq/internal/sim"
)

// TestDifferentialSequentialOnSim runs each stack-binned queue on a
// single simulated processor against the sequential reference: every
// return value must match exactly, including equal-priority (LIFO) order.
func TestDifferentialSequentialOnSim(t *testing.T) {
	algs := []Algorithm{AlgSimpleLinear, AlgSimpleTree, AlgLinearFunnels, AlgFunnelTree}
	for _, alg := range algs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			for seed := int64(1); seed <= 5; seed++ {
				const npri = 8
				const ops = 250
				var q Queue
				mismatch := ""
				runOn(t, 1,
					func(m *sim.Machine) { q = Build(alg, m, npri, ops+1) },
					func(p *sim.Proc) {
						ref := refpq.New(npri)
						rng := rand.New(rand.NewSource(seed))
						for i := 0; i < ops && mismatch == ""; i++ {
							if rng.Intn(5) < 3 {
								pri := rng.Intn(npri)
								v := uint64(i)<<8 | uint64(pri)
								q.Insert(p, pri, v)
								ref.Insert(pri, v)
							} else {
								gv, gok := q.DeleteMin(p)
								wv, wok := ref.DeleteMin()
								if gok != wok || (gok && gv != wv) {
									mismatch = "mid-stream mismatch"
								}
							}
						}
						for mismatch == "" {
							gv, gok := q.DeleteMin(p)
							wv, wok := ref.DeleteMin()
							if gok != wok || (gok && gv != wv) {
								mismatch = "drain mismatch"
							}
							if !gok {
								break
							}
						}
					})
				if mismatch != "" {
					t.Fatalf("seed %d: %s", seed, mismatch)
				}
			}
		})
	}
}

// TestDifferentialHeapPriOnSim checks the heap-based queues for exact
// minimum-priority behaviour against the reference (value order within a
// priority is unspecified for heaps).
func TestDifferentialHeapPriOnSim(t *testing.T) {
	for _, alg := range []Algorithm{AlgSingleLock, AlgHuntEtAl} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 8
			const ops = 250
			var q Queue
			mismatch := ""
			runOn(t, 1,
				func(m *sim.Machine) { q = Build(alg, m, npri, ops+1) },
				func(p *sim.Proc) {
					ref := refpq.New(npri)
					rng := rand.New(rand.NewSource(42))
					for i := 0; i < ops && mismatch == ""; i++ {
						if rng.Intn(5) < 3 {
							pri := rng.Intn(npri)
							v := uint64(i)<<8 | uint64(pri)
							q.Insert(p, pri, v)
							ref.Insert(pri, v)
						} else {
							gv, gok := q.DeleteMin(p)
							wv, wok := ref.DeleteMin()
							if gok != wok || (gok && gv&0xff != wv&0xff) {
								mismatch = "priority mismatch"
							}
						}
					}
				})
			if mismatch != "" {
				t.Fatal(mismatch)
			}
		})
	}
}
