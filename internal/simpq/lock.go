package simpq

import "pq/internal/sim"

// MCSLock is the queue lock of Mellor-Crummey and Scott on simulated
// memory. Each processor spins on its own queue node, so waiting generates
// no traffic at the lock word; release hands the lock to the next waiter
// with a single remote write.
type MCSLock struct {
	tail  sim.Addr // 0 = free, else qnode address + 1
	nodes sim.Addr // procs * 2 words: [next, locked] per processor
}

const (
	mcsNext   = 0
	mcsLocked = 1
)

// NewMCSLock allocates a lock and one queue node per processor.
func NewMCSLock(m *sim.Machine) *MCSLock {
	l := &MCSLock{tail: m.Alloc(1), nodes: m.Alloc(m.Procs() * 2)}
	m.Label(l.tail, 1, "mcs.tail")
	m.Label(l.nodes, m.Procs()*2, "mcs.qnodes")
	return l
}

func (l *MCSLock) node(p *sim.Proc) sim.Addr {
	return l.nodes + sim.Addr(p.ID()*2)
}

// Acquire blocks until the calling processor holds the lock.
func (l *MCSLock) Acquire(p *sim.Proc) {
	n := l.node(p)
	p.Write(n+mcsNext, 0)
	pred := p.Swap(l.tail, uint64(n)+1)
	if pred == 0 {
		return
	}
	p.Write(n+mcsLocked, 1)
	p.Write(sim.Addr(pred-1)+mcsNext, uint64(n)+1)
	for p.Read(n+mcsLocked) == 1 {
		p.WaitWhile(n+mcsLocked, 1)
	}
}

// Release passes the lock to the next waiter, if any.
func (l *MCSLock) Release(p *sim.Proc) {
	n := l.node(p)
	next := p.Read(n + mcsNext)
	if next == 0 {
		if p.CAS(l.tail, uint64(n)+1, 0) {
			return
		}
		// A successor is in the middle of linking itself in.
		next = p.WaitWhile(n+mcsNext, 0)
	}
	p.Write(sim.Addr(next-1)+mcsLocked, 0)
}

// TASLock is a test-and-set lock with parked waiting, used where the paper
// needs many cheap fine-grained locks (heap nodes, skip-list nodes). A
// waiter parks on the lock word and retries the swap when it changes.
type TASLock struct {
	word sim.Addr
}

// NewTASLock allocates a one-word lock.
func NewTASLock(m *sim.Machine) TASLock {
	l := TASLock{word: m.Alloc(1)}
	m.Label(l.word, 1, "tas.lock")
	return l
}

// Acquire blocks until the calling processor holds the lock.
func (l TASLock) Acquire(p *sim.Proc) {
	for p.Swap(l.word, 1) != 0 {
		p.WaitWhile(l.word, 1)
	}
}

// TryAcquire attempts the lock once without waiting and reports success.
func (l TASLock) TryAcquire(p *sim.Proc) bool {
	return p.Swap(l.word, 1) == 0
}

// Release frees the lock.
func (l TASLock) Release(p *sim.Proc) {
	p.Write(l.word, 0)
}
