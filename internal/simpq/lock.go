package simpq

import "pq/internal/sim"

// MCSLock is the queue lock of Mellor-Crummey and Scott on simulated
// memory. Each processor spins on its own queue node, so waiting generates
// no traffic at the lock word; release hands the lock to the next waiter
// with a single remote write.
type MCSLock struct {
	tail  sim.Addr // 0 = free, else qnode address + 1
	nodes sim.Addr // procs * 2 words: [next, locked] per processor

	// Host-side internals counters (no simulated cost). The single-baton
	// engine serializes all calls, so plain fields suffice; holdFrom is
	// well-defined because exactly one processor holds the lock.
	acquires   int64
	contended  int64 // acquires that found a predecessor queued
	waitCycles int64 // cycles from acquire start to lock held
	holdCycles int64 // cycles from lock held to release start
	holdFrom   int64
}

// Metrics reports the lock's accumulated acquire/wait/hold counters.
func (l *MCSLock) Metrics() Metrics {
	return Metrics{
		"acquires":    float64(l.acquires),
		"contended":   float64(l.contended),
		"wait_cycles": float64(l.waitCycles),
		"hold_cycles": float64(l.holdCycles),
	}
}

const (
	mcsNext   = 0
	mcsLocked = 1
)

// NewMCSLock allocates a lock and one queue node per processor.
func NewMCSLock(m *sim.Machine) *MCSLock {
	l := &MCSLock{tail: m.Alloc(1), nodes: m.Alloc(m.Procs() * 2)}
	m.Label(l.tail, 1, "mcs.tail")
	m.Label(l.nodes, m.Procs()*2, "mcs.qnodes")
	return l
}

func (l *MCSLock) node(p *sim.Proc) sim.Addr {
	return l.nodes + sim.Addr(p.ID()*2)
}

// Acquire blocks until the calling processor holds the lock.
func (l *MCSLock) Acquire(p *sim.Proc) {
	start := p.Now()
	n := l.node(p)
	p.Write(n+mcsNext, 0)
	pred := p.Swap(l.tail, uint64(n)+1)
	if pred == 0 {
		l.acquired(p, start)
		return
	}
	p.Write(n+mcsLocked, 1)
	p.Write(sim.Addr(pred-1)+mcsNext, uint64(n)+1)
	for p.Read(n+mcsLocked) == 1 {
		p.WaitWhile(n+mcsLocked, 1)
	}
	l.contended++
	p.AppSpan(sim.PhaseLockWait, start)
	l.acquired(p, start)
}

// acquired books the completed acquisition's wait time and opens the
// hold interval.
func (l *MCSLock) acquired(p *sim.Proc, start int64) {
	l.acquires++
	l.waitCycles += p.Now() - start
	l.holdFrom = p.Now()
}

// Release passes the lock to the next waiter, if any.
func (l *MCSLock) Release(p *sim.Proc) {
	l.holdCycles += p.Now() - l.holdFrom
	n := l.node(p)
	next := p.Read(n + mcsNext)
	if next == 0 {
		if p.CAS(l.tail, uint64(n)+1, 0) {
			return
		}
		// A successor is in the middle of linking itself in.
		next = p.WaitWhile(n+mcsNext, 0)
	}
	p.Write(sim.Addr(next-1)+mcsLocked, 0)
}

// TASLock is a test-and-set lock with parked waiting, used where the paper
// needs many cheap fine-grained locks (heap nodes, skip-list nodes). A
// waiter parks on the lock word and retries the swap when it changes.
type TASLock struct {
	word sim.Addr
}

// NewTASLock allocates a one-word lock.
func NewTASLock(m *sim.Machine) TASLock {
	l := TASLock{word: m.Alloc(1)}
	m.Label(l.word, 1, "tas.lock")
	return l
}

// Acquire blocks until the calling processor holds the lock.
func (l TASLock) Acquire(p *sim.Proc) {
	for p.Swap(l.word, 1) != 0 {
		p.WaitWhile(l.word, 1)
	}
}

// TryAcquire attempts the lock once without waiting and reports success.
func (l TASLock) TryAcquire(p *sim.Proc) bool {
	return p.Swap(l.word, 1) == 0
}

// Release frees the lock.
func (l TASLock) Release(p *sim.Proc) {
	p.Write(l.word, 0)
}
