package simpq

import "pq/internal/sim"

// Bin is the lock-based bag of Figure 1 of the paper: an MCS-locked array
// holding arbitrary elements, supporting insertion, removal of an
// unspecified element, and a lock-free emptiness test.
type Bin struct {
	lock  *MCSLock
	size  sim.Addr
	elems sim.Addr
	cap   int
}

// NewBin allocates a bin with room for capacity elements.
func NewBin(m *sim.Machine, capacity int) *Bin {
	b := &Bin{
		lock:  NewMCSLock(m),
		size:  m.Alloc(1),
		elems: m.Alloc(capacity),
		cap:   capacity,
	}
	m.Label(b.size, 1, "bin.size")
	m.Label(b.elems, capacity, "bin.elems")
	return b
}

// Metrics reports the bin's lock counters (prefix "lock").
func (b *Bin) Metrics() Metrics {
	m := Metrics{}
	m.add("lock", b.lock.Metrics())
	return m
}

// Insert adds e to the bin. Like the paper's bin-insert, it silently drops
// the element if the bin is full; callers size bins so this cannot happen
// and tests assert it does not. It reports whether the element was stored.
func (b *Bin) Insert(p *sim.Proc, e uint64) bool {
	b.lock.Acquire(p)
	n := p.Read(b.size)
	stored := n < uint64(b.cap)
	if stored {
		p.Write(b.elems+sim.Addr(n), e)
		p.Write(b.size, n+1)
	}
	b.lock.Release(p)
	return stored
}

// InsertN adds all elements under one lock hold — the batch fast path.
// Elements beyond capacity are silently dropped like Insert; it reports
// how many were stored.
func (b *Bin) InsertN(p *sim.Proc, es []uint64) int {
	if len(es) == 0 {
		return 0
	}
	b.lock.Acquire(p)
	n := p.Read(b.size)
	stored := 0
	for _, e := range es {
		if n >= uint64(b.cap) {
			break
		}
		p.Write(b.elems+sim.Addr(n), e)
		n++
		stored++
	}
	p.Write(b.size, n)
	b.lock.Release(p)
	return stored
}

// Empty reports whether the bin currently looks empty; it costs one read
// and takes no lock.
func (b *Bin) Empty(p *sim.Proc) bool {
	return p.Read(b.size) == 0
}

// DeleteN removes and returns up to k elements under one lock hold, in
// the order k consecutive Deletes would return them; a short result means
// the bin ran dry.
func (b *Bin) DeleteN(p *sim.Proc, k int) []uint64 {
	if k < 1 {
		return nil
	}
	b.lock.Acquire(p)
	n := p.Read(b.size)
	avail := uint64(k)
	if avail > n {
		avail = n
	}
	out := make([]uint64, avail)
	for i := uint64(0); i < avail; i++ {
		out[i] = p.Read(b.elems + sim.Addr(n-1-i))
	}
	p.Write(b.size, n-avail)
	b.lock.Release(p)
	return out
}

// Delete removes and returns an unspecified element, or ok=false if the
// bin is empty.
func (b *Bin) Delete(p *sim.Proc) (uint64, bool) {
	b.lock.Acquire(p)
	n := p.Read(b.size)
	if n == 0 {
		b.lock.Release(p)
		return 0, false
	}
	e := p.Read(b.elems + sim.Addr(n-1))
	p.Write(b.size, n-1)
	b.lock.Release(p)
	return e, true
}

// Counter is the paper's shared counter (Figure 1) implemented with a
// lock, standing in for the "atomically" blocks the paper assumes are
// provided by hardware (e.g. Alewife's full/empty bits) on machines
// without fetch-and-add. It supports fetch-and-increment and bounded
// fetch-and-decrement.
type Counter struct {
	lock *MCSLock
	val  sim.Addr
}

// NewCounter allocates a counter initialized to zero.
func NewCounter(m *sim.Machine) *Counter {
	c := &Counter{lock: NewMCSLock(m), val: m.Alloc(1)}
	m.Label(c.val, 1, "counter.val")
	return c
}

// Metrics reports the counter's lock counters (prefix "lock").
func (c *Counter) Metrics() Metrics {
	m := Metrics{}
	m.add("lock", c.lock.Metrics())
	return m
}

// FaI atomically increments the counter and returns the previous value.
func (c *Counter) FaI(p *sim.Proc) uint64 {
	c.lock.Acquire(p)
	old := p.Read(c.val)
	p.Write(c.val, old+1)
	c.lock.Release(p)
	return old
}

// BFaD atomically decrements the counter unless it is at or below bound,
// and returns the previous value (Figure 1's bounded fetch-and-decrement).
func (c *Counter) BFaD(p *sim.Proc, bound uint64) uint64 {
	c.lock.Acquire(p)
	old := p.Read(c.val)
	if old > bound {
		p.Write(c.val, old-1)
	}
	c.lock.Release(p)
	return old
}

// BFaI atomically increments the counter unless it is at or above bound,
// and returns the previous value (the analogous bounded
// fetch-and-increment).
func (c *Counter) BFaI(p *sim.Proc, bound uint64) uint64 {
	c.lock.Acquire(p)
	old := p.Read(c.val)
	if old < bound {
		p.Write(c.val, old+1)
	}
	c.lock.Release(p)
	return old
}

// AddN atomically adds n and returns the previous value — n increments
// for one lock hold.
func (c *Counter) AddN(p *sim.Proc, n uint64) uint64 {
	c.lock.Acquire(p)
	old := p.Read(c.val)
	p.Write(c.val, old+n)
	c.lock.Release(p)
	return old
}

// BSubN atomically subtracts min(n, prev-bound) — n bounded decrements
// for one lock hold — and returns the previous value.
func (c *Counter) BSubN(p *sim.Proc, n, bound uint64) uint64 {
	c.lock.Acquire(p)
	old := p.Read(c.val)
	take := n
	if old < bound+take {
		take = 0
		if old > bound {
			take = old - bound
		}
	}
	if take > 0 {
		p.Write(c.val, old-take)
	}
	c.lock.Release(p)
	return old
}
