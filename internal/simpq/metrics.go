package simpq

import "sort"

// Metrics is a point-in-time snapshot of a component's internals
// counters, keyed by dotted metric name (e.g. "funnel.eliminations").
// Counters live in native Go state, never in simulated memory, so
// collecting them perturbs neither the cost model nor determinism: a
// metered run is cycle-identical to an unmetered one.
type Metrics map[string]float64

// MetricsSource is implemented by queues and substrates that expose
// internals counters. Snapshots are only meaningful after Run returns.
type MetricsSource interface {
	Metrics() Metrics
}

// MetricsOf snapshots q's internals metrics, or returns nil if the queue
// exposes none.
func MetricsOf(q Queue) Metrics {
	if ms, ok := q.(MetricsSource); ok {
		return ms.Metrics()
	}
	return nil
}

// Names returns the metric names in sorted order, for deterministic
// rendering.
func (m Metrics) Names() []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// add merges src into m under a dotted prefix, overwriting existing keys.
func (m Metrics) add(prefix string, src Metrics) {
	for k, v := range src {
		m[prefix+"."+k] = v
	}
}

// addSum accumulates src into m under a dotted prefix — the aggregation
// used when a queue owns many components of the same kind (one lock per
// bin, one funnel per stack).
func (m Metrics) addSum(prefix string, src Metrics) {
	for k, v := range src {
		m[prefix+"."+k] += v
	}
}

// finishFactor converts the summed adaption-factor accounting produced
// by addSum into a mean: funnels report "adaption_factor_sum" over
// "records" processor records, and aggregated queues want one mean.
func (m Metrics) finishFactor(prefix string) {
	sumKey, nKey := prefix+".adaption_factor_sum", prefix+".records"
	if n := m[nKey]; n > 0 {
		m[prefix+".adaption_factor_mean"] = m[sumKey] / n
	}
	delete(m, sumKey)
	delete(m, nKey)
}
