package simpq

import (
	"reflect"
	"testing"

	"pq/internal/sim"
	"pq/internal/trace"
)

// tracedRun drives the standard workload for alg with an optional span
// collector attached and returns the result (and collector).
func tracedRun(t *testing.T, alg Algorithm, procs int, collect bool) (Result, *trace.Collector) {
	t.Helper()
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 20
	cfg.Seed = 7
	cfg.KeepLatencies = true
	simCfg := sim.DefaultConfig(procs)
	var col *trace.Collector
	if collect {
		col = trace.NewCollector(procs)
		simCfg.Spans = col
	}
	r, _, err := WorkloadOnMachine(alg, 16, cfg, simCfg, 0)
	if err != nil {
		t.Fatalf("%s: %v", alg, err)
	}
	return r, col
}

// TestTraceZeroCost asserts that attaching a collector changes nothing
// about the simulated run: same final time, same event count, same
// latency results. Tracing must be observation, not perturbation.
func TestTraceZeroCost(t *testing.T) {
	for _, alg := range []Algorithm{AlgSimpleTree, AlgFunnelTree} {
		plain, _ := tracedRun(t, alg, 16, false)
		traced, col := tracedRun(t, alg, 16, true)
		if plain.Stats.FinalTime != traced.Stats.FinalTime {
			t.Errorf("%s: FinalTime changed under tracing: %d vs %d",
				alg, plain.Stats.FinalTime, traced.Stats.FinalTime)
		}
		if plain.Stats.Events != traced.Stats.Events {
			t.Errorf("%s: Events changed under tracing: %d vs %d",
				alg, plain.Stats.Events, traced.Stats.Events)
		}
		if !reflect.DeepEqual(plain.AllSummary, traced.AllSummary) {
			t.Errorf("%s: latency summary changed under tracing", alg)
		}
		if col.SpanCount() == 0 {
			t.Errorf("%s: collector recorded no spans", alg)
		}
	}
}

// TestTraceDeterministicOnQueue asserts two same-seed runs of a real
// queue workload export byte-identical traces.
func TestTraceDeterministicOnQueue(t *testing.T) {
	_, c1 := tracedRun(t, AlgFunnelTree, 16, true)
	_, c2 := tracedRun(t, AlgFunnelTree, 16, true)
	d1, err := c1.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c2.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("same-seed traces differ: %s vs %s", d1, d2)
	}
}

// TestTraceOpSpans asserts the workload driver emits op-level spans with
// the expected kinds and counts matching the result tallies.
func TestTraceOpSpans(t *testing.T) {
	r, col := tracedRun(t, AlgSingleLock, 8, true)
	totals := col.OpTotals()
	byKind := map[string]int{}
	for _, ot := range totals {
		byKind[ot.Kind] = ot.Count
	}
	if byKind["insert"] != r.Inserts {
		t.Errorf("insert spans = %d, want %d", byKind["insert"], r.Inserts)
	}
	if byKind["deletemin"] != r.Deletes {
		t.Errorf("deletemin spans = %d, want %d", byKind["deletemin"], r.Deletes)
	}
}

// TestMetricsAllAlgorithms asserts every implementation reports
// internals and that headline counters are sane.
func TestMetricsAllAlgorithms(t *testing.T) {
	for _, alg := range Algorithms {
		r, _ := tracedRun(t, alg, 16, false)
		if r.Internals == nil {
			t.Errorf("%s: no internals metrics", alg)
			continue
		}
		if len(r.Internals.Names()) == 0 {
			t.Errorf("%s: empty internals metrics", alg)
		}
		for name, v := range r.Internals {
			if v < 0 {
				t.Errorf("%s: metric %s negative: %g", alg, name, v)
			}
		}
	}
}

// TestMetricsMechanisms spot-checks that the counters measure what they
// claim: locks acquire, funnels combine under load, scans scan.
func TestMetricsMechanisms(t *testing.T) {
	single, _ := tracedRun(t, AlgSingleLock, 16, false)
	ops := float64(single.Inserts + single.Deletes)
	if got := single.Internals["lock.acquires"]; got < ops {
		t.Errorf("SingleLock lock.acquires = %g, want >= %g (one per op)", got, ops)
	}
	if single.Internals["lock.wait_cycles"] <= 0 {
		t.Errorf("SingleLock under 16 procs shows no lock waiting")
	}

	lin, _ := tracedRun(t, AlgSimpleLinear, 16, false)
	if lin.Internals["scans"] != float64(lin.Deletes) {
		t.Errorf("SimpleLinear scans = %g, want %d", lin.Internals["scans"], lin.Deletes)
	}
	if lin.Internals["scanned_bins"] < lin.Internals["scans"] {
		t.Errorf("SimpleLinear scanned fewer bins than scans")
	}

	tree, _ := tracedRun(t, AlgSimpleTree, 16, false)
	if tree.Internals["descents"] != float64(tree.Deletes) {
		t.Errorf("SimpleTree descents = %g, want %d", tree.Internals["descents"], tree.Deletes)
	}

	ft, _ := tracedRun(t, AlgFunnelTree, 64, false)
	passes := ft.Internals["counter.funnel.passes"] + ft.Internals["bin.funnel.passes"]
	if passes <= 0 {
		t.Errorf("FunnelTree recorded no funnel passes")
	}
	if f := ft.Internals["counter.funnel.adaption_factor_mean"]; f <= 0 || f > 1 {
		t.Errorf("FunnelTree counter adaption factor mean out of (0,1]: %g", f)
	}
}

// TestLatencyHistograms asserts the per-op histograms cover exactly the
// measured operations and agree with the summaries on quantile order.
func TestLatencyHistograms(t *testing.T) {
	r, _ := tracedRun(t, AlgHuntEtAl, 16, false)
	if r.InsertHist == nil || r.DeleteHist == nil {
		t.Fatal("histograms not populated despite KeepLatencies")
	}
	if r.InsertHist.Total() != r.Inserts {
		t.Errorf("insert histogram total = %d, want %d", r.InsertHist.Total(), r.Inserts)
	}
	if r.DeleteHist.Total() != r.Deletes {
		t.Errorf("delete histogram total = %d, want %d", r.DeleteHist.Total(), r.Deletes)
	}
	p50, p99 := r.DeleteHist.Quantile(0.50), r.DeleteHist.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Errorf("delete quantiles out of order: p50=%g p99=%g", p50, p99)
	}
}

// TestProcOpsStats asserts the simulator's per-proc op counts match the
// workload's configured operation count.
func TestProcOpsStats(t *testing.T) {
	r, _ := tracedRun(t, AlgSkipList, 8, false)
	if len(r.Stats.ProcOps) != 8 {
		t.Fatalf("ProcOps length = %d, want 8", len(r.Stats.ProcOps))
	}
	for id, n := range r.Stats.ProcOps {
		if n != 20 {
			t.Errorf("proc %d completed %d ops, want 20", id, n)
		}
	}
	if r.Stats.MemOps <= 0 || r.Stats.StallCycles <= 0 {
		t.Errorf("sim totals not populated: memops=%d stalls=%d",
			r.Stats.MemOps, r.Stats.StallCycles)
	}
}
