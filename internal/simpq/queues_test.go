package simpq

import (
	"reflect"
	"sort"
	"testing"

	"pq/internal/sim"
)

// Value encoding used by queue tests: priority in the high bits so drain
// order checks can recover it.
func encVal(pri, proc, seq int) uint64 {
	return uint64(pri)<<40 | uint64(proc)<<20 | uint64(seq) | 1<<55
}

func decPri(v uint64) int { return int(v>>40) & 0x7fff }

// strictOrderOnDrain reports whether the algorithm guarantees that a
// sequential drain at quiescence returns priorities in non-decreasing
// order even after a concurrent mixed phase. The skip list's delete-bin
// intentionally serves slightly stale priorities (the paper's design), and
// our Hunt variant can leave a transient local inversion for an inserter
// to repair, so those two get multiset-only checks under concurrency.
func strictOrderOnDrain(alg Algorithm) bool {
	return alg != AlgSkipList && alg != AlgHuntEtAl
}

func TestQueueSequentialFillThenDrain(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 16
			const items = 120
			var q Queue
			var drained []uint64
			runOn(t, 1,
				func(m *sim.Machine) { q = Build(alg, m, npri, items+1) },
				func(p *sim.Proc) {
					for i := 0; i < items; i++ {
						q.Insert(p, p.Rand(npri), encVal(0, 0, i))
					}
					for {
						v, ok := q.DeleteMin(p)
						if !ok {
							break
						}
						drained = append(drained, v)
					}
					if _, ok := q.DeleteMin(p); ok {
						t.Error("DeleteMin succeeded on drained queue")
					}
				})
			if len(drained) != items {
				t.Fatalf("drained %d items, want %d", len(drained), items)
			}
			seen := map[uint64]bool{}
			for _, v := range drained {
				if seen[v] {
					t.Fatalf("duplicate value %#x", v)
				}
				seen[v] = true
			}
		})
	}
}

func TestQueueSequentialPriorityOrder(t *testing.T) {
	// Insert with the priority encoded in the value; drain must return
	// non-decreasing priorities for every algorithm when run sequentially
	// with all inserts before all deletes.
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 32
			const items = 150
			var q Queue
			var pris []int
			runOn(t, 1,
				func(m *sim.Machine) { q = Build(alg, m, npri, items+1) },
				func(p *sim.Proc) {
					for i := 0; i < items; i++ {
						pri := p.Rand(npri)
						q.Insert(p, pri, encVal(pri, 0, i))
					}
					for {
						v, ok := q.DeleteMin(p)
						if !ok {
							break
						}
						pris = append(pris, decPri(v))
					}
				})
			if len(pris) != items {
				t.Fatalf("drained %d, want %d", len(pris), items)
			}
			if !sort.IntsAreSorted(pris) {
				t.Fatalf("drain order not sorted: %v", pris)
			}
		})
	}
}

func TestQueueConcurrentMixedThenDrain(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const (
				procs   = 16
				perProc = 20
				npri    = 8
			)
			var (
				q   Queue
				bar *barrier
			)
			inserted := make([][]uint64, procs)
			deleted := make([][]uint64, procs)
			var drained []uint64
			runOn(t, procs,
				func(m *sim.Machine) {
					q = Build(alg, m, npri, procs*perProc+1)
					bar = newBarrier(m)
				},
				func(p *sim.Proc) {
					id := p.ID()
					for i := 0; i < perProc; i++ {
						if p.Rand(2) == 0 {
							pri := p.Rand(npri)
							v := encVal(pri, id, i)
							inserted[id] = append(inserted[id], v)
							q.Insert(p, pri, v)
						} else if v, ok := q.DeleteMin(p); ok {
							deleted[id] = append(deleted[id], v)
						}
					}
					bar.wait(p, 1)
					if id == 0 {
						for {
							v, ok := q.DeleteMin(p)
							if !ok {
								break
							}
							drained = append(drained, v)
						}
					}
				})

			// Multiset check: inserted == deleted + drained, exactly.
			remaining := map[uint64]int{}
			nIns := 0
			for _, vs := range inserted {
				for _, v := range vs {
					remaining[v]++
					nIns++
				}
			}
			consume := func(v uint64, where string) {
				if remaining[v] == 0 {
					t.Fatalf("%s returned value %#x that is not outstanding", where, v)
				}
				remaining[v]--
			}
			for _, vs := range deleted {
				for _, v := range vs {
					consume(v, "concurrent delete")
				}
			}
			for _, v := range drained {
				consume(v, "drain")
			}
			for v, n := range remaining {
				if n != 0 {
					t.Errorf("value %#x lost (inserted %d times more than removed)", v, n)
				}
			}
			if t.Failed() {
				t.Fatalf("multiset mismatch: inserted=%d", nIns)
			}

			if strictOrderOnDrain(alg) {
				pris := make([]int, len(drained))
				for i, v := range drained {
					pris[i] = decPri(v)
				}
				if !sort.IntsAreSorted(pris) {
					t.Fatalf("post-quiescence drain order not sorted: %v", pris)
				}
			}
		})
	}
}

func TestQueueDeleteOnEmpty(t *testing.T) {
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			var q Queue
			runOn(t, 4,
				func(m *sim.Machine) { q = Build(alg, m, 8, 64) },
				func(p *sim.Proc) {
					for i := 0; i < 5; i++ {
						if _, ok := q.DeleteMin(p); ok {
							t.Error("DeleteMin on never-filled queue succeeded")
						}
					}
				})
		})
	}
}

func TestQueueSinglePriority(t *testing.T) {
	// Degenerate range N=1 must still work (it exercises tree queues with
	// a single leaf).
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			var q Queue
			var bar *barrier
			var got int
			runOn(t, 4,
				func(m *sim.Machine) {
					q = Build(alg, m, 1, 64)
					bar = newBarrier(m)
				},
				func(p *sim.Proc) {
					q.Insert(p, 0, encVal(0, p.ID(), 0))
					// Quiescently consistent queues only promise that items
					// inserted before a quiescent point are visible after it.
					bar.wait(p, 1)
					if _, ok := q.DeleteMin(p); ok {
						got++
					}
				})
			if got != 4 {
				t.Fatalf("completed %d delete-mins, want 4", got)
			}
		})
	}
}

func TestQueueInterleavedPriorityRespect(t *testing.T) {
	// Single processor interleaving inserts and deletes: every delete must
	// return the current minimum for the strictly-ordered algorithms.
	for _, alg := range Algorithms {
		if !strictOrderOnDrain(alg) {
			continue
		}
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const npri = 16
			var q Queue
			runOn(t, 1,
				func(m *sim.Machine) { q = Build(alg, m, npri, 256) },
				func(p *sim.Proc) {
					live := map[int]int{} // pri -> count
					for i := 0; i < 200; i++ {
						if p.Rand(3) != 0 {
							pri := p.Rand(npri)
							q.Insert(p, pri, encVal(pri, 0, i))
							live[pri]++
						} else {
							v, ok := q.DeleteMin(p)
							min := -1
							for pr := 0; pr < npri; pr++ {
								if live[pr] > 0 {
									min = pr
									break
								}
							}
							if min == -1 {
								if ok {
									t.Fatalf("delete on empty returned %#x", v)
								}
								continue
							}
							if !ok {
								t.Fatalf("delete failed with %d live items", len(live))
							}
							if got := decPri(v); got != min {
								t.Fatalf("deleted priority %d, want min %d", got, min)
							}
							live[min]--
						}
					}
				})
		})
	}
}

func TestQueueDeterministicLatency(t *testing.T) {
	// Same configuration twice must produce bit-identical results; this is
	// the property that makes the reproduction immune to host scheduling.
	run := func() Result {
		r, err := RunWorkload(AlgFunnelTree, 8, 16, WorkloadConfig{
			OpsPerProc: 20, LocalWork: 30, InsertFraction: 0.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("nondeterministic workload results:\n%+v\n%+v", a, b)
	}
}
