package simpq

import "pq/internal/sim"

// FunnelCounter is a shared counter built from a combining funnel. In
// bounded mode it implements the paper's Section 3.3 algorithm (Figure
// 10): combining trees are kept homogeneous (one operation kind per tree)
// because bounded operations do not commute, and reversing operations of
// equal tree size eliminate, short-cutting past the central counter. In
// unbounded mode it is the plain combining-funnel fetch-and-add of Shavit
// and Zemach's funnels paper: any operations combine and nothing
// eliminates.
type FunnelCounter struct {
	f       *funnel
	main    sim.Addr
	lower   uint64
	upper   uint64
	bounded bool

	// Host-side operation statistics (no simulated cost): how operations
	// retired — combined into another tree, eliminated, or applied
	// centrally — plus central CAS failures. Useful for tuning and tests.
	Stats FunnelCounterStats
}

// FunnelCounterStats counts how funnel operations resolved.
type FunnelCounterStats struct {
	Captured     int
	Eliminations int
	CentralOK    int
	CentralFail  int
}

// Metrics reports the counter's internals: funnel collision counters
// (prefix "funnel") plus how operations retired at the central word.
func (c *FunnelCounter) Metrics() Metrics {
	m := Metrics{
		"captured":     float64(c.Stats.Captured),
		"eliminations": float64(c.Stats.Eliminations),
		"central_ok":   float64(c.Stats.CentralOK),
		"central_fail": float64(c.Stats.CentralFail),
	}
	m.add("funnel", c.f.Metrics())
	return m
}

// NoUpperBound disables the upper bound of a bounded counter.
const NoUpperBound = uint64(1) << 58

// NewFunnelCounter builds a counter starting at zero. If bounded is true,
// decrements never take the value below bound and trees are homogeneous.
func NewFunnelCounter(m *sim.Machine, params FunnelParams, bounded bool, bound uint64) *FunnelCounter {
	if !bounded {
		c := NewFunnelCounterBounds(m, params, 0, NoUpperBound)
		c.bounded = false
		return c
	}
	return NewFunnelCounterBounds(m, params, bound, NoUpperBound)
}

// NewFunnelCounterBounds builds a counter whose value stays in
// [lower, upper] — the paper's bounded fetch-and-decrement plus the
// "analogous bounded fetch-and-increment" it mentions for completeness.
func NewFunnelCounterBounds(m *sim.Machine, params FunnelParams, lower, upper uint64) *FunnelCounter {
	c := &FunnelCounter{
		f:       newFunnel(m, params),
		main:    m.Alloc(1),
		lower:   lower,
		upper:   upper,
		bounded: true,
	}
	m.Label(c.main, 1, "funnelcounter.main")
	return c
}

// Value reads the central counter (one shared read; a snapshot only).
func (c *FunnelCounter) Value(p *sim.Proc) uint64 { return p.Read(c.main) }

// FaI performs fetch-and-increment through the funnel and returns the
// previous value seen by this operation.
func (c *FunnelCounter) FaI(p *sim.Proc) uint64 { return c.op(p, 1) }

// BFaD performs the bounded fetch-and-decrement of Figure 10: it returns
// the previous value, decrementing only if the value exceeded the lower
// bound. A return value equal to the bound means the counter was not
// decremented.
func (c *FunnelCounter) BFaD(p *sim.Proc) uint64 { return c.op(p, -1) }

// BFaI is fetch-and-increment against the upper bound: a return equal to
// the upper bound means the counter was not incremented. Identical to FaI
// when no upper bound is set.
func (c *FunnelCounter) BFaI(p *sim.Proc) uint64 { return c.op(p, 1) }

// AddN adds n as one funnel operation, clamped at the upper bound, and
// returns the previous value: the batch equivalent of n consecutive BFaI
// calls paying one funnel traversal.
func (c *FunnelCounter) AddN(p *sim.Proc, n int64) uint64 {
	if n < 1 {
		panic("simpq: FunnelCounter.AddN needs n >= 1")
	}
	return c.op(p, n)
}

// BSubN subtracts up to n as one funnel operation, stopping at the lower
// bound, and returns the previous value; the effective amount taken is
// min(n, prev-lower), matching n consecutive BFaD calls.
func (c *FunnelCounter) BSubN(p *sim.Proc, n int64) uint64 {
	if n < 1 {
		panic("simpq: FunnelCounter.BSubN needs n >= 1")
	}
	return c.op(p, -n)
}

func (c *FunnelCounter) op(p *sim.Proc, s int64) uint64 {
	my := c.f.begin(p, s)
	mySum := s
	d := 0
	centralFails := 0
	for {
		var (
			outcome collideOutcome
			q       *funnelRec
		)
		outcome, q, d, mySum = c.f.collide(p, my, mySum, c.bounded, d)
		switch outcome {
		case outCaptured:
			c.Stats.Captured++
			elim, _, base := awaitResult(p, my)
			return c.finish(p, my, s, elim, base)

		case outEliminated:
			// Figure 10, lines 12-18: both trees short-cut. The decrement
			// side sees the value as if an increment went first when the
			// counter sits at its bound.
			c.Stats.Eliminations++
			// Interleave increment-first at the lower bound so the
			// decrement sees lower+1; decrement-first otherwise (also
			// correct at the upper bound).
			val := p.Read(c.main)
			if c.bounded && val <= c.lower {
				val++
			}
			myVal, qVal := val, val-1
			if s > 0 { // I am the increment side
				myVal, qVal = val-1, val
			}
			p.Write(q.addr+frResult, encodeResult(true, false, qVal))
			return c.finish(p, my, s, true, myVal)

		case outIncompatible:
			// A reversing tree we captured but cannot pair with (multi-unit
			// members cannot partially cancel): apply it centrally on its
			// behalf, hand it its result, and resume our own pass.
			qSum := int64(p.Read(q.addr + frSum))
			for {
				val := p.Read(c.main)
				nv := int64(val) + qSum
				if c.bounded {
					if qSum < 0 && nv < int64(c.lower) {
						nv = int64(c.lower)
					}
					if qSum > 0 && nv > int64(c.upper) {
						nv = int64(c.upper)
					}
				}
				if p.CAS(c.main, val, uint64(nv)) {
					c.Stats.CentralOK++
					p.Write(q.addr+frResult, encodeResult(false, false, val))
					break
				}
				c.Stats.CentralFail++
				p.LocalWork(int64(20 + p.Rand(20)))
			}
			p.Write(my.addr+frLocation, locCode(d))

		case outExit:
			if !p.CAS(my.addr+frLocation, locCode(d), 0) {
				elim, _, base := awaitResult(p, my)
				return c.finish(p, my, s, elim, base)
			}
			val := p.Read(c.main)
			nv := int64(val) + mySum
			if c.bounded {
				if s < 0 && nv < int64(c.lower) {
					nv = int64(c.lower)
				}
				if s > 0 && nv > int64(c.upper) {
					nv = int64(c.upper)
				}
			}
			if p.CAS(c.main, val, uint64(nv)) {
				c.Stats.CentralOK++
				return c.finish(p, my, s, false, val)
			}
			c.Stats.CentralFail++
			// Central contention: back off exponentially (a tree that has
			// exhausted the layers cannot combine further, and bare CAS
			// retries against dozens of peer roots convoy quadratically),
			// then re-enter the funnel at the same layer. Contention also
			// revives this processor's funnel usage.
			if my.factor < 1 {
				my.factor *= 1.5
				if my.factor > 1 {
					my.factor = 1
				}
			}
			p.Write(my.addr+frLocation, locCode(d))
			shift := centralFails
			if shift > 5 {
				shift = 5
			}
			centralFails++
			p.LocalWork(int64((20 + p.Rand(20)) << uint(shift)))
		}
	}
}

// finish distributes results to direct children (Figure 10 lines 41-47)
// and returns this operation's own value. Children recursively distribute
// to theirs when they wake. After an elimination every tree member gets
// the same value (the operations interleave); otherwise each child tree's
// base is offset by the operations applied before it, clamped at the
// bound for decrements.
func (c *FunnelCounter) finish(p *sim.Proc, my *funnelRec, s int64, elim bool, base uint64) uint64 {
	total := s
	for _, ch := range my.children {
		if elim {
			p.Write(ch.rec.addr+frResult, encodeResult(true, false, base))
			continue
		}
		v := int64(base) + total
		if c.bounded {
			if s < 0 && v < int64(c.lower) {
				v = int64(c.lower)
			}
			if s > 0 && v > int64(c.upper) {
				v = int64(c.upper)
			}
		}
		p.Write(ch.rec.addr+frResult, encodeResult(false, false, uint64(v)))
		total += ch.sum
	}
	my.adapt(c.f.params.Adaptive)
	return base
}
