package simpq

import (
	"testing"
	"testing/quick"

	"pq/internal/sim"
)

func TestResultEncodingRoundTrip(t *testing.T) {
	f := func(value uint64, elim, fail bool) bool {
		value &= resValue
		enc := encodeResult(elim, fail, value)
		if enc == 0 {
			return false // must be distinguishable from "no result yet"
		}
		gotElim := enc&resElim != 0
		gotFail := enc&resFail != 0
		gotVal := enc & resValue
		return gotElim == elim && gotFail == fail && gotVal == value
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQueueHighConcurrencyStress drives the four scalable queues at 64
// simulated processors with full multiset verification — a heavier
// interleaving than the 16-processor concurrent test.
func TestQueueHighConcurrencyStress(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy simulation")
	}
	algs := []Algorithm{AlgSimpleLinear, AlgSimpleTree, AlgLinearFunnels, AlgFunnelTree}
	for _, alg := range algs {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			const (
				procs   = 64
				perProc = 15
				npri    = 16
			)
			var (
				q   Queue
				bar *barrier
			)
			inserted := make([][]uint64, procs)
			deleted := make([][]uint64, procs)
			var drained []uint64
			runOn(t, procs,
				func(m *sim.Machine) {
					q = Build(alg, m, npri, procs*perProc+1)
					bar = newBarrier(m)
				},
				func(p *sim.Proc) {
					id := p.ID()
					for i := 0; i < perProc; i++ {
						if p.Rand(2) == 0 {
							pri := p.Rand(npri)
							v := encVal(pri, id, i)
							inserted[id] = append(inserted[id], v)
							q.Insert(p, pri, v)
						} else if v, ok := q.DeleteMin(p); ok {
							deleted[id] = append(deleted[id], v)
						}
					}
					bar.wait(p, 1)
					if id == 0 {
						for {
							v, ok := q.DeleteMin(p)
							if !ok {
								break
							}
							drained = append(drained, v)
						}
					}
				})
			remaining := map[uint64]int{}
			for _, vs := range inserted {
				for _, v := range vs {
					remaining[v]++
				}
			}
			take := func(v uint64) {
				if remaining[v] == 0 {
					t.Fatalf("returned %#x which is not outstanding", v)
				}
				remaining[v]--
			}
			for _, vs := range deleted {
				for _, v := range vs {
					take(v)
				}
			}
			for _, v := range drained {
				take(v)
			}
			for v, n := range remaining {
				if n != 0 {
					t.Fatalf("value %#x lost", v)
				}
			}
		})
	}
}

// TestCounterWorkloadSanity checks the Figure 5 driver end to end.
func TestCounterWorkloadSanity(t *testing.T) {
	for _, bounded := range []bool{false, true} {
		r, err := CounterWorkload(8, 10, 0.5, bounded, 20)
		if err != nil {
			t.Fatal(err)
		}
		if r.MeanAll <= 0 {
			t.Fatalf("bounded=%v: MeanAll=%f", bounded, r.MeanAll)
		}
	}
}

func TestWorkloadLatencySummaries(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 20
	cfg.KeepLatencies = true
	r, err := RunWorkload(AlgFunnelTree, 8, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.AllSummary.Count != r.Inserts+r.Deletes {
		t.Fatalf("summary count %d, want %d", r.AllSummary.Count, r.Inserts+r.Deletes)
	}
	if r.AllSummary.P50 <= 0 || r.AllSummary.P99 < r.AllSummary.P50 {
		t.Fatalf("implausible summary: %+v", r.AllSummary)
	}
	if r.InsertSummary.Count != r.Inserts || r.DeleteSummary.Count != r.Deletes {
		t.Fatalf("split summaries wrong: %+v %+v", r.InsertSummary, r.DeleteSummary)
	}
	if diff := r.AllSummary.Mean - r.MeanAll; diff > 0.01 || diff < -0.01 {
		t.Fatalf("mean mismatch: %f vs %f", r.AllSummary.Mean, r.MeanAll)
	}
}
