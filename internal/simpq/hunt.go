package simpq

import (
	"fmt"
	"math/bits"

	"pq/internal/sim"
)

// Hunt is the concurrent heap of Hunt, Michael, Parthasarathy and Scott
// (IPL 1996): a single lock protects only the heap size; each node has its
// own lock and a tag (EMPTY, AVAILABLE, or the inserting processor's id).
// Insertions traverse bottom-up and are scattered across the last level by
// a bit-reversal scheme so consecutive insertions do not collide;
// deletions proceed top-down.
//
// One simplification relative to the original: when a deletion relocates
// an in-flight (pid-tagged) item, it adopts the item by marking it
// AVAILABLE, and a sift-down that meets an in-flight child stops and
// leaves the local reordering to that inserter's bubble-up. This keeps the
// multiset exact and the structure of lock traffic identical; under heavy
// races it can linger briefly with a local order violation the bubbling
// inserter then repairs.
type Hunt struct {
	npri  int
	lock  *MCSLock // protects size only
	size  sim.Addr
	nodes sim.Addr // 1-based, 3 words per node: tag, pri, val
	locks []TASLock
	cap   int
	slots int

	// trace, when non-nil, records structural transitions for debugging;
	// it costs no simulated cycles.
	trace *[]string

	// Host-side internals counters (no simulated cost).
	stats huntStats
}

// huntStats counts heap-restructuring work.
type huntStats struct {
	bubbleSteps int64 // node swaps during bottom-up insertion bubbling
	siftSteps   int64 // node swaps during top-down deletion sifting
	adoptions   int64 // in-flight items relocated and adopted by a deleter
	parentWaits int64 // bubbles parked behind another in-flight insertion
}

// Metrics reports heap-restructuring counters plus the size lock's
// acquire/wait/hold cycles (prefix "size_lock") — the serialization
// point the paper blames for this algorithm's scaling ceiling.
func (q *Hunt) Metrics() Metrics {
	m := Metrics{
		"bubble_steps": float64(q.stats.bubbleSteps),
		"sift_steps":   float64(q.stats.siftSteps),
		"adoptions":    float64(q.stats.adoptions),
		"parent_waits": float64(q.stats.parentWaits),
	}
	m.add("size_lock", q.lock.Metrics())
	return m
}

// Node tags. Values >= huntTagPid are processor ids + huntTagPid.
const (
	huntEmpty  = 0
	huntAvail  = 1
	huntTagPid = 2
)

const huntNodeWords = 3

// NewHunt builds the heap with room for maxItems elements. Node storage
// is rounded up to whole levels because bit-reversed slots can land
// anywhere within the last level.
func NewHunt(m *sim.Machine, npri, maxItems int) *Hunt {
	slots := ceilPow2(maxItems + 1)
	q := &Hunt{
		npri:  npri,
		lock:  NewMCSLock(m),
		size:  m.Alloc(1),
		nodes: m.Alloc(slots * huntNodeWords),
		locks: make([]TASLock, slots),
		cap:   maxItems,
		slots: slots,
	}
	for i := range q.locks {
		q.locks[i] = NewTASLock(m)
	}
	m.Label(q.size, 1, "hunt.size")
	m.Label(q.nodes, slots*huntNodeWords, "hunt.nodes")
	return q
}

// NumPriorities reports the fixed priority range.
func (q *Hunt) NumPriorities() int { return q.npri }

func (q *Hunt) tagAddr(i uint64) sim.Addr { return q.nodes + sim.Addr(i*huntNodeWords) }
func (q *Hunt) priAddr(i uint64) sim.Addr { return q.nodes + sim.Addr(i*huntNodeWords+1) }
func (q *Hunt) valAddr(i uint64) sim.Addr { return q.nodes + sim.Addr(i*huntNodeWords+2) }

// bitRevPos maps insertion count k (1-based) to its heap slot: within heap
// level L = floor(log2 k), the offset bits are reversed, so consecutive
// insertions land in different subtrees (Hunt et al.'s bit-reversal).
func bitRevPos(k uint64) uint64 {
	l := uint(bits.Len64(k)) - 1 // level
	offset := k - 1<<l
	return 1<<l + bits.Reverse64(offset)>>(64-l)
}

// Insert adds val at priority pri: a brief size-lock critical section to
// claim a slot, then a bottom-up bubble with per-node locks.
func (q *Hunt) Insert(p *sim.Proc, pri int, val uint64) {
	mypid := uint64(p.ID()) + huntTagPid

	q.lock.Acquire(p)
	n := p.Read(q.size) + 1
	if n > uint64(q.cap) {
		q.lock.Release(p) // full: drop, mirroring the paper's bins
		return
	}
	p.Write(q.size, n)
	i := bitRevPos(n)
	q.locks[i].Acquire(p)
	q.lock.Release(p)

	tag := mypid
	if i == 1 {
		tag = huntAvail // nothing to bubble
	}
	p.Write(q.priAddr(i), uint64(pri))
	p.Write(q.valAddr(i), val)
	p.Write(q.tagAddr(i), tag)
	q.locks[i].Release(p)

	// Bubble up while the item is still ours.
	for i > 1 {
		parent := i / 2
		q.locks[parent].Acquire(p)
		q.locks[i].Acquire(p)
		it := p.Read(q.tagAddr(i))
		if it != mypid {
			q.stats.adoptions++
			// A deletion relocated and adopted our item; it is placed.
			q.locks[i].Release(p)
			q.locks[parent].Release(p)
			return
		}
		pt := p.Read(q.tagAddr(parent))
		switch {
		case pt == huntAvail:
			ppri := p.Read(q.priAddr(parent))
			ipri := p.Read(q.priAddr(i))
			if ipri < ppri {
				q.stats.bubbleSteps++
				q.swapNodes(p, i, parent)
				q.locks[i].Release(p)
				q.locks[parent].Release(p)
				i = parent
			} else {
				p.Write(q.tagAddr(i), huntAvail)
				q.locks[i].Release(p)
				q.locks[parent].Release(p)
				return
			}
		case pt == huntEmpty:
			// Defensive: the heap shrank past our parent; our slot is
			// settled where it is.
			p.Write(q.tagAddr(i), huntAvail)
			q.locks[i].Release(p)
			q.locks[parent].Release(p)
			return
		default:
			// Parent is mid-insertion by someone else: release both locks
			// and spin on the parent's tag (locally cached) until that
			// insertion moves on, then retry. Polling with repeated
			// acquire/release pairs instead can starve the very inserter
			// being waited for.
			q.locks[i].Release(p)
			q.locks[parent].Release(p)
			q.stats.parentWaits++
			p.WaitWhile(q.tagAddr(parent), pt)
		}
	}
	if i == 1 {
		q.locks[1].Acquire(p)
		if p.Read(q.tagAddr(1)) == mypid {
			p.Write(q.tagAddr(1), huntAvail)
		}
		q.locks[1].Release(p)
	}
}

// swapNodes exchanges the full contents (tag, priority, value) of two
// locked nodes.
func (q *Hunt) swapNodes(p *sim.Proc, a, b uint64) {
	at, ap, av := p.Read(q.tagAddr(a)), p.Read(q.priAddr(a)), p.Read(q.valAddr(a))
	bt, bp, bv := p.Read(q.tagAddr(b)), p.Read(q.priAddr(b)), p.Read(q.valAddr(b))
	p.Write(q.tagAddr(a), bt)
	p.Write(q.priAddr(a), bp)
	p.Write(q.valAddr(a), bv)
	p.Write(q.tagAddr(b), at)
	p.Write(q.priAddr(b), ap)
	p.Write(q.valAddr(b), av)
}

// DeleteMin takes the root item, moves the most recently placed item into
// the root, and sifts it down with hand-over-hand node locks. The root
// item is taken even if it is still tagged by an in-flight inserter:
// anything at the root already out-bubbled its whole path, and the
// inserter's final root check tolerates finding its tag gone (the item
// was adopted). Waiting for the root to become AVAILABLE instead would
// let a deleter holding the size lock starve the very inserter it is
// waiting for.
func (q *Hunt) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.lock.Acquire(p)
	n := p.Read(q.size)
	if n == 0 {
		q.lock.Release(p)
		return 0, false
	}
	p.Write(q.size, n-1)
	last := bitRevPos(n)
	q.locks[1].Acquire(p)
	if last == 1 {
		q.lock.Release(p)
		out := p.Read(q.valAddr(1))
		p.Write(q.tagAddr(1), huntEmpty)
		q.locks[1].Release(p)
		return out, true
	}
	q.locks[last].Acquire(p)
	q.lock.Release(p)

	lpri := p.Read(q.priAddr(last))
	lval := p.Read(q.valAddr(last))
	p.Write(q.tagAddr(last), huntEmpty)
	q.locks[last].Release(p)

	if p.Read(q.tagAddr(1)) == huntEmpty {
		// Defensive: deleters are serialized on the size lock through root
		// acquisition, so the root cannot normally be empty here. If it
		// is, the last item itself is our result.
		q.locks[1].Release(p)
		return lval, true
	}
	out := p.Read(q.valAddr(1))
	// Adopt the moved item: even if it was mid-insertion, it is now placed
	// and AVAILABLE; its inserter will observe the changed tag and stop.
	p.Write(q.priAddr(1), lpri)
	p.Write(q.valAddr(1), lval)
	p.Write(q.tagAddr(1), huntAvail)

	// Sift down holding the current node's lock; lock children one at a
	// time in index order.
	i := uint64(1)
	for {
		l, r := 2*i, 2*i+1
		if l > uint64(q.slots-1) {
			break
		}
		q.locks[l].Acquire(p)
		var rLocked bool
		if r <= uint64(q.slots-1) {
			q.locks[r].Acquire(p)
			rLocked = true
		}
		lt := p.Read(q.tagAddr(l))
		rt := uint64(huntEmpty)
		if rLocked {
			rt = p.Read(q.tagAddr(r))
		}
		// A mid-insertion child blocks the sift; its owner's bubble-up
		// will finish the reordering against the item we just placed.
		if (lt != huntEmpty && lt != huntAvail) || (rt != huntEmpty && rt != huntAvail) {
			if rLocked {
				q.locks[r].Release(p)
			}
			q.locks[l].Release(p)
			break
		}
		child := uint64(0)
		var cpri uint64
		if lt == huntAvail {
			child, cpri = l, p.Read(q.priAddr(l))
		}
		if rt == huntAvail {
			if rp := p.Read(q.priAddr(r)); child == 0 || rp < cpri {
				child, cpri = r, rp
			}
		}
		if child == 0 || cpri >= p.Read(q.priAddr(i)) {
			if rLocked {
				q.locks[r].Release(p)
			}
			q.locks[l].Release(p)
			break
		}
		q.stats.siftSteps++
		q.swapNodes(p, i, child)
		// Release everything except the child we descend into.
		if rLocked && child != r {
			q.locks[r].Release(p)
		}
		if child != l {
			q.locks[l].Release(p)
		}
		q.locks[i].Release(p)
		i = child
	}
	q.locks[i].Release(p)
	return out, true
}

var _ Queue = (*Hunt)(nil)

// tracef appends a structural trace record when tracing is enabled.
func (q *Hunt) tracef(p *sim.Proc, format string, args ...any) {
	if q.trace == nil {
		return
	}
	*q.trace = append(*q.trace, fmt.Sprintf("t=%d p=%d ", p.Now(), p.ID())+fmt.Sprintf(format, args...))
}
