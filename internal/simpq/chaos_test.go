package simpq

import (
	"errors"
	"reflect"
	"testing"

	"pq/internal/order"
	"pq/internal/sim"
)

func chaosSimCfg(procs int) sim.Config {
	cfg := sim.DefaultConfig(procs)
	cfg.WatchdogCycles = 500_000
	return cfg
}

// TestChaosBitDeterminism is the acceptance check that chaos runs are
// pure functions of (FaultPlan, Seed): two runs of the same plan must
// agree on the final stats and on the history digest, and a different
// seed must not.
func TestChaosBitDeterminism(t *testing.T) {
	plan := &sim.FaultPlan{
		Stalls:   []sim.StallSpec{{Proc: sim.AllProcs, Gap: sim.Uniform(1_000, 4_000), Duration: sim.Pareto(100, 1.4)}},
		Crashes:  []sim.Crash{{Proc: 3, At: 9_000}},
		Degrades: []sim.Degrade{{Base: 0, Words: 1 << 20, From: 4_000, Until: 20_000, Factor: 4}},
	}
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 20
	run := func(alg Algorithm, seed int64) ChaosResult {
		simCfg := chaosSimCfg(16)
		simCfg.Seed = seed
		simCfg.Faults = plan
		r, err := ChaosWorkload(alg, 8, cfg, simCfg)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	for _, alg := range []Algorithm{AlgSimpleLinear, AlgFunnelTree} {
		a := run(alg, 1)
		b := run(alg, 1)
		if a.Digest != b.Digest {
			t.Fatalf("%s: history digests diverged: %#x vs %#x", alg, a.Digest, b.Digest)
		}
		if !reflect.DeepEqual(a.Latency.Stats, b.Latency.Stats) {
			t.Fatalf("%s: final stats diverged: %+v vs %+v", alg, a.Latency.Stats, b.Latency.Stats)
		}
		if a.Completed != b.Completed || len(a.History) != len(b.History) || len(a.Pending) != len(b.Pending) {
			t.Fatalf("%s: outcome diverged", alg)
		}
		if c := run(alg, 2); c.Digest == a.Digest {
			t.Fatalf("%s: different seed reproduced the same digest %#x", alg, a.Digest)
		}
	}
}

// TestChaosCrashSafetyForSurvivors drives every algorithm under a
// crash-stop plan and requires that the surviving processors' history
// stays safe: no uniqueness, precedence or well-formedness violation
// even with crashed operations treated as possibly linearized.
// (Priority/emptiness inversions are the semantic the quiescently
// consistent queues trade away; they are not failures here.)
func TestChaosCrashSafetyForSurvivors(t *testing.T) {
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Proc: 1, At: 3_000}, {Proc: 5, At: 11_000},
	}}
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 25
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			simCfg := chaosSimCfg(12)
			simCfg.Faults = plan
			r, err := ChaosWorkload(alg, 8, cfg, simCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Crashed) == 0 {
				t.Fatal("no processor crashed under a crash plan")
			}
			for _, v := range order.CheckTruncated(r.History, r.Pending) {
				if v.Rule == "uniqueness" || v.Rule == "precedence" || v.Rule == "well-formed" {
					t.Errorf("safety violation: %v", v)
				}
			}
			// Whatever the outcome, it must be one of the typed terminal
			// states, never a silent burn to the event limit.
			if r.RunErr != nil {
				var wd *sim.WatchdogError
				if !errors.Is(r.RunErr, sim.ErrDeadlock) && !errors.As(r.RunErr, &wd) {
					t.Errorf("unexpected terminal state: %v", r.RunErr)
				}
			}
		})
	}
}

// TestChaosCleanRunMatchesPlainWorkload sanity-checks the plumbing: with
// no faults, every processor completes and the history checker sees the
// same kind of history the plain workload produces.
func TestChaosCleanRunCompletes(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 20
	r, err := ChaosWorkload(AlgSingleLock, 8, cfg, chaosSimCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	if r.RunErr != nil {
		t.Fatalf("clean run errored: %v", r.RunErr)
	}
	if r.Completed != 8 || len(r.Pending) != 0 || len(r.Crashed) != 0 || len(r.Blocked) != 0 {
		t.Fatalf("clean run left debris: %+v", r)
	}
	if len(r.History) != 8*20 {
		t.Fatalf("history has %d ops, want %d", len(r.History), 8*20)
	}
	if vs := order.Check(r.History); len(vs) != 0 {
		t.Fatalf("clean SingleLock history flagged: %v", vs)
	}
}

// TestChaosOrphanedLockBlocksSurvivors pins down the classic failure
// mode: crash the single-lock holder and the survivors must end up
// parked on a lock word, reported as a deadlock with useful labels.
func TestChaosOrphanedLockBlocksSurvivors(t *testing.T) {
	// Crash several processors at staggered points mid-run; with a
	// single global MCS lock serializing every operation, some crash is
	// overwhelmingly likely to land inside a critical section.
	plan := &sim.FaultPlan{Crashes: []sim.Crash{
		{Proc: 0, At: 2_000}, {Proc: 1, At: 2_500}, {Proc: 2, At: 3_000}, {Proc: 3, At: 3_500},
	}}
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 40
	simCfg := chaosSimCfg(8)
	simCfg.Faults = plan
	r, err := ChaosWorkload(AlgSingleLock, 8, cfg, simCfg)
	if err != nil {
		t.Fatal(err)
	}
	var wd *sim.WatchdogError
	if !errors.Is(r.RunErr, sim.ErrDeadlock) && !errors.As(r.RunErr, &wd) {
		t.Fatalf("expected deadlock or watchdog after crashing lock holders, got %v (completed %d)", r.RunErr, r.Completed)
	}
	if errors.Is(r.RunErr, sim.ErrDeadlock) && len(r.Blocked) == 0 {
		t.Fatal("deadlocked run reported no blocked processors")
	}
	for _, v := range order.CheckTruncated(r.History, r.Pending) {
		if v.Rule == "uniqueness" || v.Rule == "precedence" || v.Rule == "well-formed" {
			t.Errorf("safety violation: %v", v)
		}
	}
}

func TestWorkloadConfigValidation(t *testing.T) {
	bad := []WorkloadConfig{
		{OpsPerProc: 0, InsertFraction: 0.5},
		{OpsPerProc: 10, LocalWork: -1, InsertFraction: 0.5},
		{OpsPerProc: 10, InsertFraction: -0.1},
		{OpsPerProc: 10, InsertFraction: 1.5},
		{OpsPerProc: 10, InsertFraction: 0.5, Prefill: -1},
		{OpsPerProc: 10, InsertFraction: 0.5, StallEvery: -2},
		{OpsPerProc: 10, InsertFraction: 0.5, StallCycles: -5},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v: expected validation error", cfg)
		}
		if _, err := RunWorkload(AlgSimpleLinear, 4, 8, cfg); err == nil {
			t.Errorf("RunWorkload accepted %+v", cfg)
		}
	}
	if err := DefaultWorkload().Validate(); err != nil {
		t.Fatalf("default workload invalid: %v", err)
	}
	// Zero priorities must error up front, not panic mid-run.
	if _, err := RunWorkload(AlgSimpleLinear, 4, 0, DefaultWorkload()); err == nil {
		t.Error("zero priorities accepted")
	}
	if _, err := ChaosWorkload(AlgSimpleLinear, 0, DefaultWorkload(), sim.DefaultConfig(4)); err == nil {
		t.Error("ChaosWorkload accepted zero priorities")
	}
	if _, err := ChaosWorkload("NoSuchQueue", 8, DefaultWorkload(), sim.DefaultConfig(4)); err == nil {
		t.Error("ChaosWorkload accepted unknown algorithm")
	}
}
