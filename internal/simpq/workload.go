package simpq

import (
	"fmt"

	"pq/internal/sim"
	"pq/internal/stats"
)

// WorkloadConfig describes the paper's synthetic benchmark: processors
// alternate between a small constant amount of local work and a queue
// access, choosing insert or delete-min by an unbiased coin flip; the
// queue starts empty; latency is the average number of cycles per access.
type WorkloadConfig struct {
	// OpsPerProc is the number of queue accesses each processor performs.
	OpsPerProc int
	// LocalWork is the cycles of private work between accesses.
	LocalWork int64
	// InsertFraction is the probability an access is an insert (the paper
	// uses an unbiased coin, 0.5).
	InsertFraction float64
	// Prefill inserts this many items (spread across processors) before
	// measurement begins. The paper's experiments use 0.
	Prefill int
	// Seed overrides the machine seed when nonzero.
	Seed int64
	// KeepLatencies records every operation's latency so Result carries
	// full distributions, not just means.
	KeepLatencies bool
	// StallEvery injects a StallCycles-long stall into each processor
	// every StallEvery operations (0 disables) — a model of preemption or
	// page faults, used to probe how sensitive each algorithm is to
	// stragglers. Stalls happen mid-protocol: the stalled processor picks
	// a random point inside its next queue operation... approximated here
	// by stalling immediately before the operation, which still leaves
	// the processor holding no locks but absent from combining.
	StallEvery int
	// StallCycles is the stall length (default 10x RemoteCost when
	// StallEvery is set).
	StallCycles int64
	// Batch sets the operations per queue access: each of the OpsPerProc
	// accesses becomes one InsertBatch/DeleteMinBatch call of this many
	// elements (0 and 1 both mean plain single operations). Latency
	// samples and the Inserts/Deletes totals count individual elements,
	// so results stay comparable across batch sizes.
	Batch int
}

// DefaultWorkload returns the configuration used for the paper's queue
// experiments.
func DefaultWorkload() WorkloadConfig {
	return WorkloadConfig{OpsPerProc: 60, LocalWork: 50, InsertFraction: 0.5}
}

// Validate rejects configurations that would otherwise produce a silent
// no-op or a mid-run panic: chaos sweeps that compute a bad parameter
// should fail loudly and up front.
func (cfg WorkloadConfig) Validate() error {
	switch {
	case cfg.OpsPerProc < 1:
		return fmt.Errorf("simpq: OpsPerProc must be >= 1, got %d (a zero-op workload measures nothing)", cfg.OpsPerProc)
	case cfg.LocalWork < 0:
		return fmt.Errorf("simpq: LocalWork must be >= 0, got %d", cfg.LocalWork)
	case cfg.InsertFraction < 0 || cfg.InsertFraction > 1:
		return fmt.Errorf("simpq: InsertFraction must be in [0,1], got %g", cfg.InsertFraction)
	case cfg.Prefill < 0:
		return fmt.Errorf("simpq: Prefill must be >= 0, got %d", cfg.Prefill)
	case cfg.StallEvery < 0:
		return fmt.Errorf("simpq: StallEvery must be >= 0, got %d (use 0 to disable stalls)", cfg.StallEvery)
	case cfg.StallCycles < 0:
		return fmt.Errorf("simpq: StallCycles must be >= 0, got %d (use 0 for the default stall length)", cfg.StallCycles)
	case cfg.Batch < 0:
		return fmt.Errorf("simpq: Batch must be >= 0, got %d (use 0 or 1 for single operations)", cfg.Batch)
	case cfg.Batch > 1024:
		return fmt.Errorf("simpq: Batch must be <= 1024, got %d", cfg.Batch)
	}
	return nil
}

// knownAlgorithm reports whether alg is buildable — one of the paper's
// seven or a registered relaxed algorithm.
func knownAlgorithm(alg Algorithm) bool {
	for _, a := range All() {
		if a == alg {
			return true
		}
	}
	return false
}

// Result aggregates a workload run.
type Result struct {
	// MeanAll, MeanInsert and MeanDelete are average latencies in cycles.
	MeanAll, MeanInsert, MeanDelete float64
	// Inserts and Deletes count completed operations; FailedDeletes are
	// delete-min calls that found the queue (apparently) empty.
	Inserts, Deletes, FailedDeletes int
	// Stats carries the simulator's run summary.
	Stats sim.Stats
	// AllSummary, InsertSummary and DeleteSummary are full latency
	// distributions, populated when WorkloadConfig.KeepLatencies is set.
	AllSummary, InsertSummary, DeleteSummary stats.Summary
	// InsertHist and DeleteHist are per-operation latency histograms over
	// DefaultLatencyBounds, populated when KeepLatencies is set.
	InsertHist, DeleteHist *stats.Histogram
	// Internals carries the queue's mechanism counters (combines,
	// eliminations, lock waits, scan lengths...) when it implements
	// MetricsSource; nil otherwise.
	Internals Metrics
}

// DefaultLatencyBounds returns the exponential bucket bounds (in cycles)
// used for per-operation latency histograms: 100, 200, 400, ... 409600.
// An MCS handoff costs a few remote accesses (~hundreds of cycles), so
// the range spans "uncontended" to "convoyed behind hundreds of peers".
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 13)
	b := 100.0
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// barrier is a sense-free arrival barrier on simulated memory for the
// prefill/measure phase split.
type barrier struct {
	count sim.Addr
	procs uint64
}

func newBarrier(m *sim.Machine) *barrier {
	b := &barrier{count: m.Alloc(1), procs: uint64(m.Procs())}
	m.Label(b.count, 1, "workload.barrier")
	return b
}

func (b *barrier) wait(p *sim.Proc, phase uint64) {
	target := phase * b.procs
	p.FetchAdd(b.count, 1)
	for {
		v := p.Read(b.count)
		if v >= target {
			return
		}
		if w := p.WaitWhile(b.count, v); w >= target {
			return
		}
	}
}

// RunWorkload builds the named queue on a fresh machine and drives the
// paper's benchmark on every processor.
func RunWorkload(alg Algorithm, procs, npri int, cfg WorkloadConfig) (Result, error) {
	r, _, err := ProfiledWorkload(alg, procs, npri, cfg, 0)
	return r, err
}

// ProfiledWorkload is RunWorkload with the simulator's contention
// profiler enabled when topN > 0; it returns the topN hottest words.
func ProfiledWorkload(alg Algorithm, procs, npri int, cfg WorkloadConfig, topN int) (Result, []sim.HotSpot, error) {
	simCfg := sim.DefaultConfig(procs)
	simCfg.Profile = topN > 0
	return WorkloadOnMachine(alg, npri, cfg, simCfg, topN)
}

// WorkloadOnMachine runs the benchmark with a fully custom machine
// configuration — the entry point for cost-model sensitivity studies.
func WorkloadOnMachine(alg Algorithm, npri int, cfg WorkloadConfig, simCfg sim.Config, topN int) (Result, []sim.HotSpot, error) {
	if !knownAlgorithm(alg) {
		return Result{}, nil, fmt.Errorf("simpq: unknown algorithm %q", alg)
	}
	if npri < 1 {
		return Result{}, nil, fmt.Errorf("simpq: priorities must be >= 1, got %d", npri)
	}
	procs := simCfg.Procs
	if cfg.Seed != 0 {
		simCfg.Seed = cfg.Seed
	}
	m, err := sim.New(simCfg)
	if err != nil {
		return Result{}, nil, err
	}
	maxItems := procs*cfg.OpsPerProc + cfg.Prefill + 1
	if cfg.Batch > 1 {
		maxItems = procs*cfg.OpsPerProc*cfg.Batch + cfg.Prefill + 1
	}
	q := Build(alg, m, npri, maxItems)
	r, err := DriveWorkload(m, q, cfg)
	if err != nil {
		return Result{}, nil, err
	}
	return r, m.HotSpots(topN), nil
}

// DriveWorkload runs the benchmark against an already built queue. It is
// split from RunWorkload so harness code can drive custom configurations
// (ablations, different funnel parameters).
func DriveWorkload(m *sim.Machine, q Queue, cfg WorkloadConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	procs := m.Procs()
	npri := q.NumPriorities()
	bar := newBarrier(m)
	type procTally struct {
		insertCycles, deleteCycles int64
		inserts, deletes, failed   int
		insLat, delLat             []float64
	}
	tallies := make([]procTally, procs)

	simStats, err := m.Run(func(p *sim.Proc) {
		id := p.ID()
		// Prefill phase (unmeasured), spread across processors.
		share := cfg.Prefill / procs
		if id < cfg.Prefill%procs {
			share++
		}
		for i := 0; i < share; i++ {
			q.Insert(p, p.Rand(npri), uint64(id)<<32|uint64(i)|1<<60)
		}
		bar.wait(p, 1)

		t := &tallies[id]
		stall := cfg.StallCycles
		if cfg.StallEvery > 0 && stall == 0 {
			stall = 10 * sim.DefaultRemoteCost
		}
		batch := cfg.Batch
		if batch < 1 {
			batch = 1
		}
		var items []BatchItem
		for i := 0; i < cfg.OpsPerProc; i++ {
			p.LocalWork(cfg.LocalWork)
			if cfg.StallEvery > 0 && (i+id)%cfg.StallEvery == cfg.StallEvery-1 {
				p.LocalWork(stall)
			}
			start := p.Now()
			if float64(p.Rand(1<<16))/(1<<16) < cfg.InsertFraction {
				if batch == 1 {
					q.Insert(p, p.Rand(npri), uint64(id)<<32|uint64(i))
				} else {
					items = items[:0]
					for j := 0; j < batch; j++ {
						items = append(items, BatchItem{
							Pri: p.Rand(npri),
							Val: uint64(id)<<32 | uint64(i*batch+j),
						})
					}
					InsertBatch(p, q, items)
				}
				p.OpSpan("insert", start)
				lat := p.Now() - start
				t.insertCycles += lat
				t.inserts += batch
				if cfg.KeepLatencies {
					per := float64(lat) / float64(batch)
					for j := 0; j < batch; j++ {
						t.insLat = append(t.insLat, per)
					}
				}
			} else {
				failed := 0
				if batch == 1 {
					if _, ok := q.DeleteMin(p); !ok {
						failed = 1
					}
				} else {
					failed = batch - len(DeleteMinBatch(p, q, batch))
				}
				p.OpSpan("deletemin", start)
				lat := p.Now() - start
				t.deleteCycles += lat
				t.deletes += batch
				t.failed += failed
				if cfg.KeepLatencies {
					per := float64(lat) / float64(batch)
					for j := 0; j < batch; j++ {
						t.delLat = append(t.delLat, per)
					}
				}
			}
			p.OpDone()
		}
	})
	if err != nil {
		return Result{}, err
	}

	var r Result
	var insCycles, delCycles int64
	for i := range tallies {
		t := &tallies[i]
		insCycles += t.insertCycles
		delCycles += t.deleteCycles
		r.Inserts += t.inserts
		r.Deletes += t.deletes
		r.FailedDeletes += t.failed
	}
	if r.Inserts > 0 {
		r.MeanInsert = float64(insCycles) / float64(r.Inserts)
	}
	if r.Deletes > 0 {
		r.MeanDelete = float64(delCycles) / float64(r.Deletes)
	}
	if n := r.Inserts + r.Deletes; n > 0 {
		r.MeanAll = float64(insCycles+delCycles) / float64(n)
	}
	if cfg.KeepLatencies {
		var ins, del, all []float64
		for i := range tallies {
			ins = append(ins, tallies[i].insLat...)
			del = append(del, tallies[i].delLat...)
		}
		all = append(append(all, ins...), del...)
		r.InsertSummary = stats.Summarize(ins)
		r.DeleteSummary = stats.Summarize(del)
		r.AllSummary = stats.Summarize(all)
		r.InsertHist = stats.NewHistogram(DefaultLatencyBounds()...)
		r.DeleteHist = stats.NewHistogram(DefaultLatencyBounds()...)
		for _, v := range ins {
			r.InsertHist.Observe(v)
		}
		for _, v := range del {
			r.DeleteHist.Observe(v)
		}
	}
	r.Stats = simStats
	r.Internals = MetricsOf(q)
	return r, nil
}

// CounterWorkload drives Figure 5's counter benchmark: every processor
// performs ops operations on one shared funnel counter, each a decrement
// with probability decFraction and an increment otherwise. When bounded is
// false the counter is the plain combining-funnel fetch-and-add baseline.
func CounterWorkload(procs int, ops int, decFraction float64, bounded bool, localWork int64) (Result, error) {
	simCfg := sim.DefaultConfig(procs)
	m, err := sim.New(simCfg)
	if err != nil {
		return Result{}, err
	}
	c := NewFunnelCounter(m, DefaultFunnelParams(procs), bounded, 0)
	// Start high enough that a bounded counter under a decrement-heavy
	// mix does not sit pinned at the bound.
	m.SetWord(c.main, uint64(procs*ops))

	cycles := make([]int64, procs)
	counts := make([]int, procs)
	simStats, err := m.Run(func(p *sim.Proc) {
		id := p.ID()
		for i := 0; i < ops; i++ {
			p.LocalWork(localWork)
			start := p.Now()
			if float64(p.Rand(1<<16))/(1<<16) < decFraction {
				c.BFaD(p)
			} else {
				c.FaI(p)
			}
			cycles[id] += p.Now() - start
			counts[id]++
		}
	})
	if err != nil {
		return Result{}, err
	}
	var total int64
	var n int
	for i := range cycles {
		total += cycles[i]
		n += counts[i]
	}
	return Result{MeanAll: float64(total) / float64(n), Stats: simStats}, nil
}

// SojournResult reports how long delivered items sat in the queue —
// the fairness measure behind the paper's Section 3.2 stack-vs-FIFO
// discussion (LIFO bins can starve old items of equal priority).
type SojournResult struct {
	// Latency is the usual access-latency result.
	Latency Result
	// Sojourn summarizes (delete time - insert time) over delivered
	// items, in cycles.
	Sojourn stats.Summary
}

// SojournWorkload drives the standard benchmark against q, stamping each
// inserted value with its insertion cycle so deletions can measure how
// long items waited.
func SojournWorkload(m *sim.Machine, q Queue, cfg WorkloadConfig) (SojournResult, error) {
	if err := cfg.Validate(); err != nil {
		return SojournResult{}, err
	}
	procs := m.Procs()
	npri := q.NumPriorities()
	bar := newBarrier(m)
	sojourns := make([][]float64, procs)
	type tally struct {
		cycles            int64
		ins, dels, failed int
	}
	tallies := make([]tally, procs)

	simStats, err := m.Run(func(p *sim.Proc) {
		id := p.ID()
		bar.wait(p, 1)
		t := &tallies[id]
		stall := cfg.StallCycles
		if cfg.StallEvery > 0 && stall == 0 {
			stall = 10 * sim.DefaultRemoteCost
		}
		for i := 0; i < cfg.OpsPerProc; i++ {
			p.LocalWork(cfg.LocalWork)
			if cfg.StallEvery > 0 && (i+id)%cfg.StallEvery == cfg.StallEvery-1 {
				p.LocalWork(stall)
			}
			start := p.Now()
			if float64(p.Rand(1<<16))/(1<<16) < cfg.InsertFraction {
				q.Insert(p, p.Rand(npri), uint64(start))
				t.ins++
			} else {
				v, ok := q.DeleteMin(p)
				t.dels++
				if ok {
					sojourns[id] = append(sojourns[id], float64(p.Now()-int64(v)))
				} else {
					t.failed++
				}
			}
			t.cycles += p.Now() - start
		}
	})
	if err != nil {
		return SojournResult{}, err
	}
	var r SojournResult
	var all []float64
	for i := range tallies {
		r.Latency.Inserts += tallies[i].ins
		r.Latency.Deletes += tallies[i].dels
		r.Latency.FailedDeletes += tallies[i].failed
		all = append(all, sojourns[i]...)
	}
	var cyc int64
	for i := range tallies {
		cyc += tallies[i].cycles
	}
	if n := r.Latency.Inserts + r.Latency.Deletes; n > 0 {
		r.Latency.MeanAll = float64(cyc) / float64(n)
	}
	r.Latency.Stats = simStats
	r.Sojourn = stats.Summarize(all)
	return r, nil
}
