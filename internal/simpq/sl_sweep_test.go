package simpq

import (
	"testing"

	"pq/internal/sim"
)

// TestSkipListWorkloadSweep is a regression test for an unthread/thread
// race: unthread used to read the unlinked node's forward pointer without
// holding the node's lock, so a concurrent threader linking a new node
// behind it could have its node spliced out of a level — leaving
// "threaded" links unreachable and live-locking later operations. The
// original failure reproduced deterministically at 8 processors with 59
// operations each; the sweep covers the surrounding configurations with a
// tight event budget so any recurrence fails fast.
func TestSkipListWorkloadSweep(t *testing.T) {
	for _, procs := range []int{2, 4, 6, 8, 10, 12, 14, 16} {
		cfg := sim.DefaultConfig(procs)
		cfg.MaxEvents = 30_000_000
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		q := NewSkipList(m, 16, procs*59+1)
		wl := WorkloadConfig{OpsPerProc: 59, LocalWork: 50, InsertFraction: 0.5}
		r, err := DriveWorkload(m, q, wl)
		if err != nil {
			t.Errorf("procs=%d: %v", procs, err)
			for _, pk := range m.ParkedProcs() {
				t.Logf("  parked proc=%d addr=%d while=%d val=%d label=%s",
					pk.Proc, pk.Addr, pk.While, m.Word(pk.Addr), m.LabelFor(pk.Addr))
			}
			continue
		}
		if r.MeanAll <= 0 {
			t.Errorf("procs=%d: no latency measured", procs)
		}
	}
}
