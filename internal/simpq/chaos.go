package simpq

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"pq/internal/order"
	"pq/internal/sim"
)

// This file is the chaos-harness plumbing: it drives the paper's
// workload under a sim.FaultPlan while recording a complete operation
// history (including operations left in flight by crashes or aborts), so
// the order checker can prove safety for the surviving processors and
// the harness can classify each algorithm's failure mode.

// ChaosVal encodes (priority, processor, sequence) into a queue value so
// a recorded history can recover the priority of any returned item.
func ChaosVal(pri, proc, seq int) uint64 {
	return uint64(pri)<<40 | uint64(proc)<<24 | uint64(seq) | 1<<55
}

// ChaosPri recovers the priority encoded by ChaosVal.
func ChaosPri(v uint64) int { return int(v>>40) & 0x7fff }

// BlockedProc describes where one processor was stuck when a chaos run
// ended without completing.
type BlockedProc struct {
	Proc int
	// Addr is the word the processor was parked on; Label its profiling
	// label ("" if unlabeled).
	Addr  sim.Addr
	Label string
}

// ChaosResult is the outcome of one chaos run. RunErr distinguishes the
// terminal states: nil (every surviving processor finished its ops),
// sim.ErrDeadlock (all survivors parked forever), a *sim.WatchdogError
// (survivors active but completing nothing), or sim.ErrEventLimit.
type ChaosResult struct {
	// Latency aggregates completed operations (meaningful mainly for
	// runs that finish).
	Latency Result
	// History holds every completed operation with exact cycle
	// timestamps, in per-processor program order.
	History []order.Op
	// Pending holds the operations in flight when the run ended —
	// possibly linearized; feed them to order.CheckTruncated.
	Pending []order.PendingOp
	// RunErr is the simulator's terminal state (see type comment).
	RunErr error
	// Completed counts processors that finished all their operations;
	// Crashed lists processors crash-stopped by the fault plan.
	Completed int
	Crashed   []int
	// Blocked lists surviving processors left parked in WaitWhile, with
	// the label of the word they were stuck on — the raw material for
	// failure-mode classification.
	Blocked []BlockedProc
	// Digest is an FNV-1a hash of the full history and pending set;
	// equal configurations must reproduce it bit-for-bit.
	Digest uint64
}

// chaosPending is one processor's in-flight operation slot.
type chaosPending struct {
	active bool
	kind   order.Kind
	pri    int
	val    uint64
	start  int64
}

// ChaosWorkload drives the standard mixed workload for alg under the
// fault plan (and watchdog) carried by simCfg, recording the operation
// history. Unlike DriveWorkload it uses no start barrier — a processor
// crashing before a barrier would hang every other processor for
// reasons that have nothing to do with the algorithm under test — so
// prefill inserts simply race with the measured mix.
func ChaosWorkload(alg Algorithm, npri int, cfg WorkloadConfig, simCfg sim.Config) (ChaosResult, error) {
	if !knownAlgorithm(alg) {
		return ChaosResult{}, fmt.Errorf("simpq: unknown algorithm %q", alg)
	}
	if err := cfg.Validate(); err != nil {
		return ChaosResult{}, err
	}
	if npri < 1 {
		return ChaosResult{}, fmt.Errorf("simpq: priorities must be >= 1, got %d", npri)
	}
	if cfg.Seed != 0 {
		simCfg.Seed = cfg.Seed
	}
	m, err := sim.New(simCfg)
	if err != nil {
		return ChaosResult{}, err
	}
	procs := m.Procs()
	maxItems := procs*cfg.OpsPerProc + cfg.Prefill + 1
	q := Build(alg, m, npri, maxItems)

	histories := make([][]order.Op, procs)
	pendings := make([]chaosPending, procs)
	completed := make([]bool, procs)
	type tally struct {
		insCycles, delCycles int64
		ins, dels, failed    int
	}
	tallies := make([]tally, procs)

	simStats, runErr := m.Run(func(p *sim.Proc) {
		id := p.ID()
		t := &tallies[id]
		pend := &pendings[id]
		seq := 0

		record := func(op order.Op) {
			histories[id] = append(histories[id], op)
			pend.active = false
			p.OpDone()
		}
		insert := func(pri int) {
			v := ChaosVal(pri, id, seq)
			seq++
			start := p.Now()
			*pend = chaosPending{active: true, kind: order.Insert, pri: pri, val: v, start: start}
			q.Insert(p, pri, v)
			t.ins++
			t.insCycles += p.Now() - start
			record(order.Op{Kind: order.Insert, Pri: pri, Val: v, OK: true, Start: start, End: p.Now()})
		}

		share := cfg.Prefill / procs
		if id < cfg.Prefill%procs {
			share++
		}
		for i := 0; i < share; i++ {
			insert(p.Rand(npri))
		}

		stall := cfg.StallCycles
		if cfg.StallEvery > 0 && stall == 0 {
			stall = 10 * sim.DefaultRemoteCost
		}
		for i := 0; i < cfg.OpsPerProc; i++ {
			p.LocalWork(cfg.LocalWork)
			if cfg.StallEvery > 0 && (i+id)%cfg.StallEvery == cfg.StallEvery-1 {
				p.LocalWork(stall)
			}
			if float64(p.Rand(1<<16))/(1<<16) < cfg.InsertFraction {
				insert(p.Rand(npri))
			} else {
				start := p.Now()
				*pend = chaosPending{active: true, kind: order.DeleteMin, start: start}
				v, ok := q.DeleteMin(p)
				t.dels++
				t.delCycles += p.Now() - start
				op := order.Op{Kind: order.DeleteMin, OK: ok, Start: start, End: p.Now()}
				if ok {
					op.Pri, op.Val = ChaosPri(v), v
				} else {
					t.failed++
				}
				record(op)
			}
		}
		completed[id] = true
	})

	r := ChaosResult{RunErr: runErr, Crashed: m.CrashedProcs()}
	crashed := make(map[int]bool, len(r.Crashed))
	for _, c := range r.Crashed {
		crashed[c] = true
	}
	for id := 0; id < procs; id++ {
		r.History = append(r.History, histories[id]...)
		if completed[id] {
			r.Completed++
		} else if pendings[id].active {
			pd := pendings[id]
			r.Pending = append(r.Pending, order.PendingOp{
				Kind: pd.kind, Pri: pd.pri, Val: pd.val, Start: pd.start,
			})
		}
	}
	for _, pk := range m.ParkedProcs() {
		if crashed[pk.Proc] {
			continue
		}
		r.Blocked = append(r.Blocked, BlockedProc{
			Proc: pk.Proc, Addr: pk.Addr, Label: m.LabelFor(pk.Addr),
		})
	}

	var insC, delC int64
	for i := range tallies {
		insC += tallies[i].insCycles
		delC += tallies[i].delCycles
		r.Latency.Inserts += tallies[i].ins
		r.Latency.Deletes += tallies[i].dels
		r.Latency.FailedDeletes += tallies[i].failed
	}
	if r.Latency.Inserts > 0 {
		r.Latency.MeanInsert = float64(insC) / float64(r.Latency.Inserts)
	}
	if r.Latency.Deletes > 0 {
		r.Latency.MeanDelete = float64(delC) / float64(r.Latency.Deletes)
	}
	if n := r.Latency.Inserts + r.Latency.Deletes; n > 0 {
		r.Latency.MeanAll = float64(insC+delC) / float64(n)
	}
	r.Latency.Stats = simStats
	r.Digest = chaosDigest(r.History, r.Pending)
	return r, nil
}

// chaosDigest hashes a history (and pending set) into one word; bitwise
// reproducibility of a chaos run is asserted by comparing digests.
func chaosDigest(history []order.Op, pending []order.PendingOp) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	for _, op := range history {
		w(uint64(op.Kind))
		w(uint64(int64(op.Pri)))
		w(op.Val)
		if op.OK {
			w(1)
		} else {
			w(0)
		}
		w(uint64(op.Start))
		w(uint64(op.End))
	}
	w(0xfeed_face_dead_beef)
	for _, po := range pending {
		w(uint64(po.Kind))
		w(uint64(int64(po.Pri)))
		w(po.Val)
		w(uint64(po.Start))
	}
	return h.Sum64()
}
