package simpq

import "pq/internal/sim"

// SimpleTree is the paper's Figure 3 queue: a complete binary tree with
// one bin per leaf (priority) and a shared counter in each internal node
// counting the items in the node's left subtree. delete-min descends from
// the root using bounded fetch-and-decrement; insert places the item in
// its leaf bin first and then ascends, incrementing the counter of every
// ancestor it reaches from the left.
//
// The priority range is rounded up to a power of two; surplus leaves are
// simply never used.
type SimpleTree struct {
	npri     int
	nleaves  int
	counters []*Counter // 1-based: counters[1] is the root, len = nleaves
	bins     []*Bin     // one per leaf

	// Host-side internals counters (no simulated cost).
	descents   int64 // DeleteMin root-to-leaf traversals
	rightTurns int64 // descent steps that found a zero counter (went right)
	increments int64 // counter increments performed by inserts
}

// NewSimpleTree builds the tree queue with npri priorities and per-bin
// capacity maxItems.
func NewSimpleTree(m *sim.Machine, npri, maxItems int) *SimpleTree {
	nl := ceilPow2(npri)
	q := &SimpleTree{
		npri:     npri,
		nleaves:  nl,
		counters: make([]*Counter, nl),
		bins:     make([]*Bin, nl),
	}
	for i := 1; i < nl; i++ {
		q.counters[i] = NewCounter(m)
	}
	for i := 0; i < nl; i++ {
		q.bins[i] = NewBin(m, maxItems)
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *SimpleTree) NumPriorities() int { return q.npri }

// Metrics reports counter-traversal counts plus the summed counter and
// bin lock cycles (prefixes "counter_lock", "bin_lock") — root-counter
// serialization is the mechanism the funnel tree removes.
func (q *SimpleTree) Metrics() Metrics {
	m := Metrics{
		"descents":    float64(q.descents),
		"right_turns": float64(q.rightTurns),
		"increments":  float64(q.increments),
	}
	if q.descents > 0 {
		// Every descent traverses log2(nleaves) counters by construction.
		m["counter_traversals"] = float64(q.descents) * float64(treeDepth(q.nleaves))
	}
	for _, c := range q.counters[1:] {
		m.addSum("counter", c.Metrics())
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	return m
}

// treeDepth returns log2 of a power of two.
func treeDepth(n int) int {
	d := 0
	for n > 1 {
		n /= 2
		d++
	}
	return d
}

// Insert adds val at priority pri: bin first, then bottom-up counter
// increments (top-down insertion would race deletions, as the paper
// notes).
func (q *SimpleTree) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Insert(p, val)
	// Tree nodes are numbered heap-style: leaf pri is node nleaves+pri.
	n := q.nleaves + pri
	for n > 1 {
		parent := n / 2
		if n == 2*parent { // ascending from the left child
			q.increments++
			q.counters[parent].FaI(p)
		}
		n = parent
	}
}

// DeleteMin descends from the root: a successful bounded decrement means
// an item is reserved in the left subtree; otherwise go right.
func (q *SimpleTree) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.descents++
	n := 1
	for n < q.nleaves {
		if q.counters[n].BFaD(p, 0) > 0 {
			n = 2 * n
		} else {
			q.rightTurns++
			n = 2*n + 1
		}
	}
	return q.bins[n-q.nleaves].Delete(p)
}

var _ Queue = (*SimpleTree)(nil)

// ceilPow2 returns the smallest power of two >= n (and at least 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
