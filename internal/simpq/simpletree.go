package simpq

import (
	"sort"

	"pq/internal/sim"
)

// SimpleTree is the paper's Figure 3 queue: a complete binary tree with
// one bin per leaf (priority) and a shared counter in each internal node
// counting the items in the node's left subtree. delete-min descends from
// the root using bounded fetch-and-decrement; insert places the item in
// its leaf bin first and then ascends, incrementing the counter of every
// ancestor it reaches from the left.
//
// The priority range is rounded up to a power of two; surplus leaves are
// simply never used.
type SimpleTree struct {
	npri     int
	nleaves  int
	counters []*Counter // 1-based: counters[1] is the root, len = nleaves
	bins     []*Bin     // one per leaf

	// Host-side internals counters (no simulated cost).
	descents     int64 // DeleteMin root-to-leaf traversals
	rightTurns   int64 // descent steps that found a zero counter (went right)
	increments   int64 // counter increments performed by inserts
	batchInserts int64 // InsertBatch calls
	batchDeletes int64 // DeleteMinBatch calls
}

// NewSimpleTree builds the tree queue with npri priorities and per-bin
// capacity maxItems.
func NewSimpleTree(m *sim.Machine, npri, maxItems int) *SimpleTree {
	nl := ceilPow2(npri)
	q := &SimpleTree{
		npri:     npri,
		nleaves:  nl,
		counters: make([]*Counter, nl),
		bins:     make([]*Bin, nl),
	}
	for i := 1; i < nl; i++ {
		q.counters[i] = NewCounter(m)
	}
	for i := 0; i < nl; i++ {
		q.bins[i] = NewBin(m, maxItems)
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *SimpleTree) NumPriorities() int { return q.npri }

// Metrics reports counter-traversal counts plus the summed counter and
// bin lock cycles (prefixes "counter_lock", "bin_lock") — root-counter
// serialization is the mechanism the funnel tree removes.
func (q *SimpleTree) Metrics() Metrics {
	m := Metrics{
		"descents":      float64(q.descents),
		"right_turns":   float64(q.rightTurns),
		"increments":    float64(q.increments),
		"batch_inserts": float64(q.batchInserts),
		"batch_deletes": float64(q.batchDeletes),
	}
	if q.descents > 0 {
		// Every descent traverses log2(nleaves) counters by construction.
		m["counter_traversals"] = float64(q.descents) * float64(treeDepth(q.nleaves))
	}
	for _, c := range q.counters[1:] {
		m.addSum("counter", c.Metrics())
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	return m
}

// treeDepth returns log2 of a power of two.
func treeDepth(n int) int {
	d := 0
	for n > 1 {
		n /= 2
		d++
	}
	return d
}

// Insert adds val at priority pri: bin first, then bottom-up counter
// increments (top-down insertion would race deletions, as the paper
// notes).
func (q *SimpleTree) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Insert(p, val)
	// Tree nodes are numbered heap-style: leaf pri is node nleaves+pri.
	n := q.nleaves + pri
	for n > 1 {
		parent := n / 2
		if n == 2*parent { // ascending from the left child
			q.increments++
			q.counters[parent].FaI(p)
		}
		n = parent
	}
}

// DeleteMin descends from the root: a successful bounded decrement means
// an item is reserved in the left subtree; otherwise go right.
func (q *SimpleTree) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.descents++
	n := 1
	for n < q.nleaves {
		if q.counters[n].BFaD(p, 0) > 0 {
			n = 2 * n
		} else {
			q.rightTurns++
			n = 2*n + 1
		}
	}
	return q.bins[n-q.nleaves].Delete(p)
}

// InsertBatch fills every leaf bin first (one lock hold per distinct
// priority), then applies the aggregated counter increments bottom-up —
// deepest nodes first, so every counter reservation a concurrent
// descent wins is already backed by the counters and bins below it,
// exactly as single inserts guarantee by ascending.
func (q *SimpleTree) InsertBatch(p *sim.Proc, items []BatchItem) {
	if len(items) == 0 {
		return
	}
	q.batchInserts++
	runs := batchRuns(items)
	incs := make(map[int]uint64)
	for _, run := range runs {
		q.bins[run.pri].InsertN(p, run.vals)
		n := q.nleaves + run.pri
		for n > 1 {
			parent := n / 2
			if n == 2*parent {
				incs[parent] += uint64(len(run.vals))
			}
			n = parent
		}
	}
	nodes := make([]int, 0, len(incs))
	for n := range incs {
		nodes = append(nodes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(nodes)))
	for _, n := range nodes {
		q.increments += int64(incs[n])
		q.counters[n].AddN(p, incs[n])
	}
}

// DeleteMinBatch reserves up to k items in one root-to-leaf pass using
// multi-unit bounded decrements: each counter yields min(want, value)
// to the left subtree and the remainder is sought on the right.
func (q *SimpleTree) DeleteMinBatch(p *sim.Proc, k int) []BatchItem {
	if k < 1 {
		return nil
	}
	q.batchDeletes++
	q.descents++
	var out []BatchItem
	q.takeBatch(p, 1, k, &out)
	return out
}

// takeBatch collects up to want items from the subtree rooted at n,
// reporting how many it delivered.
func (q *SimpleTree) takeBatch(p *sim.Proc, n, want int, out *[]BatchItem) int {
	if want <= 0 {
		return 0
	}
	if n >= q.nleaves {
		pri := n - q.nleaves
		vals := q.bins[pri].DeleteN(p, want)
		for _, v := range vals {
			*out = append(*out, BatchItem{Pri: pri, Val: v})
		}
		return len(vals)
	}
	left := uint64(want)
	if prev := q.counters[n].BSubN(p, left, 0); prev < left {
		left = prev
	}
	got := 0
	if left > 0 {
		got = q.takeBatch(p, 2*n, int(left), out)
	} else {
		q.rightTurns++
	}
	if got < want {
		got += q.takeBatch(p, 2*n+1, want-got, out)
	}
	return got
}

var (
	_ Queue      = (*SimpleTree)(nil)
	_ BatchQueue = (*SimpleTree)(nil)
)

// ceilPow2 returns the smallest power of two >= n (and at least 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
