package simpq

import "pq/internal/sim"

// MQParams tunes the simulated MultiQueue.
type MQParams struct {
	// C is the over-provisioning factor: the queue keeps C × procs
	// sub-heaps. Zero selects 2, the Williams & Sanders default.
	C int
	// Sticky reuses each processor's random sub-heap choices for this
	// many consecutive operations before re-rolling (0 disables).
	Sticky int
	// PopBatch refills a per-processor deletion buffer of this size from
	// one locked sub-heap on DeleteMin (0 or 1 disables buffering).
	PopBatch int
}

// DefaultMQParams is the Williams & Sanders baseline: C=2, no
// stickiness, no buffering.
func DefaultMQParams() MQParams { return MQParams{C: 2} }

// MultiQueue is the relaxed queue of Williams & Sanders on the simulated
// machine: C·p sequential array heaps in shared memory, each under a
// test-and-set lock, with a per-heap top-priority cache word. Insert
// pushes to a random (or sticky) heap; DeleteMin reads the top words of
// two random heaps and pops the better one. Locks are only ever
// TryAcquired — contention re-rolls instead of spinning — so the queue
// has no combining structure and no convoy, at the price of bounded
// rank error on every pop.
//
// Rank accounting mirrors the queue contents host-side: the engine runs
// operations one memory request at a time under a single baton, so the
// mirror is exact, and each pop's rank error (items of strictly smaller
// priority present at pop time) costs zero simulated cycles to compute.
type MultiQueue struct {
	npri     int
	nq       int
	capQ     int
	sticky   int
	popBatch int

	locks []TASLock
	tops  sim.Addr // per-heap cached top priority; npri means empty
	sizes sim.Addr // per-heap element count
	pris  sim.Addr // nq × (capQ+1) 1-based heap arrays
	vals  sim.Addr

	// Host-side per-processor state: sticky choices and deletion
	// buffers. Buffers model processor-private memory, so they cost no
	// shared-memory traffic; their contents stay visible to the
	// emptiness scan below.
	stick []mqStick
	bufs  [][]BatchItem

	// Host-side rank accounting and internals counters.
	present    []int64
	rankCounts []int64
	pops       int64
	rankSum    int64
	rankMax    int64

	picks       int64 // two-choice samplings
	ties        int64 // samplings whose two tops were equal
	emptyProbes int64 // locked heaps that turned out empty (or fruitless scans)
	lockRetries int64 // TryAcquire failures
	fullScans   int64 // slow-path sweeps after two empty tops
	stickyHits  int64 // operations served by a still-sticky choice
	overflows   int64 // inserts dropped because a sub-heap was full

	batchInserts int64
	batchDeletes int64
}

type mqStick struct {
	left int
	ins  int
	a, b int
}

// NewMultiQueue builds a MultiQueue with npri priorities and total
// capacity maxItems spread over the sub-heaps (each heap gets slack
// above the uniform share because random placement is not perfectly
// balanced; an insert into a full heap is dropped like the paper's
// bins, counted in multiqueue.overflow_drops).
func NewMultiQueue(m *sim.Machine, npri, maxItems int, prm MQParams) *MultiQueue {
	c := prm.C
	if c <= 0 {
		c = 2
	}
	nq := c * m.Procs()
	if nq < 2 {
		nq = 2
	}
	capQ := maxItems
	if nq > 1 {
		capQ = 4*maxItems/nq + 64
		if capQ > maxItems {
			capQ = maxItems
		}
	}
	q := &MultiQueue{
		npri:     npri,
		nq:       nq,
		capQ:     capQ,
		sticky:   prm.Sticky,
		popBatch: prm.PopBatch,
		locks:    make([]TASLock, nq),
		tops:     m.Alloc(nq),
		sizes:    m.Alloc(nq),
		pris:     m.Alloc(nq * (capQ + 1)),
		vals:     m.Alloc(nq * (capQ + 1)),
		stick:    make([]mqStick, m.Procs()),
		bufs:     make([][]BatchItem, m.Procs()),
		present:  make([]int64, npri),
	}
	for i := range q.locks {
		q.locks[i] = NewTASLock(m)
	}
	m.Label(q.tops, nq, "multiqueue.tops")
	m.Label(q.sizes, nq, "multiqueue.sizes")
	m.Label(q.pris, nq*(capQ+1), "multiqueue.heaps")
	m.Label(q.vals, nq*(capQ+1), "multiqueue.heaps")
	for h := 0; h < nq; h++ {
		m.SetWord(q.tops+sim.Addr(h), q.mqEmpty())
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *MultiQueue) NumPriorities() int { return q.npri }

// mqEmpty is the top-cache sentinel for an empty heap. Heaps start
// zeroed, so the sentinel must be written on first use; topOf treats a
// zero-size heap as empty regardless of its top word.
func (q *MultiQueue) mqEmpty() uint64 { return uint64(q.npri) }

func (q *MultiQueue) heapPri(p *sim.Proc, h int, i uint64) uint64 {
	return p.Read(q.pris + sim.Addr(h*(q.capQ+1)) + sim.Addr(i))
}
func (q *MultiQueue) heapVal(p *sim.Proc, h int, i uint64) uint64 {
	return p.Read(q.vals + sim.Addr(h*(q.capQ+1)) + sim.Addr(i))
}
func (q *MultiQueue) heapSet(p *sim.Proc, h int, i, pr, v uint64) {
	p.Write(q.pris+sim.Addr(h*(q.capQ+1))+sim.Addr(i), pr)
	p.Write(q.vals+sim.Addr(h*(q.capQ+1))+sim.Addr(i), v)
}

// pushLocked inserts into heap h (lock held) and republishes its top.
func (q *MultiQueue) pushLocked(p *sim.Proc, h, pri int, val uint64) bool {
	n := p.Read(q.sizes + sim.Addr(h))
	if n >= uint64(q.capQ) {
		q.overflows++
		return false
	}
	n++
	p.Write(q.sizes+sim.Addr(h), n)
	i, pr := n, uint64(pri)
	for i > 1 {
		parent := i / 2
		ppri := q.heapPri(p, h, parent)
		if ppri <= pr {
			break
		}
		q.heapSet(p, h, i, ppri, q.heapVal(p, h, parent))
		i = parent
	}
	q.heapSet(p, h, i, pr, val)
	p.Write(q.tops+sim.Addr(h), q.heapPri(p, h, 1))
	q.present[pri]++
	return true
}

// popLocked removes heap h's root (lock held) and republishes its top.
func (q *MultiQueue) popLocked(p *sim.Proc, h int) (int, uint64, bool) {
	n := p.Read(q.sizes + sim.Addr(h))
	if n == 0 {
		p.Write(q.tops+sim.Addr(h), q.mqEmpty())
		return 0, 0, false
	}
	outPri, out := q.heapPri(p, h, 1), q.heapVal(p, h, 1)
	lastPri, lastVal := q.heapPri(p, h, n), q.heapVal(p, h, n)
	p.Write(q.sizes+sim.Addr(h), n-1)
	n--
	if n > 0 {
		i := uint64(1)
		for {
			l, r := 2*i, 2*i+1
			if l > n {
				break
			}
			child, cpri := l, q.heapPri(p, h, l)
			if r <= n {
				if rp := q.heapPri(p, h, r); rp < cpri {
					child, cpri = r, rp
				}
			}
			if cpri >= lastPri {
				break
			}
			q.heapSet(p, h, i, cpri, q.heapVal(p, h, child))
			i = child
		}
		q.heapSet(p, h, i, lastPri, lastVal)
		p.Write(q.tops+sim.Addr(h), q.heapPri(p, h, 1))
	} else {
		p.Write(q.tops+sim.Addr(h), q.mqEmpty())
	}
	q.notePop(int(outPri))
	return int(outPri), out, true
}

// notePop records one pop's exact rank error from the host-side mirror.
func (q *MultiQueue) notePop(pri int) {
	rank := int64(0)
	for i := 0; i < pri; i++ {
		rank += q.present[i]
	}
	q.present[pri]--
	q.pops++
	q.rankSum += rank
	if rank > q.rankMax {
		q.rankMax = rank
	}
	for int64(len(q.rankCounts)) <= rank {
		q.rankCounts = append(q.rankCounts, 0)
	}
	q.rankCounts[rank]++
}

// pickInsert returns the insertion heap, honouring stickiness.
func (q *MultiQueue) pickInsert(p *sim.Proc) int {
	if q.sticky <= 0 {
		return p.Rand(q.nq)
	}
	st := &q.stick[p.ID()]
	if st.left <= 0 {
		q.reroll(p, st)
	} else {
		q.stickyHits++
	}
	return st.ins
}

// pickTwo returns two distinct deletion candidates, honouring
// stickiness.
func (q *MultiQueue) pickTwo(p *sim.Proc) (int, int) {
	q.picks++
	if q.sticky <= 0 {
		return q.rollPair(p)
	}
	st := &q.stick[p.ID()]
	if st.left <= 0 {
		q.reroll(p, st)
	} else {
		q.stickyHits++
	}
	return st.a, st.b
}

func (q *MultiQueue) rollPair(p *sim.Proc) (int, int) {
	a := p.Rand(q.nq)
	b := a
	if q.nq > 1 {
		b = (a + 1 + p.Rand(q.nq-1)) % q.nq
	}
	return a, b
}

func (q *MultiQueue) reroll(p *sim.Proc, st *mqStick) {
	st.ins = p.Rand(q.nq)
	st.a, st.b = q.rollPair(p)
	st.left = q.sticky
}

// breakStick forces a re-roll after lock contention on a sticky choice.
func (q *MultiQueue) breakStick(p *sim.Proc) {
	if q.sticky > 0 {
		q.stick[p.ID()].left = 0
	}
}

func (q *MultiQueue) useStick(p *sim.Proc) {
	if q.sticky > 0 {
		q.stick[p.ID()].left--
	}
}

// Insert adds val at priority pri to a random (or sticky) sub-heap,
// re-rolling on lock contention instead of waiting.
func (q *MultiQueue) Insert(p *sim.Proc, pri int, val uint64) {
	for {
		h := q.pickInsert(p)
		if !q.locks[h].TryAcquire(p) {
			q.lockRetries++
			q.breakStick(p)
			continue
		}
		q.pushLocked(p, h, pri, val)
		q.locks[h].Release(p)
		q.useStick(p)
		return
	}
}

// DeleteMin serves the processor's deletion buffer if non-empty, else
// pops the better of two random tops (refilling the buffer when
// PopBatch is set). A false return means a full scan found every heap
// empty and every buffer empty.
func (q *MultiQueue) DeleteMin(p *sim.Proc) (uint64, bool) {
	buf := &q.bufs[p.ID()]
	if len(*buf) > 0 {
		it := (*buf)[0]
		*buf = (*buf)[1:]
		return it.Val, true
	}
	want := 1
	if q.popBatch > 1 {
		want = q.popBatch
	}
	items, ok := q.popSome(p, want)
	if !ok {
		return 0, false
	}
	if len(items) > 1 {
		*buf = append(*buf, items[1:]...)
	}
	return items[0].Val, true
}

// popSome pops up to k items from one sub-heap chosen by the two-choice
// rule. ok=false means the queue is empty per a clean full scan.
func (q *MultiQueue) popSome(p *sim.Proc, k int) ([]BatchItem, bool) {
	for {
		a, b := q.pickTwo(p)
		ta := p.Read(q.tops + sim.Addr(a))
		tb := p.Read(q.tops + sim.Addr(b))
		if ta == tb {
			q.ties++
		}
		if ta >= q.mqEmpty() && tb >= q.mqEmpty() {
			return q.popScan(p, k)
		}
		best := a
		if tb < ta {
			best = b
		}
		if !q.locks[best].TryAcquire(p) {
			q.lockRetries++
			q.breakStick(p)
			continue
		}
		var out []BatchItem
		for len(out) < k {
			pri, val, ok := q.popLocked(p, best)
			if !ok {
				break
			}
			out = append(out, BatchItem{Pri: pri, Val: val})
		}
		q.locks[best].Release(p)
		if len(out) > 0 {
			q.useStick(p)
			return out, true
		}
		q.emptyProbes++
		q.breakStick(p)
	}
}

// popScan is the emptiness slow path: drain any processor's deletion
// buffer, then sweep every heap, skipping empty tops and retrying while
// any non-empty heap was lock-busy. The all-empty verdict is sound
// because an item never migrates between heaps and pushLocked publishes
// the new top before its insert completes.
func (q *MultiQueue) popScan(p *sim.Proc, k int) ([]BatchItem, bool) {
	q.fullScans++
	for {
		for id := range q.bufs {
			buf := &q.bufs[id]
			if len(*buf) == 0 {
				continue
			}
			n := k
			if n > len(*buf) {
				n = len(*buf)
			}
			out := append([]BatchItem(nil), (*buf)[:n]...)
			*buf = (*buf)[n:]
			return out, true
		}
		busy := false
		for h := 0; h < q.nq; h++ {
			if p.Read(q.tops+sim.Addr(h)) >= q.mqEmpty() {
				continue
			}
			if !q.locks[h].TryAcquire(p) {
				busy = true
				q.lockRetries++
				continue
			}
			var out []BatchItem
			for len(out) < k {
				pri, val, ok := q.popLocked(p, h)
				if !ok {
					break
				}
				out = append(out, BatchItem{Pri: pri, Val: val})
			}
			q.locks[h].Release(p)
			if len(out) > 0 {
				return out, true
			}
		}
		if !busy {
			q.emptyProbes++
			return nil, false
		}
	}
}

// InsertBatch pushes the whole batch into one sub-heap under one lock
// hold — the insertion-buffering path.
func (q *MultiQueue) InsertBatch(p *sim.Proc, items []BatchItem) {
	if len(items) == 0 {
		return
	}
	q.batchInserts++
	for {
		h := q.pickInsert(p)
		if !q.locks[h].TryAcquire(p) {
			q.lockRetries++
			q.breakStick(p)
			continue
		}
		for _, it := range items {
			q.pushLocked(p, h, it.Pri, it.Val)
		}
		q.locks[h].Release(p)
		q.useStick(p)
		return
	}
}

// DeleteMinBatch serves the deletion buffer, then takes two-choice
// rounds until k items are out or a full scan proves the queue empty.
func (q *MultiQueue) DeleteMinBatch(p *sim.Proc, k int) []BatchItem {
	if k < 1 {
		return nil
	}
	q.batchDeletes++
	var out []BatchItem
	buf := &q.bufs[p.ID()]
	for len(*buf) > 0 && len(out) < k {
		out = append(out, (*buf)[0])
		*buf = (*buf)[1:]
	}
	for len(out) < k {
		items, ok := q.popSome(p, k-len(out))
		if !ok {
			break
		}
		out = append(out, items...)
	}
	return out
}

// quantileFromCounts returns the smallest rank r with cumulative count
// >= p·total.
func quantileFromCounts(counts []int64, total int64, p float64) float64 {
	if total == 0 {
		return 0
	}
	need := int64(p * float64(total))
	if need < 1 {
		need = 1
	}
	var cum int64
	for r, c := range counts {
		cum += c
		if cum >= need {
			return float64(r)
		}
	}
	return float64(len(counts) - 1)
}

// Metrics reports the MultiQueue internals: the two-choice accounting
// the issue asks for (queue picks, ties, empty-probe retries) plus lock
// contention, scan, stickiness and overflow counters and the exact
// rank-error distribution.
func (q *MultiQueue) Metrics() Metrics {
	m := Metrics{
		"multiqueue.queues":              float64(q.nq),
		"multiqueue.queue_picks":         float64(q.picks),
		"multiqueue.ties":                float64(q.ties),
		"multiqueue.empty_probe_retries": float64(q.emptyProbes),
		"multiqueue.lock_retries":        float64(q.lockRetries),
		"multiqueue.full_scans":          float64(q.fullScans),
		"multiqueue.sticky_hits":         float64(q.stickyHits),
		"multiqueue.overflow_drops":      float64(q.overflows),
		"multiqueue.rank_pops":           float64(q.pops),
		"multiqueue.rank_max":            float64(q.rankMax),
		"batch_inserts":                  float64(q.batchInserts),
		"batch_deletes":                  float64(q.batchDeletes),
	}
	if q.pops > 0 {
		m["multiqueue.rank_mean"] = float64(q.rankSum) / float64(q.pops)
		m["multiqueue.rank_p50"] = quantileFromCounts(q.rankCounts, q.pops, 0.5)
		m["multiqueue.rank_p99"] = quantileFromCounts(q.rankCounts, q.pops, 0.99)
	} else {
		m["multiqueue.rank_mean"] = 0
		m["multiqueue.rank_p50"] = 0
		m["multiqueue.rank_p99"] = 0
	}
	return m
}

var (
	_ Queue         = (*MultiQueue)(nil)
	_ BatchQueue    = (*MultiQueue)(nil)
	_ MetricsSource = (*MultiQueue)(nil)
)
