package simpq

import (
	"sort"
	"testing"

	"pq/internal/sim"
)

func TestSingleLockHeapOrder(t *testing.T) {
	var q *SingleLock
	var got []int
	runOn(t, 1,
		func(m *sim.Machine) { q = NewSingleLock(m, 64, 128) },
		func(p *sim.Proc) {
			pris := []int{33, 7, 0, 63, 7, 12, 1, 42, 0, 33, 33}
			for i, pr := range pris {
				q.Insert(p, pr, uint64(pr)<<8|uint64(i))
			}
			for {
				v, ok := q.DeleteMin(p)
				if !ok {
					break
				}
				got = append(got, int(v>>8))
			}
		})
	if !sort.IntsAreSorted(got) {
		t.Fatalf("heap drain not sorted: %v", got)
	}
	if len(got) != 11 {
		t.Fatalf("drained %d, want 11", len(got))
	}
}

func TestSingleLockCapacityDrop(t *testing.T) {
	var q *SingleLock
	var drained int
	runOn(t, 1,
		func(m *sim.Machine) { q = NewSingleLock(m, 8, 3) },
		func(p *sim.Proc) {
			for i := 0; i < 5; i++ {
				q.Insert(p, i%8, uint64(i)+1)
			}
			for {
				if _, ok := q.DeleteMin(p); !ok {
					break
				}
				drained++
			}
		})
	if drained != 3 {
		t.Fatalf("drained %d, want capacity 3", drained)
	}
}

func TestSingleLockConcurrentMultiset(t *testing.T) {
	const procs = 8
	const perProc = 30
	var q *SingleLock
	var bar *barrier
	removed := make([][]uint64, procs)
	var drained []uint64
	runOn(t, procs,
		func(m *sim.Machine) {
			q = NewSingleLock(m, 16, procs*perProc+1)
			bar = newBarrier(m)
		},
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				if p.Rand(2) == 0 {
					q.Insert(p, p.Rand(16), encVal(0, id, i))
				} else if v, ok := q.DeleteMin(p); ok {
					removed[id] = append(removed[id], v)
				}
			}
			bar.wait(p, 1)
			if id == 0 {
				for {
					v, ok := q.DeleteMin(p)
					if !ok {
						break
					}
					drained = append(drained, v)
				}
			}
		})
	seen := map[uint64]int{}
	for _, vs := range removed {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range drained {
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x delivered %d times", v, n)
		}
	}
}

func TestBitRevPosSim(t *testing.T) {
	// Same properties as the native copy: per-level bijection and
	// heap-closed slot sets for every size.
	for level := uint(0); level < 9; level++ {
		lo := uint64(1) << level
		seen := map[uint64]bool{}
		for k := lo; k < lo*2; k++ {
			pos := bitRevPos(k)
			if pos < lo || pos >= lo*2 {
				t.Fatalf("bitRevPos(%d) = %d outside level", k, pos)
			}
			if seen[pos] {
				t.Fatalf("collision at %d", pos)
			}
			seen[pos] = true
		}
	}
	for n := uint64(1); n <= 512; n++ {
		occupied := map[uint64]bool{1: true}
		for k := uint64(1); k <= n; k++ {
			occupied[bitRevPos(k)] = true
		}
		for k := uint64(1); k <= n; k++ {
			if pos := bitRevPos(k); pos > 1 && !occupied[pos/2] {
				t.Fatalf("n=%d: slot %d's parent unoccupied", n, pos)
			}
		}
	}
}
