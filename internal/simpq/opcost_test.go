package simpq

import (
	"testing"

	"pq/internal/sim"
)

// countOps runs program on one processor while counting serviced memory
// operations by kind (LocalWork excluded).
func countOps(t *testing.T, setup func(m *sim.Machine), program func(p *sim.Proc, counting func(bool))) map[sim.TraceOp]int {
	t.Helper()
	counts := map[sim.TraceOp]int{}
	counting := false
	cfg := sim.DefaultConfig(1)
	cfg.Trace = func(e sim.TraceEvent) {
		if counting && e.Op != sim.TraceLocalWork {
			counts[e.Op]++
		}
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	setup(m)
	if _, err := m.Run(func(p *sim.Proc) {
		program(p, func(on bool) { counting = on })
	}); err != nil {
		t.Fatal(err)
	}
	return counts
}

// TestEmptinessIsOneRead pins the property the paper stresses for
// LinearFunnels: "testing for emptiness is much faster (requires only
// one read) than actually going through the funnel".
func TestEmptinessIsOneRead(t *testing.T) {
	var s *FunnelStack
	counts := countOps(t,
		func(m *sim.Machine) { s = NewFunnelStack(m, testParams(), 8) },
		func(p *sim.Proc, counting func(bool)) {
			s.Push(p, 7) // outside the counted window
			counting(true)
			s.Empty(p)
			counting(false)
		})
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 1 || counts[sim.TraceRead] != 1 {
		t.Fatalf("Empty() cost %v, want exactly one read", counts)
	}
}

// TestBinEmptinessIsOneRead pins the same property for the lock-based
// bins of Figure 1 (bin-empty reads b.size without the lock).
func TestBinEmptinessIsOneRead(t *testing.T) {
	var b *Bin
	counts := countOps(t,
		func(m *sim.Machine) { b = NewBin(m, 8) },
		func(p *sim.Proc, counting func(bool)) {
			b.Insert(p, 1)
			counting(true)
			b.Empty(p)
			counting(false)
		})
	if counts[sim.TraceRead] != 1 || len(counts) != 1 {
		t.Fatalf("bin Empty() cost %v, want exactly one read", counts)
	}
}

// TestSimpleLinearDeleteScanCost pins the delete-min scan structure: a
// delete on a queue whose only item sits in the last bin must read every
// bin's size once (N reads) before paying for one bin lock.
func TestSimpleLinearDeleteScanCost(t *testing.T) {
	const npri = 8
	var q *SimpleLinear
	counts := countOps(t,
		func(m *sim.Machine) { q = NewSimpleLinear(m, npri, 8) },
		func(p *sim.Proc, counting func(bool)) {
			q.Insert(p, npri-1, 42)
			counting(true)
			if _, ok := q.DeleteMin(p); !ok {
				t.Error("delete failed")
			}
			counting(false)
		})
	// npri size reads for the scan, plus the locked bin-delete (reads of
	// size and the element, lock words, writes).
	if counts[sim.TraceRead] < npri {
		t.Fatalf("delete scanned %d reads, want >= %d", counts[sim.TraceRead], npri)
	}
	if counts[sim.TraceSwap] != 1 {
		t.Fatalf("delete took %d lock swaps, want exactly 1 (only the last bin)", counts[sim.TraceSwap])
	}
}

// TestSimpleTreeInsertCounterCost pins Figure 3's structure: inserting at
// the leftmost leaf increments a counter at every level (log2 N
// fetch-and-increments, each one lock acquire).
func TestSimpleTreeInsertCounterCost(t *testing.T) {
	const npri = 8 // 3 levels
	var q *SimpleTree
	counts := countOps(t,
		func(m *sim.Machine) { q = NewSimpleTree(m, npri, 8) },
		func(p *sim.Proc, counting func(bool)) {
			counting(true)
			q.Insert(p, 0, 42) // leftmost: increments all 3 ancestors
			counting(false)
		})
	// Each counter op is one MCS acquire = one swap; plus the bin's MCS.
	if counts[sim.TraceSwap] != 4 {
		t.Fatalf("leftmost insert took %d lock swaps, want 4 (bin + 3 counters)", counts[sim.TraceSwap])
	}
}

// TestRightmostInsertTouchesNoCounters pins the complementary property:
// the rightmost leaf is a right child at every level, so its inserts
// increment nothing.
func TestRightmostInsertTouchesNoCounters(t *testing.T) {
	const npri = 8
	var q *SimpleTree
	counts := countOps(t,
		func(m *sim.Machine) { q = NewSimpleTree(m, npri, 8) },
		func(p *sim.Proc, counting func(bool)) {
			counting(true)
			q.Insert(p, npri-1, 42)
			counting(false)
		})
	if counts[sim.TraceSwap] != 1 {
		t.Fatalf("rightmost insert took %d lock swaps, want 1 (bin only)", counts[sim.TraceSwap])
	}
}
