package simpq

import (
	"testing"

	"pq/internal/order"
	"pq/internal/sim"
)

// TestMultiQueueSequential drives the simulated MultiQueue on one
// processor: conservation is exact, emptiness is exact (the full scan),
// and the rank accounting must match a naive host-side model.
func TestMultiQueueSequential(t *testing.T) {
	const npri = 8
	runOnOne(t,
		func(m *sim.Machine) Queue { return NewMultiQueue(m, npri, 256, DefaultMQParams()) },
		func(p *sim.Proc, q Queue) {
			if _, ok := q.DeleteMin(p); ok {
				t.Error("empty queue returned an item")
			}
			seen := map[uint64]bool{}
			n := 0
			for i := 0; i < 60; i++ {
				pri := (i * 7) % npri
				q.Insert(p, pri, encVal(pri, 0, i))
				n++
				if i%3 == 2 {
					v, ok := q.DeleteMin(p)
					if !ok {
						t.Fatalf("op %d: queue claims empty with %d items", i, n)
					}
					if seen[v] {
						t.Fatalf("value %#x returned twice", v)
					}
					seen[v] = true
					n--
				}
			}
			for ; n > 0; n-- {
				v, ok := q.DeleteMin(p)
				if !ok {
					t.Fatalf("drain: queue claims empty with %d items left", n)
				}
				if seen[v] {
					t.Fatalf("value %#x returned twice", v)
				}
				seen[v] = true
			}
			if _, ok := q.DeleteMin(p); ok {
				t.Error("drained queue returned an item")
			}
		})
}

// TestMultiQueueRelaxedOrderOnSimulator runs the simulated MultiQueue
// concurrently with exact cycle timestamps: the relaxed checker must
// pass with a generous rank budget, the strict safety rules must hold
// unconditionally, and the internals counters must reflect the run.
func TestMultiQueueRelaxedOrderOnSimulator(t *testing.T) {
	const (
		procs   = 16
		perProc = 30
		npri    = 8
	)
	for _, prm := range []MQParams{
		{C: 2},
		{C: 4, Sticky: 4, PopBatch: 3},
	} {
		var q *MultiQueue
		histories := make([][]order.Op, procs)
		runOn(t, procs,
			func(m *sim.Machine) { q = NewMultiQueue(m, npri, procs*perProc+1, prm) },
			func(p *sim.Proc) {
				id := p.ID()
				for i := 0; i < perProc; i++ {
					p.LocalWork(int64(p.Rand(60)))
					if p.Rand(2) == 0 || i < 2 {
						pri := p.Rand(npri)
						v := encVal(pri, id, i)
						start := p.Now()
						q.Insert(p, pri, v)
						histories[id] = append(histories[id], order.Op{
							Kind: order.Insert, Pri: pri, Val: v, OK: true,
							Start: start, End: p.Now(),
						})
					} else {
						start := p.Now()
						v, ok := q.DeleteMin(p)
						op := order.Op{Kind: order.DeleteMin, OK: ok, Start: start, End: p.Now()}
						if ok {
							op.Pri, op.Val = decPri(v), v
						}
						histories[id] = append(histories[id], op)
					}
				}
			})
		var all []order.Op
		for _, h := range histories {
			all = append(all, h...)
		}
		// Buffered pops linger in processor-private buffers, during which
		// better items can drain ahead of them; the budget covers the
		// whp rank bound plus that buffering slack.
		budget := 64 * q.nq * (prm.PopBatch + 1)
		if vs := order.CheckRelaxed(all, order.RelaxedBound{MaxRank: budget}); len(vs) != 0 {
			t.Fatalf("%+v: relaxed checker: %d violations, first: %v", prm, len(vs), vs[0])
		}
		m := q.Metrics()
		if m["multiqueue.queue_picks"] == 0 {
			t.Fatalf("%+v: no queue picks recorded: %v", prm, m)
		}
		if m["multiqueue.rank_pops"] == 0 {
			t.Fatalf("%+v: no rank accounting: %v", prm, m)
		}
		if prm.Sticky > 0 && m["multiqueue.sticky_hits"] == 0 {
			t.Fatalf("%+v: stickiness never engaged: %v", prm, m)
		}
	}
}

// TestMultiQueueBatchOnSimulator checks the batch fast paths and that a
// full drain recovers buffered items exactly once.
func TestMultiQueueBatchOnSimulator(t *testing.T) {
	const npri = 4
	runOnOne(t,
		func(m *sim.Machine) Queue { return NewMultiQueue(m, npri, 128, MQParams{C: 2, PopBatch: 4}) },
		func(p *sim.Proc, q Queue) {
			bq := q.(BatchQueue)
			var items []BatchItem
			for i := 0; i < 20; i++ {
				pri := i % npri
				items = append(items, BatchItem{Pri: pri, Val: encVal(pri, 1, i)})
			}
			bq.InsertBatch(p, items)
			// One DeleteMin parks up to 3 items in the processor buffer.
			if _, ok := q.DeleteMin(p); !ok {
				t.Fatal("DeleteMin failed on a full queue")
			}
			got := bq.DeleteMinBatch(p, 64)
			if len(got) != 19 {
				t.Fatalf("drain returned %d items, want 19", len(got))
			}
			seen := map[uint64]bool{}
			for _, it := range got {
				if it.Pri != decPri(it.Val) {
					t.Fatalf("item %+v has wrong priority", it)
				}
				if seen[it.Val] {
					t.Fatalf("value %#x returned twice", it.Val)
				}
				seen[it.Val] = true
			}
			if got := bq.DeleteMinBatch(p, 4); len(got) != 0 {
				t.Fatalf("empty queue batch returned %d items", len(got))
			}
		})
}

// TestMultiQueueWorkload smoke-tests the full workload harness path
// (Build, knownAlgorithm, metrics plumbing) for the relaxed algorithm.
func TestMultiQueueWorkload(t *testing.T) {
	res, err := RunWorkload(AlgMultiQueue, 8, 16, WorkloadConfig{
		OpsPerProc: 50, InsertFraction: 0.5, Prefill: 32, LocalWork: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserts == 0 || res.Deletes == 0 {
		t.Fatalf("workload did nothing: %+v", res)
	}
	if res.Internals["multiqueue.queue_picks"] == 0 {
		t.Fatalf("internals missing queue picks: %v", res.Internals)
	}
	if _, ok := res.Internals["multiqueue.rank_p99"]; !ok {
		t.Fatalf("internals missing rank distribution: %v", res.Internals)
	}
}
