package simpq

import (
	"testing"

	"pq/internal/sim"
)

// TestHuntLivelockDiagnostic reproduces the concurrent mixed workload with
// a low event budget and dumps heap state if the simulation livelocks.
func TestHuntLivelockDiagnostic(t *testing.T) {
	cfg := sim.DefaultConfig(16)
	cfg.MaxEvents = 3_000_000
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const perProc = 20
	q := NewHunt(m, 8, 16*perProc+1)
	bar := newBarrier(m)
	_, err = m.Run(func(p *sim.Proc) {
		id := p.ID()
		for i := 0; i < perProc; i++ {
			if p.Rand(2) == 0 {
				q.Insert(p, p.Rand(8), encVal(p.Rand(8), id, i))
			} else {
				q.DeleteMin(p)
			}
		}
		bar.wait(p, 1)
		if id == 0 {
			for {
				if _, ok := q.DeleteMin(p); !ok {
					break
				}
			}
		}
	})
	if err != nil {
		size := m.Word(q.size)
		t.Logf("err=%v size=%d", err, size)
		for i := 1; i < q.slots; i++ {
			tag := m.Word(q.tagAddr(uint64(i)))
			lockWord := m.Word(q.locks[i].word)
			if tag != huntEmpty || lockWord != 0 {
				t.Logf("node %3d: tag=%d lock=%d pri=%d", i, tag, lockWord, m.Word(q.priAddr(uint64(i))))
			}
		}
		t.Fatalf("livelocked: %v", err)
	}
}
