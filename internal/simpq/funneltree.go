package simpq

import (
	"sort"

	"pq/internal/sim"
)

// DefaultFunnelCutoff is the number of tree levels (from the root) whose
// counters use combining funnels in FunnelTree; deeper counters see far
// less traffic and use plain lock-based counters, exactly as the paper
// does ("only for counters at the top four levels of the tree").
const DefaultFunnelCutoff = 4

// treeCounter abstracts the two counter kinds FunnelTree mixes.
type treeCounter interface {
	FaI(p *sim.Proc) uint64
	BFaD(p *sim.Proc) uint64
	AddN(p *sim.Proc, n int64) uint64
	BSubN(p *sim.Proc, n int64) uint64
}

// simpleTreeCounter adapts the lock-based Counter (bound fixed at 0).
type simpleTreeCounter struct{ c *Counter }

func (s simpleTreeCounter) FaI(p *sim.Proc) uint64            { return s.c.FaI(p) }
func (s simpleTreeCounter) BFaD(p *sim.Proc) uint64           { return s.c.BFaD(p, 0) }
func (s simpleTreeCounter) AddN(p *sim.Proc, n int64) uint64  { return s.c.AddN(p, uint64(n)) }
func (s simpleTreeCounter) BSubN(p *sim.Proc, n int64) uint64 { return s.c.BSubN(p, uint64(n), 0) }

// FunnelTree is the paper's second new algorithm: SimpleTree with
// combining-funnel counters in the hottest (top) tree levels and
// funnel stacks as leaf bins.
type FunnelTree struct {
	npri     int
	nleaves  int
	counters []treeCounter // 1-based, len nleaves
	bins     []*FunnelStack

	// Host-side internals counters (no simulated cost).
	descents     int64 // DeleteMin root-to-leaf traversals
	rightTurns   int64 // descent steps that found a zero counter (went right)
	increments   int64 // counter increments performed by inserts
	batchInserts int64 // InsertBatch calls
	batchDeletes int64 // DeleteMinBatch calls
}

// NewFunnelTree builds the tree queue with the default funnel cut-off.
func NewFunnelTree(m *sim.Machine, npri, maxItems int, params FunnelParams) *FunnelTree {
	return NewFunnelTreeCutoff(m, npri, maxItems, params, DefaultFunnelCutoff)
}

// NewFunnelTreeCutoff builds the tree queue using funnel counters for the
// top cutoff levels and lock-based counters below — the ablation knob for
// the paper's Section 3.2 cut-off decision. cutoff <= 0 uses lock-based
// counters everywhere; a large cutoff uses funnels everywhere.
func NewFunnelTreeCutoff(m *sim.Machine, npri, maxItems int, params FunnelParams, cutoff int) *FunnelTree {
	return NewFunnelTreeDiscipline(m, npri, maxItems, params, cutoff, false)
}

// NewFunnelTreeDiscipline additionally selects the leaf-bin discipline:
// LIFO funnel stacks (false, the paper's default) or the Section 3.2
// hybrid FIFO bins with funnel elimination (true).
func NewFunnelTreeDiscipline(m *sim.Machine, npri, maxItems int, params FunnelParams, cutoff int, fifo bool) *FunnelTree {
	nl := ceilPow2(npri)
	q := &FunnelTree{
		npri:     npri,
		nleaves:  nl,
		counters: make([]treeCounter, nl),
		bins:     make([]*FunnelStack, nl),
	}
	for i := 1; i < nl; i++ {
		if level(i) < cutoff {
			// A node at level l sees roughly procs/2^l of the traffic;
			// size its funnel for that, which is the static analogue of
			// the paper's observation that deeper funnels shrink on their
			// own.
			nodeParams := scaledParams(params, m.Procs()>>uint(level(i)))
			q.counters[i] = NewFunnelCounter(m, nodeParams, true, 0)
		} else {
			q.counters[i] = simpleTreeCounter{c: NewCounter(m)}
		}
	}
	binParams := scaledParams(params, 2*m.Procs()/nl)
	for i := 0; i < nl; i++ {
		q.bins[i] = newFunnelBin(m, binParams, maxItems, fifo)
	}
	return q
}

// scaledParams returns params resized for the given expected traffic,
// preserving explicit non-default tunings only in shape (attempts, spin,
// adaptivity).
func scaledParams(base FunnelParams, traffic int) FunnelParams {
	if traffic < 1 {
		traffic = 1
	}
	p := DefaultFunnelParams(traffic)
	p.Attempts = base.Attempts
	p.Adaptive = base.Adaptive
	for l := range p.Spin {
		if l < len(base.Spin) {
			p.Spin[l] = base.Spin[l]
		}
	}
	return p
}

// level returns the tree level of node i (root = level 0).
func level(i int) int {
	l := -1
	for i > 0 {
		i /= 2
		l++
	}
	return l
}

// NumPriorities reports the fixed priority range.
func (q *FunnelTree) NumPriorities() int { return q.npri }

// Metrics reports counter-traversal counts plus the summed internals of
// the funnel counters (prefix "counter"), the deeper lock-based counters
// (prefix "counter_lock"), and the leaf funnel stacks (prefix "bin") —
// the combining/elimination rates at the hot top levels are the
// mechanism this algorithm adds over SimpleTree.
func (q *FunnelTree) Metrics() Metrics {
	m := Metrics{
		"descents":      float64(q.descents),
		"right_turns":   float64(q.rightTurns),
		"increments":    float64(q.increments),
		"batch_inserts": float64(q.batchInserts),
		"batch_deletes": float64(q.batchDeletes),
	}
	if q.descents > 0 {
		// Every descent traverses log2(nleaves) counters by construction.
		m["counter_traversals"] = float64(q.descents) * float64(treeDepth(q.nleaves))
	}
	for _, c := range q.counters[1:] {
		switch tc := c.(type) {
		case *FunnelCounter:
			m.addSum("counter", tc.Metrics())
		case simpleTreeCounter:
			m.addSum("counter_lock", tc.c.Metrics())
		}
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	m.finishFactor("counter.funnel")
	m.finishFactor("bin.funnel")
	return m
}

// Insert pushes val onto its leaf stack and ascends, incrementing every
// counter reached from the left.
func (q *FunnelTree) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Push(p, val)
	n := q.nleaves + pri
	for n > 1 {
		parent := n / 2
		if n == 2*parent {
			q.increments++
			q.counters[parent].FaI(p)
		}
		n = parent
	}
}

// DeleteMin descends from the root by bounded fetch-and-decrement and pops
// the reached leaf's stack.
func (q *FunnelTree) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.descents++
	n := 1
	for n < q.nleaves {
		if q.counters[n].BFaD(p) > 0 {
			n = 2 * n
		} else {
			q.rightTurns++
			n = 2*n + 1
		}
	}
	return q.bins[n-q.nleaves].Pop(p)
}

// InsertBatch fills every leaf stack first (one central batch per
// distinct priority), then applies the aggregated counter increments
// bottom-up with multi-unit funnel adds — see SimpleTree.InsertBatch
// for why the order keeps reservations sound.
func (q *FunnelTree) InsertBatch(p *sim.Proc, items []BatchItem) {
	if len(items) == 0 {
		return
	}
	q.batchInserts++
	runs := batchRuns(items)
	incs := make(map[int]int64)
	for _, run := range runs {
		q.bins[run.pri].PushN(p, run.vals)
		n := q.nleaves + run.pri
		for n > 1 {
			parent := n / 2
			if n == 2*parent {
				incs[parent] += int64(len(run.vals))
			}
			n = parent
		}
	}
	nodes := make([]int, 0, len(incs))
	for n := range incs {
		nodes = append(nodes, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(nodes)))
	for _, n := range nodes {
		q.increments += incs[n]
		q.counters[n].AddN(p, incs[n])
	}
}

// DeleteMinBatch reserves up to k items in one root-to-leaf pass using
// multi-unit bounded decrements. Reserved items may transiently be
// unavailable when a racing insert has raised counters ahead of its
// push landing — the quiescent-consistency relaxation the funnel tree
// already accepts for single deletes — so the batch may run short; the
// books rebalance as those pushes land.
func (q *FunnelTree) DeleteMinBatch(p *sim.Proc, k int) []BatchItem {
	if k < 1 {
		return nil
	}
	q.batchDeletes++
	q.descents++
	var out []BatchItem
	q.takeBatch(p, 1, k, &out)
	return out
}

// takeBatch collects up to want items from the subtree rooted at n,
// reporting how many it delivered.
func (q *FunnelTree) takeBatch(p *sim.Proc, n, want int, out *[]BatchItem) int {
	if want <= 0 {
		return 0
	}
	if n >= q.nleaves {
		pri := n - q.nleaves
		vals := q.bins[pri].PopN(p, want)
		for _, v := range vals {
			*out = append(*out, BatchItem{Pri: pri, Val: v})
		}
		return len(vals)
	}
	left := int64(want)
	if prev := q.counters[n].BSubN(p, left); int64(prev) < left {
		left = int64(prev)
	}
	got := 0
	if left > 0 {
		got = q.takeBatch(p, 2*n, int(left), out)
	} else {
		q.rightTurns++
	}
	if got < want {
		got += q.takeBatch(p, 2*n+1, want-got, out)
	}
	return got
}

var (
	_ Queue      = (*FunnelTree)(nil)
	_ BatchQueue = (*FunnelTree)(nil)
)
