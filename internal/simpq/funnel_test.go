package simpq

import (
	"testing"

	"pq/internal/sim"
)

func testParams() FunnelParams {
	return FunnelParams{
		Widths:   []int{4, 2},
		Attempts: 3,
		Spin:     []int64{60, 60},
		Adaptive: true,
	}
}

func TestFunnelCounterSequentialFaI(t *testing.T) {
	var c *FunnelCounter
	runOn(t, 1,
		func(m *sim.Machine) { c = NewFunnelCounter(m, testParams(), false, 0) },
		func(p *sim.Proc) {
			for i := uint64(0); i < 20; i++ {
				if got := c.FaI(p); got != i {
					t.Fatalf("FaI #%d = %d", i, got)
				}
			}
			if got := c.Value(p); got != 20 {
				t.Fatalf("Value = %d, want 20", got)
			}
		})
}

func TestFunnelCounterSequentialBFaD(t *testing.T) {
	var c *FunnelCounter
	runOn(t, 1,
		func(m *sim.Machine) { c = NewFunnelCounter(m, testParams(), true, 0) },
		func(p *sim.Proc) {
			for i := 0; i < 3; i++ {
				c.FaI(p)
			}
			// Three successful decrements, then pinned at the bound.
			for want := uint64(3); want > 0; want-- {
				if got := c.BFaD(p); got != want {
					t.Fatalf("BFaD = %d, want %d", got, want)
				}
			}
			for i := 0; i < 4; i++ {
				if got := c.BFaD(p); got != 0 {
					t.Fatalf("BFaD on empty = %d, want 0", got)
				}
			}
			if got := c.Value(p); got != 0 {
				t.Fatalf("Value = %d, want 0", got)
			}
		})
}

func TestFunnelCounterConcurrentFaIPermutation(t *testing.T) {
	// P processors each increment k times; the returns must form a
	// permutation of 0..P*k-1 and the final value must be P*k. This is
	// exactness of combining distribution.
	const procs = 32
	const perProc = 15
	var c *FunnelCounter
	var m *sim.Machine
	returns := make([][]uint64, procs)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			c = NewFunnelCounter(mm, DefaultFunnelParams(procs), false, 0)
		},
		func(p *sim.Proc) {
			for i := 0; i < perProc; i++ {
				returns[p.ID()] = append(returns[p.ID()], c.FaI(p))
				p.LocalWork(int64(p.Rand(50)))
			}
		})
	if got := m.Word(c.main); got != procs*perProc {
		t.Fatalf("final value = %d, want %d", got, procs*perProc)
	}
	seen := make([]bool, procs*perProc)
	for _, rs := range returns {
		for _, v := range rs {
			if v >= uint64(len(seen)) {
				t.Fatalf("return %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate return %d", v)
			}
			seen[v] = true
		}
	}
}

func TestFunnelCounterBoundedHomogeneousFaI(t *testing.T) {
	// Same permutation property must hold in bounded mode (homogeneous
	// trees) when only increments run.
	const procs = 16
	const perProc = 12
	var c *FunnelCounter
	var m *sim.Machine
	returns := make([][]uint64, procs)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			c = NewFunnelCounter(mm, DefaultFunnelParams(procs), true, 0)
		},
		func(p *sim.Proc) {
			for i := 0; i < perProc; i++ {
				returns[p.ID()] = append(returns[p.ID()], c.FaI(p))
			}
		})
	if got := m.Word(c.main); got != procs*perProc {
		t.Fatalf("final value = %d, want %d", got, procs*perProc)
	}
	seen := make([]bool, procs*perProc)
	for _, rs := range returns {
		for _, v := range rs {
			if seen[v] {
				t.Fatalf("duplicate return %d", v)
			}
			seen[v] = true
		}
	}
}

func TestFunnelCounterMixedBoundedInvariant(t *testing.T) {
	// Mixed increments and bounded decrements with elimination: the final
	// central value must equal increments minus successful decrements
	// (those whose return exceeded the bound), and never dip below the
	// bound.
	const procs = 24
	const perProc = 16
	var c *FunnelCounter
	var m *sim.Machine
	type tally struct{ incs, succDecs int }
	tallies := make([]tally, procs)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			c = NewFunnelCounter(mm, DefaultFunnelParams(procs), true, 0)
		},
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				if p.Rand(2) == 0 {
					c.FaI(p)
					tallies[id].incs++
				} else if c.BFaD(p) > 0 {
					tallies[id].succDecs++
				}
				p.LocalWork(int64(p.Rand(30)))
			}
		})
	incs, succ := 0, 0
	for _, tl := range tallies {
		incs += tl.incs
		succ += tl.succDecs
	}
	final := int(m.Word(c.main))
	if final != incs-succ {
		t.Fatalf("final=%d, incs=%d, successful decs=%d (want final = incs-succ)", final, incs, succ)
	}
	if final < 0 {
		t.Fatalf("counter went below bound: %d", final)
	}
}

func TestFunnelStackSequential(t *testing.T) {
	var s *FunnelStack
	runOn(t, 1,
		func(m *sim.Machine) { s = NewFunnelStack(m, testParams(), 32) },
		func(p *sim.Proc) {
			if !s.Empty(p) {
				t.Error("new stack not empty")
			}
			if _, ok := s.Pop(p); ok {
				t.Error("Pop on empty stack succeeded")
			}
			for i := uint64(1); i <= 5; i++ {
				s.Push(p, i)
			}
			if s.Empty(p) {
				t.Error("stack with items reports empty")
			}
			// LIFO order when sequential.
			for want := uint64(5); want >= 1; want-- {
				v, ok := s.Pop(p)
				if !ok || v != want {
					t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, want)
				}
			}
			if !s.Empty(p) {
				t.Error("drained stack not empty")
			}
		})
}

func TestFunnelStackConcurrentMultiset(t *testing.T) {
	const procs = 24
	const perProc = 14
	var (
		s   *FunnelStack
		bar *barrier
	)
	popped := make([][]uint64, procs)
	var drained []uint64
	runOn(t, procs,
		func(m *sim.Machine) {
			s = NewFunnelStack(m, DefaultFunnelParams(procs), procs*perProc+1)
			bar = newBarrier(m)
		},
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				if p.Rand(2) == 0 {
					s.Push(p, uint64(id)<<16|uint64(i)|1<<30)
				} else if v, ok := s.Pop(p); ok {
					popped[id] = append(popped[id], v)
				}
				p.LocalWork(int64(p.Rand(40)))
			}
			bar.wait(p, 1)
			if id == 0 {
				for {
					v, ok := s.Pop(p)
					if !ok {
						break
					}
					drained = append(drained, v)
				}
			}
		})
	if s.dropped != 0 {
		t.Fatalf("stack dropped %d items", s.dropped)
	}
	seen := map[uint64]int{}
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range drained {
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
		if v&(1<<30) == 0 {
			t.Fatalf("alien value %#x", v)
		}
	}
}

func TestFunnelStackEliminationOccurs(t *testing.T) {
	// Under a balanced push/pop load with many processors, at least some
	// operations should eliminate (pair off without touching the central
	// stack). We detect this indirectly: determinism plus a sanity check
	// that the run completes with a correct multiset is covered elsewhere;
	// here we check that pops succeed even when the central stack is kept
	// near-empty, which only elimination can sustain cheaply.
	const procs = 32
	var s *FunnelStack
	succ := make([]int, procs)
	runOn(t, procs,
		func(m *sim.Machine) { s = NewFunnelStack(m, DefaultFunnelParams(procs), 1024) },
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < 10; i++ {
				if id%2 == 0 {
					s.Push(p, uint64(id+1)<<8)
				} else if _, ok := s.Pop(p); ok {
					succ[id]++
				}
			}
		})
	total := 0
	for _, n := range succ {
		total += n
	}
	if total == 0 {
		t.Fatal("no pop ever succeeded under balanced load")
	}
}

func TestDefaultFunnelParamsScale(t *testing.T) {
	tests := []struct {
		procs      int
		wantLevels int
	}{
		{2, 1}, {4, 1}, {8, 2}, {32, 3}, {96, 4}, {128, 4}, {256, 5},
	}
	for _, tt := range tests {
		got := DefaultFunnelParams(tt.procs)
		if got.levels() != tt.wantLevels {
			t.Errorf("procs=%d levels=%d, want %d", tt.procs, got.levels(), tt.wantLevels)
		}
		for l, w := range got.Widths {
			if w < 1 {
				t.Errorf("procs=%d layer %d width %d < 1", tt.procs, l, w)
			}
		}
	}
}

func TestFunnelCounterDeterminism(t *testing.T) {
	run := func() uint64 {
		var c *FunnelCounter
		var m *sim.Machine
		var hash uint64
		runOn(t, 16,
			func(mm *sim.Machine) {
				m = mm
				c = NewFunnelCounter(mm, DefaultFunnelParams(16), true, 0)
			},
			func(p *sim.Proc) {
				for i := 0; i < 10; i++ {
					if p.Rand(2) == 0 {
						c.FaI(p)
					} else {
						c.BFaD(p)
					}
				}
			})
		hash = m.Word(c.main)
		return hash
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic funnel counter: %d vs %d", a, b)
	}
}

func TestFunnelCounterUpperBound(t *testing.T) {
	var c *FunnelCounter
	runOn(t, 1,
		func(m *sim.Machine) {
			c = NewFunnelCounterBounds(m, testParams(), 0, 3)
		},
		func(p *sim.Proc) {
			for want := uint64(0); want < 3; want++ {
				if got := c.BFaI(p); got != want {
					t.Fatalf("BFaI = %d, want %d", got, want)
				}
			}
			for i := 0; i < 3; i++ {
				if got := c.BFaI(p); got != 3 {
					t.Fatalf("BFaI at bound = %d, want 3", got)
				}
			}
			if got := c.Value(p); got != 3 {
				t.Fatalf("Value = %d, want 3", got)
			}
		})
}

func TestFunnelCounterTwoSidedConcurrent(t *testing.T) {
	const procs = 16
	const perProc = 20
	const hi = 12
	var c *FunnelCounter
	var m *sim.Machine
	type tally struct{ succInc, succDec int }
	tallies := make([]tally, procs)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			c = NewFunnelCounterBounds(mm, DefaultFunnelParams(procs), 0, hi)
		},
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				if p.Rand(2) == 0 {
					if c.BFaI(p) < hi {
						tallies[id].succInc++
					}
				} else if c.BFaD(p) > 0 {
					tallies[id].succDec++
				}
				p.LocalWork(int64(p.Rand(30)))
			}
		})
	inc, dec := 0, 0
	for _, tl := range tallies {
		inc += tl.succInc
		dec += tl.succDec
	}
	got := int64(m.Word(c.main))
	if got != int64(inc-dec) {
		t.Fatalf("final=%d, want succInc-succDec = %d-%d = %d", got, inc, dec, inc-dec)
	}
	if got < 0 || got > hi {
		t.Fatalf("value %d escaped [0,%d]", got, hi)
	}
}

func TestSimpleCounterBFaI(t *testing.T) {
	var c *Counter
	runOn(t, 1,
		func(m *sim.Machine) { c = NewCounter(m) },
		func(p *sim.Proc) {
			if got := c.BFaI(p, 2); got != 0 {
				t.Fatalf("BFaI = %d, want 0", got)
			}
			if got := c.BFaI(p, 2); got != 1 {
				t.Fatalf("BFaI = %d, want 1", got)
			}
			for i := 0; i < 3; i++ {
				if got := c.BFaI(p, 2); got != 2 {
					t.Fatalf("BFaI at bound = %d, want 2", got)
				}
			}
		})
}

func TestFunnelQueueFIFOOrder(t *testing.T) {
	var s *FunnelStack
	runOn(t, 1,
		func(m *sim.Machine) { s = NewFunnelQueue(m, testParams(), 32) },
		func(p *sim.Proc) {
			for i := uint64(1); i <= 6; i++ {
				s.Push(p, i)
			}
			for want := uint64(1); want <= 6; want++ {
				v, ok := s.Pop(p)
				if !ok || v != want {
					t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, want)
				}
			}
			if !s.Empty(p) {
				t.Error("drained fifo bin not empty")
			}
		})
}

func TestFunnelQueueRingWraps(t *testing.T) {
	// Capacity 4 with alternating pushes and pops wraps the ring many
	// times; the count and contents must stay exact.
	var s *FunnelStack
	runOn(t, 1,
		func(m *sim.Machine) { s = NewFunnelQueue(m, testParams(), 4) },
		func(p *sim.Proc) {
			next := uint64(1)
			expect := uint64(1)
			for i := 0; i < 30; i++ {
				s.Push(p, next)
				next++
				v, ok := s.Pop(p)
				if !ok || v != expect {
					t.Fatalf("iter %d: Pop = (%d,%v), want (%d,true)", i, v, ok, expect)
				}
				expect++
			}
		})
}

func TestFunnelQueueConcurrentMultiset(t *testing.T) {
	const procs = 16
	const perProc = 14
	var (
		s   *FunnelStack
		bar *barrier
	)
	popped := make([][]uint64, procs)
	var drained []uint64
	runOn(t, procs,
		func(m *sim.Machine) {
			s = NewFunnelQueue(m, DefaultFunnelParams(procs), procs*perProc+1)
			bar = newBarrier(m)
		},
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				if p.Rand(2) == 0 {
					s.Push(p, uint64(id)<<16|uint64(i)|1<<30)
				} else if v, ok := s.Pop(p); ok {
					popped[id] = append(popped[id], v)
				}
			}
			bar.wait(p, 1)
			if id == 0 {
				for {
					v, ok := s.Pop(p)
					if !ok {
						break
					}
					drained = append(drained, v)
				}
			}
		})
	seen := map[uint64]int{}
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range drained {
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
}
