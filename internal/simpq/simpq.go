// Package simpq implements, on top of the sim machine, every priority
// queue the paper evaluates plus the shared-memory substrates they need:
// MCS queue locks, test-and-set locks, lock-based bins and counters,
// concurrent heaps (single-lock and Hunt et al.), a bounded-range skip
// list, and combining funnels with the paper's novel bounded
// fetch-and-decrement and elimination. The relaxed MultiQueue of
// Williams & Sanders rides along as a post-paper comparison point; it is
// registered separately (RelaxedAlgorithms) and never selected by
// default.
//
// Values stored in queues and stacks must fit in 61 bits; the top bits of
// a simulated word are used for result/state encoding in the funnel
// protocol.
package simpq

import (
	"strings"

	"pq/internal/sim"
)

// MaxValue is the largest value storable in a queue on the simulator.
const MaxValue = 1<<61 - 1

// Queue is a bounded-range priority queue executing on simulated
// processors. Implementations are constructed against a *sim.Machine
// before Run and used by the per-processor programs during Run.
type Queue interface {
	// Insert adds val with priority pri in [0, NumPriorities).
	Insert(p *sim.Proc, pri int, val uint64)
	// DeleteMin removes and returns an element with the smallest priority,
	// or ok=false if the queue appears empty.
	DeleteMin(p *sim.Proc) (val uint64, ok bool)
	// NumPriorities reports the fixed priority range.
	NumPriorities() int
}

// Algorithm names the seven implementations under test.
type Algorithm string

// The algorithms evaluated by the paper.
const (
	AlgSingleLock    Algorithm = "SingleLock"
	AlgHuntEtAl      Algorithm = "HuntEtAl"
	AlgSkipList      Algorithm = "SkipList"
	AlgSimpleLinear  Algorithm = "SimpleLinear"
	AlgSimpleTree    Algorithm = "SimpleTree"
	AlgLinearFunnels Algorithm = "LinearFunnels"
	AlgFunnelTree    Algorithm = "FunnelTree"
)

// AlgMultiQueue is the relaxed MultiQueue (Williams & Sanders); see
// MultiQueue. It is not part of Algorithms — relaxed delete-min must be
// requested explicitly.
const AlgMultiQueue Algorithm = "MultiQueue"

// Algorithms lists the paper's implementations in its presentation
// order; all are strict or quiescently consistent.
var Algorithms = []Algorithm{
	AlgSingleLock, AlgHuntEtAl, AlgSkipList,
	AlgSimpleLinear, AlgSimpleTree, AlgLinearFunnels, AlgFunnelTree,
}

// RelaxedAlgorithms lists the implementations whose DeleteMin is only
// approximately smallest-first.
var RelaxedAlgorithms = []Algorithm{AlgMultiQueue}

// All lists every implementation: the paper's seven, then the relaxed
// extensions.
func All() []Algorithm {
	out := make([]Algorithm, 0, len(Algorithms)+len(RelaxedAlgorithms))
	out = append(out, Algorithms...)
	return append(out, RelaxedAlgorithms...)
}

// IsRelaxed reports whether alg trades exact delete-min for throughput.
func IsRelaxed(alg Algorithm) bool {
	for _, r := range RelaxedAlgorithms {
		if r == alg {
			return true
		}
	}
	return false
}

// ParseAlgorithm resolves a case-insensitive algorithm name (strict or
// relaxed) to its canonical spelling.
func ParseAlgorithm(s string) (Algorithm, bool) {
	for _, a := range All() {
		if strings.EqualFold(s, string(a)) {
			return a, true
		}
	}
	return "", false
}

// Build constructs the named queue on machine m with npri priorities and
// capacity for at most maxItems concurrently queued elements.
func Build(alg Algorithm, m *sim.Machine, npri, maxItems int) Queue {
	switch alg {
	case AlgSingleLock:
		return NewSingleLock(m, npri, maxItems)
	case AlgHuntEtAl:
		return NewHunt(m, npri, maxItems)
	case AlgSkipList:
		return NewSkipList(m, npri, maxItems)
	case AlgSimpleLinear:
		return NewSimpleLinear(m, npri, maxItems)
	case AlgSimpleTree:
		return NewSimpleTree(m, npri, maxItems)
	case AlgLinearFunnels:
		return NewLinearFunnels(m, npri, maxItems, DefaultFunnelParams(m.Procs()))
	case AlgFunnelTree:
		return NewFunnelTree(m, npri, maxItems, DefaultFunnelParams(m.Procs()))
	case AlgMultiQueue:
		return NewMultiQueue(m, npri, maxItems, DefaultMQParams())
	default:
		panic("simpq: unknown algorithm " + string(alg))
	}
}
