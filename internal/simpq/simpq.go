// Package simpq implements, on top of the sim machine, every priority
// queue the paper evaluates plus the shared-memory substrates they need:
// MCS queue locks, test-and-set locks, lock-based bins and counters,
// concurrent heaps (single-lock and Hunt et al.), a bounded-range skip
// list, and combining funnels with the paper's novel bounded
// fetch-and-decrement and elimination.
//
// Values stored in queues and stacks must fit in 61 bits; the top bits of
// a simulated word are used for result/state encoding in the funnel
// protocol.
package simpq

import "pq/internal/sim"

// MaxValue is the largest value storable in a queue on the simulator.
const MaxValue = 1<<61 - 1

// Queue is a bounded-range priority queue executing on simulated
// processors. Implementations are constructed against a *sim.Machine
// before Run and used by the per-processor programs during Run.
type Queue interface {
	// Insert adds val with priority pri in [0, NumPriorities).
	Insert(p *sim.Proc, pri int, val uint64)
	// DeleteMin removes and returns an element with the smallest priority,
	// or ok=false if the queue appears empty.
	DeleteMin(p *sim.Proc) (val uint64, ok bool)
	// NumPriorities reports the fixed priority range.
	NumPriorities() int
}

// Algorithm names the seven implementations under test.
type Algorithm string

// The algorithms evaluated by the paper.
const (
	AlgSingleLock    Algorithm = "SingleLock"
	AlgHuntEtAl      Algorithm = "HuntEtAl"
	AlgSkipList      Algorithm = "SkipList"
	AlgSimpleLinear  Algorithm = "SimpleLinear"
	AlgSimpleTree    Algorithm = "SimpleTree"
	AlgLinearFunnels Algorithm = "LinearFunnels"
	AlgFunnelTree    Algorithm = "FunnelTree"
)

// Algorithms lists all implementations in the paper's presentation order.
var Algorithms = []Algorithm{
	AlgSingleLock, AlgHuntEtAl, AlgSkipList,
	AlgSimpleLinear, AlgSimpleTree, AlgLinearFunnels, AlgFunnelTree,
}

// Build constructs the named queue on machine m with npri priorities and
// capacity for at most maxItems concurrently queued elements.
func Build(alg Algorithm, m *sim.Machine, npri, maxItems int) Queue {
	switch alg {
	case AlgSingleLock:
		return NewSingleLock(m, npri, maxItems)
	case AlgHuntEtAl:
		return NewHunt(m, npri, maxItems)
	case AlgSkipList:
		return NewSkipList(m, npri, maxItems)
	case AlgSimpleLinear:
		return NewSimpleLinear(m, npri, maxItems)
	case AlgSimpleTree:
		return NewSimpleTree(m, npri, maxItems)
	case AlgLinearFunnels:
		return NewLinearFunnels(m, npri, maxItems, DefaultFunnelParams(m.Procs()))
	case AlgFunnelTree:
		return NewFunnelTree(m, npri, maxItems, DefaultFunnelParams(m.Procs()))
	default:
		panic("simpq: unknown algorithm " + string(alg))
	}
}
