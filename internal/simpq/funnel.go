package simpq

import "pq/internal/sim"

// FunnelParams tunes a combining funnel (Shavit & Zemach, PODC 1998): the
// number of combining layers, their widths, how many collision attempts a
// processor makes per pass, and how long it lingers at a layer hoping to
// be collided with.
type FunnelParams struct {
	// Widths holds the width of each combining layer; its length is the
	// number of layers.
	Widths []int
	// Attempts is the number of collision attempts per pass before trying
	// the central object.
	Attempts int
	// Spin is the per-layer delay (cycles) spent waiting to be collided
	// with after a failed attempt.
	Spin []int64
	// Adaptive enables the local layer-width/effort adaption of Section
	// 3.1: each processor scales its funnel usage by its observed
	// collision rate.
	Adaptive bool
}

// DefaultFunnelParams returns the parameter set used for all funnels in
// the experiments, scaled to the machine's processor count (the paper
// tuned one set of parameters at 256 processors and reused it everywhere).
func DefaultFunnelParams(procs int) FunnelParams {
	levels := 1
	switch {
	case procs >= 224:
		levels = 5
	case procs >= 96:
		levels = 4
	case procs >= 32:
		levels = 3
	case procs >= 8:
		levels = 2
	}
	p := FunnelParams{
		Widths:   make([]int, levels),
		Attempts: 4,
		Spin:     make([]int64, levels),
		Adaptive: true,
	}
	// Linger time scales with expected traffic: with few processors a
	// partner rarely shows up within any wait, so waiting long is wasted.
	spin := int64(procs) / 2
	if spin < 1 {
		spin = 1
	}
	if spin > 5 {
		spin = 5
	}
	for l := 0; l < levels; l++ {
		w := procs >> uint(l+3)
		if w < 1 {
			w = 1
		}
		p.Widths[l] = w
		p.Spin[l] = spin * sim.DefaultRemoteCost
	}
	return p
}

func (fp *FunnelParams) levels() int { return len(fp.Widths) }

// Funnel record layout: 4 words per processor.
const (
	frSum      = 0 // operation sum (two's complement)
	frLocation = 1 // 0 = unavailable, else layer+1
	frResult   = 2 // 0 = empty, else encoded result
	frItem     = 3 // stack operand
	frWords    = 4
)

// Result word encoding.
const (
	resMarker = 1 << 63
	resElim   = 1 << 62
	resFail   = 1 << 61
	resValue  = resFail - 1
)

// funnelRec is the host-side view of one processor's funnel record; the
// shared, contended fields (sum, location, result, item) live in simulated
// memory, while purely private bookkeeping (children, members, adaption
// state) stays on the host, as private cached data would on a real
// machine.
type funnelRec struct {
	addr     sim.Addr
	children []childRef   // direct children, for recursive distribution
	members  []*funnelRec // flattened subtree including self, in apply order
	factor   float64      // adaption factor in (0, 1]
	combined bool         // did this operation combine at least once?
	units    bool         // every member of this tree is a ±1 operation
}

type childRef struct {
	rec *funnelRec
	sum int64
}

// funnel is the shared combining machinery used by both the counter and
// the stack: layers in simulated memory plus per-processor records.
type funnel struct {
	params FunnelParams
	layers []sim.Addr // one array per layer
	recs   []*funnelRec

	// Host-side internals counters (no simulated cost): how collision
	// passes resolved. The paper's mechanisms — combining and elimination
	// rates — are read from these.
	stats funnelStats
}

// funnelStats counts collision-protocol outcomes.
type funnelStats struct {
	passes       int64 // collide calls
	attempts     int64 // layer slots probed (swaps)
	combines     int64 // another record captured into this tree
	captured     int64 // this record captured by another tree
	eliminations int64 // reversing trees met and short-cut
	bypasses     int64 // low-load shortcuts straight to the central object
}

// Metrics reports collision-protocol counters plus the summed adaption
// factor over this funnel's processor records ("adaption_factor_sum" /
// "records"; aggregate with Metrics.finishFactor).
func (f *funnel) Metrics() Metrics {
	var factorSum float64
	for _, r := range f.recs {
		factorSum += r.factor
	}
	return Metrics{
		"passes":              float64(f.stats.passes),
		"attempts":            float64(f.stats.attempts),
		"combines":            float64(f.stats.combines),
		"captured":            float64(f.stats.captured),
		"eliminations":        float64(f.stats.eliminations),
		"bypasses":            float64(f.stats.bypasses),
		"adaption_factor_sum": factorSum,
		"records":             float64(len(f.recs)),
	}
}

func newFunnel(m *sim.Machine, params FunnelParams) *funnel {
	f := &funnel{
		params: params,
		layers: make([]sim.Addr, params.levels()),
		recs:   make([]*funnelRec, m.Procs()),
	}
	for l, w := range params.Widths {
		f.layers[l] = m.Alloc(w)
		m.Label(f.layers[l], w, "funnel.layer")
	}
	for i := range f.recs {
		f.recs[i] = &funnelRec{addr: m.Alloc(frWords), factor: 1}
	}
	if len(f.recs) > 0 {
		m.Label(f.recs[0].addr, frWords*len(f.recs), "funnel.records")
	}
	return f
}

func locCode(layer int) uint64 { return uint64(layer) + 1 }

// collideOutcome describes how one pass through the combining layers ended.
type collideOutcome int

const (
	outExit         collideOutcome = iota // exited the funnel; may apply centrally
	outCaptured                           // collided with; wait for a result
	outEliminated                         // met a reversing operation
	outIncompatible                       // captured a reversing tree it cannot pair with
)

// collide runs the collision protocol of Figure 10 (lines 4..27) for the
// processor's current operation, starting at layer start (nonzero after a
// failed central attempt, so the tree keeps its size-per-layer
// invariant). On outEliminated, other is the captured opposite-direction
// record (the caller completes the elimination). The returned layer is the
// layer the processor stopped at, and newSum the possibly grown tree sum.
func (f *funnel) collide(p *sim.Proc, my *funnelRec, mySum int64, eliminate bool, start int) (outcome collideOutcome, other *funnelRec, layer int, newSum int64) {
	f.stats.passes++
	t0 := p.Now()
	defer p.AppSpan(sim.PhaseCombining, t0)
	levels := f.params.levels()
	attempts := f.params.Attempts
	width := make([]int, levels)
	for l := 0; l < levels; l++ {
		width[l] = f.params.Widths[l]
	}
	spin := make([]int64, levels)
	copy(spin, f.params.Spin)
	if f.params.Adaptive {
		attempts = scaleInt(attempts, my.factor)
		for l := range width {
			width[l] = scaleInt(width[l], my.factor)
			// The linger scales with the factor too: a processor that
			// never collides stops paying to wait (decay is gentle, so
			// one miss under real load barely moves it).
			spin[l] = int64(float64(f.params.Spin[l]) * my.factor)
			if spin[l] < 1 {
				spin[l] = 1
			}
		}
	}

	if f.params.Adaptive && my.factor <= 0.2 && start == 0 && !my.combined {
		// Under persistently low load, skip the funnel entirely and go
		// straight for the central object ("under low load there is no
		// contention so it is better to simply apply the operation and be
		// done", Section 3.1). Central contention revives the factor, so
		// this is self-correcting.
		f.stats.bypasses++
		return outExit, nil, 0, mySum
	}
	d := start
	for n := 0; n < attempts && d < levels; n++ {
		slot := sim.Addr(p.Rand(width[d]))
		f.stats.attempts++
		qv := p.Swap(f.layers[d]+slot, uint64(p.ID())+1)
		if qv != 0 && int(qv-1) != p.ID() {
			q := f.recs[qv-1]
			if !p.CAS(my.addr+frLocation, locCode(d), 0) {
				f.stats.captured++
				return outCaptured, nil, d, mySum
			}
			if p.CAS(q.addr+frLocation, locCode(d), 0) {
				qSum := int64(p.Read(q.addr + frSum))
				if eliminate && qSum+mySum == 0 && my.units && q.units {
					// Only all-unit trees pair off: their members interleave
					// one-for-one. Multi-unit members would need partial
					// cancellation, which distribution cannot express.
					f.stats.eliminations++
					my.combined = true // elimination is a productive collision
					return outEliminated, q, d, mySum
				}
				if eliminate && (qSum < 0) != (mySum < 0) {
					// Bounded operations of opposite sign do not commute, so
					// reversing trees that cannot eliminate must not combine.
					// The captured tree is handed to the caller, who applies
					// it centrally on its behalf.
					return outIncompatible, q, d, mySum
				}
				// Trees at the same layer have the same size, so a
				// same-direction collision is always a legal combine; with
				// elimination disabled (unbounded mode) any collision
				// combines, since unbounded fetch-and-add commutes.
				f.stats.combines++
				mySum += qSum
				p.Write(my.addr+frSum, uint64(mySum))
				my.children = append(my.children, childRef{rec: q, sum: qSum})
				my.members = append(my.members, q.members...)
				my.combined = true
				my.units = my.units && q.units
				d++
				p.Write(my.addr+frLocation, locCode(d))
				n = -1 // restart attempt count at the new layer
				continue
			}
			p.Write(my.addr+frLocation, locCode(d))
		}
		// Linger, hoping to be collided with (lines 25-26).
		p.LocalWork(spin[d])
		if p.Read(my.addr+frLocation) != locCode(d) {
			f.stats.captured++
			return outCaptured, nil, d, mySum
		}
	}
	return outExit, nil, d, mySum
}

func scaleInt(v int, factor float64) int {
	s := int(float64(v) * factor)
	if s < 1 {
		return 1
	}
	return s
}

// adapt updates the processor's local funnel-usage factor from the
// outcome of the completed operation.
func (my *funnelRec) adapt(enabled bool) {
	if !enabled {
		return
	}
	if my.combined {
		my.factor *= 1.4
		if my.factor > 1 {
			my.factor = 1
		}
	} else {
		// Decay gently: one missed collision under real load must not
		// spiral the processor out of the funnel (shorter linger means
		// even fewer collisions).
		my.factor *= 0.85
		if my.factor < 0.15 {
			my.factor = 0.15
		}
	}
}

// begin resets the processor's record for a new operation with the given
// sum. The result word is cleared before the record becomes visible in a
// layer.
func (f *funnel) begin(p *sim.Proc, sum int64) *funnelRec {
	my := f.recs[p.ID()]
	my.children = my.children[:0]
	my.members = append(my.members[:0], my)
	my.combined = false
	my.units = sum == 1 || sum == -1
	p.Write(my.addr+frResult, 0)
	p.Write(my.addr+frSum, uint64(sum))
	p.Write(my.addr+frLocation, locCode(0))
	return my
}

// awaitResult blocks until a parent delivers this record's result.
func awaitResult(p *sim.Proc, my *funnelRec) (elim bool, fail bool, value uint64) {
	v := p.Read(my.addr + frResult)
	for v == 0 {
		v = p.WaitWhile(my.addr+frResult, 0)
	}
	return v&resElim != 0, v&resFail != 0, v & resValue
}

func encodeResult(elim, fail bool, value uint64) uint64 {
	v := resMarker | (value & resValue)
	if elim {
		v |= resElim
	}
	if fail {
		v |= resFail
	}
	return v
}
