package simpq

import "pq/internal/sim"

// SimpleLinear is the paper's Figure 2 queue: an array of lock-based bins,
// one per priority. Insertion drops the element in its bin; delete-min
// scans from the smallest priority, attempting deletion only on bins that
// look non-empty.
type SimpleLinear struct {
	bins []*Bin

	// Host-side internals counters (no simulated cost).
	scans        int64 // DeleteMin calls
	scannedBins  int64 // bins examined across all scans
	failedScans  int64 // scans that reached the end without an item
	batchInserts int64 // InsertBatch calls
	batchDeletes int64 // DeleteMinBatch calls
}

// NewSimpleLinear builds the queue with npri bins of capacity maxItems.
func NewSimpleLinear(m *sim.Machine, npri, maxItems int) *SimpleLinear {
	q := &SimpleLinear{bins: make([]*Bin, npri)}
	for i := range q.bins {
		q.bins[i] = NewBin(m, maxItems)
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *SimpleLinear) NumPriorities() int { return len(q.bins) }

// Metrics reports delete-min scan lengths plus the summed per-bin lock
// cycles (prefix "bin_lock") — scan length is the mechanism behind this
// queue's sensitivity to the priority range.
func (q *SimpleLinear) Metrics() Metrics {
	m := Metrics{
		"scans":         float64(q.scans),
		"scanned_bins":  float64(q.scannedBins),
		"failed_scans":  float64(q.failedScans),
		"batch_inserts": float64(q.batchInserts),
		"batch_deletes": float64(q.batchDeletes),
	}
	if q.scans > 0 {
		m["scan_len_mean"] = float64(q.scannedBins) / float64(q.scans)
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	return m
}

// Insert adds val at priority pri.
func (q *SimpleLinear) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Insert(p, val)
}

// DeleteMin scans bins from the smallest priority and removes an element
// from the first non-empty bin it can.
func (q *SimpleLinear) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.scans++
	for _, b := range q.bins {
		q.scannedBins++
		if b.Empty(p) {
			continue
		}
		if e, ok := b.Delete(p); ok {
			return e, true
		}
	}
	q.failedScans++
	return 0, false
}

// InsertBatch groups the batch by priority and fills each bin with one
// lock hold per distinct priority.
func (q *SimpleLinear) InsertBatch(p *sim.Proc, items []BatchItem) {
	if len(items) == 0 {
		return
	}
	q.batchInserts++
	for _, run := range batchRuns(items) {
		q.bins[run.pri].InsertN(p, run.vals)
	}
}

// DeleteMinBatch scans bins from the smallest priority, draining each
// non-empty bin under one lock hold until k items are collected.
func (q *SimpleLinear) DeleteMinBatch(p *sim.Proc, k int) []BatchItem {
	if k < 1 {
		return nil
	}
	q.batchDeletes++
	q.scans++
	var out []BatchItem
	for pri, b := range q.bins {
		q.scannedBins++
		if b.Empty(p) {
			continue
		}
		for _, v := range b.DeleteN(p, k-len(out)) {
			out = append(out, BatchItem{Pri: pri, Val: v})
		}
		if len(out) == k {
			return out
		}
	}
	if len(out) == 0 {
		q.failedScans++
	}
	return out
}

var (
	_ Queue      = (*SimpleLinear)(nil)
	_ BatchQueue = (*SimpleLinear)(nil)
)
