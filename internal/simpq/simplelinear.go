package simpq

import "pq/internal/sim"

// SimpleLinear is the paper's Figure 2 queue: an array of lock-based bins,
// one per priority. Insertion drops the element in its bin; delete-min
// scans from the smallest priority, attempting deletion only on bins that
// look non-empty.
type SimpleLinear struct {
	bins []*Bin

	// Host-side internals counters (no simulated cost).
	scans       int64 // DeleteMin calls
	scannedBins int64 // bins examined across all scans
	failedScans int64 // scans that reached the end without an item
}

// NewSimpleLinear builds the queue with npri bins of capacity maxItems.
func NewSimpleLinear(m *sim.Machine, npri, maxItems int) *SimpleLinear {
	q := &SimpleLinear{bins: make([]*Bin, npri)}
	for i := range q.bins {
		q.bins[i] = NewBin(m, maxItems)
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *SimpleLinear) NumPriorities() int { return len(q.bins) }

// Metrics reports delete-min scan lengths plus the summed per-bin lock
// cycles (prefix "bin_lock") — scan length is the mechanism behind this
// queue's sensitivity to the priority range.
func (q *SimpleLinear) Metrics() Metrics {
	m := Metrics{
		"scans":        float64(q.scans),
		"scanned_bins": float64(q.scannedBins),
		"failed_scans": float64(q.failedScans),
	}
	if q.scans > 0 {
		m["scan_len_mean"] = float64(q.scannedBins) / float64(q.scans)
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	return m
}

// Insert adds val at priority pri.
func (q *SimpleLinear) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Insert(p, val)
}

// DeleteMin scans bins from the smallest priority and removes an element
// from the first non-empty bin it can.
func (q *SimpleLinear) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.scans++
	for _, b := range q.bins {
		q.scannedBins++
		if b.Empty(p) {
			continue
		}
		if e, ok := b.Delete(p); ok {
			return e, true
		}
	}
	q.failedScans++
	return 0, false
}

var _ Queue = (*SimpleLinear)(nil)
