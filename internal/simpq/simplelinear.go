package simpq

import "pq/internal/sim"

// SimpleLinear is the paper's Figure 2 queue: an array of lock-based bins,
// one per priority. Insertion drops the element in its bin; delete-min
// scans from the smallest priority, attempting deletion only on bins that
// look non-empty.
type SimpleLinear struct {
	bins []*Bin
}

// NewSimpleLinear builds the queue with npri bins of capacity maxItems.
func NewSimpleLinear(m *sim.Machine, npri, maxItems int) *SimpleLinear {
	q := &SimpleLinear{bins: make([]*Bin, npri)}
	for i := range q.bins {
		q.bins[i] = NewBin(m, maxItems)
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *SimpleLinear) NumPriorities() int { return len(q.bins) }

// Insert adds val at priority pri.
func (q *SimpleLinear) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Insert(p, val)
}

// DeleteMin scans bins from the smallest priority and removes an element
// from the first non-empty bin it can.
func (q *SimpleLinear) DeleteMin(p *sim.Proc) (uint64, bool) {
	for _, b := range q.bins {
		if b.Empty(p) {
			continue
		}
		if e, ok := b.Delete(p); ok {
			return e, true
		}
	}
	return 0, false
}

var _ Queue = (*SimpleLinear)(nil)
