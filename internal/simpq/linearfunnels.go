package simpq

import "pq/internal/sim"

// LinearFunnels is the paper's first new algorithm: SimpleLinear with each
// lock-based bin replaced by a combining-funnel stack. The delete-min scan
// still tests emptiness with a single read per bin before paying for a
// funnel traversal.
type LinearFunnels struct {
	bins []*FunnelStack

	// Host-side internals counters (no simulated cost).
	scans        int64 // DeleteMin calls
	scannedBins  int64 // bins examined across all scans
	failedScans  int64 // scans that reached the end without an item
	batchInserts int64 // InsertBatch calls
	batchDeletes int64 // DeleteMinBatch calls
}

// NewLinearFunnels builds the queue with npri funnel stacks.
func NewLinearFunnels(m *sim.Machine, npri, maxItems int, params FunnelParams) *LinearFunnels {
	return NewLinearFunnelsDiscipline(m, npri, maxItems, params, false)
}

// NewLinearFunnelsDiscipline selects the bin discipline: LIFO stacks
// (false, the paper's default) or the Section 3.2 hybrid FIFO bins with
// funnel elimination (true).
func NewLinearFunnelsDiscipline(m *sim.Machine, npri, maxItems int, params FunnelParams, fifo bool) *LinearFunnels {
	q := &LinearFunnels{bins: make([]*FunnelStack, npri)}
	// Each stack sees roughly procs/npri of the load (more at the low
	// priorities the delete scan concentrates on); size the funnels for
	// that rather than for the whole machine.
	binParams := scaledParams(params, 2*m.Procs()/npri)
	for i := range q.bins {
		q.bins[i] = newFunnelBin(m, binParams, maxItems, fifo)
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *LinearFunnels) NumPriorities() int { return len(q.bins) }

// Metrics reports delete-min scan lengths plus the summed funnel-stack
// internals of all bins (prefix "bin") — the combining and elimination
// rates are the mechanism behind this queue's scaling.
func (q *LinearFunnels) Metrics() Metrics {
	m := Metrics{
		"scans":         float64(q.scans),
		"scanned_bins":  float64(q.scannedBins),
		"failed_scans":  float64(q.failedScans),
		"batch_inserts": float64(q.batchInserts),
		"batch_deletes": float64(q.batchDeletes),
	}
	if q.scans > 0 {
		m["scan_len_mean"] = float64(q.scannedBins) / float64(q.scans)
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	m.finishFactor("bin.funnel")
	return m
}

// Insert pushes val onto its priority's stack.
func (q *LinearFunnels) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Push(p, val)
}

// DeleteMin scans stacks from the smallest priority, popping from the
// first that looks non-empty.
func (q *LinearFunnels) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.scans++
	for _, b := range q.bins {
		q.scannedBins++
		if b.Empty(p) {
			continue
		}
		if e, ok := b.Pop(p); ok {
			return e, true
		}
	}
	q.failedScans++
	return 0, false
}

// InsertBatch groups the batch by priority and applies each stack's
// share as one central batch.
func (q *LinearFunnels) InsertBatch(p *sim.Proc, items []BatchItem) {
	if len(items) == 0 {
		return
	}
	q.batchInserts++
	for _, run := range batchRuns(items) {
		q.bins[run.pri].PushN(p, run.vals)
	}
}

// DeleteMinBatch scans stacks from the smallest priority, draining each
// non-empty stack as one central batch until k items are collected.
func (q *LinearFunnels) DeleteMinBatch(p *sim.Proc, k int) []BatchItem {
	if k < 1 {
		return nil
	}
	q.batchDeletes++
	q.scans++
	var out []BatchItem
	for pri, b := range q.bins {
		q.scannedBins++
		if b.Empty(p) {
			continue
		}
		for _, v := range b.PopN(p, k-len(out)) {
			out = append(out, BatchItem{Pri: pri, Val: v})
		}
		if len(out) == k {
			return out
		}
	}
	if len(out) == 0 {
		q.failedScans++
	}
	return out
}

var (
	_ Queue      = (*LinearFunnels)(nil)
	_ BatchQueue = (*LinearFunnels)(nil)
)
