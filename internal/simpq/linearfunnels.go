package simpq

import "pq/internal/sim"

// LinearFunnels is the paper's first new algorithm: SimpleLinear with each
// lock-based bin replaced by a combining-funnel stack. The delete-min scan
// still tests emptiness with a single read per bin before paying for a
// funnel traversal.
type LinearFunnels struct {
	bins []*FunnelStack

	// Host-side internals counters (no simulated cost).
	scans       int64 // DeleteMin calls
	scannedBins int64 // bins examined across all scans
	failedScans int64 // scans that reached the end without an item
}

// NewLinearFunnels builds the queue with npri funnel stacks.
func NewLinearFunnels(m *sim.Machine, npri, maxItems int, params FunnelParams) *LinearFunnels {
	return NewLinearFunnelsDiscipline(m, npri, maxItems, params, false)
}

// NewLinearFunnelsDiscipline selects the bin discipline: LIFO stacks
// (false, the paper's default) or the Section 3.2 hybrid FIFO bins with
// funnel elimination (true).
func NewLinearFunnelsDiscipline(m *sim.Machine, npri, maxItems int, params FunnelParams, fifo bool) *LinearFunnels {
	q := &LinearFunnels{bins: make([]*FunnelStack, npri)}
	// Each stack sees roughly procs/npri of the load (more at the low
	// priorities the delete scan concentrates on); size the funnels for
	// that rather than for the whole machine.
	binParams := scaledParams(params, 2*m.Procs()/npri)
	for i := range q.bins {
		q.bins[i] = newFunnelBin(m, binParams, maxItems, fifo)
	}
	return q
}

// NumPriorities reports the fixed priority range.
func (q *LinearFunnels) NumPriorities() int { return len(q.bins) }

// Metrics reports delete-min scan lengths plus the summed funnel-stack
// internals of all bins (prefix "bin") — the combining and elimination
// rates are the mechanism behind this queue's scaling.
func (q *LinearFunnels) Metrics() Metrics {
	m := Metrics{
		"scans":        float64(q.scans),
		"scanned_bins": float64(q.scannedBins),
		"failed_scans": float64(q.failedScans),
	}
	if q.scans > 0 {
		m["scan_len_mean"] = float64(q.scannedBins) / float64(q.scans)
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	m.finishFactor("bin.funnel")
	return m
}

// Insert pushes val onto its priority's stack.
func (q *LinearFunnels) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Push(p, val)
}

// DeleteMin scans stacks from the smallest priority, popping from the
// first that looks non-empty.
func (q *LinearFunnels) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.scans++
	for _, b := range q.bins {
		q.scannedBins++
		if b.Empty(p) {
			continue
		}
		if e, ok := b.Pop(p); ok {
			return e, true
		}
	}
	q.failedScans++
	return 0, false
}

var _ Queue = (*LinearFunnels)(nil)
