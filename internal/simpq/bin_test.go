package simpq

import (
	"testing"

	"pq/internal/sim"
)

func TestBinSequential(t *testing.T) {
	var b *Bin
	runOn(t, 1,
		func(m *sim.Machine) { b = NewBin(m, 8) },
		func(p *sim.Proc) {
			if !b.Empty(p) {
				t.Error("new bin not empty")
			}
			if _, ok := b.Delete(p); ok {
				t.Error("Delete on empty bin succeeded")
			}
			for i := uint64(1); i <= 3; i++ {
				if !b.Insert(p, i*10) {
					t.Errorf("Insert %d failed", i)
				}
			}
			if b.Empty(p) {
				t.Error("bin with 3 items reports empty")
			}
			seen := map[uint64]bool{}
			for i := 0; i < 3; i++ {
				v, ok := b.Delete(p)
				if !ok {
					t.Fatalf("Delete %d failed", i)
				}
				seen[v] = true
			}
			if !seen[10] || !seen[20] || !seen[30] {
				t.Errorf("deleted set = %v", seen)
			}
			if !b.Empty(p) {
				t.Error("drained bin not empty")
			}
		})
}

func TestBinCapacity(t *testing.T) {
	var b *Bin
	runOn(t, 1,
		func(m *sim.Machine) { b = NewBin(m, 2) },
		func(p *sim.Proc) {
			if !b.Insert(p, 1) || !b.Insert(p, 2) {
				t.Fatal("inserts under capacity failed")
			}
			if b.Insert(p, 3) {
				t.Error("insert beyond capacity succeeded")
			}
		})
}

func TestBinConcurrentMultiset(t *testing.T) {
	const procs = 16
	const perProc = 20
	var b *Bin
	popped := make([][]uint64, procs)
	runOn(t, procs,
		func(m *sim.Machine) { b = NewBin(m, procs*perProc) },
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				b.Insert(p, uint64(id*perProc+i)+1)
				if v, ok := b.Delete(p); ok {
					popped[id] = append(popped[id], v)
				}
			}
		})
	// Every popped value must be one that was inserted, and popped once.
	seen := map[uint64]int{}
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	total := 0
	for v, n := range seen {
		if v == 0 || v > procs*perProc {
			t.Fatalf("popped alien value %d", v)
		}
		if n > 1 {
			t.Fatalf("value %d popped %d times", v, n)
		}
		total += n
	}
	if total > procs*perProc {
		t.Fatalf("popped %d values, more than inserted", total)
	}
}

func TestBinConcurrentDrainExact(t *testing.T) {
	const procs = 8
	const perProc = 25
	var (
		b   *Bin
		bar *barrier
	)
	popped := make([][]uint64, procs)
	var drained []uint64
	runOn(t, procs,
		func(m *sim.Machine) {
			b = NewBin(m, procs*perProc)
			bar = newBarrier(m)
		},
		func(p *sim.Proc) {
			id := p.ID()
			for i := 0; i < perProc; i++ {
				b.Insert(p, uint64(id*perProc+i)+1)
				if p.Rand(2) == 0 {
					if v, ok := b.Delete(p); ok {
						popped[id] = append(popped[id], v)
					}
				}
			}
			bar.wait(p, 1)
			if id == 0 {
				for {
					v, ok := b.Delete(p)
					if !ok {
						break
					}
					drained = append(drained, v)
				}
			}
		})
	seen := map[uint64]int{}
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for _, v := range drained {
		seen[v]++
	}
	if len(seen) != procs*perProc {
		t.Fatalf("got %d distinct values, want %d", len(seen), procs*perProc)
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %d seen %d times", v, n)
		}
	}
}

func TestCounterFaIConcurrent(t *testing.T) {
	const procs = 16
	const perProc = 25
	var (
		c *Counter
		m *sim.Machine
	)
	returns := make([]map[uint64]bool, procs)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			c = NewCounter(mm)
		},
		func(p *sim.Proc) {
			returns[p.ID()] = make(map[uint64]bool, perProc)
			for i := 0; i < perProc; i++ {
				returns[p.ID()][c.FaI(p)] = true
			}
		})
	if got := m.Word(c.val); got != procs*perProc {
		t.Fatalf("final counter = %d, want %d", got, procs*perProc)
	}
	// Returns must be a permutation of 0..procs*perProc-1.
	all := map[uint64]bool{}
	for _, rs := range returns {
		for v := range rs {
			if all[v] {
				t.Fatalf("duplicate FaI return %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != procs*perProc {
		t.Fatalf("distinct returns = %d, want %d", len(all), procs*perProc)
	}
}

func TestCounterBFaDRespectsBound(t *testing.T) {
	const procs = 8
	var (
		c *Counter
		m *sim.Machine
	)
	runOn(t, procs,
		func(mm *sim.Machine) {
			m = mm
			c = NewCounter(mm)
			mm.SetWord(c.val, 3) // fewer items than decrementers
		},
		func(p *sim.Proc) {
			c.BFaD(p, 0)
		})
	if got := m.Word(c.val); got != 0 {
		t.Fatalf("final counter = %d, want 0 (3 successes among 8 attempts)", got)
	}
}

func TestCounterBFaDReturnsSignalSuccess(t *testing.T) {
	const procs = 10
	var c *Counter
	rets := make([]uint64, procs)
	runOn(t, procs,
		func(m *sim.Machine) {
			c = NewCounter(m)
			m.SetWord(c.val, 4)
		},
		func(p *sim.Proc) {
			rets[p.ID()] = c.BFaD(p, 0)
		})
	succ := 0
	for _, r := range rets {
		if r > 0 {
			succ++
		}
	}
	if succ != 4 {
		t.Fatalf("%d successful decrements, want exactly 4", succ)
	}
}
