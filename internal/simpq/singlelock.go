package simpq

import "pq/internal/sim"

// SingleLock is the baseline of Figure 11 (left): a sequential array heap
// protected in its entirety by one MCS lock. It supports arbitrary
// priorities and is linearizable.
type SingleLock struct {
	npri int
	lock *MCSLock
	size sim.Addr
	pris sim.Addr // 1-based array of priorities
	vals sim.Addr // 1-based array of values
	cap  int

	// Host-side internals counters (no simulated cost).
	batchInserts int64 // InsertBatch calls
	batchDeletes int64 // DeleteMinBatch calls
}

// NewSingleLock builds the heap with room for maxItems elements.
func NewSingleLock(m *sim.Machine, npri, maxItems int) *SingleLock {
	q := &SingleLock{
		npri: npri,
		lock: NewMCSLock(m),
		size: m.Alloc(1),
		pris: m.Alloc(maxItems + 1),
		vals: m.Alloc(maxItems + 1),
		cap:  maxItems,
	}
	m.Label(q.size, 1, "singlelock.size")
	m.Label(q.pris, maxItems+1, "singlelock.heap")
	m.Label(q.vals, maxItems+1, "singlelock.heap")
	return q
}

// NumPriorities reports the fixed priority range.
func (q *SingleLock) NumPriorities() int { return q.npri }

// Metrics reports the global lock's acquire/wait/hold counters — the
// convoy behind this baseline's flat-at-best scaling curve.
func (q *SingleLock) Metrics() Metrics {
	m := Metrics{
		"batch_inserts": float64(q.batchInserts),
		"batch_deletes": float64(q.batchDeletes),
	}
	m.add("lock", q.lock.Metrics())
	return m
}

func (q *SingleLock) pri(p *sim.Proc, i uint64) uint64 { return p.Read(q.pris + sim.Addr(i)) }
func (q *SingleLock) val(p *sim.Proc, i uint64) uint64 { return p.Read(q.vals + sim.Addr(i)) }
func (q *SingleLock) set(p *sim.Proc, i, pr, v uint64) {
	p.Write(q.pris+sim.Addr(i), pr)
	p.Write(q.vals+sim.Addr(i), v)
}

// insertLocked sifts val up from a new last slot; the caller holds the
// global lock.
func (q *SingleLock) insertLocked(p *sim.Proc, pri int, val uint64) {
	n := p.Read(q.size)
	if n >= uint64(q.cap) {
		return // full: drop, mirroring the paper's bins
	}
	n++
	p.Write(q.size, n)
	i, pr := n, uint64(pri)
	for i > 1 {
		parent := i / 2
		ppri := q.pri(p, parent)
		if ppri <= pr {
			break
		}
		q.set(p, i, ppri, q.val(p, parent))
		i = parent
	}
	q.set(p, i, pr, val)
}

// deleteMinLocked removes the root and restores the heap by sifting the
// last element down; the caller holds the global lock.
func (q *SingleLock) deleteMinLocked(p *sim.Proc) (int, uint64, bool) {
	n := p.Read(q.size)
	if n == 0 {
		return 0, 0, false
	}
	outPri, out := q.pri(p, 1), q.val(p, 1)
	lastPri, lastVal := q.pri(p, n), q.val(p, n)
	p.Write(q.size, n-1)
	n--
	if n > 0 {
		i := uint64(1)
		for {
			l, r := 2*i, 2*i+1
			if l > n {
				break
			}
			child, cpri := l, q.pri(p, l)
			if r <= n {
				if rp := q.pri(p, r); rp < cpri {
					child, cpri = r, rp
				}
			}
			if cpri >= lastPri {
				break
			}
			q.set(p, i, cpri, q.val(p, child))
			i = child
		}
		q.set(p, i, lastPri, lastVal)
	}
	return int(outPri), out, true
}

// Insert adds val at priority pri under the global lock, sifting it up
// with the standard heap algorithm.
func (q *SingleLock) Insert(p *sim.Proc, pri int, val uint64) {
	q.lock.Acquire(p)
	q.insertLocked(p, pri, val)
	q.lock.Release(p)
}

// DeleteMin removes the root under the global lock and restores the heap
// by sifting the last element down.
func (q *SingleLock) DeleteMin(p *sim.Proc) (uint64, bool) {
	q.lock.Acquire(p)
	_, out, ok := q.deleteMinLocked(p)
	q.lock.Release(p)
	return out, ok
}

// InsertBatch adds every item under a single lock hold — the whole
// batch pays one MCS handoff instead of one per element.
func (q *SingleLock) InsertBatch(p *sim.Proc, items []BatchItem) {
	if len(items) == 0 {
		return
	}
	q.batchInserts++
	q.lock.Acquire(p)
	for _, it := range items {
		q.insertLocked(p, it.Pri, it.Val)
	}
	q.lock.Release(p)
}

// DeleteMinBatch removes up to k items under a single lock hold.
func (q *SingleLock) DeleteMinBatch(p *sim.Proc, k int) []BatchItem {
	if k < 1 {
		return nil
	}
	q.batchDeletes++
	var out []BatchItem
	q.lock.Acquire(p)
	for len(out) < k {
		pri, v, ok := q.deleteMinLocked(p)
		if !ok {
			break
		}
		out = append(out, BatchItem{Pri: pri, Val: v})
	}
	q.lock.Release(p)
	return out
}

var (
	_ Queue      = (*SingleLock)(nil)
	_ BatchQueue = (*SingleLock)(nil)
)
