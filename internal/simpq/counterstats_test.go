package simpq

import (
	"testing"

	"pq/internal/sim"
)

// TestCounterStatsBreakdown is a tuning diagnostic: it reports how funnel
// counter operations retire under a balanced mix at full concurrency for
// the bounded (eliminating) and unbounded (pure combining) counters.
func TestCounterStatsBreakdown(t *testing.T) {
	for _, bounded := range []bool{false, true} {
		m, err := sim.New(sim.DefaultConfig(256))
		if err != nil {
			t.Fatal(err)
		}
		c := NewFunnelCounter(m, DefaultFunnelParams(256), bounded, 0)
		m.SetWord(c.main, 1<<40)
		const ops = 30
		cycles := make([]int64, 256)
		_, err = m.Run(func(p *sim.Proc) {
			for i := 0; i < ops; i++ {
				p.LocalWork(50)
				t0 := p.Now()
				if p.Rand(2) == 0 {
					c.BFaD(p)
				} else {
					c.FaI(p)
				}
				cycles[p.ID()] += p.Now() - t0
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		var tot int64
		for _, v := range cycles {
			tot += v
		}
		t.Logf("bounded=%v mean=%d stats=%+v", bounded, tot/(256*ops), c.Stats)
	}
}
