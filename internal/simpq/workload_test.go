package simpq

import (
	"testing"

	"pq/internal/sim"
)

func TestPrefillSpreadsAcrossProcessors(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 10
	cfg.Prefill = 37       // deliberately not divisible by procs
	cfg.InsertFraction = 0 // all measured ops are deletes
	r, err := RunWorkload(AlgSimpleLinear, 8, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 80 deletes against 37 prefilled items: exactly 37 must succeed.
	if got := r.Deletes - r.FailedDeletes; got != 37 {
		t.Fatalf("successful deletes = %d, want 37", got)
	}
}

func TestStallInjectionSlowsWallClock(t *testing.T) {
	base := DefaultWorkload()
	base.OpsPerProc = 20
	r1, err := RunWorkload(AlgSimpleTree, 8, 8, base)
	if err != nil {
		t.Fatal(err)
	}
	stalled := base
	stalled.StallEvery = 2
	stalled.StallCycles = 5000
	r2, err := RunWorkload(AlgSimpleTree, 8, 8, stalled)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.FinalTime <= r1.Stats.FinalTime {
		t.Fatalf("stalls did not extend the run: %d vs %d", r2.Stats.FinalTime, r1.Stats.FinalTime)
	}
}

func TestSojournWorkload(t *testing.T) {
	m, err := sim.New(sim.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 30
	q := NewFunnelTreeDiscipline(m, 8, 8*30+1, DefaultFunnelParams(8), DefaultFunnelCutoff, false)
	r, err := SojournWorkload(m, q, cfg)
	if err != nil {
		t.Fatal(err)
	}
	succ := r.Latency.Deletes - r.Latency.FailedDeletes
	if r.Sojourn.Count != succ {
		t.Fatalf("sojourn samples = %d, want %d successful deletes", r.Sojourn.Count, succ)
	}
	if succ > 0 && (r.Sojourn.Min < 0 || r.Sojourn.Mean <= 0) {
		t.Fatalf("implausible sojourns: %+v", r.Sojourn)
	}
	if r.Latency.MeanAll <= 0 {
		t.Fatalf("no latency measured")
	}
}

func TestBarrierPhases(t *testing.T) {
	var (
		bar     *barrier
		entered []int64
	)
	const procs = 6
	entered = make([]int64, procs)
	runOn(t, procs,
		func(m *sim.Machine) { bar = newBarrier(m) },
		func(p *sim.Proc) {
			p.LocalWork(int64(p.ID()) * 100) // staggered arrivals
			bar.wait(p, 1)
			entered[p.ID()] = p.Now()
		})
	// Nobody may pass the barrier before the last arrival (t=500).
	for i, ts := range entered {
		if ts < 500 {
			t.Fatalf("proc %d passed the barrier at %d, before the last arrival", i, ts)
		}
	}
}
