package simpq

import (
	"testing"

	"pq/internal/sim"
)

// runOnOne drives a single-processor program on a fresh machine — enough
// to exercise batch plumbing deterministically without interleaving.
func runOnOne(t *testing.T, build func(m *sim.Machine) Queue, prog func(p *sim.Proc, q Queue)) {
	t.Helper()
	m, err := sim.New(sim.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	q := build(m)
	if _, err := m.Run(func(p *sim.Proc) { prog(p, q) }); err != nil {
		t.Fatal(err)
	}
}

// TestBatchSequentialSemantics checks, on one processor, that a batch
// insert followed by a batch delete behaves exactly like the equivalent
// single operations on every algorithm: all items come back, delete
// order is nondecreasing in priority, and a further delete fails.
func TestBatchSequentialSemantics(t *testing.T) {
	items := []BatchItem{
		{Pri: 5, Val: 50}, {Pri: 1, Val: 10}, {Pri: 3, Val: 30},
		{Pri: 1, Val: 11}, {Pri: 7, Val: 70}, {Pri: 0, Val: 1},
	}
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			runOnOne(t,
				func(m *sim.Machine) Queue { return Build(alg, m, 8, 64) },
				func(p *sim.Proc, q Queue) {
					InsertBatch(p, q, items)
					out := DeleteMinBatch(p, q, len(items)+3)
					if len(out) != len(items) {
						t.Errorf("%s: got %d items back, want %d", alg, len(out), len(items))
						return
					}
					seen := map[uint64]bool{}
					for _, it := range out {
						seen[it.Val] = true
					}
					for _, it := range items {
						if !seen[it.Val] {
							t.Errorf("%s: item %d lost", alg, it.Val)
						}
					}
					// Native batches report true priorities in delivery
					// order; the fallback path reports -1.
					if _, native := q.(BatchQueue); native {
						for i := 1; i < len(out); i++ {
							if out[i].Pri < out[i-1].Pri {
								t.Errorf("%s: delivery out of order: %v", alg, out)
								break
							}
						}
					}
					if _, ok := q.DeleteMin(p); ok {
						t.Errorf("%s: queue not empty after full batch drain", alg)
					}
				})
		})
	}
}

// TestBatchWorkloadConservation runs the standard benchmark at batch
// size 4 on every algorithm and checks the books: element counts scale
// with the batch size, and successful deletes never exceed inserts.
func TestBatchWorkloadConservation(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 20
	cfg.Batch = 4
	const procs = 8
	for _, alg := range Algorithms {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			r, err := RunWorkload(alg, procs, 8, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := r.Inserts + r.Deletes; got != procs*cfg.OpsPerProc*cfg.Batch {
				t.Fatalf("element ops = %d, want %d", got, procs*cfg.OpsPerProc*cfg.Batch)
			}
			if succ := r.Deletes - r.FailedDeletes; succ > r.Inserts {
				t.Fatalf("delivered %d items but only %d were inserted", succ, r.Inserts)
			}
		})
	}
}

// TestBatchWorkloadUsesNativePaths confirms the workload actually
// reaches the native fast paths: at batch size >1 the batch call
// counters of a native implementation must be nonzero.
func TestBatchWorkloadUsesNativePaths(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.OpsPerProc = 20
	cfg.Batch = 8
	for _, alg := range []Algorithm{AlgSingleLock, AlgSimpleLinear, AlgSimpleTree, AlgLinearFunnels, AlgFunnelTree} {
		alg := alg
		t.Run(string(alg), func(t *testing.T) {
			r, err := RunWorkload(alg, 8, 8, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if r.Internals == nil {
				t.Fatal("no internals metrics")
			}
			if r.Internals["batch_inserts"]+r.Internals["batch_deletes"] == 0 {
				t.Fatalf("native batch paths unused: %v", r.Internals)
			}
		})
	}
}

// TestBatchValidate rejects bad batch knobs.
func TestBatchValidate(t *testing.T) {
	cfg := DefaultWorkload()
	cfg.Batch = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative Batch accepted")
	}
	cfg.Batch = 2048
	if err := cfg.Validate(); err == nil {
		t.Fatal("oversized Batch accepted")
	}
}

// TestFunnelCounterMultiUnit drives multi-unit AddN/BSubN through a
// bounded funnel counter concurrently with unit operations on many
// simulated processors: the value must respect the bound and the books
// must balance at quiescence.
func TestFunnelCounterMultiUnit(t *testing.T) {
	const procs = 16
	m, err := sim.New(sim.DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	c := NewFunnelCounter(m, DefaultFunnelParams(procs), true, 0)
	added := make([]int64, procs)
	taken := make([]int64, procs)
	if _, err := m.Run(func(p *sim.Proc) {
		id := p.ID()
		for i := 0; i < 40; i++ {
			n := int64(i%4 + 1)
			if (i+id)%2 == 0 {
				c.AddN(p, n)
				added[id] += n
			} else {
				prev := int64(c.BSubN(p, n))
				if prev < 0 {
					t.Errorf("BSubN observed %d below bound", prev)
				}
				if prev < n {
					taken[id] += prev
				} else {
					taken[id] += n
				}
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	var totalAdded, totalTaken int64
	for i := 0; i < procs; i++ {
		totalAdded += added[i]
		totalTaken += taken[i]
	}
	// Value snapshot after Run: read from the machine's memory directly.
	got := int64(m.Word(c.main))
	if got < 0 {
		t.Fatalf("final value %d below bound", got)
	}
	if want := totalAdded - totalTaken; got != want {
		t.Fatalf("final value %d, want added(%d) - taken(%d) = %d", got, totalAdded, totalTaken, want)
	}
}
