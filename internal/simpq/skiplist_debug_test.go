package simpq

import (
	"fmt"
	"testing"

	"pq/internal/sim"
)

// TestSkipListLivelockDiagnostic reproduces the concurrent mixed workload
// with a low event budget and dumps list state if the simulation
// livelocks.
func TestSkipListLivelockDiagnostic(t *testing.T) {
	cfg := sim.DefaultConfig(16)
	cfg.MaxEvents = 3_000_000
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const perProc = 20
	q := NewSkipList(m, 8, 16*perProc+1)
	var trace []string
	q.trace = &trace
	bar := newBarrier(m)
	inserted := make([]int, 16)
	removed := make([]int, 16)
	_, err = m.Run(func(p *sim.Proc) {
		id := p.ID()
		for i := 0; i < perProc; i++ {
			if p.Rand(2) == 0 {
				pri := p.Rand(8)
				inserted[id]++
				q.Insert(p, pri, encVal(pri, id, i))
			} else if _, ok := q.DeleteMin(p); ok {
				removed[id]++
			}
		}
		bar.wait(p, 1)
		if id == 0 {
			for {
				if _, ok := q.DeleteMin(p); !ok {
					break
				}
				removed[id]++
			}
		}
	})
	nIns, nRem := 0, 0
	for i := range inserted {
		nIns += inserted[i]
		nRem += removed[i]
	}
	if err == nil && nIns != nRem {
		err = fmt.Errorf("lost items: inserted=%d removed=%d", nIns, nRem)
	}
	if err != nil {
		t.Logf("err=%v delBin=%d delLock=%d", err, m.Word(q.delBin), m.Word(q.delLock.word))
		for _, pk := range m.ParkedProcs() {
			kind := "?"
			for i, l := range q.links {
				if pk.Addr == l.lstate {
					kind = "lstate link " + string(rune('0'+i))
				}
				if pk.Addr == l.lock.word {
					kind = "lock link " + string(rune('0'+i))
				}
			}
			if pk.Addr == q.headLock.word {
				kind = "headLock"
			}
			t.Logf("parked: proc=%d addr=%d while=%d (%s) value=%d", pk.Proc, pk.Addr, pk.While, kind, m.Word(pk.Addr))
		}
		for lev := q.maxLevel - 1; lev >= 0; lev-- {
			row := []int{}
			n := m.Word(q.headFwd + sim.Addr(lev))
			for n != 0 && len(row) < 20 {
				row = append(row, int(n-1))
				n = m.Word(q.links[n-1].fwd + sim.Addr(lev))
			}
			t.Logf("level %d: %v", lev, row)
		}
		for i, l := range q.links {
			st := m.Word(l.lstate)
			lw := m.Word(l.lock.word)
			sz := m.Word(q.bins[i].size)
			if st != slUnthreaded || lw != 0 || sz != 0 {
				t.Logf("link %d: state=%d lock=%d binsize=%d level=%d", i, st, lw, sz, l.level)
			}
		}
		for _, line := range trace {
			if len(line) > 0 {
				t.Log(line)
			}
		}
		t.Fatalf("livelocked: %v", err)
	}
}
