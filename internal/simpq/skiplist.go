package simpq

import (
	"fmt"
	"math/rand"

	"pq/internal/sim"
)

// SkipList is the paper's bounded-range priority queue built from Pugh's
// skip list (Figure 12): one preallocated link per priority, each holding
// a bin. A link is threaded into the list only while its bin may hold
// items. Deletions go through a separate "delete bin" (following Johnson):
// the first processor to find it empty unlinks the first link of the list
// and publishes its bin, which keeps deletion contention away from the
// list structure.
//
// Link states: a link is threaded (in the list), unthreaded, or in
// transition, tracked by a small per-link state machine so concurrent
// inserts claim the (re)threading work exactly once.
type SkipList struct {
	npri     int
	maxLevel int
	headFwd  sim.Addr // maxLevel words; 0 = nil, else link index + 1
	headLock TASLock
	links    []skipLink
	bins     []*Bin
	delBin   sim.Addr // bin index + 1, or 0
	delLock  TASLock

	// trace, when non-nil, records structural transitions for debugging;
	// it costs no simulated cycles.
	trace *[]string

	// Host-side internals counters (no simulated cost).
	stats skipStats
}

// skipStats counts list-restructuring work and delete-path contention.
type skipStats struct {
	threads  int64 // links threaded into the list by inserters
	refills  int64 // delete-bin refills (unthread + publish)
	retries  int64 // DeleteMin loop restarts (bin raced empty, CAS lost...)
	refWaits int64 // deleters parked behind a concurrent refill
}

// Metrics reports restructuring counters plus the summed per-bin lock
// cycles (prefix "bin_lock") — delete-bin refill frequency is the
// mechanism metric behind this queue's delete-min latency.
func (q *SkipList) Metrics() Metrics {
	m := Metrics{
		"threads":      float64(q.stats.threads),
		"refills":      float64(q.stats.refills),
		"retries":      float64(q.stats.retries),
		"refill_waits": float64(q.stats.refWaits),
	}
	for _, b := range q.bins {
		m.addSum("bin", b.Metrics())
	}
	return m
}

type skipLink struct {
	level  int
	fwd    sim.Addr // level words
	lstate sim.Addr
	lock   TASLock
}

// Link states.
const (
	slUnthreaded = 0
	slThreading  = 1
	slThreaded   = 2
	slUnlinking  = 3
)

// NewSkipList builds the queue with npri priorities and per-bin capacity
// maxItems. Link heights are fixed at construction with Pugh's p=1/2
// distribution from a deterministic source.
func NewSkipList(m *sim.Machine, npri, maxItems int) *SkipList {
	maxLevel := 1
	for n := npri; n > 1; n /= 2 {
		maxLevel++
	}
	q := &SkipList{
		npri:     npri,
		maxLevel: maxLevel,
		headFwd:  m.Alloc(maxLevel),
		headLock: NewTASLock(m),
		links:    make([]skipLink, npri),
		bins:     make([]*Bin, npri),
		delBin:   m.Alloc(1),
		delLock:  NewTASLock(m),
	}
	rng := rand.New(rand.NewSource(0x5eed51))
	for i := range q.links {
		level := 1
		for level < maxLevel && rng.Intn(2) == 0 {
			level++
		}
		q.links[i] = skipLink{
			level:  level,
			fwd:    m.Alloc(level),
			lstate: m.Alloc(1),
			lock:   NewTASLock(m),
		}
		q.bins[i] = NewBin(m, maxItems)
	}
	m.Label(q.headFwd, maxLevel, "skiplist.head")
	m.Label(q.delBin, 1, "skiplist.delbin")
	return q
}

// NumPriorities reports the fixed priority range.
func (q *SkipList) NumPriorities() int { return q.npri }

// Insert adds val to its priority's bin and threads the link into the
// list if it is not already threaded.
func (q *SkipList) Insert(p *sim.Proc, pri int, val uint64) {
	q.bins[pri].Insert(p, val)
	q.tracef(p, "binned key=%d val=%#x", pri, val)
	st := p.Read(q.links[pri].lstate)
	q.tracef(p, "lstate-read key=%d st=%d", pri, st)
	if st == slUnthreaded && p.CAS(q.links[pri].lstate, slUnthreaded, slThreading) {
		q.tracef(p, "claimed key=%d", pri)
		q.thread(p, pri)
		q.stats.threads++
		p.Write(q.links[pri].lstate, slThreaded)
		q.tracef(p, "threaded key=%d", pri)
	}
}

// tracef appends a structural trace record when tracing is enabled.
func (q *SkipList) tracef(p *sim.Proc, format string, args ...any) {
	if q.trace == nil {
		return
	}
	*q.trace = append(*q.trace, fmt.Sprintf("t=%d p=%d ", p.Now(), p.ID())+fmt.Sprintf(format, args...))
}

// lockPred locks the predecessor of key at the given level, advancing past
// concurrently inserted links, and returns the locked predecessor
// (-1 = head) and its successor pointer value.
func (q *SkipList) lockPred(p *sim.Proc, pred int, key, lev int) (int, uint64) {
	for {
		var lockRef TASLock
		var fwdAddr sim.Addr
		if pred < 0 {
			lockRef, fwdAddr = q.headLock, q.headFwd+sim.Addr(lev)
		} else {
			lockRef, fwdAddr = q.links[pred].lock, q.links[pred].fwd+sim.Addr(lev)
		}
		lockRef.Acquire(p)
		if pred >= 0 {
			if st := p.Read(q.links[pred].lstate); st != slThreaded {
				// Predecessor is no longer (fully) in the list. If it is
				// in a transient state, park until that operation settles
				// (busy-restarting could starve it on the head lock); if
				// it was simply unthreaded, restart from the head at once
				// — nothing may ever re-thread it.
				lockRef.Release(p)
				if st == slThreading || st == slUnlinking {
					p.WaitWhile(q.links[pred].lstate, st)
				}
				pred = -1
				continue
			}
		}
		succ := p.Read(fwdAddr)
		if succ != 0 && int(succ-1) < key {
			// A smaller link slipped in: advance.
			lockRef.Release(p)
			pred = int(succ - 1)
			continue
		}
		return pred, succ
	}
}

// thread links the claimed link for key into the list bottom-up, per
// Pugh's concurrent insertion (lock the predecessor per level, validate,
// link).
func (q *SkipList) thread(p *sim.Proc, key int) {
	l := &q.links[key]
	// Search predecessors top-down (unlocked reads).
	update := make([]int, q.maxLevel)
	pred := -1
	for lev := q.maxLevel - 1; lev >= 0; lev-- {
		for {
			var succ uint64
			if pred < 0 {
				succ = p.Read(q.headFwd + sim.Addr(lev))
			} else {
				succ = p.Read(q.links[pred].fwd + sim.Addr(lev))
			}
			if succ == 0 || int(succ-1) >= key {
				break
			}
			pred = int(succ - 1)
		}
		update[lev] = pred
	}
	for lev := 0; lev < l.level; lev++ {
		lockedPred, succ := q.lockPred(p, update[lev], key, lev)
		p.Write(l.fwd+sim.Addr(lev), succ)
		if lockedPred < 0 {
			p.Write(q.headFwd+sim.Addr(lev), uint64(key)+1)
			q.headLock.Release(p)
		} else {
			p.Write(q.links[lockedPred].fwd+sim.Addr(lev), uint64(key)+1)
			q.links[lockedPred].lock.Release(p)
		}
	}
}

// unthread removes the link for key (which must be in state slUnlinking)
// from every level, top-down. The link was the minimum when claimed, but a
// smaller link may thread itself concurrently, so the predecessor at each
// level is re-found under locks rather than assumed to be the head.
func (q *SkipList) unthread(p *sim.Proc, key int) {
	l := &q.links[key]
	for lev := l.level - 1; lev >= 0; lev-- {
		pred := -1
		for {
			var lockRef TASLock
			var fwdAddr sim.Addr
			if pred < 0 {
				lockRef, fwdAddr = q.headLock, q.headFwd+sim.Addr(lev)
			} else {
				lockRef, fwdAddr = q.links[pred].lock, q.links[pred].fwd+sim.Addr(lev)
			}
			lockRef.Acquire(p)
			succ := p.Read(fwdAddr)
			if succ == uint64(key)+1 {
				// Lock the link itself (predecessor first — key order)
				// before reading its forward pointer: a threader holding
				// the link's lock may be concurrently linking a new node
				// behind it, and reading a stale pointer here would splice
				// that node out of the level.
				l.lock.Acquire(p)
				p.Write(fwdAddr, p.Read(l.fwd+sim.Addr(lev)))
				l.lock.Release(p)
				lockRef.Release(p)
				break
			}
			lockRef.Release(p)
			if succ != 0 && int(succ-1) < key {
				pred = int(succ - 1)
				continue
			}
			// key is not linked at this level (nothing to do).
			break
		}
	}
}

// DeleteMin removes an element from the delete bin, refilling it from the
// first threaded link when it runs dry.
func (q *SkipList) DeleteMin(p *sim.Proc) (uint64, bool) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			q.stats.retries++
		}
		db := p.Read(q.delBin)
		if db != 0 {
			if e, ok := q.bins[db-1].Delete(p); ok {
				q.tracef(p, "bin-deleted key=%d val=%#x", db-1, e)
				return e, true
			}
			q.tracef(p, "bin-empty key=%d", db-1)
		}
		if q.delLock.TryAcquire(p) {
			// Re-validate under the lock: another deleter may have already
			// repointed the delete bin, or an insert may have refilled the
			// current one. Moving the delete bin away from a non-empty bin
			// would strand its items.
			if cur := p.Read(q.delBin); cur != db || (cur != 0 && !q.bins[cur-1].Empty(p)) {
				q.delLock.Release(p)
				continue
			}
			first := p.Read(q.headFwd)
			if first == 0 {
				q.delLock.Release(p)
				// Nothing threaded and the delete bin is empty.
				return 0, false
			}
			key := int(first - 1)
			if !p.CAS(q.links[key].lstate, slThreaded, slUnlinking) {
				// Mid-thread by an inserter; park until its state settles.
				q.delLock.Release(p)
				p.WaitWhile(q.links[key].lstate, slThreading)
				continue
			}
			q.tracef(p, "unthread-start key=%d", key)
			q.unthread(p, key)
			q.stats.refills++
			p.Write(q.delBin, uint64(key)+1)
			p.Write(q.links[key].lstate, slUnthreaded)
			q.tracef(p, "unthread-done key=%d (delBin=%d)", key, key+1)
			q.delLock.Release(p)
			continue
		}
		// Someone else is refilling the delete bin; wait for it. Only the
		// lock holder may conclude the queue is empty — mid-refill the
		// list head is transiently nil while the delete bin is not yet
		// published, and that must not read as emptiness.
		q.stats.refWaits++
		p.WaitWhile(q.delLock.word, 1)
	}
}

var _ Queue = (*SkipList)(nil)
