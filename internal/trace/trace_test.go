package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"pq/internal/sim"
)

// contendedRun drives a small program with local work, hot-word traffic
// and parked waiting, exercising every engine-attributed phase.
func contendedRun(t *testing.T, col *Collector) sim.Stats {
	t.Helper()
	cfg := sim.DefaultConfig(4)
	if col != nil {
		cfg.Spans = col
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot := m.Alloc(1)
	flag := m.Alloc(1)
	st, err := m.Run(func(p *sim.Proc) {
		if p.ID() == 0 {
			p.LocalWork(200)
			p.Write(flag, 1) // wake the parked waiters
		} else {
			p.WaitWhile(flag, 0)
		}
		for i := 0; i < 20; i++ {
			p.LocalWork(10)
			start := p.Now()
			p.FetchAdd(hot, 1)
			p.OpSpan("bump", start)
			p.OpDone()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPhasesCovered(t *testing.T) {
	col := NewCollector(4)
	contendedRun(t, col)
	totals := col.PhaseTotals()
	for _, ph := range []sim.Phase{sim.PhaseLocalWork, sim.PhaseMemStall, sim.PhaseSpinWait} {
		if totals[ph] <= 0 {
			t.Errorf("phase %v: no cycles recorded (totals %v)", ph, totals)
		}
	}
	ops := col.OpTotals()
	if len(ops) != 1 || ops[0].Kind != "bump" || ops[0].Count != 4*20 {
		t.Fatalf("unexpected op totals %+v", ops)
	}
}

func TestTracingIsFree(t *testing.T) {
	bare := contendedRun(t, nil)
	col := NewCollector(4)
	traced := contendedRun(t, col)
	if traced.FinalTime != bare.FinalTime || traced.Events != bare.Events {
		t.Fatalf("tracing perturbed the run: traced %+v vs bare %+v", traced, bare)
	}
}

func TestDeterministicExport(t *testing.T) {
	digest := func() string {
		col := NewCollector(4)
		contendedRun(t, col)
		d, err := col.Digest()
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	if a, b := digest(), digest(); a != b {
		t.Fatalf("trace digests diverged: %s vs %s", a, b)
	}
}

func TestChromeTraceWellFormed(t *testing.T) {
	col := NewCollector(4)
	contendedRun(t, col)
	var buf bytes.Buffer
	if err := col.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) < 10 {
		t.Fatalf("suspiciously small trace: %d events", len(tr.TraceEvents))
	}
	seenOp, seenPhase := false, false
	for _, e := range tr.TraceEvents {
		switch {
		case e.Ph == "M":
			continue
		case e.Ph != "X":
			t.Fatalf("unexpected event type %q", e.Ph)
		case e.Ts < 0 || e.Dur < 0:
			t.Fatalf("negative ts/dur in %+v", e)
		}
		if e.Name == "bump" {
			seenOp = true
		}
		if e.Name == sim.PhaseMemStall.String() {
			seenPhase = true
		}
	}
	if !seenOp || !seenPhase {
		t.Fatalf("trace missing op (%v) or phase (%v) events", seenOp, seenPhase)
	}
}

func TestRingBounds(t *testing.T) {
	col := NewCollectorCap(1, 8)
	for i := 0; i < 20; i++ {
		col.RecordSpan(sim.Span{Proc: 0, Start: int64(i), End: int64(i + 1), Phase: sim.PhaseLocalWork})
	}
	spans := col.Spans(0)
	if len(spans) != 8 {
		t.Fatalf("ring holds %d spans, want 8", len(spans))
	}
	// Oldest-first, with the first 12 evicted.
	if spans[0].Start != 12 || spans[7].Start != 19 {
		t.Fatalf("ring kept wrong window: first %d last %d", spans[0].Start, spans[7].Start)
	}
	if col.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", col.Dropped())
	}
}
