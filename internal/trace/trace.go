// Package trace collects phase-attributed spans from a simulator run
// into bounded per-processor ring buffers and exports them as Chrome
// trace-event JSON, loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// The Collector implements sim.SpanRecorder; attach it with
// sim.Config.Spans. Recording costs no simulated cycles, so a traced
// run's FinalTime is identical to an untraced one, and because the
// engine records in deterministic order, two runs with the same seed and
// configuration export byte-identical traces (compare with Digest).
//
// Timestamps in the exported trace are simulated cycles presented as
// microseconds (1 cycle renders as 1 "us" in Perfetto's UI).
package trace

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pq/internal/sim"
)

// DefaultSpanCap is the per-processor ring capacity used by NewCollector:
// once a processor has recorded this many spans, each new span evicts its
// oldest one, keeping memory bounded on long runs.
const DefaultSpanCap = 1 << 15

// OpSpan is one application-level operation (insert, delete-min, ...)
// reported through sim.Proc.OpSpan.
type OpSpan struct {
	Proc       int
	Kind       string
	Start, End int64
}

// ring is a bounded drop-oldest buffer of spans.
type ring[T any] struct {
	buf     []T
	start   int // index of the oldest element
	n       int // elements stored
	dropped int64
}

func (r *ring[T]) push(v T) {
	if r.n < cap(r.buf) {
		r.buf = r.buf[:r.n+1]
		r.buf[r.n] = v
		r.n++
		return
	}
	r.buf[r.start] = v
	r.start = (r.start + 1) % r.n
	r.dropped++
}

// items returns the buffered elements oldest-first.
func (r *ring[T]) items() []T {
	out := make([]T, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%r.n])
	}
	return out
}

// Collector buffers spans per processor. It is not safe for concurrent
// use from arbitrary goroutines, but the simulator's single-baton engine
// guarantees all recording calls are serialized.
type Collector struct {
	spans []ring[sim.Span]
	ops   []ring[OpSpan]
}

// NewCollector sizes a collector for procs processors with the default
// per-processor ring capacity.
func NewCollector(procs int) *Collector {
	return NewCollectorCap(procs, DefaultSpanCap)
}

// NewCollectorCap sizes a collector with an explicit per-processor ring
// capacity (spans beyond it evict oldest-first).
func NewCollectorCap(procs, perProcCap int) *Collector {
	if procs < 1 {
		panic(fmt.Sprintf("trace: procs must be >= 1, got %d", procs))
	}
	if perProcCap < 1 {
		perProcCap = DefaultSpanCap
	}
	c := &Collector{
		spans: make([]ring[sim.Span], procs),
		ops:   make([]ring[OpSpan], procs),
	}
	for i := 0; i < procs; i++ {
		c.spans[i].buf = make([]sim.Span, 0, perProcCap)
		c.ops[i].buf = make([]OpSpan, 0, perProcCap)
	}
	return c
}

// RecordSpan implements sim.SpanRecorder.
func (c *Collector) RecordSpan(s sim.Span) {
	if s.Proc < 0 || s.Proc >= len(c.spans) {
		return
	}
	c.spans[s.Proc].push(s)
}

// RecordOpSpan implements sim.SpanRecorder.
func (c *Collector) RecordOpSpan(proc int, kind string, start, end int64) {
	if proc < 0 || proc >= len(c.ops) {
		return
	}
	c.ops[proc].push(OpSpan{Proc: proc, Kind: kind, Start: start, End: end})
}

// Procs returns the processor count the collector was sized for.
func (c *Collector) Procs() int { return len(c.spans) }

// Spans returns the buffered engine spans of one processor,
// oldest-first. Spans are recorded at completion time, so the list is
// ordered by End, not Start (a spin-wait span begins at park time).
func (c *Collector) Spans(proc int) []sim.Span { return c.spans[proc].items() }

// OpSpans returns the buffered operation spans of one processor,
// oldest-first.
func (c *Collector) OpSpans(proc int) []OpSpan { return c.ops[proc].items() }

// Dropped reports how many spans (engine + op) were evicted from the
// rings across all processors.
func (c *Collector) Dropped() int64 {
	var n int64
	for i := range c.spans {
		n += c.spans[i].dropped + c.ops[i].dropped
	}
	return n
}

// SpanCount reports how many spans (engine + op) are currently buffered.
func (c *Collector) SpanCount() int {
	n := 0
	for i := range c.spans {
		n += c.spans[i].n + c.ops[i].n
	}
	return n
}

// PhaseTotals sums buffered span durations by phase, in cycles. With an
// unsaturated ring this is a full account of where each processor's
// simulated time went.
func (c *Collector) PhaseTotals() map[sim.Phase]int64 {
	totals := make(map[sim.Phase]int64)
	for i := range c.spans {
		for _, s := range c.spans[i].items() {
			totals[s.Phase] += s.End - s.Start
		}
	}
	return totals
}

// OpTotals counts buffered operation spans and their total cycles, by
// kind, sorted by kind name.
func (c *Collector) OpTotals() []OpTotal {
	agg := map[string]*OpTotal{}
	for i := range c.ops {
		for _, o := range c.ops[i].items() {
			t := agg[o.Kind]
			if t == nil {
				t = &OpTotal{Kind: o.Kind}
				agg[o.Kind] = t
			}
			t.Count++
			t.Cycles += o.End - o.Start
		}
	}
	kinds := make([]string, 0, len(agg))
	for k := range agg {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]OpTotal, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, *agg[k])
	}
	return out
}

// OpTotal aggregates the operation spans of one kind.
type OpTotal struct {
	Kind   string
	Count  int
	Cycles int64
}

// chromeEvent is one trace-event in Chrome's JSON array format ("X" =
// complete event with a duration).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every buffered span as Chrome trace-event
// JSON. Operation spans and engine spans share each processor's track;
// Perfetto nests the contained engine spans under their operation. The
// output is deterministic: processors in order, spans oldest-first.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	var evs []chromeEvent
	evs = append(evs, chromeEvent{
		Name: "process_name", Cat: "__metadata", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "sim"},
	})
	for proc := range c.spans {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 0, Tid: proc,
			Args: map[string]any{"name": fmt.Sprintf("proc %d", proc)},
		})
		for _, o := range c.ops[proc].items() {
			evs = append(evs, chromeEvent{
				Name: o.Kind, Cat: "op", Ph: "X",
				Ts: o.Start, Dur: o.End - o.Start, Pid: 0, Tid: proc,
			})
		}
		for _, s := range c.spans[proc].items() {
			ev := chromeEvent{
				Name: s.Phase.String(), Cat: "phase", Ph: "X",
				Ts: s.Start, Dur: s.End - s.Start, Pid: 0, Tid: proc,
			}
			if s.Op != 0 && s.Phase != sim.PhaseLocalWork {
				ev.Args = map[string]any{"op": s.Op.String(), "addr": int64(s.Addr)}
			}
			evs = append(evs, ev)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeTrace{TraceEvents: evs, DisplayTimeUnit: "ms"})
}

// Digest returns a hex SHA-256 of the exported Chrome trace — the value
// determinism tests compare across runs.
func (c *Collector) Digest() (string, error) {
	h := sha256.New()
	if err := c.WriteChromeTrace(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
