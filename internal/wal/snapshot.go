package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot files capture the full live-item set at one log position so
// boot can skip replaying history the snapshot already contains. The
// format is:
//
//	8 bytes  magic "PQSNAP1\n"
//	uint64   LSN the snapshot covers (all records <= LSN are included)
//	uint64   next durable item id
//	uint32   item count
//	count ×  (uint64 id, uint32 pri, uint32 vlen, value bytes)
//	uint32   CRC32C over everything after the magic
//
// A snapshot is written to a .tmp file, fsynced, and renamed into
// place, so a crash mid-snapshot leaves at most an ignorable temp file;
// boot picks the newest snapshot whose CRC validates and falls back to
// the previous one otherwise (segment retention keeps the log tail the
// older snapshot needs, see Log retention).

var snapMagic = []byte("PQSNAP1\n")

// snapName returns the snapshot filename for a covered LSN; lexical
// order equals LSN order.
func snapName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// parseSnapName extracts the covered LSN, reporting ok=false for
// foreign files.
func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
	return v, err == nil
}

// encodeSnapshot builds the full file image.
func encodeSnapshot(lsn, nextID uint64, items []Item) []byte {
	size := len(snapMagic) + 8 + 8 + 4 + 4
	for _, it := range items {
		size += 16 + len(it.Value)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, snapMagic...)
	buf = binary.BigEndian.AppendUint64(buf, lsn)
	buf = binary.BigEndian.AppendUint64(buf, nextID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(items)))
	for _, it := range items {
		buf = binary.BigEndian.AppendUint64(buf, it.ID)
		buf = binary.BigEndian.AppendUint32(buf, it.Pri)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(it.Value)))
		buf = append(buf, it.Value...)
	}
	crc := crc32.Checksum(buf[len(snapMagic):], castagnoli)
	return binary.BigEndian.AppendUint32(buf, crc)
}

// decodeSnapshot parses and validates one snapshot file image.
func decodeSnapshot(data []byte) (lsn, nextID uint64, items []Item, err error) {
	if len(data) < len(snapMagic)+24 || string(data[:len(snapMagic)]) != string(snapMagic) {
		return 0, 0, nil, fmt.Errorf("wal: not a snapshot file")
	}
	body := data[len(snapMagic) : len(data)-4]
	crc := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return 0, 0, nil, fmt.Errorf("wal: snapshot CRC mismatch")
	}
	lsn = binary.BigEndian.Uint64(body)
	nextID = binary.BigEndian.Uint64(body[8:])
	count := binary.BigEndian.Uint32(body[16:])
	b := body[20:]
	if uint64(count)*16 > uint64(len(b)) {
		return 0, 0, nil, fmt.Errorf("wal: snapshot item count %d exceeds file size", count)
	}
	items = make([]Item, 0, count)
	for i := uint32(0); i < count; i++ {
		if len(b) < 16 {
			return 0, 0, nil, fmt.Errorf("wal: snapshot truncated at item %d", i)
		}
		it := Item{ID: binary.BigEndian.Uint64(b), Pri: binary.BigEndian.Uint32(b[8:])}
		n := binary.BigEndian.Uint32(b[12:])
		b = b[16:]
		if uint64(n) > uint64(len(b)) {
			return 0, 0, nil, fmt.Errorf("wal: snapshot truncated at item %d value", i)
		}
		it.Value = append([]byte(nil), b[:n]...)
		b = b[n:]
		items = append(items, it)
	}
	if len(b) != 0 {
		return 0, 0, nil, fmt.Errorf("wal: %d trailing snapshot bytes", len(b))
	}
	return lsn, nextID, items, nil
}

// writeSnapshotFile durably writes one snapshot into dir.
func writeSnapshotFile(dir string, lsn, nextID uint64, items []Item) error {
	tmp := filepath.Join(dir, snapName(lsn)+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(encodeSnapshot(lsn, nextID, items)); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, snapName(lsn))); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so renames and unlinks are durable; errors
// are ignored (some filesystems refuse directory fsync).
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// listSnapshots returns the snapshot LSNs present in dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var lsns []uint64
	for _, e := range ents {
		if lsn, ok := parseSnapName(e.Name()); ok {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] < lsns[j] })
	return lsns, nil
}

// loadNewestSnapshot reads the newest snapshot that validates, falling
// back to older ones when the newest is damaged. With no usable
// snapshot it returns lsn 0 and nextID 1 (durable ids start at 1).
func loadNewestSnapshot(dir string, logf func(string, ...any)) (lsn, nextID uint64, items []Item) {
	lsns, err := listSnapshots(dir)
	if err != nil {
		return 0, 1, nil
	}
	for i := len(lsns) - 1; i >= 0; i-- {
		data, err := os.ReadFile(filepath.Join(dir, snapName(lsns[i])))
		if err == nil {
			var derr error
			if lsn, nextID, items, derr = decodeSnapshot(data); derr == nil {
				return lsn, nextID, items
			}
			err = derr
		}
		logf("wal: snapshot %s unusable, falling back: %v", snapName(lsns[i]), err)
	}
	return 0, 1, nil
}
