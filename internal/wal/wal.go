// Package wal is pqd's durability subsystem: a segmented, CRC32C-framed
// append-only log of the service's logical queue operations
// (INSERT/INSERT_BATCH/DELETE_MIN/DELETE_MIN_BATCH) plus periodic
// snapshots of the live-item set, so a crashed daemon reconstructs any
// algorithm's queue on boot from snapshot + log tail.
//
// The log records logical promises, not physical structure: an insert
// record carries a durable item id with the priority and value, a
// delete record carries the ids that left the queue. Replay therefore
// maintains a multiset keyed by id, which makes recovery independent of
// the backing algorithm and of the (quiescently consistent) order in
// which overlapping operations really hit the shards.
//
// Commit durability is governed by a SyncPolicy knob:
//
//   - SyncAlways: every Append waits for an fsync covering its record.
//     Concurrent commits are batched by a single writer goroutine into
//     one fsync — group commit — so the cost amortizes under load.
//   - SyncInterval: appends return once written to the OS; a background
//     tick fsyncs every Interval. Bounded post-crash data loss.
//   - SyncNever: the OS decides. Cheapest, weakest.
//
// Segments rotate at SegmentBytes and are deleted once wholly covered
// by a retained snapshot; torn tails (truncated final record, bit
// flips, zero fill) are detected by the per-record CRC and replay stops
// cleanly at the last valid record.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pq/internal/obs"
)

// SyncPolicy selects when appended records reach stable storage.
type SyncPolicy uint8

const (
	// SyncAlways group-commits: every append waits for an fsync.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a timer; appends only wait for write(2).
	SyncInterval
	// SyncNever leaves flushing entirely to the OS.
	SyncNever
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	}
	return fmt.Sprintf("SyncPolicy(%d)", uint8(p))
}

// ParseSyncPolicy parses the -fsync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, interval or never)", s)
}

// Options configures Open.
type Options struct {
	// Dir holds the segments and snapshots of one queue's log.
	Dir string
	// Policy is the fsync discipline. Default SyncAlways.
	Policy SyncPolicy
	// Interval is the SyncInterval flush period. Default 10ms.
	Interval time.Duration
	// SegmentBytes rotates the active segment past this size.
	// Default 16 MiB.
	SegmentBytes int64
	// SnapshotRetain keeps this many snapshots; segment retention is
	// computed against the oldest retained one so boot can fall back to
	// it if the newest is damaged. Default 2.
	SnapshotRetain int
	// Logf receives recovery and retention diagnostics; nil discards.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, receives fsync wall time and group-commit
	// batch sizes from the writer goroutine (see obs.WALMetrics). The
	// recording path is allocation-free; nil disables it.
	Metrics *obs.WALMetrics
}

func (o *Options) normalize() error {
	if o.Dir == "" {
		return errors.New("wal: Options.Dir is required")
	}
	if o.Interval <= 0 {
		o.Interval = 10 * time.Millisecond
	}
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 16 << 20
	}
	if o.SnapshotRetain < 1 {
		o.SnapshotRetain = 2
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// Recovery reports what Open reconstructed.
type Recovery struct {
	// Items is the live multiset: every acked insert not yet deleted.
	Items []Item
	// SnapshotLSN is the log position the loaded snapshot covered
	// (0 when booting from the log alone).
	SnapshotLSN uint64
	// Replayed is how many log records were applied on top of the
	// snapshot; a boot after a graceful shutdown replays zero.
	Replayed int
	// Torn reports that tail damage (truncated record, bit flip, zero
	// fill) was found and replay stopped at the last valid record.
	Torn bool
}

// Stats is a point-in-time summary for STATS plumbing.
type Stats struct {
	Policy               string
	LastLSN              uint64
	SnapshotLSN          uint64
	Segments             int
	WALBytes             int64
	Appends              uint64
	Syncs                uint64
	Snapshots            uint64
	RecordsSinceSnapshot uint64
	RecoveredItems       int
	ReplayedRecords      int
	TornTail             bool
	// Failed reports a poisoned log: a write or fsync error occurred
	// and every subsequent append is refused (see ErrPoisoned).
	Failed bool
}

// ErrClosed reports appends after Close.
var ErrClosed = errors.New("wal: closed")

// ErrPoisoned reports operations on a log that has seen a write or
// fsync failure. Once a record's bytes may have reached the OS but
// their durability is unknown, an in-memory rollback can no longer be
// trusted to match post-crash replay, so the log refuses every
// subsequent append and snapshot — the standard WAL discipline for
// fsync-failure ambiguity.
var ErrPoisoned = errors.New("wal: log poisoned by write/fsync failure")

// segment is one live log file.
type segment struct {
	firstLSN uint64
	path     string
	bytes    int64
}

func segName(firstLSN uint64) string { return fmt.Sprintf("wal-%016x.seg", firstLSN) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg"), 16, 64)
	return v, err == nil
}

// reqKind discriminates writer requests.
type reqKind uint8

const (
	reqAppend reqKind = iota
	reqSync           // interval tick
	reqSnapshot
	reqClose
)

type request struct {
	kind    reqKind
	payload []byte // reqAppend: encoded record payload, LSN unpatched
	items   []Item // reqSnapshot
	done    chan error
}

// Log is one queue's write-ahead log. All methods are safe for
// concurrent use; a single writer goroutine owns the files and batches
// concurrent commits into shared fsyncs.
type Log struct {
	opts Options

	reqs   chan request
	wdone  chan struct{}
	tstop  chan struct{}
	nextID atomic.Uint64

	clMu   sync.RWMutex
	closed bool

	// Writer-owned state.
	f         *os.File
	segs      []segment
	nextLSN   uint64
	failed    error  // sticky ErrPoisoned-wrapped write/fsync failure
	sinceSync uint64 // records appended since the last fsync (group-commit size)

	poisoned atomic.Bool // published copy of failed != nil, for Stats

	// Published for Stats.
	lastLSN   atomic.Uint64
	snapLSN   atomic.Uint64
	walBytes  atomic.Int64
	segCount  atomic.Int64
	appends   atomic.Uint64
	syncs     atomic.Uint64
	snapshots atomic.Uint64
	sinceSnap atomic.Uint64

	recoveredItems int
	replayed       int
	torn           bool
}

// Open recovers the log in opts.Dir (creating it if absent) and starts
// the writer. The returned Recovery carries the reconstructed live-item
// multiset for the caller to load into its queue.
func Open(opts Options) (*Log, Recovery, error) {
	if err := opts.normalize(); err != nil {
		return nil, Recovery{}, err
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	// A crash mid-snapshot leaves a .tmp file; it was never linked into
	// the recovery chain, so drop it.
	if tmps, err := filepath.Glob(filepath.Join(opts.Dir, "*.tmp")); err == nil {
		for _, t := range tmps {
			os.Remove(t)
		}
	}

	snapLSN, nextID, snapItems := loadNewestSnapshot(opts.Dir, opts.Logf)
	live := make(map[uint64]Item, len(snapItems))
	for _, it := range snapItems {
		live[it.ID] = it
	}

	l := &Log{
		opts:  opts,
		reqs:  make(chan request, 256),
		wdone: make(chan struct{}),
		tstop: make(chan struct{}),
	}
	l.snapLSN.Store(snapLSN)

	rec, err := l.replaySegments(snapLSN, live, &nextID)
	if err != nil {
		return nil, Recovery{}, err
	}
	rec.SnapshotLSN = snapLSN

	rec.Items = make([]Item, 0, len(live))
	for _, it := range live {
		rec.Items = append(rec.Items, it)
	}
	// Deterministic load order (by id = insertion order) keeps restarts
	// reproducible even though the queue itself doesn't care.
	sort.Slice(rec.Items, func(i, j int) bool { return rec.Items[i].ID < rec.Items[j].ID })

	l.nextID.Store(nextID)
	l.recoveredItems = len(rec.Items)
	l.replayed = rec.Replayed
	l.torn = rec.Torn

	go l.writer()
	if opts.Policy == SyncInterval {
		go l.ticker()
	}
	return l, rec, nil
}

// replaySegments scans the on-disk segments, applies records beyond
// snapLSN to live, truncates tail damage, and leaves the log positioned
// for appending. Called once from Open, before the writer starts.
func (l *Log) replaySegments(snapLSN uint64, live map[uint64]Item, nextID *uint64) (Recovery, error) {
	var rec Recovery
	ents, err := os.ReadDir(l.opts.Dir)
	if err != nil {
		return rec, err
	}
	var segs []segment
	for _, e := range ents {
		if first, ok := parseSegName(e.Name()); ok {
			segs = append(segs, segment{firstLSN: first, path: filepath.Join(l.opts.Dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })

	lastLSN := snapLSN
	var kept []segment
	endLSN := snapLSN // record-chain end of the last kept segment
	for i := 0; i < len(segs); i++ {
		s := segs[i]
		if s.firstLSN > endLSN+1 && s.firstLSN > snapLSN+1 {
			// The segment neither chains from its predecessor nor from
			// the snapshot: the records in between are gone, so it and
			// everything after it are unreachable.
			rec.Torn = true
			for _, orphan := range segs[i:] {
				l.opts.Logf("wal: dropping segment %s: lsn gap after %d",
					filepath.Base(orphan.path), endLSN)
				os.Remove(orphan.path)
			}
			break
		}
		data, err := os.ReadFile(s.path)
		if err != nil {
			return rec, err
		}
		expect := s.firstLSN
		valid, damaged, err := scanSegment(data, func(r record) error {
			if r.lsn != expect {
				// An LSN gap means the file does not line up with its
				// name or its predecessor — treat like tail damage.
				return errTruncated
			}
			expect++
			if r.lsn > snapLSN {
				applyRecord(live, r, nextID)
				rec.Replayed++
				lastLSN = r.lsn
			} else if r.lsn > lastLSN {
				lastLSN = r.lsn
			}
			return nil
		})
		if err != nil {
			if errors.Is(err, errTruncated) {
				damaged = true
			} else {
				return rec, err
			}
		}
		if !damaged {
			s.bytes = int64(len(data))
			kept = append(kept, s)
			endLSN = expect - 1
			continue
		}
		rec.Torn = true
		if err := os.Truncate(s.path, int64(valid)); err != nil {
			return rec, err
		}
		s.bytes = int64(valid)
		kept = append(kept, s)
		endLSN = expect - 1
		// The records lost here are [expect, next.firstLSN). When the
		// next segment chains from at or below snapLSN+1, every lost
		// record's effect is already in the loaded snapshot, so replay
		// safely continues through the later segments. Otherwise they
		// are unreachable (their records' effects may depend on the
		// lost ones) and are retired so appends continue from a
		// consistent position.
		if i+1 < len(segs) && expect <= segs[i+1].firstLSN && segs[i+1].firstLSN <= snapLSN+1 {
			l.opts.Logf("wal: %s: damage at offset %d covered by snapshot lsn %d; keeping later segments",
				filepath.Base(s.path), valid, snapLSN)
			continue
		}
		for _, orphan := range segs[i+1:] {
			l.opts.Logf("wal: dropping segment %s orphaned by damage in %s",
				filepath.Base(orphan.path), filepath.Base(s.path))
			os.Remove(orphan.path)
		}
		l.opts.Logf("wal: %s: tail damage at offset %d, replay stops at lsn %d",
			filepath.Base(s.path), valid, lastLSN)
		break
	}

	l.nextLSN = lastLSN + 1
	l.lastLSN.Store(lastLSN)

	// Appending is only safe into a file whose record chain ends exactly
	// at nextLSN-1; anything else (truncation into a snapshot-covered
	// region, a tail the OS lost under a weak fsync policy) would put the
	// new record after an in-file LSN gap, and the next boot would
	// truncate it away as damage. Cut over to a fresh segment instead.
	if len(kept) == 0 || endLSN != lastLSN {
		kept = append(kept, segment{firstLSN: l.nextLSN, path: filepath.Join(l.opts.Dir, segName(l.nextLSN))})
	}
	active := &kept[len(kept)-1]
	f, err := os.OpenFile(active.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return rec, err
	}
	l.f = f
	l.segs = kept
	var total int64
	for _, s := range kept {
		total += s.bytes
	}
	l.walBytes.Store(total)
	l.segCount.Store(int64(len(kept)))
	return rec, nil
}

// applyRecord folds one replayed record into the live multiset.
func applyRecord(live map[uint64]Item, r record, nextID *uint64) {
	for _, it := range r.items {
		live[it.ID] = it
		if it.ID >= *nextID {
			*nextID = it.ID + 1
		}
	}
	for _, id := range r.ids {
		delete(live, id)
	}
}

// AllocIDs reserves n durable item ids and returns the first. Ids are
// assigned before the insert record is appended so the record can carry
// them.
func (l *Log) AllocIDs(n int) uint64 {
	return l.nextID.Add(uint64(n)) - uint64(n)
}

// AppendInsert logs that items entered the queue. It returns once the
// record is durable per the sync policy; concurrent appends share
// fsyncs (group commit).
func (l *Log) AppendInsert(items []Item) error {
	if len(items) == 0 {
		return nil
	}
	return l.submit(request{kind: reqAppend, payload: encodeInsert(items), done: make(chan error, 1)})
}

// AppendDelete logs that the items with these durable ids left the
// queue, with the same durability contract as AppendInsert.
func (l *Log) AppendDelete(ids []uint64) error {
	if len(ids) == 0 {
		return nil
	}
	return l.submit(request{kind: reqAppend, payload: encodeDelete(ids), done: make(chan error, 1)})
}

// Snapshot durably writes the full live-item set (the caller must have
// quiesced mutations so items is consistent with everything appended),
// then rotates the active segment and deletes segments and snapshots
// made redundant by retention.
func (l *Log) Snapshot(items []Item) error {
	return l.submit(request{kind: reqSnapshot, items: items, done: make(chan error, 1)})
}

// Close seals the log: outstanding appends complete, the active
// segment is fsynced, and the files are closed.
func (l *Log) Close() error {
	l.clMu.Lock()
	if l.closed {
		l.clMu.Unlock()
		return nil
	}
	l.closed = true
	close(l.tstop)
	req := request{kind: reqClose, done: make(chan error, 1)}
	l.reqs <- req
	l.clMu.Unlock()
	err := <-req.done
	<-l.wdone
	return err
}

func (l *Log) submit(req request) error {
	l.clMu.RLock()
	if l.closed {
		l.clMu.RUnlock()
		return ErrClosed
	}
	l.reqs <- req
	l.clMu.RUnlock()
	return <-req.done
}

// Stats snapshots the log's counters.
func (l *Log) Stats() Stats {
	return Stats{
		Policy:               l.opts.Policy.String(),
		LastLSN:              l.lastLSN.Load(),
		SnapshotLSN:          l.snapLSN.Load(),
		Segments:             int(l.segCount.Load()),
		WALBytes:             l.walBytes.Load(),
		Appends:              l.appends.Load(),
		Syncs:                l.syncs.Load(),
		Snapshots:            l.snapshots.Load(),
		RecordsSinceSnapshot: l.sinceSnap.Load(),
		RecoveredItems:       l.recoveredItems,
		ReplayedRecords:      l.replayed,
		TornTail:             l.torn,
		Failed:               l.poisoned.Load(),
	}
}

// ticker drives SyncInterval flushes.
func (l *Log) ticker() {
	t := time.NewTicker(l.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-l.tstop:
			return
		case <-t.C:
			select {
			case l.reqs <- request{kind: reqSync}:
			default: // writer busy; the next tick will catch up
			}
		}
	}
}

// writer is the single goroutine owning the log files. It drains
// whatever requests are immediately available, writes them as one
// batch, fsyncs once if the policy demands it, and only then completes
// every request in the batch — the group commit.
func (l *Log) writer() {
	defer close(l.wdone)
	batch := make([]request, 0, 64)
	for req := range l.reqs {
		batch = append(batch[:0], req)
	drain:
		for len(batch) < cap(batch) {
			select {
			case r2 := <-l.reqs:
				batch = append(batch, r2)
			default:
				break drain
			}
		}
		closing := l.handleBatch(batch)
		if closing {
			return
		}
	}
}

// poison marks the log permanently failed after a write or fsync
// error. The failed bytes may already sit in the OS page cache and
// become durable anyway, so continuing to append (or to roll back in
// memory) would let post-crash replay diverge from the history clients
// observed; refusing everything keeps the two consistent.
func (l *Log) poison(err error) {
	if l.failed != nil {
		return
	}
	l.failed = fmt.Errorf("%w: %v", ErrPoisoned, err)
	l.poisoned.Store(true)
	l.opts.Logf("wal: %v — refusing all further appends", l.failed)
}

// handleBatch processes one drained batch; it reports true once a
// close request has been honored.
func (l *Log) handleBatch(batch []request) (closing bool) {
	if l.failed != nil {
		for _, r := range batch {
			switch r.kind {
			case reqAppend, reqSnapshot:
				r.done <- l.failed
			case reqClose:
				// No final fsync: after an fsync failure the kernel may
				// have dropped the dirty pages, and a "successful" retry
				// would only hide that. Just release the file.
				l.f.Close()
				r.done <- l.failed
				closing = true
			}
		}
		return closing
	}

	var appendErr error
	needSync := false
	wrote := false

	// Phase 1: write every append in the batch.
	var buf []byte
	var pending []request
	flush := func() {
		if len(buf) == 0 {
			return
		}
		if appendErr == nil {
			_, appendErr = l.f.Write(buf)
			if appendErr == nil {
				seg := &l.segs[len(l.segs)-1]
				seg.bytes += int64(len(buf))
				l.walBytes.Add(int64(len(buf)))
				wrote = true
			}
		}
		buf = buf[:0]
	}
	for _, r := range batch {
		switch r.kind {
		case reqAppend:
			if appendErr != nil {
				r.done <- appendErr
				continue
			}
			if l.segs[len(l.segs)-1].bytes+int64(len(buf)) > l.opts.SegmentBytes {
				flush()
				if appendErr == nil {
					appendErr = l.rotate()
				}
				if appendErr != nil {
					r.done <- appendErr
					continue
				}
			}
			buf = appendRecord(buf, r.payload, l.nextLSN)
			l.nextLSN++
			l.appends.Add(1)
			l.sinceSnap.Add(1)
			l.sinceSync++
			pending = append(pending, r)
		case reqSync:
			needSync = true
		case reqSnapshot, reqClose:
			// Handled in phase 2, after pending appends are resolved.
		}
	}
	flush()
	if appendErr == nil && wrote {
		l.lastLSN.Store(l.nextLSN - 1)
	}

	// Phase 2: make the batch durable per policy, then release waiters.
	if appendErr == nil && wrote && (l.opts.Policy == SyncAlways || needSync) {
		appendErr = l.sync()
	} else if needSync && !wrote && l.opts.Policy == SyncInterval {
		if err := l.sync(); err != nil {
			l.poison(err) // tick with nothing new: cheap, keeps the tail bounded
		}
	}
	if appendErr != nil {
		l.poison(appendErr)
	}
	for _, r := range pending {
		r.done <- appendErr
	}

	// Phase 3: snapshots and close, now that the log position is fixed.
	for _, r := range batch {
		switch r.kind {
		case reqSnapshot:
			if l.failed != nil {
				r.done <- l.failed
			} else {
				r.done <- l.snapshotNow(r.items)
			}
		case reqClose:
			err := l.failed
			if err == nil {
				err = l.sync()
			}
			if cerr := l.f.Close(); err == nil {
				err = cerr
			}
			r.done <- err
			closing = true
		}
	}
	return closing
}

// appendRecord frames one payload (patching in its LSN) onto buf.
func appendRecord(buf, payload []byte, lsn uint64) []byte {
	binary.BigEndian.PutUint64(payload[lsnOffset:], lsn)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, castagnoli))
	return append(buf, payload...)
}

func (l *Log) sync() error {
	var t0 time.Time
	m := l.opts.Metrics
	if m != nil && m.FsyncNanos != nil {
		t0 = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if m != nil {
		if m.FsyncNanos != nil {
			m.FsyncNanos.Observe(0, time.Since(t0).Nanoseconds())
		}
		// Records this fsync made durable — the group-commit batch
		// size. Interval/never ticks with nothing new record a 0,
		// which is itself informative (idle flushes).
		if m.CommitRecords != nil {
			m.CommitRecords.Observe(0, int64(l.sinceSync))
		}
	}
	l.sinceSync = 0
	l.syncs.Add(1)
	return nil
}

// rotate seals the active segment and opens a fresh one starting at
// nextLSN.
func (l *Log) rotate() error {
	if last := &l.segs[len(l.segs)-1]; last.bytes == 0 && last.firstLSN == l.nextLSN {
		// Already cut at this boundary (e.g. a snapshot with no records
		// since the previous rotation). Rotating again would register a
		// second segment with the SAME path, and retention would then
		// unlink the active file — losing every append written after it.
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	seg := segment{firstLSN: l.nextLSN, path: filepath.Join(l.opts.Dir, segName(l.nextLSN))}
	f, err := os.OpenFile(seg.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.segs = append(l.segs, seg)
	l.segCount.Store(int64(len(l.segs)))
	syncDir(l.opts.Dir)
	return nil
}

// snapshotNow writes a snapshot covering everything appended so far,
// rotates so the tail is cut at the snapshot boundary, and applies
// retention. Runs on the writer goroutine.
func (l *Log) snapshotNow(items []Item) error {
	lsn := l.nextLSN - 1
	if err := l.sync(); err != nil {
		l.poison(err) // the log file's own fsync failed, not the snapshot's
		return l.failed
	}
	if err := writeSnapshotFile(l.opts.Dir, lsn, l.nextID.Load(), items); err != nil {
		return err // tmp file discarded; the log itself is still sound
	}
	l.snapshots.Add(1)
	l.snapLSN.Store(lsn)
	l.sinceSnap.Store(0)
	if err := l.rotate(); err != nil {
		l.poison(err)
		return l.failed
	}
	l.retain()
	return nil
}

// retain deletes snapshots beyond SnapshotRetain and segments wholly
// covered by the oldest retained snapshot (so a fallback boot from that
// snapshot still finds every record it needs).
func (l *Log) retain() {
	lsns, err := listSnapshots(l.opts.Dir)
	if err != nil {
		return
	}
	for len(lsns) > l.opts.SnapshotRetain {
		os.Remove(filepath.Join(l.opts.Dir, snapName(lsns[0])))
		lsns = lsns[1:]
	}
	if len(lsns) == 0 {
		return
	}
	coverLSN := lsns[0]
	kept := l.segs[:0]
	for i := range l.segs {
		covered := i+1 < len(l.segs) && l.segs[i+1].firstLSN <= coverLSN+1
		if covered {
			l.walBytes.Add(-l.segs[i].bytes)
			if err := os.Remove(l.segs[i].path); err != nil {
				l.opts.Logf("wal: retention: %v", err)
			}
		} else {
			kept = append(kept, l.segs[i])
		}
	}
	l.segs = kept
	l.segCount.Store(int64(len(l.segs)))
	syncDir(l.opts.Dir)
}
