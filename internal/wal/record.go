package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk record framing. Every record in a segment is:
//
//	uint32  payload length (big-endian)
//	uint32  CRC32C of the payload (Castagnoli)
//	...     payload
//
// and every payload starts with:
//
//	uint8   op code
//	uint64  LSN (monotone across segments, never reset)
//
// followed by the op-specific body. The length field of a valid record
// is always at least recMinPayload bytes — a zero-filled tail therefore
// cannot masquerade as an empty record whose empty-payload CRC (zero)
// would match, and replay treats any undersized length as end-of-log.

// Op codes. They mirror the wire protocol's logical operations: the log
// records what the service promised, not how a particular algorithm
// stored it, which is what lets replay reconstruct any algorithm's
// queue.
const (
	opInsert      = 0x01 // one item: id, pri, value
	opInsertBatch = 0x02 // n × (id, pri, value)
	opDelete      = 0x03 // one id
	opDeleteBatch = 0x04 // n × id
)

// MaxRecord bounds one record's payload so a corrupt length prefix
// cannot force an unbounded allocation during replay. It comfortably
// holds the largest batch a single wire frame can carry.
const MaxRecord = 8 << 20

// recMinPayload is op(1) + lsn(8) + at least one more body byte's worth
// of structure; the smallest real record (opDelete) is 17 bytes.
const recMinPayload = 9

// recHeader is the length + CRC prefix before the payload.
const recHeader = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Item is one durable queue entry: the server-assigned durable id, the
// global priority, and the value bytes.
type Item struct {
	ID    uint64
	Pri   uint32
	Value []byte
}

// lsnOffset is where the writer patches the record's LSN into a
// pre-encoded payload (right after the op byte).
const lsnOffset = 1

// encodeInsert builds an insert payload with a placeholder LSN.
func encodeInsert(items []Item) []byte {
	if len(items) == 1 {
		it := items[0]
		p := make([]byte, 0, recMinPayload+12+len(it.Value))
		p = append(p, opInsert)
		p = binary.BigEndian.AppendUint64(p, 0)
		p = binary.BigEndian.AppendUint64(p, it.ID)
		p = binary.BigEndian.AppendUint32(p, it.Pri)
		p = binary.BigEndian.AppendUint32(p, uint32(len(it.Value)))
		return append(p, it.Value...)
	}
	size := recMinPayload + 4
	for _, it := range items {
		size += 16 + len(it.Value)
	}
	p := make([]byte, 0, size)
	p = append(p, opInsertBatch)
	p = binary.BigEndian.AppendUint64(p, 0)
	p = binary.BigEndian.AppendUint32(p, uint32(len(items)))
	for _, it := range items {
		p = binary.BigEndian.AppendUint64(p, it.ID)
		p = binary.BigEndian.AppendUint32(p, it.Pri)
		p = binary.BigEndian.AppendUint32(p, uint32(len(it.Value)))
		p = append(p, it.Value...)
	}
	return p
}

// encodeDelete builds a delete payload with a placeholder LSN.
func encodeDelete(ids []uint64) []byte {
	if len(ids) == 1 {
		p := make([]byte, 0, recMinPayload+8)
		p = append(p, opDelete)
		p = binary.BigEndian.AppendUint64(p, 0)
		return binary.BigEndian.AppendUint64(p, ids[0])
	}
	p := make([]byte, 0, recMinPayload+4+8*len(ids))
	p = append(p, opDeleteBatch)
	p = binary.BigEndian.AppendUint64(p, 0)
	p = binary.BigEndian.AppendUint32(p, uint32(len(ids)))
	for _, id := range ids {
		p = binary.BigEndian.AppendUint64(p, id)
	}
	return p
}

// record is one decoded log record.
type record struct {
	op  uint8
	lsn uint64
	// items is populated for insert ops, ids for delete ops.
	items []Item
	ids   []uint64
}

// errTruncated marks a payload whose body does not match its own
// structure — during replay it is treated like any other tail damage.
var errTruncated = fmt.Errorf("wal: truncated record body")

// decodeRecord parses one payload (after the length/CRC prefix has been
// validated).
func decodeRecord(p []byte) (record, error) {
	if len(p) < recMinPayload {
		return record{}, errTruncated
	}
	r := record{op: p[0], lsn: binary.BigEndian.Uint64(p[1:9])}
	b := p[9:]
	u32 := func() (uint32, bool) {
		if len(b) < 4 {
			return 0, false
		}
		v := binary.BigEndian.Uint32(b)
		b = b[4:]
		return v, true
	}
	u64 := func() (uint64, bool) {
		if len(b) < 8 {
			return 0, false
		}
		v := binary.BigEndian.Uint64(b)
		b = b[8:]
		return v, true
	}
	item := func() (Item, bool) {
		var it Item
		var ok bool
		if it.ID, ok = u64(); !ok {
			return it, false
		}
		if it.Pri, ok = u32(); !ok {
			return it, false
		}
		n, ok := u32()
		if !ok || uint64(n) > uint64(len(b)) {
			return it, false
		}
		it.Value = append([]byte(nil), b[:n]...)
		b = b[n:]
		return it, true
	}
	switch r.op {
	case opInsert:
		it, ok := item()
		if !ok {
			return r, errTruncated
		}
		r.items = []Item{it}
	case opInsertBatch:
		n, ok := u32()
		if !ok || uint64(n)*16 > uint64(len(b)) {
			return r, errTruncated
		}
		r.items = make([]Item, 0, n)
		for i := uint32(0); i < n; i++ {
			it, ok := item()
			if !ok {
				return r, errTruncated
			}
			r.items = append(r.items, it)
		}
	case opDelete:
		id, ok := u64()
		if !ok {
			return r, errTruncated
		}
		r.ids = []uint64{id}
	case opDeleteBatch:
		n, ok := u32()
		if !ok || uint64(n)*8 > uint64(len(b)) {
			return r, errTruncated
		}
		r.ids = make([]uint64, 0, n)
		for i := uint32(0); i < n; i++ {
			id, ok := u64()
			if !ok {
				return r, errTruncated
			}
			r.ids = append(r.ids, id)
		}
	default:
		return r, fmt.Errorf("wal: unknown op 0x%02x", r.op)
	}
	if len(b) != 0 {
		return r, fmt.Errorf("wal: %d trailing bytes in record", len(b))
	}
	return r, nil
}

// scanSegment walks the records of one segment's bytes, calling apply
// for each valid record. It returns the byte offset just past the last
// valid record and whether the walk ended because of tail damage (a
// truncated, corrupt or zero-filled suffix) rather than a clean end of
// file. Replay stops at the first damaged record: everything after it
// is unreachable because LSNs would no longer be sequential.
func scanSegment(data []byte, apply func(record) error) (valid int, damaged bool, err error) {
	off := 0
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return off, false, nil
		}
		if len(rest) < recHeader {
			return off, true, nil
		}
		n := binary.BigEndian.Uint32(rest)
		crc := binary.BigEndian.Uint32(rest[4:8])
		if n < recMinPayload || n > MaxRecord {
			// Covers the zero-filled tail (length 0) and corrupt lengths.
			return off, true, nil
		}
		if uint64(len(rest)) < uint64(recHeader)+uint64(n) {
			return off, true, nil // torn final record
		}
		payload := rest[recHeader : recHeader+int(n)]
		if crc32.Checksum(payload, castagnoli) != crc {
			return off, true, nil // bit flip
		}
		rec, derr := decodeRecord(payload)
		if derr != nil {
			// CRC matched but the body is malformed: still tail damage
			// from replay's point of view — stop at the last good record.
			return off, true, nil
		}
		if err := apply(rec); err != nil {
			return off, false, err
		}
		off += recHeader + int(n)
	}
}
