package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, mod func(*Options)) (*Log, Recovery) {
	t.Helper()
	opts := Options{Dir: dir, Policy: SyncNever, Logf: t.Logf}
	if mod != nil {
		mod(&opts)
	}
	l, rec, err := Open(opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func liveMap(items []Item) map[uint64]Item {
	m := make(map[uint64]Item, len(items))
	for _, it := range items {
		m[it.ID] = it
	}
	return m
}

func checkItems(t *testing.T, got []Item, want map[uint64]Item) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("recovered %d items, want %d", len(got), len(want))
	}
	seen := make(map[uint64]bool, len(got))
	for _, it := range got {
		if seen[it.ID] {
			t.Fatalf("item id=%d recovered twice", it.ID)
		}
		seen[it.ID] = true
		w, ok := want[it.ID]
		if !ok {
			t.Fatalf("recovered unexpected item id=%d", it.ID)
		}
		if it.Pri != w.Pri || !bytes.Equal(it.Value, w.Value) {
			t.Fatalf("item id=%d: got pri=%d value=%q, want pri=%d value=%q",
				it.ID, it.Pri, it.Value, w.Pri, w.Value)
		}
	}
}

// mustAppendInsert appends n single-item insert records and returns them.
func mustAppendInsert(t *testing.T, l *Log, n int) []Item {
	t.Helper()
	items := make([]Item, 0, n)
	for i := 0; i < n; i++ {
		id := l.AllocIDs(1)
		it := Item{ID: id, Pri: uint32(i % 7), Value: []byte(fmt.Sprintf("v-%d", id))}
		if err := l.AppendInsert([]Item{it}); err != nil {
			t.Fatalf("AppendInsert: %v", err)
		}
		items = append(items, it)
	}
	return items
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, nil)
	if len(rec.Items) != 0 || rec.Replayed != 0 || rec.Torn {
		t.Fatalf("fresh log recovered %+v", rec)
	}

	items := mustAppendInsert(t, l, 20)
	// Delete a few, including a batch.
	if err := l.AppendDelete([]uint64{items[0].ID}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDelete([]uint64{items[3].ID, items[4].ID, items[5].ID}); err != nil {
		t.Fatal(err)
	}
	// A batch insert record too.
	first := l.AllocIDs(3)
	batch := []Item{
		{ID: first, Pri: 2, Value: []byte("b0")},
		{ID: first + 1, Pri: 9, Value: nil},
		{ID: first + 2, Pri: 0, Value: bytes.Repeat([]byte("x"), 300)},
	}
	if err := l.AppendInsert(batch); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	want := liveMap(items)
	delete(want, items[0].ID)
	delete(want, items[3].ID)
	delete(want, items[4].ID)
	delete(want, items[5].ID)
	for _, it := range batch {
		want[it.ID] = it
	}

	l2, rec2 := openT(t, dir, nil)
	defer l2.Close()
	checkItems(t, rec2.Items, want)
	if rec2.Torn {
		t.Fatal("clean log reported torn tail")
	}
	// 20 single inserts + 1 single delete + 1 batch delete + 1 batch insert.
	if rec2.Replayed != 23 {
		t.Fatalf("replayed %d records, want 23", rec2.Replayed)
	}
	// Recovered items come back sorted by id (deterministic load order).
	for i := 1; i < len(rec2.Items); i++ {
		if rec2.Items[i-1].ID >= rec2.Items[i].ID {
			t.Fatalf("recovered items not sorted by id at %d", i)
		}
	}
	// Ids keep advancing after reopen: no reuse of durable ids.
	if id := l2.AllocIDs(1); id < first+3 {
		t.Fatalf("id %d reused after reopen (want >= %d)", id, first+3)
	}
}

func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, func(o *Options) { o.Policy = SyncAlways })

	const workers, per = 8, 40
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				id := l.AllocIDs(1)
				it := Item{ID: id, Pri: uint32(w), Value: []byte{byte(w), byte(i)}}
				if err := l.AppendInsert([]Item{it}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent append: %v", err)
	}

	st := l.Stats()
	if st.Appends != workers*per {
		t.Fatalf("appends = %d, want %d", st.Appends, workers*per)
	}
	if st.Syncs == 0 || st.Syncs > st.Appends {
		t.Fatalf("syncs = %d (appends %d): every append must be covered by a sync, batched or not",
			st.Syncs, st.Appends)
	}
	t.Logf("group commit: %d appends amortized over %d fsyncs", st.Appends, st.Syncs)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	defer l2.Close()
	if len(rec.Items) != workers*per {
		t.Fatalf("recovered %d items, want %d", len(rec.Items), workers*per)
	}
}

func TestSyncIntervalFlushes(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, func(o *Options) {
		o.Policy = SyncInterval
		o.Interval = time.Millisecond
	})
	defer l.Close()
	mustAppendInsert(t, l, 10)
	deadline := time.Now().Add(2 * time.Second)
	for l.Stats().Syncs == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval policy never fsynced")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSegmentRotationAndRetention(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, func(o *Options) { o.SegmentBytes = 1 << 10 })
	items := mustAppendInsert(t, l, 200) // ~30 bytes/record: many segments

	if st := l.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation, got %d segments", st.Segments)
	}
	if got := len(segFiles(t, dir)); got != l.Stats().Segments {
		t.Fatalf("stats say %d segments, disk has %d", l.Stats().Segments, got)
	}

	// A snapshot covers every sealed segment, so retention deletes them
	// all: only the fresh post-rotation segment remains.
	before := l.Stats().Segments
	if err := l.Snapshot(items); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	st := l.Stats()
	if st.Segments >= before {
		t.Fatalf("retention did not shrink segments: %d -> %d", before, st.Segments)
	}
	if st.Snapshots != 1 {
		t.Fatalf("snapshots = %d, want 1", st.Snapshots)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	defer l2.Close()
	checkItems(t, rec.Items, liveMap(items))
	if rec.Replayed != 0 {
		t.Fatalf("boot after snapshot replayed %d records, want 0", rec.Replayed)
	}
	if rec.SnapshotLSN == 0 {
		t.Fatal("boot did not load the snapshot")
	}
}

func TestSnapshotCoversTail(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, nil)
	base := mustAppendInsert(t, l, 10)
	if err := l.Snapshot(base); err != nil {
		t.Fatal(err)
	}
	tail := mustAppendInsert(t, l, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	defer l2.Close()
	if rec.Replayed != 5 {
		t.Fatalf("replayed %d records, want only the 5 post-snapshot ones", rec.Replayed)
	}
	want := liveMap(base)
	for _, it := range tail {
		want[it.ID] = it
	}
	checkItems(t, rec.Items, want)
}

func TestSnapshotFallbackWhenNewestCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, nil)
	base := mustAppendInsert(t, l, 8)
	if err := l.Snapshot(base); err != nil {
		t.Fatal(err)
	}
	tail := mustAppendInsert(t, l, 4)
	all := append(append([]Item(nil), base...), tail...)
	if err := l.Snapshot(all); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot; boot must fall back to the older one
	// and find the records between the two still on disk (retention keeps
	// segments for the oldest retained snapshot, exactly for this).
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshots, got %v (%v)", snaps, err)
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	defer l2.Close()
	checkItems(t, rec.Items, liveMap(all))
	if rec.Replayed == 0 {
		t.Fatal("fallback boot should have replayed the log between the snapshots")
	}
}

// buildLog writes n single-insert records and closes the log cleanly,
// returning the items and the (single) segment file.
func buildLog(t *testing.T, dir string, n int) ([]Item, string) {
	t.Helper()
	l, _ := openT(t, dir, nil)
	items := mustAppendInsert(t, l, n)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("want 1 segment, got %v", segs)
	}
	return items, segs[0]
}

func TestTornTailTruncatedRecord(t *testing.T) {
	dir := t.TempDir()
	items, seg := buildLog(t, dir, 12)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the final record.
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	l, rec := openT(t, dir, nil)
	if !rec.Torn {
		t.Fatal("truncated tail not reported as torn")
	}
	checkItems(t, rec.Items, liveMap(items[:11]))

	// The damaged suffix is gone and the log accepts new records.
	more := mustAppendInsert(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec2 := openT(t, dir, nil)
	defer l2.Close()
	want := liveMap(items[:11])
	for _, it := range more {
		want[it.ID] = it
	}
	checkItems(t, rec2.Items, want)
	if rec2.Torn {
		t.Fatal("torn flag persisted after the tail was repaired")
	}
}

func TestTornTailBitFlip(t *testing.T) {
	dir := t.TempDir()
	items, seg := buildLog(t, dir, 12)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01 // flip a bit inside the last record's value
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l, rec := openT(t, dir, nil)
	defer l.Close()
	if !rec.Torn {
		t.Fatal("bit flip not reported as torn")
	}
	checkItems(t, rec.Items, liveMap(items[:11]))
}

func TestTornTailZeroFill(t *testing.T) {
	dir := t.TempDir()
	items, seg := buildLog(t, dir, 12)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A power cut can leave preallocated-but-unwritten zero pages.
	if _, err := f.Write(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	goodSize := mustSize(t, seg) - 4096

	l, rec := openT(t, dir, nil)
	defer l.Close()
	if !rec.Torn {
		t.Fatal("zero-filled tail not reported as torn")
	}
	checkItems(t, rec.Items, liveMap(items)) // every real record survives
	if got := mustSize(t, seg); got != goodSize {
		t.Fatalf("zero fill not truncated: size %d, want %d", got, goodSize)
	}
}

func mustSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

func TestDamagedMiddleSegmentDropsOrphans(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	items := mustAppendInsert(t, l, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d", len(segs))
	}
	// Corrupt the second segment: replay must stop there and retire the
	// later segments (their records depend on the lost ones).
	data, err := os.ReadFile(segs[1])
	if err != nil {
		t.Fatal(err)
	}
	data[recHeader+2] ^= 0xff
	if err := os.WriteFile(segs[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	defer l2.Close()
	if !rec.Torn {
		t.Fatal("mid-log damage not reported as torn")
	}
	if len(rec.Items) >= len(items) {
		t.Fatalf("recovered %d items, expected fewer than %d", len(rec.Items), len(items))
	}
	// Only a prefix of the inserts can have survived.
	for i, it := range rec.Items {
		want := items[i]
		if it.ID != want.ID || !bytes.Equal(it.Value, want.Value) {
			t.Fatalf("recovered item %d = id %d, want prefix item id %d", i, it.ID, want.ID)
		}
	}
	if got := len(segFiles(t, dir)); got > 2 {
		t.Fatalf("orphaned segments not removed: %d files remain", got)
	}
}

// TestCoveredDamageKeepsLaterSegments: damage inside a sealed segment
// wholly covered by the newest snapshot must not drop the intact later
// segments — the lost records' effects are already in the snapshot, so
// replay continues through them and the acked post-snapshot records
// survive. (Regression: the orphan-drop path used to fire here and
// lose the whole tail.)
func TestCoveredDamageKeepsLaterSegments(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, func(o *Options) { o.SegmentBytes = 256 })
	base := mustAppendInsert(t, l, 10) // lsn 1..10
	if err := l.Snapshot(base); err != nil {
		t.Fatal(err)
	}
	mid := mustAppendInsert(t, l, 20) // lsn 11..30, spans several segments
	all := append(append([]Item(nil), base...), mid...)
	if err := l.Snapshot(all); err != nil {
		t.Fatal(err) // snap@30; mid segments stay for the snap@10 fallback
	}
	tail := mustAppendInsert(t, l, 5) // lsn 31..35
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs := segFiles(t, dir)
	if len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %v", segs)
	}
	// Corrupt the first record of the oldest remaining segment: all its
	// records predate the newest snapshot, and its successor still
	// chains from below that snapshot's LSN.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[recHeader+2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	if !rec.Torn {
		t.Fatal("covered damage not reported as torn")
	}
	want := liveMap(all)
	for _, it := range tail {
		want[it.ID] = it
	}
	checkItems(t, rec.Items, want) // nothing acked is lost
	if rec.Replayed != len(tail) {
		t.Fatalf("replayed %d records, want the %d post-snapshot ones", rec.Replayed, len(tail))
	}

	// And the log still appends + survives another boot.
	more := mustAppendInsert(t, l2, 3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, rec3 := openT(t, dir, nil)
	defer l3.Close()
	for _, it := range more {
		want[it.ID] = it
	}
	checkItems(t, rec3.Items, want)
	if rec3.Torn {
		t.Fatal("damage reappeared after repair")
	}
}

// TestAppendAfterCoveredTruncationStartsFreshSegment: when replay
// truncates damage in a snapshot-covered region and no segment holds
// nextLSN-1, the log must rotate to a fresh segment named for nextLSN.
// Appending into the truncated file would place the new record after
// an in-file LSN gap, and the NEXT boot would silently truncate it
// away as damage. (Regression.)
func TestAppendAfterCoveredTruncationStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, nil)
	base := mustAppendInsert(t, l, 10) // lsn 1..10
	if err := l.Snapshot(base); err != nil {
		t.Fatal(err) // snap@10
	}
	mid := mustAppendInsert(t, l, 10) // lsn 11..20
	all := append(append([]Item(nil), base...), mid...)
	if err := l.Snapshot(all); err != nil {
		t.Fatal(err) // snap@20, rotates to an empty active segment
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Lose the empty active segment and corrupt the first record of the
	// sealed one: the surviving record chain now ends below snap@20.
	segs := segFiles(t, dir)
	if len(segs) != 2 {
		t.Fatalf("want 2 segments, got %v", segs)
	}
	if err := os.Remove(segs[1]); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[recHeader+2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	if !rec.Torn {
		t.Fatal("damage not reported as torn")
	}
	checkItems(t, rec.Items, liveMap(all)) // the snapshot carries everything
	more := mustAppendInsert(t, l2, 3)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	l3, rec3 := openT(t, dir, nil)
	defer l3.Close()
	if rec3.Torn {
		t.Fatal("second boot found damage: post-recovery appends broke LSN continuity")
	}
	want := liveMap(all)
	for _, it := range more {
		want[it.ID] = it
	}
	checkItems(t, rec3.Items, want)
}

// TestWriteFailurePoisonsLog: after a write error the log must refuse
// every subsequent append and snapshot. The failed record's bytes may
// sit in the page cache and become durable anyway, so serving on as if
// the rollback were clean would let post-crash replay diverge from the
// history clients observed.
func TestWriteFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, func(o *Options) { o.Policy = SyncAlways })
	items := mustAppendInsert(t, l, 3)
	// Sever the descriptor under the writer: the next write(2) fails.
	l.f.Close()
	if err := l.AppendInsert([]Item{{ID: 100, Pri: 1, Value: []byte("x")}}); err == nil {
		t.Fatal("append on a severed descriptor succeeded")
	}
	if !l.Stats().Failed {
		t.Fatal("stats do not report the poisoned log")
	}
	if err := l.AppendDelete([]uint64{items[0].ID}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failure: %v, want ErrPoisoned", err)
	}
	if err := l.Snapshot(items); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("snapshot after failure: %v, want ErrPoisoned", err)
	}
	if err := l.Close(); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("close after failure: %v, want ErrPoisoned", err)
	}
	// Only the pre-failure records were acked, and only they survive.
	l2, rec := openT(t, dir, nil)
	defer l2.Close()
	checkItems(t, rec.Items, liveMap(items))
}

// TestIdleSnapshotKeepsActiveSegment: a snapshot taken with no records
// since the previous rotation must not re-register the active segment
// under a second entry — retention would unlink the live file and every
// append after it would die with the inode. (Regression: found by an
// idle graceful-shutdown leaving a data dir with no segment at all.)
func TestIdleSnapshotKeepsActiveSegment(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, nil)
	base := mustAppendInsert(t, l, 3)
	if err := l.Snapshot(base); err != nil {
		t.Fatal(err)
	}
	// Idle snapshot: nothing appended since the one above.
	if err := l.Snapshot(base); err != nil {
		t.Fatal(err)
	}
	if len(segFiles(t, dir)) == 0 {
		t.Fatal("idle snapshot deleted the active segment file")
	}
	more := mustAppendInsert(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, nil)
	defer l2.Close()
	want := liveMap(base)
	for _, it := range more {
		want[it.ID] = it
	}
	checkItems(t, rec.Items, want)
	if rec.Replayed != 2 {
		t.Fatalf("replayed %d records, want the 2 post-snapshot appends", rec.Replayed)
	}
}

func TestCloseSemantics(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, nil)
	mustAppendInsert(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := l.AppendInsert([]Item{{ID: 99, Pri: 1}}); err != ErrClosed {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if err := l.AppendDelete([]uint64{1}); err != ErrClosed {
		t.Fatalf("delete after close: %v, want ErrClosed", err)
	}
}

// FuzzWALReplay round-trips random operation sequences through
// append -> close -> reopen -> replay and checks the recovered multiset
// against an in-memory model.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 2, 0, 3})
	f.Add([]byte{1, 1, 1, 3, 3, 3, 0, 2})
	f.Add(bytes.Repeat([]byte{0, 2}, 20))
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		dir := t.TempDir()
		l, rec, err := Open(Options{Dir: dir, Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Items) != 0 {
			t.Fatal("fresh dir recovered items")
		}
		model := make(map[uint64]Item)
		var liveIDs []uint64 // insertion order; deletes take from the front
		for i, op := range ops {
			switch op % 4 {
			case 0: // single insert
				id := l.AllocIDs(1)
				it := Item{ID: id, Pri: uint32(op), Value: []byte{op, byte(i)}}
				if err := l.AppendInsert([]Item{it}); err != nil {
					t.Fatal(err)
				}
				model[id] = it
				liveIDs = append(liveIDs, id)
			case 1: // batch insert
				n := int(op%5) + 2
				first := l.AllocIDs(n)
				batch := make([]Item, n)
				for j := 0; j < n; j++ {
					batch[j] = Item{ID: first + uint64(j), Pri: uint32(j), Value: []byte{op, byte(i), byte(j)}}
				}
				if err := l.AppendInsert(batch); err != nil {
					t.Fatal(err)
				}
				for _, it := range batch {
					model[it.ID] = it
					liveIDs = append(liveIDs, it.ID)
				}
			case 2: // single delete
				if len(liveIDs) == 0 {
					continue
				}
				id := liveIDs[0]
				liveIDs = liveIDs[1:]
				if err := l.AppendDelete([]uint64{id}); err != nil {
					t.Fatal(err)
				}
				delete(model, id)
			case 3: // batch delete
				n := int(op%7) + 1
				if n > len(liveIDs) {
					n = len(liveIDs)
				}
				if n == 0 {
					continue
				}
				ids := append([]uint64(nil), liveIDs[:n]...)
				liveIDs = liveIDs[n:]
				if err := l.AppendDelete(ids); err != nil {
					t.Fatal(err)
				}
				for _, id := range ids {
					delete(model, id)
				}
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		l2, rec2, err := Open(Options{Dir: dir, Policy: SyncNever})
		if err != nil {
			t.Fatal(err)
		}
		defer l2.Close()
		if rec2.Torn {
			t.Fatal("cleanly closed log reported torn")
		}
		if len(rec2.Items) != len(model) {
			t.Fatalf("recovered %d items, want %d", len(rec2.Items), len(model))
		}
		for _, it := range rec2.Items {
			w, ok := model[it.ID]
			if !ok {
				t.Fatalf("recovered unexpected id %d", it.ID)
			}
			if it.Pri != w.Pri || !bytes.Equal(it.Value, w.Value) {
				t.Fatalf("id %d mismatch: got (%d,%q) want (%d,%q)", it.ID, it.Pri, it.Value, w.Pri, w.Value)
			}
		}
	})
}
