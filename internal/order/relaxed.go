package order

// RelaxedBound parameterizes the relaxed checking mode.
type RelaxedBound struct {
	// MaxRank is the rank-error budget: a successful DeleteMin may
	// overtake at most this many definitely-present items of strictly
	// smaller priority. Zero is the strict priority rule.
	MaxRank int
}

// CheckRelaxed verifies a history against rank-bounded relaxed
// priority-queue semantics — the contract of the MultiQueue family.
// Uniqueness, precedence, well-formedness and emptiness are checked
// exactly as in Check: relaxation never excuses losing or duplicating
// an item, returning one before its insert, or reporting empty while an
// item was definitely present. The strict priority rule is replaced by
// the "rank-error" rule: a successful DeleteMin returning priority p
// violates the bound only when more than bound.MaxRank items of
// strictly smaller priority were definitely present for its whole
// window. The batch rules keep the kind/interval and no-success-after-
// dry clauses but drop priority monotonicity, since a relaxed batch is
// k independent relaxed pops.
//
// Like Check, the conditions are necessary, not sufficient: the
// definitely-present analysis undercounts the true rank under
// concurrency, so every reported violation is a real rank-bound breach
// while marginal ones may go undetected.
func CheckRelaxed(history []Op, bound RelaxedBound) []Violation {
	out := checkBatches(history, false)
	return append(out, checkCore(history, nil, bound.MaxRank)...)
}

// CheckRelaxedTruncated is CheckRelaxed for crash-truncated histories,
// treating pending operations exactly as CheckTruncated does.
func CheckRelaxedTruncated(history []Op, pending []PendingOp, bound RelaxedBound) []Violation {
	out := checkBatches(history, false)
	return append(out, checkCore(history, pending, bound.MaxRank)...)
}
