package order

import "testing"

// Hand-built batch histories pin the checker's batch rules down before
// they judge the native batch fast paths: each must-fail case flags the
// right rule and each must-pass case stays clean.

func TestBatchCleanHistory(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 3, Val: 1, OK: true, Start: 0, End: 1, Batch: 1},
		{Kind: Insert, Pri: 1, Val: 2, OK: true, Start: 0, End: 1, Batch: 1},
		{Kind: DeleteMin, Pri: 1, Val: 2, OK: true, Start: 2, End: 3, Batch: 2},
		{Kind: DeleteMin, Pri: 3, Val: 1, OK: true, Start: 2, End: 3, Batch: 2},
		{Kind: DeleteMin, OK: false, Start: 2, End: 3, Batch: 2},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("clean batch history flagged: %v", vs)
	}
}

func TestBatchOverlapMismatch(t *testing.T) {
	// Two ops claim the same batch id but disagree on the interval — a
	// recorder bug or an overlap of two distinct calls.
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 5, Batch: 7},
		{Kind: Insert, Pri: 2, Val: 2, OK: true, Start: 3, End: 8, Batch: 7},
	}
	requireRule(t, Check(h), "batch")
}

func TestBatchKindMismatch(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 5, Batch: 7},
		{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 0, End: 5, Batch: 7},
	}
	requireRule(t, Check(h), "batch")
}

func TestBatchDeleteOrderViolation(t *testing.T) {
	// A delete batch must come out in nondecreasing priority order.
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 4, Val: 2, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 4, Val: 2, OK: true, Start: 2, End: 3, Batch: 5},
		{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 2, End: 3, Batch: 5},
	}
	requireRule(t, Check(h), "batch-order")
}

func TestBatchSuccessAfterDry(t *testing.T) {
	// Once a batch reports the queue dry, no later sub-delete may succeed.
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, OK: false, Start: 2, End: 3, Batch: 5},
		{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 2, End: 3, Batch: 5},
	}
	requireRule(t, Check(h), "batch-order")
}

func TestBatchLostItem(t *testing.T) {
	// A batch insert's item vanishing shows up as an emptiness violation
	// when a later delete claims the queue is dry.
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1, Batch: 1},
		{Kind: Insert, Pri: 2, Val: 2, OK: true, Start: 0, End: 1, Batch: 1},
		{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, OK: false, Start: 4, End: 5},
	}
	requireRule(t, Check(h), "emptiness")
}

func TestBatchDoubleDelivery(t *testing.T) {
	// The same value served to two sub-deletes of one batch.
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 9, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 1, Val: 9, OK: true, Start: 2, End: 3, Batch: 4},
		{Kind: DeleteMin, Pri: 1, Val: 9, OK: true, Start: 2, End: 3, Batch: 4},
	}
	requireRule(t, Check(h), "uniqueness")
}

func TestQuiescentToleratesBusyPeriodReorder(t *testing.T) {
	// The delete returns the worse item and leaves the better one behind,
	// but a still-running insert chains its busy period back over the
	// better item's insert. Linearizability flags it; quiescent
	// consistency must not.
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 2},
		{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 1, End: 6},
		{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 3, End: 7},
	}
	requireRule(t, Check(h), "priority")
	if vs := CheckQuiescent(h); len(vs) != 0 {
		t.Fatalf("quiescent check flagged busy-period reorder: %v", vs)
	}
}

func TestQuiescentViolationAcrossQuiescence(t *testing.T) {
	// The better item was inserted in an earlier busy period — fully
	// settled — so even quiescent consistency requires the delete to beat
	// it. The same history must also flag emptiness for a dry report.
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
		// quiescent point
		{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 10, End: 11},
		// quiescent point
		{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 20, End: 21},
		{Kind: DeleteMin, OK: false, Start: 30, End: 31},
	}
	vs := CheckQuiescent(h)
	requireRule(t, vs, "priority")
	requireRule(t, vs, "emptiness")
}

func TestQuiescentIgnoresBatchRules(t *testing.T) {
	// A quiescently consistent queue may interleave a batch with
	// overlapping ops, so decreasing priorities within a batch are legal
	// there — but not under Check.
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 9},
		{Kind: Insert, Pri: 4, Val: 2, OK: true, Start: 0, End: 9},
		{Kind: DeleteMin, Pri: 4, Val: 2, OK: true, Start: 1, End: 8, Batch: 3},
		{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 1, End: 8, Batch: 3},
	}
	requireRule(t, Check(h), "batch-order")
	if vs := CheckQuiescent(h); len(vs) != 0 {
		t.Fatalf("quiescent check applied batch rules: %v", vs)
	}
}

func TestBatchZeroIdsNeverGrouped(t *testing.T) {
	// Batch id zero means unbatched: wildly different intervals and kinds
	// must not be grouped.
	h := []Op{
		{Kind: Insert, Pri: 2, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 2, Val: 1, OK: true, Start: 5, End: 6},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("unbatched ops grouped: %v", vs)
	}
}
