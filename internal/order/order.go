// Package order checks concurrent priority-queue histories against
// necessary conditions for linearizability. Full linearizability checking
// of priority queues is intractable in general; this checker verifies a
// sound subset — any violation it reports is a real one, while some
// violations may go undetected:
//
//  1. Uniqueness: every successful DeleteMin returns a value inserted
//     exactly once and never returned twice.
//  2. Precedence: a value cannot be returned by a DeleteMin that finished
//     before the value's Insert began.
//  3. Priority: if a DeleteMin D returns priority p, no value with a
//     strictly smaller priority can have been definitely present for D's
//     whole window — inserted before D began and not removed by any
//     DeleteMin that began before D ended.
//  4. Emptiness: a failed DeleteMin D is a violation if some value was
//     definitely present for D's whole window.
//
// Timestamps must come from a single monotonic source (the simulator's
// cycle clock, or host time under careful use).
//
// Histories truncated by processor crashes are checked with
// CheckTruncated: operations that were in flight when their processor
// died are passed as PendingOps and treated as possibly linearized, so
// safety for the surviving processors can still be proved.
//
// Batch operations record one Op per sub-operation, sharing a nonzero
// Op.Batch id; Check additionally enforces that a batch is internally
// consistent ("batch") and that a delete batch looks like sequential
// deletes ("batch-order"). Quiescently consistent implementations — the
// funnel-based queues — are checked with CheckQuiescent, which relaxes
// the conditions to busy-period granularity.
//
// Relaxed queues (the MultiQueue family), whose DeleteMin is only
// approximately smallest-first, are checked with CheckRelaxed: the
// priority rule becomes a configurable rank-error bound while
// uniqueness, precedence and emptiness stay exact.
package order

import (
	"fmt"
	"sort"
)

// Kind distinguishes history events.
type Kind uint8

// Event kinds.
const (
	Insert Kind = iota + 1
	DeleteMin
)

// Op is one completed operation in a history.
type Op struct {
	Kind Kind
	// Pri is the item's priority (for DeleteMin, of the returned item;
	// ignored for failed deletes).
	Pri int
	// Val identifies the item; values must be unique across Inserts.
	Val uint64
	// OK is false for a DeleteMin that reported an empty queue.
	OK bool
	// Start and End bound the operation's execution interval, Start < End.
	Start, End int64
	// Batch groups the sub-operations of one batch call: all ops sharing
	// a nonzero Batch id belong to one InsertBatch or DeleteMinBatch
	// invocation, must share Kind and execution interval, and their slice
	// order in the history is the order the call produced them. Zero means
	// not batched.
	Batch uint64
}

// Violation describes a detected inconsistency.
type Violation struct {
	// Rule names the violated condition.
	Rule string
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) Error() string { return v.Rule + ": " + v.Detail }

// PendingOp is an operation that had started but never completed — its
// processor crashed (or the run was aborted) mid-operation. A pending
// operation may or may not have taken effect, so the checker treats it
// as possibly linearized at any point from Start onward:
//
//   - a pending Insert's value may legitimately be returned by a
//     completed DeleteMin (it is not an "alien" value), but it cannot
//     serve as a witness that the queue was non-empty;
//   - each pending DeleteMin may have silently consumed one value, so a
//     value only counts as "definitely present" when there are more
//     such values than pending deletes that could have taken them.
type PendingOp struct {
	Kind Kind
	// Pri and Val describe a pending Insert; they are ignored for a
	// pending DeleteMin (whose would-be return value is unknowable).
	Pri int
	Val uint64
	// Start is when the operation began.
	Start int64
}

// Check verifies a complete history and returns all detected violations.
func Check(history []Op) []Violation {
	return CheckTruncated(history, nil)
}

// CheckTruncated verifies a crash-truncated history: ops completed by
// surviving (or crashed-later) processors, plus the operations that were
// in flight when their processors died. Violations are still sound —
// every report is a real inconsistency under every possible linearization
// of the pending operations.
func CheckTruncated(history []Op, pending []PendingOp) []Violation {
	out := checkBatches(history, true)
	return append(out, checkCore(history, pending, 0)...)
}

// CheckQuiescent verifies a history against quiescent consistency, the
// guarantee of the funnel-based queues: overlapping operations may
// reorder freely, but between quiescent points (instants with no
// operation in flight) the queue behaves like a sequential one. It widens
// every operation's interval to the envelope of its busy period — the
// maximal run of transitively overlapping operations — and then applies
// the same necessary conditions as Check, which makes them sound under
// reordering: an item definitely present across a whole busy period must
// still beat a worse delete, and emptiness cannot be reported while it
// sits there. Batch sub-operations may legally interleave with
// overlapping operations under quiescent consistency, so the batch rules
// are not applied.
func CheckQuiescent(history []Op) []Violation {
	if len(history) == 0 {
		return nil
	}
	idx := make([]int, len(history))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return history[idx[a]].Start < history[idx[b]].Start })
	widened := make([]Op, len(history))
	copy(widened, history)
	for i := 0; i < len(idx); {
		start := history[idx[i]].Start
		end := history[idx[i]].End
		j := i + 1
		for j < len(idx) && history[idx[j]].Start < end {
			if e := history[idx[j]].End; e > end {
				end = e
			}
			j++
		}
		for k := i; k < j; k++ {
			widened[idx[k]].Start = start
			widened[idx[k]].End = end
			widened[idx[k]].Batch = 0
		}
		i = j
	}
	return checkCore(widened, nil, 0)
}

// checkBatches verifies the batch conditions: sub-operations sharing a
// batch id must agree on kind and interval ("batch"), and a delete batch
// must behave like sequential deletes — no success after it reported dry
// and, when strictOrder is set, nondecreasing priorities in production
// order ("batch-order"). Relaxed queues drop the monotonicity clause:
// their batch is k relaxed pops, each free to overtake within its rank
// bound.
func checkBatches(history []Op, strictOrder bool) []Violation {
	var out []Violation
	type group struct {
		kind       Kind
		start, end int64
		ops        []*Op
	}
	groups := map[uint64]*group{}
	var order []uint64 // first-seen order keeps reports deterministic
	for i := range history {
		op := &history[i]
		if op.Batch == 0 {
			continue
		}
		g, ok := groups[op.Batch]
		if !ok {
			g = &group{kind: op.Kind, start: op.Start, end: op.End}
			groups[op.Batch] = g
			order = append(order, op.Batch)
		}
		if op.Kind != g.kind || op.Start != g.start || op.End != g.end {
			out = append(out, Violation{
				Rule: "batch",
				Detail: fmt.Sprintf("batch %d: operation %+v disagrees with the batch's kind %d or interval [%d,%d]",
					op.Batch, *op, g.kind, g.start, g.end),
			})
		}
		g.ops = append(g.ops, op)
	}
	for _, id := range order {
		g := groups[id]
		if g.kind != DeleteMin {
			continue
		}
		lastPri := int(-1) << 62
		dry := false
		for _, op := range g.ops {
			if !op.OK {
				dry = true
				continue
			}
			if dry {
				out = append(out, Violation{
					Rule: "batch-order",
					Detail: fmt.Sprintf("batch %d: delete returned value %#x after the batch reported dry",
						id, op.Val),
				})
			}
			if strictOrder && op.Pri < lastPri {
				out = append(out, Violation{
					Rule: "batch-order",
					Detail: fmt.Sprintf("batch %d: priority %d returned after priority %d",
						id, op.Pri, lastPri),
				})
			}
			lastPri = op.Pri
		}
	}
	return out
}

// checkCore applies the interval-based necessary conditions shared by all
// checking modes. maxRank 0 is the strict priority rule; a positive
// maxRank relaxes it to the rank-error rule: a successful delete may
// overtake up to maxRank definitely-present better items.
func checkCore(history []Op, pending []PendingOp, maxRank int) []Violation {
	var out []Violation

	pendingInserts := map[uint64]*PendingOp{}
	var pendingDeletes []*PendingOp
	for i := range pending {
		po := &pending[i]
		switch po.Kind {
		case Insert:
			pendingInserts[po.Val] = po
		case DeleteMin:
			pendingDeletes = append(pendingDeletes, po)
		}
	}

	inserts := map[uint64]*Op{}
	removes := map[uint64]*Op{}
	for i := range history {
		op := &history[i]
		if op.Start > op.End {
			out = append(out, Violation{
				Rule:   "well-formed",
				Detail: fmt.Sprintf("operation %+v has Start > End", *op),
			})
		}
		switch op.Kind {
		case Insert:
			if prev, dup := inserts[op.Val]; dup {
				out = append(out, Violation{
					Rule:   "uniqueness",
					Detail: fmt.Sprintf("value %#x inserted twice (%+v and %+v)", op.Val, *prev, *op),
				})
				continue
			}
			inserts[op.Val] = op
		case DeleteMin:
			if !op.OK {
				continue
			}
			if prev, dup := removes[op.Val]; dup {
				out = append(out, Violation{
					Rule:   "uniqueness",
					Detail: fmt.Sprintf("value %#x returned twice (%+v and %+v)", op.Val, *prev, *op),
				})
				continue
			}
			removes[op.Val] = op
		}
	}

	// Precedence and alien values. A value whose Insert was pending at a
	// crash may have linearized, so returning it is legal — but only
	// after the pending Insert began.
	for val, del := range removes {
		ins, ok := inserts[val]
		if !ok {
			if pi, wasPending := pendingInserts[val]; wasPending {
				if del.End < pi.Start {
					out = append(out, Violation{
						Rule: "precedence",
						Detail: fmt.Sprintf("value %#x returned by a delete ending at %d before its crashed insert began at %d",
							val, del.End, pi.Start),
					})
				}
				continue
			}
			out = append(out, Violation{
				Rule:   "uniqueness",
				Detail: fmt.Sprintf("value %#x returned but never inserted", val),
			})
			continue
		}
		if del.End < ins.Start {
			out = append(out, Violation{
				Rule: "precedence",
				Detail: fmt.Sprintf("value %#x returned by a delete ending at %d before its insert began at %d",
					val, del.End, ins.Start),
			})
		}
	}

	// Priority and emptiness conditions, O(deletes × inserts). "Definitely
	// present during D" means: insert completed before D started, and no
	// successful delete of the value began before D ended.
	deletes := make([]*Op, 0)
	for i := range history {
		if history[i].Kind == DeleteMin {
			deletes = append(deletes, &history[i])
		}
	}
	sort.Slice(deletes, func(i, j int) bool { return deletes[i].Start < deletes[j].Start })

	for _, d := range deletes {
		limit := 1 << 62 // priority the delete must beat
		if d.OK {
			limit = d.Pri
		}
		// Each pending DeleteMin that began before D ended may have
		// linearized inside D's window and consumed one witness, so a
		// violation needs strictly more witnesses than such deletes.
		excused := 0
		for _, pd := range pendingDeletes {
			if pd.Start <= d.End {
				excused++
			}
		}
		witnesses := 0
		var witVal uint64
		var witIns *Op
		for val, ins := range inserts {
			if ins.Pri >= limit && d.OK {
				continue
			}
			if ins.End >= d.Start {
				continue // not definitely present before D
			}
			if rem, ok := removes[val]; ok && rem.Start <= d.End && rem != d {
				continue // may have been taken by an overlapping delete
			}
			if d.OK && val == d.Val {
				continue
			}
			if witnesses == 0 {
				witVal, witIns = val, ins
			}
			witnesses++
		}
		allowed := excused
		if d.OK {
			allowed += maxRank
		}
		if witnesses <= allowed {
			continue
		}
		// One witness per delete keeps reports readable.
		if d.OK && maxRank > 0 {
			out = append(out, Violation{
				Rule: "rank-error",
				Detail: fmt.Sprintf("delete [%d,%d] returned pri %d with %d definitely-present better items (bound %d), e.g. value %#x (pri %d)",
					d.Start, d.End, d.Pri, witnesses, maxRank, witVal, witIns.Pri),
			})
		} else if d.OK {
			out = append(out, Violation{
				Rule: "priority",
				Detail: fmt.Sprintf("delete [%d,%d] returned pri %d but value %#x (pri %d) was definitely present",
					d.Start, d.End, d.Pri, witVal, witIns.Pri),
			})
		} else {
			out = append(out, Violation{
				Rule: "emptiness",
				Detail: fmt.Sprintf("delete [%d,%d] reported empty but value %#x (pri %d) was definitely present",
					d.Start, d.End, witVal, witIns.Pri),
			})
		}
	}
	return out
}
