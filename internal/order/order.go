// Package order checks concurrent priority-queue histories against
// necessary conditions for linearizability. Full linearizability checking
// of priority queues is intractable in general; this checker verifies a
// sound subset — any violation it reports is a real one, while some
// violations may go undetected:
//
//  1. Uniqueness: every successful DeleteMin returns a value inserted
//     exactly once and never returned twice.
//  2. Precedence: a value cannot be returned by a DeleteMin that finished
//     before the value's Insert began.
//  3. Priority: if a DeleteMin D returns priority p, no value with a
//     strictly smaller priority can have been definitely present for D's
//     whole window — inserted before D began and not removed by any
//     DeleteMin that began before D ended.
//  4. Emptiness: a failed DeleteMin D is a violation if some value was
//     definitely present for D's whole window.
//
// Timestamps must come from a single monotonic source (the simulator's
// cycle clock, or host time under careful use).
package order

import (
	"fmt"
	"sort"
)

// Kind distinguishes history events.
type Kind uint8

// Event kinds.
const (
	Insert Kind = iota + 1
	DeleteMin
)

// Op is one completed operation in a history.
type Op struct {
	Kind Kind
	// Pri is the item's priority (for DeleteMin, of the returned item;
	// ignored for failed deletes).
	Pri int
	// Val identifies the item; values must be unique across Inserts.
	Val uint64
	// OK is false for a DeleteMin that reported an empty queue.
	OK bool
	// Start and End bound the operation's execution interval, Start < End.
	Start, End int64
}

// Violation describes a detected inconsistency.
type Violation struct {
	// Rule names the violated condition.
	Rule string
	// Detail is a human-readable explanation.
	Detail string
}

func (v Violation) Error() string { return v.Rule + ": " + v.Detail }

// Check verifies the history and returns all detected violations.
func Check(history []Op) []Violation {
	var out []Violation

	inserts := map[uint64]*Op{}
	removes := map[uint64]*Op{}
	for i := range history {
		op := &history[i]
		if op.Start > op.End {
			out = append(out, Violation{
				Rule:   "well-formed",
				Detail: fmt.Sprintf("operation %+v has Start > End", *op),
			})
		}
		switch op.Kind {
		case Insert:
			if prev, dup := inserts[op.Val]; dup {
				out = append(out, Violation{
					Rule:   "uniqueness",
					Detail: fmt.Sprintf("value %#x inserted twice (%+v and %+v)", op.Val, *prev, *op),
				})
				continue
			}
			inserts[op.Val] = op
		case DeleteMin:
			if !op.OK {
				continue
			}
			if prev, dup := removes[op.Val]; dup {
				out = append(out, Violation{
					Rule:   "uniqueness",
					Detail: fmt.Sprintf("value %#x returned twice (%+v and %+v)", op.Val, *prev, *op),
				})
				continue
			}
			removes[op.Val] = op
		}
	}

	// Precedence and alien values.
	for val, del := range removes {
		ins, ok := inserts[val]
		if !ok {
			out = append(out, Violation{
				Rule:   "uniqueness",
				Detail: fmt.Sprintf("value %#x returned but never inserted", val),
			})
			continue
		}
		if del.End < ins.Start {
			out = append(out, Violation{
				Rule: "precedence",
				Detail: fmt.Sprintf("value %#x returned by a delete ending at %d before its insert began at %d",
					val, del.End, ins.Start),
			})
		}
	}

	// Priority and emptiness conditions, O(deletes × inserts). "Definitely
	// present during D" means: insert completed before D started, and no
	// successful delete of the value began before D ended.
	deletes := make([]*Op, 0)
	for i := range history {
		if history[i].Kind == DeleteMin {
			deletes = append(deletes, &history[i])
		}
	}
	sort.Slice(deletes, func(i, j int) bool { return deletes[i].Start < deletes[j].Start })

	for _, d := range deletes {
		limit := 1 << 62 // priority the delete must beat
		if d.OK {
			limit = d.Pri
		}
		for val, ins := range inserts {
			if ins.Pri >= limit && d.OK {
				continue
			}
			if ins.End >= d.Start {
				continue // not definitely present before D
			}
			if rem, ok := removes[val]; ok && rem.Start <= d.End && rem != d {
				continue // may have been taken by an overlapping delete
			}
			if d.OK && val == d.Val {
				continue
			}
			if d.OK {
				out = append(out, Violation{
					Rule: "priority",
					Detail: fmt.Sprintf("delete [%d,%d] returned pri %d but value %#x (pri %d) was definitely present",
						d.Start, d.End, d.Pri, val, ins.Pri),
				})
			} else {
				out = append(out, Violation{
					Rule: "emptiness",
					Detail: fmt.Sprintf("delete [%d,%d] reported empty but value %#x (pri %d) was definitely present",
						d.Start, d.End, val, ins.Pri),
				})
			}
			break // one witness per delete keeps reports readable
		}
	}
	return out
}
