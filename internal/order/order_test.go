package order

import (
	"strings"
	"testing"
)

func TestCleanSequentialHistory(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 2, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 1, Val: 2, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 1, Val: 2, OK: true, Start: 4, End: 5},
		{Kind: DeleteMin, Pri: 2, Val: 1, OK: true, Start: 6, End: 7},
		{Kind: DeleteMin, OK: false, Start: 8, End: 9},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestDoubleDelivery(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 7, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 1, Val: 7, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 1, Val: 7, OK: true, Start: 4, End: 5},
	}
	requireRule(t, Check(h), "uniqueness")
}

func TestAlienValue(t *testing.T) {
	h := []Op{
		{Kind: DeleteMin, Pri: 1, Val: 99, OK: true, Start: 0, End: 1},
	}
	requireRule(t, Check(h), "uniqueness")
}

func TestPrecedenceViolation(t *testing.T) {
	h := []Op{
		{Kind: DeleteMin, Pri: 1, Val: 5, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 1, Val: 5, OK: true, Start: 10, End: 11},
	}
	requireRule(t, Check(h), "precedence")
}

func TestPriorityViolation(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 0, End: 1},
		// Returns priority 5 while priority 0 sat in the queue untouched.
		{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 10, End: 11},
		{Kind: DeleteMin, Pri: 0, Val: 1, OK: true, Start: 20, End: 21},
	}
	requireRule(t, Check(h), "priority")
}

func TestPriorityToleratesOverlappingRemoval(t *testing.T) {
	// The smaller item's delete overlaps D, so D returning the larger item
	// is consistent.
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 10, End: 13},
		{Kind: DeleteMin, Pri: 0, Val: 1, OK: true, Start: 11, End: 12},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("overlapping removal flagged: %v", vs)
	}
}

func TestEmptinessViolation(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 3, Val: 9, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, OK: false, Start: 5, End: 6},
	}
	requireRule(t, Check(h), "emptiness")
}

func TestEmptinessToleratesOverlap(t *testing.T) {
	// Insert overlaps the failed delete: reporting empty is allowed.
	h := []Op{
		{Kind: Insert, Pri: 3, Val: 9, OK: true, Start: 4, End: 7},
		{Kind: DeleteMin, OK: false, Start: 5, End: 6},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("overlapping insert flagged: %v", vs)
	}
}

func TestEqualPriorityIsFine(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 2, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 2, Val: 2, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 2, Val: 2, OK: true, Start: 5, End: 6},
		{Kind: DeleteMin, Pri: 2, Val: 1, OK: true, Start: 7, End: 8},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("equal priorities flagged: %v", vs)
	}
}

func TestMalformedInterval(t *testing.T) {
	h := []Op{{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 5, End: 2}}
	requireRule(t, Check(h), "well-formed")
}

func TestEmptinessDirectCases(t *testing.T) {
	// Condition 4, exercised beyond the single-item case: the failed
	// delete must be excused only by removals that overlap it.
	t.Run("witness survives an earlier removal of a different value", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
			{Kind: Insert, Pri: 2, Val: 2, OK: true, Start: 0, End: 1},
			{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 2, End: 3},
			// Value 2 is still definitely present here.
			{Kind: DeleteMin, OK: false, Start: 5, End: 6},
		}
		requireRule(t, Check(h), "emptiness")
	})
	t.Run("empty is fine once every value was removed before", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
			{Kind: Insert, Pri: 2, Val: 2, OK: true, Start: 0, End: 1},
			{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 2, End: 3},
			{Kind: DeleteMin, Pri: 2, Val: 2, OK: true, Start: 2, End: 3},
			{Kind: DeleteMin, OK: false, Start: 5, End: 6},
		}
		if vs := Check(h); len(vs) != 0 {
			t.Fatalf("drained-queue empty flagged: %v", vs)
		}
	})
	t.Run("failed delete before any insert completes is fine", func(t *testing.T) {
		h := []Op{
			{Kind: DeleteMin, OK: false, Start: 0, End: 1},
			{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 2, End: 3},
		}
		if vs := Check(h); len(vs) != 0 {
			t.Fatalf("early empty flagged: %v", vs)
		}
	})
}

func TestDoubleReturnAndNeverInsertedDirect(t *testing.T) {
	t.Run("double return across disjoint windows", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 4, Val: 11, OK: true, Start: 0, End: 1},
			{Kind: DeleteMin, Pri: 4, Val: 11, OK: true, Start: 10, End: 12},
			{Kind: DeleteMin, Pri: 4, Val: 11, OK: true, Start: 100, End: 101},
		}
		requireRule(t, Check(h), "uniqueness")
	})
	t.Run("double return with overlapping windows", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 4, Val: 11, OK: true, Start: 0, End: 1},
			{Kind: DeleteMin, Pri: 4, Val: 11, OK: true, Start: 10, End: 20},
			{Kind: DeleteMin, Pri: 4, Val: 11, OK: true, Start: 12, End: 18},
		}
		requireRule(t, Check(h), "uniqueness")
	})
	t.Run("never-inserted value among legitimate traffic", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
			{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 2, End: 3},
			{Kind: DeleteMin, Pri: 7, Val: 0xdead, OK: true, Start: 2, End: 3},
		}
		requireRule(t, Check(h), "uniqueness")
	})
	t.Run("double insert of one value", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
			{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 2, End: 3},
		}
		requireRule(t, Check(h), "uniqueness")
	})
}

func TestCrashTruncatedPendingInsertAccepted(t *testing.T) {
	// A processor crashed mid-Insert; the value nevertheless surfaced in
	// a survivor's DeleteMin. The pending Insert possibly linearized, so
	// the history must be accepted.
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 1, Val: 1, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 3, Val: 77, OK: true, Start: 10, End: 12},
	}
	pending := []PendingOp{{Kind: Insert, Pri: 3, Val: 77, Start: 5}}
	if vs := CheckTruncated(h, pending); len(vs) != 0 {
		t.Fatalf("pending-insert history flagged: %v", vs)
	}
	// Without the pending op, the same history is an alien-value
	// violation — the truncation handling is what accepts it.
	requireRule(t, Check(h), "uniqueness")
}

func TestCrashTruncatedPendingInsertRules(t *testing.T) {
	t.Run("returned before the pending insert began", func(t *testing.T) {
		h := []Op{
			{Kind: DeleteMin, Pri: 3, Val: 77, OK: true, Start: 0, End: 1},
		}
		pending := []PendingOp{{Kind: Insert, Pri: 3, Val: 77, Start: 5}}
		requireRule(t, CheckTruncated(h, pending), "precedence")
	})
	t.Run("pending insert is no emptiness witness", func(t *testing.T) {
		// Only a pending (possibly never-linearized) insert precedes the
		// failed delete: reporting empty is consistent.
		h := []Op{
			{Kind: DeleteMin, OK: false, Start: 10, End: 11},
		}
		pending := []PendingOp{{Kind: Insert, Pri: 0, Val: 5, Start: 0}}
		if vs := CheckTruncated(h, pending); len(vs) != 0 {
			t.Fatalf("pending insert used as witness: %v", vs)
		}
	})
	t.Run("pending insert returned twice is still a violation", func(t *testing.T) {
		h := []Op{
			{Kind: DeleteMin, Pri: 3, Val: 77, OK: true, Start: 10, End: 11},
			{Kind: DeleteMin, Pri: 3, Val: 77, OK: true, Start: 20, End: 21},
		}
		pending := []PendingOp{{Kind: Insert, Pri: 3, Val: 77, Start: 5}}
		requireRule(t, CheckTruncated(h, pending), "uniqueness")
	})
}

func TestCrashTruncatedPendingDeletes(t *testing.T) {
	base := []Op{
		{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, OK: false, Start: 10, End: 11},
	}
	t.Run("one pending delete excuses one missing value", func(t *testing.T) {
		pending := []PendingOp{{Kind: DeleteMin, Start: 5}}
		if vs := CheckTruncated(base, pending); len(vs) != 0 {
			t.Fatalf("excusable empty flagged: %v", vs)
		}
	})
	t.Run("a pending delete started later excuses nothing", func(t *testing.T) {
		pending := []PendingOp{{Kind: DeleteMin, Start: 50}}
		requireRule(t, CheckTruncated(base, pending), "emptiness")
	})
	t.Run("more witnesses than pending deletes is still a violation", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 1, Val: 1, OK: true, Start: 0, End: 1},
			{Kind: Insert, Pri: 2, Val: 2, OK: true, Start: 0, End: 1},
			{Kind: DeleteMin, OK: false, Start: 10, End: 11},
		}
		pending := []PendingOp{{Kind: DeleteMin, Start: 5}}
		requireRule(t, CheckTruncated(h, pending), "emptiness")
	})
	t.Run("pending delete excuses a priority witness too", func(t *testing.T) {
		h := []Op{
			{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
			{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 0, End: 1},
			{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 10, End: 11},
			{Kind: DeleteMin, Pri: 0, Val: 1, OK: true, Start: 20, End: 21},
		}
		requireRule(t, Check(h), "priority")
		// With a crashed delete possibly linearized inside D's window,
		// the single witness no longer proves an inversion; the checker
		// stays conservative and accepts.
		pending := []PendingOp{{Kind: DeleteMin, Start: 5}}
		if vs := CheckTruncated(h, pending); len(vs) != 0 {
			t.Fatalf("excusable priority inversion flagged: %v", vs)
		}
	})
}

func requireRule(t *testing.T, vs []Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			if !strings.Contains(v.Error(), rule) {
				t.Fatalf("Error() missing rule name: %q", v.Error())
			}
			return
		}
	}
	t.Fatalf("expected %q violation, got %v", rule, vs)
}
