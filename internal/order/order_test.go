package order

import (
	"strings"
	"testing"
)

func TestCleanSequentialHistory(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 2, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 1, Val: 2, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 1, Val: 2, OK: true, Start: 4, End: 5},
		{Kind: DeleteMin, Pri: 2, Val: 1, OK: true, Start: 6, End: 7},
		{Kind: DeleteMin, OK: false, Start: 8, End: 9},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("clean history flagged: %v", vs)
	}
}

func TestDoubleDelivery(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 1, Val: 7, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 1, Val: 7, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 1, Val: 7, OK: true, Start: 4, End: 5},
	}
	requireRule(t, Check(h), "uniqueness")
}

func TestAlienValue(t *testing.T) {
	h := []Op{
		{Kind: DeleteMin, Pri: 1, Val: 99, OK: true, Start: 0, End: 1},
	}
	requireRule(t, Check(h), "uniqueness")
}

func TestPrecedenceViolation(t *testing.T) {
	h := []Op{
		{Kind: DeleteMin, Pri: 1, Val: 5, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 1, Val: 5, OK: true, Start: 10, End: 11},
	}
	requireRule(t, Check(h), "precedence")
}

func TestPriorityViolation(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 0, End: 1},
		// Returns priority 5 while priority 0 sat in the queue untouched.
		{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 10, End: 11},
		{Kind: DeleteMin, Pri: 0, Val: 1, OK: true, Start: 20, End: 21},
	}
	requireRule(t, Check(h), "priority")
}

func TestPriorityToleratesOverlappingRemoval(t *testing.T) {
	// The smaller item's delete overlaps D, so D returning the larger item
	// is consistent.
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 10, End: 13},
		{Kind: DeleteMin, Pri: 0, Val: 1, OK: true, Start: 11, End: 12},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("overlapping removal flagged: %v", vs)
	}
}

func TestEmptinessViolation(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 3, Val: 9, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, OK: false, Start: 5, End: 6},
	}
	requireRule(t, Check(h), "emptiness")
}

func TestEmptinessToleratesOverlap(t *testing.T) {
	// Insert overlaps the failed delete: reporting empty is allowed.
	h := []Op{
		{Kind: Insert, Pri: 3, Val: 9, OK: true, Start: 4, End: 7},
		{Kind: DeleteMin, OK: false, Start: 5, End: 6},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("overlapping insert flagged: %v", vs)
	}
}

func TestEqualPriorityIsFine(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 2, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 2, Val: 2, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 2, Val: 2, OK: true, Start: 5, End: 6},
		{Kind: DeleteMin, Pri: 2, Val: 1, OK: true, Start: 7, End: 8},
	}
	if vs := Check(h); len(vs) != 0 {
		t.Fatalf("equal priorities flagged: %v", vs)
	}
}

func TestMalformedInterval(t *testing.T) {
	h := []Op{{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 5, End: 2}}
	requireRule(t, Check(h), "well-formed")
}

func requireRule(t *testing.T, vs []Violation, rule string) {
	t.Helper()
	for _, v := range vs {
		if v.Rule == rule {
			if !strings.Contains(v.Error(), rule) {
				t.Fatalf("Error() missing rule name: %q", v.Error())
			}
			return
		}
	}
	t.Fatalf("expected %q violation, got %v", rule, vs)
}
