package order

import "testing"

// hasRule reports whether any violation has the given rule name.
func hasRule(vs []Violation, rule string) bool {
	for _, v := range vs {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// TestRelaxedRankBound pins the contract split: a pop that overtakes two
// definitely-present better items is a strict priority violation, legal
// under a rank bound of 2, and a rank-error violation under a bound of 1.
func TestRelaxedRankBound(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 0, Val: 2, OK: true, Start: 2, End: 3},
		{Kind: Insert, Pri: 5, Val: 3, OK: true, Start: 4, End: 5},
		{Kind: DeleteMin, Pri: 5, Val: 3, OK: true, Start: 6, End: 7},
	}
	if vs := Check(h); !hasRule(vs, "priority") {
		t.Fatalf("strict Check must reject the overtaking pop, got %v", vs)
	}
	if vs := CheckRelaxed(h, RelaxedBound{MaxRank: 2}); len(vs) != 0 {
		t.Fatalf("rank bound 2 must allow overtaking 2 items, got %v", vs)
	}
	vs := CheckRelaxed(h, RelaxedBound{MaxRank: 1})
	if !hasRule(vs, "rank-error") {
		t.Fatalf("rank bound 1 must report rank-error for 2 witnesses, got %v", vs)
	}
	if hasRule(vs, "priority") {
		t.Fatalf("relaxed mode must report rank-error, not priority: %v", vs)
	}
}

// TestRelaxedZeroBoundIsStrict: MaxRank 0 degenerates to the strict
// priority rule (with its strict rule name).
func TestRelaxedZeroBoundIsStrict(t *testing.T) {
	h := []Op{
		{Kind: Insert, Pri: 0, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 5, Val: 2, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 5, Val: 2, OK: true, Start: 4, End: 5},
	}
	if vs := CheckRelaxed(h, RelaxedBound{}); !hasRule(vs, "priority") {
		t.Fatalf("MaxRank 0 must keep the strict rule, got %v", vs)
	}
}

// TestRelaxedKeepsSafetyRules: relaxation never excuses emptiness lies,
// duplicated returns, or returns that precede their insert.
func TestRelaxedKeepsSafetyRules(t *testing.T) {
	b := RelaxedBound{MaxRank: 1 << 30}

	empties := []Op{
		{Kind: Insert, Pri: 3, Val: 7, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, OK: false, Start: 2, End: 3},
	}
	if vs := CheckRelaxed(empties, b); !hasRule(vs, "emptiness") {
		t.Fatalf("relaxed mode must keep the emptiness rule, got %v", vs)
	}

	dup := []Op{
		{Kind: Insert, Pri: 1, Val: 9, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, Pri: 1, Val: 9, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 1, Val: 9, OK: true, Start: 4, End: 5},
	}
	if vs := CheckRelaxed(dup, b); !hasRule(vs, "uniqueness") {
		t.Fatalf("relaxed mode must keep the uniqueness rule, got %v", vs)
	}

	early := []Op{
		{Kind: DeleteMin, Pri: 1, Val: 5, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 1, Val: 5, OK: true, Start: 2, End: 3},
	}
	if vs := CheckRelaxed(early, b); !hasRule(vs, "precedence") {
		t.Fatalf("relaxed mode must keep the precedence rule, got %v", vs)
	}
}

// TestRelaxedBatchRules: a relaxed delete batch may return priorities out
// of order, but still may not succeed after reporting dry, and its
// sub-operations must agree on kind and interval.
func TestRelaxedBatchRules(t *testing.T) {
	b := RelaxedBound{MaxRank: 8}

	outOfOrder := []Op{
		{Kind: Insert, Pri: 2, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: Insert, Pri: 4, Val: 2, OK: true, Start: 2, End: 3},
		{Kind: DeleteMin, Pri: 4, Val: 2, OK: true, Start: 4, End: 5, Batch: 1},
		{Kind: DeleteMin, Pri: 2, Val: 1, OK: true, Start: 4, End: 5, Batch: 1},
	}
	if vs := Check(outOfOrder); !hasRule(vs, "batch-order") {
		t.Fatalf("strict batch rule must reject decreasing priorities, got %v", vs)
	}
	if vs := CheckRelaxed(outOfOrder, b); len(vs) != 0 {
		t.Fatalf("relaxed batch may return out of priority order, got %v", vs)
	}

	afterDry := []Op{
		{Kind: Insert, Pri: 2, Val: 1, OK: true, Start: 0, End: 1},
		{Kind: DeleteMin, OK: false, Start: 4, End: 5, Batch: 2},
		{Kind: DeleteMin, Pri: 2, Val: 1, OK: true, Start: 4, End: 5, Batch: 2},
	}
	// The emptiness rule would fire here too; look specifically for the
	// batch rule.
	if vs := CheckRelaxed(afterDry, b); !hasRule(vs, "batch-order") {
		t.Fatalf("relaxed batch must not succeed after dry, got %v", vs)
	}

	splitInterval := []Op{
		{Kind: DeleteMin, Pri: 0, Val: 0, OK: false, Start: 4, End: 5, Batch: 3},
		{Kind: DeleteMin, Pri: 0, Val: 0, OK: false, Start: 6, End: 7, Batch: 3},
	}
	if vs := CheckRelaxed(splitInterval, b); !hasRule(vs, "batch") {
		t.Fatalf("relaxed batch must share one interval, got %v", vs)
	}
}
