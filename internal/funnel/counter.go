package funnel

import (
	"runtime"
	"sync/atomic"
)

// Counter is a combining-funnel shared counter.
//
// In bounded mode (the paper's Section 3.3 algorithm) it supports
// fetch-and-increment and bounded fetch-and-decrement: combining trees
// stay homogeneous because bounded operations do not commute, and
// reversing trees of equal size eliminate, reading (not writing) the
// central value and returning interleaved results.
//
// In unbounded mode it is a plain combining fetch-and-add: any operations
// combine and nothing eliminates.
type Counter struct {
	core    *core[struct{}]
	main    atomic.Int64
	lower   int64
	upper   int64
	bounded bool
}

// NoBound disables one side of a bounded counter's range.
const NoBound = int64(1) << 58

// NewCounter builds a counter with the given initial value. If bounded,
// decrements never take the value below bound (and increments are
// unbounded; see NewCounterBounds for a two-sided range).
func NewCounter(params Params, initial int64, bounded bool, bound int64) *Counter {
	if !bounded {
		return NewCounterBounds(params, initial, -NoBound, NoBound)
	}
	c := NewCounterBounds(params, initial, bound, NoBound)
	return c
}

// NewCounterBounds builds a counter whose value stays in [lower, upper]:
// FaD never goes below lower, FaI never above upper (the paper's bounded
// fetch-and-decrement and the "analogous bounded fetch-and-increment" of
// Section 3.3). Use ±NoBound to disable a side; with both sides disabled
// the counter degenerates to plain combining fetch-and-add, which is also
// what unbounded NewCounter returns.
func NewCounterBounds(params Params, initial, lower, upper int64) *Counter {
	c := &Counter{
		core:    newCore[struct{}](params),
		lower:   lower,
		upper:   upper,
		bounded: lower > -NoBound || upper < NoBound,
	}
	c.main.Store(initial)
	return c
}

// ctrBias offsets counter values into the non-negative result-encoding
// range; counter values must stay within roughly +/- 2^59.
const ctrBias = int64(1) << 59

func encCtr(v int64) uint64 { return uint64(v + ctrBias) }
func decCtr(u uint64) int64 { return int64(u) - ctrBias }

// Value returns a snapshot of the central counter.
func (c *Counter) Value() int64 { return c.main.Load() }

// Stats reports how this counter's operations have resolved so far.
func (c *Counter) Stats() Stats { return c.core.stats.snapshot() }

// FaI performs fetch-and-increment and returns the previous value this
// operation observed.
func (c *Counter) FaI() int64 { return c.op(1) }

// FaD performs (bounded, if the counter is bounded) fetch-and-decrement
// and returns the previous value; in bounded mode a return equal to the
// lower bound means the counter was not decremented.
func (c *Counter) FaD() int64 { return c.op(-1) }

// BFaI is fetch-and-increment against the upper bound: a return equal to
// the upper bound means the counter was not incremented. Identical to FaI
// when no upper bound is set.
func (c *Counter) BFaI() int64 { return c.op(1) }

// Add performs fetch-and-add of delta (+1 or -1 through the funnel);
// other deltas apply directly to the central counter and are intended for
// initialization. Only valid in unbounded mode for arbitrary deltas.
func (c *Counter) Add(delta int64) int64 {
	if delta == 1 || delta == -1 {
		return c.op(delta)
	}
	return c.main.Add(delta) - delta
}

// AddN performs a multi-unit fetch-and-increment of n >= 1 as a single
// funnel operation: one traversal, one central RMW for the whole batch.
// It returns the previous value prev; with an upper bound U the counter
// gained min(n, U-prev) — the prefix that fits, exactly as n sequential
// BFaI calls would have back to back. Same-direction operations still
// combine in the funnel; reversing trees do not eliminate against
// multi-unit operations (there is no exact pairing) and are applied
// centrally on their behalf instead.
func (c *Counter) AddN(n int64) int64 {
	if n < 1 {
		panic("funnel: AddN requires n >= 1")
	}
	return c.op(n)
}

// SubN is the multi-unit bounded fetch-and-decrement: it returns the
// previous value prev, having subtracted min(n, prev-L) for lower bound
// L — the counter never undershoots the bound, exactly as n sequential
// FaD calls would behave back to back.
func (c *Counter) SubN(n int64) int64 {
	if n < 1 {
		panic("funnel: SubN requires n >= 1")
	}
	return c.op(-n)
}

func (c *Counter) op(s int64) int64 {
	my := c.core.begin(s, struct{}{})
	mySum := s
	d := 0
	centralFails := 0
	for {
		var (
			out outcome
			q   *record[struct{}]
		)
		out, q, d, mySum = c.core.collide(my, mySum, c.bounded, d)
		switch out {
		case outCaptured:
			elim, _, base := my.awaitResult()
			return c.distribute(my, s, elim, decCtr(base))

		case outEliminated:
			// The interleaved order starts with whichever operation can
			// move the counter off a bound: increment-first at the lower
			// bound (so the decrement sees lower+1), decrement-first
			// otherwise (which also behaves correctly at the upper bound:
			// both operations succeed and the counter nets to val).
			val := c.main.Load()
			if c.bounded && val <= c.lower {
				val++
			}
			myVal, qVal := val, val-1
			if s > 0 {
				myVal, qVal = val-1, val
			}
			q.result.Store(encodeResult(true, false, encCtr(qVal)))
			return c.distribute(my, s, true, myVal)

		case outIncompatible:
			// We captured a reversing tree q that cannot pair off against
			// ours (a multi-unit member on either side). Apply q centrally
			// on its behalf — clamped by its own direction — hand it its
			// result, and resume our own protocol at the same layer.
			qSum := q.sum.Load()
			for {
				val := c.main.Load()
				nv := val + qSum
				if c.bounded {
					if qSum < 0 && nv < c.lower {
						nv = c.lower
					}
					if qSum > 0 && nv > c.upper {
						nv = c.upper
					}
				}
				if c.main.CompareAndSwap(val, nv) {
					c.core.stats.central.Add(1)
					q.result.Store(encodeResult(false, false, encCtr(val)))
					break
				}
				c.core.stats.centralRetry.Add(1)
				runtime.Gosched()
			}
			my.location.Store(locCode(d))

		case outExit:
			if !my.location.CompareAndSwap(locCode(d), 0) {
				elim, _, base := my.awaitResult()
				return c.distribute(my, s, elim, decCtr(base))
			}
			val := c.main.Load()
			nv := val + mySum
			if c.bounded {
				if s < 0 && nv < c.lower {
					nv = c.lower
				}
				if s > 0 && nv > c.upper {
					nv = c.upper
				}
			}
			if c.main.CompareAndSwap(val, nv) {
				c.core.stats.central.Add(1)
				return c.distribute(my, s, false, val)
			}
			c.core.stats.centralRetry.Add(1)
			// Central contention: back off exponentially before retrying
			// (bare CAS retries among many tree roots convoy), and revive
			// this goroutine's funnel usage — contention means partners.
			if my.factor < 1 {
				my.factor *= 1.5
				if my.factor > 1 {
					my.factor = 1
				}
			}
			my.location.Store(locCode(d))
			spins := 1 << uint(min(centralFails, 6))
			centralFails++
			for i := 0; i < spins; i++ {
				runtime.Gosched()
			}
		}
	}
}

// distribute hands results to direct children (they recurse to theirs)
// and returns this operation's own value.
func (c *Counter) distribute(my *record[struct{}], s int64, elim bool, base int64) int64 {
	total := s
	for _, ch := range my.children {
		if elim {
			ch.rec.result.Store(encodeResult(true, false, encCtr(base)))
			continue
		}
		v := base + total
		if c.bounded {
			if s < 0 && v < c.lower {
				v = c.lower
			}
			if s > 0 && v > c.upper {
				v = c.upper
			}
		}
		ch.rec.result.Store(encodeResult(false, false, encCtr(v)))
		total += ch.sum
	}
	c.core.finish(my)
	return base
}
