// Package funnel implements combining funnels (Shavit & Zemach, PODC
// 1998) natively on Go goroutines and atomics: randomized combining
// layers in which concurrent operations collide, merge into trees, and
// apply in one shot — plus the paper's PODC 1999 extension, a bounded
// fetch-and-decrement counter with homogeneous combining trees and
// elimination of reversing operations.
//
// Two funnel-based objects are provided: Counter (fetch-and-increment /
// bounded fetch-and-decrement, or plain combining fetch-and-add in
// unbounded mode) and Stack (a lock-free-feeling LIFO whose reversing
// push/pop trees eliminate without touching the central stack).
package funnel

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Params tunes a funnel: combining layer widths, collision attempts per
// pass, per-layer linger durations (in spin iterations), and whether each
// goroutine adapts its funnel usage to observed load.
type Params struct {
	// Widths holds each combining layer's width; its length sets the
	// number of layers.
	Widths []int
	// Attempts is the number of collision attempts per pass before the
	// operation tries the central object.
	Attempts int
	// Spin is the per-layer number of linger iterations spent waiting to
	// be collided with after an unsuccessful attempt.
	Spin []int
	// Adaptive enables per-goroutine width/effort adaption.
	Adaptive bool
}

// DefaultParams returns parameters scaled to concurrency level p
// (typically GOMAXPROCS or the expected number of contending goroutines).
func DefaultParams(p int) Params {
	levels := 1
	switch {
	case p >= 224:
		levels = 4
	case p >= 64:
		levels = 3
	case p >= 8:
		levels = 2
	}
	prm := Params{
		Widths:   make([]int, levels),
		Attempts: 3,
		Spin:     make([]int, levels),
		Adaptive: true,
	}
	// Linger iterations scale with expected traffic: with few contenders
	// a partner rarely shows up within any wait.
	spin := p * 4
	if spin < 4 {
		spin = 4
	}
	if spin > 48 {
		spin = 48
	}
	for l := 0; l < levels; l++ {
		w := p >> uint(l+2)
		if w < 1 {
			w = 1
		}
		prm.Widths[l] = w
		prm.Spin[l] = spin
	}
	return prm
}

func (p *Params) levels() int { return len(p.Widths) }

func (p *Params) normalized() Params {
	q := *p
	if len(q.Widths) == 0 {
		q.Widths = []int{1}
	}
	q.Widths = append([]int(nil), q.Widths...)
	for i, w := range q.Widths {
		if w < 1 {
			q.Widths[i] = 1
		}
	}
	if q.Attempts < 1 {
		q.Attempts = 1
	}
	spin := make([]int, len(q.Widths))
	for i := range spin {
		if i < len(q.Spin) && q.Spin[i] > 0 {
			spin[i] = q.Spin[i]
		} else {
			spin[i] = 32
		}
	}
	q.Spin = spin
	return q
}

// Operation result states.
const (
	resEmpty  uint64 = 0
	resMarker uint64 = 1 << 63
	resElim   uint64 = 1 << 62
	resFail   uint64 = 1 << 61
	resValue         = resFail - 1
)

// record is one operation's shared descriptor. Location and result are
// the contended fields; children/members/rng are private to the owning
// goroutine between publication points.
type record[T any] struct {
	location atomic.Uint64 // 0 = not collidable, else layer+1
	sum      atomic.Int64
	result   atomic.Uint64
	item     T

	children []childRef[T]
	members  []*record[T]
	rng      *rand.Rand
	factor   float64
	combined bool
	// units is true while every member of this tree carries a ±1 sum.
	// Only such trees may eliminate: with uniform units, opposite trees
	// of equal size pair off exactly; multi-unit operations (AddN/SubN)
	// have no such pairing and bounce off reversing trees instead.
	units bool
}

type childRef[T any] struct {
	rec *record[T]
	sum int64
}

// Stats counts how operations on a funnel object resolved — useful for
// verifying that combining and elimination actually engage under a given
// workload and parameter set. Counters are updated atomically and may be
// read at any time.
type Stats struct {
	// Combined counts operations absorbed into another operation's tree;
	// Eliminated counts operations retired by meeting a reversing tree;
	// Central counts batches applied to the central object; CentralRetry
	// counts failed central compare-and-swap attempts (Counter only).
	Combined, Eliminated, Central, CentralRetry int64
}

// statCounters is the internal atomic representation.
type statCounters struct {
	combined, eliminated, central, centralRetry atomic.Int64
}

func (s *statCounters) snapshot() Stats {
	return Stats{
		Combined:     s.combined.Load(),
		Eliminated:   s.eliminated.Load(),
		Central:      s.central.Load(),
		CentralRetry: s.centralRetry.Load(),
	}
}

// core is the collision machinery shared by Counter and Stack.
type core[T any] struct {
	params Params
	layers [][]atomic.Pointer[record[T]]
	pool   sync.Pool
	seed   atomic.Int64
	stats  statCounters
}

func newCore[T any](params Params) *core[T] {
	c := &core[T]{params: params.normalized()}
	c.layers = make([][]atomic.Pointer[record[T]], c.params.levels())
	for l, w := range c.params.Widths {
		c.layers[l] = make([]atomic.Pointer[record[T]], w)
	}
	c.pool.New = func() any {
		return &record[T]{
			rng:    rand.New(rand.NewSource(c.seed.Add(0x1e3779b97f4a7c15))),
			factor: 1,
		}
	}
	return c
}

// begin readies a pooled record for an operation with the given sum and
// operand. The operand is written before the location store publishes the
// record, so a capturer's location CAS synchronizes with it.
func (c *core[T]) begin(sum int64, item T) *record[T] {
	my := c.pool.Get().(*record[T])
	my.children = my.children[:0]
	my.members = append(my.members[:0], my)
	my.combined = false
	my.units = sum == 1 || sum == -1
	my.item = item
	my.result.Store(resEmpty)
	my.sum.Store(sum)
	my.location.Store(locCode(0))
	return my
}

// finish recycles a record whose operation has fully completed (location
// and result are both settled and no other goroutine holds it for
// collision purposes).
func (c *core[T]) finish(my *record[T]) {
	if c.params.Adaptive {
		if my.combined {
			my.factor *= 1.4
			if my.factor > 1 {
				my.factor = 1
			}
		} else {
			// Decay gently: one missed collision under real load must not
			// spiral the goroutine out of the funnel.
			my.factor *= 0.85
			if my.factor < 0.15 {
				my.factor = 0.15
			}
		}
	}
	c.pool.Put(my)
}

func locCode(layer int) uint64 { return uint64(layer) + 1 }

type outcome int

const (
	outExit outcome = iota
	outCaptured
	outEliminated
	// outIncompatible: a reversing tree was captured but cannot merge
	// (bounded operations do not commute) or pair off (a member is
	// multi-unit). The caller must apply the captured tree centrally on
	// its behalf and resume its own protocol.
	outIncompatible
)

// collide drives one pass of the collision protocol starting at layer
// start. eliminate selects homogeneous-tree mode (opposite-direction
// trees of equal size eliminate); without it any trees combine, which is
// only legal for unbounded (commuting) operations.
func (c *core[T]) collide(my *record[T], mySum int64, eliminate bool, start int) (outcome, *record[T], int, int64) {
	levels := c.params.levels()
	attempts := c.params.Attempts
	if c.params.Adaptive {
		attempts = scaleInt(attempts, my.factor)
	}
	spinScale := 1.0
	if c.params.Adaptive {
		spinScale = my.factor
	}
	if c.params.Adaptive && my.factor <= 0.2 && start == 0 && !my.combined {
		// Under persistently low load, skip the funnel entirely and go
		// straight for the central object; central contention revives the
		// factor, so this self-corrects.
		return outExit, nil, 0, mySum
	}
	d := start
	for n := 0; n < attempts && d < levels; n++ {
		width := c.params.Widths[d]
		if c.params.Adaptive {
			width = scaleInt(width, my.factor)
		}
		slot := &c.layers[d][my.rng.Intn(width)]
		q := slot.Swap(my)
		if q != nil && q != my {
			if !my.location.CompareAndSwap(locCode(d), 0) {
				return outCaptured, nil, d, mySum
			}
			if q.location.CompareAndSwap(locCode(d), 0) {
				qSum := q.sum.Load()
				if eliminate {
					if qSum+mySum == 0 && my.units && q.units {
						my.combined = true // elimination is a productive collision
						c.stats.eliminated.Add(2)
						return outEliminated, q, d, mySum
					}
					if (qSum < 0) != (mySum < 0) {
						// Reversing trees that cannot pair off exactly: the
						// clamped operations do not commute, so the trees
						// must stay separate. Hand q to the caller to apply
						// centrally on its behalf.
						return outIncompatible, q, d, mySum
					}
				}
				c.stats.combined.Add(1)
				mySum += qSum
				my.sum.Store(mySum)
				my.units = my.units && q.units
				my.children = append(my.children, childRef[T]{rec: q, sum: qSum})
				my.members = append(my.members, q.members...)
				my.combined = true
				d++
				my.location.Store(locCode(d))
				n = -1
				continue
			}
			my.location.Store(locCode(d))
		}
		// Linger hoping to be collided with; under low observed load the
		// adaption factor trims the linger along with width and attempts.
		linger := scaleInt(c.params.Spin[d], spinScale)
		for s := 0; s < linger; s++ {
			if my.location.Load() != locCode(d) {
				return outCaptured, nil, d, mySum
			}
			runtime.Gosched()
		}
	}
	return outExit, nil, d, mySum
}

// awaitResult spins (yielding) until a parent delivers the result.
func (my *record[T]) awaitResult() (elim, fail bool, value uint64) {
	v := my.result.Load()
	for v == resEmpty {
		runtime.Gosched()
		v = my.result.Load()
	}
	return v&resElim != 0, v&resFail != 0, v & resValue
}

func encodeResult(elim, fail bool, value uint64) uint64 {
	v := resMarker | (value & resValue)
	if elim {
		v |= resElim
	}
	if fail {
		v |= resFail
	}
	return v
}

func scaleInt(v int, factor float64) int {
	s := int(float64(v) * factor)
	if s < 1 {
		return 1
	}
	return s
}
