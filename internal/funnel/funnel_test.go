package funnel

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func smallParams() Params {
	return Params{Widths: []int{4, 2}, Attempts: 3, Spin: []int{8, 8}, Adaptive: true}
}

func TestParamsNormalized(t *testing.T) {
	tests := []struct {
		name string
		in   Params
	}{
		{"empty", Params{}},
		{"zero widths", Params{Widths: []int{0, -1}}},
		{"no spin", Params{Widths: []int{3}, Attempts: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.in.normalized()
			if got.Attempts < 1 {
				t.Errorf("Attempts = %d", got.Attempts)
			}
			if len(got.Spin) != len(got.Widths) {
				t.Errorf("Spin len %d != Widths len %d", len(got.Spin), len(got.Widths))
			}
			for i, w := range got.Widths {
				if w < 1 {
					t.Errorf("width[%d] = %d", i, w)
				}
			}
		})
	}
}

func TestDefaultParamsLevels(t *testing.T) {
	tests := []struct {
		procs, want int
	}{{1, 1}, {4, 1}, {8, 2}, {32, 2}, {64, 3}, {128, 3}, {256, 4}}
	for _, tt := range tests {
		p := DefaultParams(tt.procs)
		if got := p.levels(); got != tt.want {
			t.Errorf("DefaultParams(%d).levels() = %d, want %d", tt.procs, got, tt.want)
		}
	}
}

func TestCounterSequential(t *testing.T) {
	c := NewCounter(smallParams(), 0, false, 0)
	for i := int64(0); i < 50; i++ {
		if got := c.FaI(); got != i {
			t.Fatalf("FaI #%d = %d", i, got)
		}
	}
	if got := c.Value(); got != 50 {
		t.Fatalf("Value = %d, want 50", got)
	}
	for i := int64(50); i > 0; i-- {
		if got := c.FaD(); got != i {
			t.Fatalf("FaD = %d, want %d", got, i)
		}
	}
}

func TestCounterBoundedSequential(t *testing.T) {
	c := NewCounter(smallParams(), 2, true, 0)
	if got := c.FaD(); got != 2 {
		t.Fatalf("FaD = %d, want 2", got)
	}
	if got := c.FaD(); got != 1 {
		t.Fatalf("FaD = %d, want 1", got)
	}
	for i := 0; i < 5; i++ {
		if got := c.FaD(); got != 0 {
			t.Fatalf("FaD at bound = %d, want 0", got)
		}
	}
	if got := c.Value(); got != 0 {
		t.Fatalf("Value = %d, want 0", got)
	}
}

func TestCounterConcurrentFaIPermutation(t *testing.T) {
	const goroutines = 16
	const perG = 500
	c := NewCounter(DefaultParams(goroutines), 0, false, 0)
	results := make([][]int64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[g] = make([]int64, 0, perG)
			for i := 0; i < perG; i++ {
				results[g] = append(results[g], c.FaI())
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("final Value = %d, want %d", got, goroutines*perG)
	}
	seen := make([]bool, goroutines*perG)
	for _, rs := range results {
		for _, v := range rs {
			if v < 0 || v >= int64(len(seen)) {
				t.Fatalf("return %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("duplicate return %d", v)
			}
			seen[v] = true
		}
	}
}

func TestCounterConcurrentBoundedInvariant(t *testing.T) {
	const goroutines = 12
	const perG = 400
	c := NewCounter(DefaultParams(goroutines), 0, true, 0)
	type tally struct {
		incs, succDecs int64
		_pad           [6]int64
	}
	tallies := make([]tally, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if (i+g)%2 == 0 {
					c.FaI()
					tallies[g].incs++
				} else if c.FaD() > 0 {
					tallies[g].succDecs++
				}
			}
		}()
	}
	wg.Wait()
	var incs, succ int64
	for g := range tallies {
		incs += tallies[g].incs
		succ += tallies[g].succDecs
	}
	if got := c.Value(); got != incs-succ {
		t.Fatalf("Value = %d, want incs-succ = %d-%d = %d", got, incs, succ, incs-succ)
	}
	if c.Value() < 0 {
		t.Fatalf("bounded counter went negative: %d", c.Value())
	}
}

func TestCounterAddLargeDelta(t *testing.T) {
	c := NewCounter(smallParams(), 0, false, 0)
	if got := c.Add(100); got != 0 {
		t.Fatalf("Add(100) = %d, want 0", got)
	}
	if got := c.Value(); got != 100 {
		t.Fatalf("Value = %d, want 100", got)
	}
}

func TestCounterNegativeValues(t *testing.T) {
	// Unbounded counters may go negative; the result encoding must
	// round-trip negative values.
	const goroutines = 8
	const perG = 200
	c := NewCounter(DefaultParams(goroutines), 0, false, 0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if v := c.FaD(); v < -int64(goroutines*perG) || v > int64(goroutines*perG) {
					t.Errorf("FaD returned wild value %d", v)
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != -goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, -goroutines*perG)
	}
}

func TestStackSequentialLIFO(t *testing.T) {
	s := NewStack[int](smallParams())
	if !s.Empty() {
		t.Fatal("new stack not empty")
	}
	if _, ok := s.Pop(); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
	for i := 1; i <= 10; i++ {
		s.Push(i)
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d, want 10", s.Len())
	}
	for i := 10; i >= 1; i-- {
		v, ok := s.Pop()
		if !ok || v != i {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	if !s.Empty() {
		t.Fatal("drained stack not empty")
	}
}

func TestStackConcurrentMultiset(t *testing.T) {
	const goroutines = 16
	const perG = 300
	s := NewStack[uint64](DefaultParams(goroutines))
	popped := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if (i+g)%2 == 0 {
					s.Push(uint64(g)<<32 | uint64(i) | 1<<48)
				} else if v, ok := s.Pop(); ok {
					popped[g] = append(popped[g], v)
				}
			}
		}()
	}
	wg.Wait()
	seen := map[uint64]int{}
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x popped %d times", v, n)
		}
		if v&(1<<48) == 0 {
			t.Fatalf("alien value %#x", v)
		}
	}
}

func TestStackPointerValues(t *testing.T) {
	// Pointer payloads exercise the GC-zeroing path and elimination item
	// handoff with reference types.
	type payload struct{ n int }
	const goroutines = 8
	const perG = 200
	s := NewStack[*payload](DefaultParams(goroutines))
	var wg sync.WaitGroup
	var got [goroutines]int
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					s.Push(&payload{n: g*perG + i})
				} else if v, ok := s.Pop(); ok {
					if v == nil {
						t.Error("popped nil payload")
						return
					}
					got[g]++
				}
			}
		}()
	}
	wg.Wait()
}

func TestQuickCounterNetEffect(t *testing.T) {
	// Property: for any small batch of concurrent increments per
	// goroutine, the counter's final value equals the total count.
	f := func(counts []uint8) bool {
		if len(counts) == 0 {
			return true
		}
		if len(counts) > 8 {
			counts = counts[:8]
		}
		c := NewCounter(smallParams(), 0, false, 0)
		var wg sync.WaitGroup
		total := int64(0)
		for _, n := range counts {
			n := int64(n % 50)
			total += n
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := int64(0); i < n; i++ {
					c.FaI()
				}
			}()
		}
		wg.Wait()
		return c.Value() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStackConservation(t *testing.T) {
	// Property: pushes minus successful pops equals what remains.
	f := func(pushes, pops uint8) bool {
		s := NewStack[int](smallParams())
		var wg sync.WaitGroup
		nPush := int(pushes%64) + 1
		nPop := int(pops % 64)
		succ := make([]int, 2)
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < nPush; i++ {
				s.Push(i)
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < nPop; i++ {
				if _, ok := s.Pop(); ok {
					succ[1]++
				}
			}
		}()
		wg.Wait()
		return s.Len() == nPush-succ[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestGOMAXPROCS1Progress(t *testing.T) {
	// Funnels must not deadlock when goroutines cannot run in parallel;
	// the spin loops yield.
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	c := NewCounter(DefaultParams(8), 0, true, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c.FaI()
				c.FaD()
			}
		}()
	}
	wg.Wait()
	if c.Value() < 0 {
		t.Fatalf("Value = %d", c.Value())
	}
}

func TestCounterUpperBoundSequential(t *testing.T) {
	c := NewCounterBounds(smallParams(), 8, 0, 10)
	if got := c.BFaI(); got != 8 {
		t.Fatalf("BFaI = %d, want 8", got)
	}
	if got := c.BFaI(); got != 9 {
		t.Fatalf("BFaI = %d, want 9", got)
	}
	for i := 0; i < 4; i++ {
		if got := c.BFaI(); got != 10 {
			t.Fatalf("BFaI at bound = %d, want 10", got)
		}
	}
	if got := c.Value(); got != 10 {
		t.Fatalf("Value = %d, want 10", got)
	}
	// Decrements still work and respect the lower bound.
	for want := int64(10); want > 0; want-- {
		if got := c.FaD(); got != want {
			t.Fatalf("FaD = %d, want %d", got, want)
		}
	}
	if got := c.FaD(); got != 0 {
		t.Fatalf("FaD at lower bound = %d, want 0", got)
	}
}

func TestCounterTwoSidedConcurrentInvariant(t *testing.T) {
	// With both bounds active, the value must always stay inside the
	// range, and the net effect must match the successful operations.
	const goroutines = 10
	const perG = 300
	const lo, hi = 0, 25
	c := NewCounterBounds(DefaultParams(goroutines), 10, lo, hi)
	var wg sync.WaitGroup
	type tally struct {
		succInc, succDec int64
		_pad             [6]int64
	}
	tallies := make([]tally, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if (i+g)%2 == 0 {
					if c.BFaI() < hi {
						tallies[g].succInc++
					}
				} else if c.FaD() > lo {
					tallies[g].succDec++
				}
			}
		}()
	}
	wg.Wait()
	var inc, dec int64
	for g := range tallies {
		inc += tallies[g].succInc
		dec += tallies[g].succDec
	}
	got := c.Value()
	if got != 10+inc-dec {
		t.Fatalf("Value = %d, want 10+%d-%d = %d", got, inc, dec, 10+inc-dec)
	}
	if got < lo || got > hi {
		t.Fatalf("Value %d escaped [%d,%d]", got, lo, hi)
	}
}

func TestFIFOStackSequentialOrder(t *testing.T) {
	s := NewFIFOStack[int](smallParams())
	for i := 1; i <= 6; i++ {
		s.Push(i)
	}
	for want := 1; want <= 6; want++ {
		v, ok := s.Pop()
		if !ok || v != want {
			t.Fatalf("Pop = (%d,%v), want (%d,true)", v, ok, want)
		}
	}
	if !s.Empty() {
		t.Fatal("drained fifo stack not empty")
	}
	// Interleaved reuse after head reset.
	s.Push(7)
	s.Push(8)
	if v, _ := s.Pop(); v != 7 {
		t.Fatalf("after reset Pop = %d, want 7", v)
	}
}

func TestFIFOStackConcurrentMultiset(t *testing.T) {
	const goroutines = 12
	const perG = 300
	s := NewFIFOStack[uint64](DefaultParams(goroutines))
	popped := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if (i+g)%2 == 0 {
					s.Push(uint64(g)<<32 | uint64(i) | 1<<48)
				} else if v, ok := s.Pop(); ok {
					popped[g] = append(popped[g], v)
				}
			}
		}()
	}
	wg.Wait()
	seen := map[uint64]int{}
	for _, vs := range popped {
		for _, v := range vs {
			seen[v]++
		}
	}
	for {
		v, ok := s.Pop()
		if !ok {
			break
		}
		seen[v]++
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("value %#x seen %d times", v, n)
		}
	}
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("stack not empty after drain")
	}
}

func TestStatsReportCombiningActivity(t *testing.T) {
	const goroutines = 16
	c := NewCounter(DefaultParams(goroutines), 1<<40, true, 0)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				if (i+g)%2 == 0 {
					c.FaI()
				} else {
					c.FaD()
				}
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if st.Central == 0 {
		t.Fatal("no central applications recorded")
	}
	total := st.Combined + st.Eliminated + st.Central
	if total == 0 {
		t.Fatalf("no activity recorded: %+v", st)
	}
	// Stack stats too.
	s := NewStack[int](DefaultParams(goroutines))
	s.Push(1)
	if _, ok := s.Pop(); !ok {
		t.Fatal("pop failed")
	}
	if s.Stats().Central == 0 {
		t.Fatalf("stack central not recorded: %+v", s.Stats())
	}
}
