package funnel

import (
	"sync"
	"sync/atomic"
)

// Stack is a combining-funnel stack of values of type V: concurrent
// pushes and pops combine into homogeneous trees in the funnel layers; a
// push tree meeting a pop tree of equal size eliminates, handing items
// directly across without touching the central stack; a tree that exits
// the funnel applies its whole batch to the central stack at once.
//
// Like the funnels it is built from, the stack is quiescently consistent.
//
// The central storage discipline is LIFO by default. NewFIFOStack builds
// the hybrid the paper suggests for fairness-sensitive uses (Section
// 3.2): elimination still happens in the funnel, but the central storage
// hands items out first-in-first-out, which keeps old items of equal
// priority from starving.
type Stack[V any] struct {
	core  *core[V]
	mu    sync.Mutex
	items []V
	head  int // FIFO mode: index of the oldest stored item
	fifo  bool
	size  atomic.Int64
}

// NewStack builds an empty LIFO funnel stack.
func NewStack[V any](params Params) *Stack[V] {
	return &Stack[V]{core: newCore[V](params)}
}

// NewFIFOStack builds the hybrid bin: funnel elimination with FIFO
// central storage.
func NewFIFOStack[V any](params Params) *Stack[V] {
	return &Stack[V]{core: newCore[V](params), fifo: true}
}

// Stats reports how this stack's operations have resolved so far.
func (s *Stack[V]) Stats() Stats { return s.core.stats.snapshot() }

// Len returns a snapshot of the central stack size. It costs one atomic
// read, which is what makes scanning many stacks for emptiness cheap.
func (s *Stack[V]) Len() int { return int(s.size.Load()) }

// Empty reports whether the stack currently looks empty.
func (s *Stack[V]) Empty() bool { return s.size.Load() == 0 }

// Push adds an item.
func (s *Stack[V]) Push(v V) {
	s.run(1, v)
}

// Pop removes an item, or reports ok=false if the stack ran dry.
func (s *Stack[V]) Pop() (V, bool) {
	return s.run(-1, *new(V))
}

// PushN adds all of vs in one central application: one lock hold for the
// whole batch. Batching is itself the amortization, so PushN bypasses the
// collision layers — funnel records carry exactly one item, and a batch
// pretending to be a unit operation would break elimination pairing.
func (s *Stack[V]) PushN(vs []V) {
	if len(vs) == 0 {
		return
	}
	s.core.stats.central.Add(1)
	s.mu.Lock()
	s.items = append(s.items, vs...)
	s.size.Store(int64(len(s.items) - s.head))
	s.mu.Unlock()
}

// PopN removes up to k items in one central application, in the same
// order k sequential Pops would have returned them. Like PushN it goes
// straight to the central stack under one lock hold.
func (s *Stack[V]) PopN(k int) []V {
	if k <= 0 {
		return nil
	}
	s.core.stats.central.Add(1)
	return s.popCentral(k)
}

func (s *Stack[V]) run(dir int64, item V) (V, bool) {
	my := s.core.begin(dir, item)
	mySum := dir
	d := 0
	for {
		var (
			out outcome
			q   *record[V]
		)
		out, q, d, mySum = s.core.collide(my, mySum, true, d)
		switch out {
		case outCaptured:
			_, fail, _ := my.awaitResult()
			v := my.item
			s.core.finish(my)
			return v, !fail

		case outEliminated:
			return s.eliminate(my, q, dir)

		case outIncompatible:
			// Stack trees are always all-unit, so reversing trees of equal
			// size always pair off; collide can never report this here.
			panic("funnel: incompatible stack trees")

		case outExit:
			if !my.location.CompareAndSwap(locCode(d), 0) {
				_, fail, _ := my.awaitResult()
				v := my.item
				s.core.finish(my)
				return v, !fail
			}
			return s.applyCentral(my, dir)
		}
	}
}

// eliminate pairs the members of two equal-size reversing trees; the i-th
// pop receives the i-th push's item. The captured root q's result is
// stored last: q is members[0] of its tree, and storing its result frees
// it to recycle its record — including the members slice this loop is
// still reading — so it must not be released before the loop finishes.
func (s *Stack[V]) eliminate(my, q *record[V], dir int64) (V, bool) {
	pushTree, popTree := my, q
	if dir < 0 {
		pushTree, popTree = q, my
	}
	var ownVal, qItem V
	qIsPop := false
	for i := range my.members {
		pushRec, popRec := pushTree.members[i], popTree.members[i]
		item := pushRec.item
		switch popRec {
		case my:
			ownVal = item
		case q:
			qItem, qIsPop = item, true
		default:
			popRec.item = item
			popRec.result.Store(encodeResult(true, false, 0))
		}
		if pushRec != my && pushRec != q {
			pushRec.result.Store(encodeResult(true, false, 0))
		}
	}
	if qIsPop {
		q.item = qItem
	}
	q.result.Store(encodeResult(true, false, 0))
	s.core.finish(my)
	return ownVal, true
}

// applyCentral applies the whole homogeneous tree to the central stack
// under its lock and hands results to every member.
func (s *Stack[V]) applyCentral(my *record[V], dir int64) (V, bool) {
	s.core.stats.central.Add(1)
	var ownVal V
	ownOK := true
	if dir > 0 {
		s.mu.Lock()
		for _, mem := range my.members {
			s.items = append(s.items, mem.item)
		}
		s.size.Store(int64(len(s.items) - s.head))
		s.mu.Unlock()
		for _, mem := range my.members[1:] {
			mem.result.Store(encodeResult(false, false, 0))
		}
		s.core.finish(my)
		return ownVal, true
	}

	if len(my.members) == 1 {
		// Uncombined pop (the common case at low contention): take one
		// item directly instead of paying popCentral's batch allocation.
		v, ok := s.pop1()
		s.core.finish(my)
		return v, ok
	}

	popped := s.popCentral(len(my.members))
	avail := len(popped)
	for i, mem := range my.members {
		ok := i < avail
		if mem == my {
			if ok {
				ownVal = popped[i]
			} else {
				ownOK = false
			}
			continue
		}
		if ok {
			mem.item = popped[i]
			mem.result.Store(encodeResult(false, false, 0))
		} else {
			mem.result.Store(encodeResult(false, true, 0))
		}
	}
	s.core.finish(my)
	return ownVal, ownOK
}

// pop1 removes one item from the central storage under the stack lock,
// honoring the LIFO/FIFO discipline — popCentral(1) without the result
// slice.
func (s *Stack[V]) pop1() (V, bool) {
	var v, zero V
	s.mu.Lock()
	if len(s.items)-s.head == 0 {
		s.mu.Unlock()
		return v, false
	}
	if s.fifo {
		v = s.items[s.head]
		s.items[s.head] = zero // release the reference for GC
		s.head++
		if s.head == len(s.items) {
			s.items = s.items[:0]
			s.head = 0
		}
	} else {
		last := len(s.items) - 1
		v = s.items[last]
		s.items[last] = zero // release the reference for GC
		s.items = s.items[:last]
	}
	s.size.Store(int64(len(s.items) - s.head))
	s.mu.Unlock()
	return v, true
}

// popCentral removes up to k items from the central storage under the
// stack lock, honoring the LIFO/FIFO discipline, and returns them in
// hand-out order.
func (s *Stack[V]) popCentral(k int) []V {
	s.mu.Lock()
	avail := k
	if n := len(s.items) - s.head; avail > n {
		avail = n
	}
	popped := make([]V, avail)
	var zero V
	if s.fifo {
		front := s.items[s.head : s.head+avail]
		copy(popped, front)
		for i := range front {
			front[i] = zero // release references for GC
		}
		s.head += avail
		if s.head == len(s.items) {
			s.items = s.items[:0]
			s.head = 0
		}
	} else {
		tail := s.items[len(s.items)-avail:]
		for i := 0; i < avail; i++ {
			popped[i] = tail[avail-1-i]
		}
		for i := range tail {
			tail[i] = zero // release references for GC
		}
		s.items = s.items[:len(s.items)-avail]
	}
	s.size.Store(int64(len(s.items) - s.head))
	s.mu.Unlock()
	return popped
}
