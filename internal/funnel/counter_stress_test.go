package funnel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCounterBoundedStress hammers a bounded counter with asymmetric
// decrementer/incrementer populations (the admission-semaphore shape
// pqd uses) and checks, under -race, that:
//
//   - the central value never crosses the lower bound,
//   - every operation's return is consistent with bounded semantics
//     (a decrement returning the bound means "not decremented"), and
//   - at quiescence the value equals initial + effective increments -
//     effective decrements, i.e. eliminated pairs balanced exactly.
func TestCounterBoundedStress(t *testing.T) {
	const (
		lower   = int64(0)
		initial = int64(4)
		perG    = 3000
	)
	decrementers := 6
	incrementers := 3
	if testing.Short() {
		decrementers, incrementers = 3, 2
	}
	c := NewCounter(DefaultParams(decrementers+incrementers), initial, true, lower)

	var (
		wg        sync.WaitGroup
		decs      atomic.Int64 // decrements that took effect
		failsDecs atomic.Int64 // decrements refused at the bound
		incs      atomic.Int64
	)
	for g := 0; g < decrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				prev := c.FaD()
				if prev < lower {
					t.Errorf("FaD observed value %d below bound %d", prev, lower)
					return
				}
				if prev == lower {
					failsDecs.Add(1)
				} else {
					decs.Add(1)
				}
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	for g := 0; g < incrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if prev := c.FaI(); prev < lower {
					t.Errorf("FaI observed value %d below bound %d", prev, lower)
					return
				}
				incs.Add(1)
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if v := c.Value(); v < lower {
		t.Fatalf("final value %d below bound %d", v, lower)
	}
	// Conservation at quiescence: eliminated increment/decrement pairs
	// must have balanced — each pair reports one effective increment
	// and one effective decrement, netting zero — so the central value
	// is exactly initial + incs - decs.
	want := initial + incs.Load() - decs.Load()
	if got := c.Value(); got != want {
		t.Fatalf("final value %d, want initial(%d) + incs(%d) - decs(%d) = %d; refused decs = %d",
			got, initial, incs.Load(), decs.Load(), want, failsDecs.Load())
	}
	if incs.Load() != int64(incrementers*perG) {
		t.Fatalf("lost increments: %d of %d", incs.Load(), incrementers*perG)
	}
	if decs.Load()+failsDecs.Load() != int64(decrementers*perG) {
		t.Fatalf("lost decrements: %d+%d of %d", decs.Load(), failsDecs.Load(), decrementers*perG)
	}
}

// TestCounterUpperBoundStress is the mirrored admission-control case:
// BFaI against an upper bound with concurrent FaD, as pqd's admission
// semaphore runs it. The value must never exceed the upper bound and
// conservation must hold at quiescence.
func TestCounterUpperBoundStress(t *testing.T) {
	const (
		upper = int64(16)
		perG  = 3000
	)
	incrementers := 6
	decrementers := 3
	if testing.Short() {
		incrementers, decrementers = 3, 2
	}
	c := NewCounterBounds(DefaultParams(incrementers+decrementers), 0, 0, upper)

	var (
		wg   sync.WaitGroup
		incs atomic.Int64
		decs atomic.Int64
	)
	for g := 0; g < incrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				prev := c.BFaI()
				if prev > upper {
					t.Errorf("BFaI observed value %d above bound %d", prev, upper)
					return
				}
				if prev < upper {
					incs.Add(1)
				}
			}
		}()
	}
	for g := 0; g < decrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				prev := c.FaD()
				if prev < 0 {
					t.Errorf("FaD observed value %d below bound 0", prev)
					return
				}
				if prev > 0 {
					decs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	got := c.Value()
	if got < 0 || got > upper {
		t.Fatalf("final value %d outside [0,%d]", got, upper)
	}
	if want := incs.Load() - decs.Load(); got != want {
		t.Fatalf("final value %d, want incs(%d) - decs(%d) = %d", got, incs.Load(), decs.Load(), want)
	}
}
