package funnel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCounterBoundedStress hammers a bounded counter with asymmetric
// decrementer/incrementer populations (the admission-semaphore shape
// pqd uses) and checks, under -race, that:
//
//   - the central value never crosses the lower bound,
//   - every operation's return is consistent with bounded semantics
//     (a decrement returning the bound means "not decremented"), and
//   - at quiescence the value equals initial + effective increments -
//     effective decrements, i.e. eliminated pairs balanced exactly.
func TestCounterBoundedStress(t *testing.T) {
	const (
		lower   = int64(0)
		initial = int64(4)
		perG    = 3000
	)
	decrementers := 6
	incrementers := 3
	if testing.Short() {
		decrementers, incrementers = 3, 2
	}
	c := NewCounter(DefaultParams(decrementers+incrementers), initial, true, lower)

	var (
		wg        sync.WaitGroup
		decs      atomic.Int64 // decrements that took effect
		failsDecs atomic.Int64 // decrements refused at the bound
		incs      atomic.Int64
	)
	for g := 0; g < decrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				prev := c.FaD()
				if prev < lower {
					t.Errorf("FaD observed value %d below bound %d", prev, lower)
					return
				}
				if prev == lower {
					failsDecs.Add(1)
				} else {
					decs.Add(1)
				}
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	for g := 0; g < incrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if prev := c.FaI(); prev < lower {
					t.Errorf("FaI observed value %d below bound %d", prev, lower)
					return
				}
				incs.Add(1)
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if v := c.Value(); v < lower {
		t.Fatalf("final value %d below bound %d", v, lower)
	}
	// Conservation at quiescence: eliminated increment/decrement pairs
	// must have balanced — each pair reports one effective increment
	// and one effective decrement, netting zero — so the central value
	// is exactly initial + incs - decs.
	want := initial + incs.Load() - decs.Load()
	if got := c.Value(); got != want {
		t.Fatalf("final value %d, want initial(%d) + incs(%d) - decs(%d) = %d; refused decs = %d",
			got, initial, incs.Load(), decs.Load(), want, failsDecs.Load())
	}
	if incs.Load() != int64(incrementers*perG) {
		t.Fatalf("lost increments: %d of %d", incs.Load(), incrementers*perG)
	}
	if decs.Load()+failsDecs.Load() != int64(decrementers*perG) {
		t.Fatalf("lost decrements: %d+%d of %d", decs.Load(), failsDecs.Load(), decrementers*perG)
	}
}

// TestCounterMultiUnitLowerBoundStress mixes multi-unit AddN/SubN with
// unit FaI/FaD against a lower bound. Multi-unit trees cannot eliminate
// (only all-unit trees pair off exactly), so mixed-sign collisions here
// drive the incompatible-capture path: the capturer applies the captured
// tree centrally on its behalf. The value must never undershoot the
// bound and conservation must hold at quiescence, with each op's
// effective amount derived from its returned prev per the clamped
// min(n, prev-lower) / plain-add semantics.
func TestCounterMultiUnitLowerBoundStress(t *testing.T) {
	const (
		lower   = int64(0)
		initial = int64(8)
		perG    = 2000
	)
	adders := 3
	subbers := 5
	if testing.Short() {
		adders, subbers = 2, 3
	}
	c := NewCounter(DefaultParams(adders+subbers), initial, true, lower)

	var (
		wg    sync.WaitGroup
		added atomic.Int64 // effective amount added
		taken atomic.Int64 // effective amount subtracted
	)
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := int64(i%5 + 1)
				var prev int64
				if n == 1 {
					prev = c.FaI()
				} else {
					prev = c.AddN(n)
				}
				if prev < lower {
					t.Errorf("AddN(%d) observed value %d below bound %d", n, prev, lower)
					return
				}
				added.Add(n) // lower-bounded counter never clamps additions
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}(g)
	}
	for g := 0; g < subbers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := int64((i+g)%5 + 1)
				var prev int64
				if n == 1 {
					prev = c.FaD()
				} else {
					prev = c.SubN(n)
				}
				if prev < lower {
					t.Errorf("SubN(%d) observed value %d below bound %d", n, prev, lower)
					return
				}
				if eff := prev - lower; eff < n {
					taken.Add(eff)
				} else {
					taken.Add(n)
				}
				if i%64 == 0 {
					runtime.Gosched()
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	got := c.Value()
	if got < lower {
		t.Fatalf("final value %d below bound %d", got, lower)
	}
	if want := initial + added.Load() - taken.Load(); got != want {
		t.Fatalf("final value %d, want initial(%d) + added(%d) - taken(%d) = %d",
			got, initial, added.Load(), taken.Load(), want)
	}
}

// TestCounterMultiUnitUpperBoundStress mirrors the multi-unit stress
// against an upper bound: AddN clamps to min(n, upper-prev) while SubN
// clamps at the lower bound, and the value must stay inside [0, upper]
// throughout with exact books at quiescence.
func TestCounterMultiUnitUpperBoundStress(t *testing.T) {
	const (
		upper = int64(24)
		perG  = 2000
	)
	adders := 5
	subbers := 3
	if testing.Short() {
		adders, subbers = 3, 2
	}
	c := NewCounterBounds(DefaultParams(adders+subbers), 0, 0, upper)

	var (
		wg    sync.WaitGroup
		added atomic.Int64
		taken atomic.Int64
	)
	for g := 0; g < adders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := int64((i+g)%5 + 1)
				prev := c.AddN(n)
				if prev > upper || prev < 0 {
					t.Errorf("AddN(%d) observed value %d outside [0,%d]", n, prev, upper)
					return
				}
				if eff := upper - prev; eff < n {
					added.Add(eff)
				} else {
					added.Add(n)
				}
			}
		}(g)
	}
	for g := 0; g < subbers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := int64(i%5 + 1)
				prev := c.SubN(n)
				if prev > upper || prev < 0 {
					t.Errorf("SubN(%d) observed value %d outside [0,%d]", n, prev, upper)
					return
				}
				if eff := prev; eff < n {
					taken.Add(eff)
				} else {
					taken.Add(n)
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	got := c.Value()
	if got < 0 || got > upper {
		t.Fatalf("final value %d outside [0,%d]", got, upper)
	}
	if want := added.Load() - taken.Load(); got != want {
		t.Fatalf("final value %d, want added(%d) - taken(%d) = %d", got, added.Load(), taken.Load(), want)
	}
}

// TestCounterUpperBoundStress is the mirrored admission-control case:
// BFaI against an upper bound with concurrent FaD, as pqd's admission
// semaphore runs it. The value must never exceed the upper bound and
// conservation must hold at quiescence.
func TestCounterUpperBoundStress(t *testing.T) {
	const (
		upper = int64(16)
		perG  = 3000
	)
	incrementers := 6
	decrementers := 3
	if testing.Short() {
		incrementers, decrementers = 3, 2
	}
	c := NewCounterBounds(DefaultParams(incrementers+decrementers), 0, 0, upper)

	var (
		wg   sync.WaitGroup
		incs atomic.Int64
		decs atomic.Int64
	)
	for g := 0; g < incrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				prev := c.BFaI()
				if prev > upper {
					t.Errorf("BFaI observed value %d above bound %d", prev, upper)
					return
				}
				if prev < upper {
					incs.Add(1)
				}
			}
		}()
	}
	for g := 0; g < decrementers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				prev := c.FaD()
				if prev < 0 {
					t.Errorf("FaD observed value %d below bound 0", prev)
					return
				}
				if prev > 0 {
					decs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	got := c.Value()
	if got < 0 || got > upper {
		t.Fatalf("final value %d outside [0,%d]", got, upper)
	}
	if want := incs.Load() - decs.Load(); got != want {
		t.Fatalf("final value %d, want incs(%d) - decs(%d) = %d", got, incs.Load(), decs.Load(), want)
	}
}
