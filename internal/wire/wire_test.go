package wire

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TInsert, ID: 1, Payload: Insert{Queue: "q", Item: Item{Pri: 3, Value: []byte("v")}}.Append(nil)},
		{Type: TDeleteMin, ID: 2, Payload: QueueReq{Queue: "q"}.Append(nil)},
		{Type: TEmpty, ID: 3},
		{Type: TError, ID: 4, Payload: ErrorMsg{Msg: "boom"}.Append(nil)},
	}
	var buf []byte
	for _, f := range frames {
		buf = AppendFrame(buf, f)
	}
	// Decode back from the concatenated stream.
	for i, want := range frames {
		f, n, err := DecodeFrame(buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = buf[n:]
		if f.Type != want.Type || f.ID != want.ID || !bytes.Equal(f.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, f, want)
		}
		if f.Version != Version {
			t.Fatalf("frame %d: version = %d", i, f.Version)
		}
	}
	if len(buf) != 0 {
		t.Fatalf("%d bytes left over", len(buf))
	}
}

func TestReadWriteFrame(t *testing.T) {
	var buf bytes.Buffer
	want := Frame{Type: TItems, ID: 99, Payload: Items{Items: []Item{{Pri: 1, Value: []byte("a")}, {Pri: 2}}}.Append(nil)}
	if err := WriteFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v want %+v", got, want)
	}
}

func TestDecodeFrameErrors(t *testing.T) {
	if _, _, err := DecodeFrame([]byte{0, 0}); !errors.Is(err, ErrShort) {
		t.Errorf("tiny buffer: %v", err)
	}
	// Length prefix larger than MaxFrame.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, _, err := DecodeFrame(huge); !errors.Is(err, ErrTooLarge) {
		t.Errorf("huge length: %v", err)
	}
	// Length below header size.
	small := []byte{0, 0, 0, 2, 0, 0}
	if _, _, err := DecodeFrame(small); !errors.Is(err, ErrBadPayload) {
		t.Errorf("undersized length: %v", err)
	}
	// Wrong version.
	f := AppendFrame(nil, Frame{Type: TEmpty, ID: 1})
	f[4] = 9
	if _, _, err := DecodeFrame(f); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: %v", err)
	}
	// Nonzero flags.
	f = AppendFrame(nil, Frame{Type: TEmpty, ID: 1})
	f[6] = 1
	if _, _, err := DecodeFrame(f); !errors.Is(err, ErrBadFlags) {
		t.Errorf("bad flags: %v", err)
	}
	// Split frame: ErrShort until the full frame arrives.
	full := AppendFrame(nil, Frame{Type: TInsert, ID: 5, Payload: Insert{Queue: "q", Item: Item{Pri: 1, Value: []byte("xy")}}.Append(nil)})
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeFrame(full[:cut]); !errors.Is(err, ErrShort) {
			t.Fatalf("cut %d: %v", cut, err)
		}
	}
}

// TestBadVersionResync checks the rollout guarantee from the package
// doc: a frame with an unknown version (or nonzero reserved flags) is
// consumed in full — header fields reported so a TError can be sent by
// id — and the next frame on the stream decodes normally.
func TestBadVersionResync(t *testing.T) {
	bad := AppendFrame(nil, Frame{Type: TInsert, ID: 7, Payload: Insert{Queue: "q", Item: Item{Pri: 1, Value: []byte("xyz")}}.Append(nil)})
	bad[4] = 9 // future version
	good := Frame{Type: TStats, ID: 8, Payload: QueueReq{Queue: "q"}.Append(nil)}
	stream := append(append([]byte{}, bad...), AppendFrame(nil, good)...)

	f, n, err := DecodeFrame(stream)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("bad version: %v", err)
	}
	if n != len(bad) {
		t.Fatalf("consumed %d bytes, want the whole %d-byte frame", n, len(bad))
	}
	if f.Version != 9 || f.ID != 7 {
		t.Fatalf("header not reported: %+v", f)
	}
	if f2, _, err := DecodeFrame(stream[n:]); err != nil || f2.ID != good.ID {
		t.Fatalf("resync failed: %+v %v", f2, err)
	}

	// Same via ReadFrame, plus the flags variant.
	badFlags := AppendFrame(nil, Frame{Type: TDrain, ID: 11, Payload: QueueReq{Queue: "q"}.Append(nil)})
	badFlags[6] = 1
	r := bytes.NewReader(append(append(append([]byte{}, bad...), badFlags...), AppendFrame(nil, good)...))
	if f, err := ReadFrame(r); !errors.Is(err, ErrBadVersion) || f.ID != 7 {
		t.Fatalf("ReadFrame bad version: %+v %v", f, err)
	}
	if f, err := ReadFrame(r); !errors.Is(err, ErrBadFlags) || f.ID != 11 {
		t.Fatalf("ReadFrame bad flags: %+v %v", f, err)
	}
	if f, err := ReadFrame(r); err != nil || f.ID != good.ID {
		t.Fatalf("ReadFrame after resync: %+v %v", f, err)
	}
}

func TestPayloadRoundTrips(t *testing.T) {
	ins := Insert{Queue: "jobs", Item: Item{Pri: 7, Value: []byte("hello")}}
	if got, err := DecodeInsert(ins.Append(nil)); err != nil || !reflect.DeepEqual(got, ins) {
		t.Errorf("Insert: got %+v err %v", got, err)
	}

	ib := InsertBatch{Queue: "jobs", Items: []Item{{Pri: 0, Value: []byte("a")}, {Pri: 9, Value: nil}}}
	got, err := DecodeInsertBatch(ib.Append(nil))
	if err != nil || got.Queue != ib.Queue || len(got.Items) != 2 ||
		got.Items[0].Pri != 0 || !bytes.Equal(got.Items[0].Value, []byte("a")) ||
		got.Items[1].Pri != 9 || len(got.Items[1].Value) != 0 {
		t.Errorf("InsertBatch: got %+v err %v", got, err)
	}

	dmb := DeleteMinBatch{Queue: "jobs", Max: 128}
	if got, err := DecodeDeleteMinBatch(dmb.Append(nil)); err != nil || got != dmb {
		t.Errorf("DeleteMinBatch: got %+v err %v", got, err)
	}

	ok := InsertOK{Accepted: 3, Rejected: 2, RetryAfterMillis: 10}
	if got, err := DecodeInsertOK(ok.Append(nil)); err != nil || got != ok {
		t.Errorf("InsertOK: got %+v err %v", got, err)
	}

	ra := RetryAfter{Millis: 25}
	if got, err := DecodeRetryAfter(ra.Append(nil)); err != nil || got != ra {
		t.Errorf("RetryAfter: got %+v err %v", got, err)
	}

	dr := Drained{Remaining: 1 << 40}
	if got, err := DecodeDrained(dr.Append(nil)); err != nil || got != dr {
		t.Errorf("Drained: got %+v err %v", got, err)
	}

	em := ErrorMsg{Msg: "no such queue"}
	if got, err := DecodeErrorMsg(em.Append(nil)); err != nil || got != em {
		t.Errorf("ErrorMsg: got %+v err %v", got, err)
	}
}

func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	p := append(QueueReq{Queue: "q"}.Append(nil), 0xfe)
	if _, err := DecodeQueueReq(p); err == nil {
		t.Error("trailing garbage accepted")
	}
}

func TestDecodeBatchRejectsAbsurdCounts(t *testing.T) {
	// A batch claiming 2^20 items in a tiny payload must fail before
	// allocating item headers.
	p := appendStr(nil, "q")
	p = append(p, 0x00, 0x10, 0x00, 0x00) // count = 1<<20
	if _, err := DecodeInsertBatch(p); err == nil {
		t.Error("absurd batch count accepted")
	}
	if _, err := DecodeItems([]byte{0x00, 0x10, 0x00, 0x00}); err == nil {
		t.Error("absurd items count accepted")
	}
}
