package wire

import (
	"sync"
	"sync/atomic"
)

// Buffer freelist for the serving hot path.
//
// Frame payloads, response scratch, and item envelopes all want the
// same thing: a []byte obtained and released once per request with no
// per-op allocation. sync.Pool cannot hold bare []byte without boxing
// the slice header on every Put (an allocation — exactly what this
// exists to remove), and the pointer-box idiom (*[]byte) loses the box
// the moment a buffer flows into the queue as a plain value. So this
// is a hand-rolled freelist: a few power-of-two size classes, each
// striped across mutex-guarded stacks to keep unrelated connections
// off each other's cache lines.
//
// Ownership is explicit: GetBuf transfers the buffer to the caller,
// PutBuf transfers it back. Nothing here zeroes memory — callers must
// treat a fresh buffer's contents as garbage — and double-Put is a
// corruption bug just like double-free.

const (
	numBufClasses = 4
	numBufStripes = 16
	stripeMask    = numBufStripes - 1
)

// bufClassSizes are the capacities handed out per class. The largest
// covers a maximal encoded frame (4-byte length prefix + MaxFrame).
var bufClassSizes = [numBufClasses]int{512, 8 << 10, 128 << 10, MaxFrame + 16}

// bufClassCaps bound how many free buffers one stripe retains per
// class, so a burst cannot pin memory forever. Worst-case retention is
// sum(classSize*classCap)*numStripes ≈ 29 MiB, reached only if that
// many buffers were actually in flight at once.
var bufClassCaps = [numBufClasses]int{64, 32, 4, 1}

type bufStripe struct {
	mu   sync.Mutex
	free [numBufClasses][][]byte
	_    [64]byte // keep neighbouring stripes off one cache line
}

var (
	bufStripes [numBufStripes]bufStripe
	bufCursor  atomic.Uint32
)

// bufProbes bounds how many stripes one Get or Put examines before
// giving up (allocating or dropping). Gets advance the shared cursor;
// Puts aim at the stripe the next Get will probe first, so a
// get/put/get/put cadence reuses one buffer without ever probing past
// its home stripe.
const bufProbes = 4

func bufClassFor(n int) int {
	for i, sz := range bufClassSizes {
		if n <= sz {
			return i
		}
	}
	return -1
}

// GetBuf returns a buffer with len 0 and cap ≥ n, from the freelist
// when possible. The caller owns it until PutBuf.
func GetBuf(n int) []byte {
	ci := bufClassFor(n)
	if ci < 0 {
		return make([]byte, 0, n)
	}
	start := bufCursor.Add(1)
	for i := uint32(0); i < bufProbes; i++ {
		st := &bufStripes[(start+i)&stripeMask]
		st.mu.Lock()
		if fl := st.free[ci]; len(fl) > 0 {
			b := fl[len(fl)-1]
			fl[len(fl)-1] = nil
			st.free[ci] = fl[:len(fl)-1]
			st.mu.Unlock()
			return b
		}
		st.mu.Unlock()
	}
	return make([]byte, 0, bufClassSizes[ci])
}

// PutBuf returns a buffer to the freelist. Buffers smaller than the
// smallest class (or nil) are dropped; oversize buffers land in the
// largest class they can serve. The caller must not touch b afterward.
func PutBuf(b []byte) {
	c := cap(b)
	ci := -1
	for i := numBufClasses - 1; i >= 0; i-- {
		if c >= bufClassSizes[i] {
			ci = i
			break
		}
	}
	if ci < 0 {
		return
	}
	b = b[:0]
	start := bufCursor.Load() + 1
	for i := uint32(0); i < bufProbes; i++ {
		st := &bufStripes[(start+i)&stripeMask]
		st.mu.Lock()
		if len(st.free[ci]) < bufClassCaps[ci] {
			st.free[ci] = append(st.free[ci], b)
			st.mu.Unlock()
			return
		}
		st.mu.Unlock()
	}
	// Every probed stripe is at capacity: let the GC take it.
}
