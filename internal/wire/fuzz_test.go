package wire

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes through the frame decoder and,
// when a frame decodes, through the typed payload decoders — asserting
// the decoder never panics, never over-consumes, and that whatever
// decodes re-encodes to an equivalent frame (round-trip stability).
func FuzzDecodeFrame(f *testing.F) {
	seed := [][]byte{
		AppendFrame(nil, Frame{Type: TInsert, ID: 1, Payload: Insert{Queue: "q", Item: Item{Pri: 3, Value: []byte("v")}}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TInsertBatch, ID: 2, Payload: InsertBatch{Queue: "q", Items: []Item{{Pri: 1, Value: []byte("a")}, {Pri: 2, Value: []byte("bb")}}}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TDeleteMin, ID: 3, Payload: QueueReq{Queue: "q"}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TDeleteMinBatch, ID: 4, Payload: DeleteMinBatch{Queue: "q", Max: 16}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TStats, ID: 5, Payload: QueueReq{Queue: "q"}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TDrain, ID: 6, Payload: QueueReq{Queue: "q"}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TInsertOK, ID: 7, Payload: InsertOK{Accepted: 1}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TItem, ID: 8, Payload: AppendItem(nil, Item{Pri: 9, Value: []byte("x")})}),
		AppendFrame(nil, Frame{Type: TEmpty, ID: 9}),
		AppendFrame(nil, Frame{Type: TItems, ID: 10, Payload: Items{Items: []Item{{Pri: 0, Value: nil}}}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TRetryAfter, ID: 11, Payload: RetryAfter{Millis: 5}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TDrained, ID: 12, Payload: Drained{Remaining: 7}.Append(nil)}),
		AppendFrame(nil, Frame{Type: TError, ID: 13, Payload: ErrorMsg{Msg: "e"}.Append(nil)}),
		{0, 0, 0, 0},
		{0xff, 0xff, 0xff, 0xff, 1, 1},
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			// Bad version/flags are recoverable: the whole frame must
			// have been consumed so the caller can resync. Every other
			// error must consume nothing.
			if errors.Is(err, ErrBadVersion) || errors.Is(err, ErrBadFlags) {
				if n < 4+headerLen || n > len(data) {
					t.Fatalf("recoverable %v consumed %d of %d bytes", err, n, len(data))
				}
			} else if n != 0 {
				t.Fatalf("error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < 4+headerLen || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Re-encoding the decoded frame must reproduce the consumed bytes.
		if re := AppendFrame(nil, fr); !bytes.Equal(re, data[:n]) {
			t.Fatalf("re-encode mismatch:\n got %x\nwant %x", re, data[:n])
		}
		// Typed payload decode must not panic; when it succeeds, the
		// typed re-encode must reproduce the payload byte-for-byte.
		msg, err := DecodePayload(fr)
		if err != nil {
			if !errors.Is(err, ErrBadPayload) && !errors.Is(err, ErrUnknownType) {
				t.Fatalf("unexpected decode error: %v", err)
			}
			return
		}
		var re []byte
		switch m := msg.(type) {
		case Insert:
			re = m.Append(nil)
		case InsertBatch:
			re = m.Append(nil)
		case QueueReq:
			re = m.Append(nil)
		case DeleteMinBatch:
			re = m.Append(nil)
		case InsertOK:
			re = m.Append(nil)
		case Item:
			re = AppendItem(nil, m)
		case Items:
			re = m.Append(nil)
		case RetryAfter:
			re = m.Append(nil)
		case Drained:
			re = m.Append(nil)
		case ErrorMsg:
			re = m.Append(nil)
		case nil: // TEmpty
			re = nil
		case []byte: // TStatsReply is opaque
			return
		default:
			t.Fatalf("unhandled payload type %T", msg)
		}
		if !bytes.Equal(re, fr.Payload) {
			t.Fatalf("payload re-encode mismatch for %v:\n got %x\nwant %x", fr.Type, re, fr.Payload)
		}
	})
}
