package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
)

// Cluster map: the static routing table for multi-node pqd. Each node
// owns one or more half-open priority ranges; together the ranges of
// all nodes must partition [0, Priorities) exactly — no overlaps, no
// gaps — so every priority has exactly one owner and a client can
// route an INSERT without asking anyone. The map is versioned: nodes
// serve their map (version included) in STATS v4 and on /statusz, and
// a node that receives an insert outside its own ranges NACKs it with
// TWrongNode carrying its map version, so a client holding a stale map
// learns both the right owner and that it should refetch.
//
// The map is JSON on disk (see LoadClusterMap) and JSON inside
// QueueStats.Cluster, deliberately the same shape:
//
//	{
//	  "version": 1,
//	  "priorities": 64,
//	  "nodes": [
//	    {"addr": "127.0.0.1:7931", "ranges": [{"lo": 0,  "hi": 21}]},
//	    {"addr": "127.0.0.1:7932", "ranges": [{"lo": 21, "hi": 43}]},
//	    {"addr": "127.0.0.1:7933", "ranges": [{"lo": 43, "hi": 64}]}
//	  ]
//	}

// ClusterRange is one half-open priority interval [Lo, Hi) owned by a
// node.
type ClusterRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// ClusterNode is one pqd node: its client-reachable address and the
// priority ranges it owns.
type ClusterNode struct {
	Addr   string         `json:"addr"`
	Ranges []ClusterRange `json:"ranges"`
}

// ClusterMap is the versioned routing table shared by every node and
// client of one cluster. Call Validate before use; it also builds the
// lookup index OwnerOf needs.
type ClusterMap struct {
	Version    uint64        `json:"version"`
	Priorities int           `json:"priorities"`
	Nodes      []ClusterNode `json:"nodes"`

	// index is the validated routing table: ranges sorted by Lo, each
	// carrying its owning node's position in Nodes. Built by Validate,
	// never serialized.
	index []ownedRange
}

type ownedRange struct {
	lo, hi int
	node   int
}

// Validate checks the map invariants and builds the OwnerOf index:
// version >= 1, at least one node, unique non-empty addresses,
// well-formed ranges, and the ranges of all nodes together partition
// [0, Priorities) with no overlap and no gap.
func (m *ClusterMap) Validate() error {
	if m.Version < 1 {
		return errors.New("cluster map: version must be >= 1")
	}
	if m.Priorities < 1 {
		return fmt.Errorf("cluster map: priorities must be >= 1, got %d", m.Priorities)
	}
	if len(m.Nodes) == 0 {
		return errors.New("cluster map: no nodes")
	}
	seen := make(map[string]bool, len(m.Nodes))
	index := make([]ownedRange, 0, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Addr == "" {
			return fmt.Errorf("cluster map: node %d has no addr", i)
		}
		if seen[n.Addr] {
			return fmt.Errorf("cluster map: duplicate node addr %q", n.Addr)
		}
		seen[n.Addr] = true
		if len(n.Ranges) == 0 {
			return fmt.Errorf("cluster map: node %q owns no ranges", n.Addr)
		}
		for _, r := range n.Ranges {
			if r.Lo < 0 || r.Hi > m.Priorities || r.Lo >= r.Hi {
				return fmt.Errorf("cluster map: node %q has bad range [%d,%d) over %d priorities",
					n.Addr, r.Lo, r.Hi, m.Priorities)
			}
			index = append(index, ownedRange{lo: r.Lo, hi: r.Hi, node: i})
		}
	}
	sort.Slice(index, func(a, b int) bool { return index[a].lo < index[b].lo })
	at := 0
	for _, r := range index {
		if r.lo > at {
			return fmt.Errorf("cluster map: priorities [%d,%d) owned by no node", at, r.lo)
		}
		if r.lo < at {
			return fmt.Errorf("cluster map: ranges overlap at priority %d (%q claims [%d,%d))",
				r.lo, m.Nodes[r.node].Addr, r.lo, r.hi)
		}
		at = r.hi
	}
	if at != m.Priorities {
		return fmt.Errorf("cluster map: priorities [%d,%d) owned by no node", at, m.Priorities)
	}
	m.index = index
	return nil
}

// Clone deep-copies the map (nodes, ranges, and no index — Validate
// the clone before use). Sharing one *ClusterMap across goroutines is
// safe only after a single Validate; components that ingest a
// caller-supplied map clone it first so a later Validate elsewhere
// cannot race their reads.
func (m *ClusterMap) Clone() *ClusterMap {
	out := &ClusterMap{Version: m.Version, Priorities: m.Priorities, Nodes: make([]ClusterNode, len(m.Nodes))}
	for i, n := range m.Nodes {
		out.Nodes[i] = ClusterNode{Addr: n.Addr, Ranges: append([]ClusterRange(nil), n.Ranges...)}
	}
	return out
}

// OwnerOf returns the index into Nodes of the node owning priority
// pri. The map must have passed Validate; ok is false only for a
// priority outside [0, Priorities).
func (m *ClusterMap) OwnerOf(pri int) (node int, ok bool) {
	if pri < 0 || pri >= m.Priorities || m.index == nil {
		return 0, false
	}
	// Binary search: rightmost range with lo <= pri. The partition
	// invariant guarantees it contains pri.
	i := sort.Search(len(m.index), func(j int) bool { return m.index[j].lo > pri }) - 1
	return m.index[i].node, true
}

// NodeIndex returns the position in Nodes of the node with the given
// address, or -1.
func (m *ClusterMap) NodeIndex(addr string) int {
	for i, n := range m.Nodes {
		if n.Addr == addr {
			return i
		}
	}
	return -1
}

// ParseClusterMap unmarshals and validates a JSON cluster map.
func ParseClusterMap(data []byte) (*ClusterMap, error) {
	var m ClusterMap
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("cluster map: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// LoadClusterMap reads and validates a JSON cluster map file.
func LoadClusterMap(path string) (*ClusterMap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseClusterMap(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// ClusterStats is the cluster block attached to QueueStats from
// stats_version 4 on a node running with a cluster map. It carries the
// full map — a client can bootstrap or refresh its routing table from
// any node's STATS — plus which node this is and how many misrouted
// inserts it has NACKed.
type ClusterStats struct {
	MapVersion uint64        `json:"map_version"`
	Priorities int           `json:"priorities"`
	Self       string        `json:"self"`
	Nodes      []ClusterNode `json:"nodes"`
	Misroutes  int64         `json:"misroutes"`
}

// Map reconstructs a validated ClusterMap from the stats block.
func (cs *ClusterStats) Map() (*ClusterMap, error) {
	m := &ClusterMap{Version: cs.MapVersion, Priorities: cs.Priorities, Nodes: cs.Nodes}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// WrongNode is the TWrongNode response payload: the receiving node does
// not own the priority of an INSERT (or of some item in an
// INSERT_BATCH). Owner is the address of the node that does own it
// under the server's map ("" if the priority is out of range for the
// whole map), and MapVersion lets a client detect that its own map is
// stale and refetch before re-routing.
type WrongNode struct {
	MapVersion uint64
	Owner      string
}

func (m WrongNode) Append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, m.MapVersion)
	return appendStr(dst, m.Owner)
}

func DecodeWrongNode(p []byte) (WrongNode, error) {
	c := cursor{p}
	var m WrongNode
	var err error
	if m.MapVersion, err = c.u64(); err != nil {
		return m, err
	}
	if m.Owner, err = c.str(); err != nil {
		return m, err
	}
	return m, c.end()
}
