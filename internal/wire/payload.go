package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Payload encoding primitives: strings carry a uint16 length prefix
// (queue names), byte blobs a uint32 prefix (values), integers are
// big-endian. Each message type has an Append/Decode pair; Decode
// rejects trailing garbage so a frame means exactly one message.

// MaxBatchItems bounds the item count a single batch frame may carry,
// keeping worst-case decode allocation proportional to the frame size.
const MaxBatchItems = 1 << 16

type cursor struct {
	b []byte
}

func (c *cursor) u16() (uint16, error) {
	if len(c.b) < 2 {
		return 0, ErrBadPayload
	}
	v := binary.BigEndian.Uint16(c.b)
	c.b = c.b[2:]
	return v, nil
}

func (c *cursor) u32() (uint32, error) {
	if len(c.b) < 4 {
		return 0, ErrBadPayload
	}
	v := binary.BigEndian.Uint32(c.b)
	c.b = c.b[4:]
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if len(c.b) < 8 {
		return 0, ErrBadPayload
	}
	v := binary.BigEndian.Uint64(c.b)
	c.b = c.b[8:]
	return v, nil
}

func (c *cursor) str() (string, error) {
	n, err := c.u16()
	if err != nil {
		return "", err
	}
	if len(c.b) < int(n) {
		return "", ErrBadPayload
	}
	s := string(c.b[:n])
	c.b = c.b[n:]
	return s, nil
}

// strBytes is str without the string allocation: the returned bytes
// alias the payload.
func (c *cursor) strBytes() ([]byte, error) {
	n, err := c.u16()
	if err != nil {
		return nil, err
	}
	if len(c.b) < int(n) {
		return nil, ErrBadPayload
	}
	v := c.b[:n:n]
	c.b = c.b[n:]
	return v, nil
}

func (c *cursor) blob() ([]byte, error) {
	n, err := c.u32()
	if err != nil {
		return nil, err
	}
	if uint64(n) > uint64(len(c.b)) {
		return nil, ErrBadPayload
	}
	v := c.b[:n:n]
	c.b = c.b[n:]
	return v, nil
}

func (c *cursor) end() error {
	if len(c.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadPayload, len(c.b))
	}
	return nil
}

func appendStr(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		s = s[:math.MaxUint16]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendBlob(dst, b []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...)
}

// Item is one (priority, value) pair.
type Item struct {
	Pri   uint32
	Value []byte
}

// Insert is the TInsert request payload.
type Insert struct {
	Queue string
	Item  Item
}

func (m Insert) Append(dst []byte) []byte {
	dst = appendStr(dst, m.Queue)
	dst = binary.BigEndian.AppendUint32(dst, m.Item.Pri)
	return appendBlob(dst, m.Item.Value)
}

func DecodeInsert(p []byte) (Insert, error) {
	c := cursor{p}
	var m Insert
	var err error
	if m.Queue, err = c.str(); err != nil {
		return m, err
	}
	if m.Item.Pri, err = c.u32(); err != nil {
		return m, err
	}
	if m.Item.Value, err = c.blob(); err != nil {
		return m, err
	}
	return m, c.end()
}

// InsertBatch is the TInsertBatch request payload. The server admits a
// prefix of Items (in order) and reports how many in InsertOK.
type InsertBatch struct {
	Queue string
	Items []Item
}

func (m InsertBatch) Append(dst []byte) []byte {
	dst = appendStr(dst, m.Queue)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Items)))
	for _, it := range m.Items {
		dst = binary.BigEndian.AppendUint32(dst, it.Pri)
		dst = appendBlob(dst, it.Value)
	}
	return dst
}

func DecodeInsertBatch(p []byte) (InsertBatch, error) {
	c := cursor{p}
	var m InsertBatch
	var err error
	if m.Queue, err = c.str(); err != nil {
		return m, err
	}
	n, err := c.u32()
	if err != nil {
		return m, err
	}
	if n > MaxBatchItems {
		return m, fmt.Errorf("%w: batch of %d items", ErrBadPayload, n)
	}
	// Each item needs at least 8 bytes; reject counts the payload
	// cannot possibly hold before allocating.
	if uint64(n)*8 > uint64(len(c.b)) {
		return m, ErrBadPayload
	}
	m.Items = make([]Item, n)
	for i := range m.Items {
		if m.Items[i].Pri, err = c.u32(); err != nil {
			return m, err
		}
		if m.Items[i].Value, err = c.blob(); err != nil {
			return m, err
		}
	}
	return m, c.end()
}

// QueueReq is the shared payload of TDeleteMin, TStats and TDrain:
// just a queue name.
type QueueReq struct {
	Queue string
}

func (m QueueReq) Append(dst []byte) []byte { return appendStr(dst, m.Queue) }

func DecodeQueueReq(p []byte) (QueueReq, error) {
	c := cursor{p}
	var m QueueReq
	var err error
	if m.Queue, err = c.str(); err != nil {
		return m, err
	}
	return m, c.end()
}

// DeleteMinBatch is the TDeleteMinBatch request payload: remove up to
// Max smallest-priority items in one round trip.
type DeleteMinBatch struct {
	Queue string
	Max   uint32
}

func (m DeleteMinBatch) Append(dst []byte) []byte {
	dst = appendStr(dst, m.Queue)
	return binary.BigEndian.AppendUint32(dst, m.Max)
}

func DecodeDeleteMinBatch(p []byte) (DeleteMinBatch, error) {
	c := cursor{p}
	var m DeleteMinBatch
	var err error
	if m.Queue, err = c.str(); err != nil {
		return m, err
	}
	if m.Max, err = c.u32(); err != nil {
		return m, err
	}
	return m, c.end()
}

// InsertOK is the TInsertOK response payload: the first Accepted items
// of the request were admitted; Rejected were shed by admission
// control and should be retried after RetryAfterMillis.
type InsertOK struct {
	Accepted         uint32
	Rejected         uint32
	RetryAfterMillis uint32
}

func (m InsertOK) Append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, m.Accepted)
	dst = binary.BigEndian.AppendUint32(dst, m.Rejected)
	return binary.BigEndian.AppendUint32(dst, m.RetryAfterMillis)
}

func DecodeInsertOK(p []byte) (InsertOK, error) {
	c := cursor{p}
	var m InsertOK
	var err error
	if m.Accepted, err = c.u32(); err != nil {
		return m, err
	}
	if m.Rejected, err = c.u32(); err != nil {
		return m, err
	}
	if m.RetryAfterMillis, err = c.u32(); err != nil {
		return m, err
	}
	return m, c.end()
}

// AppendItem encodes the TItem response payload (one Item).
func AppendItem(dst []byte, it Item) []byte {
	dst = binary.BigEndian.AppendUint32(dst, it.Pri)
	return appendBlob(dst, it.Value)
}

func DecodeItem(p []byte) (Item, error) {
	c := cursor{p}
	var it Item
	var err error
	if it.Pri, err = c.u32(); err != nil {
		return it, err
	}
	if it.Value, err = c.blob(); err != nil {
		return it, err
	}
	return it, c.end()
}

// Items is the TItems response payload (delete-min batch results; may
// be empty if the queue appeared empty).
type Items struct {
	Items []Item
}

func (m Items) Append(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(m.Items)))
	for _, it := range m.Items {
		dst = AppendItem(dst, it)
	}
	return dst
}

func DecodeItems(p []byte) (Items, error) {
	c := cursor{p}
	var m Items
	n, err := c.u32()
	if err != nil {
		return m, err
	}
	if n > MaxBatchItems {
		return m, fmt.Errorf("%w: batch of %d items", ErrBadPayload, n)
	}
	if uint64(n)*8 > uint64(len(c.b)) {
		return m, ErrBadPayload
	}
	m.Items = make([]Item, n)
	for i := range m.Items {
		if m.Items[i].Pri, err = c.u32(); err != nil {
			return m, err
		}
		if m.Items[i].Value, err = c.blob(); err != nil {
			return m, err
		}
	}
	return m, c.end()
}

// RetryAfter is the TRetryAfter response payload: the request was shed
// by admission control; try again after Millis (plus client jitter).
type RetryAfter struct {
	Millis uint32
}

func (m RetryAfter) Append(dst []byte) []byte {
	return binary.BigEndian.AppendUint32(dst, m.Millis)
}

func DecodeRetryAfter(p []byte) (RetryAfter, error) {
	c := cursor{p}
	var m RetryAfter
	var err error
	if m.Millis, err = c.u32(); err != nil {
		return m, err
	}
	return m, c.end()
}

// Drained is the TDrained response payload: the queue stopped admitting
// inserts; Remaining items were still queued when draining began.
type Drained struct {
	Remaining uint64
}

func (m Drained) Append(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, m.Remaining)
}

func DecodeDrained(p []byte) (Drained, error) {
	c := cursor{p}
	var m Drained
	var err error
	if m.Remaining, err = c.u64(); err != nil {
		return m, err
	}
	return m, c.end()
}

// ErrorMsg is the TError response payload.
type ErrorMsg struct {
	Msg string
}

func (m ErrorMsg) Append(dst []byte) []byte { return appendStr(dst, m.Msg) }

func DecodeErrorMsg(p []byte) (ErrorMsg, error) {
	c := cursor{p}
	var m ErrorMsg
	var err error
	if m.Msg, err = c.str(); err != nil {
		return m, err
	}
	return m, c.end()
}

// Decode views: allocation-free counterparts to the request decoders
// above for the serving hot path. Queue names come back as []byte and
// values alias the frame payload, so a view is valid only while the
// payload buffer is — anything that outlives the frame (an item going
// into the queue) must be copied by the caller, and the payload must
// not be recycled until the view is dead.

// InsertView is DecodeInsert's allocation-free result: Queue and
// Item.Value alias the payload.
type InsertView struct {
	Queue []byte
	Item  Item
}

func DecodeInsertView(p []byte) (InsertView, error) {
	c := cursor{p}
	var m InsertView
	var err error
	if m.Queue, err = c.strBytes(); err != nil {
		return m, err
	}
	if m.Item.Pri, err = c.u32(); err != nil {
		return m, err
	}
	if m.Item.Value, err = c.blob(); err != nil {
		return m, err
	}
	return m, c.end()
}

// InsertBatchView is DecodeInsertBatch without allocation: Items lands
// in the caller's scratch slice (grown as needed and returned), Queue
// and every value alias the payload.
type InsertBatchView struct {
	Queue []byte
	Items []Item
}

func DecodeInsertBatchView(p []byte, scratch []Item) (InsertBatchView, error) {
	c := cursor{p}
	m := InsertBatchView{Items: scratch[:0]}
	var err error
	if m.Queue, err = c.strBytes(); err != nil {
		return m, err
	}
	n, err := c.u32()
	if err != nil {
		return m, err
	}
	if n > MaxBatchItems {
		return m, fmt.Errorf("%w: batch of %d items", ErrBadPayload, n)
	}
	if uint64(n)*8 > uint64(len(c.b)) {
		return m, ErrBadPayload
	}
	for i := uint32(0); i < n; i++ {
		var it Item
		if it.Pri, err = c.u32(); err != nil {
			return m, err
		}
		if it.Value, err = c.blob(); err != nil {
			return m, err
		}
		m.Items = append(m.Items, it)
	}
	return m, c.end()
}

// QueueReqView is DecodeQueueReq without the string allocation; Queue
// aliases the payload.
type QueueReqView struct {
	Queue []byte
}

func DecodeQueueReqView(p []byte) (QueueReqView, error) {
	c := cursor{p}
	var m QueueReqView
	var err error
	if m.Queue, err = c.strBytes(); err != nil {
		return m, err
	}
	return m, c.end()
}

// DeleteMinBatchView is DecodeDeleteMinBatch without the string
// allocation; Queue aliases the payload.
type DeleteMinBatchView struct {
	Queue []byte
	Max   uint32
}

func DecodeDeleteMinBatchView(p []byte) (DeleteMinBatchView, error) {
	c := cursor{p}
	var m DeleteMinBatchView
	var err error
	if m.Queue, err = c.strBytes(); err != nil {
		return m, err
	}
	if m.Max, err = c.u32(); err != nil {
		return m, err
	}
	return m, c.end()
}

// DecodePayload decodes the typed message carried by f, returning one
// of the payload structs above (Item for TItem, nil for TEmpty). It is
// the demux used by the fuzzer and by generic logging; hot paths call
// the typed decoders directly.
func DecodePayload(f Frame) (any, error) {
	switch f.Type {
	case TInsert:
		return DecodeInsert(f.Payload)
	case TInsertBatch:
		return DecodeInsertBatch(f.Payload)
	case TDeleteMin, TStats, TDrain:
		return DecodeQueueReq(f.Payload)
	case TDeleteMinBatch:
		return DecodeDeleteMinBatch(f.Payload)
	case TInsertOK:
		return DecodeInsertOK(f.Payload)
	case TItem:
		return DecodeItem(f.Payload)
	case TEmpty:
		if len(f.Payload) != 0 {
			return nil, ErrBadPayload
		}
		return nil, nil
	case TItems:
		return DecodeItems(f.Payload)
	case TRetryAfter:
		return DecodeRetryAfter(f.Payload)
	case TStatsReply:
		return f.Payload, nil // opaque JSON
	case TDrained:
		return DecodeDrained(f.Payload)
	case TError:
		return DecodeErrorMsg(f.Payload)
	case TWrongNode:
		return DecodeWrongNode(f.Payload)
	}
	return nil, ErrUnknownType
}
