package wire

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

func TestBufPoolRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 511, 512, 513, 8 << 10, 100 << 10, MaxFrame, MaxFrame + 16} {
		b := GetBuf(n)
		if len(b) != 0 {
			t.Fatalf("GetBuf(%d): len=%d, want 0", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("GetBuf(%d): cap=%d", n, cap(b))
		}
		b = append(b, make([]byte, n)...)
		PutBuf(b)
	}
	// Oversize requests still work; the buffer is just not pooled.
	huge := GetBuf(MaxFrame + 1<<10)
	if cap(huge) < MaxFrame+1<<10 {
		t.Fatalf("oversize GetBuf cap=%d", cap(huge))
	}
	PutBuf(huge)
	PutBuf(nil)             // dropped, must not panic
	PutBuf(make([]byte, 8)) // below smallest class: dropped
}

func TestBufPoolReuses(t *testing.T) {
	// Drain-then-cycle: after a warmup Put, Get/Put pairs must not
	// allocate. Stripe round-robin means one warmup buffer per stripe.
	for i := 0; i < numBufStripes; i++ {
		PutBuf(GetBuf(64))
	}
	allocs := testing.AllocsPerRun(200, func() {
		b := GetBuf(64)
		PutBuf(b)
	})
	if allocs != 0 {
		t.Fatalf("GetBuf/PutBuf allocated %.1f times per op", allocs)
	}
}

func TestBufPoolConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sizes := []int{16, 4 << 10, 64 << 10}
			for i := 0; i < 2000; i++ {
				b := GetBuf(sizes[(g+i)%len(sizes)])
				b = append(b, byte(g), byte(i))
				if b[0] != byte(g) || b[1] != byte(i) {
					t.Errorf("buffer corrupted")
					return
				}
				PutBuf(b)
			}
		}(g)
	}
	wg.Wait()
}

func TestFrameReaderMatchesReadFrame(t *testing.T) {
	frames := []Frame{
		{Type: TInsert, ID: 7, Payload: Insert{Queue: "q", Item: Item{Pri: 3, Value: []byte("abc")}}.Append(nil)},
		{Type: TEmpty, ID: 8},
		{Type: TItem, ID: 9, Payload: AppendItem(nil, Item{Pri: 1, Value: bytes.Repeat([]byte{0xaa}, 4096)})},
	}
	var stream []byte
	for _, f := range frames {
		stream = AppendFrame(stream, f)
	}
	var fr FrameReader
	r := bytes.NewReader(stream)
	for i, want := range frames {
		got, err := fr.ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: got %+v want %+v", i, got, want)
		}
		PutBuf(got.Payload)
	}
	if _, err := fr.ReadFrame(r); err != io.EOF {
		t.Fatalf("at end: %v, want EOF", err)
	}
}

func TestFrameReaderResync(t *testing.T) {
	var stream []byte
	bad := AppendFrame(nil, Frame{Type: TInsert, ID: 5, Payload: []byte("junk-payload")})
	bad[4] = 99 // unsupported version
	stream = append(stream, bad...)
	stream = AppendFrame(stream, Frame{Type: TDeleteMin, ID: 6, Payload: QueueReq{Queue: "q"}.Append(nil)})

	var fr FrameReader
	r := bytes.NewReader(stream)
	f, err := fr.ReadFrame(r)
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err=%v, want ErrBadVersion", err)
	}
	if f.ID != 5 {
		t.Fatalf("bad-version frame id=%d, want 5", f.ID)
	}
	f, err = fr.ReadFrame(r)
	if err != nil || f.Type != TDeleteMin || f.ID != 6 {
		t.Fatalf("after resync: %+v, %v", f, err)
	}
	PutBuf(f.Payload)
}

func TestBeginEndFrameMatchesAppendFrame(t *testing.T) {
	payload := Insert{Queue: "orders", Item: Item{Pri: 42, Value: []byte("v")}}.Append(nil)
	want := AppendFrame(nil, Frame{Type: TInsert, ID: 99, Payload: payload})

	buf, off := BeginFrame([]byte("prefix"), TInsert, 99)
	buf = Insert{Queue: "orders", Item: Item{Pri: 42, Value: []byte("v")}}.Append(buf)
	buf = EndFrame(buf, off)
	if !bytes.Equal(buf[6:], want) {
		t.Fatalf("BeginFrame/EndFrame encoding diverges:\n got %x\nwant %x", buf[6:], want)
	}
	if string(buf[:6]) != "prefix" {
		t.Fatalf("existing bytes clobbered: %q", buf[:6])
	}

	// A second frame appended to the same buffer must also decode.
	buf, off = BeginFrame(buf, TEmpty, 100)
	buf = EndFrame(buf, off)
	f1, n, err := DecodeFrame(buf[6:])
	if err != nil || f1.ID != 99 {
		t.Fatalf("decode first: %+v %v", f1, err)
	}
	f2, _, err := DecodeFrame(buf[6+n:])
	if err != nil || f2.Type != TEmpty || f2.ID != 100 {
		t.Fatalf("decode second: %+v %v", f2, err)
	}
}

func TestDecodeViewsMatchDecoders(t *testing.T) {
	ins := Insert{Queue: "q1", Item: Item{Pri: 9, Value: []byte("hello")}}
	p := ins.Append(nil)
	v, err := DecodeInsertView(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(v.Queue) != ins.Queue || v.Item.Pri != 9 || !bytes.Equal(v.Item.Value, ins.Item.Value) {
		t.Fatalf("InsertView mismatch: %+v", v)
	}
	// The view aliases the payload.
	p[len(p)-1] = 'O'
	if string(v.Item.Value) != "hellO" {
		t.Fatal("InsertView does not alias the payload")
	}

	b := InsertBatch{Queue: "q2", Items: []Item{{Pri: 1, Value: []byte("a")}, {Pri: 2, Value: []byte("bb")}}}
	bv, err := DecodeInsertBatchView(b.Append(nil), nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(bv.Queue) != "q2" || len(bv.Items) != 2 || bv.Items[1].Pri != 2 || string(bv.Items[1].Value) != "bb" {
		t.Fatalf("InsertBatchView mismatch: %+v", bv)
	}
	// Scratch reuse: a second decode into the same backing array.
	bv2, err := DecodeInsertBatchView(b.Append(nil), bv.Items[:0])
	if err != nil || len(bv2.Items) != 2 {
		t.Fatalf("scratch reuse: %+v %v", bv2, err)
	}

	q, err := DecodeQueueReqView(QueueReq{Queue: "q3"}.Append(nil))
	if err != nil || string(q.Queue) != "q3" {
		t.Fatalf("QueueReqView: %+v %v", q, err)
	}
	d, err := DecodeDeleteMinBatchView(DeleteMinBatch{Queue: "q4", Max: 17}.Append(nil))
	if err != nil || string(d.Queue) != "q4" || d.Max != 17 {
		t.Fatalf("DeleteMinBatchView: %+v %v", d, err)
	}

	// Malformed payloads must error exactly like the allocating decoders.
	for _, junk := range [][]byte{{0x00}, {0x00, 0x02, 'q'}, nil} {
		if _, err := DecodeInsertView(junk); err == nil {
			if _, err2 := DecodeInsert(junk); err2 != nil {
				t.Fatalf("view accepted %x that DecodeInsert rejects", junk)
			}
		}
	}
}

func TestHotPathDecodeDoesNotAllocate(t *testing.T) {
	insP := Insert{Queue: "bench", Item: Item{Pri: 3, Value: []byte("0123456789abcdef")}}.Append(nil)
	qP := QueueReq{Queue: "bench"}.Append(nil)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := DecodeInsertView(insP); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeQueueReqView(qP); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("decode views allocated %.1f times per op", allocs)
	}
}
