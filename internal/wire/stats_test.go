package wire

import (
	"encoding/json"
	"testing"
)

// legacyQueueStats is the v1 stats document exactly as a pre-durability
// client defines it — no stats_version, no durability. The compat tests
// below check both directions of the rollout: an old client pointed at
// a new server, and a new client pointed at an old server.
type legacyQueueStats struct {
	Queue        string `json:"queue"`
	Algorithm    string `json:"algorithm"`
	Priorities   int    `json:"priorities"`
	Shards       int    `json:"shards"`
	Capacity     int64  `json:"capacity"`
	Inserts      int64  `json:"inserts"`
	Deletes      int64  `json:"deletes"`
	EmptyDeletes int64  `json:"empty_deletes"`
	RetryAfter   int64  `json:"retry_after"`
	Size         int64  `json:"size"`
	Draining     bool   `json:"draining"`
}

func TestOldClientReadsNewServerStats(t *testing.T) {
	// A v2 server document, durability section and all.
	doc, err := json.Marshal(QueueStats{
		Queue:        "jobs",
		Algorithm:    "FunnelTree",
		Priorities:   64,
		Shards:       4,
		Inserts:      100,
		Deletes:      40,
		Size:         60,
		StatsVersion: StatsVersion,
		Durability: &DurabilityStats{
			FsyncPolicy: "interval",
			LastLSN:     123,
			SnapshotLSN: 100,
			Segments:    2,
			WALBytes:    4096,
			Appends:     140,
			Fsyncs:      12,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var old legacyQueueStats
	if err := json.Unmarshal(doc, &old); err != nil {
		t.Fatalf("old client failed on new server stats: %v", err)
	}
	if old.Queue != "jobs" || old.Inserts != 100 || old.Deletes != 40 || old.Size != 60 {
		t.Fatalf("old client misread v2 document: %+v", old)
	}
}

func TestNewClientReadsOldServerStats(t *testing.T) {
	doc, err := json.Marshal(legacyQueueStats{
		Queue:     "jobs",
		Algorithm: "SingleLock",
		Inserts:   7,
		Size:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st QueueStats
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("new client failed on old server stats: %v", err)
	}
	if st.StatsVersion != 0 {
		t.Fatalf("absent stats_version must decode as 0 (pre-versioning), got %d", st.StatsVersion)
	}
	if st.Durability != nil {
		t.Fatalf("old server document grew a durability section: %+v", st.Durability)
	}
	if st.Queue != "jobs" || st.Inserts != 7 {
		t.Fatalf("new client misread v1 document: %+v", st)
	}
}

func TestStatsRoundTripKeepsDurability(t *testing.T) {
	in := QueueStats{Queue: "q", StatsVersion: StatsVersion,
		Durability: &DurabilityStats{FsyncPolicy: "always", RecoveredItems: 3, ReplayedRecords: 9, TornTail: true}}
	doc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out QueueStats
	if err := json.Unmarshal(doc, &out); err != nil {
		t.Fatal(err)
	}
	if out.Durability == nil || *out.Durability != *in.Durability {
		t.Fatalf("durability did not round-trip: %+v", out.Durability)
	}
}
