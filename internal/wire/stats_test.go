package wire

import (
	"encoding/json"
	"testing"
)

// legacyQueueStats is the v1 stats document exactly as a pre-durability
// client defines it — no stats_version, no durability. The compat tests
// below check both directions of the rollout: an old client pointed at
// a new server, and a new client pointed at an old server.
type legacyQueueStats struct {
	Queue        string `json:"queue"`
	Algorithm    string `json:"algorithm"`
	Priorities   int    `json:"priorities"`
	Shards       int    `json:"shards"`
	Capacity     int64  `json:"capacity"`
	Inserts      int64  `json:"inserts"`
	Deletes      int64  `json:"deletes"`
	EmptyDeletes int64  `json:"empty_deletes"`
	RetryAfter   int64  `json:"retry_after"`
	Size         int64  `json:"size"`
	Draining     bool   `json:"draining"`
}

func TestOldClientReadsNewServerStats(t *testing.T) {
	// A v2 server document, durability section and all.
	doc, err := json.Marshal(QueueStats{
		Queue:        "jobs",
		Algorithm:    "FunnelTree",
		Priorities:   64,
		Shards:       4,
		Inserts:      100,
		Deletes:      40,
		Size:         60,
		StatsVersion: StatsVersion,
		Durability: &DurabilityStats{
			FsyncPolicy: "interval",
			LastLSN:     123,
			SnapshotLSN: 100,
			Segments:    2,
			WALBytes:    4096,
			Appends:     140,
			Fsyncs:      12,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var old legacyQueueStats
	if err := json.Unmarshal(doc, &old); err != nil {
		t.Fatalf("old client failed on new server stats: %v", err)
	}
	if old.Queue != "jobs" || old.Inserts != 100 || old.Deletes != 40 || old.Size != 60 {
		t.Fatalf("old client misread v2 document: %+v", old)
	}
}

func TestNewClientReadsOldServerStats(t *testing.T) {
	doc, err := json.Marshal(legacyQueueStats{
		Queue:     "jobs",
		Algorithm: "SingleLock",
		Inserts:   7,
		Size:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var st QueueStats
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("new client failed on old server stats: %v", err)
	}
	if st.StatsVersion != 0 {
		t.Fatalf("absent stats_version must decode as 0 (pre-versioning), got %d", st.StatsVersion)
	}
	if st.Durability != nil {
		t.Fatalf("old server document grew a durability section: %+v", st.Durability)
	}
	if st.Queue != "jobs" || st.Inserts != 7 {
		t.Fatalf("new client misread v1 document: %+v", st)
	}
}

// legacyQueueStatsV2 is the stats document exactly as a PR 6-era (v2)
// client defines it — durability block, no latency section and no
// fsync-latency/group-commit distributions inside durability.
type legacyQueueStatsV2 struct {
	legacyQueueStats
	StatsVersion int `json:"stats_version,omitempty"`
	Durability   *struct {
		FsyncPolicy          string `json:"fsync_policy"`
		LastLSN              uint64 `json:"last_lsn"`
		SnapshotLSN          uint64 `json:"snapshot_lsn"`
		Segments             int    `json:"segments"`
		WALBytes             int64  `json:"wal_bytes"`
		Appends              uint64 `json:"appends"`
		Fsyncs               uint64 `json:"fsyncs"`
		Snapshots            uint64 `json:"snapshots"`
		RecordsSinceSnapshot uint64 `json:"records_since_snapshot"`
		RecoveredItems       int    `json:"recovered_items"`
		ReplayedRecords      int    `json:"replayed_records"`
		TornTail             bool   `json:"torn_tail,omitempty"`
	} `json:"durability,omitempty"`
}

func TestV2ClientReadsV3ServerStats(t *testing.T) {
	// A v3 server document with every new section populated.
	doc, err := json.Marshal(QueueStats{
		Queue:        "jobs",
		Algorithm:    "FunnelTree",
		Inserts:      100,
		Deletes:      40,
		Size:         60,
		StatsVersion: StatsVersion,
		Durability: &DurabilityStats{
			FsyncPolicy:  "always",
			Appends:      140,
			Fsyncs:       12,
			FsyncLatency: &Dist{Count: 12, Mean: 800_000, P50: 750_000, P99: 2_000_000},
			GroupCommit:  &Dist{Count: 12, Mean: 11.6, P50: 8, P99: 30},
		},
		Latency: &ServerLatencyStats{
			Insert:    Dist{Count: 100, Mean: 2100, P50: 1800, P90: 3000, P99: 9000},
			DeleteMin: Dist{Count: 40, Mean: 2500, P50: 2000, P90: 4000, P99: 12000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var old legacyQueueStatsV2
	if err := json.Unmarshal(doc, &old); err != nil {
		t.Fatalf("v2 client failed on v3 server stats: %v", err)
	}
	if old.Queue != "jobs" || old.Inserts != 100 || old.Size != 60 {
		t.Fatalf("v2 client misread v3 document: %+v", old)
	}
	if old.Durability == nil || old.Durability.Appends != 140 || old.Durability.Fsyncs != 12 {
		t.Fatalf("v2 client lost the durability counters: %+v", old.Durability)
	}
}

func TestNewClientReadsV2ServerStats(t *testing.T) {
	// A v2 server document: stats_version 2, durability block without
	// the v3 distributions, no latency section.
	v2 := legacyQueueStatsV2{StatsVersion: 2}
	v2.Queue = "jobs"
	v2.Inserts = 9
	v2.Deletes = 4
	doc, err := json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	var st QueueStats
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatalf("new client failed on v2 server stats: %v", err)
	}
	if st.StatsVersion != 2 {
		t.Fatalf("stats_version = %d, want 2", st.StatsVersion)
	}
	if st.Latency != nil {
		t.Fatalf("v2 document grew a latency section: %+v", st.Latency)
	}
	if st.Durability != nil {
		t.Fatalf("v2 document without durability grew one: %+v", st.Durability)
	}
	if st.Queue != "jobs" || st.Inserts != 9 || st.Deletes != 4 {
		t.Fatalf("new client misread v2 document: %+v", st)
	}
}

func TestStatsRoundTripKeepsLatency(t *testing.T) {
	in := QueueStats{Queue: "q", StatsVersion: StatsVersion,
		Latency: &ServerLatencyStats{
			Insert:         Dist{Count: 5, Mean: 100, P50: 90, P90: 150, P99: 400},
			DeleteMinBatch: Dist{Count: 2, Mean: 7000, P50: 6000, P90: 9000, P99: 9000},
		},
		Durability: &DurabilityStats{
			FsyncPolicy:  "interval",
			FsyncLatency: &Dist{Count: 3, Mean: 1e6, P50: 9e5, P90: 1.4e6, P99: 2e6},
			GroupCommit:  &Dist{Count: 3, Mean: 4, P50: 3, P90: 8, P99: 8},
		}}
	doc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out QueueStats
	if err := json.Unmarshal(doc, &out); err != nil {
		t.Fatal(err)
	}
	if out.Latency == nil || *out.Latency != *in.Latency {
		t.Fatalf("latency did not round-trip: %+v", out.Latency)
	}
	if out.Durability == nil || *out.Durability.FsyncLatency != *in.Durability.FsyncLatency ||
		*out.Durability.GroupCommit != *in.Durability.GroupCommit {
		t.Fatalf("durability distributions did not round-trip: %+v", out.Durability)
	}
}

func TestStatsRoundTripKeepsDurability(t *testing.T) {
	in := QueueStats{Queue: "q", StatsVersion: StatsVersion,
		Durability: &DurabilityStats{FsyncPolicy: "always", RecoveredItems: 3, ReplayedRecords: 9, TornTail: true}}
	doc, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out QueueStats
	if err := json.Unmarshal(doc, &out); err != nil {
		t.Fatal(err)
	}
	if out.Durability == nil || *out.Durability != *in.Durability {
		t.Fatalf("durability did not round-trip: %+v", out.Durability)
	}
}
