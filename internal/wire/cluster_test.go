package wire

import (
	"encoding/json"
	"strings"
	"testing"
)

func rng(lo, hi int) ClusterRange { return ClusterRange{Lo: lo, Hi: hi} }

// TestClusterMapValidate is the table of map-shape rules: the ranges of
// all nodes must partition [0, Priorities) exactly, addresses must be
// unique and non-empty, and the map must carry a version.
func TestClusterMapValidate(t *testing.T) {
	cases := []struct {
		name    string
		m       ClusterMap
		wantErr string // substring; "" = valid
	}{
		{
			name: "single node owning everything",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 64)}},
			}},
		},
		{
			name: "three-way split",
			m: ClusterMap{Version: 3, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 21)}},
				{Addr: "b:2", Ranges: []ClusterRange{rng(21, 43)}},
				{Addr: "c:3", Ranges: []ClusterRange{rng(43, 64)}},
			}},
		},
		{
			name: "one node, multiple discontiguous ranges",
			m: ClusterMap{Version: 1, Priorities: 16, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 4), rng(12, 16)}},
				{Addr: "b:2", Ranges: []ClusterRange{rng(4, 12)}},
			}},
		},
		{
			name: "overlapping ranges rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 33)}},
				{Addr: "b:2", Ranges: []ClusterRange{rng(32, 64)}},
			}},
			wantErr: "overlap",
		},
		{
			name: "gap between ranges rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 30)}},
				{Addr: "b:2", Ranges: []ClusterRange{rng(32, 64)}},
			}},
			wantErr: "owned by no node",
		},
		{
			name: "gap at the top rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 60)}},
			}},
			wantErr: "owned by no node",
		},
		{
			name: "gap at the bottom rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(1, 64)}},
			}},
			wantErr: "owned by no node",
		},
		{
			name: "inverted range rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(10, 10)}},
			}},
			wantErr: "bad range",
		},
		{
			name: "range past priorities rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 65)}},
			}},
			wantErr: "bad range",
		},
		{
			name: "duplicate addr rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 32)}},
				{Addr: "a:1", Ranges: []ClusterRange{rng(32, 64)}},
			}},
			wantErr: "duplicate",
		},
		{
			name: "empty addr rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "", Ranges: []ClusterRange{rng(0, 64)}},
			}},
			wantErr: "no addr",
		},
		{
			name: "node with no ranges rejected",
			m: ClusterMap{Version: 1, Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 64)}},
				{Addr: "b:2"},
			}},
			wantErr: "owns no ranges",
		},
		{
			name:    "no nodes rejected",
			m:       ClusterMap{Version: 1, Priorities: 64},
			wantErr: "no nodes",
		},
		{
			name: "version zero rejected",
			m: ClusterMap{Priorities: 64, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 64)}},
			}},
			wantErr: "version",
		},
		{
			name: "zero priorities rejected",
			m: ClusterMap{Version: 1, Nodes: []ClusterNode{
				{Addr: "a:1", Ranges: []ClusterRange{rng(0, 1)}},
			}},
			wantErr: "priorities",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.m.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestClusterMapOwnerOf checks the routing lookup across range
// boundaries, including a node owning discontiguous ranges.
func TestClusterMapOwnerOf(t *testing.T) {
	m := ClusterMap{Version: 1, Priorities: 16, Nodes: []ClusterNode{
		{Addr: "a:1", Ranges: []ClusterRange{rng(0, 4), rng(12, 16)}},
		{Addr: "b:2", Ranges: []ClusterRange{rng(4, 12)}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	for pri, want := range map[int]int{0: 0, 3: 0, 4: 1, 11: 1, 12: 0, 15: 0} {
		got, ok := m.OwnerOf(pri)
		if !ok || got != want {
			t.Errorf("OwnerOf(%d) = %d, %v; want %d, true", pri, got, ok, want)
		}
	}
	for _, pri := range []int{-1, 16, 1000} {
		if _, ok := m.OwnerOf(pri); ok {
			t.Errorf("OwnerOf(%d) = ok, want out of range", pri)
		}
	}
}

// TestClusterMapJSONRoundTrip: the on-disk format survives a marshal
// cycle and ParseClusterMap validates what it parses.
func TestClusterMapJSONRoundTrip(t *testing.T) {
	m := &ClusterMap{Version: 7, Priorities: 64, Nodes: []ClusterNode{
		{Addr: "a:1", Ranges: []ClusterRange{rng(0, 32)}},
		{Addr: "b:2", Ranges: []ClusterRange{rng(32, 64)}},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseClusterMap(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 7 || got.Priorities != 64 || len(got.Nodes) != 2 {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if n, ok := got.OwnerOf(40); !ok || got.Nodes[n].Addr != "b:2" {
		t.Fatalf("parsed map does not route: OwnerOf(40) = %d, %v", n, ok)
	}
	if _, err := ParseClusterMap([]byte(`{"version":1,"priorities":8,"nodes":[{"addr":"a:1","ranges":[{"lo":0,"hi":4}]}]}`)); err == nil {
		t.Fatal("ParseClusterMap accepted a gapped map")
	}
}

// TestWrongNodeRoundTrip pins the TWrongNode payload encoding.
func TestWrongNodeRoundTrip(t *testing.T) {
	for _, m := range []WrongNode{
		{MapVersion: 1, Owner: "127.0.0.1:7931"},
		{MapVersion: 1<<40 + 3, Owner: ""},
	} {
		got, err := DecodeWrongNode(m.Append(nil))
		if err != nil {
			t.Fatalf("decode %+v: %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	}
	if _, err := DecodeWrongNode([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated WrongNode decoded")
	}
	// Frame-level demux knows the type.
	f := Frame{Type: TWrongNode, ID: 9, Payload: WrongNode{MapVersion: 2, Owner: "x:1"}.Append(nil)}
	v, err := DecodePayload(f)
	if err != nil {
		t.Fatal(err)
	}
	if wn, ok := v.(WrongNode); !ok || wn.Owner != "x:1" {
		t.Fatalf("DecodePayload(TWrongNode) = %#v", v)
	}
	if TWrongNode.String() != "WRONG_NODE" {
		t.Fatalf("TWrongNode.String() = %q", TWrongNode.String())
	}
}

// TestStatsClusterBlockCompat: the cluster block is additive — a v3
// document (no cluster key) unmarshals with Cluster nil, and a v4
// document round-trips the full map through ClusterStats.Map.
func TestStatsClusterBlockCompat(t *testing.T) {
	var old QueueStats
	if err := json.Unmarshal([]byte(`{"queue":"q","stats_version":3}`), &old); err != nil {
		t.Fatal(err)
	}
	if old.Cluster != nil {
		t.Fatal("v3 document grew a cluster block")
	}

	st := QueueStats{Queue: "q", StatsVersion: StatsVersion, Cluster: &ClusterStats{
		MapVersion: 5, Priorities: 8, Self: "b:2", Misroutes: 3,
		Nodes: []ClusterNode{
			{Addr: "a:1", Ranges: []ClusterRange{rng(0, 4)}},
			{Addr: "b:2", Ranges: []ClusterRange{rng(4, 8)}},
		},
	}}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var got QueueStats
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cluster == nil || got.Cluster.MapVersion != 5 || got.Cluster.Self != "b:2" || got.Cluster.Misroutes != 3 {
		t.Fatalf("cluster block lost in round trip: %+v", got.Cluster)
	}
	m, err := got.Cluster.Map()
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := m.OwnerOf(6); !ok || m.Nodes[n].Addr != "b:2" {
		t.Fatalf("reconstructed map does not route: %d, %v", n, ok)
	}
}
