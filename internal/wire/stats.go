package wire

// QueueStats is the JSON document carried by a TStatsReply frame. It is
// defined here so server and client marshal/unmarshal the same shape.
//
// Counter semantics: Inserts counts admitted items, RetryAfter counts
// items shed by admission control, Deletes counts successful
// delete-mins and EmptyDeletes the delete-mins that found the queue
// (apparently) empty. Size is Inserts-Deletes — approximate while
// operations are in flight, exact at quiescence, mirroring the
// quiescent consistency of the underlying structures.
type QueueStats struct {
	Queue        string `json:"queue"`
	Algorithm    string `json:"algorithm"`
	Priorities   int    `json:"priorities"`
	Shards       int    `json:"shards"`
	Capacity     int64  `json:"capacity"` // 0 = unbounded
	Inserts      int64  `json:"inserts"`
	Deletes      int64  `json:"deletes"`
	EmptyDeletes int64  `json:"empty_deletes"`
	RetryAfter   int64  `json:"retry_after"`
	Size         int64  `json:"size"`
	Draining     bool   `json:"draining"`
}
