package wire

// StatsVersion is the QueueStats schema version this package emits.
// Versioning is additive, mirroring the frame protocol's rollout
// discipline: new fields only ever extend the JSON document, an old
// client simply ignores unknown keys, and a new client reading an old
// server treats the absent stats_version (0) as the original v1 shape
// with no durability section. Nothing resyncs or disconnects over a
// stats shape difference.
const StatsVersion = 2

// QueueStats is the JSON document carried by a TStatsReply frame. It is
// defined here so server and client marshal/unmarshal the same shape.
//
// Counter semantics: Inserts counts admitted items, RetryAfter counts
// items shed by admission control, Deletes counts successful
// delete-mins and EmptyDeletes the delete-mins that found the queue
// (apparently) empty. Size is Inserts-Deletes — approximate while
// operations are in flight, exact at quiescence, mirroring the
// quiescent consistency of the underlying structures.
type QueueStats struct {
	Queue        string `json:"queue"`
	Algorithm    string `json:"algorithm"`
	Priorities   int    `json:"priorities"`
	Shards       int    `json:"shards"`
	Capacity     int64  `json:"capacity"` // 0 = unbounded
	Inserts      int64  `json:"inserts"`
	Deletes      int64  `json:"deletes"`
	EmptyDeletes int64  `json:"empty_deletes"`
	RetryAfter   int64  `json:"retry_after"`
	Size         int64  `json:"size"`
	Draining     bool   `json:"draining"`

	// StatsVersion reports the schema version of the emitting server
	// (v2 added durability); 0 means a pre-versioning (v1) server.
	StatsVersion int `json:"stats_version,omitempty"`
	// Durability is present only when the queue has a write-ahead log
	// attached.
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// DurabilityStats describes one queue's write-ahead log (stats_version
// >= 2; see internal/wal).
type DurabilityStats struct {
	// FsyncPolicy is "always", "interval" or "never".
	FsyncPolicy string `json:"fsync_policy"`
	// LastLSN is the newest appended record; SnapshotLSN the newest
	// record covered by a snapshot. Their difference is the replay tail
	// a crash right now would cost on boot.
	LastLSN     uint64 `json:"last_lsn"`
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// Segments and WALBytes size the live log on disk.
	Segments int   `json:"segments"`
	WALBytes int64 `json:"wal_bytes"`
	// Appends counts log records, Fsyncs actual fsync(2) calls — their
	// ratio is the group-commit batching factor under SyncAlways.
	Appends              uint64 `json:"appends"`
	Fsyncs               uint64 `json:"fsyncs"`
	Snapshots            uint64 `json:"snapshots"`
	RecordsSinceSnapshot uint64 `json:"records_since_snapshot"`
	// RecoveredItems and ReplayedRecords describe the last boot; a boot
	// after a graceful shutdown replays zero records. TornTail reports
	// that boot found (and cleanly truncated) tail damage.
	RecoveredItems  int  `json:"recovered_items"`
	ReplayedRecords int  `json:"replayed_records"`
	TornTail        bool `json:"torn_tail,omitempty"`
}
