package wire

// StatsVersion is the QueueStats schema version this package emits.
// Versioning is additive, mirroring the frame protocol's rollout
// discipline: new fields only ever extend the JSON document, an old
// client simply ignores unknown keys, and a new client reading an old
// server treats the absent stats_version (0) as the original v1 shape
// with no durability section. Nothing resyncs or disconnects over a
// stats shape difference.
//
// v2 added the durability block; v3 adds server-measured latency
// distributions (QueueStats.Latency) and the WAL's fsync-latency and
// group-commit distributions inside the durability block; v4 adds the
// cluster block (QueueStats.Cluster) on nodes running with a cluster
// map, carrying the full versioned map so clients can bootstrap or
// refresh routing from any node.
const StatsVersion = 4

// QueueStats is the JSON document carried by a TStatsReply frame. It is
// defined here so server and client marshal/unmarshal the same shape.
//
// Counter semantics: Inserts counts admitted items, RetryAfter counts
// items shed by admission control, Deletes counts successful
// delete-mins and EmptyDeletes the delete-mins that found the queue
// (apparently) empty. Size is Inserts-Deletes — approximate while
// operations are in flight, exact at quiescence, mirroring the
// quiescent consistency of the underlying structures.
type QueueStats struct {
	Queue        string `json:"queue"`
	Algorithm    string `json:"algorithm"`
	Priorities   int    `json:"priorities"`
	Shards       int    `json:"shards"`
	Capacity     int64  `json:"capacity"` // 0 = unbounded
	Inserts      int64  `json:"inserts"`
	Deletes      int64  `json:"deletes"`
	EmptyDeletes int64  `json:"empty_deletes"`
	RetryAfter   int64  `json:"retry_after"`
	Size         int64  `json:"size"`
	Draining     bool   `json:"draining"`

	// StatsVersion reports the schema version of the emitting server
	// (v2 added durability, v3 server latency); 0 means a
	// pre-versioning (v1) server.
	StatsVersion int `json:"stats_version,omitempty"`
	// Durability is present only when the queue has a write-ahead log
	// attached.
	Durability *DurabilityStats `json:"durability,omitempty"`
	// Latency carries server-measured per-op service-time
	// distributions (stats_version >= 3; absent when the server runs
	// with metrics disabled). Server-side numbers exclude the network
	// and client stack, so comparing them with client-observed
	// latencies separates queue cost from wire cost.
	Latency *ServerLatencyStats `json:"latency,omitempty"`
	// Cluster is present (stats_version >= 4) only when the server runs
	// with a cluster map; it carries the full map plus this node's
	// identity and misroute count. See ClusterStats.
	Cluster *ClusterStats `json:"cluster,omitempty"`
}

// Dist is a compact distribution summary derived from a server-side
// fixed-bucket histogram (stats_version >= 3). Units depend on the
// field carrying it: nanoseconds for latencies, record counts for the
// WAL group-commit distribution. Quantiles are bucket-interpolated, so
// they carry power-of-two bucket resolution, not exact ranks.
type Dist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// ServerLatencyStats groups the per-op service-time distributions the
// server records around each request it handles, in nanoseconds.
// Batch-op samples time the whole batch, not per element.
type ServerLatencyStats struct {
	Insert         Dist `json:"insert"`
	InsertBatch    Dist `json:"insert_batch"`
	DeleteMin      Dist `json:"delete_min"`
	DeleteMinBatch Dist `json:"delete_min_batch"`
}

// DurabilityStats describes one queue's write-ahead log (stats_version
// >= 2; see internal/wal).
type DurabilityStats struct {
	// FsyncPolicy is "always", "interval" or "never".
	FsyncPolicy string `json:"fsync_policy"`
	// LastLSN is the newest appended record; SnapshotLSN the newest
	// record covered by a snapshot. Their difference is the replay tail
	// a crash right now would cost on boot.
	LastLSN     uint64 `json:"last_lsn"`
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// Segments and WALBytes size the live log on disk.
	Segments int   `json:"segments"`
	WALBytes int64 `json:"wal_bytes"`
	// Appends counts log records, Fsyncs actual fsync(2) calls — their
	// ratio is the group-commit batching factor under SyncAlways.
	Appends              uint64 `json:"appends"`
	Fsyncs               uint64 `json:"fsyncs"`
	Snapshots            uint64 `json:"snapshots"`
	RecordsSinceSnapshot uint64 `json:"records_since_snapshot"`
	// RecoveredItems and ReplayedRecords describe the last boot; a boot
	// after a graceful shutdown replays zero records. TornTail reports
	// that boot found (and cleanly truncated) tail damage.
	RecoveredItems  int  `json:"recovered_items"`
	ReplayedRecords int  `json:"replayed_records"`
	TornTail        bool `json:"torn_tail,omitempty"`

	// FsyncLatency (nanoseconds per fsync) and GroupCommit (appended
	// records made durable per fsync) are present from stats_version 3
	// when the server records metrics; together they say whether
	// commit latency is hardware fsync cost or queueing behind it.
	FsyncLatency *Dist `json:"fsync_latency,omitempty"`
	GroupCommit  *Dist `json:"group_commit_records,omitempty"`
}
