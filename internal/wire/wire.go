// Package wire defines pqd's small length-prefixed binary protocol.
//
// Every message is one frame:
//
//	uint32  payload length (big-endian) — bytes after this field
//	uint8   protocol version (currently 1)
//	uint8   frame type
//	uint16  flags (reserved, must be zero)
//	uint32  request id (echoed verbatim in the response)
//	...     type-specific payload
//
// Requests and responses share the framing; clients pipeline requests
// freely and match responses by request id (responses to one
// connection's requests may interleave but each request gets exactly
// one response). Integers are big-endian; strings are uint16-length-
// prefixed, byte blobs uint32-length-prefixed.
//
// The protocol is versioned per frame so a server can serve old clients
// during a rollout: a frame with an unknown version, nonzero reserved
// flags, or an unknown type yields a TError response, never a closed
// connection. This works because the version byte sits inside the
// length-delimited region: ReadFrame and DecodeFrame consume the whole
// frame before reporting ErrBadVersion/ErrBadFlags, so the stream stays
// in sync and the server can reply and keep reading.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Version is the protocol version this package speaks.
const Version = 1

// MaxFrame bounds a frame's payload length; DecodeFrame and ReadFrame
// reject anything larger so a corrupt or hostile length prefix cannot
// force an unbounded allocation.
const MaxFrame = 1 << 20

// headerLen is the fixed frame header after the length prefix:
// version(1) + type(1) + flags(2) + request id(4).
const headerLen = 8

// MaxPayload bounds a frame's type-specific payload: MaxFrame minus the
// fixed header. Writers must keep encoded payloads at or below this or
// the peer's ReadFrame rejects the frame as ErrTooLarge.
const MaxPayload = MaxFrame - headerLen

// MaxValue bounds one item's value bytes. It is strictly smaller than
// MaxPayload so that any admitted item — with priority tag, blob length
// prefix, and batch count — always fits a TItem or single-item TItems
// response frame; servers reject larger values at insert time rather
// than discovering at delete-min time that the item cannot be returned.
const MaxValue = MaxFrame - 64

// Type identifies a frame's meaning.
type Type uint8

// Request frame types.
const (
	TInsert         Type = 0x01 // Insert payload
	TInsertBatch    Type = 0x02 // InsertBatch payload
	TDeleteMin      Type = 0x03 // queue name only
	TDeleteMinBatch Type = 0x04 // DeleteMinBatch payload
	TStats          Type = 0x05 // queue name only
	TDrain          Type = 0x06 // queue name only
)

// Response frame types.
const (
	TInsertOK   Type = 0x81 // InsertOK payload
	TItem       Type = 0x82 // Item payload (delete-min hit)
	TEmpty      Type = 0x83 // no payload (delete-min miss)
	TItems      Type = 0x84 // Items payload (delete-min batch)
	TRetryAfter Type = 0x85 // RetryAfter payload (admission shed)
	TStatsReply Type = 0x86 // opaque JSON payload
	TDrained    Type = 0x87 // Drained payload
	TError      Type = 0x88 // ErrorMsg payload
	TWrongNode  Type = 0x89 // WrongNode payload (cluster misroute NACK)
)

func (t Type) String() string {
	switch t {
	case TInsert:
		return "INSERT"
	case TInsertBatch:
		return "INSERT_BATCH"
	case TDeleteMin:
		return "DELETE_MIN"
	case TDeleteMinBatch:
		return "DELETE_MIN_BATCH"
	case TStats:
		return "STATS"
	case TDrain:
		return "DRAIN"
	case TInsertOK:
		return "INSERT_OK"
	case TItem:
		return "ITEM"
	case TEmpty:
		return "EMPTY"
	case TItems:
		return "ITEMS"
	case TRetryAfter:
		return "RETRY_AFTER"
	case TStatsReply:
		return "STATS_REPLY"
	case TDrained:
		return "DRAINED"
	case TError:
		return "ERROR"
	case TWrongNode:
		return "WRONG_NODE"
	}
	return fmt.Sprintf("Type(0x%02x)", uint8(t))
}

// Frame is one decoded protocol frame.
type Frame struct {
	Version uint8
	Type    Type
	ID      uint32
	Payload []byte
}

// Protocol decode errors.
var (
	ErrShort       = errors.New("wire: truncated frame")
	ErrTooLarge    = fmt.Errorf("wire: frame exceeds %d bytes", MaxFrame)
	ErrBadVersion  = errors.New("wire: unsupported protocol version")
	ErrBadFlags    = errors.New("wire: nonzero reserved flags")
	ErrBadPayload  = errors.New("wire: malformed payload")
	ErrUnknownType = errors.New("wire: unknown frame type")
)

// AppendFrame appends f's encoding to dst and returns the result.
func AppendFrame(dst []byte, f Frame) []byte {
	v := f.Version
	if v == 0 {
		v = Version
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+len(f.Payload)))
	dst = append(dst, v, uint8(f.Type))
	dst = binary.BigEndian.AppendUint16(dst, 0) // flags
	dst = binary.BigEndian.AppendUint32(dst, f.ID)
	return append(dst, f.Payload...)
}

// BeginFrame appends a frame header for (t, id) to dst with a
// placeholder length prefix and returns the grown slice plus the
// offset of that prefix. The caller appends the payload directly after
// it (with the message's Append method) and then calls EndFrame with
// the same offset to patch the length in. Encoding straight into a
// connection's write scratch this way costs zero copies and zero
// allocations, unlike building a payload and passing it to
// AppendFrame.
func BeginFrame(dst []byte, t Type, id uint32) ([]byte, int) {
	off := len(dst)
	dst = append(dst, 0, 0, 0, 0, Version, uint8(t), 0, 0)
	return binary.BigEndian.AppendUint32(dst, id), off
}

// EndFrame patches the length prefix of a frame started by BeginFrame
// at off, now that the payload has been appended, and returns dst.
func EndFrame(dst []byte, off int) []byte {
	binary.BigEndian.PutUint32(dst[off:], uint32(len(dst)-off-4))
	return dst
}

// AppendFrameHeader appends a complete frame header for a payload of
// exactly payloadLen bytes. For writers that splice the payload in
// from elsewhere (vectored writes that alias item values instead of
// copying them), where BeginFrame/EndFrame's patch-after-append cannot
// see the payload bytes.
func AppendFrameHeader(dst []byte, t Type, id uint32, payloadLen int) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(headerLen+payloadLen))
	dst = append(dst, Version, uint8(t), 0, 0)
	return binary.BigEndian.AppendUint32(dst, id)
}

// DecodeFrame decodes one frame from the front of buf, returning the
// frame and the number of bytes consumed. ErrShort means more input is
// needed. ErrBadVersion and ErrBadFlags are recoverable: the whole
// frame was consumed (the count is returned alongside the header fields
// so a server can reply TError by id and resync on the next frame). Any
// other error means the stream is unrecoverable. The returned payload
// aliases buf.
func DecodeFrame(buf []byte) (Frame, int, error) {
	if len(buf) < 4 {
		return Frame{}, 0, ErrShort
	}
	n := binary.BigEndian.Uint32(buf)
	if n > MaxFrame {
		return Frame{}, 0, ErrTooLarge
	}
	if n < headerLen {
		return Frame{}, 0, fmt.Errorf("%w: length %d below header size", ErrBadPayload, n)
	}
	total := 4 + int(n)
	if len(buf) < total {
		return Frame{}, 0, ErrShort
	}
	f := Frame{
		Version: buf[4],
		Type:    Type(buf[5]),
		ID:      binary.BigEndian.Uint32(buf[8:12]),
		Payload: buf[12:total],
	}
	if f.Version != Version {
		return Frame{Version: f.Version, Type: f.Type, ID: f.ID}, total, ErrBadVersion
	}
	if binary.BigEndian.Uint16(buf[6:8]) != 0 {
		return Frame{Version: f.Version, Type: f.Type, ID: f.ID}, total, ErrBadFlags
	}
	return f, total, nil
}

// ReadFrame reads exactly one frame from r. The payload is freshly
// allocated and does not alias any internal buffer. On ErrBadVersion or
// ErrBadFlags the frame (its length-delimited payload included) has
// been fully consumed from r and the returned Frame carries the header
// fields, so a server can reply TError by id and keep reading the
// connection; any other error leaves the stream unusable.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [4 + headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return Frame{}, ErrTooLarge
	}
	if n < headerLen {
		return Frame{}, fmt.Errorf("%w: length %d below header size", ErrBadPayload, n)
	}
	f := Frame{
		Version: hdr[4],
		Type:    Type(hdr[5]),
		ID:      binary.BigEndian.Uint32(hdr[8:12]),
	}
	var ferr error
	if f.Version != Version {
		ferr = ErrBadVersion
	} else if binary.BigEndian.Uint16(hdr[6:8]) != 0 {
		ferr = ErrBadFlags
	}
	if n > headerLen {
		if ferr != nil {
			// Drain the payload so the stream resyncs on the next frame.
			if _, err := io.CopyN(io.Discard, r, int64(n-headerLen)); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, err
			}
		} else {
			f.Payload = make([]byte, n-headerLen)
			if _, err := io.ReadFull(r, f.Payload); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, err
			}
		}
	}
	if ferr != nil {
		return Frame{Version: f.Version, Type: f.Type, ID: f.ID}, ferr
	}
	return f, nil
}

// WriteFrame writes f to w in one Write call. The encode buffer comes
// from the frame pool, so steady-state calls do not allocate; w must
// not retain the bytes past the Write call (io.Writer's contract).
func WriteFrame(w io.Writer, f Frame) error {
	buf := AppendFrame(GetBuf(4+headerLen+len(f.Payload)), f)
	_, err := w.Write(buf)
	PutBuf(buf)
	return err
}

// A FrameReader reads frames like ReadFrame but without per-frame
// allocation: the header scratch persists across calls and payloads
// come from the frame pool. The returned Frame's Payload is owned by
// the caller, who should hand it back with PutBuf once the request no
// longer needs it; the error contract is identical to ReadFrame's.
// A FrameReader is not safe for concurrent use.
type FrameReader struct {
	hdr [4 + headerLen]byte
}

func (fr *FrameReader) ReadFrame(r io.Reader) (Frame, error) {
	if _, err := io.ReadFull(r, fr.hdr[:]); err != nil {
		return Frame{}, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:4])
	if n > MaxFrame {
		return Frame{}, ErrTooLarge
	}
	if n < headerLen {
		return Frame{}, fmt.Errorf("%w: length %d below header size", ErrBadPayload, n)
	}
	f := Frame{
		Version: fr.hdr[4],
		Type:    Type(fr.hdr[5]),
		ID:      binary.BigEndian.Uint32(fr.hdr[8:12]),
	}
	var ferr error
	if f.Version != Version {
		ferr = ErrBadVersion
	} else if binary.BigEndian.Uint16(fr.hdr[6:8]) != 0 {
		ferr = ErrBadFlags
	}
	if n > headerLen {
		if ferr != nil {
			// Drain the payload so the stream resyncs on the next frame.
			if _, err := io.CopyN(io.Discard, r, int64(n-headerLen)); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, err
			}
		} else {
			buf := GetBuf(int(n) - headerLen)
			f.Payload = buf[:n-headerLen]
			if _, err := io.ReadFull(r, f.Payload); err != nil {
				PutBuf(buf)
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return Frame{}, err
			}
		}
	}
	if ferr != nil {
		return Frame{Version: f.Version, Type: f.Type, ID: f.ID}, ferr
	}
	return f, nil
}
