package harness

import (
	"fmt"
	"io"
	"sort"

	"pq/internal/sim"
	"pq/internal/simpq"
)

// StructureContention aggregates the simulator's per-word contention
// profile by labeled structure: where each algorithm's wait cycles go.
type StructureContention struct {
	Structure  string
	Words      int
	Accesses   int64
	Contended  int64
	WaitCycles int64
}

// ContentionReport holds one algorithm's contention breakdown for a
// workload.
type ContentionReport struct {
	Algorithm  simpq.Algorithm
	Procs      int
	Pris       int
	Result     simpq.Result
	Structures []StructureContention
	TopWords   []sim.HotSpot
}

// ProfileContention runs the paper's workload with the contention
// profiler on and aggregates the result per structure. It quantifies the
// paper's central claim directly: which words are hot spots in each
// algorithm, and how much latency they cost.
func ProfileContention(alg simpq.Algorithm, procs, npri int, scale float64) (*ContentionReport, error) {
	cfg := simpq.DefaultWorkload()
	cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
	res, spots, err := simpq.ProfiledWorkload(alg, procs, npri, cfg, 0x7fffffff)
	if err != nil {
		return nil, err
	}
	agg := map[string]*StructureContention{}
	for _, s := range spots {
		name := s.Name
		if name == "" {
			name = "(unlabeled)"
		}
		sc := agg[name]
		if sc == nil {
			sc = &StructureContention{Structure: name}
			agg[name] = sc
		}
		sc.Words++
		sc.Accesses += s.Accesses
		sc.Contended += s.Contended
		sc.WaitCycles += s.WaitCycles
	}
	rep := &ContentionReport{Algorithm: alg, Procs: procs, Pris: npri, Result: res}
	for _, sc := range agg {
		rep.Structures = append(rep.Structures, *sc)
	}
	sort.Slice(rep.Structures, func(i, j int) bool {
		return rep.Structures[i].WaitCycles > rep.Structures[j].WaitCycles
	})
	if len(spots) > 10 {
		spots = spots[:10]
	}
	rep.TopWords = spots
	return rep, nil
}

// Render writes the report as aligned tables.
func (r *ContentionReport) Render(w io.Writer) {
	fmt.Fprintf(w, "%s, %d processors, %d priorities: mean latency %.0f cycles/op\n\n",
		r.Algorithm, r.Procs, r.Pris, r.Result.MeanAll)
	head := []string{"structure", "words", "accesses", "contended", "wait cycles"}
	var rows [][]string
	for _, s := range r.Structures {
		rows = append(rows, []string{
			s.Structure,
			fmt.Sprintf("%d", s.Words),
			fmt.Sprintf("%d", s.Accesses),
			fmt.Sprintf("%d", s.Contended),
			fmt.Sprintf("%d", s.WaitCycles),
		})
	}
	writeAligned(w, head, rows)
	fmt.Fprintln(w, "\nhottest words:")
	head = []string{"addr", "structure", "accesses", "contended", "wait cycles"}
	rows = rows[:0]
	for _, s := range r.TopWords {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Addr),
			s.Name,
			fmt.Sprintf("%d", s.Accesses),
			fmt.Sprintf("%d", s.Contended),
			fmt.Sprintf("%d", s.WaitCycles),
		})
	}
	writeAligned(w, head, rows)
}
