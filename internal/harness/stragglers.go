package harness

import (
	"fmt"
	"io"

	"pq/internal/sim"
	"pq/internal/simpq"
)

// stragglerModes are the stall regimes the experiment compares, built on
// the simulator's fault-injection layer (sim.FaultPlan): stalls land at
// engine level, freezing a processor wherever it happens to be — in the
// middle of a combining handshake or while holding a lock — rather than
// only at the polite operation boundaries the old in-workload knob hit.
func stragglerModes() []struct {
	name string
	plan *sim.FaultPlan
} {
	return []struct {
		name string
		plan *sim.FaultPlan
	}{
		{"none", nil},
		{"mild", &sim.FaultPlan{Stalls: []sim.StallSpec{
			// ~400-cycle stalls (10 remote accesses) every 4k-12k cycles.
			{Proc: sim.AllProcs, Gap: sim.Uniform(4_000, 12_000), Duration: sim.Fixed(400)},
		}}},
		{"heavy-tail", &sim.FaultPlan{Stalls: []sim.StallSpec{
			// Pareto stalls: mostly short, occasionally enormous — the
			// realistic straggler profile of preemption and page faults.
			{Proc: sim.AllProcs, Gap: sim.Uniform(2_000, 6_000), Duration: sim.Pareto(200, 1.3)},
		}}},
	}
}

// Stragglers probes a robustness question the paper leaves open: funnel
// operations wait for combining partners, so how do the queues fare when
// processors stall unpredictably (preemption, page faults)? Each mode
// injects engine-level stalls from a seeded distribution; the experiment
// compares access latency across regimes. Stall time itself is part of
// the measured latency — a stalled processor's in-flight operation
// really does take that long.
func Stragglers() *Experiment {
	return &Experiment{
		ID:       "stragglers",
		Title:    "Latency under random engine-level stalls (16 priorities, 64 processors)",
		PaperRef: "robustness probe (beyond the paper)",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			base := simpq.DefaultWorkload()
			base.OpsPerProc = scaleOps(base.OpsPerProc, scale)
			modes := stragglerModes()
			var pts []Point
			for _, alg := range fastAlgorithms {
				progress(string(alg))
				for mi, mode := range modes {
					simCfg := sim.DefaultConfig(64)
					simCfg.Faults = mode.plan
					r, _, err := simpq.WorkloadOnMachine(alg, 16, base, simCfg, 0)
					if err != nil {
						return nil, err
					}
					pts = append(pts, Point{
						Algorithm: string(alg), Procs: 64, Pris: 16,
						X: float64(mi), Result: r,
					})
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			modes := stragglerModes()
			head := []string{"algorithm"}
			for _, m := range modes {
				head = append(head, m.name)
			}
			var rows [][]string
			byAlg := map[string]map[float64]float64{}
			var algOrder []string
			for _, p := range pts {
				if byAlg[p.Algorithm] == nil {
					byAlg[p.Algorithm] = map[float64]float64{}
					algOrder = append(algOrder, p.Algorithm)
				}
				byAlg[p.Algorithm][p.X] = p.Result.MeanAll
			}
			for _, alg := range algOrder {
				m := byAlg[alg]
				row := []string{alg}
				for mi := range modes {
					row = append(row, fmt.Sprintf("%.0f", m[float64(mi)]))
				}
				rows = append(rows, row)
			}
			writeAligned(w, head, rows)
			fmt.Fprintln(w, "\nfunnel methods wait for combining partners, so stalled peers")
			fmt.Fprintln(w, "could hurt them disproportionately; adaption is the countermeasure.")
		},
	}
}
