package harness

import (
	"fmt"
	"io"

	"pq/internal/simpq"
)

// Stragglers probes a robustness question the paper leaves open: funnel
// operations wait for combining partners, so how do the queues fare when
// processors stall unpredictably (preemption, page faults)? Each
// processor is stalled for 10 remote-access times every few operations,
// and the experiment compares latency with and without the disturbance.
func Stragglers() *Experiment {
	return &Experiment{
		ID:       "stragglers",
		Title:    "Latency under periodic processor stalls (16 priorities, 64 processors)",
		PaperRef: "robustness probe (beyond the paper)",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			base := simpq.DefaultWorkload()
			base.OpsPerProc = scaleOps(base.OpsPerProc, scale)
			var pts []Point
			for _, alg := range fastAlgorithms {
				progress(string(alg))
				for _, stallEvery := range []int{0, 8, 2} {
					cfg := base
					cfg.StallEvery = stallEvery
					r, err := simpq.RunWorkload(alg, 64, 16, cfg)
					if err != nil {
						return nil, err
					}
					// Remove the injected stall itself from the comparison
					// baseline by reporting plain access latency; the stall
					// happens outside the measured window.
					pts = append(pts, Point{
						Algorithm: string(alg), Procs: 64, Pris: 16,
						X: float64(stallEvery), Result: r,
					})
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			head := []string{"algorithm", "no stalls", "stall every 8 ops", "stall every 2 ops"}
			var rows [][]string
			byAlg := map[string]map[float64]float64{}
			var algOrder []string
			for _, p := range pts {
				if byAlg[p.Algorithm] == nil {
					byAlg[p.Algorithm] = map[float64]float64{}
					algOrder = append(algOrder, p.Algorithm)
				}
				byAlg[p.Algorithm][p.X] = p.Result.MeanAll
			}
			for _, alg := range algOrder {
				m := byAlg[alg]
				rows = append(rows, []string{
					alg,
					fmt.Sprintf("%.0f", m[0]),
					fmt.Sprintf("%.0f", m[8]),
					fmt.Sprintf("%.0f", m[2]),
				})
			}
			writeAligned(w, head, rows)
			fmt.Fprintln(w, "\nfunnel methods wait for combining partners, so stalled peers")
			fmt.Fprintln(w, "could hurt them disproportionately; adaption is the countermeasure.")
		},
	}
}
