package harness

import (
	"strings"
	"testing"

	"pq/internal/simpq"
)

// TestChaosMatrixClassifiesEveryAlgorithm runs the full fault matrix at
// a tiny scale and checks the acceptance bar: every (plan, algorithm)
// cell gets a named outcome, crash-stop plans really crash processors,
// and no cell reports a safety violation in the surviving history.
func TestChaosMatrixClassifiesEveryAlgorithm(t *testing.T) {
	rep, err := RunChaos(0.25, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(ChaosPlans()) * len(simpq.All())
	if len(rep.Cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(rep.Cells), wantCells)
	}
	for _, c := range rep.Cells {
		if c.Outcome == "" || strings.HasPrefix(c.Outcome, "error:") {
			t.Errorf("%s/%s: unclassified outcome %q", c.Plan, c.Algorithm, c.Outcome)
		}
		if c.SafetyViolations != 0 {
			t.Errorf("%s/%s: %d safety violations in surviving history", c.Plan, c.Algorithm, c.SafetyViolations)
		}
		if c.Plan == "crash-stop" && c.Crashed == 0 {
			t.Errorf("%s/%s: crash plan crashed nobody", c.Plan, c.Algorithm)
		}
		if c.Plan == "baseline" && c.Outcome != "survivors-progress" {
			t.Errorf("baseline/%s: outcome %q, want survivors-progress", c.Algorithm, c.Outcome)
		}
	}
	var sb strings.Builder
	rep.Render(&sb)
	for _, p := range ChaosPlans() {
		if !strings.Contains(sb.String(), p.Name) {
			t.Errorf("rendered report missing plan %q", p.Name)
		}
	}
}
