package harness

import (
	"fmt"
	"io"

	"pq/internal/simpq"
)

// SteadyState measures the queues with a prefilled queue instead of the
// paper's empty start. Starting empty means roughly half the early
// delete-min calls fail and the tree counters sit at their bounds;
// prefilling 4 items per processor keeps the queue non-empty throughout,
// which is the regime a deployed scheduler actually runs in.
func SteadyState() *Experiment {
	return &Experiment{
		ID:       "steadystate",
		Title:    "Empty-start vs prefilled queue (16 priorities)",
		PaperRef: "workload variant (beyond the paper)",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			base := simpq.DefaultWorkload()
			base.OpsPerProc = scaleOps(base.OpsPerProc, scale)
			var pts []Point
			for _, alg := range fastAlgorithms {
				progress(string(alg))
				for _, procs := range []int{64, 256} {
					for _, prefill := range []int{0, 1} {
						cfg := base
						cfg.Prefill = prefill * 4 * procs
						r, err := simpq.RunWorkload(alg, procs, 16, cfg)
						if err != nil {
							return nil, err
						}
						pts = append(pts, Point{
							Algorithm: string(alg), Procs: procs, Pris: 16,
							X: float64(prefill), Result: r,
						})
					}
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			head := []string{"algorithm", "procs", "empty start", "failed dels", "prefilled", "failed dels"}
			type key struct {
				alg   string
				procs int
			}
			cells := map[key][2]Point{}
			var order []key
			for _, p := range pts {
				k := key{p.Algorithm, p.Procs}
				c, seen := cells[k]
				if !seen {
					order = append(order, k)
				}
				c[int(p.X)] = p
				cells[k] = c
			}
			var rows [][]string
			for _, k := range order {
				c := cells[k]
				rows = append(rows, []string{
					k.alg, fmt.Sprintf("%d", k.procs),
					fmt.Sprintf("%.0f", c[0].Result.MeanAll),
					fmt.Sprintf("%d", c[0].Result.FailedDeletes),
					fmt.Sprintf("%.0f", c[1].Result.MeanAll),
					fmt.Sprintf("%d", c[1].Result.FailedDeletes),
				})
			}
			writeAligned(w, head, rows)
		},
	}
}
