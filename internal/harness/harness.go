// Package harness defines the experiments that regenerate every table and
// figure of the paper's evaluation (Section 4), runs the parameter sweeps
// on the simulator, and renders aligned text tables and CSV.
package harness

import (
	"fmt"
	"io"
	"strings"

	"pq/internal/simpq"
)

// Point is one measured cell of an experiment: a configuration and its
// latency results.
type Point struct {
	Algorithm string
	Procs     int
	Pris      int
	X         float64 // sweep coordinate (procs, priorities, or dec %)
	Result    simpq.Result
}

// Experiment is a named, runnable reproduction of one paper figure or
// table.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	// Run executes the sweep; scale in (0,1] shrinks the workload for
	// quick runs (bench mode), 1 is the full configuration.
	Run func(scale float64, progress func(string)) ([]Point, error)
	// Render writes the rows/series the paper reports.
	Render func(w io.Writer, pts []Point)
}

// scaleOps scales the per-processor operation count, keeping at least a
// handful of operations so means stay meaningful.
func scaleOps(base int, scale float64) int {
	n := int(float64(base) * scale)
	if n < 5 {
		n = 5
	}
	return n
}

// seriesTable renders points grouped into one column per algorithm with
// the sweep coordinate in the first column — the shape of the paper's
// line graphs, as text.
func seriesTable(w io.Writer, pts []Point, xName string, xFmt func(float64) string) {
	algs := make([]string, 0, 8)
	seen := map[string]bool{}
	xs := make([]float64, 0, 16)
	xSeen := map[float64]bool{}
	cell := map[string]map[float64]float64{}
	for _, p := range pts {
		if !seen[p.Algorithm] {
			seen[p.Algorithm] = true
			algs = append(algs, p.Algorithm)
			cell[p.Algorithm] = map[float64]float64{}
		}
		if !xSeen[p.X] {
			xSeen[p.X] = true
			xs = append(xs, p.X)
		}
		cell[p.Algorithm][p.X] = p.Result.MeanAll
	}

	head := make([]string, 0, len(algs)+1)
	head = append(head, xName)
	head = append(head, algs...)
	rows := make([][]string, 0, len(xs))
	for _, x := range xs {
		row := make([]string, 0, len(algs)+1)
		row = append(row, xFmt(x))
		for _, a := range algs {
			if v, ok := cell[a][x]; ok {
				row = append(row, fmt.Sprintf("%.0f", v))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	writeAligned(w, head, rows)
}

// writeAligned prints a column-aligned table.
func writeAligned(w io.Writer, head []string, rows [][]string) {
	width := make([]int, len(head))
	for i, h := range head {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", width[i], c)
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(head)
	sep := make([]string, len(head))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// WriteCSV renders points as CSV (one row per point).
func WriteCSV(w io.Writer, pts []Point) {
	fmt.Fprintln(w, "algorithm,procs,priorities,x,mean_all,mean_insert,mean_delete,inserts,deletes,failed_deletes,sim_cycles,sim_events")
	for _, p := range pts {
		fmt.Fprintf(w, "%s,%d,%d,%g,%.1f,%.1f,%.1f,%d,%d,%d,%d,%d\n",
			p.Algorithm, p.Procs, p.Pris, p.X,
			p.Result.MeanAll, p.Result.MeanInsert, p.Result.MeanDelete,
			p.Result.Inserts, p.Result.Deletes, p.Result.FailedDeletes,
			p.Result.Stats.FinalTime, p.Result.Stats.Events)
	}
}

// All returns every experiment, keyed by ID, in presentation order.
func All() []*Experiment {
	return []*Experiment{
		Fig5Left(), Fig5Right(), Fig6(), Fig7(), Fig8(), Fig9(),
		AblateCutoff(), AblateAdaption(), Fairness(), Stragglers(),
		SteadyState(), Sensitivity(),
	}
}

// ByID finds an experiment by its ID.
func ByID(id string) (*Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q", id)
}
