package harness

import (
	"strings"
	"testing"

	"pq/internal/simpq"
)

func TestProfileContention(t *testing.T) {
	rep, err := ProfileContention(simpq.AlgSimpleTree, 16, 8, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Result.MeanAll <= 0 {
		t.Fatalf("no latency measured")
	}
	if len(rep.Structures) == 0 {
		t.Fatal("no structures aggregated")
	}
	seen := map[string]bool{}
	for _, s := range rep.Structures {
		seen[s.Structure] = true
		if s.Accesses <= 0 {
			t.Errorf("structure %q has no accesses", s.Structure)
		}
	}
	if !seen["mcs.tail"] {
		t.Errorf("SimpleTree profile missing mcs.tail: %v", rep.Structures)
	}
	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "hottest words") {
		t.Fatalf("render incomplete:\n%s", sb.String())
	}
}

func TestProfileContentionFunnelsSpreadLoad(t *testing.T) {
	// The funnel queue must show its contention spread across funnel
	// layers/records rather than concentrated on one counter lock — the
	// paper's mechanism made visible.
	rep, err := ProfileContention(simpq.AlgFunnelTree, 32, 8, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	var funnelWords, total int
	for _, s := range rep.Structures {
		total += s.Words
		if strings.HasPrefix(s.Structure, "funnel") {
			funnelWords += s.Words
		}
	}
	if funnelWords == 0 {
		t.Fatalf("no funnel structures in profile: %+v", rep.Structures)
	}
}
