package harness

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"pq/internal/order"
	"pq/internal/sim"
	"pq/internal/simpq"
)

// The chaos experiment family answers the robustness question the paper
// leaves open: its central mechanisms — combining funnels that wait for
// partners, and locks held across remote accesses — are exactly the
// structures that degrade or hang when processors stall or die. Each
// algorithm runs under a matrix of deterministic fault plans; recorded
// histories are fed through the order checker to prove safety for the
// surviving processors, and every run's terminal state is classified.

const (
	chaosProcs = 32
	chaosPris  = 16
	// chaosWatchdog bounds how long a non-progressing run may burn
	// simulated cycles before it is aborted with diagnostics.
	chaosWatchdog = 2_000_000
)

// ChaosPlan is one column of the fault matrix.
type ChaosPlan struct {
	Name string
	Desc string
	// Plan is nil for the fault-free baseline.
	Plan *sim.FaultPlan
}

// ChaosPlans returns the fault matrix: a fault-free baseline, uniform
// and heavy-tailed transient stalls, a degraded memory module, and a
// staggered crash-stop of several processors.
func ChaosPlans() []ChaosPlan {
	return []ChaosPlan{
		{Name: "baseline", Desc: "no faults"},
		{Name: "stall-uniform", Desc: "every proc: 400-cycle stalls, uniform 2k-8k gaps",
			Plan: &sim.FaultPlan{Stalls: []sim.StallSpec{
				{Proc: sim.AllProcs, Gap: sim.Uniform(2_000, 8_000), Duration: sim.Fixed(400)},
			}}},
		{Name: "stall-pareto", Desc: "every proc: Pareto(200, alpha=1.3) stalls - heavy tail",
			Plan: &sim.FaultPlan{Stalls: []sim.StallSpec{
				{Proc: sim.AllProcs, Gap: sim.Uniform(2_000, 8_000), Duration: sim.Pareto(200, 1.3)},
			}}},
		{Name: "degraded-module", Desc: "8x occupancy+latency on all queue memory, cycles 10k-60k",
			Plan: &sim.FaultPlan{Degrades: []sim.Degrade{
				{Base: 0, Words: 1 << 22, From: 10_000, Until: 60_000, Factor: 8},
			}}},
		{Name: "crash-stop", Desc: "procs 3, 11, 19 crash at cycles 5k, 15k, 30k",
			Plan: &sim.FaultPlan{Crashes: []sim.Crash{
				{Proc: 3, At: 5_000}, {Proc: 11, At: 15_000}, {Proc: 19, At: 30_000},
			}}},
	}
}

// ChaosCell is one (plan, algorithm) outcome.
type ChaosCell struct {
	Plan      string
	Algorithm string
	// Outcome classifies the terminal state: survivors-progress,
	// deadlock (orphaned lock), stranded (funnel partners), livelock
	// caught by the watchdog, etc.
	Outcome string
	// Ops counts completed operations; MeanAll their average latency.
	Ops     int
	MeanAll float64
	// Crashed is the number of crash-stopped processors.
	Crashed int
	// SafetyViolations counts uniqueness/precedence/well-formedness
	// violations in the surviving history — always expected to be zero.
	// Inversions counts priority/emptiness violations, the semantic the
	// quiescently consistent queues trade away under overlap (and any
	// algorithm may exhibit against possibly-linearized crashed ops).
	SafetyViolations int
	Inversions       int
}

// ChaosReport is the full matrix.
type ChaosReport struct {
	Procs, Pris int
	Cells       []ChaosCell
}

// scaleFaultTimes returns a copy of plan with its time-anchored faults
// (crash cycles, degradation windows) multiplied by scale. A scaled-down
// run finishes proportionally earlier, so without this a quick run's
// crashes would fire after fast algorithms have already drained — the
// miniature must hit the same phases of the run the full-scale plan
// does. Stall streams are recurring, not anchored, so they need no
// adjustment.
func scaleFaultTimes(plan *sim.FaultPlan, scale float64) *sim.FaultPlan {
	if plan == nil || scale == 1 {
		return plan
	}
	scaled := &sim.FaultPlan{
		Stalls:   plan.Stalls,
		Crashes:  append([]sim.Crash(nil), plan.Crashes...),
		Degrades: append([]sim.Degrade(nil), plan.Degrades...),
	}
	at := func(t int64) int64 {
		if s := int64(float64(t) * scale); s > 1 {
			return s
		}
		return 1
	}
	for i := range scaled.Crashes {
		scaled.Crashes[i].At = at(scaled.Crashes[i].At)
	}
	for i := range scaled.Degrades {
		scaled.Degrades[i].From = at(scaled.Degrades[i].From)
		scaled.Degrades[i].Until = at(scaled.Degrades[i].Until)
	}
	return scaled
}

// RunChaos executes the fault matrix over every algorithm — the paper's
// seven plus the relaxed MultiQueue, whose priority reorderings land in
// the Inversions column like the quiescently consistent queues'. scale
// shrinks the per-processor operation count exactly like experiment
// runs; crash cycles and degradation windows shrink with it.
func RunChaos(scale float64, progress func(string)) (*ChaosReport, error) {
	cfg := simpq.DefaultWorkload()
	cfg.OpsPerProc = scaleOps(40, scale)
	rep := &ChaosReport{Procs: chaosProcs, Pris: chaosPris}
	for _, plan := range ChaosPlans() {
		for _, alg := range simpq.All() {
			progress(fmt.Sprintf("%s / %s", plan.Name, alg))
			simCfg := sim.DefaultConfig(chaosProcs)
			simCfg.Faults = scaleFaultTimes(plan.Plan, scale)
			simCfg.WatchdogCycles = chaosWatchdog
			r, err := simpq.ChaosWorkload(alg, chaosPris, cfg, simCfg)
			if err != nil {
				return nil, fmt.Errorf("chaos %s/%s: %w", plan.Name, alg, err)
			}
			cell := ChaosCell{
				Plan:      plan.Name,
				Algorithm: string(alg),
				Outcome:   ClassifyChaos(r, chaosProcs),
				Ops:       r.Latency.Inserts + r.Latency.Deletes,
				MeanAll:   r.Latency.MeanAll,
				Crashed:   len(r.Crashed),
			}
			for _, v := range order.CheckTruncated(r.History, r.Pending) {
				switch v.Rule {
				case "uniqueness", "precedence", "well-formed":
					cell.SafetyViolations++
				default:
					cell.Inversions++
				}
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

// labelClass buckets a blocked-address label into the structure family
// it belongs to.
func labelClass(label string) (lock, funnel bool) {
	l := strings.ToLower(label)
	lock = strings.Contains(l, "lock") || strings.Contains(l, "mcs")
	funnel = strings.Contains(l, "funnel")
	return
}

// ClassifyChaos names the failure mode of one chaos run: did survivors
// make progress, deadlock on a lock orphaned by a crash, get stranded
// waiting for funnel partners, or livelock until the watchdog fired?
func ClassifyChaos(r simpq.ChaosResult, procs int) string {
	survivors := procs - len(r.Crashed)
	if r.RunErr == nil {
		if r.Completed == survivors {
			return "survivors-progress"
		}
		return "partial-progress" // defensive; Run only returns nil when all survivors finish
	}
	var lock, funnel bool
	if errors.Is(r.RunErr, sim.ErrDeadlock) {
		for _, b := range r.Blocked {
			l, f := labelClass(b.Label)
			lock, funnel = lock || l, funnel || f
		}
		switch {
		case funnel && !lock:
			return "stranded (funnel partners)"
		case lock && !funnel:
			return "deadlock (orphaned lock)"
		case lock && funnel:
			return "deadlock (lock + funnel)"
		default:
			return "deadlock"
		}
	}
	var wd *sim.WatchdogError
	if errors.As(r.RunErr, &wd) {
		for _, ps := range wd.Procs {
			if ps.Done || ps.Crashed {
				continue
			}
			l, f := labelClass(ps.BlockedLabel)
			lock, funnel = lock || l, funnel || f
		}
		switch {
		case funnel && !lock:
			return "stranded (funnel partners, watchdog)"
		case lock:
			return "livelock (watchdog, lock)"
		default:
			return "livelock (watchdog)"
		}
	}
	if errors.Is(r.RunErr, sim.ErrEventLimit) {
		return "livelock (event limit)"
	}
	return "error: " + r.RunErr.Error()
}

// Render writes the failure-mode table, one block per fault plan.
func (rep *ChaosReport) Render(w io.Writer) {
	fmt.Fprintf(w, "chaos matrix: %d processors, %d priorities; watchdog %d cycles\n\n",
		rep.Procs, rep.Pris, int64(chaosWatchdog))
	byPlan := map[string][]ChaosCell{}
	var planOrder []string
	for _, c := range rep.Cells {
		if _, ok := byPlan[c.Plan]; !ok {
			planOrder = append(planOrder, c.Plan)
		}
		byPlan[c.Plan] = append(byPlan[c.Plan], c)
	}
	descs := map[string]string{}
	for _, p := range ChaosPlans() {
		descs[p.Name] = p.Desc
	}
	for _, plan := range planOrder {
		fmt.Fprintf(w, "-- %s (%s) --\n", plan, descs[plan])
		head := []string{"algorithm", "outcome", "ops", "mean", "crashed", "safety", "inversions"}
		var rows [][]string
		for _, c := range byPlan[plan] {
			rows = append(rows, []string{
				c.Algorithm, c.Outcome,
				fmt.Sprintf("%d", c.Ops),
				fmt.Sprintf("%.0f", c.MeanAll),
				fmt.Sprintf("%d", c.Crashed),
				fmt.Sprintf("%d", c.SafetyViolations),
				fmt.Sprintf("%d", c.Inversions),
			})
		}
		writeAligned(w, head, rows)
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "safety = uniqueness/precedence/well-formedness violations in the surviving")
	fmt.Fprintln(w, "history (must be 0); inversions = priority/emptiness reorderings, the")
	fmt.Fprintln(w, "semantic the quiescently consistent queues trade for scalability.")
}
