package harness

import (
	"fmt"
	"io"

	"pq/internal/sim"
	"pq/internal/simpq"
)

// Sensitivity answers the reproduction's main threat to validity: do the
// paper's conclusions depend on our particular cost-model constants? It
// re-runs the Figure-7 endpoint (256 processors, 16 priorities) across a
// grid of remote-latency and hot-spot-occupancy values and reports the
// FunnelTree-versus-baseline ratios for each machine.
func Sensitivity() *Experiment {
	return &Experiment{
		ID:       "sensitivity",
		Title:    "Cost-model sensitivity of the Figure-7 conclusion (256 processors)",
		PaperRef: "threat-to-validity analysis (beyond the paper)",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			algs := []simpq.Algorithm{simpq.AlgSimpleLinear, simpq.AlgSimpleTree, simpq.AlgFunnelTree}
			var pts []Point
			grid := []struct{ remote, occ int64 }{
				{20, 5}, {20, 20}, {40, 10}, {40, 40}, {80, 10}, {80, 40},
			}
			for gi, g := range grid {
				progress(fmt.Sprintf("remote=%d occupancy=%d", g.remote, g.occ))
				for _, alg := range algs {
					simCfg := sim.DefaultConfig(256)
					simCfg.RemoteCost = g.remote
					simCfg.Occupancy = g.occ
					r, _, err := simpq.WorkloadOnMachine(alg, 16, cfg, simCfg, 0)
					if err != nil {
						return nil, err
					}
					pts = append(pts, Point{
						Algorithm: string(alg), Procs: 256, Pris: 16,
						// Encode the grid cell in X; the renderer decodes.
						X: float64(gi), Result: r,
					})
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			grid := []struct{ remote, occ int64 }{
				{20, 5}, {20, 20}, {40, 10}, {40, 40}, {80, 10}, {80, 40},
			}
			head := []string{"remote", "occupancy", "SimpleLinear", "SimpleTree", "FunnelTree", "ST/FT", "SL/FT"}
			byCell := map[int]map[string]float64{}
			for _, p := range pts {
				gi := int(p.X)
				if byCell[gi] == nil {
					byCell[gi] = map[string]float64{}
				}
				byCell[gi][p.Algorithm] = p.Result.MeanAll
			}
			var rows [][]string
			for gi, g := range grid {
				m := byCell[gi]
				ft := m[string(simpq.AlgFunnelTree)]
				rows = append(rows, []string{
					fmt.Sprintf("%d", g.remote),
					fmt.Sprintf("%d", g.occ),
					fmt.Sprintf("%.0f", m[string(simpq.AlgSimpleLinear)]),
					fmt.Sprintf("%.0f", m[string(simpq.AlgSimpleTree)]),
					fmt.Sprintf("%.0f", ft),
					fmt.Sprintf("%.1fx", m[string(simpq.AlgSimpleTree)]/ft),
					fmt.Sprintf("%.1fx", m[string(simpq.AlgSimpleLinear)]/ft),
				})
			}
			writeAligned(w, head, rows)
			fmt.Fprintln(w, "\nthe conclusion holds whenever ST/FT and SL/FT stay above 1.")
		},
	}
}
