package harness

import (
	"fmt"
	"io"

	"pq/internal/sim"
	"pq/internal/simpq"
)

// procSweepLow is Figure 6's concurrency range, procSweepHigh Figures 5
// (left) and 7's.
var (
	procSweepLow  = []int{2, 4, 6, 8, 10, 12, 14, 16}
	procSweepHigh = []int{2, 4, 8, 16, 32, 64, 128, 256}
	priSweep      = []int{2, 4, 8, 16, 32, 64, 128, 256, 512}
)

// fastAlgorithms are the four scalable methods compared at high
// concurrency (Figures 7-9).
var fastAlgorithms = []simpq.Algorithm{
	simpq.AlgSimpleLinear, simpq.AlgSimpleTree,
	simpq.AlgLinearFunnels, simpq.AlgFunnelTree,
}

func queuePoint(alg simpq.Algorithm, procs, npri int, cfg simpq.WorkloadConfig, x float64) (Point, error) {
	r, err := simpq.RunWorkload(alg, procs, npri, cfg)
	if err != nil {
		return Point{}, fmt.Errorf("%s procs=%d npri=%d: %w", alg, procs, npri, err)
	}
	return Point{Algorithm: string(alg), Procs: procs, Pris: npri, X: x, Result: r}, nil
}

// Fig6 compares all seven implementations at 16 priorities and low
// concurrency (2..16 processors).
func Fig6() *Experiment {
	return &Experiment{
		ID:       "fig6",
		Title:    "Latency of all queue implementations, 16 priorities, low concurrency",
		PaperRef: "Figure 6",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			var pts []Point
			for _, alg := range simpq.Algorithms {
				progress(string(alg))
				for _, procs := range procSweepLow {
					pt, err := queuePoint(alg, procs, 16, cfg, float64(procs))
					if err != nil {
						return nil, err
					}
					pts = append(pts, pt)
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			seriesTable(w, pts, "procs", func(x float64) string { return fmt.Sprintf("%.0f", x) })
		},
	}
}

// Fig7 compares the four scalable methods at 16 priorities across the
// full concurrency range (2..256 processors).
func Fig7() *Experiment {
	return &Experiment{
		ID:       "fig7",
		Title:    "Latency of scalable queue implementations, 16 priorities, full concurrency range",
		PaperRef: "Figure 7",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			var pts []Point
			for _, alg := range fastAlgorithms {
				progress(string(alg))
				for _, procs := range procSweepHigh {
					pt, err := queuePoint(alg, procs, 16, cfg, float64(procs))
					if err != nil {
						return nil, err
					}
					pts = append(pts, pt)
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			seriesTable(w, pts, "procs", func(x float64) string { return fmt.Sprintf("%.0f", x) })
		},
	}
}

// Fig8 reproduces the table of insert/delete-min latency break-downs for
// the four scalable methods at P in {16,64,256} and N in {16,128}.
func Fig8() *Experiment {
	return &Experiment{
		ID:       "fig8",
		Title:    "Insert and delete-min latency break-down (thousands of cycles)",
		PaperRef: "Figure 8 (table)",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			var pts []Point
			for _, procs := range []int{16, 64, 256} {
				for _, npri := range []int{16, 128} {
					progress(fmt.Sprintf("P=%d N=%d", procs, npri))
					for _, alg := range fastAlgorithms {
						pt, err := queuePoint(alg, procs, npri, cfg, float64(procs))
						if err != nil {
							return nil, err
						}
						pts = append(pts, pt)
					}
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			head := []string{"P", "N"}
			for _, alg := range fastAlgorithms {
				head = append(head, string(alg)+" Ins.", string(alg)+" Del.", string(alg)+" All")
			}
			k := func(v float64) string { return fmt.Sprintf("%.1f", v/1000) }
			var rows [][]string
			for _, procs := range []int{16, 64, 256} {
				for _, npri := range []int{16, 128} {
					row := []string{fmt.Sprintf("%d", procs), fmt.Sprintf("%d", npri)}
					for _, alg := range fastAlgorithms {
						for _, p := range pts {
							if p.Algorithm == string(alg) && p.Procs == procs && p.Pris == npri {
								row = append(row, k(p.Result.MeanInsert), k(p.Result.MeanDelete), k(p.Result.MeanAll))
							}
						}
					}
					rows = append(rows, row)
				}
			}
			writeAligned(w, head, rows)
		},
	}
}

// Fig9 sweeps the number of priorities (2..512) at 64 and 256 processors.
func Fig9() *Experiment {
	return &Experiment{
		ID:       "fig9",
		Title:    "Latency vs number of priorities at 64 and 256 processors",
		PaperRef: "Figure 9",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			var pts []Point
			for _, procs := range []int{64, 256} {
				for _, alg := range fastAlgorithms {
					if procs == 256 && alg == simpq.AlgSimpleTree {
						// The paper omits SimpleTree at 256 processors ("it
						// was off the graph").
						continue
					}
					progress(fmt.Sprintf("%s P=%d", alg, procs))
					for _, npri := range priSweep {
						pt, err := queuePoint(alg, procs, npri, cfg, float64(npri))
						if err != nil {
							return nil, err
						}
						pt.X = float64(npri)
						pts = append(pts, pt)
					}
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			for _, procs := range []int{64, 256} {
				fmt.Fprintf(w, "\n-- %d processors --\n", procs)
				var sub []Point
				for _, p := range pts {
					if p.Procs == procs {
						sub = append(sub, p)
					}
				}
				seriesTable(w, sub, "priorities", func(x float64) string { return fmt.Sprintf("%.0f", x) })
			}
		},
	}
}

// Fig5Left compares combining-funnel fetch-and-add against the bounded
// decrement with elimination across the concurrency range at a balanced
// increment/decrement mix.
func Fig5Left() *Experiment {
	return &Experiment{
		ID:       "fig5l",
		Title:    "Funnel fetch-and-add vs BFaD with elimination, 50/50 mix",
		PaperRef: "Figure 5 (left)",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			ops := scaleOps(60, scale)
			var pts []Point
			for _, bounded := range []bool{false, true} {
				name := "Fetch-and-add"
				if bounded {
					name = "BFaD with elimination"
				}
				progress(name)
				for _, procs := range []int{4, 8, 16, 32, 64, 128, 256} {
					r, err := simpq.CounterWorkload(procs, ops, 0.5, bounded, 50)
					if err != nil {
						return nil, err
					}
					pts = append(pts, Point{Algorithm: name, Procs: procs, X: float64(procs), Result: r})
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			seriesTable(w, pts, "procs", func(x float64) string { return fmt.Sprintf("%.0f", x) })
		},
	}
}

// Fig5Right fixes 256 processors and sweeps the fraction of decrement
// operations from 0% to 100%.
func Fig5Right() *Experiment {
	return &Experiment{
		ID:       "fig5r",
		Title:    "Funnel fetch-and-add vs BFaD at 256 processors, varying decrement share",
		PaperRef: "Figure 5 (right)",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			ops := scaleOps(40, scale)
			var pts []Point
			for _, bounded := range []bool{false, true} {
				name := "Fetch-and-add"
				if bounded {
					name = "BFaD with elimination"
				}
				progress(name)
				for dec := 0; dec <= 100; dec += 20 {
					r, err := simpq.CounterWorkload(256, ops, float64(dec)/100, bounded, 50)
					if err != nil {
						return nil, err
					}
					pts = append(pts, Point{Algorithm: name, Procs: 256, X: float64(dec), Result: r})
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			seriesTable(w, pts, "% dec", func(x float64) string { return fmt.Sprintf("%.0f", x) })
		},
	}
}

// AblateCutoff sweeps FunnelTree's funnel cut-off level (the paper's
// Section 3.2 design choice: funnels in the top 4 levels, locks below,
// at a reported ~5% cost versus funnels everywhere).
func AblateCutoff() *Experiment {
	return &Experiment{
		ID:       "ablate-cutoff",
		Title:    "FunnelTree funnel cut-off level ablation (128 priorities, 256 processors)",
		PaperRef: "Section 3.2",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			const procs, npri = 256, 128
			var pts []Point
			for _, cutoff := range []int{0, 2, 4, 8} {
				progress(fmt.Sprintf("cutoff=%d", cutoff))
				m, err := sim.New(sim.DefaultConfig(procs))
				if err != nil {
					return nil, err
				}
				maxItems := procs*cfg.OpsPerProc + 1
				q := simpq.NewFunnelTreeCutoff(m, npri, maxItems, simpq.DefaultFunnelParams(procs), cutoff)
				r, err := simpq.DriveWorkload(m, q, cfg)
				if err != nil {
					return nil, err
				}
				pts = append(pts, Point{
					Algorithm: fmt.Sprintf("cutoff=%d", cutoff),
					Procs:     procs, Pris: npri, X: float64(cutoff), Result: r,
				})
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			head := []string{"cutoff levels", "latency", "insert", "delete"}
			var rows [][]string
			for _, p := range pts {
				rows = append(rows, []string{
					fmt.Sprintf("%.0f", p.X),
					fmt.Sprintf("%.0f", p.Result.MeanAll),
					fmt.Sprintf("%.0f", p.Result.MeanInsert),
					fmt.Sprintf("%.0f", p.Result.MeanDelete),
				})
			}
			writeAligned(w, head, rows)
		},
	}
}

// AblateAdaption toggles the funnels' local width adaption on the
// FunnelTree queue across the concurrency range.
func AblateAdaption() *Experiment {
	return &Experiment{
		ID:       "ablate-adaption",
		Title:    "Funnel adaption on/off for FunnelTree, 16 priorities",
		PaperRef: "Section 3.1",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			var pts []Point
			for _, adaptive := range []bool{true, false} {
				name := "adaptive"
				if !adaptive {
					name = "fixed-width"
				}
				progress(name)
				for _, procs := range []int{4, 16, 64, 256} {
					m, err := sim.New(sim.DefaultConfig(procs))
					if err != nil {
						return nil, err
					}
					params := simpq.DefaultFunnelParams(procs)
					params.Adaptive = adaptive
					maxItems := procs*cfg.OpsPerProc + 1
					q := simpq.NewFunnelTree(m, 16, maxItems, params)
					r, err := simpq.DriveWorkload(m, q, cfg)
					if err != nil {
						return nil, err
					}
					pts = append(pts, Point{Algorithm: name, Procs: procs, Pris: 16, X: float64(procs), Result: r})
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			seriesTable(w, pts, "procs", func(x float64) string { return fmt.Sprintf("%.0f", x) })
		},
	}
}
