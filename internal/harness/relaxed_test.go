package harness

import (
	"strings"
	"testing"
)

// TestRelaxedFrontier runs a miniature sweep and checks the report's
// structural promises: every (config, procs) cell is measured, the
// exact baseline reports zero rank error, the relaxed points carry a
// rank distribution, and the rendered table names every block.
func TestRelaxedFrontier(t *testing.T) {
	cs := []int{2, 4}
	procs := []int{4, 8}
	rep, err := RunRelaxedFrontier(cs, procs, 16, 0.25, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := len(procs) * (len(cs) + 1)
	if len(rep.Points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(rep.Points), wantPoints)
	}
	for _, p := range rep.Points {
		if p.ThroughputOpsPerKCycle <= 0 {
			t.Errorf("%s c=%d procs=%d: throughput not populated", p.Algorithm, p.C, p.Procs)
		}
		if p.Algorithm == "FunnelTree" {
			if p.RankMean != 0 || p.RankMax != 0 {
				t.Errorf("exact baseline reports rank error: %+v", p)
			}
		} else if p.C < 1 {
			t.Errorf("relaxed point without c: %+v", p)
		}
	}
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"-- 4 processors --", "-- 8 processors --", "MultiQueue c=2", "MultiQueue c=4", "FunnelTree"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered frontier missing %q", want)
		}
	}
}
