package harness

import (
	"strings"
	"testing"
)

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{"fig5l", "fig5r", "fig6", "fig7", "fig8", "fig9", "ablate-cutoff", "ablate-adaption", "fairness", "stragglers", "steadystate", "sensitivity"}
	got := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.PaperRef == "" || e.Run == nil || e.Render == nil {
			t.Errorf("experiment %q incompletely defined", e.ID)
		}
		got[e.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %q missing", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig7"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestWriteAligned(t *testing.T) {
	var sb strings.Builder
	writeAligned(&sb, []string{"a", "bbb"}, [][]string{{"111", "2"}})
	out := sb.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "111") {
		t.Fatalf("unexpected table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header+separator+row, got %d lines", len(lines))
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	WriteCSV(&sb, []Point{{Algorithm: "X", Procs: 4, Pris: 8, X: 4}})
	out := sb.String()
	if !strings.HasPrefix(out, "algorithm,procs") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "X,4,8,4") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestTinyExperimentRunsAndRenders(t *testing.T) {
	// Run the cutoff ablation at minimal scale end-to-end; it exercises
	// RunWorkload, DriveWorkload, and the render path.
	if testing.Short() {
		t.Skip("runs a 256-processor simulation")
	}
	e, err := ByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	// Shrink further: monkey-level scale.
	pts, err := e.Run(0.01, func(string) {})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	var sb strings.Builder
	e.Render(&sb, pts)
	if !strings.Contains(sb.String(), "SimpleLinear") {
		t.Fatalf("render missing series:\n%s", sb.String())
	}
	for _, p := range pts {
		if p.Result.MeanAll <= 0 {
			t.Errorf("point %s/P=%d has non-positive latency", p.Algorithm, p.Procs)
		}
	}
}

func TestSeriesTable(t *testing.T) {
	var sb strings.Builder
	pts := []Point{
		{Algorithm: "A", X: 1},
		{Algorithm: "A", X: 2},
		{Algorithm: "B", X: 1},
	}
	pts[0].Result.MeanAll = 10
	pts[1].Result.MeanAll = 20
	pts[2].Result.MeanAll = 30
	seriesTable(&sb, pts, "x", func(x float64) string { return "v" })
	out := sb.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "B") {
		t.Fatalf("missing columns:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("missing gap marker for B at x=2:\n%s", out)
	}
}
