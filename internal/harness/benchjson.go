package harness

import (
	"encoding/json"
	"fmt"

	"pq/internal/simpq"
	"pq/internal/stats"
)

// BenchSchema identifies the machine-readable benchmark format emitted
// by `pqbench -json`, `pqnative -json` and `pqload -json`. Bump the
// version on any incompatible change so downstream tooling can fail
// loudly instead of misreading fields.
const BenchSchema = "pq-bench/v1"

// Suite kinds: where a document's measurements come from. They share
// the schema so service and native runs join the same perf trajectory
// as the simulator's, but the validator holds each kind to the
// invariants it can actually promise.
const (
	// SuiteSim is the deterministic simulator suite (`pqbench -json`,
	// the default when the field is absent).
	SuiteSim = "sim"
	// SuiteNative is the wall-clock host suite (`pqnative -json`).
	SuiteNative = "native"
	// SuiteService is the pqd loopback/service suite (`pqload -json`).
	SuiteService = "service"
)

// BenchFile is the top-level document: one standard-workload run per
// algorithm under a single machine configuration.
type BenchFile struct {
	Schema    string `json:"schema"`
	Suite     string `json:"suite,omitempty"`     // SuiteSim when empty
	Generated string `json:"generated,omitempty"` // RFC 3339, caller-stamped
	// Algorithms, when non-empty, names the algorithms this document was
	// restricted to (`pqbench -alg`); the validator then requires exactly
	// these instead of the full default set.
	Algorithms []string   `json:"algorithms,omitempty"`
	Procs      int        `json:"procs"`
	Priorities int        `json:"priorities"`
	Scale      float64    `json:"scale"`
	Runs       []BenchRun `json:"runs"`
}

// BenchRun is one algorithm's measurement.
type BenchRun struct {
	Algorithm string `json:"algorithm"`
	// Procs overrides the file-level Procs for this run (native suites
	// sweep goroutine counts within one document); 0 means the
	// file-level value applies.
	Procs int `json:"procs,omitempty"`
	// Batch is the operations per queue access for this run; 0 and 1
	// both mean plain single operations. Latency samples and op totals
	// count individual elements regardless of batching, so runs at
	// different batch sizes are directly comparable.
	Batch         int `json:"batch,omitempty"`
	Inserts       int `json:"inserts"`
	Deletes       int `json:"deletes"`
	FailedDeletes int `json:"failed_deletes"`
	// ThroughputOpsPerKCycle is completed operations per thousand
	// simulated cycles across the whole machine (sim suite).
	ThroughputOpsPerKCycle float64 `json:"throughput_ops_per_kcycle,omitempty"`
	// ThroughputOpsPerSec is completed operations per wall-clock
	// second (native and service suites).
	ThroughputOpsPerSec float64            `json:"throughput_ops_per_sec,omitempty"`
	Insert              BenchLatency       `json:"insert"`
	Delete              BenchLatency       `json:"delete"`
	Internals           map[string]float64 `json:"internals,omitempty"`
	Sim                 BenchSim           `json:"sim"`
}

// BenchLatency summarizes one operation kind's latency distribution, in
// cycles.
type BenchLatency struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// BenchSim carries the simulator's run totals.
type BenchSim struct {
	FinalTime   int64 `json:"final_time"`
	Events      int64 `json:"events"`
	MemOps      int64 `json:"mem_ops"`
	StallCycles int64 `json:"stall_cycles"`
	WordsUsed   int   `json:"words_used"`
}

// LatencyFromSummary converts a stats.Summary into the schema's
// latency record; pqnative and pqload use it so every suite kind
// reports identical quantile fields.
func LatencyFromSummary(s stats.Summary) BenchLatency {
	return BenchLatency{
		Count: s.Count, Mean: s.Mean,
		P50: s.P50, P90: s.P90, P95: s.P95, P99: s.P99, Max: s.Max,
	}
}

// RunBenchSuite drives the paper's standard workload for every
// algorithm at the given machine size and returns the suite document
// plus the raw per-algorithm results (for histogram rendering). The
// Generated stamp is left empty for the caller (keeps this function
// deterministic for tests).
func RunBenchSuite(procs, pris int, scale float64, progress func(string)) (*BenchFile, []simpq.Result, error) {
	return RunBenchSuiteBatch(procs, pris, scale, 0, progress)
}

// RunBenchSuiteBatch is RunBenchSuite plus a batched companion run: when
// batch > 1 every algorithm is measured twice — once with single
// operations and once with batch-sized accesses — in one document, so
// the two can be compared point-for-point.
func RunBenchSuiteBatch(procs, pris int, scale float64, batch int, progress func(string)) (*BenchFile, []simpq.Result, error) {
	return RunBenchSuiteAlgs(nil, procs, pris, scale, batch, progress)
}

// RunBenchSuiteAlgs is RunBenchSuiteBatch restricted to an explicit
// algorithm subset (`pqbench -alg`). The subset — which may include
// relaxed algorithms the default suite never touches — is recorded in
// the document's Algorithms field so the validator checks exactly what
// was requested. A nil algs runs the default strict suite.
func RunBenchSuiteAlgs(algs []simpq.Algorithm, procs, pris int, scale float64, batch int, progress func(string)) (*BenchFile, []simpq.Result, error) {
	cfg := simpq.DefaultWorkload()
	cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
	cfg.KeepLatencies = true
	bf := &BenchFile{
		Schema:     BenchSchema,
		Procs:      procs,
		Priorities: pris,
		Scale:      scale,
	}
	if algs == nil {
		algs = simpq.Algorithms
	} else {
		for _, alg := range algs {
			bf.Algorithms = append(bf.Algorithms, string(alg))
		}
	}
	batches := []int{0}
	if batch > 1 {
		batches = append(batches, batch)
	}
	results := make([]simpq.Result, 0, len(algs)*len(batches))
	for _, b := range batches {
		runCfg := cfg
		runCfg.Batch = b
		for _, alg := range algs {
			if progress != nil {
				progress(fmt.Sprintf("bench %s procs=%d batch=%d", alg, procs, b))
			}
			r, err := simpq.RunWorkload(alg, procs, pris, runCfg)
			if err != nil {
				return nil, nil, fmt.Errorf("bench %s: %w", alg, err)
			}
			results = append(results, r)
			run := BenchRun{
				Algorithm:     string(alg),
				Batch:         b,
				Inserts:       r.Inserts,
				Deletes:       r.Deletes,
				FailedDeletes: r.FailedDeletes,
				Insert:        LatencyFromSummary(r.InsertSummary),
				Delete:        LatencyFromSummary(r.DeleteSummary),
				Internals:     r.Internals,
				Sim: BenchSim{
					FinalTime:   r.Stats.FinalTime,
					Events:      r.Stats.Events,
					MemOps:      r.Stats.MemOps,
					StallCycles: r.Stats.StallCycles,
					WordsUsed:   r.Stats.WordsUsed,
				},
			}
			if r.Stats.FinalTime > 0 {
				run.ThroughputOpsPerKCycle =
					float64(r.Inserts+r.Deletes) / float64(r.Stats.FinalTime) * 1000
			}
			bf.Runs = append(bf.Runs, run)
		}
	}
	return bf, results, nil
}

// Validate checks the document for structural problems: wrong schema
// or suite, missing algorithms, or runs with impossible totals. Each
// suite kind is held to the invariants it can promise: sim runs carry
// simulator totals and cover every algorithm; native and service runs
// carry wall-clock throughput instead.
func (bf *BenchFile) Validate() error {
	if bf.Schema != BenchSchema {
		return fmt.Errorf("schema = %q, want %q", bf.Schema, BenchSchema)
	}
	suite := bf.Suite
	if suite == "" {
		suite = SuiteSim
	}
	switch suite {
	case SuiteSim, SuiteNative, SuiteService:
	default:
		return fmt.Errorf("unknown suite %q", bf.Suite)
	}
	if bf.Procs < 1 || bf.Priorities < 1 {
		return fmt.Errorf("bad machine shape: procs=%d priorities=%d", bf.Procs, bf.Priorities)
	}
	seen := map[string]bool{}
	for i := range bf.Runs {
		r := &bf.Runs[i]
		key := fmt.Sprintf("%s/%d/%d", r.Algorithm, r.Procs, r.Batch)
		if seen[key] {
			return fmt.Errorf("duplicate run for %q at procs=%d batch=%d", r.Algorithm, r.Procs, r.Batch)
		}
		seen[key] = true
		if r.Inserts+r.Deletes+r.FailedDeletes <= 0 {
			return fmt.Errorf("%s: no operations recorded", r.Algorithm)
		}
		if suite != SuiteSim {
			if r.Insert.Count != r.Inserts || r.Delete.Count != r.Deletes+r.FailedDeletes {
				return fmt.Errorf("%s: latency counts (%d,%d) disagree with op counts (%d,%d+%d)",
					r.Algorithm, r.Insert.Count, r.Delete.Count, r.Inserts, r.Deletes, r.FailedDeletes)
			}
			if r.ThroughputOpsPerSec <= 0 {
				return fmt.Errorf("%s: wall-clock throughput not populated", r.Algorithm)
			}
			continue
		}
		if r.Insert.Count != r.Inserts || r.Delete.Count != r.Deletes {
			return fmt.Errorf("%s: latency counts (%d,%d) disagree with op counts (%d,%d)",
				r.Algorithm, r.Insert.Count, r.Delete.Count, r.Inserts, r.Deletes)
		}
		if r.Sim.FinalTime <= 0 || r.Sim.Events <= 0 || r.Sim.MemOps <= 0 {
			return fmt.Errorf("%s: sim totals not populated", r.Algorithm)
		}
		if r.ThroughputOpsPerKCycle <= 0 {
			return fmt.Errorf("%s: throughput not populated", r.Algorithm)
		}
		if len(r.Internals) == 0 {
			return fmt.Errorf("%s: no internals metrics", r.Algorithm)
		}
		// A relaxed sim run without its rank-error distribution is not a
		// usable measurement: the error side of the trade-off is missing.
		if simpq.IsRelaxed(simpq.Algorithm(r.Algorithm)) {
			for _, k := range []string{"multiqueue.rank_pops", "multiqueue.rank_mean", "multiqueue.rank_p99"} {
				if _, ok := r.Internals[k]; !ok {
					return fmt.Errorf("%s: relaxed run missing rank internals %q", r.Algorithm, k)
				}
			}
		}
	}
	if suite == SuiteSim {
		want := simpq.Algorithms
		if len(bf.Algorithms) > 0 {
			want = nil
			for _, name := range bf.Algorithms {
				alg, ok := simpq.ParseAlgorithm(name)
				if !ok {
					return fmt.Errorf("algorithms lists unknown %q", name)
				}
				want = append(want, alg)
			}
		}
		for _, alg := range want {
			if !seen[string(alg)+"/0/0"] {
				return fmt.Errorf("missing run for %q", alg)
			}
		}
	}
	return nil
}

// ValidateBenchJSON parses and validates raw `pqbench -json` output —
// the schema check CI runs against the smoke artifact.
func ValidateBenchJSON(data []byte) (*BenchFile, error) {
	var bf BenchFile
	if err := json.Unmarshal(data, &bf); err != nil {
		return nil, fmt.Errorf("bench json: %w", err)
	}
	if err := bf.Validate(); err != nil {
		return nil, fmt.Errorf("bench json: %w", err)
	}
	return &bf, nil
}
