package harness

import (
	"fmt"
	"io"

	"pq/internal/sim"
	"pq/internal/simpq"
)

// The relaxed-frontier experiment measures the trade the MultiQueue
// makes explicit: how much throughput does giving up exact delete-min
// order buy, and how much order is actually lost? Each point runs the
// paper's standard workload and reports throughput next to the measured
// rank-error distribution (rank = number of strictly-better items
// present when an item was popped). FunnelTree — the paper's best exact
// scalable queue — anchors the zero-rank-error end of the frontier.

// FrontierPoint is one (configuration, processor count) measurement.
type FrontierPoint struct {
	// Algorithm is "FunnelTree" for the exact baseline or "MultiQueue"
	// for relaxed points; C is the queues-per-processor multiplier (0
	// for the baseline).
	Algorithm string
	C         int
	Procs     int
	// ThroughputOpsPerKCycle is completed operations per thousand
	// simulated cycles across the whole machine.
	ThroughputOpsPerKCycle float64
	// MeanAll is the mean access latency in cycles.
	MeanAll float64
	// RankMean, RankP50, RankP99 and RankMax describe the rank-error
	// distribution over delivered items (all zero for the baseline:
	// an exact queue never pops over a better item).
	RankMean, RankP50, RankP99 float64
	RankMax                    float64
	// FailedDeletes counts delete-min calls that found the queue empty.
	FailedDeletes int
}

// FrontierReport is the full sweep.
type FrontierReport struct {
	Pris   int
	Cs     []int
	Procs  []int
	Points []FrontierPoint
}

// DefaultFrontierCs returns the queues-per-processor multipliers the
// acceptance sweep measures. Williams & Sanders study c in this range:
// c=2 is their recommended default, larger c trades rank error down for
// extra indirection.
func DefaultFrontierCs() []int { return []int{1, 2, 4} }

// DefaultFrontierProcs returns the processor counts of the sweep — the
// small/medium/large shape of the paper's figures.
func DefaultFrontierProcs() []int { return []int{8, 32, 128} }

// RunRelaxedFrontier sweeps MultiQueue configurations (one per c in cs)
// and the FunnelTree baseline over the given processor counts, at the
// standard workload scaled by scale.
func RunRelaxedFrontier(cs, procsList []int, pris int, scale float64, progress func(string)) (*FrontierReport, error) {
	if len(cs) == 0 {
		cs = DefaultFrontierCs()
	}
	if len(procsList) == 0 {
		procsList = DefaultFrontierProcs()
	}
	cfg := simpq.DefaultWorkload()
	cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
	rep := &FrontierReport{Pris: pris, Cs: cs, Procs: procsList}
	for _, procs := range procsList {
		progress(fmt.Sprintf("frontier FunnelTree procs=%d", procs))
		r, err := simpq.RunWorkload(simpq.AlgFunnelTree, procs, pris, cfg)
		if err != nil {
			return nil, fmt.Errorf("frontier FunnelTree procs=%d: %w", procs, err)
		}
		rep.Points = append(rep.Points, frontierPoint(string(simpq.AlgFunnelTree), 0, procs, r))
		for _, c := range cs {
			progress(fmt.Sprintf("frontier MultiQueue c=%d procs=%d", c, procs))
			r, err := runFrontierMultiQueue(c, procs, pris, cfg)
			if err != nil {
				return nil, fmt.Errorf("frontier MultiQueue c=%d procs=%d: %w", c, procs, err)
			}
			rep.Points = append(rep.Points, frontierPoint(string(simpq.AlgMultiQueue), c, procs, r))
		}
	}
	return rep, nil
}

// runFrontierMultiQueue drives the standard workload against a
// MultiQueue built with an explicit c — the one knob the frontier
// sweeps, which the default Build path pins to 2.
func runFrontierMultiQueue(c, procs, pris int, cfg simpq.WorkloadConfig) (simpq.Result, error) {
	m, err := sim.New(sim.DefaultConfig(procs))
	if err != nil {
		return simpq.Result{}, err
	}
	maxItems := procs*cfg.OpsPerProc + cfg.Prefill + 1
	q := simpq.NewMultiQueue(m, pris, maxItems, simpq.MQParams{C: c})
	return simpq.DriveWorkload(m, q, cfg)
}

func frontierPoint(alg string, c, procs int, r simpq.Result) FrontierPoint {
	p := FrontierPoint{
		Algorithm:     alg,
		C:             c,
		Procs:         procs,
		MeanAll:       r.MeanAll,
		FailedDeletes: r.FailedDeletes,
	}
	if r.Stats.FinalTime > 0 {
		p.ThroughputOpsPerKCycle =
			float64(r.Inserts+r.Deletes) / float64(r.Stats.FinalTime) * 1000
	}
	if in := r.Internals; in != nil {
		p.RankMean = in["multiqueue.rank_mean"]
		p.RankP50 = in["multiqueue.rank_p50"]
		p.RankP99 = in["multiqueue.rank_p99"]
		p.RankMax = in["multiqueue.rank_max"]
	}
	return p
}

// Render writes the frontier, one block per processor count: throughput
// and latency next to the rank-error distribution, baseline first.
func (rep *FrontierReport) Render(w io.Writer) {
	fmt.Fprintf(w, "throughput vs rank error: standard workload, %d priorities\n", rep.Pris)
	fmt.Fprintf(w, "rank = better items present at pop time; FunnelTree is the exact baseline\n\n")
	byProcs := map[int][]FrontierPoint{}
	for _, p := range rep.Points {
		byProcs[p.Procs] = append(byProcs[p.Procs], p)
	}
	for _, procs := range rep.Procs {
		fmt.Fprintf(w, "-- %d processors --\n", procs)
		head := []string{"config", "ops/kcycle", "mean latency", "rank mean", "rank p50", "rank p99", "rank max", "failed deletes"}
		var rows [][]string
		for _, p := range byProcs[procs] {
			name := p.Algorithm
			if p.C > 0 {
				name = fmt.Sprintf("%s c=%d", p.Algorithm, p.C)
			}
			rows = append(rows, []string{
				name,
				fmt.Sprintf("%.2f", p.ThroughputOpsPerKCycle),
				fmt.Sprintf("%.0f", p.MeanAll),
				fmt.Sprintf("%.2f", p.RankMean),
				fmt.Sprintf("%.0f", p.RankP50),
				fmt.Sprintf("%.0f", p.RankP99),
				fmt.Sprintf("%.0f", p.RankMax),
				fmt.Sprintf("%d", p.FailedDeletes),
			})
		}
		writeAligned(w, head, rows)
		fmt.Fprintln(w)
	}
}
