package harness

import (
	"fmt"
	"io"

	"pq/internal/sim"
	"pq/internal/simpq"
)

// Fairness quantifies the paper's Section 3.2 trade-off: LIFO funnel
// stacks are simple and eliminate well but "can cause unfairness (and
// even starvation) among items of equal priority"; the suggested hybrid
// keeps elimination in the funnel and stores items FIFO. This experiment
// runs FunnelTree with both bin disciplines and reports item sojourn
// times (delete cycle minus insert cycle) alongside access latency.
func Fairness() *Experiment {
	return &Experiment{
		ID:       "fairness",
		Title:    "Item sojourn under LIFO vs hybrid-FIFO funnel bins (FunnelTree, 16 priorities)",
		PaperRef: "Section 3.2",
		Run: func(scale float64, progress func(string)) ([]Point, error) {
			cfg := simpq.DefaultWorkload()
			cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, scale)
			var pts []Point
			for _, fifo := range []bool{false, true} {
				name := "LIFO bins"
				if fifo {
					name = "hybrid FIFO bins"
				}
				progress(name)
				for _, procs := range []int{16, 64, 256} {
					m, err := sim.New(sim.DefaultConfig(procs))
					if err != nil {
						return nil, err
					}
					maxItems := procs*cfg.OpsPerProc + 1
					q := simpq.NewFunnelTreeDiscipline(m, 16, maxItems,
						simpq.DefaultFunnelParams(procs), simpq.DefaultFunnelCutoff, fifo)
					r, err := simpq.SojournWorkload(m, q, cfg)
					if err != nil {
						return nil, err
					}
					res := r.Latency
					// Smuggle the sojourn stats through the generic Point:
					// mean in MeanInsert, p99 in MeanDelete (labeled by the
					// renderer below).
					res.MeanInsert = r.Sojourn.Mean
					res.MeanDelete = r.Sojourn.P99
					pts = append(pts, Point{
						Algorithm: name, Procs: procs, Pris: 16,
						X: float64(procs), Result: res,
					})
				}
			}
			return pts, nil
		},
		Render: func(w io.Writer, pts []Point) {
			head := []string{"procs", "bins", "access latency", "mean sojourn", "p99 sojourn"}
			var rows [][]string
			for _, p := range pts {
				rows = append(rows, []string{
					fmt.Sprintf("%d", p.Procs),
					p.Algorithm,
					fmt.Sprintf("%.0f", p.Result.MeanAll),
					fmt.Sprintf("%.0f", p.Result.MeanInsert),
					fmt.Sprintf("%.0f", p.Result.MeanDelete),
				})
			}
			writeAligned(w, head, rows)
			fmt.Fprintln(w, "\nsojourn = cycles an item waited between insert and delivery;")
			fmt.Fprintln(w, "LIFO bins favour fresh items, stretching the tail for old ones.")
		},
	}
}
