package harness

import (
	"testing"

	"pq/internal/simpq"
)

// TestPaperShapesHold pins the paper's headline qualitative results so
// that calibration or algorithm regressions fail loudly. Scale 0.25 keeps
// the test in seconds; the asserted margins are loose enough to tolerate
// workload-scale noise but tight enough to catch a broken mechanism.
func TestPaperShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 256-processor simulations")
	}
	run := func(alg simpq.Algorithm, procs, npri int) float64 {
		t.Helper()
		cfg := simpq.DefaultWorkload()
		cfg.OpsPerProc = scaleOps(cfg.OpsPerProc, 0.25)
		r, err := simpq.RunWorkload(alg, procs, npri, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r.MeanAll
	}

	t.Run("low concurrency favours SimpleLinear", func(t *testing.T) {
		sl := run(simpq.AlgSimpleLinear, 4, 16)
		for _, alg := range []simpq.Algorithm{
			simpq.AlgSingleLock, simpq.AlgHuntEtAl, simpq.AlgSkipList,
			simpq.AlgSimpleTree, simpq.AlgLinearFunnels, simpq.AlgFunnelTree,
		} {
			if got := run(alg, 4, 16); got <= sl {
				t.Errorf("%s (%.0f) not slower than SimpleLinear (%.0f) at 4 procs", alg, got, sl)
			}
		}
	})

	t.Run("SimpleTree root serializes at scale", func(t *testing.T) {
		st64, st256 := run(simpq.AlgSimpleTree, 64, 16), run(simpq.AlgSimpleTree, 256, 16)
		if st256 < 3*st64 {
			t.Errorf("SimpleTree 64->256 grew only %.0f->%.0f; expected ~linear degradation", st64, st256)
		}
	})

	t.Run("FunnelTree wins at 256 processors", func(t *testing.T) {
		ft := run(simpq.AlgFunnelTree, 256, 16)
		st := run(simpq.AlgSimpleTree, 256, 16)
		sl := run(simpq.AlgSimpleLinear, 256, 16)
		if st < 4*ft {
			t.Errorf("FunnelTree (%.0f) should beat SimpleTree (%.0f) by >4x at 256", ft, st)
		}
		if sl < ft {
			t.Errorf("FunnelTree (%.0f) should beat SimpleLinear (%.0f) at 256", ft, sl)
		}
	})

	t.Run("FunnelTree scales sublinearly", func(t *testing.T) {
		ft16, ft256 := run(simpq.AlgFunnelTree, 16, 16), run(simpq.AlgFunnelTree, 256, 16)
		// 16x more processors should cost far less than 16x latency.
		if ft256 > 5*ft16 {
			t.Errorf("FunnelTree 16->256 grew %.0f->%.0f; expected a flat-ish curve", ft16, ft256)
		}
	})

	t.Run("elimination beats fetch-and-add at balanced mix", func(t *testing.T) {
		faa, err := simpq.CounterWorkload(256, 15, 0.5, false, 50)
		if err != nil {
			t.Fatal(err)
		}
		bfad, err := simpq.CounterWorkload(256, 15, 0.5, true, 50)
		if err != nil {
			t.Fatal(err)
		}
		if bfad.MeanAll >= faa.MeanAll {
			t.Errorf("BFaD+elim (%.0f) not faster than FaA (%.0f) at 50/50, 256 procs",
				bfad.MeanAll, faa.MeanAll)
		}
	})
}
