package harness

import (
	"encoding/json"
	"os"
	"testing"

	"pq/internal/simpq"
)

// TestBenchSuiteRoundTrip generates a small suite, serializes it, and
// checks the result validates and covers every algorithm.
func TestBenchSuiteRoundTrip(t *testing.T) {
	bf, results, err := RunBenchSuite(8, 8, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.Validate(); err != nil {
		t.Fatalf("generated suite does not validate: %v", err)
	}
	if len(bf.Runs) != len(simpq.Algorithms) {
		t.Fatalf("runs = %d, want %d", len(bf.Runs), len(simpq.Algorithms))
	}
	if len(results) != len(bf.Runs) {
		t.Fatalf("raw results = %d, want %d", len(results), len(bf.Runs))
	}
	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBenchJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Runs[0].Algorithm != bf.Runs[0].Algorithm {
		t.Fatalf("round trip scrambled runs")
	}
}

// TestBenchSuiteDeterministic asserts two suite runs produce identical
// documents (same default seeds throughout).
func TestBenchSuiteDeterministic(t *testing.T) {
	a, _, err := RunBenchSuite(8, 8, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunBenchSuite(8, 8, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same-configuration suites differ")
	}
}

// TestValidateCatchesProblems exercises the validator's error paths.
func TestValidateCatchesProblems(t *testing.T) {
	if _, err := ValidateBenchJSON([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ValidateBenchJSON([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	bf, _, err := RunBenchSuite(4, 4, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bf.Runs = bf.Runs[:len(bf.Runs)-1]
	if err := bf.Validate(); err == nil {
		t.Error("missing algorithm accepted")
	}
}

// TestValidateSuiteKinds exercises the native/service validation
// rules: per-run procs allow repeated algorithms, wall-clock
// throughput is required, and sim-only checks are skipped.
func TestValidateSuiteKinds(t *testing.T) {
	run := func(procs int) BenchRun {
		return BenchRun{
			Algorithm:           "FunnelTree",
			Procs:               procs,
			Inserts:             10,
			Deletes:             8,
			FailedDeletes:       2,
			ThroughputOpsPerSec: 123,
			Insert:              BenchLatency{Count: 10},
			Delete:              BenchLatency{Count: 10},
		}
	}
	bf := &BenchFile{
		Schema: BenchSchema, Suite: SuiteNative,
		Procs: 8, Priorities: 16, Scale: 1,
		Runs: []BenchRun{run(1), run(2)},
	}
	if err := bf.Validate(); err != nil {
		t.Fatalf("native suite rejected: %v", err)
	}

	dup := *bf
	dup.Runs = []BenchRun{run(1), run(1)}
	if err := dup.Validate(); err == nil {
		t.Error("duplicate algorithm+procs accepted")
	}

	noThr := *bf
	r := run(4)
	r.ThroughputOpsPerSec = 0
	noThr.Runs = []BenchRun{r}
	if err := noThr.Validate(); err == nil {
		t.Error("native run without wall-clock throughput accepted")
	}

	mismatch := *bf
	r = run(4)
	r.Insert.Count = 99
	mismatch.Runs = []BenchRun{r}
	if err := mismatch.Validate(); err == nil {
		t.Error("latency/op count mismatch accepted")
	}

	svc := *bf
	svc.Suite = SuiteService
	svc.Runs = []BenchRun{run(8)}
	if err := svc.Validate(); err != nil {
		t.Fatalf("service suite rejected: %v", err)
	}

	bogus := *bf
	bogus.Suite = "quantum"
	if err := bogus.Validate(); err == nil {
		t.Error("unknown suite accepted")
	}
}

// TestBenchJSONFile validates an externally produced file named by the
// BENCH_JSON environment variable — the CI smoke step runs pqbench and
// then this test against its output.
func TestBenchJSONFile(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := ValidateBenchJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("validated %s: %d runs at %d procs", path, len(bf.Runs), bf.Procs)
}
