package harness

import (
	"encoding/json"
	"os"
	"testing"

	"pq/internal/simpq"
)

// TestBenchSuiteRoundTrip generates a small suite, serializes it, and
// checks the result validates and covers every algorithm.
func TestBenchSuiteRoundTrip(t *testing.T) {
	bf, results, err := RunBenchSuite(8, 8, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bf.Validate(); err != nil {
		t.Fatalf("generated suite does not validate: %v", err)
	}
	if len(bf.Runs) != len(simpq.Algorithms) {
		t.Fatalf("runs = %d, want %d", len(bf.Runs), len(simpq.Algorithms))
	}
	if len(results) != len(bf.Runs) {
		t.Fatalf("raw results = %d, want %d", len(results), len(bf.Runs))
	}
	data, err := json.Marshal(bf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ValidateBenchJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Runs[0].Algorithm != bf.Runs[0].Algorithm {
		t.Fatalf("round trip scrambled runs")
	}
}

// TestBenchSuiteDeterministic asserts two suite runs produce identical
// documents (same default seeds throughout).
func TestBenchSuiteDeterministic(t *testing.T) {
	a, _, err := RunBenchSuite(8, 8, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunBenchSuite(8, 8, 0.25, nil)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatal("same-configuration suites differ")
	}
}

// TestValidateCatchesProblems exercises the validator's error paths.
func TestValidateCatchesProblems(t *testing.T) {
	if _, err := ValidateBenchJSON([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ValidateBenchJSON([]byte(`{"schema":"other/v9"}`)); err == nil {
		t.Error("wrong schema accepted")
	}
	bf, _, err := RunBenchSuite(4, 4, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	bf.Runs = bf.Runs[:len(bf.Runs)-1]
	if err := bf.Validate(); err == nil {
		t.Error("missing algorithm accepted")
	}
}

// TestBenchJSONFile validates an externally produced file named by the
// BENCH_JSON environment variable — the CI smoke step runs pqbench and
// then this test against its output.
func TestBenchJSONFile(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := ValidateBenchJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("validated %s: %d runs at %d procs", path, len(bf.Runs), bf.Procs)
}
