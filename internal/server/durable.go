package server

import (
	"encoding/binary"
	"fmt"
	"time"

	"pq"
	"pq/internal/wal"
	"pq/internal/wire"
)

// Durable serving: when a queue has a WAL attached, every mutation is
// made a logical log record *before* it is acknowledged (append-before-
// ack), and pops log the durable ids of the exact items that left the
// queue — not "a delete happened" — so replay is independent of the
// quiescently consistent order in which overlapping operations really
// hit the shards.
//
// Tagged-value layout: in-memory queues store pri(4)+value; durable
// queues store pri(4)+id(8)+value. The priority prefix stays first so
// the shared putBack/shardFor helpers work on either layout.
//
// Append failures: a write or fsync error poisons the log (wal.
// ErrPoisoned) — the failed record's bytes may still reach disk via
// the page cache, so its in-memory rollback below cannot be trusted to
// match post-crash replay. The log therefore refuses every subsequent
// append, which makes each durable path here fail from then on: the
// queue stops serving mutations and the divergence window collapses to
// the NACKed (outcome-indeterminate) operations themselves. Rolled-back
// items are never delivered afterwards, so no client observes state
// that replay could contradict.

// durTagLen is the tag prefix of a durable queue's stored values.
const durTagLen = 12

// attachWAL wires a recovered log into a freshly built queue: the
// recovered live-item multiset is bulk-loaded into the shards (taking
// admission slots, since those items occupy capacity) and subsequent
// operations go through the durable paths. Must be called before the
// queue serves traffic.
func (q *servedQueue) attachWAL(l *wal.Log, rec wal.Recovery, snapEvery int) error {
	byShard := make(map[int][]pq.Item[[]byte])
	for _, it := range rec.Items {
		pri := int(it.Pri)
		if pri < 0 || pri >= q.spec.Priorities {
			return fmt.Errorf("server: queue %q: recovered item id=%d priority %d outside [0,%d) — was the queue reconfigured?",
				q.spec.Name, it.ID, pri, q.spec.Priorities)
		}
		s := q.shardFor(pri)
		byShard[s] = append(byShard[s], pq.Item[[]byte]{Pri: pri - q.bases[s], Val: durTag(it.ID, it.Pri, it.Value)})
	}
	q.wal = l
	q.tagLen = durTagLen
	q.snapEvery = snapEvery
	for s, batch := range byShard {
		pq.InsertBatch(q.shards[s], batch)
		q.occAdd(s, len(batch))
	}
	if n := int64(len(rec.Items)); n > 0 {
		q.inserts.Add(n)
		if q.admit != nil {
			// Recovered items occupy admission capacity. AddN clamps at
			// Capacity, so when a restart recovers more items than a
			// (since lowered) configured bound, the surplus is tracked as
			// overflow debt: pops burn the debt before freeing counter
			// slots, keeping admission closed until real occupancy drops
			// below Capacity (see popCommit/popCommitN).
			q.admit.AddN(n)
			if over := n - q.spec.Capacity; over > 0 {
				q.admitOverflow.Store(over)
			}
		}
	}
	return nil
}

// durTag builds the stored value for one durable item. The envelope is
// a pooled buffer (recycled when the item is delivered); value may
// alias a request payload, so the copy here is load-bearing.
func durTag(id uint64, pri uint32, value []byte) []byte {
	tagged := wire.GetBuf(durTagLen + len(value))
	tagged = binary.BigEndian.AppendUint32(tagged, pri)
	tagged = binary.BigEndian.AppendUint64(tagged, id)
	return append(tagged, value...)
}

func durID(tagged []byte) uint64 { return binary.BigEndian.Uint64(tagged[4:12]) }

// insertDurable is the WAL insert path: reserve admission, log, then
// store. The read-lock spans log append and shard insert so a snapshot
// (which takes the write lock) never observes a logged-but-unstored or
// stored-but-unlogged item.
func (q *servedQueue) insertDurable(it wire.Item) (insertStatus, error) {
	pri := int(it.Pri)
	if pri < 0 || pri >= q.spec.Priorities {
		return insBad, nil
	}
	if q.draining.Load() {
		q.retryAfter.Add(1)
		return insShed, nil
	}
	if q.admit != nil {
		if prev := q.admit.BFaI(); prev >= q.spec.Capacity {
			q.retryAfter.Add(1)
			return insShed, nil
		}
	}
	q.durMu.RLock()
	defer q.durMu.RUnlock()
	id := q.wal.AllocIDs(1)
	if err := q.wal.AppendInsert([]wal.Item{{ID: id, Pri: it.Pri, Value: it.Value}}); err != nil {
		if q.admit != nil {
			q.admit.FaD() // release the reserved slot
		}
		return insErr, err
	}
	s := q.shardFor(pri)
	q.shards[s].Insert(pri-q.bases[s], durTag(id, it.Pri, it.Value))
	q.inserts.Add(1)
	q.noteShardIns(s, 1)
	q.occAdd(s, 1)
	q.maybeSnapshot()
	return insOK, nil
}

// insertBatchDurable logs the whole admitted prefix as one record, then
// fans out to the shards' native batch inserts.
func (q *servedQueue) insertBatchDurable(items []wire.Item) (int, error) {
	if len(items) == 0 {
		return 0, nil
	}
	if q.draining.Load() {
		q.retryAfter.Add(int64(len(items)))
		return 0, nil
	}
	accepted := len(items)
	if q.admit != nil {
		prev := q.admit.AddN(int64(len(items)))
		granted := q.spec.Capacity - prev
		if granted < 0 {
			granted = 0
		}
		if granted > int64(len(items)) {
			granted = int64(len(items))
		}
		accepted = int(granted)
		if rej := len(items) - accepted; rej > 0 {
			q.retryAfter.Add(int64(rej))
		}
		if accepted == 0 {
			return 0, nil
		}
	}
	q.durMu.RLock()
	defer q.durMu.RUnlock()
	first := q.wal.AllocIDs(accepted)
	recs := make([]wal.Item, accepted)
	for i, it := range items[:accepted] {
		recs[i] = wal.Item{ID: first + uint64(i), Pri: it.Pri, Value: it.Value}
	}
	if err := q.wal.AppendInsert(recs); err != nil {
		if q.admit != nil {
			q.admit.SubN(int64(accepted))
		}
		return 0, err
	}
	byShard := make(map[int][]pq.Item[[]byte])
	for _, r := range recs {
		pri := int(r.Pri)
		s := q.shardFor(pri)
		byShard[s] = append(byShard[s], pq.Item[[]byte]{Pri: pri - q.bases[s], Val: durTag(r.ID, r.Pri, r.Value)})
	}
	for s, batch := range byShard {
		pq.InsertBatch(q.shards[s], batch)
		q.noteShardIns(s, len(batch))
		q.occAdd(s, len(batch))
	}
	q.inserts.Add(int64(accepted))
	q.maybeSnapshot()
	return accepted, nil
}

// deleteMinEnvDurable pops, logs the departure, then acknowledges. A
// log failure puts the item back: nothing leaves the queue unrecorded,
// and since the failure poisoned the log, the put-back item can never
// be delivered later (every subsequent pop fails to log its departure).
// Envelope ownership transfers to the caller (see deleteMinEnv).
func (q *servedQueue) deleteMinEnvDurable() ([]byte, bool, error) {
	q.durMu.RLock()
	defer q.durMu.RUnlock()
	v, si, ok := q.popRaw()
	if !ok {
		q.emptyDeletes.Add(1)
		return nil, false, nil
	}
	if err := q.wal.AppendDelete([]uint64{durID(v)}); err != nil {
		q.putBack(v)
		return nil, false, err
	}
	q.popCommit()
	q.noteShardDel(si, 1)
	q.maybeSnapshot()
	return v, true, nil
}

// deleteMinBatchDurable mirrors deleteMinBatch's shard scan and byte
// budget, but defers the admission commit until a single delete record
// covering every kept item is durable; a log failure puts everything
// back un-popped. Kept envelopes are appended to envs; ownership
// transfers to the caller exactly as with deleteMinBatch.
func (q *servedQueue) deleteMinBatchDurable(max, budget int, envs [][]byte) ([][]byte, error) {
	q.durMu.RLock()
	defer q.durMu.RUnlock()
	n0 := len(envs)
	var (
		ids       []uint64
		keptShard []int             // shard index per kept item, for rollback
		kept      []pq.Item[[]byte] // raw kept entries, aligned with keptShard
		bytes     = 4               // item-count prefix
	)
	rollback := func() {
		byShard := make(map[int][]pq.Item[[]byte])
		for i, it := range kept {
			byShard[keptShard[i]] = append(byShard[keptShard[i]], it)
		}
		for s, batch := range byShard {
			q.putBackN(s, batch)
		}
	}
	for si, sub := range q.shards {
		want := max - (len(envs) - n0)
		if want <= 0 {
			break
		}
		got := pq.DeleteMinBatch(sub, want)
		if len(got) == 0 {
			continue
		}
		q.occAdd(si, -len(got)) // putBackN re-books anything returned
		took := 0
		for _, item := range got {
			v := item.Val
			sz := 8 + len(v) - durTagLen // pri(4) + bloblen(4) + value
			if len(envs) > n0 && bytes+sz > budget {
				break
			}
			bytes += sz
			envs = append(envs, v)
			ids = append(ids, durID(v))
			kept = append(kept, item)
			keptShard = append(keptShard, si)
			took++
		}
		q.rankRecord(si, took)
		if took < len(got) {
			q.putBackN(si, got[took:])
			break
		}
	}
	if len(envs) == n0 {
		q.emptyDeletes.Add(1)
		return envs, nil
	}
	if err := q.wal.AppendDelete(ids); err != nil {
		rollback()
		return envs[:n0], err
	}
	q.popCommitN(len(envs) - n0)
	for _, si := range keptShard {
		q.noteShardDel(si, 1)
	}
	if len(envs)-n0 < max {
		q.emptyDeletes.Add(1)
	}
	q.maybeSnapshot()
	return envs, nil
}

// snapshot quiesces the queue (write lock: every durable operation
// holds the read lock across its log append and shard mutation) and
// writes the full live-item set through a non-destructive drain-style
// iteration: each shard is popped dry via the native batch path and
// every entry is put back, so the queue is byte-for-byte unchanged
// afterwards.
// wait controls contention with an in-flight snapshot: background
// callers skip (false), the seal path waits its turn (true) so the
// final snapshot is never silently dropped.
func (q *servedQueue) snapshot(wait bool) error {
	if q.wal == nil {
		return nil
	}
	for !q.snapActive.CompareAndSwap(false, true) {
		if !wait {
			return nil // a snapshot is already running
		}
		time.Sleep(time.Millisecond)
	}
	defer q.snapActive.Store(false)
	q.durMu.Lock()
	defer q.durMu.Unlock()
	var items []wal.Item
	for si, sub := range q.shards {
		drained := pq.Drain(sub)
		q.occAdd(si, -len(drained)) // putBackN below restores them
		for _, it := range drained {
			v := it.Val
			items = append(items, wal.Item{
				ID:    durID(v),
				Pri:   binary.BigEndian.Uint32(v),
				Value: v[durTagLen:],
			})
		}
		if len(drained) > 0 {
			q.putBackN(si, drained)
		}
	}
	return q.wal.Snapshot(items)
}

// maybeSnapshot kicks off a background snapshot when the log has grown
// by snapEvery records since the last one. Called with the read lock
// held, so the snapshot itself must run asynchronously.
func (q *servedQueue) maybeSnapshot() {
	if q.snapEvery <= 0 || q.snapActive.Load() {
		return
	}
	if q.wal.Stats().RecordsSinceSnapshot >= uint64(q.snapEvery) {
		go q.snapshot(false)
	}
}

// sealWAL takes a final snapshot and closes the log — the graceful-
// shutdown path. After it, a restart replays zero log records: boot is
// pure snapshot load. It waits out any in-flight background snapshot
// (which covers fewer records) rather than skipping its own.
func (q *servedQueue) sealWAL() error {
	if q.wal == nil {
		return nil
	}
	err := q.snapshot(true)
	if cerr := q.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
