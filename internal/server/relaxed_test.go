package server

import (
	"net/http/httptest"
	"strings"
	"testing"

	"pq"
	"pq/internal/wire"
)

// TestRelaxedQueueGate checks that relaxed algorithms are opt-in:
// AddQueue refuses them by default with an error naming the escape
// hatch, and accepts them under Config.AllowRelaxed.
func TestRelaxedQueueGate(t *testing.T) {
	srv := New(Config{Concurrency: 4})
	err := srv.AddQueue(QueueSpec{Name: "jobs", Algorithm: pq.MultiQueue, Priorities: 16})
	if err == nil {
		t.Fatal("relaxed queue accepted without AllowRelaxed")
	}
	if !strings.Contains(err.Error(), "AllowRelaxed") || !strings.Contains(err.Error(), "-relaxed") {
		t.Fatalf("rejection does not name the escape hatch: %v", err)
	}
	// Exact algorithms are unaffected by the gate.
	if err := srv.AddQueue(QueueSpec{Name: "exact", Algorithm: pq.FunnelTree, Priorities: 16}); err != nil {
		t.Fatal(err)
	}

	relaxedSrv := New(Config{Concurrency: 4, AllowRelaxed: true})
	if err := relaxedSrv.AddQueue(QueueSpec{Name: "jobs", Algorithm: pq.MultiQueue, Priorities: 16}); err != nil {
		t.Fatalf("AllowRelaxed did not admit MultiQueue: %v", err)
	}
}

// TestRelaxedRankMetrics serves a MultiQueue, drives traffic through
// the queue paths, and checks the rank-error Prometheus families
// appear for the relaxed queue and never for exact queues.
func TestRelaxedRankMetrics(t *testing.T) {
	srv := New(Config{Concurrency: 4, AllowRelaxed: true})
	if err := srv.AddQueue(QueueSpec{Name: "relaxed", Algorithm: pq.MultiQueue, Priorities: 16}); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddQueue(QueueSpec{Name: "exact", Algorithm: pq.SimpleLinear, Priorities: 16}); err != nil {
		t.Fatal(err)
	}
	q := srv.queues["relaxed"]
	for i := 0; i < 200; i++ {
		if st, err := q.insert(wire.Item{Pri: uint32(i % 16), Value: []byte{byte(i)}}); st != insOK || err != nil {
			t.Fatalf("insert %d: status %v err %v", i, st, err)
		}
		if i%2 == 1 {
			if _, ok, err := q.deleteMin(); !ok || err != nil {
				t.Fatalf("deleteMin %d: ok=%v err=%v", i, ok, err)
			}
		}
	}
	rs, ok := q.relaxStats()
	if !ok || !rs.Tracked || rs.Pops == 0 {
		t.Fatalf("relaxStats = %+v ok=%v, want tracked pops", rs, ok)
	}
	if _, ok := srv.queues["exact"].relaxStats(); ok {
		t.Fatal("exact queue reported relax stats")
	}

	ts := httptest.NewServer(srv.AdminHandler())
	defer ts.Close()
	_, body := adminGet(t, ts, "/metrics")
	for _, family := range []string{
		"pq_queue_relaxed",
		"pq_queue_rank_error_pops_total",
		"pq_queue_rank_error_mean",
		"pq_queue_rank_error_p50",
		"pq_queue_rank_error_p99",
		"pq_queue_rank_error_max",
	} {
		if !strings.Contains(body, family+`{queue="relaxed"}`) {
			t.Errorf("/metrics missing %s for the relaxed queue", family)
		}
	}
	if !strings.Contains(body, `pq_queue_relaxed{queue="exact"} 0`) {
		t.Error("/metrics missing pq_queue_relaxed 0 for the exact queue")
	}
	if strings.Contains(body, `pq_queue_rank_error_pops_total{queue="exact"}`) {
		t.Error("/metrics emits rank families for an exact queue")
	}
}
