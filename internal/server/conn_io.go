package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"

	"pq/internal/obs"
	"pq/internal/wire"
)

// Connection I/O for the zero-allocation serving path.
//
// A respWriter replaces the per-connection bufio.Writer: responses are
// encoded straight into pooled scratch chunks (wire.GetBuf), large
// item values are spliced into the write as aliases of their queue
// envelopes instead of being copied, and a whole micro-batch of
// pipelined responses goes to the kernel as one vectored write
// (net.Buffers → writev), so a depth-N pipeline costs one syscall.
//
// Ownership discipline: every pooled buffer a response references —
// scratch chunks and zero-copy envelopes alike — is queued on the
// writer's recycle list and returned to the pool only after the flush
// that wrote its bytes. Nothing is recycled while the kernel may still
// read it.

const (
	// zeroCopyMin: item values at least this large are aliased into
	// the vectored write; smaller ones are memcpy'd into the scratch
	// chunk (a copy this size is cheaper than an extra iovec entry).
	zeroCopyMin = 4 << 10
	// flushHighWater bounds the response bytes buffered before an
	// intermediate flush, so a deep pipeline of fat responses cannot
	// pin unbounded memory.
	flushHighWater = 256 << 10
	// respChunkSize is the scratch chunk granularity; small responses
	// for a whole micro-batch typically fit in one chunk.
	respChunkSize = 32 << 10
)

// buffersWriter is the vectored-write fast path a respWriter probes its
// destination for. countingWriter implements it by forwarding, so the
// metrics tap does not add a syscall per buffer.
type buffersWriter interface {
	WriteBuffers(*net.Buffers) (int64, error)
}

type respWriter struct {
	dst  io.Writer
	vdst buffersWriter // dst's vectored path, nil if it has none

	bufs    net.Buffers // completed iovecs, in write order
	cur     []byte      // open scratch chunk (pooled), appended to in place
	recycle [][]byte    // pooled buffers owned by pending bytes; PutBuf after flush
	chunks  [][]byte    // spent scratch chunks owned by pending bytes; putChunk after flush
	done    int         // bytes across bufs (excludes cur)
	flushes int64       // vectored flushes issued (the syscall count proxy)
	err     error       // sticky write error
	// vscratch is the reusable iovec copy handed to WriteTo/WriteBuffers,
	// which consume the slice they're given. A struct field rather than a
	// local so taking its address doesn't force a heap escape per flush.
	vscratch net.Buffers
	// spare holds scratch chunks retained across flushes. Splice-heavy
	// batches open a new chunk per spliced item; keeping the chunks on
	// the writer makes that churn connection-local instead of a burst of
	// same-class pool traffic.
	spare [][]byte
}

var respWriterPool = sync.Pool{New: func() any { return new(respWriter) }}

func getRespWriter(dst io.Writer) *respWriter {
	w := respWriterPool.Get().(*respWriter)
	w.dst = dst
	w.vdst, _ = dst.(buffersWriter)
	w.err = nil
	w.flushes = 0
	return w
}

// maxSpareChunks bounds the chunks a writer retains: enough for every
// splice in a flush-high-water batch to reopen one.
const maxSpareChunks = 16

// getChunk takes a retained chunk, falling back to the pool.
func (w *respWriter) getChunk() []byte {
	if n := len(w.spare); n > 0 {
		c := w.spare[n-1]
		w.spare[n-1] = nil
		w.spare = w.spare[:n-1]
		return c
	}
	return wire.GetBuf(respChunkSize)
}

// putChunk retains a spent scratch chunk for reuse, overflowing to the
// pool once the writer holds enough.
func (w *respWriter) putChunk(c []byte) {
	if len(w.spare) < maxSpareChunks {
		w.spare = append(w.spare, c[:0])
		return
	}
	wire.PutBuf(c)
}

// release drops buffer references and returns the writer to its pool.
// Pending unflushed bytes are discarded (the connection is gone).
// Retained chunks stay with the writer — it is pooled itself.
func (w *respWriter) release() {
	if w.cur != nil {
		w.putChunk(w.cur)
		w.cur = nil
	}
	for i := range w.recycle {
		wire.PutBuf(w.recycle[i])
		w.recycle[i] = nil
	}
	w.recycle = w.recycle[:0]
	for i := range w.chunks {
		w.putChunk(w.chunks[i])
		w.chunks[i] = nil
	}
	w.chunks = w.chunks[:0]
	for i := range w.bufs {
		w.bufs[i] = nil
	}
	w.bufs = w.bufs[:0]
	w.done = 0
	w.dst, w.vdst = nil, nil
	respWriterPool.Put(w)
}

// pending reports the bytes buffered since the last flush.
func (w *respWriter) pending() int { return w.done + len(w.cur) }

// beginFrame starts a response frame in the open chunk and returns the
// append target plus the length-patch offset for endFrame.
func (w *respWriter) beginFrame(t wire.Type, id uint32) ([]byte, int) {
	if w.cur == nil {
		w.cur = w.getChunk()
	}
	return wire.BeginFrame(w.cur, t, id)
}

// endFrame seals a frame begun with beginFrame. buf must be the slice
// beginFrame returned, extended only by appends.
func (w *respWriter) endFrame(buf []byte, off int) error {
	w.cur = wire.EndFrame(buf, off)
	if w.pending() >= flushHighWater {
		return w.flush()
	}
	return w.err
}

// closeChunk moves the open chunk onto the iovec list.
func (w *respWriter) closeChunk() {
	if len(w.cur) == 0 {
		return
	}
	w.bufs = append(w.bufs, w.cur)
	w.chunks = append(w.chunks, w.cur)
	w.done += len(w.cur)
	w.cur = nil
}

// itemFrame writes a TItem response for one queue envelope (priority
// tag + value, see servedQueue.tagLen) and takes ownership of the
// envelope: small values are copied and the envelope recycled at once,
// large ones are aliased into the vectored write with the recycle
// deferred until after the flush.
func (w *respWriter) itemFrame(id uint32, env []byte, tagLen int) error {
	pri := binary.BigEndian.Uint32(env)
	value := env[tagLen:]
	if len(value) < zeroCopyMin {
		buf, off := w.beginFrame(wire.TItem, id)
		buf = binary.BigEndian.AppendUint32(buf, pri)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(value)))
		buf = append(buf, value...)
		err := w.endFrame(buf, off)
		wire.PutBuf(env)
		return err
	}
	if w.cur == nil {
		w.cur = w.getChunk()
	}
	w.cur = wire.AppendFrameHeader(w.cur, wire.TItem, id, 8+len(value))
	w.cur = binary.BigEndian.AppendUint32(w.cur, pri)
	w.cur = binary.BigEndian.AppendUint32(w.cur, uint32(len(value)))
	w.spliceRef(value, env)
	if w.pending() >= flushHighWater {
		return w.flush()
	}
	return w.err
}

// itemsFrame writes a TItems response from queue envelopes, taking
// ownership of every envelope like itemFrame does.
func (w *respWriter) itemsFrame(id uint32, envs [][]byte, tagLen int) error {
	payloadLen := 4
	for _, env := range envs {
		payloadLen += 8 + len(env) - tagLen
	}
	if w.cur == nil {
		w.cur = w.getChunk()
	}
	w.cur = wire.AppendFrameHeader(w.cur, wire.TItems, id, payloadLen)
	w.cur = binary.BigEndian.AppendUint32(w.cur, uint32(len(envs)))
	for _, env := range envs {
		value := env[tagLen:]
		if w.cur == nil { // a splice below closed the chunk
			w.cur = w.getChunk()
		}
		w.cur = binary.BigEndian.AppendUint32(w.cur, binary.BigEndian.Uint32(env))
		w.cur = binary.BigEndian.AppendUint32(w.cur, uint32(len(value)))
		if len(value) < zeroCopyMin {
			w.cur = append(w.cur, value...)
			wire.PutBuf(env)
		} else {
			w.spliceRef(value, env)
		}
	}
	if w.pending() >= flushHighWater {
		return w.flush()
	}
	return w.err
}

// spliceRef appends b to the vectored write without copying; owner is
// the pooled buffer keeping b alive, recycled after the flush.
func (w *respWriter) spliceRef(b, owner []byte) {
	w.closeChunk()
	w.bufs = append(w.bufs, b)
	w.recycle = append(w.recycle, owner)
	w.done += len(b)
}

// flush writes everything buffered in one vectored write. Errors are
// sticky: the connection is unusable after one.
func (w *respWriter) flush() error {
	if w.err != nil {
		return w.err
	}
	w.closeChunk()
	if len(w.bufs) == 0 {
		return nil
	}
	// WriteTo advances the slice and its elements as it writes, so it
	// gets a scratch copy of the iovecs; recycle keeps the originals.
	// save preserves the full-capacity header across that consumption.
	w.vscratch = append(w.vscratch[:0], w.bufs...)
	save := w.vscratch
	var err error
	if w.vdst != nil {
		_, err = w.vdst.WriteBuffers(&w.vscratch)
	} else {
		_, err = w.vscratch.WriteTo(w.dst)
	}
	for i := range save {
		save[i] = nil
	}
	w.vscratch = save[:0]
	w.flushes++
	for i := range w.recycle {
		wire.PutBuf(w.recycle[i])
		w.recycle[i] = nil
	}
	w.recycle = w.recycle[:0]
	for i := range w.chunks {
		w.putChunk(w.chunks[i])
		w.chunks[i] = nil
	}
	w.chunks = w.chunks[:0]
	for i := range w.bufs {
		w.bufs[i] = nil
	}
	w.bufs = w.bufs[:0]
	w.done = 0
	w.err = err
	return err
}

// connReaderPool recycles the 64 KiB per-connection read buffers
// across connection churn.
var connReaderPool = sync.Pool{
	New: func() any { return bufio.NewReaderSize(nil, 64<<10) },
}

func getConnReader(src io.Reader) *bufio.Reader {
	br := connReaderPool.Get().(*bufio.Reader)
	br.Reset(src)
	return br
}

func putConnReader(br *bufio.Reader) {
	br.Reset(nil) // drop the connection reference before pooling
	connReaderPool.Put(br)
}

// envsPool recycles the envelope slices that carry DeleteMinBatch
// results from the queue to the response encoder.
var envsPool = sync.Pool{
	New: func() any { s := make([][]byte, 0, 64); return &s },
}

func getEnvs() *[][]byte { return envsPool.Get().(*[][]byte) }

func putEnvs(s *[][]byte) {
	for i := range *s {
		(*s)[i] = nil
	}
	*s = (*s)[:0]
	envsPool.Put(s)
}

// Metric-tap fast-path forwarding (see countingReader/countingWriter in
// server.go): the taps exist to count bytes, not to hide the runtime's
// splice/sendfile/writev paths, so each forwards the corresponding
// interface to the wrapped stream when it offers one.

// WriteTo forwards the underlying reader's io.WriterTo (splice) when
// present, counting the bytes moved.
func (cr *countingReader) WriteTo(dst io.Writer) (int64, error) {
	if wt, ok := cr.r.(io.WriterTo); ok {
		n, err := wt.WriteTo(dst)
		if n > 0 {
			cr.n.Add(cr.hint, n)
		}
		return n, err
	}
	return copyCounted(dst, cr.r, cr.n, cr.hint)
}

// ReadFrom forwards the underlying writer's io.ReaderFrom (sendfile /
// splice) when present, counting the bytes moved.
func (cw *countingWriter) ReadFrom(src io.Reader) (int64, error) {
	if rf, ok := cw.w.(io.ReaderFrom); ok {
		n, err := rf.ReadFrom(src)
		if n > 0 {
			cw.n.Add(cw.hint, n)
		}
		return n, err
	}
	return copyCounted(cw.w, src, cw.n, cw.hint)
}

// WriteBuffers forwards a vectored write to the underlying connection —
// net.Buffers' own writev fast path only triggers on a raw *net.TCPConn,
// so the tap must pass the whole batch through rather than surface as a
// plain io.Writer and degrade it to one syscall per buffer.
func (cw *countingWriter) WriteBuffers(bufs *net.Buffers) (int64, error) {
	n, err := bufs.WriteTo(cw.w)
	if n > 0 {
		cw.n.Add(cw.hint, n)
	}
	return n, err
}

// copyCounted is the fallback for wrapped streams with no fast path:
// a plain copy loop through a pooled buffer, counted.
func copyCounted(dst io.Writer, src io.Reader, c *obs.Counter, hint uint64) (int64, error) {
	buf := wire.GetBuf(32 << 10)
	b := buf[:cap(buf)]
	var total int64
	for {
		n, rerr := src.Read(b)
		if n > 0 {
			wn, werr := dst.Write(b[:n])
			if wn > 0 {
				total += int64(wn)
				c.Add(hint, int64(wn))
			}
			if werr != nil {
				wire.PutBuf(buf)
				return total, werr
			}
			if wn < n {
				wire.PutBuf(buf)
				return total, io.ErrShortWrite
			}
		}
		if rerr != nil {
			wire.PutBuf(buf)
			if rerr == io.EOF {
				rerr = nil
			}
			return total, rerr
		}
	}
}
