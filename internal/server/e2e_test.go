package server

import (
	"context"
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"pq"
	"pq/pqclient"
)

// TestLoopbackEndToEnd is the serving subsystem's acceptance test: pqd
// semantics (a Server on loopback) hosting a sharded FunnelTree under
// concurrent pipelined clients. It checks, per item, that every
// acknowledged insert is deleted exactly once and nothing else ever
// comes out; that admission control observably sheds (RETRY_AFTER
// count > 0) when the bound is exceeded; and that the queue drains
// cleanly. Run it under -race.
func TestLoopbackEndToEnd(t *testing.T) {
	const (
		clients  = 4
		workers  = 2 // goroutines per client
		opsEach  = 300
		pris     = 64
		capacity = 120
	)
	s, addr := startServer(t, QueueSpec{
		Name:       "jobs",
		Algorithm:  pq.FunnelTree,
		Priorities: pris,
		Shards:     4,
		Capacity:   capacity,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Every worker inserts values tagged worker<<32|seq and interleaves
	// delete-mins; acked inserts and deleted values are collected for
	// the exactly-once check.
	var (
		mu      sync.Mutex
		acked   = map[uint64]int{}
		deleted = map[uint64]int{}
		sheds   int
	)
	record := func(m map[uint64]int, id uint64) {
		mu.Lock()
		m[id]++
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		c := dialClient(t, addr, func(cfg *pqclient.Config) {
			cfg.Conns = 2
			cfg.MaxRetries = 3
			cfg.RetryBase = time.Millisecond
		})
		for w := 0; w < workers; w++ {
			worker := uint64(cl*workers + w)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < opsEach; i++ {
					id := worker<<32 | uint64(i)
					// Two inserts per delete keeps pressure on the
					// capacity bound so admission control must engage.
					if i%3 != 2 {
						v := make([]byte, 8)
						binary.BigEndian.PutUint64(v, id)
						err := c.Insert(ctx, "jobs", int(id*13)%pris, v)
						switch {
						case err == nil:
							record(acked, id)
						case isOverload(err):
							mu.Lock()
							sheds++
							mu.Unlock()
						default:
							t.Errorf("insert: %v", err)
							return
						}
					} else {
						it, ok, err := c.DeleteMin(ctx, "jobs")
						if err != nil {
							t.Errorf("delete-min: %v", err)
							return
						}
						if ok {
							record(deleted, binary.BigEndian.Uint64(it.Value))
						}
					}
				}
			}()
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Drain: stop admission, then pop until empty.
	drainer := dialClient(t, addr)
	if _, err := drainer.Drain(ctx, "jobs"); err != nil {
		t.Fatal(err)
	}
	for {
		items, err := drainer.DeleteMinBatch(ctx, "jobs", 256)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			break
		}
		for _, it := range items {
			record(deleted, binary.BigEndian.Uint64(it.Value))
		}
	}

	// Exactly-once: every acked insert deleted once, nothing phantom.
	for id, n := range deleted {
		if n != 1 {
			t.Errorf("item %x deleted %d times", id, n)
		}
		if acked[id] != 1 {
			t.Errorf("item %x deleted but acked %d times", id, acked[id])
		}
	}
	for id := range acked {
		if deleted[id] != 1 {
			t.Errorf("acked item %x deleted %d times", id, deleted[id])
		}
	}

	// Admission control must have observably shed: the workload holds
	// ~2 inserts per delete against capacity 120 with client retry
	// capped, so some Inserts end in ErrOverload and the server counts
	// RETRY_AFTER frames.
	st, ok := s.QueueStats("jobs")
	if !ok {
		t.Fatal("queue stats missing")
	}
	if st.RetryAfter == 0 {
		t.Error("server never shed with RETRY_AFTER despite bounded capacity")
	}
	if sheds == 0 {
		t.Error("no client ever observed overload")
	}
	if st.Size != 0 {
		t.Errorf("queue not drained: size=%d", st.Size)
	}
	if int(st.Deletes) != len(deleted) || int(st.Inserts) != len(acked) {
		t.Errorf("server counters (ins=%d del=%d) disagree with client view (ins=%d del=%d)",
			st.Inserts, st.Deletes, len(acked), len(deleted))
	}
	t.Logf("acked=%d deleted=%d sheds(client)=%d retry_after(server)=%d",
		len(acked), len(deleted), sheds, st.RetryAfter)
}

// TestPipelinedCoalescing pushes many concurrent inserts through one
// connection so the client's batch coalescing engages, then verifies
// nothing was lost or duplicated.
func TestPipelinedCoalescing(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.SimpleTree, Priorities: 32})
	c := dialClient(t, addr, func(cfg *pqclient.Config) {
		cfg.Conns = 1
		cfg.MaxCoalesce = 16
	})
	ctx := context.Background()

	const n = 400
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := make([]byte, 4)
			binary.BigEndian.PutUint32(v, uint32(i))
			if err := c.Insert(ctx, "jobs", i%32, v); err != nil {
				t.Errorf("insert %d: %v", i, err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	seen := make([]bool, n)
	got := 0
	for {
		items, err := c.DeleteMinBatch(ctx, "jobs", 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			break
		}
		for _, it := range items {
			id := binary.BigEndian.Uint32(it.Value)
			if seen[id] {
				t.Fatalf("item %d served twice", id)
			}
			seen[id] = true
			got++
		}
	}
	if got != n {
		t.Fatalf("drained %d items, want %d", got, n)
	}
}
