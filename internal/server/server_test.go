package server

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pq"
	"pq/internal/wire"
	"pq/pqclient"
)

func netDial(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 5*time.Second)
}

// startServer runs a server on a loopback listener and returns it plus
// its address; cleanup tears it down.
func startServer(t *testing.T, specs ...QueueSpec) (*Server, string) {
	t.Helper()
	s := New(Config{Concurrency: 8})
	for _, spec := range specs {
		if err := s.AddQueue(spec); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := s.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start listening")
	}
	t.Cleanup(func() {
		s.Close()
		<-done
	})
	return s, addr
}

func dialClient(t *testing.T, addr string, tweak ...func(*pqclient.Config)) *pqclient.Client {
	t.Helper()
	cfg := pqclient.Config{Addr: addr, RequestTimeout: 10 * time.Second}
	for _, f := range tweak {
		f(&cfg)
	}
	c, err := pqclient.Dial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestQueueSpecValidation(t *testing.T) {
	s := New(Config{})
	for _, spec := range []QueueSpec{
		{Name: "", Algorithm: pq.SimpleLinear, Priorities: 4},
		{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 0},
		{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 4, Capacity: -1},
		{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 4, Shards: -2},
		{Name: "q", Algorithm: "NoSuchAlg", Priorities: 4},
	} {
		if err := s.AddQueue(spec); err == nil {
			t.Errorf("spec %+v accepted", spec)
		}
	}
	if err := s.AddQueue(QueueSpec{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.AddQueue(QueueSpec{Name: "q", Algorithm: pq.SimpleTree, Priorities: 4}); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestShardPartition(t *testing.T) {
	// 10 priorities over 4 shards: every priority maps to exactly one
	// shard, bases are contiguous, and shards exceeding the priority
	// count clamp.
	q, err := newServedQueue(QueueSpec{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 10, Shards: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.shards) != 4 {
		t.Fatalf("shards = %d", len(q.shards))
	}
	prev := -1
	for pri := 0; pri < 10; pri++ {
		s := q.shardFor(pri)
		if s < 0 || s >= 4 {
			t.Fatalf("pri %d -> shard %d", pri, s)
		}
		if s < prev {
			t.Fatalf("shard ordering broke at pri %d", pri)
		}
		prev = s
		if pri < q.bases[s] || pri >= q.bases[s+1] {
			t.Fatalf("pri %d outside its shard range [%d,%d)", pri, q.bases[s], q.bases[s+1])
		}
	}

	clamped, err := newServedQueue(QueueSpec{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 3, Shards: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(clamped.shards) != 3 {
		t.Fatalf("clamped shards = %d, want 3", len(clamped.shards))
	}
}

func TestInsertDeleteRoundTrip(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.SimpleLinear, Priorities: 8, Shards: 2})
	c := dialClient(t, addr)
	ctx := context.Background()

	// Insert out of priority order; delete-min must honor priorities
	// across shard boundaries (shard 0 = pris 0-3, shard 1 = 4-7).
	for _, pri := range []int{6, 1, 4, 0} {
		v := make([]byte, 4)
		binary.BigEndian.PutUint32(v, uint32(pri))
		if err := c.Insert(ctx, "jobs", pri, v); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []int{0, 1, 4, 6} {
		it, ok, err := c.DeleteMin(ctx, "jobs")
		if err != nil || !ok {
			t.Fatalf("DeleteMin: ok=%v err=%v", ok, err)
		}
		if it.Pri != want {
			t.Fatalf("DeleteMin pri = %d, want %d", it.Pri, want)
		}
		if got := int(binary.BigEndian.Uint32(it.Value)); got != want {
			t.Fatalf("value round-trip: got %d want %d", got, want)
		}
	}
	if _, ok, err := c.DeleteMin(ctx, "jobs"); err != nil || ok {
		t.Fatalf("empty queue: ok=%v err=%v", ok, err)
	}
}

func TestUnknownQueueAndBadPriority(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.SimpleLinear, Priorities: 4})
	c := dialClient(t, addr)
	ctx := context.Background()

	var se *pqclient.ServerError
	if err := c.Insert(ctx, "nope", 0, nil); err == nil {
		t.Error("unknown queue accepted")
	} else if !asServerError(err, &se) {
		t.Errorf("unknown queue: %v", err)
	}
	if err := c.Insert(ctx, "jobs", 99, nil); err == nil {
		t.Error("out-of-range priority accepted")
	} else if !asServerError(err, &se) {
		t.Errorf("bad priority: %v", err)
	}
	if _, _, err := c.DeleteMin(ctx, "nope"); err == nil {
		t.Error("unknown queue delete accepted")
	}
}

func asServerError(err error, target **pqclient.ServerError) bool {
	return errors.As(err, target)
}

func TestAdmissionControlSheds(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "small", Algorithm: pq.SimpleLinear, Priorities: 4, Capacity: 8})
	// Disable client-side retry so the shed surfaces immediately.
	c := dialClient(t, addr, func(cfg *pqclient.Config) { cfg.MaxRetries = -1 })
	ctx := context.Background()

	shed := 0
	for i := 0; i < 32; i++ {
		err := c.Insert(ctx, "small", i%4, nil)
		if err != nil {
			if !isOverload(err) {
				t.Fatalf("insert %d: %v", i, err)
			}
			shed++
		}
	}
	if shed == 0 {
		t.Fatal("capacity 8 absorbed 32 inserts with no shed")
	}
	st, err := c.Stats(ctx, "small")
	if err != nil {
		t.Fatal(err)
	}
	if st.RetryAfter == 0 {
		t.Error("server reports no RETRY_AFTER sheds")
	}
	if st.Inserts > st.Capacity {
		t.Errorf("admitted %d items past capacity %d", st.Inserts, st.Capacity)
	}

	// Free a slot; inserts must flow again (retry path).
	if _, ok, err := c.DeleteMin(ctx, "small"); err != nil || !ok {
		t.Fatalf("DeleteMin: ok=%v err=%v", ok, err)
	}
	retrier := dialClient(t, addr)
	if err := retrier.Insert(ctx, "small", 0, nil); err != nil {
		t.Fatalf("insert after free: %v", err)
	}
}

func isOverload(err error) bool {
	var re *pqclient.RetryError
	return errors.Is(err, pqclient.ErrOverload) || errors.As(err, &re)
}

func TestInsertBatchAdmitsPrefix(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "small", Algorithm: pq.SimpleLinear, Priorities: 4, Capacity: 5})
	c := dialClient(t, addr)
	ctx := context.Background()

	items := make([]pqclient.Item, 12)
	for i := range items {
		items[i] = pqclient.Item{Pri: i % 4}
	}
	accepted, err := c.InsertBatch(ctx, "small", items)
	if accepted != 5 {
		t.Fatalf("accepted = %d, want 5", accepted)
	}
	if _, ok := err.(*pqclient.RetryError); !ok {
		t.Fatalf("want RetryError for rejected tail, got %v", err)
	}
}

func TestDrainStopsInsertsAllowsDeletes(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.FunnelTree, Priorities: 16, Shards: 2})
	c := dialClient(t, addr, func(cfg *pqclient.Config) { cfg.MaxRetries = -1 })
	ctx := context.Background()

	for i := 0; i < 10; i++ {
		if err := c.Insert(ctx, "jobs", i, nil); err != nil {
			t.Fatal(err)
		}
	}
	rem, err := c.Drain(ctx, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	if rem != 10 {
		t.Fatalf("Drain remaining = %d, want 10", rem)
	}
	if err := c.Insert(ctx, "jobs", 0, nil); !isOverload(err) {
		t.Fatalf("insert after drain: %v", err)
	}
	got, err := c.DeleteMinBatch(ctx, "jobs", 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("drained %d items, want 10", len(got))
	}
}

func TestGracefulShutdownSevers(t *testing.T) {
	s, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.SimpleLinear, Priorities: 4})
	c := dialClient(t, addr)
	ctx := context.Background()
	if err := c.Insert(ctx, "jobs", 0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	shCtx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	// The client connection stays open, so Shutdown hits the deadline
	// and severs it — still a clean return.
	if err := s.Shutdown(shCtx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
}

func TestRawWireErrors(t *testing.T) {
	// Unknown frame types get a TError reply, not a dropped connection.
	_, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.SimpleLinear, Priorities: 4})
	nc, err := netDial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if err := wire.WriteFrame(nc, wire.Frame{Type: wire.Type(0x7f), ID: 9}); err != nil {
		t.Fatal(err)
	}
	f, err := wire.ReadFrame(nc)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.TError || f.ID != 9 {
		t.Fatalf("got %v id=%d, want ERROR id=9", f.Type, f.ID)
	}
	// The connection must still serve the next request.
	if err := wire.WriteFrame(nc, wire.Frame{Type: wire.TStats, ID: 10,
		Payload: wire.QueueReq{Queue: "jobs"}.Append(nil)}); err != nil {
		t.Fatal(err)
	}
	if f, err = wire.ReadFrame(nc); err != nil || f.Type != wire.TStatsReply {
		t.Fatalf("after error frame: %v %v", f.Type, err)
	}

	// A frame with an unknown protocol version likewise gets a TError
	// by id (the rollout guarantee) and the connection keeps serving.
	raw := wire.AppendFrame(nil, wire.Frame{Type: wire.TInsert, ID: 21,
		Payload: wire.Insert{Queue: "jobs", Item: wire.Item{Pri: 1, Value: []byte("v")}}.Append(nil)})
	raw[4] = 9 // version byte
	if _, err := nc.Write(raw); err != nil {
		t.Fatal(err)
	}
	if f, err = wire.ReadFrame(nc); err != nil || f.Type != wire.TError || f.ID != 21 {
		t.Fatalf("bad-version frame: type=%v id=%d err=%v, want ERROR id=21", f.Type, f.ID, err)
	}
	if err := wire.WriteFrame(nc, wire.Frame{Type: wire.TDeleteMin, ID: 22,
		Payload: wire.QueueReq{Queue: "jobs"}.Append(nil)}); err != nil {
		t.Fatal(err)
	}
	if f, err = wire.ReadFrame(nc); err != nil || f.ID != 22 {
		t.Fatalf("after bad-version frame: %v %v", f.Type, err)
	}
}

// TestDeleteMinBatchRespectsFrameLimit fills a queue with values big
// enough that a max-count batch would blow past wire.MaxFrame, then
// drains with DeleteMinBatch: every response must stay decodable (the
// server stops popping before the frame overflows and puts the
// overflowing item back), and every item must come out exactly once.
func TestDeleteMinBatchRespectsFrameLimit(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "big", Algorithm: pq.SimpleLinear, Priorities: 8})
	c := dialClient(t, addr, func(cfg *pqclient.Config) { cfg.RequestTimeout = 30 * time.Second })
	ctx := context.Background()

	const n, valSize = 7, 300 << 10 // 7 × 300 KiB ≈ 2 MiB > MaxFrame
	for i := 0; i < n; i++ {
		v := make([]byte, valSize)
		binary.BigEndian.PutUint32(v, uint32(i))
		if err := c.Insert(ctx, "big", i%8, v); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}

	seen := make([]bool, n)
	rounds, got := 0, 0
	for {
		items, err := c.DeleteMinBatch(ctx, "big", 64)
		if err != nil {
			t.Fatalf("batch round %d: %v", rounds, err)
		}
		if len(items) == 0 {
			break
		}
		rounds++
		for _, it := range items {
			if len(it.Value) != valSize {
				t.Fatalf("value truncated to %d bytes", len(it.Value))
			}
			id := binary.BigEndian.Uint32(it.Value)
			if seen[id] {
				t.Fatalf("item %d served twice", id)
			}
			seen[id] = true
			got++
		}
	}
	if got != n {
		t.Fatalf("drained %d items, want %d", got, n)
	}
	if rounds < 2 {
		t.Fatalf("all %d large items arrived in %d response(s); frame cap never engaged", n, rounds)
	}
}

// TestBatchRoundTripShardedCapacity drives the native batch paths end
// to end on a sharded, capacity-bounded queue: batched inserts reserve
// admission slots with one multi-unit counter increment and fan out to
// the shards' native InsertBatch, the drain pulls through the shards'
// native DeleteMinBatch with values large enough that the frame budget
// forces putBackN mid-batch, and the multi-unit decrement on delivery
// frees every admission slot exactly once — proven by refilling the
// queue to capacity afterwards.
func TestBatchRoundTripShardedCapacity(t *testing.T) {
	const (
		n       = 24
		valSize = 150 << 10 // 24 × 150 KiB ≈ 3.5 MiB > MaxFrame
		chunk   = 6         // insert request: 6 × 150 KiB < MaxFrame
	)
	_, addr := startServer(t, QueueSpec{
		Name: "jobs", Algorithm: pq.FunnelTree, Priorities: 8, Shards: 4, Capacity: n})
	c := dialClient(t, addr, func(cfg *pqclient.Config) {
		cfg.RequestTimeout = 30 * time.Second
	})
	ctx := context.Background()

	// Fill to capacity with batched inserts spread over every shard.
	fill := func() {
		for base := 0; base < n; base += chunk {
			items := make([]pqclient.Item, chunk)
			for j := range items {
				id := base + j
				v := make([]byte, valSize)
				binary.BigEndian.PutUint32(v, uint32(id))
				items[j] = pqclient.Item{Pri: id % 8, Value: v}
			}
			accepted, err := c.InsertBatch(ctx, "jobs", items)
			if err != nil {
				t.Fatalf("insert batch at %d: %v", base, err)
			}
			if accepted != chunk {
				t.Fatalf("insert batch at %d: accepted %d, want %d", base, accepted, chunk)
			}
		}
	}
	fill()

	// Full queue: a further batch must be shed whole with a retry hint.
	if accepted, err := c.InsertBatch(ctx, "jobs", []pqclient.Item{{Pri: 0}, {Pri: 1}}); accepted != 0 || !isOverload(err) {
		t.Fatalf("insert into full queue: accepted=%d err=%v", accepted, err)
	}

	// Drain. The frame budget must split the response into several
	// rounds (exercising putBackN), every item must arrive exactly once
	// and untruncated, and — since each round runs at quiescence — the
	// full delivery order must be nondecreasing in priority.
	seen := make([]bool, n)
	rounds, lastPri := 0, -1
	for {
		items, err := c.DeleteMinBatch(ctx, "jobs", 64)
		if err != nil {
			t.Fatalf("batch round %d: %v", rounds, err)
		}
		if len(items) == 0 {
			break
		}
		rounds++
		for _, it := range items {
			if len(it.Value) != valSize {
				t.Fatalf("value truncated to %d bytes", len(it.Value))
			}
			id := binary.BigEndian.Uint32(it.Value)
			if seen[id] {
				t.Fatalf("item %d served twice", id)
			}
			seen[id] = true
			if it.Pri < lastPri {
				t.Fatalf("delivery order regressed: pri %d after %d", it.Pri, lastPri)
			}
			lastPri = it.Pri
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("item %d lost", id)
		}
	}
	if rounds < 2 {
		t.Fatalf("all %d large items arrived in %d response(s); frame cap never engaged", n, rounds)
	}

	st, err := c.Stats(ctx, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != n || st.Deletes != n || st.Size != 0 {
		t.Fatalf("stats after drain: inserts=%d deletes=%d size=%d, want %d/%d/0",
			st.Inserts, st.Deletes, st.Size, n, n)
	}

	// The drain's popCommitN must have freed every admission slot: a
	// second fill to capacity succeeds in full.
	fill()
}

// TestClientRejectsOversizedRequests checks that requests the server's
// frame limit could never accept fail client-side with a descriptive
// error — and without poisoning the connection for later requests.
func TestClientRejectsOversizedRequests(t *testing.T) {
	_, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.SimpleLinear, Priorities: 4})
	c := dialClient(t, addr)
	ctx := context.Background()

	if err := c.Insert(ctx, "jobs", 0, make([]byte, wire.MaxValue+1)); err == nil {
		t.Fatal("oversized value accepted")
	} else if _, isServer := err.(*pqclient.ServerError); isServer {
		t.Fatalf("oversized value reached the server: %v", err)
	}

	big := make([]pqclient.Item, 40)
	for i := range big {
		big[i] = pqclient.Item{Pri: 1, Value: make([]byte, 40<<10)}
	}
	if _, err := c.InsertBatch(ctx, "jobs", big); err == nil {
		t.Fatal("oversized batch accepted")
	} else if _, isServer := err.(*pqclient.ServerError); isServer {
		t.Fatalf("oversized batch reached the server: %v", err)
	}

	// The same client must still work.
	if err := c.Insert(ctx, "jobs", 1, []byte("ok")); err != nil {
		t.Fatalf("insert after rejections: %v", err)
	}
	if it, ok, err := c.DeleteMin(ctx, "jobs"); err != nil || !ok || string(it.Value) != "ok" {
		t.Fatalf("delete after rejections: %v %v", ok, err)
	}
}

// TestCoalescedErrorNotFateShared mixes valid inserts with out-of-range
// priorities on one heavily-coalesced connection: the server TErrors any
// batch containing a bad item, so the client must resend coalesced
// members individually — valid inserts all succeed, invalid ones all
// fail with ServerError, and nothing is lost or duplicated.
func TestCoalescedErrorNotFateShared(t *testing.T) {
	const pris = 8
	_, addr := startServer(t, QueueSpec{Name: "jobs", Algorithm: pq.SimpleLinear, Priorities: pris})
	c := dialClient(t, addr, func(cfg *pqclient.Config) {
		cfg.Conns = 1
		cfg.MaxCoalesce = 16
	})
	ctx := context.Background()

	const n = 240
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pri := i % pris
			if i%5 == 4 {
				pri = pris + i // out of range, must fail alone
			}
			v := make([]byte, 4)
			binary.BigEndian.PutUint32(v, uint32(i))
			errs[i] = c.Insert(ctx, "jobs", pri, v)
		}()
	}
	wg.Wait()

	valid := 0
	for i, err := range errs {
		if i%5 == 4 {
			var se *pqclient.ServerError
			if !errors.As(err, &se) {
				t.Errorf("bad insert %d: err = %v, want ServerError", i, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("valid insert %d fate-shared a batch error: %v", i, err)
			continue
		}
		valid++
	}
	if t.Failed() {
		t.FailNow()
	}

	seen := make(map[uint32]bool, valid)
	for {
		items, err := c.DeleteMinBatch(ctx, "jobs", 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(items) == 0 {
			break
		}
		for _, it := range items {
			id := binary.BigEndian.Uint32(it.Value)
			if seen[id] {
				t.Fatalf("item %d served twice", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != valid {
		t.Fatalf("drained %d items, want %d", len(seen), valid)
	}
}
