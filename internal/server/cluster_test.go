package server

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pq"
	"pq/internal/order"
	"pq/internal/wire"
	"pq/pqclient"
)

// startCluster runs n in-process servers sharing one queue spec and an
// even split of the priority space, installs the map on every node, and
// returns the map.
func startCluster(t *testing.T, n int, spec QueueSpec) (*wire.ClusterMap, []*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	addrs := make([]string, n)
	for i := range servers {
		cfg := Config{Concurrency: 8}
		if pq.IsRelaxed(spec.Algorithm) {
			cfg.AllowRelaxed = true
		}
		servers[i], addrs[i] = startServerCfg(t, cfg, spec)
	}
	m := evenClusterMap(1, spec.Priorities, addrs)
	for i, s := range servers {
		if err := s.SetClusterMap(m, addrs[i]); err != nil {
			t.Fatalf("SetClusterMap node %d: %v", i, err)
		}
	}
	return m, servers, addrs
}

// evenClusterMap splits [0,priorities) evenly across addrs in order.
func evenClusterMap(version uint64, priorities int, addrs []string) *wire.ClusterMap {
	n := len(addrs)
	m := &wire.ClusterMap{Version: version, Priorities: priorities}
	per := priorities / n
	for i, a := range addrs {
		lo := i * per
		hi := lo + per
		if i == n-1 {
			hi = priorities
		}
		m.Nodes = append(m.Nodes, wire.ClusterNode{Addr: a, Ranges: []wire.ClusterRange{{Lo: lo, Hi: hi}}})
	}
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return m
}

func dialCluster(t *testing.T, m *wire.ClusterMap, tweak ...func(*pqclient.ClusterConfig)) *pqclient.ClusterClient {
	t.Helper()
	cfg := pqclient.ClusterConfig{Map: m, RequestTimeout: 10 * time.Second, Rand: 1}
	for _, f := range tweak {
		f(&cfg)
	}
	cc, err := pqclient.DialCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc
}

// TestClusterMisrouteNACK drives a plain (cluster-unaware) client at
// the wrong node directly: an insert for a priority the node does not
// own is NACKed with WRONG_NODE naming the true owner, a misrouted
// batch is NACKed whole with nothing admitted, an out-of-range priority
// stays a plain server error (not a misroute), and DELETE_MIN is never
// ownership-checked.
func TestClusterMisrouteNACK(t *testing.T) {
	spec := QueueSpec{Name: "jobs", Algorithm: pq.SimpleTree, Priorities: 30}
	m, servers, addrs := startCluster(t, 3, spec)
	ctx := context.Background()

	// Node 0 owns [0,10). Priority 15 belongs to node 1.
	cl := dialClient(t, addrs[0])
	err := cl.Insert(ctx, "jobs", 15, []byte("misrouted"))
	var wn *pqclient.WrongNodeError
	if !errors.As(err, &wn) {
		t.Fatalf("misrouted insert: got %v, want WrongNodeError", err)
	}
	if wn.Owner != addrs[1] || wn.MapVersion != m.Version {
		t.Fatalf("WrongNodeError = %+v, want owner %s map v%d", wn, addrs[1], m.Version)
	}

	// An owned insert on the same connection still works.
	if err := cl.Insert(ctx, "jobs", 3, []byte("routed")); err != nil {
		t.Fatalf("owned insert after NACK: %v", err)
	}

	// Batch with one misrouted member: NACKed whole, nothing admitted.
	// (The pooled client resends coalesced batches solo, so send an
	// explicit batch.)
	n, err := cl.InsertBatch(ctx, "jobs", []pqclient.Item{
		{Pri: 4, Value: []byte("a")},
		{Pri: 25, Value: []byte("b")}, // node 2's range
	})
	if !errors.As(err, &wn) {
		t.Fatalf("misrouted batch: accepted=%d err=%v, want WrongNodeError", n, err)
	}
	if n != 0 {
		t.Fatalf("misrouted batch admitted %d items, want 0", n)
	}
	if st, _ := servers[0].QueueStats("jobs"); st.Size != 1 {
		t.Fatalf("node 0 size after NACKed batch = %d, want 1", st.Size)
	}

	// Out-of-range priority: plain server error, not a misroute.
	err = cl.Insert(ctx, "jobs", 30, []byte("oob"))
	var se *pqclient.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("out-of-range insert: got %v, want ServerError", err)
	}

	// DELETE_MIN serves whatever the node holds, ownership-free.
	it, ok, err := cl.DeleteMin(ctx, "jobs")
	if err != nil || !ok || it.Pri != 3 {
		t.Fatalf("DeleteMin on cluster node: it=%+v ok=%v err=%v", it, ok, err)
	}

	// Misroutes are counted and exported in the stats cluster block.
	st, _ := servers[0].QueueStats("jobs")
	if st.Cluster == nil {
		t.Fatal("cluster node stats missing cluster block")
	}
	if st.Cluster.Misroutes != 2 {
		t.Fatalf("misroutes = %d, want 2 (solo + batch)", st.Cluster.Misroutes)
	}
	if st.Cluster.Self != addrs[0] || st.Cluster.MapVersion != m.Version {
		t.Fatalf("cluster block identity: %+v", st.Cluster)
	}
}

// TestClusterClientRouting checks the cluster client sends every insert
// to its owner and merges delete-min across nodes.
func TestClusterClientRouting(t *testing.T) {
	spec := QueueSpec{Name: "jobs", Algorithm: pq.SimpleTree, Priorities: 30}
	_, servers, _ := startCluster(t, 3, spec)
	cc := dialCluster(t, mustMap(t, servers[0]))
	ctx := context.Background()

	for pri := 0; pri < 30; pri++ {
		if err := cc.Insert(ctx, "jobs", pri, []byte{byte(pri)}); err != nil {
			t.Fatalf("insert pri %d: %v", pri, err)
		}
	}
	// Each node holds exactly its band; no node saw a misroute.
	for i, s := range servers {
		st, _ := s.QueueStats("jobs")
		if st.Size != 10 {
			t.Fatalf("node %d size = %d, want 10", i, st.Size)
		}
		if st.Cluster.Misroutes != 0 {
			t.Fatalf("node %d misroutes = %d, want 0", i, st.Cluster.Misroutes)
		}
	}

	// Aggregate stats sum across nodes.
	st, err := cc.Stats(ctx, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 30 || st.Size != 30 {
		t.Fatalf("aggregate stats: inserts=%d size=%d, want 30/30", st.Inserts, st.Size)
	}

	// Batch spanning all three nodes: split per owner, all admitted.
	var batch []pqclient.Item
	for pri := 0; pri < 30; pri += 3 {
		batch = append(batch, pqclient.Item{Pri: pri, Value: []byte("b")})
	}
	if n, err := cc.InsertBatch(ctx, "jobs", batch); err != nil || n != len(batch) {
		t.Fatalf("spanning batch: accepted=%d err=%v, want %d", n, err, len(batch))
	}

	// DeleteMinBatch drains in global priority order.
	items, err := cc.DeleteMinBatch(ctx, "jobs", 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 40 {
		t.Fatalf("drained %d items, want 40", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Pri < items[i-1].Pri {
			t.Fatalf("drain out of order at %d: %d after %d", i, items[i].Pri, items[i-1].Pri)
		}
	}
	if cc.Stashed() != 0 {
		t.Fatalf("stash not empty after drain: %d", cc.Stashed())
	}
}

func mustMap(t *testing.T, s *Server) *wire.ClusterMap {
	t.Helper()
	m, _ := s.ClusterMap()
	if m == nil {
		t.Fatal("server has no cluster map")
	}
	return m
}

// TestClusterSingleNodeDegenerate pins the degenerate case: a one-node
// map routes everything to that node and behaves exactly like a plain
// client — no two-choice, no put-backs, no stash.
func TestClusterSingleNodeDegenerate(t *testing.T) {
	spec := QueueSpec{Name: "jobs", Algorithm: pq.SimpleTree, Priorities: 16}
	_, servers, _ := startCluster(t, 1, spec)
	cc := dialCluster(t, mustMap(t, servers[0]))
	ctx := context.Background()

	for i := 0; i < 50; i++ {
		if err := cc.Insert(ctx, "jobs", i%16, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	last := -1
	for i := 0; i < 50; i++ {
		it, ok, err := cc.DeleteMin(ctx, "jobs")
		if err != nil || !ok {
			t.Fatalf("pop %d: ok=%v err=%v", i, ok, err)
		}
		if it.Pri < last {
			t.Fatalf("single-node cluster broke strict order: %d after %d", it.Pri, last)
		}
		last = it.Pri
	}
	if _, ok, err := cc.DeleteMin(ctx, "jobs"); ok || err != nil {
		t.Fatalf("empty pop: ok=%v err=%v", ok, err)
	}
	if cc.Stashed() != 0 {
		t.Fatalf("single-node cluster stashed %d items", cc.Stashed())
	}
	st, _ := servers[0].QueueStats("jobs")
	if st.Cluster.Misroutes != 0 {
		t.Fatalf("single-node misroutes = %d", st.Cluster.Misroutes)
	}
}

// TestClusterMapVersionBump checks stale-map recovery end to end: a
// client bootstrapped with an obsolete v1 map (node A owns everything)
// inserts into what is now node B's range, gets WRONG_NODE carrying the
// v2 version from A, refreshes the map from A's stats, re-routes to B,
// and ends up holding v2.
func TestClusterMapVersionBump(t *testing.T) {
	spec := QueueSpec{Name: "jobs", Algorithm: pq.SimpleTree, Priorities: 20}
	srvA, addrA := startServerCfg(t, Config{Concurrency: 4}, spec)
	srvB, addrB := startServerCfg(t, Config{Concurrency: 4}, spec)

	// The deployed truth: v2, split ranges.
	m2 := evenClusterMap(2, 20, []string{addrA, addrB})
	if err := srvA.SetClusterMap(m2, addrA); err != nil {
		t.Fatal(err)
	}
	if err := srvB.SetClusterMap(m2, addrB); err != nil {
		t.Fatal(err)
	}

	// The client's stale view: v1, A owns everything.
	m1 := &wire.ClusterMap{Version: 1, Priorities: 20, Nodes: []wire.ClusterNode{
		{Addr: addrA, Ranges: []wire.ClusterRange{{Lo: 0, Hi: 20}}},
	}}
	cc := dialCluster(t, m1)
	ctx := context.Background()

	// Priority 15 is B's under v2; the stale client aims it at A.
	if err := cc.Insert(ctx, "jobs", 15, []byte("v")); err != nil {
		t.Fatalf("insert through stale map: %v", err)
	}
	if got := cc.MapVersion(); got != 2 {
		t.Fatalf("client map version after NACK = %d, want 2", got)
	}
	stB, _ := srvB.QueueStats("jobs")
	if stB.Size != 1 {
		t.Fatalf("node B size = %d, want the re-routed item", stB.Size)
	}
	stA, _ := srvA.QueueStats("jobs")
	if stA.Size != 0 {
		t.Fatalf("node A size = %d, want 0", stA.Size)
	}
	if stA.Cluster.Misroutes != 1 {
		t.Fatalf("node A misroutes = %d, want 1", stA.Cluster.Misroutes)
	}
}

// TestClusterExactlyOnceE2E hammers a 3-node cluster with concurrent
// cluster-client inserters and deleters, drains to empty, and proves
// every acked insert came back exactly once — across node boundaries,
// two-choice put-backs and the client stash. Run with -race.
func TestClusterExactlyOnceE2E(t *testing.T) {
	spec := QueueSpec{Name: "jobs", Algorithm: pq.FunnelTree, Priorities: 48, Shards: 2}
	_, servers, _ := startCluster(t, 3, spec)
	m := mustMap(t, servers[0])

	const (
		producers = 4
		consumers = 4
		perProd   = 300
	)
	ctx := context.Background()

	var (
		mu      sync.Mutex
		acked   = make(map[uint64]bool)
		got     = make(map[uint64]int)
		nextVal atomic.Uint64
		wg      sync.WaitGroup
		stop    atomic.Bool
	)
	val := func(v uint64) []byte {
		b := make([]byte, 8)
		for i := 0; i < 8; i++ {
			b[i] = byte(v >> (8 * i))
		}
		return b
	}
	unval := func(b []byte) uint64 {
		var v uint64
		for i := 0; i < 8; i++ {
			v |= uint64(b[i]) << (8 * i)
		}
		return v
	}

	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cc := dialCluster(t, m, func(c *pqclient.ClusterConfig) { c.Rand = int64(p) + 100 })
			for i := 0; i < perProd; i++ {
				v := nextVal.Add(1)
				if err := cc.Insert(ctx, "jobs", int(v%48), val(v)); err != nil {
					t.Errorf("producer %d insert: %v", p, err)
					return
				}
				mu.Lock()
				acked[v] = true
				mu.Unlock()
			}
		}(p)
	}

	consumerClients := make([]*pqclient.ClusterClient, consumers)
	for c := 0; c < consumers; c++ {
		consumerClients[c] = dialCluster(t, m, func(cc *pqclient.ClusterConfig) { cc.Rand = int64(c) + 200 })
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cc := consumerClients[c]
			for !stop.Load() {
				it, ok, err := cc.DeleteMin(ctx, "jobs")
				if err != nil {
					t.Errorf("consumer %d pop: %v", c, err)
					return
				}
				if !ok {
					time.Sleep(time.Millisecond)
					continue
				}
				mu.Lock()
				got[unval(it.Value)]++
				mu.Unlock()
			}
		}(c)
	}

	// Let producers finish, then signal consumers to stand down and
	// drain the remainder single-threaded through one cluster client.
	for nextVal.Load() < producers*perProd {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	drainer := dialCluster(t, m)
	for {
		items, err := drainer.DeleteMinBatch(ctx, "jobs", 256)
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
		if len(items) == 0 {
			break
		}
		mu.Lock()
		for _, it := range items {
			got[unval(it.Value)]++
		}
		mu.Unlock()
	}
	// Any items parked in consumer stashes count too.
	for c, cc := range consumerClients {
		for {
			items, err := cc.DeleteMinBatch(ctx, "jobs", 256)
			if err != nil {
				t.Fatalf("consumer %d stash drain: %v", c, err)
			}
			if len(items) == 0 {
				break
			}
			for _, it := range items {
				got[unval(it.Value)]++
			}
		}
	}

	if len(acked) != producers*perProd {
		t.Fatalf("acked %d inserts, want %d", len(acked), producers*perProd)
	}
	for v := range acked {
		switch got[v] {
		case 1:
		case 0:
			t.Errorf("acked item %d lost", v)
		default:
			t.Errorf("item %d delivered %d times", v, got[v])
		}
	}
	for v, n := range got {
		if !acked[v] {
			t.Errorf("alien item %d delivered %d times", v, n)
		}
	}
	// Cluster-wide conservation: aggregate inserts == deliveries.
	st, err := drainer.Stats(ctx, "jobs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size != 0 {
		t.Fatalf("aggregate size after full drain = %d, want 0", st.Size)
	}
}

// clusterPopHistory pops the cluster dry through pop, recording an
// order.Op per event against clock (a strictly increasing fake clock —
// the driver is single-threaded, so intervals are just [i, i+1)).
func clusterPopHistory(t *testing.T, history []order.Op, pop func() (pqclient.Item, bool, error)) []order.Op {
	t.Helper()
	now := int64(len(history)) * 2
	for {
		it, ok, err := pop()
		if err != nil {
			t.Fatalf("pop: %v", err)
		}
		op := order.Op{Kind: order.DeleteMin, Start: now, End: now + 1, OK: ok}
		now += 2
		if ok {
			op.Pri = it.Pri
			op.Val = uint64(it.Value[0]) | uint64(it.Value[1])<<8
		}
		history = append(history, op)
		if !ok {
			return history
		}
	}
}

// prefillStrictCluster builds a 3-node strict cluster, inserts k items
// into every node's band, and returns the insert history plus the map.
func prefillStrictCluster(t *testing.T, k int) ([]order.Op, *wire.ClusterMap) {
	t.Helper()
	spec := QueueSpec{Name: "jobs", Algorithm: pq.SimpleTree, Priorities: 30}
	_, servers, _ := startCluster(t, 3, spec)
	m := mustMap(t, servers[0])
	cc := dialCluster(t, m)
	ctx := context.Background()

	var history []order.Op
	val := uint64(0)
	now := int64(-2 * 3 * int64(k))
	for node := 0; node < 3; node++ {
		for i := 0; i < k; i++ {
			pri := node*10 + i%10
			val++
			b := []byte{byte(val), byte(val >> 8)}
			if err := cc.Insert(ctx, "jobs", pri, b); err != nil {
				t.Fatalf("prefill insert: %v", err)
			}
			history = append(history, order.Op{
				Kind: order.Insert, Pri: pri, Val: val, OK: true,
				Start: now, End: now + 1,
			})
			now += 2
		}
	}
	return history, m
}

// TestClusterTwoChoiceRankBounded proves the cluster client's
// two-choice delete-min keeps the rank error bounded on a 3-node strict
// cluster: the winner of two sampled node tops can overtake at most the
// occupancy of the one unsampled node, which never exceeds the per-node
// prefill k. The full history (prefill + pop-to-empty) must satisfy
// order.CheckRelaxed with MaxRank = k — uniqueness, precedence and
// emptiness exact, priority within the rank budget.
func TestClusterTwoChoiceRankBounded(t *testing.T) {
	const k = 40
	history, m := prefillStrictCluster(t, k)
	cc := dialCluster(t, m)
	ctx := context.Background()

	history = clusterPopHistory(t, history, func() (pqclient.Item, bool, error) {
		return cc.DeleteMin(ctx, "jobs")
	})

	pops := 0
	for _, op := range history {
		if op.Kind == order.DeleteMin && op.OK {
			pops++
		}
	}
	if pops != 3*k {
		t.Fatalf("popped %d items, want %d", pops, 3*k)
	}
	if vs := order.CheckRelaxed(history, order.RelaxedBound{MaxRank: k}); len(vs) != 0 {
		t.Fatalf("two-choice cluster pull violated rank bound %d:\n%v", k, vs[0])
	}
	if cc.Stashed() != 0 {
		t.Fatalf("stash not empty after popping dry: %d", cc.Stashed())
	}
}

// TestClusterNaiveSinglePullUnbounded is the must-fail companion: a
// naive client that drains nodes highest-band-first (node 2, then 1,
// then 0) produces rank errors of up to 2k — its very first pop
// overtakes every item on nodes 0 and 1 — so the same rank budget k
// that the two-choice client meets must be violated. This is the test
// that keeps the two-choice machinery honest: if CheckRelaxed ever
// stopped catching this, the passing test above would prove nothing.
func TestClusterNaiveSinglePullUnbounded(t *testing.T) {
	const k = 40
	history, m := prefillStrictCluster(t, k)

	// Naive pull: per-node plain clients, worst node first.
	ctx := context.Background()
	clients := make([]*pqclient.Client, len(m.Nodes))
	for i, n := range m.Nodes {
		c, err := pqclient.Dial(pqclient.Config{Addr: n.Addr, RequestTimeout: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients[i] = c
	}
	cur := len(clients) - 1
	history = clusterPopHistory(t, history, func() (pqclient.Item, bool, error) {
		for cur >= 0 {
			it, ok, err := clients[cur].DeleteMin(ctx, "jobs")
			if err != nil || ok {
				return it, ok, err
			}
			cur-- // this node is dry; move to the next-better band
		}
		return pqclient.Item{}, false, nil
	})

	vs := order.CheckRelaxed(history, order.RelaxedBound{MaxRank: k})
	if len(vs) == 0 {
		t.Fatalf("naive single-node pull passed rank bound %d; the checker lost its teeth", k)
	}
	for _, v := range vs {
		if v.Rule != "rank-error" {
			t.Fatalf("unexpected violation kind from naive pull: %v", v)
		}
	}
}

// TestCrossShardRankMerged is the regression test for the documented
// rank understatement of relaxed algorithms behind priority-range
// sharding: per-shard MultiQueues can't see better items living in
// other shards. The crossRank estimator must charge pops with the
// better-shard occupancy and relaxStats must merge those charges into
// the exported numbers. White-box: drives the estimator directly so
// the expected numbers are exact.
func TestCrossShardRankMerged(t *testing.T) {
	srv := New(Config{Concurrency: 4, AllowRelaxed: true})
	if err := srv.AddQueue(QueueSpec{Name: "mq", Algorithm: pq.MultiQueue, Priorities: 32, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	q := srv.queues["mq"]
	if q.rank == nil {
		t.Fatal("relaxed sharded queue has no cross-shard rank estimator")
	}

	// Exact and single-shard relaxed queues carry no estimator.
	if err := srv.AddQueue(QueueSpec{Name: "exact", Algorithm: pq.SimpleTree, Priorities: 32, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	if srv.queues["exact"].rank != nil {
		t.Fatal("exact queue grew a rank estimator")
	}
	if err := srv.AddQueue(QueueSpec{Name: "mq1", Algorithm: pq.MultiQueue, Priorities: 32}); err != nil {
		t.Fatal(err)
	}
	if srv.queues["mq1"].rank != nil {
		t.Fatal("single-shard relaxed queue grew a rank estimator")
	}

	base, ok := q.relaxStats()
	if !ok || !base.Tracked {
		t.Fatalf("relaxStats baseline: %+v ok=%v", base, ok)
	}

	// 5 items live in shard 0 (the best band) and 2 in shard 1. Three
	// pops served from shard 2 each overtake 5+2=7 definitely-better
	// items; one pop from shard 1 overtakes 5.
	q.occAdd(0, 5)
	q.occAdd(1, 2)
	q.rankRecord(2, 3)
	q.rankRecord(1, 1)

	rs, ok := q.relaxStats()
	if !ok {
		t.Fatal("relaxStats lost tracking")
	}
	wantSum := base.RankSum + 3*7 + 1*5
	if rs.RankSum != wantSum {
		t.Fatalf("merged RankSum = %d, want %d (cross-shard charges folded in)", rs.RankSum, wantSum)
	}
	if rs.RankMax < 7 {
		t.Fatalf("merged RankMax = %d, want >= 7", rs.RankMax)
	}

	// Popping shard 0 dry removes the better-band mass: later pops from
	// shard 2 are charged only shard 1's occupancy.
	q.rankPopped(0, 5)
	q.rankRecord(2, 1)
	rs2, _ := q.relaxStats()
	if got := rs2.RankSum - rs.RankSum; got != 2 {
		t.Fatalf("post-drain charge = %d, want 2 (only shard 1 remains better)", got)
	}

	// The estimator reaches the wire: stats v4 of a real traffic run
	// keeps RankSum >= the within-shard sum (never understates).
	for i := 0; i < 64; i++ {
		if st, err := q.insert(wire.Item{Pri: uint32(i % 32), Value: []byte{byte(i)}}); st != insOK || err != nil {
			t.Fatalf("insert: %v %v", st, err)
		}
	}
	for i := 0; i < 64; i++ {
		if _, ok, err := q.deleteMin(); !ok || err != nil {
			t.Fatalf("deleteMin %d: ok=%v err=%v", i, ok, err)
		}
	}
	within := int64(0)
	for _, sub := range q.shards {
		if srs, ok := pq.RelaxStatsOf(sub); ok {
			within += srs.RankSum
		}
	}
	final, _ := q.relaxStats()
	if final.RankSum < within {
		t.Fatalf("merged RankSum %d below within-shard sum %d", final.RankSum, within)
	}
}

// TestSetClusterMapValidation pins the map/queue compatibility rules:
// the self address must be in the map, every queue's priority space
// must match the map's, and AddQueue enforces the same check after the
// map is installed.
func TestSetClusterMapValidation(t *testing.T) {
	srv, addr := startServerCfg(t, Config{Concurrency: 4},
		QueueSpec{Name: "jobs", Algorithm: pq.SimpleTree, Priorities: 16})

	m := evenClusterMap(1, 16, []string{addr})
	if err := srv.SetClusterMap(m, "10.0.0.9:1"); err == nil {
		t.Fatal("SetClusterMap accepted a self address not in the map")
	}
	bad := evenClusterMap(1, 32, []string{addr})
	if err := srv.SetClusterMap(bad, addr); err == nil {
		t.Fatal("SetClusterMap accepted a map whose priority space mismatches the queue")
	}
	if err := srv.SetClusterMap(m, addr); err != nil {
		t.Fatal(err)
	}
	if err := srv.AddQueue(QueueSpec{Name: "other", Algorithm: pq.SimpleTree, Priorities: 8}); err == nil {
		t.Fatal("AddQueue accepted a queue mismatching the installed cluster map")
	}
	if err := srv.AddQueue(QueueSpec{Name: "other", Algorithm: pq.SimpleTree, Priorities: 16}); err != nil {
		t.Fatal(err)
	}
}
