package server

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"testing"

	"pq"
	"pq/internal/wire"
)

// BenchmarkServeLoopback measures the steady-state request→response
// path of the serving stack over a real loopback TCP connection. The
// driver speaks raw, pre-encoded wire frames (no client library, no
// per-op allocation on the driver side), so the reported allocs/op is
// the serving path's own budget: reader, decode, queue mutation,
// response encode, flush. `make bench-serve` gates on it staying at
// zero for the in-memory insert/delete-min path.
//
// Sub-benchmarks:
//
//	insert_delete   depth-2 pipeline (1 insert + 1 delete per iter)
//	pipelined16     depth-16 pipeline (8 inserts + 8 deletes per iter)
//	pipelined16_4k  same, with 4 KiB values (exercises the zero-copy
//	                large-value response path)
func BenchmarkServeLoopback(b *testing.B) {
	b.Run("insert_delete", func(b *testing.B) { benchServeLoopback(b, 1, 16) })
	b.Run("pipelined16", func(b *testing.B) { benchServeLoopback(b, 8, 16) })
	b.Run("pipelined16_4k", func(b *testing.B) { benchServeLoopback(b, 8, 4096) })
}

// benchServeLoopback drives pairs insert/delete pairs per iteration
// through one pipelined write, then reads all 2*pairs responses.
func benchServeLoopback(b *testing.B, pairs, valueSize int) {
	const (
		queue  = "bench"
		pris   = 64
		shards = 4
	)
	s := New(Config{Concurrency: 8})
	if err := s.AddQueue(QueueSpec{
		Name: queue, Algorithm: pq.FunnelTree, Priorities: pris, Shards: shards,
	}); err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	defer func() { s.Close(); <-done }()
	var addr net.Addr
	for addr = s.Addr(); addr == nil; addr = s.Addr() {
	}
	nc, err := net.Dial("tcp", addr.String())
	if err != nil {
		b.Fatal(err)
	}
	defer nc.Close()

	// Pre-encode the whole pipelined request batch once; only request
	// ids and priorities are patched in place per iteration.
	value := make([]byte, valueSize)
	for i := range value {
		value[i] = byte(i)
	}
	var batch []byte
	var idOffs, priOffs []int
	for p := 0; p < pairs; p++ {
		idOffs = append(idOffs, len(batch)+8)
		priOffs = append(priOffs, len(batch)+4+8+2+len(queue))
		batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TInsert,
			Payload: wire.Insert{Queue: queue, Item: wire.Item{Pri: 1, Value: value}}.Append(nil)})
		idOffs = append(idOffs, len(batch)+8)
		batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TDeleteMin,
			Payload: wire.QueueReq{Queue: queue}.Append(nil)})
	}

	br := bufio.NewReaderSize(nc, 256<<10)
	rr := benchRespReader{br: br, buf: make([]byte, wire.MaxFrame)}
	nextID := uint32(1)
	iter := func() {
		for p := 0; p < pairs; p++ {
			binary.BigEndian.PutUint32(batch[idOffs[2*p]:], nextID)
			binary.BigEndian.PutUint32(batch[priOffs[p]:], nextID%pris)
			binary.BigEndian.PutUint32(batch[idOffs[2*p+1]:], nextID+1)
			nextID += 2
		}
		if _, err := nc.Write(batch); err != nil {
			b.Fatal(err)
		}
		for p := 0; p < pairs; p++ {
			if t, _ := rr.next(b); t != wire.TInsertOK {
				b.Fatalf("insert response: got %v", t)
			}
			if t, _ := rr.next(b); t != wire.TItem {
				b.Fatalf("delete response: got %v", t)
			}
		}
	}

	// Warm the path (lazy pools, histograms, funnel records) before
	// measuring the steady state.
	for i := 0; i < 2000/pairs+16; i++ {
		iter()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		iter()
	}
	b.StopTimer()
	ops := float64(b.N) * float64(2*pairs)
	b.ReportMetric(ops/b.Elapsed().Seconds(), "ops/s")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/ops, "ns/req")
}

// benchRespReader reads one response frame into a fixed buffer without
// allocating.
type benchRespReader struct {
	br  *bufio.Reader
	hdr [12]byte
	buf []byte
}

func (rr *benchRespReader) next(b *testing.B) (wire.Type, uint32) {
	if _, err := io.ReadFull(rr.br, rr.hdr[:]); err != nil {
		b.Fatal(err)
	}
	n := binary.BigEndian.Uint32(rr.hdr[:4])
	if n < 8 || n > wire.MaxFrame {
		b.Fatalf("bad response length %d", n)
	}
	if n > 8 {
		if _, err := io.ReadFull(rr.br, rr.buf[:n-8]); err != nil {
			b.Fatal(err)
		}
	}
	return wire.Type(rr.hdr[5]), binary.BigEndian.Uint32(rr.hdr[8:12])
}
