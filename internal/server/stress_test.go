package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"testing"

	"pq"
	"pq/internal/wire"
)

// TestServeBufferOwnershipStress hammers the pooled-buffer serving path
// from several concurrent connections, each pipelining a randomized mix
// of inserts (small copied values and >= zeroCopyMin spliced ones),
// delete-mins, delete-min-batches, protocol errors, and bad-version
// resync frames. Every delivered value must match the deterministic
// pattern derived from its priority — a recycled-too-early request
// payload, response chunk, or queue envelope shows up as a corrupt or
// cross-wired value. Run under -race this is the ownership-discipline
// check for the zero-allocation path.
func TestServeBufferOwnershipStress(t *testing.T) {
	const (
		queue  = "stress"
		pris   = 64
		shards = 4
		conns  = 4
	)
	batches := 300
	if testing.Short() {
		batches = 80
	}

	s := New(Config{Concurrency: 8})
	if err := s.AddQueue(QueueSpec{
		Name: queue, Algorithm: pq.FunnelTree, Priorities: pris, Shards: shards,
		Capacity: 2048, // small enough that RETRY_AFTER sheds actually happen
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	defer func() { s.Close(); <-done }()
	var addr net.Addr
	for addr = s.Addr(); addr == nil; addr = s.Addr() {
	}

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if err := stressConn(addr.String(), queue, pris, batches, seed); err != nil {
				errs <- err
			}
		}(int64(c + 1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// stressValue fills the pattern every insert uses, so any reader can
// verify a delivered value knowing only its priority and length.
func stressValue(dst []byte, pri uint32) {
	for i := range dst {
		dst[i] = byte(uint32(i)*7 + pri*131)
	}
}

func checkStressValue(v []byte, pri uint32) error {
	for i := range v {
		if v[i] != byte(uint32(i)*7+pri*131) {
			return fmt.Errorf("value byte %d of %d corrupt for pri %d: got %#x want %#x",
				i, len(v), pri, v[i], byte(uint32(i)*7+pri*131))
		}
	}
	return nil
}

// request kinds the stress mix draws from.
const (
	reqInsert = iota // TInsertOK or TRetryAfter
	reqDelete        // TItem or TEmpty
	reqBatch         // TItems
	reqBadQueue
	reqBadPri
	reqBadVersion // resync: answered with TError, connection survives
)

func stressConn(addr, queue string, pris, batches int, seed int64) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer nc.Close()
	br := bufio.NewReaderSize(nc, 256<<10)
	rng := rand.New(rand.NewSource(seed))
	// Sizes straddle zeroCopyMin so both the memcpy and the splice
	// response paths run, interleaved on one connection.
	sizes := []int{8, 96, 700, zeroCopyMin, 2 * zeroCopyMin}
	scratch := make([]byte, 2*zeroCopyMin)
	respBuf := make([]byte, wire.MaxFrame)
	var hdr [12]byte

	nextID := uint32(0)
	var batch []byte
	var kinds []int
	for bi := 0; bi < batches; bi++ {
		batch = batch[:0]
		kinds = kinds[:0]
		depth := 8 + rng.Intn(17)
		for r := 0; r < depth; r++ {
			nextID++
			kind := reqInsert
			switch n := rng.Intn(100); {
			case n < 45: // insert
			case n < 80:
				kind = reqDelete
			case n < 88:
				kind = reqBatch
			case n < 92:
				kind = reqBadQueue
			case n < 96:
				kind = reqBadPri
			default:
				kind = reqBadVersion
			}
			kinds = append(kinds, kind)
			switch kind {
			case reqInsert:
				pri := uint32(rng.Intn(pris))
				v := scratch[:sizes[rng.Intn(len(sizes))]]
				stressValue(v, pri)
				batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TInsert, ID: nextID,
					Payload: wire.Insert{Queue: queue, Item: wire.Item{Pri: pri, Value: v}}.Append(nil)})
			case reqDelete:
				batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TDeleteMin, ID: nextID,
					Payload: wire.QueueReq{Queue: queue}.Append(nil)})
			case reqBatch:
				batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TDeleteMinBatch, ID: nextID,
					Payload: wire.DeleteMinBatch{Queue: queue, Max: uint32(1 + rng.Intn(8))}.Append(nil)})
			case reqBadQueue:
				batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TDeleteMin, ID: nextID,
					Payload: wire.QueueReq{Queue: "no-such-queue"}.Append(nil)})
			case reqBadPri:
				batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TInsert, ID: nextID,
					Payload: wire.Insert{Queue: queue, Item: wire.Item{Pri: uint32(pris + 7), Value: scratch[:8]}}.Append(nil)})
			case reqBadVersion:
				n0 := len(batch)
				batch = wire.AppendFrame(batch, wire.Frame{Type: wire.TDeleteMin, ID: nextID,
					Payload: wire.QueueReq{Queue: queue}.Append(nil)})
				batch[n0+4] = 99 // unsupported version: server resyncs + TError
			}
		}
		if _, err := nc.Write(batch); err != nil {
			return fmt.Errorf("batch %d: write: %w", bi, err)
		}
		firstID := nextID - uint32(depth) + 1
		for r := 0; r < depth; r++ {
			typ, id, payload, err := readResp(br, &hdr, respBuf)
			if err != nil {
				return fmt.Errorf("batch %d req %d: %w", bi, r, err)
			}
			if id != firstID+uint32(r) {
				return fmt.Errorf("batch %d req %d: response id %d, want %d (responses reordered?)",
					bi, r, id, firstID+uint32(r))
			}
			switch kinds[r] {
			case reqInsert:
				if typ != wire.TInsertOK && typ != wire.TRetryAfter {
					return fmt.Errorf("insert response: got %v", typ)
				}
			case reqDelete:
				switch typ {
				case wire.TEmpty:
				case wire.TItem:
					m, err := wire.DecodeItem(payload)
					if err != nil {
						return fmt.Errorf("bad ITEM: %w", err)
					}
					if err := checkStressValue(m.Value, m.Pri); err != nil {
						return fmt.Errorf("TItem: %w", err)
					}
				default:
					return fmt.Errorf("delete response: got %v", typ)
				}
			case reqBatch:
				if typ != wire.TItems {
					return fmt.Errorf("batch-delete response: got %v", typ)
				}
				m, err := wire.DecodeItems(payload)
				if err != nil {
					return fmt.Errorf("bad ITEMS: %w", err)
				}
				for i, it := range m.Items {
					if err := checkStressValue(it.Value, it.Pri); err != nil {
						return fmt.Errorf("TItems item %d/%d: %w", i, len(m.Items), err)
					}
				}
			case reqBadQueue, reqBadPri, reqBadVersion:
				if typ != wire.TError {
					return fmt.Errorf("error-case response: got %v", typ)
				}
			}
		}
	}
	return nil
}

// readResp reads one response frame into fixed buffers.
func readResp(br *bufio.Reader, hdr *[12]byte, buf []byte) (wire.Type, uint32, []byte, error) {
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 8 || n > wire.MaxFrame {
		return 0, 0, nil, fmt.Errorf("bad response length %d", n)
	}
	payload := buf[:n-8]
	if n > 8 {
		if _, err := io.ReadFull(br, payload); err != nil {
			return 0, 0, nil, err
		}
	}
	return wire.Type(hdr[5]), binary.BigEndian.Uint32(hdr[8:12]), payload, nil
}
