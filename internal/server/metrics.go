package server

import (
	"io"
	"sync/atomic"
	"time"

	"pq"
	"pq/internal/obs"
	"pq/internal/wire"
)

// Server-side observability (the ops counterpart of the simulator's
// cycle-accurate tracing): every request the server handles is timed
// and counted into lock-free striped structures (internal/obs), keyed
// by queue, operation, and shard. The recording path is allocation-
// free; Config.NoMetrics removes it entirely for overhead comparisons.
// The numbers surface three ways: the Prometheus /metrics endpoint
// (admin.go), the JSON /statusz snapshot, and the STATS op's
// stats_version 3 latency sections.

// qOp enumerates the request kinds recorded per queue.
type qOp int

const (
	opInsert qOp = iota
	opInsertBatch
	opDeleteMin
	opDeleteMinBatch
	opStats
	opDrain
	nQOps
)

var qOpNames = [nQOps]string{
	"insert", "insert_batch", "delete_min", "delete_min_batch", "stats", "drain",
}

// mutationOps are the ops with latency histograms (stats/drain are
// counted but not timed — they never touch the shards' hot path).
var mutationOps = [...]qOp{opInsert, opInsertBatch, opDeleteMin, opDeleteMinBatch}

// serverMetrics aggregates protocol- and connection-level series.
type serverMetrics struct {
	started       time.Time
	connsAccepted atomic.Int64
	connsActive   atomic.Int64
	framesRead    *obs.Counter
	framesWritten *obs.Counter
	bytesRead     *obs.Counter
	bytesWritten  *obs.Counter
	resyncs       *obs.Counter
	// flushes counts vectored response writes — with pipelining each
	// flush is one writev(2), so frames_written/flushes is the
	// syscall-batching factor the zero-alloc path is after.
	flushes *obs.Counter
	// pipelineDepth observes how many pipelined requests each
	// micro-batch flush covered — the server-side measure of client
	// pipelining actually achieved.
	pipelineDepth *obs.Histogram
}

func newServerMetrics(stripes int) *serverMetrics {
	return &serverMetrics{
		started:       time.Now(),
		framesRead:    obs.NewCounter(stripes),
		framesWritten: obs.NewCounter(stripes),
		bytesRead:     obs.NewCounter(stripes),
		bytesWritten:  obs.NewCounter(stripes),
		resyncs:       obs.NewCounter(stripes),
		flushes:       obs.NewCounter(stripes),
		pipelineDepth: obs.NewHistogram(stripes, 0, 12),
	}
}

// queueMetrics is one servedQueue's op series. Latency histograms time
// the queue operation itself (admission + WAL append + shard RMW), not
// decode or socket writes, so they separate queue cost from wire cost.
type queueMetrics struct {
	lat [nQOps]*obs.Histogram
	ops [nQOps]*obs.Counter
	// shardIns/shardDel count items routed to / delivered from each
	// priority-range shard; an imbalance here is the first sign a
	// workload's priority distribution defeats the range split.
	shardIns []atomic.Int64
	shardDel []atomic.Int64
	slowOps  atomic.Int64
}

func newQueueMetrics(stripes, shards int) *queueMetrics {
	m := &queueMetrics{
		shardIns: make([]atomic.Int64, shards),
		shardDel: make([]atomic.Int64, shards),
	}
	for op := qOp(0); op < nQOps; op++ {
		m.ops[op] = obs.NewCounter(stripes)
	}
	for _, op := range mutationOps {
		m.lat[op] = obs.NewLatencyHistogram(stripes)
	}
	return m
}

// distFromHist converts an obs snapshot into the wire schema's compact
// distribution summary.
func distFromHist(s obs.HistSnapshot) wire.Dist {
	return wire.Dist{
		Count: s.Count,
		Mean:  s.Mean(),
		P50:   s.Quantile(0.50),
		P90:   s.Quantile(0.90),
		P99:   s.Quantile(0.99),
	}
}

// latencyStats builds the STATS v3 latency section; nil when metrics
// are disabled.
func (q *servedQueue) latencyStats() *wire.ServerLatencyStats {
	m := q.met
	if m == nil {
		return nil
	}
	return &wire.ServerLatencyStats{
		Insert:         distFromHist(m.lat[opInsert].Snapshot()),
		InsertBatch:    distFromHist(m.lat[opInsertBatch].Snapshot()),
		DeleteMin:      distFromHist(m.lat[opDeleteMin].Snapshot()),
		DeleteMinBatch: distFromHist(m.lat[opDeleteMinBatch].Snapshot()),
	}
}

// writeProm renders every metric family in Prometheus text format.
// Families are emitted family-outer, queue-inner, as the exposition
// format requires.
func (s *Server) writeProm(w io.Writer) error {
	p := obs.NewPromWriter(w)
	m := s.met

	s.mu.RLock()
	queues := make([]*servedQueue, 0, len(s.queues))
	for _, q := range s.queues {
		queues = append(queues, q)
	}
	s.mu.RUnlock()

	p.Header("pq_uptime_seconds", "gauge", "Seconds since the server started.")
	p.Sample("pq_uptime_seconds", "", time.Since(m.started).Seconds())
	p.Header("pq_connections_accepted_total", "counter", "TCP connections accepted.")
	p.Sample("pq_connections_accepted_total", "", float64(m.connsAccepted.Load()))
	p.Header("pq_connections_active", "gauge", "Currently open connections.")
	p.Sample("pq_connections_active", "", float64(m.connsActive.Load()))
	p.Header("pq_frames_read_total", "counter", "Request frames decoded.")
	p.Sample("pq_frames_read_total", "", float64(m.framesRead.Load()))
	p.Header("pq_frames_written_total", "counter", "Response frames written.")
	p.Sample("pq_frames_written_total", "", float64(m.framesWritten.Load()))
	p.Header("pq_bytes_read_total", "counter", "Bytes read from connections.")
	p.Sample("pq_bytes_read_total", "", float64(m.bytesRead.Load()))
	p.Header("pq_bytes_written_total", "counter", "Bytes written to connections.")
	p.Sample("pq_bytes_written_total", "", float64(m.bytesWritten.Load()))
	p.Header("pq_frame_resyncs_total", "counter", "Recoverable bad-version/bad-flags frames answered with ERROR.")
	p.Sample("pq_frame_resyncs_total", "", float64(m.resyncs.Load()))
	p.Header("pq_response_flushes_total", "counter", "Vectored response flushes (one writev per flush).")
	p.Sample("pq_response_flushes_total", "", float64(m.flushes.Load()))
	p.Header("pq_pipeline_depth", "histogram", "Pipelined requests handled per response flush.")
	p.Histogram("pq_pipeline_depth", "", m.pipelineDepth.Snapshot(), 1)

	p.Header("pq_queue_ops_total", "counter", "Requests handled, by queue and operation.")
	for _, q := range queues {
		if q.met == nil {
			continue
		}
		for op := qOp(0); op < nQOps; op++ {
			p.Sample("pq_queue_ops_total",
				obs.Labels(map[string]string{"queue": q.spec.Name, "op": qOpNames[op]}),
				float64(q.met.ops[op].Load()))
		}
	}
	p.Header("pq_queue_op_latency_seconds", "histogram", "Server-side op service time (queue mutation only, excludes decode and socket writes).")
	for _, q := range queues {
		if q.met == nil {
			continue
		}
		for _, op := range mutationOps {
			p.Histogram("pq_queue_op_latency_seconds",
				obs.Labels(map[string]string{"queue": q.spec.Name, "op": qOpNames[op]}),
				q.met.lat[op].Snapshot(), 1e-9)
		}
	}
	p.Header("pq_queue_slow_ops_total", "counter", "Ops that exceeded the slow-op log threshold.")
	for _, q := range queues {
		if q.met == nil {
			continue
		}
		p.Sample("pq_queue_slow_ops_total",
			obs.Labels(map[string]string{"queue": q.spec.Name}), float64(q.met.slowOps.Load()))
	}

	type gauge struct {
		name, typ, help string
		val             func(*servedQueue) float64
	}
	for _, g := range []gauge{
		{"pq_queue_inserts_total", "counter", "Items admitted.", func(q *servedQueue) float64 { return float64(q.inserts.Load()) }},
		{"pq_queue_deletes_total", "counter", "Items delivered by delete-min.", func(q *servedQueue) float64 { return float64(q.deletes.Load()) }},
		{"pq_queue_empty_deletes_total", "counter", "Delete-mins that found the queue (apparently) empty.", func(q *servedQueue) float64 { return float64(q.emptyDeletes.Load()) }},
		{"pq_queue_shed_total", "counter", "Items shed by admission control or drain (RETRY_AFTER).", func(q *servedQueue) float64 { return float64(q.retryAfter.Load()) }},
		{"pq_queue_errors_total", "counter", "Mutations refused with a durability error.", func(q *servedQueue) float64 { return float64(q.durErrors.Load()) }},
		{"pq_queue_size", "gauge", "Approximate queued items (inserts - deletes).", func(q *servedQueue) float64 { return float64(q.size()) }},
		{"pq_queue_capacity", "gauge", "Admission bound (0 = unbounded).", func(q *servedQueue) float64 { return float64(q.spec.Capacity) }},
		{"pq_queue_draining", "gauge", "1 while the queue sheds inserts for drain.", func(q *servedQueue) float64 { return b2f(q.draining.Load()) }},
		{"pq_queue_relaxed", "gauge", "1 when the backing algorithm relaxes delete-min ordering (Config.AllowRelaxed).", func(q *servedQueue) float64 { return b2f(q.relaxed()) }},
	} {
		p.Header(g.name, g.typ, g.help)
		for _, q := range queues {
			p.Sample(g.name, obs.Labels(map[string]string{"queue": q.spec.Name}), g.val(q))
		}
	}

	// Rank-error families: only relaxed queues emit them. Rank is the
	// number of strictly better items present when an item was popped,
	// measured per shard (see servedQueue.relaxStats).
	type rankPoint struct {
		q  *servedQueue
		rs pq.RelaxStats
	}
	var rankQueues []rankPoint
	for _, q := range queues {
		if rs, ok := q.relaxStats(); ok && rs.Tracked {
			rankQueues = append(rankQueues, rankPoint{q, rs})
		}
	}
	if len(rankQueues) > 0 {
		for _, g := range []struct {
			name, typ, help string
			val             func(pq.RelaxStats) float64
		}{
			{"pq_queue_rank_error_pops_total", "counter", "Pops with rank-error accounting.", func(rs pq.RelaxStats) float64 { return float64(rs.Pops) }},
			{"pq_queue_rank_error_mean", "gauge", "Mean rank error over all pops.", func(rs pq.RelaxStats) float64 { return rs.Mean() }},
			{"pq_queue_rank_error_p50", "gauge", "Median rank error.", func(rs pq.RelaxStats) float64 { return rs.Quantile(0.50) }},
			{"pq_queue_rank_error_p99", "gauge", "99th-percentile rank error.", func(rs pq.RelaxStats) float64 { return rs.Quantile(0.99) }},
			{"pq_queue_rank_error_max", "gauge", "Worst rank error observed.", func(rs pq.RelaxStats) float64 { return float64(rs.RankMax) }},
		} {
			p.Header(g.name, g.typ, g.help)
			for _, rp := range rankQueues {
				p.Sample(g.name, obs.Labels(map[string]string{"queue": rp.q.spec.Name}), g.val(rp.rs))
			}
		}
	}

	if cl := s.cluster.Load(); cl != nil {
		p.Header("pq_cluster_map_version", "gauge", "Version of the active cluster map.")
		p.Sample("pq_cluster_map_version", "", float64(cl.m.Version))
		p.Header("pq_cluster_nodes", "gauge", "Nodes in the active cluster map.")
		p.Sample("pq_cluster_nodes", "", float64(len(cl.m.Nodes)))
		p.Header("pq_cluster_misroutes_total", "counter", "Inserts NACKed with WRONG_NODE (priority owned by another node).")
		p.Sample("pq_cluster_misroutes_total", "", float64(cl.misroutes.Load()))
	}

	p.Header("pq_queue_shard_inserts_total", "counter", "Items routed to each priority-range shard.")
	p.Header("pq_queue_shard_deletes_total", "counter", "Items delivered from each priority-range shard.")
	for _, q := range queues {
		if q.met == nil {
			continue
		}
		for si := range q.met.shardIns {
			lbl := obs.Labels(map[string]string{"queue": q.spec.Name, "shard": itoa(si)})
			p.Sample("pq_queue_shard_inserts_total", lbl, float64(q.met.shardIns[si].Load()))
			p.Sample("pq_queue_shard_deletes_total", lbl, float64(q.met.shardDel[si].Load()))
		}
	}

	// WAL families: only queues with a log attached emit them.
	type walGauge struct {
		name, typ, help string
		val             func(*servedQueue) float64
	}
	walQueues := queues[:0:0]
	for _, q := range queues {
		if q.wal != nil {
			walQueues = append(walQueues, q)
		}
	}
	if len(walQueues) > 0 {
		for _, g := range []walGauge{
			{"pq_wal_appends_total", "counter", "Log records appended.", func(q *servedQueue) float64 { return float64(q.wal.Stats().Appends) }},
			{"pq_wal_fsyncs_total", "counter", "fsync(2) calls (appends/fsyncs is the group-commit factor).", func(q *servedQueue) float64 { return float64(q.wal.Stats().Syncs) }},
			{"pq_wal_snapshots_total", "counter", "Snapshots taken.", func(q *servedQueue) float64 { return float64(q.wal.Stats().Snapshots) }},
			{"pq_wal_bytes", "gauge", "Live log bytes on disk.", func(q *servedQueue) float64 { return float64(q.wal.Stats().WALBytes) }},
			{"pq_wal_segments", "gauge", "Live log segments.", func(q *servedQueue) float64 { return float64(q.wal.Stats().Segments) }},
			{"pq_wal_records_since_snapshot", "gauge", "Replay tail a crash right now would cost.", func(q *servedQueue) float64 { return float64(q.wal.Stats().RecordsSinceSnapshot) }},
			{"pq_wal_last_lsn", "gauge", "Newest appended record.", func(q *servedQueue) float64 { return float64(q.wal.Stats().LastLSN) }},
			{"pq_wal_snapshot_lsn", "gauge", "Newest snapshot-covered record.", func(q *servedQueue) float64 { return float64(q.wal.Stats().SnapshotLSN) }},
			{"pq_wal_poisoned", "gauge", "1 after a write/fsync failure poisoned the log (queue refuses mutations).", func(q *servedQueue) float64 { return b2f(q.wal.Stats().Failed) }},
		} {
			p.Header(g.name, g.typ, g.help)
			for _, q := range walQueues {
				p.Sample(g.name, obs.Labels(map[string]string{"queue": q.spec.Name}), g.val(q))
			}
		}
		p.Header("pq_wal_fsync_duration_seconds", "histogram", "fsync(2) wall time.")
		for _, q := range walQueues {
			if q.walMet == nil {
				continue
			}
			p.Histogram("pq_wal_fsync_duration_seconds",
				obs.Labels(map[string]string{"queue": q.spec.Name}), q.walMet.FsyncNanos.Snapshot(), 1e-9)
		}
		p.Header("pq_wal_group_commit_records", "histogram", "Appended records made durable per fsync.")
		for _, q := range walQueues {
			if q.walMet == nil {
				continue
			}
			p.Histogram("pq_wal_group_commit_records",
				obs.Labels(map[string]string{"queue": q.spec.Name}), q.walMet.CommitRecords.Snapshot(), 1)
		}
	}
	return p.Err()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// itoa avoids strconv in the scrape path's import set growing beyond
// what's needed (small non-negative ints only).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
