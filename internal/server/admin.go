package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"time"
	"unicode"

	"pq/internal/wire"
)

// Admin endpoint: a plain net/http handler the daemon mounts on a
// separate listener (-admin-addr), deliberately not speaking the frame
// protocol so standard ops tooling works against it unmodified:
//
//	/metrics       Prometheus text exposition of every serving metric
//	/healthz       liveness — 200 as soon as the process can answer
//	/readyz        readiness — 503 until serving and WAL-healthy
//	/statusz       human/JSON status: server info + per-queue stats
//	/debug/pprof/  the standard Go profiling handlers
//
// The split between healthz and readyz is the conventional one:
// liveness says "don't restart me", readiness says "send me traffic".
// During WAL replay the daemon answers /healthz but holds /readyz at
// 503; after a poisoned WAL it keeps answering /healthz (the process
// is fine, restarting loses nothing but doesn't help either) while
// /readyz reports the failed queue.

// Ready reports nil when the server should receive traffic: it is
// accepting connections, not shutting down, and no durable queue's WAL
// has been poisoned by a write/fsync failure.
func (s *Server) Ready() error {
	if s.shutdown.Load() {
		return errors.New("shutting down")
	}
	if s.Addr() == nil {
		return errors.New("not serving yet")
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, q := range s.queues {
		if q.wal != nil && q.wal.Stats().Failed {
			return fmt.Errorf("queue %q: WAL poisoned, mutations refused", q.spec.Name)
		}
	}
	return nil
}

// AdminHandler returns the admin HTTP handler. It is safe to mount
// before the frame listener is up: /healthz already answers 200 and
// /readyz 503 while queues are still replaying their logs.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := s.Ready(); err != nil {
			http.Error(w, "not ready: "+err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.writeProm(w); err != nil {
		// Headers are gone; all we can do is log.
		s.cfg.Logger.Warn("metrics scrape failed", "err", err)
	}
}

// statuszDoc is the /statusz JSON shape.
type statuszDoc struct {
	Addr         string   `json:"addr,omitempty"`
	Uptime       string   `json:"uptime"`
	GoVersion    string   `json:"go_version"`
	NumGoroutine int      `json:"num_goroutine"`
	ConnsActive  int64    `json:"conns_active"`
	Ready        bool     `json:"ready"`
	ReadyErr     string   `json:"ready_err,omitempty"`
	// Cluster is present when the server runs with a cluster map: the
	// full versioned map, this node's identity, and its misroute count.
	Cluster *wire.ClusterStats `json:"cluster,omitempty"`
	Queues  []quStat           `json:"queues"`
}

type quStat struct {
	wire.QueueStats
	SlowOps int64         `json:"slow_ops,omitempty"`
	Items   []itemPreview `json:"items,omitempty"`
}

// itemPreview is one peeked item: priority, size, and a printable
// prefix of the value (values are arbitrary bytes).
type itemPreview struct {
	Pri   uint32 `json:"pri"`
	Bytes int    `json:"bytes"`
	Value string `json:"value"`
}

func previewValue(v []byte) string {
	const max = 48
	trunc := len(v) > max
	if trunc {
		v = v[:max]
	}
	out := make([]rune, 0, len(v))
	for _, b := range v {
		r := rune(b)
		if b < 0x80 && (unicode.IsPrint(r)) {
			out = append(out, r)
		} else {
			out = append(out, '.')
		}
	}
	if trunc {
		out = append(out, '…')
	}
	return string(out)
}

// handleStatusz serves the JSON status snapshot. ?items=N additionally
// peeks the N most urgent items of every queue (non-destructively).
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	items := 0
	if v := r.URL.Query().Get("items"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > 1000 {
			http.Error(w, "bad items: want an integer in [0,1000]", http.StatusBadRequest)
			return
		}
		items = n
	}
	doc := statuszDoc{
		Uptime:       time.Since(s.met.started).Round(time.Millisecond).String(),
		GoVersion:    runtime.Version(),
		NumGoroutine: runtime.NumGoroutine(),
		ConnsActive:  s.met.connsActive.Load(),
	}
	if a := s.Addr(); a != nil {
		doc.Addr = a.String()
	}
	if err := s.Ready(); err != nil {
		doc.ReadyErr = err.Error()
	} else {
		doc.Ready = true
	}
	doc.Cluster = s.clusterStats()
	s.mu.RLock()
	queues := make([]*servedQueue, 0, len(s.queues))
	for _, q := range s.queues {
		queues = append(queues, q)
	}
	s.mu.RUnlock()
	sort.Slice(queues, func(i, j int) bool { return queues[i].spec.Name < queues[j].spec.Name })
	for _, q := range queues {
		qs := quStat{QueueStats: q.stats()}
		if q.met != nil {
			qs.SlowOps = q.met.slowOps.Load()
		}
		for _, it := range q.peek(items) {
			qs.Items = append(qs.Items, itemPreview{
				Pri: it.Pri, Bytes: len(it.Value), Value: previewValue(it.Value)})
		}
		doc.Queues = append(doc.Queues, qs)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
