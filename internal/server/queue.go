package server

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"pq"
	"pq/internal/obs"
	"pq/internal/wal"
	"pq/internal/wire"
)

// QueueSpec describes one served queue.
type QueueSpec struct {
	// Name addresses the queue in every request frame.
	Name string
	// Algorithm selects the backing implementation (any pq.Algorithm).
	Algorithm pq.Algorithm
	// Priorities is the queue's fixed priority range.
	Priorities int
	// Shards splits the priority range across that many independent
	// sub-queues: shard i serves priorities [i·P/S, (i+1)·P/S).
	// Delete-min scans shards in priority order, so cross-shard
	// ordering is preserved between quiescent points while contention
	// on any single structure drops by ~S. 0 or 1 means unsharded;
	// values above Priorities are clamped.
	Shards int
	// Capacity bounds the number of queued items. Inserts beyond it
	// are shed with RETRY_AFTER instead of queueing unboundedly; the
	// bound is enforced by the paper's bounded fetch-and-decrement
	// counter used as an admission semaphore, so it is approximate
	// while operations are in flight. 0 means unbounded.
	Capacity int64
}

func (spec *QueueSpec) validate() error {
	if spec.Name == "" {
		return fmt.Errorf("server: queue name must be non-empty")
	}
	if spec.Priorities < 1 {
		return fmt.Errorf("server: queue %q: Priorities must be >= 1, got %d", spec.Name, spec.Priorities)
	}
	if spec.Capacity < 0 {
		return fmt.Errorf("server: queue %q: Capacity must be >= 0, got %d", spec.Name, spec.Capacity)
	}
	if spec.Shards < 0 {
		return fmt.Errorf("server: queue %q: Shards must be >= 0, got %d", spec.Name, spec.Shards)
	}
	if spec.Shards == 0 {
		spec.Shards = 1
	}
	if spec.Shards > spec.Priorities {
		spec.Shards = spec.Priorities
	}
	return nil
}

// servedQueue is one registry entry: the sharded backing queues, the
// admission counter, and serving counters.
type servedQueue struct {
	spec   QueueSpec
	shards []pq.Queue[[]byte]
	bases  []int // len Shards+1; shard i serves priorities [bases[i], bases[i+1])

	// admit is the bounded fetch-and-decrement counter of the paper's
	// Section 3.3 used as an admission semaphore: BFaI on insert (a
	// return equal to Capacity means "full", shed), FaD on successful
	// delete-min. nil when Capacity is 0. admitOverflow counts recovered
	// items beyond Capacity that the clamped counter could not book
	// (attachWAL); pops burn this debt before freeing counter slots.
	admit         *pq.Counter
	admitOverflow atomic.Int64
	draining      atomic.Bool

	// wal, when non-nil, makes the queue durable (see durable.go).
	// tagLen is the per-value tag prefix: 4 (priority) in memory, 12
	// (priority + durable id) with a WAL. durMu lets snapshots quiesce
	// the durable operation paths; snapEvery triggers automatic
	// snapshots every that many log records.
	wal        *wal.Log
	tagLen     int
	snapEvery  int
	durMu      sync.RWMutex
	snapActive atomic.Bool

	inserts      atomic.Int64
	deletes      atomic.Int64
	emptyDeletes atomic.Int64
	retryAfter   atomic.Int64
	durErrors    atomic.Int64

	// met holds the per-op latency histograms and shard counters; nil
	// when the server runs with Config.NoMetrics. walMet, when non-nil,
	// is the instrumentation hook handed to the queue's WAL.
	met    *queueMetrics
	walMet *obs.WALMetrics

	// rank is the cross-shard rank-error estimator, allocated only for
	// relaxed algorithms behind priority-range sharding (see crossRank).
	rank *crossRank
}

// crossRank corrects the documented understatement of per-shard rank
// accounting behind sharding: a relaxed shard's RelaxStats only counts
// strictly-better items *within its own priority band*, so when a
// MultiQueue shard spuriously declines under TryLock contention and
// the scan falls through to a later shard, the items still queued in
// earlier (strictly better) bands go uncounted. The estimator tracks
// approximate live occupancy per shard and, at each pop served from
// shard s, charges the pop with the occupancy of shards < s — zero
// whenever the scan found earlier shards genuinely empty, so an exact
// scan contributes nothing. Occupancy is maintained with relaxed
// atomics and read without synchronization, so the correction is an
// estimate (exactly right at quiescence), matching the quiescent
// consistency of the counters it merges into.
type crossRank struct {
	occ  []atomic.Int64 // live items per shard (approximate in flight)
	pops atomic.Int64   // pops charged with a cross-shard extra (incl. zero)
	sum  atomic.Int64   // total cross-shard extra over those pops
	max  atomic.Int64   // worst single-pop cross-shard extra
}

// occAdd books n items into shard's occupancy (negative n removes).
func (q *servedQueue) occAdd(shard, n int) {
	if q.rank != nil && n != 0 {
		q.rank.occ[shard].Add(int64(n))
	}
}

// extraBelow sums the live occupancy of shards strictly better than
// shard — the definitely-better items a per-shard rank cannot see.
func (r *crossRank) extraBelow(shard int) int64 {
	var x int64
	for j := 0; j < shard; j++ {
		if n := r.occ[j].Load(); n > 0 {
			x += n
		}
	}
	return x
}

// rankRecord charges n pops served from shard with the current
// better-band occupancy, without touching occupancy itself (for
// callers that account occupancy separately, like the batch paths).
func (q *servedQueue) rankRecord(shard, n int) {
	r := q.rank
	if r == nil || n <= 0 {
		return
	}
	extra := r.extraBelow(shard)
	r.pops.Add(int64(n))
	if extra == 0 {
		return
	}
	r.sum.Add(extra * int64(n))
	for {
		cur := r.max.Load()
		if extra <= cur || r.max.CompareAndSwap(cur, extra) {
			return
		}
	}
}

// rankPopped records n pops served from shard and removes them from
// its occupancy, charging each with the current better-band occupancy.
func (q *servedQueue) rankPopped(shard, n int) {
	if q.rank == nil || n <= 0 {
		return
	}
	q.rankRecord(shard, n)
	q.rank.occ[shard].Add(int64(-n))
}

func newServedQueue(spec QueueSpec, concurrency int) (*servedQueue, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	q := &servedQueue{spec: spec, tagLen: 4}
	q.bases = make([]int, spec.Shards+1)
	for i := 0; i <= spec.Shards; i++ {
		q.bases[i] = i * spec.Priorities / spec.Shards
	}
	for i := 0; i < spec.Shards; i++ {
		sub, err := pq.New[[]byte](spec.Algorithm, q.bases[i+1]-q.bases[i],
			pq.WithConcurrency(concurrency))
		if err != nil {
			return nil, fmt.Errorf("server: queue %q: %w", spec.Name, err)
		}
		q.shards = append(q.shards, sub)
	}
	if spec.Capacity > 0 {
		q.admit = pq.NewCounterBounds(0, 0, spec.Capacity,
			pq.WithConcurrency(concurrency))
	}
	if pq.IsRelaxed(spec.Algorithm) && spec.Shards > 1 {
		q.rank = &crossRank{occ: make([]atomic.Int64, spec.Shards)}
	}
	return q, nil
}

// shardFor maps a global priority to its shard index.
func (q *servedQueue) shardFor(pri int) int {
	if len(q.shards) == 1 {
		return 0
	}
	// bases is ascending; find the last base <= pri. Hand-rolled binary
	// search: sort.Search takes a closure, which escapes on this path.
	lo, hi := 0, len(q.bases)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if q.bases[mid] <= pri {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// insertStatus reports how one insert resolved.
type insertStatus int

const (
	insOK   insertStatus = iota // admitted
	insShed                     // shed by admission control or drain
	insBad                      // priority out of range (protocol error)
	insErr                      // durability failure (TError, not shed)
)

// insert admits and stores one item. Values are stored with a 4-byte
// global-priority tag so deleteMin can report the priority it served
// (the native queues only return the value). The envelope comes from
// the wire buffer pool — it.Value may alias a request payload that is
// recycled the moment this returns, so the copy here is load-bearing.
func (q *servedQueue) insert(it wire.Item) (insertStatus, error) {
	if q.wal != nil {
		return q.insertDurable(it)
	}
	pri := int(it.Pri)
	if pri < 0 || pri >= q.spec.Priorities {
		return insBad, nil
	}
	if q.draining.Load() {
		q.retryAfter.Add(1)
		return insShed, nil
	}
	if q.admit != nil {
		if prev := q.admit.BFaI(); prev >= q.spec.Capacity {
			q.retryAfter.Add(1)
			return insShed, nil
		}
	}
	tagged := wire.GetBuf(4 + len(it.Value))
	tagged = binary.BigEndian.AppendUint32(tagged, it.Pri)
	tagged = append(tagged, it.Value...)
	s := q.shardFor(pri)
	q.shards[s].Insert(pri-q.bases[s], tagged)
	q.inserts.Add(1)
	q.noteShardIns(s, 1)
	q.occAdd(s, 1)
	return insOK, nil
}

// noteShardIns / noteShardDel feed the per-shard routing counters; both
// are no-ops when metrics are off.
func (q *servedQueue) noteShardIns(shard, n int) {
	if q.met != nil && n > 0 {
		q.met.shardIns[shard].Add(int64(n))
	}
}

func (q *servedQueue) noteShardDel(shard, n int) {
	if q.met != nil && n > 0 {
		q.met.shardDel[shard].Add(int64(n))
	}
}

// popRaw removes the most urgent tagged entry from the shards without
// touching the admission counter or serving stats, reporting which
// shard served it; callers either commit the removal with popCommit or
// undo it with putBack.
func (q *servedQueue) popRaw() ([]byte, int, bool) {
	for si, sub := range q.shards {
		if v, ok := sub.DeleteMin(); ok {
			q.rankPopped(si, 1)
			return v, si, true
		}
	}
	return nil, 0, false
}

// putBack returns an entry taken by popRaw to its shard. Since popRaw
// touched nothing but the shard, this fully reverses it — shards have
// no capacity bound, so putBack cannot fail or be shed.
func (q *servedQueue) putBack(tagged []byte) {
	pri := int(binary.BigEndian.Uint32(tagged))
	s := q.shardFor(pri)
	q.shards[s].Insert(pri-q.bases[s], tagged)
	q.occAdd(s, 1)
}

// consumeOverflow takes up to n units of the recovered-beyond-capacity
// debt, returning how many it took. While the debt is positive the
// admission counter stays pinned at Capacity, so inserts keep shedding
// until real occupancy is back under the bound.
func (q *servedQueue) consumeOverflow(n int64) int64 {
	for {
		cur := q.admitOverflow.Load()
		if cur <= 0 {
			return 0
		}
		take := n
		if take > cur {
			take = cur
		}
		if q.admitOverflow.CompareAndSwap(cur, cur-take) {
			return take
		}
	}
}

// popCommit records a popRaw whose item will be delivered: free the
// admission slot and count the delete.
func (q *servedQueue) popCommit() {
	if q.admit != nil && q.consumeOverflow(1) == 0 {
		q.admit.FaD()
	}
	q.deletes.Add(1)
}

// deleteMinEnv scans shards in priority order and removes the most
// urgent item found, returning its raw tagged envelope (layout: 4-byte
// priority, then tagLen-4 durable bytes, then the value). Ownership of
// the envelope — a pooled buffer — transfers to the caller, which must
// wire.PutBuf it once the bytes are no longer referenced.
func (q *servedQueue) deleteMinEnv() ([]byte, bool, error) {
	if q.wal != nil {
		return q.deleteMinEnvDurable()
	}
	v, si, ok := q.popRaw()
	if !ok {
		q.emptyDeletes.Add(1)
		return nil, false, nil
	}
	q.popCommit()
	q.noteShardDel(si, 1)
	return v, true, nil
}

// deleteMin is the copying convenience over deleteMinEnv: the returned
// Item owns its value (tests and non-hot-path callers use this).
func (q *servedQueue) deleteMin() (wire.Item, bool, error) {
	env, ok, err := q.deleteMinEnv()
	if err != nil || !ok {
		return wire.Item{}, ok, err
	}
	it := wire.Item{
		Pri:   binary.BigEndian.Uint32(env),
		Value: append([]byte(nil), env[q.tagLen:]...),
	}
	wire.PutBuf(env)
	return it, true, nil
}

// insertBatch admits and stores a whole batch: one multi-unit bounded
// increment reserves admission slots for the accepted prefix, and each
// shard receives its share through the queues' native InsertBatch fast
// path. Priorities must already be validated (the frame handler checks
// the whole batch up front). It reports how many items were accepted;
// the remainder were shed.
func (q *servedQueue) insertBatch(items []wire.Item) (int, error) {
	if q.wal != nil {
		return q.insertBatchDurable(items)
	}
	if len(items) == 0 {
		return 0, nil
	}
	if q.draining.Load() {
		q.retryAfter.Add(int64(len(items)))
		return 0, nil
	}
	accepted := len(items)
	if q.admit != nil {
		// AddN clamps at Capacity and returns the previous value, so the
		// grant is exactly the slots the counter actually took.
		prev := q.admit.AddN(int64(len(items)))
		granted := q.spec.Capacity - prev
		if granted < 0 {
			granted = 0
		}
		if granted > int64(len(items)) {
			granted = int64(len(items))
		}
		accepted = int(granted)
		if rej := len(items) - accepted; rej > 0 {
			q.retryAfter.Add(int64(rej))
		}
		if accepted == 0 {
			return 0, nil
		}
	}
	byShard := make(map[int][]pq.Item[[]byte])
	for _, it := range items[:accepted] {
		pri := int(it.Pri)
		tagged := wire.GetBuf(4 + len(it.Value))
		tagged = binary.BigEndian.AppendUint32(tagged, it.Pri)
		tagged = append(tagged, it.Value...)
		s := q.shardFor(pri)
		byShard[s] = append(byShard[s], pq.Item[[]byte]{Pri: pri - q.bases[s], Val: tagged})
	}
	for s, batch := range byShard {
		pq.InsertBatch(q.shards[s], batch)
		q.noteShardIns(s, len(batch))
		q.occAdd(s, len(batch))
	}
	q.inserts.Add(int64(accepted))
	return accepted, nil
}

// putBackN returns entries taken from a shard's DeleteMinBatch to that
// shard in one native batch. Like putBack it touches nothing but the
// shard, so every entry goes back exactly once and cannot be shed.
func (q *servedQueue) putBackN(shard int, got []pq.Item[[]byte]) {
	batch := make([]pq.Item[[]byte], len(got))
	for i, it := range got {
		pri := int(binary.BigEndian.Uint32(it.Val))
		batch[i] = pq.Item[[]byte]{Pri: pri - q.bases[shard], Val: it.Val}
	}
	pq.InsertBatch(q.shards[shard], batch)
	q.occAdd(shard, len(got))
}

// popCommitN records n pops whose items will be delivered: one
// multi-unit decrement frees their admission slots and counts them.
func (q *servedQueue) popCommitN(n int) {
	if n <= 0 {
		return
	}
	if q.admit != nil {
		if rem := int64(n) - q.consumeOverflow(int64(n)); rem > 0 {
			q.admit.SubN(rem)
		}
	}
	q.deletes.Add(int64(n))
}

// deleteMinBatch removes up to max items whose combined TItems encoding
// stays within budget payload bytes, pulling from each shard through
// the queues' native DeleteMinBatch fast path. Results are appended to
// envs as raw tagged envelopes (pooled buffers — the caller takes
// ownership exactly as with deleteMinEnv); pass a recycled scratch
// slice to keep this path allocation-free. An item that would overflow
// the budget goes back to its shard un-popped, so a response frame
// never exceeds the wire limit and no popped item is ever dropped. Any
// single admitted item fits (values are capped at wire.MaxValue), so
// progress is guaranteed: the first pop is always kept. A short result
// means the queue ran dry or a shard declined under contention; the
// client just asks again.
func (q *servedQueue) deleteMinBatch(max, budget int, envs [][]byte) ([][]byte, error) {
	if q.wal != nil {
		return q.deleteMinBatchDurable(max, budget, envs)
	}
	n0 := len(envs)
	bytes := 4 // item-count prefix
	for si, sub := range q.shards {
		want := max - (len(envs) - n0)
		if want <= 0 {
			return envs, nil
		}
		got := pq.DeleteMinBatch(sub, want)
		if len(got) == 0 {
			continue // shard dry: move to the next priority band
		}
		kept := 0
		for _, item := range got {
			v := item.Val
			// Encoded size: pri(4) + bloblen(4) + value bytes.
			sz := 8 + len(v) - q.tagLen
			if len(envs) > n0 && bytes+sz > budget {
				break
			}
			bytes += sz
			envs = append(envs, v)
			kept++
		}
		q.popCommitN(kept)
		q.noteShardDel(si, kept)
		q.rankRecord(si, kept)
		q.occAdd(si, -len(got)) // putBackN below re-books the un-kept tail
		if kept < len(got) {
			// Budget exhausted: the remainder goes back exactly once.
			q.putBackN(si, got[kept:])
			return envs, nil
		}
	}
	if len(envs)-n0 < max {
		q.emptyDeletes.Add(1)
	}
	return envs, nil
}

// stats snapshots the serving counters.
func (q *servedQueue) stats() wire.QueueStats {
	ins, del := q.inserts.Load(), q.deletes.Load()
	st := wire.QueueStats{
		Queue:        q.spec.Name,
		Algorithm:    string(q.spec.Algorithm),
		Priorities:   q.spec.Priorities,
		Shards:       q.spec.Shards,
		Capacity:     q.spec.Capacity,
		Inserts:      ins,
		Deletes:      del,
		EmptyDeletes: q.emptyDeletes.Load(),
		RetryAfter:   q.retryAfter.Load(),
		Size:         ins - del,
		Draining:     q.draining.Load(),
		StatsVersion: wire.StatsVersion,
	}
	st.Latency = q.latencyStats()
	if q.wal != nil {
		ws := q.wal.Stats()
		st.Durability = &wire.DurabilityStats{
			FsyncPolicy:          ws.Policy,
			LastLSN:              ws.LastLSN,
			SnapshotLSN:          ws.SnapshotLSN,
			Segments:             ws.Segments,
			WALBytes:             ws.WALBytes,
			Appends:              ws.Appends,
			Fsyncs:               ws.Syncs,
			Snapshots:            ws.Snapshots,
			RecordsSinceSnapshot: ws.RecordsSinceSnapshot,
			RecoveredItems:       ws.RecoveredItems,
			ReplayedRecords:      ws.ReplayedRecords,
			TornTail:             ws.TornTail,
		}
		if q.walMet != nil {
			fd := distFromHist(q.walMet.FsyncNanos.Snapshot())
			gc := distFromHist(q.walMet.CommitRecords.Snapshot())
			st.Durability.FsyncLatency = &fd
			st.Durability.GroupCommit = &gc
		}
	}
	return st
}

// peek returns up to max of the most urgent items without consuming
// them: each shard is batch-popped and immediately restored. Durable
// queues are quiesced under the snapshot lock for an exact view;
// in-memory queues peek live, so a concurrent delete-min can briefly
// see the queue empty — acceptable for the debug endpoint this serves.
func (q *servedQueue) peek(max int) []wire.Item {
	if max <= 0 {
		return nil
	}
	if q.wal != nil {
		q.durMu.Lock()
		defer q.durMu.Unlock()
	}
	var out []wire.Item
	for si, sub := range q.shards {
		want := max - len(out)
		if want <= 0 {
			break
		}
		got := pq.DeleteMinBatch(sub, want)
		if len(got) == 0 {
			continue
		}
		q.occAdd(si, -len(got)) // putBackN below books them back in
		for _, it := range got {
			v := it.Val
			// Copy: the envelope goes straight back into the live queue
			// and may be popped, delivered, and recycled while the debug
			// snapshot is still being rendered.
			out = append(out, wire.Item{
				Pri:   binary.BigEndian.Uint32(v),
				Value: append([]byte(nil), v[q.tagLen:]...),
			})
		}
		q.putBackN(si, got)
	}
	return out
}

// size is the approximate queued-item count.
func (q *servedQueue) size() int64 { return q.inserts.Load() - q.deletes.Load() }

// relaxed reports whether the backing algorithm trades exact delete-min
// order for scalability.
func (q *servedQueue) relaxed() bool { return pq.IsRelaxed(q.spec.Algorithm) }

// relaxStats merges the rank-error accounting of every shard and then
// applies the cross-shard estimator (crossRank): per-shard ranks only
// see their own priority band, so with Shards > 1 the merged RankSum
// and RankMax are corrected by the estimator's better-band occupancy
// charges. The per-rank Counts histogram (and so the quantiles) stays
// within-shard — a pop's within-shard rank and its cross-shard extra
// cannot be aligned after the fact — which the mean and max no longer
// suffer from. ok is false for exact algorithms, which carry no such
// accounting.
func (q *servedQueue) relaxStats() (pq.RelaxStats, bool) {
	var total pq.RelaxStats
	found := false
	for _, sub := range q.shards {
		if rs, ok := pq.RelaxStatsOf(sub); ok {
			total = total.Merge(rs)
			found = true
		}
	}
	if found && total.Tracked && q.rank != nil {
		total.RankSum += q.rank.sum.Load()
		// The true worst pop is its within-shard rank plus its
		// cross-shard extra; those aren't aligned per pop, so take the
		// larger of the two maxima — still a lower bound on the true
		// max, but no longer blind to cross-shard error.
		if m := q.rank.max.Load(); m > total.RankMax {
			total.RankMax = m
		}
	}
	return total, found
}
