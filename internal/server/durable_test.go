package server

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"pq"
	"pq/internal/wal"
	"pq/internal/wire"
	"pq/pqclient"
)

// startDurableServer is startServer with a caller-supplied Config and an
// explicit stop function, so restart tests can boot a second server on
// the same data directory.
func startDurableServer(t *testing.T, cfg Config, specs ...QueueSpec) (*Server, string, func() error) {
	t.Helper()
	cfg.Concurrency = 8
	s := New(cfg)
	for _, spec := range specs {
		if err := s.AddQueue(spec); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := s.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start listening")
	}
	var once sync.Once
	stop := func() error {
		var err error
		once.Do(func() {
			err = s.Close()
			<-done
		})
		return err
	}
	t.Cleanup(func() { stop() })
	return s, addr, stop
}

func itemKey(pri int, value []byte) string { return fmt.Sprintf("%d/%s", pri, value) }

// drainAll empties the queue via batch pops, returning the multiset of
// (pri, value) pairs it observed.
func drainAll(t *testing.T, c *pqclient.Client, queue string) map[string]int {
	t.Helper()
	ctx := context.Background()
	got := map[string]int{}
	for {
		items, err := c.DeleteMinBatch(ctx, queue, 64)
		if err != nil {
			t.Fatalf("DeleteMinBatch: %v", err)
		}
		if len(items) == 0 {
			return got
		}
		for _, it := range items {
			got[itemKey(it.Pri, it.Value)]++
		}
	}
}

// TestDurableRecoveryAfterClose is the in-process crash analogue: Close
// severs without a final snapshot, so the next boot must rebuild the
// queue from the log tail alone — exactly once per acked insert.
func TestDurableRecoveryAfterClose(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Fsync: wal.SyncNever}
	spec := QueueSpec{Name: "jobs", Algorithm: pq.FunnelTree, Priorities: 16}

	_, addr, stop := startDurableServer(t, cfg, spec)
	c := dialClient(t, addr)
	ctx := context.Background()

	want := map[string]int{}
	for i := 0; i < 40; i++ {
		pri, val := i%16, []byte(fmt.Sprintf("single-%d", i))
		if err := c.Insert(ctx, "jobs", pri, val); err != nil {
			t.Fatalf("Insert: %v", err)
		}
		want[itemKey(pri, val)]++
	}
	var batch []pqclient.Item
	for i := 0; i < 20; i++ {
		batch = append(batch, pqclient.Item{Pri: i % 16, Value: []byte(fmt.Sprintf("batch-%d", i))})
	}
	if n, err := c.InsertBatch(ctx, "jobs", batch); err != nil || n != len(batch) {
		t.Fatalf("InsertBatch accepted %d, err %v", n, err)
	}
	for _, it := range batch {
		want[itemKey(it.Pri, it.Value)]++
	}
	// Pop a few: their delete records must survive the crash too, or the
	// items would come back as ghosts.
	for i := 0; i < 10; i++ {
		it, ok, err := c.DeleteMin(ctx, "jobs")
		if err != nil || !ok {
			t.Fatalf("DeleteMin: ok=%v err=%v", ok, err)
		}
		k := itemKey(it.Pri, it.Value)
		if want[k] == 0 {
			t.Fatalf("popped unknown item %s", k)
		}
		want[k]--
		if want[k] == 0 {
			delete(want, k)
		}
	}
	c.Close()
	if err := stop(); err != nil {
		t.Fatalf("stop: %v", err)
	}

	s2, addr2, _ := startDurableServer(t, cfg, spec)
	st, ok := s2.QueueStats("jobs")
	if !ok || st.Durability == nil {
		t.Fatalf("no durability stats after reboot: %+v", st)
	}
	if st.Durability.ReplayedRecords == 0 {
		t.Fatal("boot after Close should have replayed the log tail")
	}
	if st.Durability.RecoveredItems != 50 {
		t.Fatalf("recovered %d items, want 50", st.Durability.RecoveredItems)
	}
	if st.Size != 50 {
		t.Fatalf("size after reboot = %d, want 50", st.Size)
	}

	c2 := dialClient(t, addr2)
	got := drainAll(t, c2, "jobs")
	if len(got) != len(want) {
		t.Fatalf("drained %d distinct items, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("item %s: recovered %d copies, want %d", k, got[k], n)
		}
	}
}

// TestGracefulShutdownSealsWAL checks satellite 3: Shutdown takes a
// final snapshot and seals the segments, so the next boot is a pure
// snapshot load with zero records replayed.
func TestGracefulShutdownSealsWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Fsync: wal.SyncNever}
	spec := QueueSpec{Name: "jobs", Algorithm: pq.SimpleLinear, Priorities: 8}

	s, addr, stop := startDurableServer(t, cfg, spec)
	c := dialClient(t, addr)
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		if err := c.Insert(ctx, "jobs", i%8, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	stop()

	s2, _, _ := startDurableServer(t, cfg, spec)
	st, _ := s2.QueueStats("jobs")
	if st.Durability == nil {
		t.Fatal("no durability stats")
	}
	if st.Durability.ReplayedRecords != 0 {
		t.Fatalf("boot after graceful shutdown replayed %d records, want 0", st.Durability.ReplayedRecords)
	}
	if st.Durability.RecoveredItems != 25 || st.Size != 25 {
		t.Fatalf("recovered %d items (size %d), want 25", st.Durability.RecoveredItems, st.Size)
	}
	if st.Durability.TornTail {
		t.Fatal("graceful shutdown left a torn tail")
	}
}

// TestAutoSnapshot checks that the log self-compacts once SnapshotEvery
// records have accumulated.
func TestAutoSnapshot(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Fsync: wal.SyncNever, SnapshotEvery: 8}
	spec := QueueSpec{Name: "jobs", Algorithm: pq.FunnelTree, Priorities: 8}

	s, addr, _ := startDurableServer(t, cfg, spec)
	c := dialClient(t, addr)
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		if err := c.Insert(ctx, "jobs", i%8, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _ := s.QueueStats("jobs")
		if st.Durability != nil && st.Durability.Snapshots >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no automatic snapshot after 32 inserts with SnapshotEvery=8: %+v", st.Durability)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The queue still serves correctly mid/post-snapshot.
	got := drainAll(t, c, "jobs")
	if len(got) != 32 {
		t.Fatalf("drained %d items, want 32", len(got))
	}
}

// TestDurabilityStatsPlumbing checks satellite 6 end to end: a durable
// server reports versioned durability fields through pqclient.Stats,
// and an in-memory server reports none.
func TestDurabilityStatsPlumbing(t *testing.T) {
	ctx := context.Background()

	dir := t.TempDir()
	cfg := Config{DataDir: dir, Fsync: wal.SyncAlways}
	_, addr, _ := startDurableServer(t, cfg, QueueSpec{Name: "d", Algorithm: pq.SimpleLinear, Priorities: 4})
	c := dialClient(t, addr)
	if err := c.Insert(ctx, "d", 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx, "d")
	if err != nil {
		t.Fatal(err)
	}
	if st.StatsVersion != wire.StatsVersion {
		t.Fatalf("stats_version = %d, want %d", st.StatsVersion, wire.StatsVersion)
	}
	if st.Durability == nil {
		t.Fatal("durable queue reported no durability stats")
	}
	if st.Durability.FsyncPolicy != "always" {
		t.Fatalf("fsync_policy = %q, want always", st.Durability.FsyncPolicy)
	}
	if st.Durability.Appends == 0 || st.Durability.Fsyncs == 0 {
		t.Fatalf("append/fsync counters not moving: %+v", st.Durability)
	}
	if st.Durability.LastLSN == 0 {
		t.Fatal("last_lsn = 0 after an insert")
	}

	_, addr2 := startServer(t, QueueSpec{Name: "m", Algorithm: pq.SimpleLinear, Priorities: 4})
	c2 := dialClient(t, addr2)
	st2, err := c2.Stats(ctx, "m")
	if err != nil {
		t.Fatal(err)
	}
	if st2.Durability != nil {
		t.Fatalf("in-memory queue reported durability stats: %+v", st2.Durability)
	}
}

// TestSealWaitsForInflightSnapshot: Shutdown's final snapshot must not
// be skipped just because a background snapshot is mid-flight — sealWAL
// waits its turn, so "boot after graceful shutdown replays zero
// records" holds even when the shutdown races an auto-snapshot.
func TestSealWaitsForInflightSnapshot(t *testing.T) {
	dir := t.TempDir()
	open := func() (*servedQueue, *wal.Log, wal.Recovery) {
		q, err := newServedQueue(QueueSpec{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 4}, 4)
		if err != nil {
			t.Fatal(err)
		}
		l, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever, Logf: t.Logf})
		if err != nil {
			t.Fatal(err)
		}
		if err := q.attachWAL(l, rec, 0); err != nil {
			t.Fatal(err)
		}
		return q, l, rec
	}
	q, _, _ := open()
	for i := 0; i < 7; i++ {
		if st, err := q.insert(wire.Item{Pri: uint32(i % 4), Value: []byte{byte(i)}}); err != nil || st != insOK {
			t.Fatalf("insert %d: status=%v err=%v", i, st, err)
		}
	}
	// Fake an in-flight background snapshot that finishes shortly; the
	// seal must wait it out instead of returning without a snapshot.
	q.snapActive.Store(true)
	go func() {
		time.Sleep(30 * time.Millisecond)
		q.snapActive.Store(false)
	}()
	if err := q.sealWAL(); err != nil {
		t.Fatalf("sealWAL: %v", err)
	}

	_, l2, rec := open()
	defer l2.Close()
	if rec.Replayed != 0 {
		t.Fatalf("boot after graceful seal replayed %d records, want 0 (final snapshot was skipped)", rec.Replayed)
	}
	if len(rec.Items) != 7 {
		t.Fatalf("recovered %d items, want 7", len(rec.Items))
	}
}

// TestRecoveredOverflowKeepsAdmissionClosed: a restart with a lowered
// Capacity can recover more items than the admission counter can book
// (AddN clamps at the bound). The surplus is tracked as overflow debt
// so pops don't free phantom slots: inserts keep shedding until real
// occupancy is back under the bound.
func TestRecoveredOverflowKeepsAdmissionClosed(t *testing.T) {
	dir := t.TempDir()
	l, _, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var recs []wal.Item
	for i := 0; i < 5; i++ {
		recs = append(recs, wal.Item{ID: l.AllocIDs(1), Pri: uint32(i % 4), Value: []byte{byte(i)}})
	}
	if err := l.AppendInsert(recs); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reboot with Capacity 3 < the 5 recovered items.
	q, err := newServedQueue(QueueSpec{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 4, Capacity: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	l2, rec, err := wal.Open(wal.Options{Dir: dir, Policy: wal.SyncNever, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := q.attachWAL(l2, rec, 0); err != nil {
		t.Fatal(err)
	}
	if got := q.admitOverflow.Load(); got != 2 {
		t.Fatalf("admitOverflow = %d, want 2", got)
	}

	tryInsert := func() insertStatus {
		t.Helper()
		st, err := q.insert(wire.Item{Pri: 0, Value: []byte("new")})
		if err != nil {
			t.Fatalf("insert: %v", err)
		}
		return st
	}
	if st := tryInsert(); st != insShed {
		t.Fatalf("insert at occupancy 5/3: status=%v, want shed", st)
	}
	// A batch pop burns the two units of overflow debt without touching
	// the counter: still 3 live, still full.
	if items, err := q.deleteMinBatch(2, 1<<20, nil); err != nil || len(items) != 2 {
		t.Fatalf("deleteMinBatch: %d items, err %v", len(items), err)
	}
	if st := tryInsert(); st != insShed {
		t.Fatalf("insert at occupancy 3/3: status=%v, want shed", st)
	}
	// One more pop drops real occupancy below the bound.
	if _, ok, err := q.deleteMin(); err != nil || !ok {
		t.Fatalf("deleteMin: ok=%v err=%v", ok, err)
	}
	if st := tryInsert(); st != insOK {
		t.Fatalf("insert at occupancy 2/3: status=%v, want admitted", st)
	}
}

// TestDurableQueueNameValidation: a durable queue name becomes a
// directory name, so path-ish names must be rejected.
func TestDurableQueueNameValidation(t *testing.T) {
	s := New(Config{DataDir: t.TempDir()})
	for _, name := range []string{"a/b", `a\b`, ".", ".."} {
		if err := s.AddQueue(QueueSpec{Name: name, Algorithm: pq.SimpleLinear, Priorities: 4}); err == nil {
			t.Errorf("durable queue name %q accepted", name)
		}
	}
}
