// Package server hosts the native priority queues behind a TCP
// endpoint speaking the wire protocol (see internal/wire): a registry
// of named queues, each backed by any pq.Algorithm with optional
// priority-range sharding, admission control via the paper's bounded
// fetch-and-decrement counter (shedding with RETRY_AFTER instead of
// queueing unboundedly), per-connection read/process goroutine pairs
// with micro-batched response flushing, and graceful drain.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pq"
	"pq/internal/obs"
	"pq/internal/wal"
	"pq/internal/wire"
)

// Config tunes a Server.
type Config struct {
	// MaxBatch caps how many pipelined requests are processed between
	// response flushes on one connection (micro-batching amortizes
	// syscalls when clients pipeline). Default 64.
	MaxBatch int
	// RetryAfterMillis is the backoff hint sent with shed requests.
	// Default 2.
	RetryAfterMillis int
	// Concurrency sizes the funnel layers of the backing queues and
	// admission counters; default GOMAXPROCS.
	Concurrency int
	// Logf receives serving diagnostics; nil discards them. Retained
	// for compatibility — new code should set Logger. When only one of
	// Logf/Logger is set, the other is bridged to it.
	Logf func(format string, args ...any)
	// Logger receives structured serving diagnostics (connection ids,
	// queue names, WAL recovery and poison events, slow-op warnings).
	// nil falls back to Logf, or discards when both are nil.
	Logger *slog.Logger
	// SlowOp logs any queue mutation that took longer than this at
	// Warn level and counts it in pq_queue_slow_ops_total. 0 disables
	// slow-op logging.
	SlowOp time.Duration
	// NoMetrics disables the server-side metrics recording (per-op
	// latency histograms, protocol and shard counters). The admin
	// endpoint still serves; histogram families are simply absent.
	// Exists so the recording overhead can be measured.
	NoMetrics bool
	// AllowRelaxed permits queues backed by relaxed algorithms
	// (pq.MultiQueue): delete-min may return an item while strictly
	// better items remain queued. Off by default so a client that
	// expects exact priority order can never be handed a relaxed queue
	// by a configuration slip; pqd exposes it as -relaxed.
	AllowRelaxed bool

	// DataDir, when set, makes every queue durable: each keeps a
	// segmented write-ahead log plus snapshots under DataDir/<name>,
	// inserts are logged before they are acknowledged, pops log the
	// exact items delivered, and AddQueue replays snapshot + log tail
	// so a restart reconstructs the queue. Empty disables durability.
	DataDir string
	// Fsync is the log's sync policy (see wal.SyncPolicy); the zero
	// value is wal.SyncAlways, group-committed.
	Fsync wal.SyncPolicy
	// FsyncInterval is the wal.SyncInterval flush period. Default 10ms.
	FsyncInterval time.Duration
	// SnapshotEvery takes an automatic snapshot each time the log grows
	// by that many records. Default 100000; negative disables automatic
	// snapshots (graceful shutdown still takes a final one).
	SnapshotEvery int
	// SegmentBytes rotates log segments past this size. Default 16 MiB.
	SegmentBytes int64
}

func (c *Config) normalize() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.RetryAfterMillis <= 0 {
		c.RetryAfterMillis = 2
	}
	if c.Concurrency <= 0 {
		c.Concurrency = runtime.GOMAXPROCS(0)
	}
	// Bridge the two logging surfaces: whichever the caller set feeds
	// the other, so server internals can log structured while WAL code
	// keeps its printf-style hook.
	switch {
	case c.Logger == nil && c.Logf != nil:
		c.Logger = slog.New(logfHandler{f: c.Logf})
	case c.Logger == nil:
		c.Logger = slog.New(slog.DiscardHandler)
	}
	if c.Logf == nil {
		if lg := c.Logger; lg.Enabled(context.Background(), slog.LevelInfo) {
			c.Logf = func(format string, args ...any) {
				lg.Info(fmt.Sprintf(format, args...))
			}
		} else {
			c.Logf = func(string, ...any) {}
		}
	}
	if c.SnapshotEvery == 0 {
		c.SnapshotEvery = 100000
	}
}

// logfHandler adapts a printf-style Logf sink into a slog.Handler, so
// a Config that only sets Logf still sees the structured log stream.
type logfHandler struct {
	f     func(string, ...any)
	attrs string
}

func (h logfHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h logfHandler) Handle(_ context.Context, r slog.Record) error {
	var sb strings.Builder
	sb.WriteString(r.Message)
	sb.WriteString(h.attrs)
	r.Attrs(func(a slog.Attr) bool {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value.Any())
		return true
	})
	h.f("server: %s", sb.String())
	return nil
}

func (h logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var sb strings.Builder
	sb.WriteString(h.attrs)
	for _, a := range attrs {
		fmt.Fprintf(&sb, " %s=%v", a.Key, a.Value.Any())
	}
	h.attrs = sb.String()
	return h
}

func (h logfHandler) WithGroup(string) slog.Handler { return h }

// Server is a pqd serving instance.
type Server struct {
	cfg Config

	mu     sync.RWMutex
	queues map[string]*servedQueue

	lnMu     sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	connsWG  sync.WaitGroup
	shutdown atomic.Bool

	// met aggregates protocol-level series; metricsOn gates every
	// recording site (Config.NoMetrics). nextConnID numbers connections
	// for log correlation and doubles as the metric stripe hint.
	met        *serverMetrics
	metricsOn  bool
	nextConnID atomic.Uint64

	// cluster, when set (SetClusterMap), makes this server one node of
	// a multi-node deployment: inserts outside its owned priority
	// ranges are NACKed with TWrongNode and the map is served in STATS.
	cluster atomic.Pointer[clusterState]
}

// New builds a server with no queues; add them with AddQueue before
// serving.
func New(cfg Config) *Server {
	cfg.normalize()
	return &Server{
		cfg:       cfg,
		queues:    make(map[string]*servedQueue),
		conns:     make(map[net.Conn]struct{}),
		met:       newServerMetrics(cfg.Concurrency),
		metricsOn: !cfg.NoMetrics,
	}
}

// AddQueue registers a queue. It may be called while serving; the name
// must be unused. With Config.DataDir set, the queue's write-ahead log
// under DataDir/<name> is opened (or created) and its snapshot + log
// tail are replayed into the fresh queue before it serves traffic.
func (s *Server) AddQueue(spec QueueSpec) error {
	if s.cfg.DataDir != "" {
		if strings.ContainsAny(spec.Name, "/\\") || spec.Name == "." || spec.Name == ".." {
			return fmt.Errorf("server: durable queue name %q must be a plain directory name", spec.Name)
		}
	}
	if cl := s.cluster.Load(); cl != nil && spec.Priorities != cl.m.Priorities {
		return fmt.Errorf("server: queue %q spans %d priorities but the cluster map covers %d; every queue on a cluster node must span the map's full priority space",
			spec.Name, spec.Priorities, cl.m.Priorities)
	}
	if pq.IsRelaxed(spec.Algorithm) && !s.cfg.AllowRelaxed {
		return fmt.Errorf("server: queue %q: algorithm %q relaxes delete-min ordering (better items may remain queued when an item is delivered); set Config.AllowRelaxed (pqd -relaxed) to serve it",
			spec.Name, spec.Algorithm)
	}
	q, err := newServedQueue(spec, s.cfg.Concurrency)
	if err != nil {
		return err
	}
	if s.metricsOn {
		q.met = newQueueMetrics(s.cfg.Concurrency, len(q.shards))
	}
	if s.cfg.DataDir != "" {
		if s.metricsOn {
			// One stripe: the wal writer goroutine is the only recorder.
			q.walMet = &obs.WALMetrics{
				FsyncNanos:    obs.NewHistogram(1, obs.LatencyMinShift, obs.LatencyMaxShift),
				CommitRecords: obs.NewHistogram(1, 0, 20),
			}
		}
		l, rec, err := wal.Open(wal.Options{
			Dir:          filepath.Join(s.cfg.DataDir, spec.Name),
			Policy:       s.cfg.Fsync,
			Interval:     s.cfg.FsyncInterval,
			SegmentBytes: s.cfg.SegmentBytes,
			Logf:         s.cfg.Logf,
			Metrics:      q.walMet,
		})
		if err != nil {
			return fmt.Errorf("server: queue %q: %w", spec.Name, err)
		}
		if err := q.attachWAL(l, rec, s.cfg.SnapshotEvery); err != nil {
			l.Close()
			return err
		}
		s.cfg.Logger.Info("queue recovered",
			"queue", spec.Name, "items", len(rec.Items), "snapshot_lsn", rec.SnapshotLSN,
			"replayed_records", rec.Replayed, "torn_tail", rec.Torn)
		if over := q.admitOverflow.Load(); over > 0 {
			s.cfg.Logger.Warn("recovered items exceed capacity; admission stays closed until occupancy drops below the bound",
				"queue", spec.Name, "over", over, "capacity", spec.Capacity)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.queues[q.spec.Name]; dup {
		if q.wal != nil {
			q.wal.Close()
		}
		return fmt.Errorf("server: queue %q already registered", q.spec.Name)
	}
	s.queues[q.spec.Name] = q
	return nil
}

func (s *Server) lookup(name string) *servedQueue {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.queues[name]
}

// lookupB is lookup for a queue name still aliasing the request frame.
// The conversion sits inside the index expression so the compiler's
// map-lookup-by-[]byte optimization elides the string allocation.
func (s *Server) lookupB(name []byte) *servedQueue {
	s.mu.RLock()
	q := s.queues[string(name)]
	s.mu.RUnlock()
	return q
}

// QueueStats snapshots one queue's counters (for tests and the
// daemon's exit report).
func (s *Server) QueueStats(name string) (wire.QueueStats, bool) {
	q := s.lookup(name)
	if q == nil {
		return wire.QueueStats{}, false
	}
	st := q.stats()
	st.Cluster = s.clusterStats()
	return st, true
}

// ListenAndServe listens on addr and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// ErrServerClosed is returned by Serve after Shutdown or Close.
var ErrServerClosed = errors.New("server: closed")

// Serve accepts connections on ln until Shutdown or Close.
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	s.ln = ln
	s.lnMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			if s.shutdown.Load() {
				return ErrServerClosed
			}
			return err
		}
		s.lnMu.Lock()
		if s.shutdown.Load() {
			s.lnMu.Unlock()
			c.Close()
			return ErrServerClosed
		}
		s.conns[c] = struct{}{}
		s.connsWG.Add(1)
		s.lnMu.Unlock()
		go s.serveConn(c)
	}
}

// Addr reports the listening address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown drains gracefully: stop accepting, mark every queue
// draining (inserts shed with RETRY_AFTER, delete-mins keep working so
// clients can empty the queues), then wait until every connection has
// closed or ctx expires, at which point remaining connections are
// severed. Queues with a WAL attached then take a final snapshot and
// seal their segments, so the next boot replays zero log records.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdown.Store(true)
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()

	s.mu.RLock()
	for _, q := range s.queues {
		q.draining.Store(true)
	}
	s.mu.RUnlock()

	done := make(chan struct{})
	go func() {
		s.connsWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.closeConns()
		<-done
		err = ctx.Err()
	}
	if serr := s.sealWALs(); serr != nil && err == nil {
		err = serr
	}
	return err
}

// Close severs everything immediately. WAL files are closed (appends
// already acknowledged are on disk) but no final snapshot is taken —
// the next boot replays the log tail, exactly as after a crash.
func (s *Server) Close() error {
	s.shutdown.Store(true)
	s.lnMu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	s.lnMu.Unlock()
	s.closeConns()
	s.connsWG.Wait()
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, q := range s.queues {
		if q.wal != nil {
			q.wal.Close()
		}
	}
	return nil
}

// sealWALs snapshots and closes every durable queue's log.
func (s *Server) sealWALs() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var err error
	for _, q := range s.queues {
		if serr := q.sealWAL(); serr != nil && err == nil {
			err = fmt.Errorf("server: queue %q: seal: %w", q.spec.Name, serr)
		}
	}
	return err
}

func (s *Server) closeConns() {
	s.lnMu.Lock()
	defer s.lnMu.Unlock()
	for c := range s.conns {
		c.Close()
	}
}

func (s *Server) dropConn(c net.Conn) {
	c.Close()
	s.lnMu.Lock()
	delete(s.conns, c)
	s.lnMu.Unlock()
	s.connsWG.Done()
}

// connReq is one decoded frame handed from a connection's reader
// goroutine to its processor. protoErr carries a recoverable per-frame
// protocol error (bad version / bad flags): the frame was consumed from
// the stream and the processor replies TError instead of dispatching.
type connReq struct {
	f        wire.Frame
	protoErr error
}

// connState carries one connection's identity through the request
// path: the id correlates log lines and picks metric stripes.
type connState struct {
	id  uint64
	log *slog.Logger
}

// countingReader / countingWriter tap a connection's byte streams into
// the protocol byte counters without touching buffering behaviour.
type countingReader struct {
	r    io.Reader
	n    *obs.Counter
	hint uint64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 {
		cr.n.Add(cr.hint, int64(n))
	}
	return n, err
}

type countingWriter struct {
	w    io.Writer
	n    *obs.Counter
	hint uint64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.n.Add(cw.hint, int64(n))
	}
	return n, err
}

// serveConn runs one connection: a reader goroutine decodes frames
// into a channel and this goroutine processes them, flushing the
// response writer only when the pipeline runs dry or MaxBatch requests
// have been handled — the server-side micro-batch, which the
// respWriter turns into one vectored write per flush.
//
// Buffer ownership along the path: the reader's FrameReader hands each
// request a pooled payload buffer; the processor recycles it right
// after handle() returns (everything a request retains — an inserted
// item — was copied into a queue envelope by then, and everything a
// response references is queue envelopes, never the request payload).
// On the rare early-exit paths, payloads still queued in the channel
// are simply dropped for the GC to take — a pool miss, not a leak.
func (s *Server) serveConn(c net.Conn) {
	defer s.dropConn(c)

	cs := connState{id: s.nextConnID.Add(1)}
	cs.log = s.cfg.Logger.With("conn", cs.id, "remote", c.RemoteAddr().String())
	if s.metricsOn {
		s.met.connsAccepted.Add(1)
		s.met.connsActive.Add(1)
		defer s.met.connsActive.Add(-1)
	}

	// done tells the reader the processor is gone (write error), so a
	// reader blocked sending into a full reqs channel doesn't leak.
	done := make(chan struct{})
	defer close(done)

	reqs := make(chan connReq, s.cfg.MaxBatch)
	go func() {
		defer close(reqs)
		var src io.Reader = c
		if s.metricsOn {
			src = &countingReader{r: c, n: s.met.bytesRead, hint: cs.id}
		}
		br := getConnReader(src)
		defer putConnReader(br)
		var fr wire.FrameReader
		for {
			f, err := fr.ReadFrame(br)
			if err != nil && !errors.Is(err, wire.ErrBadVersion) && !errors.Is(err, wire.ErrBadFlags) {
				if !errors.Is(err, net.ErrClosed) && !isEOF(err) {
					cs.log.Warn("read failed", "err", err)
				}
				return
			}
			if s.metricsOn {
				s.met.framesRead.Inc(cs.id)
				if err != nil {
					s.met.resyncs.Inc(cs.id)
				}
			}
			select {
			case reqs <- connReq{f: f, protoErr: err}:
			case <-done:
				wire.PutBuf(f.Payload)
				return
			}
		}
	}()

	var dst io.Writer = c
	if s.metricsOn {
		dst = &countingWriter{w: c, n: s.met.bytesWritten, hint: cs.id}
	}
	w := getRespWriter(dst)
	defer w.release()
	var flushed int64
	for r := range reqs {
		n := 1
		err := s.handle(r, w, cs)
		wire.PutBuf(r.f.Payload)
		if err != nil {
			cs.log.Warn("write failed", "err", err)
			return
		}
	batch:
		for n < s.cfg.MaxBatch {
			select {
			case r2, ok := <-reqs:
				if !ok {
					break batch
				}
				n++
				err := s.handle(r2, w, cs)
				wire.PutBuf(r2.f.Payload)
				if err != nil {
					cs.log.Warn("write failed", "err", err)
					return
				}
			default:
				break batch
			}
		}
		if err := w.flush(); err != nil {
			return
		}
		if s.metricsOn {
			s.met.framesWritten.Add(cs.id, int64(n))
			s.met.pipelineDepth.Observe(cs.id, int64(n))
			s.met.flushes.Add(cs.id, w.flushes-flushed)
			flushed = w.flushes
		}
	}
	w.flush()
}

func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// reply appends one response frame with a pre-built payload to the
// connection's response writer — the cold-path helper (errors, stats
// JSON). Hot paths append their payloads straight into the writer's
// scratch via beginFrame/endFrame instead.
func reply(w *respWriter, id uint32, t wire.Type, payload []byte) error {
	buf, off := w.beginFrame(t, id)
	buf = append(buf, payload...)
	return w.endFrame(buf, off)
}

func (s *Server) replyErr(w *respWriter, id uint32, format string, args ...any) error {
	return reply(w, id, wire.TError, wire.ErrorMsg{Msg: fmt.Sprintf(format, args...)}.Append(nil))
}

func (s *Server) replyRetry(w *respWriter, id uint32) error {
	buf, off := w.beginFrame(wire.TRetryAfter, id)
	buf = wire.RetryAfter{Millis: uint32(s.cfg.RetryAfterMillis)}.Append(buf)
	return w.endFrame(buf, off)
}

// opDone finishes one timed queue operation: count it, record the
// latency, and log it when it crossed the slow-op threshold.
func (s *Server) opDone(q *servedQueue, op qOp, t0 time.Time, cs connState) {
	m := q.met
	if m == nil {
		return
	}
	m.ops[op].Inc(cs.id)
	if m.lat[op] == nil {
		return // counted but not timed (stats, drain)
	}
	d := time.Since(t0)
	m.lat[op].Observe(cs.id, d.Nanoseconds())
	if s.cfg.SlowOp > 0 && d >= s.cfg.SlowOp {
		m.slowOps.Add(1)
		cs.log.Warn("slow op", "queue", q.spec.Name, "op", qOpNames[op], "duration", d)
	}
}

// opClock stamps the start of a timed operation; zero when metrics are
// off so the fast path skips the clock read entirely.
func (q *servedQueue) opClock() time.Time {
	if q.met == nil {
		return time.Time{}
	}
	return time.Now()
}

// durFailed notes a mutation refused with a durability error — the
// signal that the queue's WAL is poisoned and ops stopped serving.
func (q *servedQueue) durFailed(cs connState, op string, err error) {
	q.durErrors.Add(1)
	cs.log.Error("durability failure", "queue", q.spec.Name, "op", op, "err", err)
}

// handle processes one request frame and writes its single response.
// Request decoding uses the zero-copy views — queue names and item
// values alias f.Payload — so everything a request hands the queue is
// copied into a pooled envelope before handle returns, and the caller
// recycles the payload right after.
func (s *Server) handle(r connReq, w *respWriter, cs connState) error {
	f := r.f
	if r.protoErr != nil {
		return s.replyErr(w, f.ID, "%v (frame version %d, flags ignored until version matches)", r.protoErr, f.Version)
	}
	switch f.Type {
	case wire.TInsert:
		m, err := wire.DecodeInsertView(f.Payload)
		if err != nil {
			return s.replyErr(w, f.ID, "bad INSERT: %v", err)
		}
		if len(m.Item.Value) > wire.MaxValue {
			return s.replyErr(w, f.ID, "value %d bytes exceeds limit %d", len(m.Item.Value), wire.MaxValue)
		}
		q := s.lookupB(m.Queue)
		if q == nil {
			return s.replyErr(w, f.ID, "no such queue %q", m.Queue)
		}
		if cl := s.cluster.Load(); cl != nil &&
			int(m.Item.Pri) < q.spec.Priorities && !cl.owns(int(m.Item.Pri)) {
			return s.replyWrongNode(w, f.ID, cl, int(m.Item.Pri))
		}
		t0 := q.opClock()
		st, err := q.insert(m.Item)
		s.opDone(q, opInsert, t0, cs)
		switch st {
		case insOK:
			buf, off := w.beginFrame(wire.TInsertOK, f.ID)
			buf = wire.InsertOK{Accepted: 1}.Append(buf)
			return w.endFrame(buf, off)
		case insShed:
			return s.replyRetry(w, f.ID)
		case insErr:
			q.durFailed(cs, "insert", err)
			return s.replyErr(w, f.ID, "durability: %v", err)
		default:
			return s.replyErr(w, f.ID, "priority %d out of range [0,%d)", m.Item.Pri, q.spec.Priorities)
		}

	case wire.TInsertBatch:
		m, err := wire.DecodeInsertBatchView(f.Payload, nil)
		if err != nil {
			return s.replyErr(w, f.ID, "bad INSERT_BATCH: %v", err)
		}
		q := s.lookupB(m.Queue)
		if q == nil {
			return s.replyErr(w, f.ID, "no such queue %q", m.Queue)
		}
		// Validate the whole batch before admitting any of it, so a
		// batch is either a protocol error or an admitted prefix. The
		// error names the offending index: a client that coalesced
		// unrelated inserts can tell whose item was bad. A misrouted
		// member NACKs the whole batch un-admitted: the batch is not a
		// prefix-acceptance case, because every member needs re-routing
		// by a client whose map is demonstrably stale.
		cl := s.cluster.Load()
		for i, it := range m.Items {
			if int(it.Pri) >= q.spec.Priorities {
				return s.replyErr(w, f.ID, "item %d: priority %d out of range [0,%d)", i, it.Pri, q.spec.Priorities)
			}
			if len(it.Value) > wire.MaxValue {
				return s.replyErr(w, f.ID, "item %d: value %d bytes exceeds limit %d", i, len(it.Value), wire.MaxValue)
			}
			if cl != nil && !cl.owns(int(it.Pri)) {
				return s.replyWrongNode(w, f.ID, cl, int(it.Pri))
			}
		}
		t0 := q.opClock()
		accepted, err := q.insertBatch(m.Items)
		s.opDone(q, opInsertBatch, t0, cs)
		if err != nil {
			q.durFailed(cs, "insert_batch", err)
			return s.replyErr(w, f.ID, "durability: %v", err)
		}
		ok := wire.InsertOK{Accepted: uint32(accepted), Rejected: uint32(len(m.Items) - accepted)}
		if ok.Rejected > 0 {
			ok.RetryAfterMillis = uint32(s.cfg.RetryAfterMillis)
		}
		buf, off := w.beginFrame(wire.TInsertOK, f.ID)
		buf = ok.Append(buf)
		return w.endFrame(buf, off)

	case wire.TDeleteMin:
		m, err := wire.DecodeQueueReqView(f.Payload)
		if err != nil {
			return s.replyErr(w, f.ID, "bad DELETE_MIN: %v", err)
		}
		q := s.lookupB(m.Queue)
		if q == nil {
			return s.replyErr(w, f.ID, "no such queue %q", m.Queue)
		}
		t0 := q.opClock()
		env, ok, err := q.deleteMinEnv()
		s.opDone(q, opDeleteMin, t0, cs)
		if err != nil {
			q.durFailed(cs, "delete_min", err)
			return s.replyErr(w, f.ID, "durability: %v", err)
		}
		if !ok {
			buf, off := w.beginFrame(wire.TEmpty, f.ID)
			return w.endFrame(buf, off)
		}
		return w.itemFrame(f.ID, env, q.tagLen)

	case wire.TDeleteMinBatch:
		m, err := wire.DecodeDeleteMinBatchView(f.Payload)
		if err != nil {
			return s.replyErr(w, f.ID, "bad DELETE_MIN_BATCH: %v", err)
		}
		q := s.lookupB(m.Queue)
		if q == nil {
			return s.replyErr(w, f.ID, "no such queue %q", m.Queue)
		}
		max := int(m.Max)
		if max <= 0 || max > wire.MaxBatchItems {
			return s.replyErr(w, f.ID, "bad DELETE_MIN_BATCH max %d", m.Max)
		}
		// The pop loop is bounded by encoded response bytes as well as
		// max, so the TItems frame always fits under wire.MaxFrame; a
		// short response just means the client should ask again.
		scratch := getEnvs()
		t0 := q.opClock()
		envs, err := q.deleteMinBatch(max, wire.MaxPayload, (*scratch)[:0])
		s.opDone(q, opDeleteMinBatch, t0, cs)
		if err != nil {
			putEnvs(scratch)
			q.durFailed(cs, "delete_min_batch", err)
			return s.replyErr(w, f.ID, "durability: %v", err)
		}
		werr := w.itemsFrame(f.ID, envs, q.tagLen)
		*scratch = envs[:0]
		putEnvs(scratch)
		return werr

	case wire.TStats:
		m, err := wire.DecodeQueueReqView(f.Payload)
		if err != nil {
			return s.replyErr(w, f.ID, "bad STATS: %v", err)
		}
		q := s.lookupB(m.Queue)
		if q == nil {
			return s.replyErr(w, f.ID, "no such queue %q", m.Queue)
		}
		s.opDone(q, opStats, time.Time{}, cs)
		st := q.stats()
		st.Cluster = s.clusterStats()
		data, err := json.Marshal(st)
		if err != nil {
			return s.replyErr(w, f.ID, "stats: %v", err)
		}
		return reply(w, f.ID, wire.TStatsReply, data)

	case wire.TDrain:
		m, err := wire.DecodeQueueReqView(f.Payload)
		if err != nil {
			return s.replyErr(w, f.ID, "bad DRAIN: %v", err)
		}
		q := s.lookupB(m.Queue)
		if q == nil {
			return s.replyErr(w, f.ID, "no such queue %q", m.Queue)
		}
		s.opDone(q, opDrain, time.Time{}, cs)
		cs.log.Info("queue draining", "queue", q.spec.Name)
		q.draining.Store(true)
		rem := q.size()
		if rem < 0 {
			rem = 0
		}
		buf, off := w.beginFrame(wire.TDrained, f.ID)
		buf = wire.Drained{Remaining: uint64(rem)}.Append(buf)
		return w.endFrame(buf, off)

	default:
		return s.replyErr(w, f.ID, "unknown request type %s", f.Type)
	}
}

// WaitDrained polls until every queue is empty or the timeout expires —
// a convenience for the daemon's graceful exit path.
func (s *Server) WaitDrained(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		empty := true
		s.mu.RLock()
		for _, q := range s.queues {
			if q.size() > 0 {
				empty = false
				break
			}
		}
		s.mu.RUnlock()
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
