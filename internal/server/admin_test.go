package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pq"
)

// adminGet fetches one admin path and returns status + body.
func adminGet(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminMetricsAndProbes(t *testing.T) {
	// Not serving yet: liveness answers, readiness refuses.
	srv := New(Config{Concurrency: 8})
	if err := srv.AddQueue(QueueSpec{Name: "jobs", Algorithm: pq.FunnelTree, Priorities: 64, Shards: 4}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.AdminHandler())
	defer ts.Close()

	if code, body := adminGet(t, ts, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz before serving: %d %q", code, body)
	}
	if code, _ := adminGet(t, ts, "/readyz"); code != 503 {
		t.Fatalf("/readyz before serving: want 503, got %d", code)
	}

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start listening")
	}
	t.Cleanup(func() { srv.Close(); <-done })

	if code, body := adminGet(t, ts, "/readyz"); code != 200 {
		t.Fatalf("/readyz while serving: %d %q", code, body)
	}

	// Push traffic through so op counters and histograms have samples.
	ctx := context.Background()
	cl := dialClient(t, addr)
	for i := 0; i < 10; i++ {
		if err := cl.Insert(ctx, "jobs", i%64, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.DeleteMin(ctx, "jobs"); err != nil {
		t.Fatal(err)
	}

	code, body := adminGet(t, ts, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"# TYPE pq_uptime_seconds gauge",
		"# TYPE pq_connections_accepted_total counter",
		"# TYPE pq_frames_read_total counter",
		"# TYPE pq_pipeline_depth histogram",
		"# TYPE pq_queue_ops_total counter",
		"# TYPE pq_queue_op_latency_seconds histogram",
		"# TYPE pq_queue_shed_total counter",
		"# TYPE pq_queue_size gauge",
		"# TYPE pq_queue_shard_inserts_total counter",
		`pq_queue_ops_total{op="insert",queue="jobs"} 10`,
		`pq_queue_op_latency_seconds_count{op="insert",queue="jobs"} 10`,
		`pq_queue_op_latency_seconds_bucket{op="insert",queue="jobs",le="+Inf"} 10`,
		`pq_queue_shard_inserts_total{queue="jobs",shard="0"}`,
		`pq_queue_shard_inserts_total{queue="jobs",shard="3"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// No WAL attached: no WAL families.
	if strings.Contains(body, "pq_wal_") {
		t.Errorf("/metrics shows WAL families without a WAL")
	}

	// statusz: valid JSON, queue present, peek honored and
	// non-destructive.
	code, body = adminGet(t, ts, "/statusz?items=3")
	if code != 200 {
		t.Fatalf("/statusz: %d %s", code, body)
	}
	var doc struct {
		Ready  bool `json:"ready"`
		Queues []struct {
			Queue string `json:"queue"`
			Size  int64  `json:"size"`
			Items []struct {
				Pri uint32 `json:"pri"`
			} `json:"items"`
		} `json:"queues"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz JSON: %v\n%s", err, body)
	}
	if !doc.Ready || len(doc.Queues) != 1 || doc.Queues[0].Queue != "jobs" {
		t.Fatalf("/statusz doc: %+v", doc)
	}
	if got := len(doc.Queues[0].Items); got != 3 {
		t.Fatalf("statusz items: want 3 peeked, got %d", got)
	}
	if doc.Queues[0].Size != 9 {
		t.Fatalf("statusz size: want 9 (peek must not consume), got %d", doc.Queues[0].Size)
	}
	if code, _ := adminGet(t, ts, "/statusz?items=bogus"); code != 400 {
		t.Fatalf("/statusz?items=bogus: want 400, got %d", code)
	}

	// pprof index is mounted.
	if code, _ := adminGet(t, ts, "/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: %d", code)
	}

	// Shutdown flips readiness off while liveness stays up.
	sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	if code, _ := adminGet(t, ts, "/readyz"); code != 503 {
		t.Fatalf("/readyz after shutdown: want 503, got %d", code)
	}
	if code, _ := adminGet(t, ts, "/healthz"); code != 200 {
		t.Fatalf("/healthz after shutdown: want 200, got %d", code)
	}
}

func TestAdminMetricsDurable(t *testing.T) {
	srv := New(Config{Concurrency: 4, DataDir: t.TempDir()})
	if err := srv.AddQueue(QueueSpec{Name: "dur", Algorithm: pq.SkipList, Priorities: 8}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := srv.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Cleanup(func() { srv.Close(); <-done })

	ctx := context.Background()
	cl := dialClient(t, addr)
	for i := 0; i < 5; i++ {
		if err := cl.Insert(ctx, "dur", i%8, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}

	ts := httptest.NewServer(srv.AdminHandler())
	defer ts.Close()
	_, body := adminGet(t, ts, "/metrics")
	for _, want := range []string{
		`pq_wal_appends_total{queue="dur"} 5`,
		`pq_wal_poisoned{queue="dur"} 0`,
		"# TYPE pq_wal_fsync_duration_seconds histogram",
		"# TYPE pq_wal_group_commit_records histogram",
		`pq_wal_fsync_duration_seconds_count{queue="dur"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// STATS v3 carries the WAL distributions too.
	st, err := cl.Stats(ctx, "dur")
	if err != nil {
		t.Fatal(err)
	}
	if st.Durability == nil || st.Durability.FsyncLatency == nil || st.Durability.GroupCommit == nil {
		t.Fatalf("v3 durable stats missing WAL distributions: %+v", st.Durability)
	}
	if st.Durability.FsyncLatency.Count == 0 {
		t.Fatal("fsync latency distribution has no samples under SyncAlways")
	}
}

func TestNoMetricsDisablesRecording(t *testing.T) {
	srv, addr := startServerCfg(t, Config{Concurrency: 4, NoMetrics: true},
		QueueSpec{Name: "q", Algorithm: pq.SimpleLinear, Priorities: 4})
	ctx := context.Background()
	cl := dialClient(t, addr)
	if err := cl.Insert(ctx, "q", 1, []byte("v")); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if st.Latency != nil {
		t.Fatalf("NoMetrics server still reports latency stats: %+v", st.Latency)
	}

	// The endpoint still serves; queue gauges survive.
	ts := httptest.NewServer(srv.AdminHandler())
	defer ts.Close()
	code, body := adminGet(t, ts, "/metrics")
	if code != 200 || !strings.Contains(body, `pq_queue_size{queue="q"} 1`) {
		t.Fatalf("NoMetrics /metrics lost queue gauges: %d\n%s", code, body)
	}
	if strings.Contains(body, "pq_queue_op_latency_seconds_bucket") {
		t.Fatal("NoMetrics /metrics still renders latency histograms")
	}
}

// startServerCfg is startServer with a caller-supplied base config.
func startServerCfg(t *testing.T, cfg Config, specs ...QueueSpec) (*Server, string) {
	t.Helper()
	s := New(cfg)
	for _, spec := range specs {
		if err := s.AddQueue(spec); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- s.ListenAndServe("127.0.0.1:0") }()
	var addr string
	for i := 0; i < 200; i++ {
		if a := s.Addr(); a != nil {
			addr = a.String()
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if addr == "" {
		t.Fatal("server did not start listening")
	}
	t.Cleanup(func() { s.Close(); <-done })
	return s, addr
}

func TestStatsV3Latency(t *testing.T) {
	_, addr := startServerCfg(t, Config{Concurrency: 4},
		QueueSpec{Name: "q", Algorithm: pq.SimpleTree, Priorities: 16})
	ctx := context.Background()
	cl := dialClient(t, addr)
	for i := 0; i < 20; i++ {
		if err := cl.Insert(ctx, "q", i%16, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := cl.DeleteMin(ctx, "q"); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats(ctx, "q")
	if err != nil {
		t.Fatal(err)
	}
	if st.StatsVersion < 3 {
		t.Fatalf("stats_version = %d, want >= 3", st.StatsVersion)
	}
	if st.Latency == nil {
		t.Fatal("v3+ stats missing latency section")
	}
	if st.Latency.Insert.Count != 20 {
		t.Fatalf("insert latency count = %d, want 20", st.Latency.Insert.Count)
	}
	if st.Latency.DeleteMin.Count != 1 {
		t.Fatalf("delete_min latency count = %d, want 1", st.Latency.DeleteMin.Count)
	}
	if st.Latency.Insert.P50 <= 0 || st.Latency.Insert.P99 < st.Latency.Insert.P50 {
		t.Fatalf("implausible insert latency dist: %+v", st.Latency.Insert)
	}
}
