package server

import (
	"fmt"
	"sync/atomic"

	"pq/internal/wire"
)

// Cluster mode: a pqd node given a cluster map enforces ownership of
// its priority ranges. INSERT/INSERT_BATCH traffic for a priority the
// node does not own is NACKed with TWrongNode naming the owning node
// and the server's map version — a client holding a stale map learns
// the right owner and that it should refetch — and nothing is admitted
// from a misrouted batch. DELETE_MIN is never ownership-checked: any
// node serves pops from its own ranges only (it holds no other
// items), and the cluster client merges pops across nodes.
//
// The map itself is served to clients inside STATS (stats_version 4)
// and on /statusz, so any node can bootstrap a client's routing table.

// clusterState is the immutable per-map state; Server.cluster swaps
// atomically so ownership checks never lock.
type clusterState struct {
	m         *wire.ClusterMap
	self      string
	selfIdx   int
	misroutes atomic.Int64
}

// owns reports whether this node owns pri under the map. False for
// priorities outside the map entirely (the caller's normal range check
// turns those into TError, not TWrongNode).
func (cl *clusterState) owns(pri int) bool {
	n, ok := cl.m.OwnerOf(pri)
	return ok && n == cl.selfIdx
}

// SetClusterMap puts the server in cluster mode (or replaces the map):
// it will serve the map via STATS//statusz and NACK inserts outside
// self's ranges. self must be one of the map's node addresses — the
// address clients reach this server by, which need not equal the
// listen address (e.g. 0.0.0.0 binds). Every registered queue must
// span exactly the map's priority space, so "queue priority out of
// range" and "priority owned by another node" stay distinct errors.
func (s *Server) SetClusterMap(m *wire.ClusterMap, self string) error {
	// Clone before validating: Validate builds the lookup index in
	// place, and the caller may install the same map on several
	// in-process servers (tests do).
	m = m.Clone()
	if err := m.Validate(); err != nil {
		return err
	}
	idx := m.NodeIndex(self)
	if idx < 0 {
		return fmt.Errorf("server: cluster map (version %d) has no node %q", m.Version, self)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, q := range s.queues {
		if q.spec.Priorities != m.Priorities {
			return fmt.Errorf("server: queue %q spans %d priorities but the cluster map covers %d; every queue on a cluster node must span the map's full priority space",
				q.spec.Name, q.spec.Priorities, m.Priorities)
		}
	}
	s.cluster.Store(&clusterState{m: m, self: self, selfIdx: idx})
	return nil
}

// ClusterMap reports the active map and self address ("" when not in
// cluster mode).
func (s *Server) ClusterMap() (*wire.ClusterMap, string) {
	cl := s.cluster.Load()
	if cl == nil {
		return nil, ""
	}
	return cl.m, cl.self
}

// clusterStats builds the STATS v4 cluster block; nil when the server
// is not in cluster mode.
func (s *Server) clusterStats() *wire.ClusterStats {
	cl := s.cluster.Load()
	if cl == nil {
		return nil
	}
	return &wire.ClusterStats{
		MapVersion: cl.m.Version,
		Priorities: cl.m.Priorities,
		Self:       cl.self,
		Nodes:      cl.m.Nodes,
		Misroutes:  cl.misroutes.Load(),
	}
}

// replyWrongNode NACKs a misrouted insert with the owning node's
// address and the server's map version.
func (s *Server) replyWrongNode(w *respWriter, id uint32, cl *clusterState, pri int) error {
	cl.misroutes.Add(1)
	owner := ""
	if n, ok := cl.m.OwnerOf(pri); ok {
		owner = cl.m.Nodes[n].Addr
	}
	buf, off := w.beginFrame(wire.TWrongNode, id)
	buf = wire.WrongNode{MapVersion: cl.m.Version, Owner: owner}.Append(buf)
	return w.endFrame(buf, off)
}
