// Package refpq is a trivially correct sequential bounded-range priority
// queue used as the reference model in differential tests: every
// concurrent implementation, run sequentially, must behave exactly like
// this one.
package refpq

// Queue is a sequential bounded-range priority queue with the paper's
// bag semantics: items of equal priority may come out in any order, but
// this reference fixes LIFO within a priority (matching the stack bins
// the paper uses), with an optional FIFO mode.
type Queue struct {
	bins [][]uint64
	fifo bool
	size int
}

// New builds a reference queue with npri priorities and LIFO bins.
func New(npri int) *Queue { return &Queue{bins: make([][]uint64, npri)} }

// NewFIFO builds a reference queue with FIFO bins.
func NewFIFO(npri int) *Queue {
	return &Queue{bins: make([][]uint64, npri), fifo: true}
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return q.size }

// NumPriorities reports the fixed priority range.
func (q *Queue) NumPriorities() int { return len(q.bins) }

// Insert adds val at priority pri.
func (q *Queue) Insert(pri int, val uint64) {
	q.bins[pri] = append(q.bins[pri], val)
	q.size++
}

// DeleteMin removes an element of the smallest non-empty priority.
func (q *Queue) DeleteMin() (uint64, bool) {
	_, v, ok := q.popMin()
	return v, ok
}

func (q *Queue) popMin() (int, uint64, bool) {
	for i := range q.bins {
		n := len(q.bins[i])
		if n == 0 {
			continue
		}
		var v uint64
		if q.fifo {
			v = q.bins[i][0]
			q.bins[i] = q.bins[i][1:]
		} else {
			v = q.bins[i][n-1]
			q.bins[i] = q.bins[i][:n-1]
		}
		q.size--
		return i, v, true
	}
	return 0, 0, false
}

// Rank reports the number of queued items with priority strictly
// smaller than pri — the rank error a relaxed queue incurs by popping
// an item of priority pri now. An exact delete-min always has rank 0.
func (q *Queue) Rank(pri int) int {
	rank := 0
	for i := 0; i < pri && i < len(q.bins); i++ {
		rank += len(q.bins[i])
	}
	return rank
}

// Remove takes a specific item out of the queue, reporting whether it
// was present. It is the conservation check of the relaxed differential
// oracle: a relaxed pop must still return some queued item exactly once,
// even though it need not be the minimum.
func (q *Queue) Remove(pri int, val uint64) bool {
	if pri < 0 || pri >= len(q.bins) {
		return false
	}
	bin := q.bins[pri]
	for i, v := range bin {
		if v == val {
			q.bins[pri] = append(bin[:i:i], bin[i+1:]...)
			q.size--
			return true
		}
	}
	return false
}

// Item pairs a priority with a value — the unit of batch operations,
// mirroring core.Item for the reference model.
type Item struct {
	Pri int
	Val uint64
}

// InsertBatch adds every item, defining batch insertion as the items
// applied one by one in slice order.
func (q *Queue) InsertBatch(items []Item) {
	for _, it := range items {
		q.Insert(it.Pri, it.Val)
	}
}

// DeleteMinBatch removes up to k items, defining batch deletion as k
// sequential DeleteMin calls: nondecreasing priority, short only when the
// queue runs dry.
func (q *Queue) DeleteMinBatch(k int) []Item {
	var out []Item
	for len(out) < k {
		pri, v, ok := q.popMin()
		if !ok {
			break
		}
		out = append(out, Item{Pri: pri, Val: v})
	}
	return out
}
