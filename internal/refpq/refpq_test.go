package refpq

import "testing"

func TestLIFOWithinPriority(t *testing.T) {
	q := New(4)
	q.Insert(1, 10)
	q.Insert(1, 11)
	q.Insert(0, 5)
	if v, ok := q.DeleteMin(); !ok || v != 5 {
		t.Fatalf("DeleteMin = (%d,%v)", v, ok)
	}
	if v, _ := q.DeleteMin(); v != 11 {
		t.Fatalf("LIFO order broken: got %d", v)
	}
	if v, _ := q.DeleteMin(); v != 10 {
		t.Fatalf("LIFO order broken: got %d", v)
	}
	if _, ok := q.DeleteMin(); ok {
		t.Fatal("empty queue returned an item")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	q := NewFIFO(2)
	q.Insert(0, 1)
	q.Insert(0, 2)
	if v, _ := q.DeleteMin(); v != 1 {
		t.Fatalf("FIFO order broken: got %d", v)
	}
	if v, _ := q.DeleteMin(); v != 2 {
		t.Fatalf("FIFO order broken: got %d", v)
	}
}

func TestNumPriorities(t *testing.T) {
	if got := New(7).NumPriorities(); got != 7 {
		t.Fatalf("NumPriorities = %d", got)
	}
}

func TestRank(t *testing.T) {
	q := New(8)
	q.Insert(0, 1)
	q.Insert(0, 2)
	q.Insert(3, 3)
	q.Insert(7, 4)
	for pri, want := range map[int]int{0: 0, 1: 2, 3: 2, 4: 3, 7: 3} {
		if got := q.Rank(pri); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", pri, got, want)
		}
	}
	q.DeleteMin() // takes a pri-0 item
	if got := q.Rank(7); got != 2 {
		t.Fatalf("Rank(7) after pop = %d, want 2", got)
	}
}

func TestRemove(t *testing.T) {
	q := New(4)
	q.Insert(2, 10)
	q.Insert(2, 11)
	q.Insert(2, 12)
	if !q.Remove(2, 11) {
		t.Fatal("Remove missed a present item")
	}
	if q.Remove(2, 11) {
		t.Fatal("Remove found an already-removed item")
	}
	if q.Remove(0, 10) || q.Remove(-1, 10) || q.Remove(9, 10) {
		t.Fatal("Remove matched a wrong priority")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if v, _ := q.DeleteMin(); v != 12 {
		t.Fatalf("DeleteMin after Remove = %d, want 12", v)
	}
	if v, _ := q.DeleteMin(); v != 10 {
		t.Fatalf("DeleteMin after Remove = %d, want 10", v)
	}
}
