package refpq

import "testing"

func TestLIFOWithinPriority(t *testing.T) {
	q := New(4)
	q.Insert(1, 10)
	q.Insert(1, 11)
	q.Insert(0, 5)
	if v, ok := q.DeleteMin(); !ok || v != 5 {
		t.Fatalf("DeleteMin = (%d,%v)", v, ok)
	}
	if v, _ := q.DeleteMin(); v != 11 {
		t.Fatalf("LIFO order broken: got %d", v)
	}
	if v, _ := q.DeleteMin(); v != 10 {
		t.Fatalf("LIFO order broken: got %d", v)
	}
	if _, ok := q.DeleteMin(); ok {
		t.Fatal("empty queue returned an item")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	q := NewFIFO(2)
	q.Insert(0, 1)
	q.Insert(0, 2)
	if v, _ := q.DeleteMin(); v != 1 {
		t.Fatalf("FIFO order broken: got %d", v)
	}
	if v, _ := q.DeleteMin(); v != 2 {
		t.Fatalf("FIFO order broken: got %d", v)
	}
}

func TestNumPriorities(t *testing.T) {
	if got := New(7).NumPriorities(); got != 7 {
		t.Fatalf("NumPriorities = %d", got)
	}
}
