// Package sim implements a deterministic, discrete-event simulator of a
// cache-coherent NUMA shared-memory multiprocessor, in the spirit of the
// Proteus simulator used by Shavit and Zemach to evaluate concurrent
// priority queues on an MIT-Alewife-like machine.
//
// The simulator models the phenomena the paper's results depend on:
//
//   - a local/remote latency split with a simple invalidation-based cache
//     (a read hits locally if the word was not written since this
//     processor last fetched it),
//   - per-word occupancy queueing, so simultaneous accesses to the same
//     word serialize (hot spots),
//   - hardware synchronization primitives limited to the ones the paper
//     assumes: register-to-memory swap and compare-and-swap,
//   - parked waiting (WaitWhile), which models a processor spinning on a
//     locally cached word: it costs nothing while the word is unchanged
//     and pays an invalidation + re-fetch when a writer changes it.
//
// Execution is deterministic: simulated processors run as goroutines, but
// the engine hands the execution baton to exactly one of them at a time,
// ordered by (simulated time, event sequence number). All randomness comes
// from per-processor PRNGs seeded from Config.Seed, so a run is a pure
// function of the program and the configuration.
package sim

import "fmt"

// Addr is the address of one word of simulated shared memory.
type Addr uint32

// MaxProcs is the largest processor count a Machine supports. The sharer
// set of each memory word is a fixed-size bitmap sized for this limit.
const MaxProcs = 256

// Config holds the cost parameters of the simulated machine. All costs are
// in simulated cycles.
type Config struct {
	// Procs is the number of processors (1..MaxProcs).
	Procs int
	// LocalCost is the latency of a read that hits in the local cache.
	LocalCost int64
	// RemoteCost is the round-trip latency of a remote access (read miss,
	// write, or atomic operation).
	RemoteCost int64
	// Occupancy is how long a word's home memory module is busy serving
	// one remote access; overlapping accesses to the same word queue up
	// behind each other for this long. This is the hot-spot model.
	Occupancy int64
	// WakeCost is the extra latency charged to a parked processor when the
	// word it spins on changes (invalidation plus re-fetch), on top of the
	// occupancy queueing of the re-fetch.
	WakeCost int64
	// Seed seeds the per-processor PRNGs.
	Seed int64
	// MemoryWords is the size of the simulated shared memory. Zero selects
	// DefaultMemoryWords.
	MemoryWords int
	// MaxEvents aborts the run if the engine processes more than this many
	// events (a safety valve against livelock in simulated programs).
	// Zero selects DefaultMaxEvents.
	MaxEvents int64
	// Profile enables per-word contention accounting, read back after the
	// run with Machine.HotSpots.
	Profile bool
	// Faults, when non-nil, injects the plan's deterministic processor
	// stalls, crash-stops and memory-degradation windows into the run.
	// All fault randomness derives from Seed, so faulty runs reproduce
	// bit-for-bit. See FaultPlan.
	Faults *FaultPlan
	// WatchdogCycles aborts the run with a *WatchdogError if no tracked
	// operation (Proc.OpDone) completes for this many simulated cycles —
	// turning livelocks into typed, diagnosable errors instead of
	// burning events to MaxEvents. Zero disables the watchdog; programs
	// that never call OpDone must leave it disabled.
	WatchdogCycles int64
	// Trace, when non-nil, receives every memory operation the engine
	// services (it is called from the engine goroutine, in deterministic
	// order, before the operation's effect is applied). Tracing costs no
	// simulated cycles.
	Trace func(TraceEvent)
	// Spans, when non-nil, receives phase-attributed time spans for every
	// serviced operation (and application-attributed spans via
	// Proc.AppSpan/OpSpan). Recording happens while the recorder's caller
	// holds the execution baton, so implementations need no locking, and
	// it costs no simulated cycles: a traced run's FinalTime is identical
	// to an untraced one. See internal/trace for the standard collector.
	Spans SpanRecorder
}

// Phase classifies where a span of simulated time went.
type Phase uint8

// Span phases. The engine attributes LocalWork, LocalAccess, MemStall and
// SpinWait; Combining and LockWait are attributed by the simulated
// program through Proc.AppSpan.
const (
	PhaseLocalWork   Phase = iota + 1 // private computation (Proc.LocalWork)
	PhaseLocalAccess                  // cache-hit memory access
	PhaseMemStall                     // remote access, incl. occupancy queueing
	PhaseSpinWait                     // parked in WaitWhile until woken
	PhaseCombining                    // app: inside a combining-funnel pass
	PhaseLockWait                     // app: waiting to acquire a lock
)

func (ph Phase) String() string {
	switch ph {
	case PhaseLocalWork:
		return "local-work"
	case PhaseLocalAccess:
		return "local-access"
	case PhaseMemStall:
		return "mem-stall"
	case PhaseSpinWait:
		return "spin-wait"
	case PhaseCombining:
		return "combining"
	case PhaseLockWait:
		return "lock-wait"
	default:
		return "unknown"
	}
}

// Phases lists every phase in declaration order, for deterministic
// iteration by reporters.
var Phases = []Phase{
	PhaseLocalWork, PhaseLocalAccess, PhaseMemStall,
	PhaseSpinWait, PhaseCombining, PhaseLockWait,
}

// Span is one attributed interval of a processor's simulated time.
type Span struct {
	// Proc is the processor the time belongs to.
	Proc int
	// Start and End bound the interval in simulated cycles.
	Start, End int64
	// Phase says where the time went.
	Phase Phase
	// Op and Addr identify the memory operation for engine-attributed
	// spans (Op is zero for application-attributed ones).
	Op   TraceOp
	Addr Addr
}

// SpanRecorder receives attributed spans and operation-level spans from a
// run. Both methods are called in deterministic order and must not invoke
// the simulator.
type SpanRecorder interface {
	// RecordSpan receives one phase-attributed span.
	RecordSpan(Span)
	// RecordOpSpan receives one application-level operation span (e.g.
	// one insert or delete-min), named by kind.
	RecordOpSpan(proc int, kind string, start, end int64)
}

// TraceOp identifies the kind of a traced memory operation.
type TraceOp uint8

// Traced operation kinds.
const (
	TraceRead TraceOp = iota + 1
	TraceWrite
	TraceSwap
	TraceCAS
	TraceFetchAdd
	TraceWaitWhile
	TraceLocalWork
)

func (op TraceOp) String() string {
	switch op {
	case TraceRead:
		return "read"
	case TraceWrite:
		return "write"
	case TraceSwap:
		return "swap"
	case TraceCAS:
		return "cas"
	case TraceFetchAdd:
		return "fetchadd"
	case TraceWaitWhile:
		return "waitwhile"
	case TraceLocalWork:
		return "localwork"
	default:
		return "unknown"
	}
}

// TraceEvent describes one serviced memory operation.
type TraceEvent struct {
	// Time is the simulated cycle the operation was issued at.
	Time int64
	// Proc is the issuing processor.
	Proc int
	// Op is the operation kind; Addr its target (unused for LocalWork).
	Op   TraceOp
	Addr Addr
}

// Default cost parameters. They approximate a late-1990s ccNUMA machine:
// single-digit-cycle cache hits, tens of cycles for a remote round trip,
// and a memory module that can accept a new request every Occupancy cycles.
const (
	DefaultLocalCost   = 2
	DefaultRemoteCost  = 40
	DefaultOccupancy   = 10
	DefaultWakeCost    = 20
	DefaultMemoryWords = 1 << 26
	DefaultMaxEvents   = 2_000_000_000
)

// DefaultConfig returns a Config for p processors with the default cost
// parameters and seed 1.
func DefaultConfig(p int) Config {
	return Config{
		Procs:      p,
		LocalCost:  DefaultLocalCost,
		RemoteCost: DefaultRemoteCost,
		Occupancy:  DefaultOccupancy,
		WakeCost:   DefaultWakeCost,
		Seed:       1,
	}
}

// normalize validates the configuration and fills defaults. Zero means
// "use the default" for LocalCost, RemoteCost, MemoryWords and
// MaxEvents; a zero Occupancy or WakeCost is a valid explicit choice
// (a machine with no hot-spot queueing / free wake-ups) and is kept.
// Negative values are configuration errors everywhere — a sweep that
// computes a negative cost should fail loudly, not silently run on
// defaults.
func (c *Config) normalize() error {
	if c.Procs < 1 || c.Procs > MaxProcs {
		return fmt.Errorf("sim: Procs must be in [1,%d], got %d", MaxProcs, c.Procs)
	}
	for _, f := range []struct {
		name string
		v    int64
	}{
		{"LocalCost", c.LocalCost},
		{"RemoteCost", c.RemoteCost},
		{"Occupancy", c.Occupancy},
		{"WakeCost", c.WakeCost},
		{"MemoryWords", int64(c.MemoryWords)},
		{"MaxEvents", c.MaxEvents},
		{"WatchdogCycles", c.WatchdogCycles},
	} {
		if f.v < 0 {
			return fmt.Errorf("sim: %s must be >= 0, got %d", f.name, f.v)
		}
	}
	if c.LocalCost == 0 {
		c.LocalCost = DefaultLocalCost
	}
	if c.RemoteCost == 0 {
		c.RemoteCost = DefaultRemoteCost
	}
	if c.MemoryWords == 0 {
		c.MemoryWords = DefaultMemoryWords
	}
	if c.MaxEvents == 0 {
		c.MaxEvents = DefaultMaxEvents
	}
	if c.Faults != nil {
		if err := c.Faults.validate(c.Procs); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a completed run.
type Stats struct {
	// FinalTime is the simulated cycle at which the last processor
	// finished.
	FinalTime int64
	// Events is the number of engine events processed.
	Events int64
	// WordsUsed is the high-water mark of allocated memory words.
	WordsUsed int
	// MemOps is the total number of memory operations serviced (reads,
	// writes, atomics, and WaitWhile probes; LocalWork excluded).
	MemOps int64
	// StallCycles is the total cycles processors spent blocked in remote
	// memory accesses, including occupancy queueing at hot words.
	StallCycles int64
	// ProcOps counts tracked application-level operations (Proc.OpDone)
	// per processor; all zeros for programs that never call OpDone.
	ProcOps []int64
}
