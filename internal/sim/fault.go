package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements the deterministic fault-injection layer. A
// FaultPlan attached to Config describes processor stalls, crash-stops
// and memory-module degradation windows; the engine resolves all of them
// internally, so a run remains a pure function of (program, Config) —
// the same plan and seed reproduce the same failure bit-for-bit.

// DistKind selects the shape of a fault-timing distribution.
type DistKind uint8

// Supported distribution shapes.
const (
	// DistFixed always yields Value.
	DistFixed DistKind = iota + 1
	// DistUniform yields an integer uniform in [Min, Max].
	DistUniform
	// DistPareto yields a Pareto-distributed value with scale Value
	// (the minimum) and tail index Alpha — the heavy-tailed model of
	// stragglers: most stalls are short, a few are enormous. Alpha <= 1
	// has infinite mean; 1.2–2 is the realistic straggler regime.
	DistPareto
)

// Dist is a distribution over non-negative cycle counts, sampled from a
// deterministic per-stream PRNG.
type Dist struct {
	Kind DistKind
	// Value is the constant for DistFixed and the scale (minimum) for
	// DistPareto.
	Value int64
	// Min and Max bound DistUniform, inclusive.
	Min, Max int64
	// Alpha is the Pareto tail index.
	Alpha float64
}

// Fixed returns a distribution that always yields v.
func Fixed(v int64) Dist { return Dist{Kind: DistFixed, Value: v} }

// Uniform returns an integer distribution uniform on [min, max].
func Uniform(min, max int64) Dist { return Dist{Kind: DistUniform, Min: min, Max: max} }

// Pareto returns a heavy-tailed distribution with the given scale
// (minimum value) and tail index alpha.
func Pareto(scale int64, alpha float64) Dist {
	return Dist{Kind: DistPareto, Value: scale, Alpha: alpha}
}

// maxSample caps samples so that pathological tail draws cannot overflow
// the simulated clock.
const maxSample = int64(1) << 40

func (d Dist) validate(what string) error {
	switch d.Kind {
	case DistFixed:
		if d.Value < 0 {
			return fmt.Errorf("sim: %s: fixed value must be >= 0, got %d", what, d.Value)
		}
	case DistUniform:
		if d.Min < 0 || d.Max < d.Min {
			return fmt.Errorf("sim: %s: uniform bounds must satisfy 0 <= Min <= Max, got [%d,%d]", what, d.Min, d.Max)
		}
	case DistPareto:
		if d.Value <= 0 {
			return fmt.Errorf("sim: %s: pareto scale must be > 0, got %d", what, d.Value)
		}
		if d.Alpha <= 0 {
			return fmt.Errorf("sim: %s: pareto alpha must be > 0, got %g", what, d.Alpha)
		}
	default:
		return fmt.Errorf("sim: %s: unknown distribution kind %d", what, d.Kind)
	}
	return nil
}

// sample draws one value. It never returns a negative number and caps
// heavy-tail draws at maxSample.
func (d Dist) sample(rng *rand.Rand) int64 {
	var v int64
	switch d.Kind {
	case DistFixed:
		v = d.Value
	case DistUniform:
		v = d.Min + rng.Int63n(d.Max-d.Min+1)
	case DistPareto:
		// Inverse-CDF: scale * u^(-1/alpha), u uniform in (0,1].
		u := 1 - rng.Float64() // (0, 1]
		x := float64(d.Value) * math.Pow(u, -1/d.Alpha)
		if x > float64(maxSample) {
			return maxSample
		}
		v = int64(x)
	}
	if v < 0 {
		return 0
	}
	if v > maxSample {
		return maxSample
	}
	return v
}

// AllProcs selects every processor in a StallSpec.
const AllProcs = -1

// StallSpec describes transient stalls of one processor (or all of
// them): the processor freezes for Duration cycles, then runs normally
// for Gap cycles, repeating. Stalls model preemption, page faults, or
// interrupt storms — the processor is absent but its memory state is
// intact. Each (spec, processor) pair gets an independent PRNG stream
// derived from Config.Seed, so plans with Proc == AllProcs do not stall
// every processor in lockstep.
type StallSpec struct {
	// Proc is the stalled processor, or AllProcs for every processor.
	Proc int
	// Gap is the distribution of fault-free intervals between stalls.
	Gap Dist
	// Duration is the distribution of stall lengths.
	Duration Dist
}

// Crash stops a processor permanently: at the first scheduling point at
// or after cycle At, the processor ceases to execute. It completes no
// further memory operations, releases no locks, and signals no combining
// partners — the crash-stop failure model.
type Crash struct {
	Proc int
	// At is the simulated cycle of the crash.
	At int64
}

// Degrade is a memory-module degradation window: remote accesses to
// words in [Base, Base+Words) during cycles [From, Until) have their
// occupancy and remote latency multiplied by Factor, modelling a
// congested or failing memory node. Cache hits and cache-to-cache
// transfers are unaffected (the module is not involved in them).
type Degrade struct {
	Base  Addr
	Words int
	// From and Until bound the window, From <= t < Until.
	From, Until int64
	// Factor multiplies Occupancy and RemoteCost, Factor >= 1.
	Factor int64
}

// FaultPlan is a deterministic schedule of injected faults. The zero
// value injects nothing.
type FaultPlan struct {
	Stalls   []StallSpec
	Crashes  []Crash
	Degrades []Degrade
}

func (fp *FaultPlan) validate(procs int) error {
	for i, s := range fp.Stalls {
		if s.Proc != AllProcs && (s.Proc < 0 || s.Proc >= procs) {
			return fmt.Errorf("sim: FaultPlan.Stalls[%d]: processor %d out of range [0,%d)", i, s.Proc, procs)
		}
		if err := s.Gap.validate(fmt.Sprintf("FaultPlan.Stalls[%d].Gap", i)); err != nil {
			return err
		}
		if err := s.Duration.validate(fmt.Sprintf("FaultPlan.Stalls[%d].Duration", i)); err != nil {
			return err
		}
	}
	for i, c := range fp.Crashes {
		if c.Proc < 0 || c.Proc >= procs {
			return fmt.Errorf("sim: FaultPlan.Crashes[%d]: processor %d out of range [0,%d)", i, c.Proc, procs)
		}
		if c.At < 0 {
			return fmt.Errorf("sim: FaultPlan.Crashes[%d]: crash cycle must be >= 0, got %d", i, c.At)
		}
	}
	for i, d := range fp.Degrades {
		if d.Words <= 0 {
			return fmt.Errorf("sim: FaultPlan.Degrades[%d]: Words must be > 0, got %d", i, d.Words)
		}
		if d.From < 0 || d.Until <= d.From {
			return fmt.Errorf("sim: FaultPlan.Degrades[%d]: window must satisfy 0 <= From < Until, got [%d,%d)", i, d.From, d.Until)
		}
		if d.Factor < 1 {
			return fmt.Errorf("sim: FaultPlan.Degrades[%d]: Factor must be >= 1, got %d", i, d.Factor)
		}
	}
	return nil
}

// stallStream is the lazily-advanced state of one (StallSpec, processor)
// pair: next is the cycle the next stall begins.
type stallStream struct {
	gap, dur Dist
	rng      *rand.Rand
	next     int64
}

// faultState is the engine-side state of an active FaultPlan.
type faultState struct {
	// streams[p] are the stall streams affecting processor p.
	streams [][]*stallStream
	// crashAt[p] is the earliest crash cycle for p, or -1.
	crashAt []int64
	// crashed[p] is set once the crash has been enacted.
	crashed  []bool
	degrades []Degrade
}

func newFaultState(fp *FaultPlan, procs int, seed int64) *faultState {
	fs := &faultState{
		streams:  make([][]*stallStream, procs),
		crashAt:  make([]int64, procs),
		crashed:  make([]bool, procs),
		degrades: append([]Degrade(nil), fp.Degrades...),
	}
	for p := range fs.crashAt {
		fs.crashAt[p] = -1
	}
	for _, c := range fp.Crashes {
		if fs.crashAt[c.Proc] < 0 || c.At < fs.crashAt[c.Proc] {
			fs.crashAt[c.Proc] = c.At
		}
	}
	for si, s := range fp.Stalls {
		lo, hi := s.Proc, s.Proc+1
		if s.Proc == AllProcs {
			lo, hi = 0, procs
		}
		for p := lo; p < hi; p++ {
			rng := rand.New(rand.NewSource(seed*2_654_435_761 + int64(si)*1_000_000_007 + int64(p)*97_003 + 40_503))
			st := &stallStream{gap: s.Gap, dur: s.Duration, rng: rng}
			st.next = st.gap.sample(rng)
			fs.streams[p] = append(fs.streams[p], st)
		}
	}
	return fs
}

// stallAdjust delays a processor resumption scheduled for cycle t past
// any stalls that begin at or before t, advancing each stream's state.
// Stalls are wall-clock periodic: a stream whose window was entirely
// skipped (the processor was already blocked past it) still advances.
func (fs *faultState) stallAdjust(proc int32, t int64) int64 {
	for _, st := range fs.streams[proc] {
		for st.next <= t {
			end := st.next + st.dur.sample(st.rng)
			if t < end {
				t = end
			}
			st.next = end + st.gap.sample(st.rng)
		}
	}
	return t
}

// degradeFactor returns the latency multiplier for an access to a at
// cycle now (1 when no window applies; overlapping windows multiply).
func (fs *faultState) degradeFactor(a Addr, now int64) int64 {
	f := int64(1)
	for _, d := range fs.degrades {
		if a >= d.Base && a < d.Base+Addr(d.Words) && now >= d.From && now < d.Until {
			f *= d.Factor
		}
	}
	return f
}
