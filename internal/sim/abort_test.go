package sim

import (
	"testing"
	"testing/quick"
)

func TestAbortReleasesParkedProcs(t *testing.T) {
	// Some processors livelock, others park forever; when the event limit
	// trips, Run must return and every processor goroutine must exit
	// (Run's WaitGroup would hang otherwise and the test would time out).
	cfg := DefaultConfig(4)
	cfg.MaxEvents = 500
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(2)
	_, err = m.Run(func(p *Proc) {
		if p.ID()%2 == 0 {
			p.WaitWhile(a, 0) // parks forever
			return
		}
		for {
			p.Read(a + 1) // burns events
		}
	})
	if err != ErrEventLimit {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
	if parked := m.ParkedProcs(); len(parked) != 2 {
		t.Fatalf("parked = %d, want 2", len(parked))
	}
}

func TestParkedProcsReporting(t *testing.T) {
	m, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	_, err = m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.WaitWhile(a, 0)
		}
	})
	if err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	parked := m.ParkedProcs()
	if len(parked) != 1 || parked[0].Proc != 0 || parked[0].Addr != a || parked[0].While != 0 {
		t.Fatalf("parked = %+v", parked)
	}
}

func TestEventHeapQuickOrdering(t *testing.T) {
	// Property: popping the heap yields events in nondecreasing
	// (time, seq) order regardless of push order.
	f := func(times []int64) bool {
		var h eventHeap
		for i, tm := range times {
			if tm < 0 {
				tm = -tm
			}
			h.push(event{time: tm % 1000, seq: uint64(i)})
		}
		var prevT int64 = -1
		var prevS uint64
		for h.len() > 0 {
			e := h.pop()
			if e.time < prevT || (e.time == prevT && e.seq < prevS) {
				return false
			}
			prevT, prevS = e.time, e.seq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWaitWhileManyWaitersSerializeOnWake(t *testing.T) {
	// A thundering herd of waiters must all wake, with wake re-fetches
	// serialized on the word's occupancy.
	const procs = 10
	m, err := New(DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	woke := make([]int64, procs)
	_, err = m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.LocalWork(500)
			p.Write(a, 7)
			return
		}
		p.WaitWhile(a, 0)
		woke[p.ID()] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for i := 1; i < procs; i++ {
		if woke[i] == 0 {
			t.Fatalf("proc %d never woke", i)
		}
		if seen[woke[i]] {
			t.Errorf("two waiters woke at the same cycle %d (no serialization)", woke[i])
		}
		seen[woke[i]] = true
	}
}
