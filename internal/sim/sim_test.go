package sim

import (
	"testing"
)

func TestConfigNormalize(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"valid", Config{Procs: 4}, false},
		{"zero procs", Config{Procs: 0}, true},
		{"too many procs", Config{Procs: MaxProcs + 1}, true},
		{"max procs", Config{Procs: MaxProcs}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.cfg.normalize()
			if (err != nil) != tt.wantErr {
				t.Fatalf("normalize() error = %v, wantErr %v", err, tt.wantErr)
			}
			if err == nil && tt.cfg.RemoteCost != DefaultRemoteCost {
				t.Errorf("RemoteCost not defaulted: %d", tt.cfg.RemoteCost)
			}
		})
	}
}

func TestEventHeapOrdering(t *testing.T) {
	var h eventHeap
	h.push(event{time: 5, seq: 1})
	h.push(event{time: 1, seq: 2})
	h.push(event{time: 5, seq: 0})
	h.push(event{time: 3, seq: 3})
	want := []struct {
		time int64
		seq  uint64
	}{{1, 2}, {3, 3}, {5, 0}, {5, 1}}
	for i, w := range want {
		e := h.pop()
		if e.time != w.time || e.seq != w.seq {
			t.Fatalf("pop %d = (%d,%d), want (%d,%d)", i, e.time, e.seq, w.time, w.seq)
		}
	}
	if h.len() != 0 {
		t.Fatalf("heap not empty after pops")
	}
}

func TestSingleProcReadWrite(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(2)
	stats, err := m.Run(func(p *Proc) {
		p.Write(a, 42)
		if got := p.Read(a); got != 42 {
			t.Errorf("Read = %d, want 42", got)
		}
		p.Write(a+1, 7)
		if got := p.Read(a + 1); got != 7 {
			t.Errorf("Read = %d, want 7", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.FinalTime <= 0 {
		t.Errorf("FinalTime = %d, want > 0", stats.FinalTime)
	}
	if m.Word(a) != 42 {
		t.Errorf("final word = %d, want 42", m.Word(a))
	}
}

func TestCachedReadIsCheap(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	var missCost, hitCost int64
	_, err = m.Run(func(p *Proc) {
		t0 := p.Now()
		p.Read(a) // miss
		t1 := p.Now()
		p.Read(a) // hit
		t2 := p.Now()
		missCost, hitCost = t1-t0, t2-t1
	})
	if err != nil {
		t.Fatal(err)
	}
	if missCost != DefaultRemoteCost {
		t.Errorf("miss cost = %d, want %d", missCost, DefaultRemoteCost)
	}
	if hitCost != DefaultLocalCost {
		t.Errorf("hit cost = %d, want %d", hitCost, DefaultLocalCost)
	}
}

func TestWriteInvalidatesOtherCaches(t *testing.T) {
	m, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	flag := m.Alloc(1)
	costs := make([]int64, 2)
	_, err = m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Read(a) // cache it
			p.Write(flag, 1)
			p.WaitWhile(flag, 1) // wait for proc 1's write
			t0 := p.Now()
			p.Read(a) // must miss: proc 1 wrote a
			costs[0] = p.Now() - t0
		case 1:
			p.WaitWhile(flag, 0)
			p.Write(a, 99)
			p.Write(flag, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if costs[0] != DefaultRemoteCost {
		t.Errorf("post-invalidation read cost = %d, want remote %d", costs[0], DefaultRemoteCost)
	}
}

func TestSwapAndCAS(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	m.SetWord(a, 5)
	_, err = m.Run(func(p *Proc) {
		if old := p.Swap(a, 6); old != 5 {
			t.Errorf("Swap returned %d, want 5", old)
		}
		if p.CAS(a, 7, 8) {
			t.Error("CAS(7,8) succeeded on value 6")
		}
		if !p.CAS(a, 6, 9) {
			t.Error("CAS(6,9) failed on value 6")
		}
		if old := p.FetchAdd(a, 3); old != 9 {
			t.Errorf("FetchAdd returned %d, want 9", old)
		}
		if got := p.Read(a); got != 12 {
			t.Errorf("final Read = %d, want 12", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHotSpotSerialization(t *testing.T) {
	// P processors all write the same word at time zero; completion times
	// must serialize on the word's occupancy.
	const procs = 8
	m, err := New(DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	finish := make([]int64, procs)
	_, err = m.Run(func(p *Proc) {
		p.Write(a, uint64(p.ID()))
		finish[p.ID()] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sorted finish times should be spaced by exactly Occupancy.
	seen := make(map[int64]bool)
	var min, max int64 = 1 << 62, 0
	for _, f := range finish {
		if seen[f] {
			t.Errorf("two writes completed at the same cycle %d", f)
		}
		seen[f] = true
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	wantSpread := int64(procs-1) * DefaultOccupancy
	if max-min != wantSpread {
		t.Errorf("finish spread = %d, want %d", max-min, wantSpread)
	}
}

func TestColdWordsDoNotContend(t *testing.T) {
	const procs = 8
	m, err := New(DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(procs)
	finish := make([]int64, procs)
	_, err = m.Run(func(p *Proc) {
		p.Write(a+Addr(p.ID()), 1)
		finish[p.ID()] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range finish {
		if f != DefaultRemoteCost {
			t.Errorf("proc %d finished at %d, want %d", i, f, DefaultRemoteCost)
		}
	}
}

func TestWaitWhileWakesOnWrite(t *testing.T) {
	m, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	var observed uint64
	_, err = m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			observed = p.WaitWhile(a, 0)
		case 1:
			p.LocalWork(1000)
			p.Write(a, 17)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed != 17 {
		t.Errorf("WaitWhile observed %d, want 17", observed)
	}
}

func TestWaitWhileReturnsImmediatelyOnChangedValue(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	m.SetWord(a, 3)
	_, err = m.Run(func(p *Proc) {
		if got := p.WaitWhile(a, 0); got != 3 {
			t.Errorf("WaitWhile = %d, want 3", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	_, err = m.Run(func(p *Proc) {
		p.WaitWhile(a, 0) // nobody will ever write a
	})
	if err != ErrDeadlock {
		t.Fatalf("Run error = %v, want ErrDeadlock", err)
	}
}

func TestEventLimit(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MaxEvents = 100
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	_, err = m.Run(func(p *Proc) {
		for {
			p.Read(a)
		}
	})
	if err != ErrEventLimit {
		t.Fatalf("Run error = %v, want ErrEventLimit", err)
	}
}

func TestRunTwiceFails(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(p *Proc) {}); err == nil {
		t.Fatal("second Run succeeded, want error")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		m, err := New(DefaultConfig(16))
		if err != nil {
			t.Fatal(err)
		}
		a := m.Alloc(4)
		stats, err := m.Run(func(p *Proc) {
			for i := 0; i < 50; i++ {
				slot := Addr(p.Rand(4))
				old := p.Swap(a+slot, uint64(p.ID()))
				if old == uint64(p.ID()) {
					p.LocalWork(int64(p.Rand(10)))
				}
				p.CAS(a+slot, old, old+1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		sum := uint64(0)
		for i := Addr(0); i < 4; i++ {
			sum = sum*31 + m.Word(a+i)
		}
		return stats.FinalTime, sum
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: run1=(%d,%d) run2=(%d,%d)", t1, s1, t2, s2)
	}
}

func TestAllocExhaustionPanics(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.MemoryWords = 8
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc beyond memory did not panic")
		}
	}()
	m.Alloc(9)
}

func TestLocalWorkAdvancesClock(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(func(p *Proc) {
		t0 := p.Now()
		p.LocalWork(123)
		if d := p.Now() - t0; d != 123 {
			t.Errorf("LocalWork advanced %d cycles, want 123", d)
		}
		p.LocalWork(0) // no-op
		p.LocalWork(-5)
	})
	if err != nil {
		t.Fatal(err)
	}
}
