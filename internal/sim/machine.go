package sim

import (
	"errors"
	"fmt"
	"sync"
)

// word is one word of simulated shared memory.
type word struct {
	val uint64
	// busyUntil is the cycle at which the word's home module finishes the
	// access it is currently serving; later accesses queue behind it.
	busyUntil int64
	// sharers is a bitmap of processors holding a valid cached copy.
	sharers [MaxProcs / 64]uint64
	// waiters are processors parked on this word by WaitWhile.
	waiters []waiter
}

type waiter struct {
	proc  int32
	while uint64
	since int64
}

// pageWords is the granularity of lazy page allocation for simulated
// memory: pages materialize on first touch, so large address spaces (bin
// arrays sized for worst-case occupancy) cost host memory only for words
// actually used.
const pageWords = 1 << 12

// Machine is a simulated multiprocessor. Construct it with New, allocate
// shared memory with Alloc and initialize it with SetWord, then call Run
// with the program every processor executes.
type Machine struct {
	cfg    Config
	pages  [][]word
	nalloc int

	evq     eventHeap
	seq     uint64
	now     int64
	procs   []*Proc
	events  int64
	stop    chan struct{}
	stopped bool
	wg      sync.WaitGroup
	ran     bool

	// profiling state (nil unless Config.Profile)
	profile map[Addr]*wordStats
	labels  []label

	procEvents []int64

	// engine counters for Stats
	memOps      int64
	stallCycles int64

	// fault-injection and watchdog state
	faults       *faultState // nil unless Config.Faults is set
	lastProgress int64       // cycle of the last Proc.OpDone
	doneProcs    []bool      // programs that returned normally
}

// New creates a machine with the given configuration.
func New(cfg Config) (*Machine, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:   cfg,
		pages: make([][]word, (cfg.MemoryWords+pageWords-1)/pageWords),
		stop:  make(chan struct{}),
	}
	if cfg.Profile {
		m.profile = make(map[Addr]*wordStats)
	}
	m.procs = make([]*Proc, cfg.Procs)
	m.procEvents = make([]int64, cfg.Procs)
	m.doneProcs = make([]bool, cfg.Procs)
	for i := range m.procs {
		m.procs[i] = newProc(m, i, cfg.Seed)
	}
	if cfg.Faults != nil {
		m.faults = newFaultState(cfg.Faults, cfg.Procs, cfg.Seed)
	}
	return m, nil
}

// Procs returns the number of processors.
func (m *Machine) Procs() int { return m.cfg.Procs }

// Alloc reserves n contiguous zeroed words of shared memory and returns the
// address of the first. It panics if the configured memory is exhausted,
// which indicates a misconfigured MemoryWords, not a runtime condition.
func (m *Machine) Alloc(n int) Addr {
	if n < 0 || m.nalloc+n > m.cfg.MemoryWords {
		panic(fmt.Sprintf("sim: out of simulated memory (have %d words, want %d more)", m.cfg.MemoryWords, n))
	}
	a := Addr(m.nalloc)
	m.nalloc += n
	return a
}

// word returns the backing storage for address a, materializing its page
// on first touch.
func (m *Machine) word(a Addr) *word {
	pg := m.pages[a/pageWords]
	if pg == nil {
		pg = make([]word, pageWords)
		m.pages[a/pageWords] = pg
	}
	return &pg[a%pageWords]
}

// SetWord initializes a word before (or inspects state between) runs. It
// charges no simulated cost and must not be called while Run is executing.
func (m *Machine) SetWord(a Addr, v uint64) { m.word(a).val = v }

// Word returns the current value of a word without charging simulated cost.
// Intended for initialization and post-run verification.
func (m *Machine) Word(a Addr) uint64 { return m.word(a).val }

// Parked describes a processor blocked in WaitWhile, for post-mortem
// diagnostics after a deadlocked run.
type Parked struct {
	Proc  int
	Addr  Addr
	While uint64
}

// ProcEvents returns how many engine events each processor consumed — a
// cheap way to find who is spinning in a livelocked run.
func (m *Machine) ProcEvents() []int64 {
	out := make([]int64, len(m.procEvents))
	copy(out, m.procEvents)
	return out
}

// ParkedProcs lists processors currently parked in WaitWhile. Only
// meaningful after Run returns (typically with ErrDeadlock).
func (m *Machine) ParkedProcs() []Parked {
	var out []Parked
	for pi, pg := range m.pages {
		if pg == nil {
			continue
		}
		for wi := range pg {
			for _, wt := range pg[wi].waiters {
				out = append(out, Parked{
					Proc:  int(wt.proc),
					Addr:  Addr(pi*pageWords + wi),
					While: wt.while,
				})
			}
		}
	}
	return out
}

// ErrDeadlock is returned by Run when no processor can make progress: the
// event queue is empty but some processors are still parked in WaitWhile.
var ErrDeadlock = errors.New("sim: deadlock: all runnable processors blocked in WaitWhile")

// ErrEventLimit is returned by Run when the MaxEvents safety valve trips.
var ErrEventLimit = errors.New("sim: event limit exceeded (possible livelock)")

// Run executes program on every processor until all of them return. It may
// be called only once per Machine. The engine resumes exactly one processor
// at a time, so programs need no synchronization beyond the Proc API.
func (m *Machine) Run(program func(p *Proc)) (Stats, error) {
	if m.ran {
		return Stats{}, errors.New("sim: Run called twice on the same Machine")
	}
	m.ran = true

	for _, p := range m.procs {
		p := p
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer func() {
				if r := recover(); r != nil && r != errAborted {
					panic(r)
				}
			}()
			p.await() // initial resume
			program(p)
			p.send(request{kind: reqDone})
		}()
	}
	// Seed the fault plan's crash enactments first, then one start event
	// per processor at time zero; seq ordering makes a crash at cycle t
	// take effect before any resumption scheduled for the same cycle.
	if m.faults != nil {
		for proc, at := range m.faults.crashAt {
			if at >= 0 {
				m.seq++
				m.evq.push(event{time: at, seq: m.seq, proc: int32(proc), kind: evCrash})
			}
		}
	}
	for i := range m.procs {
		m.schedule(0, int32(i), 0)
	}

	running := len(m.procs)
	var err error
loop:
	for running > 0 {
		if m.evq.len() == 0 {
			err = ErrDeadlock
			break
		}
		if m.events >= m.cfg.MaxEvents {
			err = ErrEventLimit
			break
		}
		e := m.evq.pop()
		m.events++
		if e.time > m.now {
			m.now = e.time
		}
		if wd := m.cfg.WatchdogCycles; wd > 0 && m.now-m.lastProgress > wd {
			err = m.snapshot()
			break
		}
		if fs := m.faults; fs != nil {
			if e.kind == evCrash {
				// Enact a crash-stop: the processor executes nothing
				// further. Its goroutine is released via its dead
				// channel; a parked processor is dropped from its
				// waiter list lazily by wakeWaiters.
				if !fs.crashed[e.proc] && !m.doneProcs[e.proc] {
					fs.crashed[e.proc] = true
					close(m.procs[e.proc].dead)
					running--
				}
				continue
			}
			if fs.crashed[e.proc] {
				continue // stale resumption of a crashed processor
			}
		}
		m.procEvents[e.proc]++
		p := m.procs[e.proc]
		p.now = m.now
		select {
		case p.resp <- e.val:
		case <-m.stop:
			break loop
		}
		r := <-p.req
		switch r.kind {
		case reqDone:
			m.doneProcs[e.proc] = true
			running--
		default:
			m.handle(p, r)
		}
	}
	if !m.stopped {
		m.stopped = true
		close(m.stop)
	}
	m.wg.Wait()
	procOps := make([]int64, len(m.procs))
	for i, p := range m.procs {
		procOps[i] = p.ops
	}
	return Stats{
		FinalTime:   m.now,
		Events:      m.events,
		WordsUsed:   m.nalloc,
		MemOps:      m.memOps,
		StallCycles: m.stallCycles,
		ProcOps:     procOps,
	}, err
}

func (m *Machine) schedule(t int64, proc int32, val uint64) {
	if m.faults != nil {
		// A resumption landing inside a stall window is delayed to the
		// window's end; the processor is frozen, its memory state intact.
		t = m.faults.stallAdjust(proc, t)
	}
	m.seq++
	m.evq.push(event{time: t, seq: m.seq, proc: proc, val: val})
}

// noteProgress records the completion of one tracked application-level
// operation (Proc.OpDone). Called from the processor goroutine while it
// holds the execution baton, so no locking is needed.
func (m *Machine) noteProgress(p *Proc) {
	if p.now > m.lastProgress {
		m.lastProgress = p.now
	}
	p.ops++
	p.lastOpAt = p.now
}

// CrashedProcs lists processors crash-stopped by the fault plan, in
// processor order. Only meaningful after Run returns.
func (m *Machine) CrashedProcs() []int {
	if m.faults == nil {
		return nil
	}
	var out []int
	for p, c := range m.faults.crashed {
		if c {
			out = append(out, p)
		}
	}
	return out
}

// handle services one memory request and schedules the processor's
// resumption at the completion time dictated by the cost model.
func (m *Machine) handle(p *Proc, r request) {
	c := &m.cfg
	if c.Trace != nil {
		c.Trace(TraceEvent{Time: m.now, Proc: int(p.id), Op: traceOpFor(r.kind), Addr: r.addr})
	}
	if r.kind != reqLocalWork {
		m.memOps++
	}
	switch r.kind {
	case reqLocalWork:
		done := m.now + r.cycles
		m.span(p.id, done, PhaseLocalWork, TraceLocalWork, 0)
		m.schedule(done, p.id, 0)

	case reqRead:
		w := m.word(r.addr)
		if w.cached(p.id) {
			done := m.now + c.LocalCost
			m.span(p.id, done, PhaseLocalAccess, TraceRead, r.addr)
			m.schedule(done, p.id, w.val)
			return
		}
		done := m.readMiss(r.addr, w)
		m.noteStall(p.id, done, TraceRead, r.addr)
		w.setSharer(p.id)
		m.schedule(done, p.id, w.val)

	case reqWrite:
		w := m.word(r.addr)
		done := m.mutate(r.addr, w, p.id, TraceWrite)
		old := w.val
		w.val = r.a
		w.invalidateExcept(p.id)
		m.schedule(done, p.id, 0)
		if old != w.val {
			m.wakeWaiters(r.addr, done)
		}

	case reqSwap:
		w := m.word(r.addr)
		done := m.mutate(r.addr, w, p.id, TraceSwap)
		old := w.val
		w.val = r.a
		w.invalidateExcept(p.id)
		m.schedule(done, p.id, old)
		if old != w.val {
			m.wakeWaiters(r.addr, done)
		}

	case reqCAS:
		w := m.word(r.addr)
		done := m.mutate(r.addr, w, p.id, TraceCAS)
		if w.val == r.a {
			w.val = r.b
			w.invalidateExcept(p.id)
			m.schedule(done, p.id, 1)
			if r.a != r.b {
				m.wakeWaiters(r.addr, done)
			}
		} else {
			w.setSharer(p.id)
			m.schedule(done, p.id, 0)
		}

	case reqFetchAdd:
		w := m.word(r.addr)
		done := m.mutate(r.addr, w, p.id, TraceFetchAdd)
		old := w.val
		w.val = old + r.a
		w.invalidateExcept(p.id)
		m.schedule(done, p.id, old)
		if r.a != 0 {
			m.wakeWaiters(r.addr, done)
		}

	case reqWaitWhile:
		w := m.word(r.addr)
		if w.val != r.a {
			// The probe observes a changed value: charge one read.
			if w.cached(p.id) {
				done := m.now + c.LocalCost
				m.span(p.id, done, PhaseLocalAccess, TraceWaitWhile, r.addr)
				m.schedule(done, p.id, w.val)
				return
			}
			done := m.readMiss(r.addr, w)
			m.noteStall(p.id, done, TraceWaitWhile, r.addr)
			w.setSharer(p.id)
			m.schedule(done, p.id, w.val)
			return
		}
		// Park. The processor spins on its locally cached copy, which
		// costs nothing until a writer invalidates it.
		w.setSharer(p.id)
		w.waiters = append(w.waiters, waiter{proc: p.id, while: r.a, since: m.now})

	default:
		panic(fmt.Sprintf("sim: unknown request kind %d", r.kind))
	}
}

// span reports an engine-attributed interval starting now; free when no
// recorder is configured.
func (m *Machine) span(proc int32, end int64, phase Phase, op TraceOp, addr Addr) {
	if rec := m.cfg.Spans; rec != nil {
		rec.RecordSpan(Span{Proc: int(proc), Start: m.now, End: end, Phase: phase, Op: op, Addr: addr})
	}
}

// noteStall books a remote access finishing at done as memory-stall time.
func (m *Machine) noteStall(proc int32, done int64, op TraceOp, addr Addr) {
	m.stallCycles += done - m.now
	m.span(proc, done, PhaseMemStall, op, addr)
}

// mutate charges a write-type access (write, swap, CAS, add). A
// processor holding the only cached copy owns the line (MESI M state) and
// mutates it locally; anyone else pays a remote access with occupancy.
// Parked waiters force the remote path so their wake-up accounting stays
// attached to the word's home module.
func (m *Machine) mutate(a Addr, w *word, proc int32, op TraceOp) int64 {
	if w.cached(proc) && w.soleSharer(proc) && len(w.waiters) == 0 {
		done := m.now + m.cfg.LocalCost
		m.span(proc, done, PhaseLocalAccess, op, a)
		return done
	}
	done := m.remoteAccess(a, w)
	m.noteStall(proc, done, op, a)
	return done
}

// readMiss charges a read miss. A line some processor already caches is
// served cache-to-cache at remote latency without occupying the word's
// home module; only a line nobody shares goes to the module and queues on
// its occupancy.
func (m *Machine) readMiss(a Addr, w *word) int64 {
	if w.anySharer() {
		return m.now + m.cfg.RemoteCost
	}
	return m.remoteAccess(a, w)
}

// traceOpFor maps a request kind to its traced operation kind.
func traceOpFor(k reqKind) TraceOp {
	switch k {
	case reqRead:
		return TraceRead
	case reqWrite:
		return TraceWrite
	case reqSwap:
		return TraceSwap
	case reqCAS:
		return TraceCAS
	case reqFetchAdd:
		return TraceFetchAdd
	case reqWaitWhile:
		return TraceWaitWhile
	default:
		return TraceLocalWork
	}
}

// remoteAccess charges a remote access to w's home module and returns the
// completion time. Overlapping accesses to the same word serialize on the
// module's occupancy — the hot-spot model. A fault-plan degradation
// window covering the word multiplies both costs.
func (m *Machine) remoteAccess(a Addr, w *word) int64 {
	occ, rem := m.cfg.Occupancy, m.cfg.RemoteCost
	if f := m.moduleDegrade(a); f > 1 {
		occ *= f
		rem *= f
	}
	start := m.now
	if w.busyUntil > start {
		start = w.busyUntil
	}
	w.busyUntil = start + occ
	m.recordAccess(a, start-m.now)
	return start + rem
}

// moduleDegrade returns the fault-plan latency multiplier for word a at
// the current cycle (1 when no degradation window applies).
func (m *Machine) moduleDegrade(a Addr) int64 {
	if m.faults == nil || len(m.faults.degrades) == 0 {
		return 1
	}
	return m.faults.degradeFactor(a, m.now)
}

// wakeWaiters resumes every processor parked on addr whose condition no
// longer holds. Each wake pays an invalidation + re-fetch, and the
// re-fetches serialize on the word's occupancy, modeling the thundering
// herd of spinners re-reading an updated word.
func (m *Machine) wakeWaiters(addr Addr, writeDone int64) {
	w := m.word(addr)
	if len(w.waiters) == 0 {
		return
	}
	kept := w.waiters[:0]
	occ := m.cfg.Occupancy
	if f := m.moduleDegrade(addr); f > 1 {
		occ *= f
	}
	for _, wt := range w.waiters {
		if m.faults != nil && m.faults.crashed[wt.proc] {
			continue // a crashed processor never re-fetches; drop it
		}
		if w.val == wt.while {
			kept = append(kept, wt)
			continue
		}
		start := writeDone
		if w.busyUntil > start {
			start = w.busyUntil
		}
		w.busyUntil = start + occ
		// Book both the module queueing of the re-fetch and the time the
		// processor spent parked on this word: parked time is where lock
		// queues (MCS) accumulate their latency.
		m.recordAccess(addr, (start-writeDone)+(m.now-wt.since))
		w.setSharer(wt.proc)
		wake := start + m.cfg.WakeCost
		if rec := m.cfg.Spans; rec != nil {
			rec.RecordSpan(Span{
				Proc: int(wt.proc), Start: wt.since, End: wake,
				Phase: PhaseSpinWait, Op: TraceWaitWhile, Addr: addr,
			})
		}
		m.schedule(wake, wt.proc, w.val)
	}
	w.waiters = kept
}

func (w *word) cached(proc int32) bool {
	return w.sharers[proc/64]&(1<<(uint(proc)%64)) != 0
}

// anySharer reports whether any processor holds a cached copy.
func (w *word) anySharer() bool {
	for _, bits := range w.sharers {
		if bits != 0 {
			return true
		}
	}
	return false
}

// soleSharer reports whether proc is the only processor with a cached
// copy.
func (w *word) soleSharer(proc int32) bool {
	for i, bits := range w.sharers {
		expect := uint64(0)
		if int32(i) == proc/64 {
			expect = 1 << (uint(proc) % 64)
		}
		if bits != expect {
			return false
		}
	}
	return true
}

func (w *word) setSharer(proc int32) {
	w.sharers[proc/64] |= 1 << (uint(proc) % 64)
}

func (w *word) invalidateExcept(proc int32) {
	for i := range w.sharers {
		w.sharers[i] = 0
	}
	w.setSharer(proc)
}
