package sim

import "testing"

func TestOwnedWriteIsLocal(t *testing.T) {
	m, err := New(DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	var first, second int64
	_, err = m.Run(func(p *Proc) {
		t0 := p.Now()
		p.Write(a, 1) // nobody caches it: remote
		first = p.Now() - t0
		t1 := p.Now()
		p.Write(a, 2) // exclusive owner: local
		second = p.Now() - t1
	})
	if err != nil {
		t.Fatal(err)
	}
	if first != DefaultRemoteCost {
		t.Errorf("first write cost = %d, want remote %d", first, DefaultRemoteCost)
	}
	if second != DefaultLocalCost {
		t.Errorf("owned write cost = %d, want local %d", second, DefaultLocalCost)
	}
}

func TestWriteToSharedLineIsRemote(t *testing.T) {
	m, err := New(DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	flag := m.Alloc(1)
	var cost int64
	_, err = m.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Write(a, 1)        // own it
			p.Write(flag, 1)     // signal
			p.WaitWhile(flag, 1) // wait for reader
			t0 := p.Now()
			p.Write(a, 2) // line now shared with proc 1: must go remote
			cost = p.Now() - t0
		case 1:
			p.WaitWhile(flag, 0)
			p.Read(a) // become a sharer
			p.Write(flag, 2)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost != DefaultRemoteCost {
		t.Errorf("write to shared line cost = %d, want remote %d", cost, DefaultRemoteCost)
	}
}

func TestSharedReadBypassesModuleOccupancy(t *testing.T) {
	// One processor owns the value; many others read-miss it at once.
	// Cache-to-cache service means their misses do not serialize on the
	// home module, so all finish at the same cycle.
	const procs = 8
	m, err := New(DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	flag := m.Alloc(1)
	times := make([]int64, procs)
	_, err = m.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Write(a, 42)
			p.Read(a) // ensure a sharer exists
			p.Write(flag, 1)
			return
		}
		p.WaitWhile(flag, 0)
		t0 := p.Now()
		p.Read(a)
		times[p.ID()] = p.Now() - t0
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < procs; i++ {
		if times[i] != DefaultRemoteCost {
			t.Errorf("proc %d shared-read cost = %d, want %d (no occupancy queueing)",
				i, times[i], DefaultRemoteCost)
		}
	}
}

func TestUnsharedReadsQueueOnModule(t *testing.T) {
	// Reads of fresh (never-cached) words still pay module occupancy when
	// they collide — but here each processor reads a distinct word, so no
	// queueing.
	const procs = 4
	m, err := New(DefaultConfig(procs))
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	m.SetWord(a, 9)
	finish := make([]int64, procs)
	_, err = m.Run(func(p *Proc) {
		p.Read(a)
		finish[p.ID()] = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	// First reader pays module occupancy; once a sharer exists, the rest
	// are cache-to-cache at flat remote latency. So the spread is at most
	// one occupancy.
	var min, max int64 = 1 << 62, 0
	for _, f := range finish {
		if f < min {
			min = f
		}
		if f > max {
			max = f
		}
	}
	if max-min > DefaultOccupancy {
		t.Errorf("read finish spread = %d, want <= %d", max-min, DefaultOccupancy)
	}
}
