package sim

import (
	"fmt"
	"strings"
)

// The progress watchdog turns would-be hangs into typed errors in
// bounded simulated time. Programs mark the completion of each
// application-level operation with Proc.OpDone; if Config.WatchdogCycles
// is set and no operation completes for that many cycles, Run aborts
// with a *WatchdogError carrying a diagnostic snapshot instead of
// silently burning events until MaxEvents.

// ProcState is one processor's entry in a watchdog diagnostic snapshot.
type ProcState struct {
	Proc int
	// Crashed is set when the processor was crash-stopped by the fault
	// plan; Done when its program returned normally.
	Crashed, Done bool
	// Ops is the number of tracked operations the processor completed;
	// LastOpAt is the cycle of the most recent one (0 if none).
	Ops      int64
	LastOpAt int64
	// Events is how many engine events the processor consumed — a large
	// count with few completed ops marks an actively spinning processor.
	Events int64
	// BlockedOp and BlockedAddr identify the memory operation the
	// processor last issued; BlockedLabel is the profiling label of that
	// address ("" if unlabeled). Parked is set when the processor is
	// passively parked in WaitWhile on that address.
	BlockedOp    TraceOp
	BlockedAddr  Addr
	BlockedLabel string
	Parked       bool
}

// WatchdogError reports that the run made no tracked progress for
// Config.WatchdogCycles simulated cycles. It satisfies errors.As.
type WatchdogError struct {
	// Now is the cycle the watchdog fired; LastProgress the cycle of the
	// last completed tracked operation; Limit the configured bound.
	Now          int64
	LastProgress int64
	Limit        int64
	// Procs holds one snapshot per processor.
	Procs []ProcState
	// Hot lists the most contended words at abort time, when profiling
	// was enabled (nil otherwise).
	Hot []HotSpot
}

func (e *WatchdogError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: watchdog: no operation completed in %d cycles (now %d, last progress %d)",
		e.Limit, e.Now, e.LastProgress)
	stuck := 0
	for _, ps := range e.Procs {
		if ps.Done || ps.Crashed {
			continue
		}
		if stuck < 4 {
			where := ps.BlockedOp.String()
			if ps.BlockedLabel != "" {
				where += " " + ps.BlockedLabel
			}
			state := "spinning"
			if ps.Parked {
				state = "parked"
			}
			fmt.Fprintf(&b, "; p%d %s on %s@%#x (%d ops)", ps.Proc, state, where, uint32(ps.BlockedAddr), ps.Ops)
		}
		stuck++
	}
	if stuck > 4 {
		fmt.Fprintf(&b, "; ... %d more stuck processors", stuck-4)
	}
	return b.String()
}

// snapshot builds the diagnostic payload for a watchdog abort.
func (m *Machine) snapshot() *WatchdogError {
	e := &WatchdogError{
		Now:          m.now,
		LastProgress: m.lastProgress,
		Limit:        m.cfg.WatchdogCycles,
		Procs:        make([]ProcState, len(m.procs)),
	}
	parked := map[int]bool{}
	for _, pk := range m.ParkedProcs() {
		parked[pk.Proc] = true
	}
	for i, p := range m.procs {
		ps := ProcState{
			Proc:        i,
			Done:        m.doneProcs[i],
			Ops:         p.ops,
			LastOpAt:    p.lastOpAt,
			Events:      m.procEvents[i],
			BlockedOp:   traceOpFor(p.lastKind),
			BlockedAddr: p.lastAddr,
			Parked:      parked[i],
		}
		if m.faults != nil {
			ps.Crashed = m.faults.crashed[i]
		}
		if !ps.Done && !ps.Crashed {
			ps.BlockedLabel = m.LabelFor(p.lastAddr)
		}
		e.Procs[i] = ps
	}
	if m.profile != nil {
		e.Hot = m.HotSpots(8)
	}
	return e
}
