package sim

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestDistSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []Dist{Fixed(25), Uniform(10, 20), Pareto(100, 1.3)} {
		if err := d.validate("test"); err != nil {
			t.Fatalf("%+v: %v", d, err)
		}
		for i := 0; i < 1000; i++ {
			v := d.sample(rng)
			if v < 0 || v > maxSample {
				t.Fatalf("%+v: sample %d out of range", d, v)
			}
			switch d.Kind {
			case DistFixed:
				if v != d.Value {
					t.Fatalf("fixed sample %d != %d", v, d.Value)
				}
			case DistUniform:
				if v < d.Min || v > d.Max {
					t.Fatalf("uniform sample %d outside [%d,%d]", v, d.Min, d.Max)
				}
			case DistPareto:
				if v < d.Value {
					t.Fatalf("pareto sample %d below scale %d", v, d.Value)
				}
			}
		}
	}
}

func TestDistValidation(t *testing.T) {
	bad := []Dist{
		{Kind: DistFixed, Value: -1},
		{Kind: DistUniform, Min: 5, Max: 3},
		{Kind: DistUniform, Min: -1, Max: 3},
		{Kind: DistPareto, Value: 0, Alpha: 1.5},
		{Kind: DistPareto, Value: 10, Alpha: 0},
		{Kind: 99},
	}
	for _, d := range bad {
		if err := d.validate("test"); err == nil {
			t.Errorf("%+v: expected validation error", d)
		}
	}
}

func TestConfigRejectsNegativeCosts(t *testing.T) {
	for _, mut := range []func(*Config){
		func(c *Config) { c.LocalCost = -1 },
		func(c *Config) { c.RemoteCost = -2 },
		func(c *Config) { c.Occupancy = -1 },
		func(c *Config) { c.WakeCost = -5 },
		func(c *Config) { c.MaxEvents = -1 },
		func(c *Config) { c.MemoryWords = -1 },
		func(c *Config) { c.WatchdogCycles = -1 },
	} {
		cfg := DefaultConfig(2)
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("config %+v: expected error for negative parameter", cfg)
		}
	}
	// Zero Occupancy/WakeCost are valid explicit choices and are kept.
	cfg := DefaultConfig(2)
	cfg.Occupancy, cfg.WakeCost = 0, 0
	if err := cfg.normalize(); err != nil {
		t.Fatalf("zero occupancy/wake rejected: %v", err)
	}
	if cfg.Occupancy != 0 || cfg.WakeCost != 0 {
		t.Fatalf("explicit zero Occupancy/WakeCost overwritten: %+v", cfg)
	}
}

func TestFaultPlanValidation(t *testing.T) {
	for _, fp := range []FaultPlan{
		{Stalls: []StallSpec{{Proc: 9, Gap: Fixed(10), Duration: Fixed(5)}}},
		{Stalls: []StallSpec{{Proc: -2, Gap: Fixed(10), Duration: Fixed(5)}}},
		{Crashes: []Crash{{Proc: 4, At: 100}}},
		{Crashes: []Crash{{Proc: 0, At: -1}}},
		{Degrades: []Degrade{{Base: 0, Words: 0, From: 0, Until: 10, Factor: 2}}},
		{Degrades: []Degrade{{Base: 0, Words: 4, From: 10, Until: 10, Factor: 2}}},
		{Degrades: []Degrade{{Base: 0, Words: 4, From: 0, Until: 10, Factor: 0}}},
	} {
		fp := fp
		cfg := DefaultConfig(4)
		cfg.Faults = &fp
		if _, err := New(cfg); err == nil {
			t.Errorf("plan %+v: expected validation error", fp)
		}
	}
}

// runCounter runs p processors hammering a shared counter and returns
// the final stats.
func runCounter(t *testing.T, cfg Config, opsPerProc int) (Stats, uint64, error) {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	st, runErr := m.Run(func(p *Proc) {
		for i := 0; i < opsPerProc; i++ {
			p.LocalWork(20)
			p.FetchAdd(a, 1)
			p.OpDone()
		}
	})
	return st, m.Word(a), runErr
}

func TestStallsAreDeterministicAndSlow(t *testing.T) {
	base := DefaultConfig(8)
	st0, sum0, err := runCounter(t, base, 50)
	if err != nil {
		t.Fatal(err)
	}

	faulty := base
	faulty.Faults = &FaultPlan{Stalls: []StallSpec{
		{Proc: AllProcs, Gap: Uniform(500, 1500), Duration: Pareto(200, 1.4)},
	}}
	st1, sum1, err := runCounter(t, faulty, 50)
	if err != nil {
		t.Fatal(err)
	}
	st2, sum2, err := runCounter(t, faulty, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st1, st2) || sum1 != sum2 {
		t.Fatalf("faulty runs diverged: %+v/%d vs %+v/%d", st1, sum1, st2, sum2)
	}
	if sum1 != sum0 {
		t.Fatalf("stalls changed the computation: sum %d vs %d", sum1, sum0)
	}
	if st1.FinalTime <= st0.FinalTime {
		t.Fatalf("stalls did not slow the run: %d <= %d", st1.FinalTime, st0.FinalTime)
	}
}

func TestCrashStopKillsProcessor(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Faults = &FaultPlan{Crashes: []Crash{{Proc: 2, At: 500}}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(4)
	st, runErr := m.Run(func(p *Proc) {
		for i := 0; i < 30; i++ {
			p.LocalWork(50)
			p.FetchAdd(a+Addr(p.ID()), 1)
		}
	})
	if runErr != nil {
		t.Fatalf("survivors should finish: %v", runErr)
	}
	if got := m.CrashedProcs(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("CrashedProcs = %v, want [2]", got)
	}
	if m.Word(a+2) >= 30 {
		t.Fatalf("crashed processor completed all %d ops", m.Word(a+2))
	}
	for _, i := range []Addr{0, 1, 3} {
		if m.Word(a+i) != 30 {
			t.Fatalf("survivor %d completed %d/30 ops", i, m.Word(a+i))
		}
	}
	if st.FinalTime <= 0 {
		t.Fatal("no time passed")
	}
}

func TestCrashOrphanedLockDeadlocks(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Crashes: []Crash{{Proc: 0, At: 200}}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lock := m.Alloc(1)
	m.Label(lock, 1, "test.lock")
	_, runErr := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			// Take the lock, then "work" past the crash cycle without
			// ever releasing.
			p.Swap(lock, 1)
			p.LocalWork(10_000)
			p.Write(lock, 0)
		} else {
			p.LocalWork(300) // let proc 0 win the lock and die holding it
			for p.Swap(lock, 1) != 0 {
				p.WaitWhile(lock, 1)
			}
		}
	})
	if !errors.Is(runErr, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", runErr)
	}
	parked := m.ParkedProcs()
	if len(parked) != 1 || parked[0].Proc != 1 || m.LabelFor(parked[0].Addr) != "test.lock" {
		t.Fatalf("parked = %+v, want proc 1 on test.lock", parked)
	}
}

func TestWatchdogConvertsLivelock(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.WatchdogCycles = 50_000
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(1)
	m.Label(a, 1, "test.spinword")
	_, runErr := m.Run(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 5; i++ {
				p.FetchAdd(a, 1)
				p.OpDone()
			}
		}
		// Both processors then spin forever on a CAS that can't succeed
		// — a livelock that burns events without completing operations.
		for {
			p.CAS(a, 1<<40, 0)
			p.LocalWork(10)
		}
	})
	var wd *WatchdogError
	if !errors.As(runErr, &wd) {
		t.Fatalf("err = %v, want *WatchdogError", runErr)
	}
	if wd.Now-wd.LastProgress <= wd.Limit {
		t.Fatalf("watchdog fired early: now %d, last %d, limit %d", wd.Now, wd.LastProgress, wd.Limit)
	}
	// Bounded simulated time: it must fire well before MaxEvents burns.
	if wd.Now > wd.LastProgress+2*wd.Limit+DefaultRemoteCost*100 {
		t.Fatalf("watchdog fired late: now %d, last progress %d", wd.Now, wd.LastProgress)
	}
	if len(wd.Procs) != 2 {
		t.Fatalf("snapshot has %d procs, want 2", len(wd.Procs))
	}
	p0 := wd.Procs[0]
	if p0.Ops != 5 {
		t.Errorf("proc 0 ops = %d, want 5", p0.Ops)
	}
	if p0.BlockedLabel != "test.spinword" {
		t.Errorf("proc 0 blocked label = %q, want test.spinword", p0.BlockedLabel)
	}
	if p0.Parked {
		t.Error("spinning proc reported as parked")
	}
	if msg := wd.Error(); msg == "" {
		t.Error("empty watchdog message")
	}
}

func TestDegradeWindowSlowsModule(t *testing.T) {
	run := func(fp *FaultPlan) int64 {
		cfg := DefaultConfig(2)
		cfg.Faults = fp
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		a := m.Alloc(1)
		st, runErr := m.Run(func(p *Proc) {
			for i := 0; i < 100; i++ {
				p.FetchAdd(a, 1) // both processors hammer one word
			}
		})
		if runErr != nil {
			t.Fatal(runErr)
		}
		if m.Word(a) != 200 {
			t.Fatalf("sum = %d, want 200", m.Word(a))
		}
		return st.FinalTime
	}
	clean := run(nil)
	degraded := run(&FaultPlan{Degrades: []Degrade{
		{Base: 0, Words: 1 << 20, From: 0, Until: 1 << 40, Factor: 8},
	}})
	if degraded < 4*clean {
		t.Fatalf("8x degradation sped past 4x: clean %d, degraded %d", clean, degraded)
	}
	// A window that never overlaps the run must cost nothing.
	outside := run(&FaultPlan{Degrades: []Degrade{
		{Base: 0, Words: 1 << 20, From: 1 << 39, Until: 1 << 40, Factor: 8},
	}})
	if outside != clean {
		t.Fatalf("inactive window changed timing: %d vs %d", outside, clean)
	}
}

func TestCrashAtZeroNeverRuns(t *testing.T) {
	cfg := DefaultConfig(2)
	cfg.Faults = &FaultPlan{Crashes: []Crash{{Proc: 1, At: 0}}}
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a := m.Alloc(2)
	_, runErr := m.Run(func(p *Proc) {
		p.Write(a+Addr(p.ID()), 1)
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if m.Word(a+1) != 0 {
		t.Fatal("processor crashed at cycle 0 still executed")
	}
	if m.Word(a) != 1 {
		t.Fatal("survivor did not run")
	}
}
