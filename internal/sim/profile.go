package sim

import "sort"

// Access statistics per word, collected when Config.Profile is on. An
// access is "contended" when it found the word's home module busy and
// had to queue behind another access — the paper's hot-spot condition.
type wordStats struct {
	accesses  int64
	contended int64
	waited    int64 // total cycles spent queued
}

// HotSpot reports the contention profile of one simulated word.
type HotSpot struct {
	// Addr is the word's address; Name is the label of the region it
	// belongs to (or "" if unlabeled).
	Addr Addr
	Name string
	// Accesses counts remote accesses serviced by the word's home module;
	// Contended counts those that queued; WaitCycles is the total time
	// accesses spent waiting in the queue.
	Accesses   int64
	Contended  int64
	WaitCycles int64
}

// label is a named address region for profiling reports.
type label struct {
	start, end Addr // [start, end)
	name       string
}

// Label names the address range [a, a+n) in profiling reports. Labels are
// cosmetic: they cost nothing and may be registered at any time before
// the profile is read.
func (m *Machine) Label(a Addr, n int, name string) {
	m.labels = append(m.labels, label{start: a, end: a + Addr(n), name: name})
}

// LabelFor returns the innermost (latest-registered) label covering a.
func (m *Machine) LabelFor(a Addr) string {
	for i := len(m.labels) - 1; i >= 0; i-- {
		if a >= m.labels[i].start && a < m.labels[i].end {
			return m.labels[i].name
		}
	}
	return ""
}

// HotSpots returns the topN most contended words (by wait cycles, then
// accesses). Profiling must have been enabled in the Config.
func (m *Machine) HotSpots(topN int) []HotSpot {
	if m.profile == nil {
		return nil
	}
	out := make([]HotSpot, 0, len(m.profile))
	for a, ws := range m.profile {
		out = append(out, HotSpot{
			Addr:       a,
			Name:       m.LabelFor(a),
			Accesses:   ws.accesses,
			Contended:  ws.contended,
			WaitCycles: ws.waited,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].WaitCycles != out[j].WaitCycles {
			return out[i].WaitCycles > out[j].WaitCycles
		}
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].Addr < out[j].Addr
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// recordAccess books one module access for the profiler.
func (m *Machine) recordAccess(a Addr, waited int64) {
	if m.profile == nil {
		return
	}
	ws := m.profile[a]
	if ws == nil {
		ws = &wordStats{}
		m.profile[a] = ws
	}
	ws.accesses++
	if waited > 0 {
		ws.contended++
		ws.waited += waited
	}
}
